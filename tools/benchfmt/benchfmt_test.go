package benchfmt

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseGoBench(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: hmtx/internal/memsys
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkL1HitLoad         	80195804	        30.71 ns/op	       0 B/op	       0 allocs/op
BenchmarkSnoopMiss-4       	 8825539	       268.6 ns/op	     112 B/op	       1 allocs/op
BenchmarkLazyCommit        	212345678	         5.335 ns/op
PASS
ok  	hmtx/internal/memsys	10.183s
`
	bs, err := ParseGoBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(bs), bs)
	}
	// Sorted by name, -4 suffix stripped.
	if bs[0].Name != "BenchmarkL1HitLoad" || bs[1].Name != "BenchmarkLazyCommit" || bs[2].Name != "BenchmarkSnoopMiss" {
		t.Fatalf("wrong names/order: %+v", bs)
	}
	if bs[0].NsPerOp != 30.71 || bs[0].AllocsPerOp != 0 || bs[0].BytesPerOp != 0 {
		t.Errorf("L1HitLoad = %+v", bs[0])
	}
	if bs[2].NsPerOp != 268.6 || bs[2].BytesPerOp != 112 || bs[2].AllocsPerOp != 1 {
		t.Errorf("SnoopMiss = %+v", bs[2])
	}
	if bs[1].NsPerOp != 5.335 || bs[1].AllocsPerOp != 0 {
		t.Errorf("LazyCommit = %+v", bs[1])
	}
}

func TestReadWriteRoundtrip(t *testing.T) {
	doc := Doc{
		Schema: Schema,
		Host:   Host{GoOS: "linux", GoArch: "amd64", CPUs: 4},
		Suite: Suite{
			Parallelism:    8,
			WallSeconds:    1.25,
			GeomeanHMTX:    2.71,
			TotalSeqCycles: 123456789,
		},
		Benchmarks: []Benchmark{{Name: "BenchmarkX", NsPerOp: 30.7, AllocsPerOp: 0}},
		Notes:      []string{"test snapshot"},
	}
	var buf bytes.Buffer
	if err := Write(&buf, doc); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Suite != doc.Suite || got.Host != doc.Host || len(got.Benchmarks) != 1 {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}
}

func TestReadRejectsWrongSchema(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"schema":"hmtx-bench/v1"}`)); err == nil {
		t.Fatal("Read accepted an hmtx-bench/v1 document")
	}
}
