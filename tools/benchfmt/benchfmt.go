// Package benchfmt defines the "hmtx-perf/v1" performance document shared by
// tools/perfsnap (which writes it) and tools/benchdiff (which compares two of
// them), plus a parser for `go test -bench` output.
//
// Unlike the deterministic "hmtx-bench/v1" document of internal/experiments —
// whose simulated-cycle numbers must match bit-for-bit across runs — a perf
// document records host measurements (wall-clock seconds, ns/op) that vary
// between machines and runs. benchdiff therefore compares the two schemas
// differently: simulated metrics exactly, host metrics within a guardband
// (EXPERIMENTS.md).
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Schema is the schema tag of the performance document.
const Schema = "hmtx-perf/v1"

// Doc is one recorded performance snapshot (a BENCH_*.json file).
type Doc struct {
	Schema string `json:"schema"`
	// Host describes the machine the snapshot was taken on, so readers can
	// judge whether two documents are comparable at all.
	Host Host `json:"host"`
	// Suite holds the wall-clock measurement of the experiment suite, and
	// the simulated digest that proves the run measured the same work.
	Suite Suite `json:"suite"`
	// Benchmarks holds `go test -bench` microbenchmark results by name.
	Benchmarks []Benchmark `json:"benchmarks,omitempty"`
	// LargeRuns holds wall-clock measurements of a large simulated
	// configuration (64+ cores) at several engine -domains settings, so a
	// snapshot records how intra-run parallelism scales on this host. The
	// Cycles digest must agree across entries: the domain-sharded scheduler
	// is byte-identical to serial, so only wall-clock may differ.
	LargeRuns []LargeRun `json:"large_runs,omitempty"`
	// Notes records caveats about the snapshot (e.g. a single-CPU host
	// cannot show parallel-suite speedups).
	Notes []string `json:"notes,omitempty"`
}

// Host identifies the measurement machine.
type Host struct {
	GoOS   string `json:"goos"`
	GoArch string `json:"goarch"`
	CPUs   int    `json:"cpus"`
	CPU    string `json:"cpu,omitempty"`
}

// Suite is the experiment-suite measurement.
type Suite struct {
	// Parallelism is the -parallel setting the suite ran with.
	Parallelism int `json:"parallelism"`
	// Domains is the engine -domains setting (intra-simulation parallel
	// scheduler; 1 = serial reference). Results are byte-identical at any
	// setting, so it is recorded purely to contextualise WallSeconds.
	Domains int `json:"domains"`
	// WallSeconds is the host time the suite took.
	WallSeconds float64 `json:"wall_seconds"`
	// GeomeanHMTX and TotalSeqCycles digest the simulated results: they
	// are deterministic, so two comparable snapshots must agree exactly.
	GeomeanHMTX    float64 `json:"geomean_hmtx_speedup"`
	TotalSeqCycles int64   `json:"total_seq_cycles"`
}

// LargeRun is one timed run of the large scaling configuration.
type LargeRun struct {
	// Cores is the simulated core count.
	Cores int `json:"cores"`
	// Domains is the engine scheduler setting for this run.
	Domains int `json:"domains"`
	// WallSeconds is the host time the run took.
	WallSeconds float64 `json:"wall_seconds"`
	// Cycles is the simulated execution time — deterministic, so every
	// entry of a snapshot must report the same value.
	Cycles int64 `json:"cycles"`
	// Instructions digests the simulated work, same determinism contract.
	Instructions uint64 `json:"instructions"`
}

// Benchmark is one `go test -bench` result line.
type Benchmark struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Write marshals the document as indented JSON with a trailing newline.
func Write(w io.Writer, doc Doc) error {
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// Read parses a performance document and checks its schema tag.
func Read(r io.Reader) (Doc, error) {
	var doc Doc
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return Doc{}, err
	}
	if doc.Schema != Schema {
		return Doc{}, fmt.Errorf("benchfmt: schema %q, want %q", doc.Schema, Schema)
	}
	return doc, nil
}

// ParseGoBench parses `go test -bench -benchmem` output into Benchmark
// records, sorted by name. Lines that are not benchmark results (headers,
// PASS/ok trailers) are skipped. A benchmark that appears several times
// (e.g. -count > 1) keeps the last measurement.
func ParseGoBench(r io.Reader) ([]Benchmark, error) {
	byName := map[string]Benchmark{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		// Benchmark<Name>-<P> <iters> <ns> ns/op [<B> B/op <allocs> allocs/op]
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") || f[3] != "ns/op" {
			continue
		}
		name := f[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
		ns, err := strconv.ParseFloat(f[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchfmt: bad ns/op in %q: %v", sc.Text(), err)
		}
		b := Benchmark{Name: name, NsPerOp: ns}
		for i := 4; i+1 < len(f); i += 2 {
			v, err := strconv.ParseInt(f[i], 10, 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			}
		}
		byName[name] = b
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]Benchmark, 0, len(byName))
	for _, b := range byName {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}
