// Command perfsnap records a performance snapshot of the simulator as an
// "hmtx-perf/v1" document (a BENCH_*.json file, see EXPERIMENTS.md).
//
// Usage:
//
//	perfsnap [-parallel N] [-scale N] [-bench-file bench.txt]
//	         [-note "..."] -o BENCH_1.json
//
// perfsnap runs the full experiment suite under a wall-clock timer and
// records both the host time and a digest of the simulated results (which
// must be identical across comparable snapshots — drift means the snapshots
// measured different work). -bench-file folds in microbenchmark results
// captured separately with
//
//	go test ./internal/memsys/ -run '^$' -bench . -benchmem > bench.txt
//
// Wall-clock timing deliberately lives here rather than in the simulation
// packages: tools/ is outside the determinism lint scope (simscope), so the
// simulator itself stays free of ambient time sources.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"hmtx/internal/engine"
	"hmtx/internal/experiments"
	"hmtx/internal/memsys"
	"hmtx/internal/vid"
	"hmtx/tools/benchfmt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("perfsnap: ")
	parallel := flag.Int("parallel", 0, "suite parallelism (0 = GOMAXPROCS, 1 = serial)")
	domains := flag.Int("domains", 1, "engine -domains setting for the suite run (1 = serial reference scheduler)")
	largeCores := flag.Int("large-cores", 0, "also time a large configuration with this many simulated cores at -domains 1,2,4,8 (0 = skip)")
	scale := flag.Int("scale", 1, "iteration-count multiplier for every benchmark")
	benchFile := flag.String("bench-file", "", "fold in `go test -bench -benchmem` output from this file")
	note := flag.String("note", "", "caveat to record in the document")
	out := flag.String("o", "", "output file (required)")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()
	if *out == "" {
		log.Fatal("-o is required")
	}

	doc := benchfmt.Doc{
		Schema: benchfmt.Schema,
		Host: benchfmt.Host{
			GoOS:   runtime.GOOS,
			GoArch: runtime.GOARCH,
			CPUs:   runtime.NumCPU(),
		},
	}

	if *benchFile != "" {
		f, err := os.Open(*benchFile)
		if err != nil {
			log.Fatal(err)
		}
		doc.Benchmarks, err = benchfmt.ParseGoBench(f)
		if err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}

	cfg := experiments.Default()
	cfg.Scale = *scale
	cfg.Parallelism = *parallel
	cfg.Domains = *domains
	progress := os.Stderr
	if *quiet {
		progress = nil
	}
	start := time.Now()
	results := experiments.RunAll(cfg, progress)
	wall := time.Since(start)

	bd := experiments.BuildDoc(cfg, results)
	var totalSeq int64
	for _, b := range bd.Benchmarks {
		totalSeq += b.SeqCycles
	}
	doc.Suite = benchfmt.Suite{
		Parallelism:    *parallel,
		Domains:        *domains,
		WallSeconds:    wall.Seconds(),
		GeomeanHMTX:    bd.GeomeanHMTX,
		TotalSeqCycles: totalSeq,
	}

	if *largeCores > 0 {
		doc.LargeRuns = runLarge(*largeCores, progress)
	}

	if *note != "" {
		doc.Notes = append(doc.Notes, *note)
	}
	if runtime.NumCPU() == 1 {
		doc.Notes = append(doc.Notes, "single-CPU host: suite parallelism cannot improve wall-clock here")
		if *largeCores > 0 {
			doc.Notes = append(doc.Notes, "single-CPU host: large_runs record -domains overhead only; wall-clock speedup needs a multi-CPU host")
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	//hmtx:detsafe perfsnap snapshots deliberately record host wall-clock and CPU metadata; profdiff compares cycle counts, never these fields
	if err := benchfmt.Write(f, doc); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "perfsnap: suite %.2fs wall (parallelism %d, domains %d), %d microbenchmarks -> %s\n",
		wall.Seconds(), *parallel, *domains, len(doc.Benchmarks), *out)
}

// largeProgs builds the scaling workload for -large-cores: every core runs
// transactions over a private line (loads, computes, learned branches), with
// commit arbitration as the only cross-core serialisation — the same shape as
// the engine's BenchmarkScheduler, at a configurable core count.
func largeProgs(nCores, txs int) []engine.Program {
	progs := make([]engine.Program, nCores)
	for i := 0; i < nCores; i++ {
		i := i
		progs[i] = func(e *engine.Env) {
			base := memsys.Addr(0x100000 + i*0x1000)
			for r := 0; r < txs; r++ {
				seq := vid.Seq(r*nCores + i + 1)
				e.Begin(seq)
				e.Store(base, uint64(r))
				for k := 0; k < 40; k++ {
					e.Load(base)
					e.Compute(int64(2 + k%7))
					e.Branch(uint64(i), true)
				}
				e.Commit(seq)
			}
		}
	}
	return progs
}

// runLarge times the large configuration at -domains 1, 2, 4 and 8 and
// verifies the determinism contract across them: identical simulated cycles
// and instructions, only wall-clock may differ.
func runLarge(cores int, progress *os.File) []benchfmt.LargeRun {
	const txs = 3
	var runs []benchfmt.LargeRun
	for _, d := range []int{1, 2, 4, 8} {
		cfg := engine.DefaultConfig()
		cfg.Mem.Cores = cores
		cfg.Mem.VIDSpace = vid.Space{Bits: 8}
		cfg.Domains = d
		start := time.Now()
		s := engine.New(cfg)
		res := s.Run(largeProgs(cores, txs))
		wall := time.Since(start)
		if res.Aborted {
			log.Fatalf("large run (domains %d) aborted: %s", d, res.Cause)
		}
		st := s.Stats()
		runs = append(runs, benchfmt.LargeRun{
			Cores:        cores,
			Domains:      d,
			WallSeconds:  wall.Seconds(),
			Cycles:       res.Cycles,
			Instructions: st.Instructions,
		})
		if progress != nil {
			fmt.Fprintf(progress, "perfsnap: large %d-core run, domains %d: %.3fs wall, %d cycles\n",
				cores, d, wall.Seconds(), res.Cycles)
		}
	}
	for _, r := range runs[1:] {
		if r.Cycles != runs[0].Cycles || r.Instructions != runs[0].Instructions {
			log.Fatalf("large run determinism violated: domains %d simulated %d cycles / %d instructions, serial %d / %d",
				r.Domains, r.Cycles, r.Instructions, runs[0].Cycles, runs[0].Instructions)
		}
	}
	return runs
}
