// Command perfsnap records a performance snapshot of the simulator as an
// "hmtx-perf/v1" document (a BENCH_*.json file, see EXPERIMENTS.md).
//
// Usage:
//
//	perfsnap [-parallel N] [-scale N] [-bench-file bench.txt]
//	         [-note "..."] -o BENCH_1.json
//
// perfsnap runs the full experiment suite under a wall-clock timer and
// records both the host time and a digest of the simulated results (which
// must be identical across comparable snapshots — drift means the snapshots
// measured different work). -bench-file folds in microbenchmark results
// captured separately with
//
//	go test ./internal/memsys/ -run '^$' -bench . -benchmem > bench.txt
//
// Wall-clock timing deliberately lives here rather than in the simulation
// packages: tools/ is outside the determinism lint scope (simscope), so the
// simulator itself stays free of ambient time sources.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"hmtx/internal/experiments"
	"hmtx/tools/benchfmt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("perfsnap: ")
	parallel := flag.Int("parallel", 0, "suite parallelism (0 = GOMAXPROCS, 1 = serial)")
	scale := flag.Int("scale", 1, "iteration-count multiplier for every benchmark")
	benchFile := flag.String("bench-file", "", "fold in `go test -bench -benchmem` output from this file")
	note := flag.String("note", "", "caveat to record in the document")
	out := flag.String("o", "", "output file (required)")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()
	if *out == "" {
		log.Fatal("-o is required")
	}

	doc := benchfmt.Doc{
		Schema: benchfmt.Schema,
		Host: benchfmt.Host{
			GoOS:   runtime.GOOS,
			GoArch: runtime.GOARCH,
			CPUs:   runtime.NumCPU(),
		},
	}

	if *benchFile != "" {
		f, err := os.Open(*benchFile)
		if err != nil {
			log.Fatal(err)
		}
		doc.Benchmarks, err = benchfmt.ParseGoBench(f)
		if err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}

	cfg := experiments.Default()
	cfg.Scale = *scale
	cfg.Parallelism = *parallel
	progress := os.Stderr
	if *quiet {
		progress = nil
	}
	start := time.Now()
	results := experiments.RunAll(cfg, progress)
	wall := time.Since(start)

	bd := experiments.BuildDoc(cfg, results)
	var totalSeq int64
	for _, b := range bd.Benchmarks {
		totalSeq += b.SeqCycles
	}
	doc.Suite = benchfmt.Suite{
		Parallelism:    *parallel,
		WallSeconds:    wall.Seconds(),
		GeomeanHMTX:    bd.GeomeanHMTX,
		TotalSeqCycles: totalSeq,
	}

	if *note != "" {
		doc.Notes = append(doc.Notes, *note)
	}
	if runtime.NumCPU() == 1 {
		doc.Notes = append(doc.Notes, "single-CPU host: suite parallelism cannot improve wall-clock here")
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	//hmtx:detsafe perfsnap snapshots deliberately record host wall-clock and CPU metadata; profdiff compares cycle counts, never these fields
	if err := benchfmt.Write(f, doc); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "perfsnap: suite %.2fs wall (parallelism %d), %d microbenchmarks -> %s\n",
		wall.Seconds(), *parallel, len(doc.Benchmarks), *out)
}
