package hotalloc_test

import (
	"testing"

	"hmtx/tools/analyzers/analysis/analysistest"
	"hmtx/tools/analyzers/hotalloc"
)

func TestHotalloc(t *testing.T) {
	// hotuser carries the want comments; hotlib only feeds it facts.
	analysistest.Run(t, analysistest.TestData(), hotalloc.Analyzer, "hotuser")
}
