// Package hotuser exercises every hotalloc rule. Only functions marked
// //hmtx:hotpath are reported; unmarked helpers contribute cleanliness facts.
package hotuser

import (
	"fmt"
	"math/bits"

	"hotlib"
)

type line struct {
	tag  uint64
	data [8]byte
}

var (
	global *line
	cb     func() uint64
	table  = map[uint64]uint64{}
)

//hmtx:hotpath
func makeAlloc(n int) []int {
	return make([]int, n) // want `make allocates`
}

//hmtx:hotpath
func newAlloc() *line {
	return new(line) // want `new allocates`
}

//hmtx:hotpath
func appendAlloc(s []int, v int) []int {
	return append(s, v) // want `append may grow its backing array`
}

//hmtx:hotpath
func mapLit() map[uint64]uint64 {
	return map[uint64]uint64{1: 1} // want `map literal allocates`
}

//hmtx:hotpath
func concat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//hmtx:hotpath
func byteConv(s string) []byte {
	return []byte(s) // want `conversion between string and byte/rune slice allocates`
}

//hmtx:hotpath
func boxes(v uint64) {
	fmt.Println(v) // want `boxing uint64 into any allocates` `calls fmt.Println, which is not allocation-free`
}

// installBad mirrors the PR 8 memsys install() bug: taking &ln in the panic
// argument heap-moves the parameter on every call, panic or not.
//
//hmtx:hotpath
func installBad(ln line) uint64 {
	if ln.tag == 0 {
		panic(fmt.Sprintf("zero tag %v", &ln)) // want `parameter ln escapes to the heap`
	}
	return ln.tag
}

// installGood is the fixed form: the copy lives only on the panic-bound
// path, so the fast path stays allocation-free.
//
//hmtx:hotpath
func installGood(ln line) uint64 {
	if ln.tag == 0 {
		bad := ln
		panic(fmt.Sprintf("zero tag %v", &bad))
	}
	return ln.tag
}

//hmtx:hotpath
func escapingLit(tag uint64) {
	global = &line{tag: tag} // want `escaping composite literal allocates \(stored in a package-level variable\)`
}

// stackLit's literal never escapes: stack-allocated, allowed.
//
//hmtx:hotpath
func stackLit(tag uint64) uint64 {
	l := line{tag: tag}
	return l.tag
}

//hmtx:hotpath
func localPtrLit(tag uint64) uint64 {
	l := &line{tag: tag}
	l.tag++
	return l.tag
}

//hmtx:hotpath
func escapingClosure(v uint64) {
	cb = func() uint64 { return v } // want `escaping closure allocates \(stored in a package-level variable\)`
}

//hmtx:hotpath
func spawns(f func()) {
	go f() // want `go statement allocates a goroutine` `dynamic call cannot be proven allocation-free`
}

// Map reads and writes are amortized-free in steady state and deliberately
// allowed; TestHotPathZeroAllocs pins the dynamic behaviour.
//
//hmtx:hotpath
func mapOps(k uint64) uint64 {
	table[k] = k
	return table[k]
}

func helperClean(x uint64) uint64 { return x * 3 }

func helperAlloc(n int) []int { return make([]int, n) }

//hmtx:hotpath
func callsClean(x uint64) uint64 {
	return helperClean(x)
}

//hmtx:hotpath
func callsAlloc(n int) int {
	s := helperAlloc(n) // want `calls helperAlloc, which is not allocation-free \(make allocates\)`
	return len(s)
}

//hmtx:hotpath
func callsImportedClean(x int) int {
	return hotlib.Clean(x)
}

//hmtx:hotpath
func callsImportedAlloc(n int) int {
	return len(hotlib.Alloc(n)) // want `calls hotlib.Alloc, which is not allocation-free \(make allocates\)`
}

// hotlib.Keep is allocation-free but leaks its parameter: the allocation is
// the caller's local moving to the heap, reported here.
//
//hmtx:hotpath
func leakThroughImport() {
	x := 7
	hotlib.Keep(&x) // want `local x escapes to the heap \(passed to hotlib.Keep\)`
}

//hmtx:hotpath
func waived(n int) []int {
	return make([]int, n) //hmtx:allocok cold resize path, measured separately
}

//hmtx:hotpath
func waivedNoReason(n int) []int {
	return make([]int, n) /*hmtx:allocok*/ // want `//hmtx:allocok annotation needs a reason`
}

func notHotStale(x int) int {
	return x + 1 /*hmtx:allocok nothing allocates here*/ // want `stale //hmtx:allocok annotation`
}

// bitsClean exercises the known-clean stdlib allowlist: math/bits functions
// are compiler intrinsics and carry no facts, but never allocate.
//
//hmtx:hotpath
func bitsClean(x uint64) int {
	return bits.TrailingZeros64(x)
}

// snoopLike mirrors the memsys snoop shape: a non-escaping closure whose
// panic-bound Sprintf is gated by the literal's own CFG, called through a
// local variable under a waiver.
//
//hmtx:hotpath
func snoopLike(xs []uint64, bad uint64) uint64 {
	var best uint64
	consider := func(v uint64) {
		if v == bad {
			panic(fmt.Sprintf("bad value %d", v))
		}
		if v > best {
			best = v
		}
	}
	for _, v := range xs {
		consider(v) //hmtx:allocok non-escaping closure called through a local variable
	}
	return best
}
