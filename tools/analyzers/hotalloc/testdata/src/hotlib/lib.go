// Package hotlib is a fixture dependency for the hotalloc tests: its
// cleanliness facts must cross the package boundary into hotuser.
package hotlib

var sink *int

// Clean is allocation-free.
func Clean(x int) int { return x + 1 }

// Alloc allocates.
func Alloc(n int) []int { return make([]int, n) }

// Keep is allocation-free itself but leaks its argument, so a caller
// passing &local heap-allocates the local on its own side.
func Keep(p *int) { sink = p }
