// Package hotalloc proves functions marked //hmtx:hotpath allocation-free at
// lint time (DESIGN.md §17). The hmtx fast path — TryLocalLoad, the snoop
// handlers, line settling — is pinned dynamically by TestHotPathZeroAllocs,
// but an allocation that test's inputs never exercise (a panic-argument
// escape, a cold branch, growth past a fixture-sized map) slips through; PR 8
// found the install() `&ln` escape only by benchmark. This analyzer makes the
// contract static.
//
// A hotpath function may not, outside panic-bound blocks:
//
//   - call make or new, append to a slice, build a map literal, concatenate
//     strings, or convert between string and []byte/[]rune;
//   - box a non-pointer-shaped value into an interface (call arguments,
//     assignments, returns);
//   - let a composite literal, closure, or method value escape (non-escaping
//     ones are stack-allocated and allowed);
//   - let a local variable's address escape, unless both the variable's
//     declaration and the escape sink sit in a panic-bound block;
//   - let a parameter or receiver escape at all — an escaping entry variable
//     is heap-moved on every call, panic or not (the PR 8 `&ln` bug class);
//   - spawn goroutines or defer;
//   - call anything not itself provably allocation-free: callees are checked
//     transitively through the package call graph and, across packages,
//     through analyzer facts, so a hotpath function may call helpers that are
//     clean without marking them hot. Dynamic calls and functions with no
//     fact (the stdlib) are never clean outside panic-bound blocks, except
//     for a short allowlist of pure-compute stdlib packages (math, math/bits)
//     whose functions are machine-word arithmetic, mostly compiler
//     intrinsics, and cannot allocate.
//
// Deliberately allowed: map reads and writes (steady-state amortized-free,
// pinned dynamically), channel operations, by-value struct copies, and
// non-escaping literals/closures.
//
// The escape facts come from the valueflow layer
// (tools/analyzers/analysis/valueflow), which over-approximates: anything it
// reports non-escaping truly cannot escape, so a clean bill here is sound.
// The price is occasional false findings, which are waived in place:
//
//	h.sanTouch(c, idx) //hmtx:allocok sanitizer-only map insert, off on the measured path
//
// The reason is mandatory and a waiver that stops suppressing anything is
// reported as stale, exactly like //hmtx:detsafe. Test files are exempt.
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"hmtx/tools/analyzers/analysis"
	"hmtx/tools/analyzers/analysis/callgraph"
	"hmtx/tools/analyzers/analysis/valueflow"
)

var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "proves //hmtx:hotpath functions statically allocation-free",
	Run:  run,
}

// cleanFact is exported for every declared function so importing packages can
// check callees without their syntax.
type cleanFact struct {
	Clean  bool
	Reason string // first finding, for the caller's diagnostic
	Leaks  []bool // valueflow parameter-leak summary
}

func (*cleanFact) AFact() {}

// A finding is one candidate allocation, pre-waiver.
type finding struct {
	pos token.Pos
	msg string
}

// knownCleanPkgs lists stdlib packages whose functions are pure machine-word
// compute (largely compiler intrinsics) and can never allocate. The stdlib is
// loaded from export data, never analyzed, so it carries no facts; without
// the allowlist every bits.TrailingZeros64 on the fast path would need a
// waiver.
var knownCleanPkgs = map[string]bool{
	"math":      true,
	"math/bits": true,
}

// A callEdge is a static call whose cleanliness is resolved in the
// interprocedural phase.
type callEdge struct {
	pos    token.Pos
	callee *types.Func
	gated  bool
}

type lineKey struct {
	file string
	line int
}

type annotation struct {
	pos    token.Pos
	reason string
	used   bool
}

func run(pass *analysis.Pass) (any, error) {
	var files []*ast.File
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		files = append(files, file)
	}

	cg := callgraph.Build(pass)
	waivers := collectAllocok(pass, files)
	hotLines := collectHotLines(pass, files)

	// Bottom-up valueflow summaries, iterated so leak information propagates
	// through in-package cycles.
	sums := map[*types.Func]*valueflow.Result{}
	leakOf := func(fn *types.Func) []bool {
		if s, ok := sums[fn]; ok {
			return s.ParamLeaks
		}
		var f cleanFact
		if pass.ImportObjectFact(fn, &f) {
			return f.Leaks
		}
		return nil
	}
	order := cg.PostOrder()
	isTestDecl := func(n ast.Node) bool {
		return strings.HasSuffix(pass.Fset.Position(n.Pos()).Filename, "_test.go")
	}
	for iter := 0; iter < 16; iter++ {
		changed := false
		for _, n := range order {
			if n.Decl.Body == nil || isTestDecl(n.Decl) {
				continue
			}
			r := valueflow.Analyze(pass, n.Decl, leakOf)
			if prev, ok := sums[n.Fn]; !ok || leaksDiffer(prev.ParamLeaks, r.ParamLeaks) {
				changed = true
			}
			sums[n.Fn] = r
		}
		if !changed {
			break
		}
	}

	// Local findings and call edges per function, waivers applied in place.
	locals := map[*types.Func][]finding{}
	edges := map[*types.Func][]callEdge{}
	hot := map[*types.Func]bool{}
	for _, n := range order {
		res := sums[n.Fn]
		if res == nil {
			continue
		}
		fs, es := localFindings(pass, n.Decl, res)
		locals[n.Fn] = waive(pass, waivers, fs)
		edges[n.Fn] = es
		hot[n.Fn] = isHot(pass, hotLines, n.Decl)
	}

	// Interprocedural phase: a function stays clean only while it has no
	// unwaived local findings and every non-gated static callee is clean.
	// Cleanliness only decays, so the fixpoint terminates.
	clean := map[*types.Func]bool{}
	reason := map[*types.Func]string{}
	for fn, fs := range locals {
		clean[fn] = len(fs) == 0
		if len(fs) > 0 {
			reason[fn] = fs[0].msg
		}
	}
	calleeClean := func(fn *types.Func) (bool, string) {
		if c, ok := clean[fn]; ok {
			return c, reason[fn]
		}
		var f cleanFact
		if pass.ImportObjectFact(fn, &f) {
			return f.Clean, f.Reason
		}
		if p := fn.Pkg(); p != nil && knownCleanPkgs[p.Path()] {
			return true, ""
		}
		return false, "no allocation-freedom fact"
	}
	callFindings := map[*types.Func][]finding{}
	for {
		changed := false
		for fn, es := range edges {
			if !clean[fn] && !hot[fn] {
				continue // already dirty; only hot functions need the details
			}
			var fs []finding
			for _, e := range es {
				if e.gated {
					continue
				}
				ok, why := calleeClean(e.callee)
				if ok {
					continue
				}
				msg := fmt.Sprintf("calls %s, which is not allocation-free", funcName(pass, e.callee))
				if why != "" {
					msg += " (" + why + ")"
				}
				fs = append(fs, finding{e.pos, msg})
			}
			fs = waive(pass, waivers, fs)
			callFindings[fn] = fs
			if len(fs) > 0 && clean[fn] {
				clean[fn] = false
				if reason[fn] == "" {
					reason[fn] = fs[0].msg
				}
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Report, hot functions only; everything else just carries facts.
	for _, n := range order {
		if !hot[n.Fn] {
			continue
		}
		fs := append(append([]finding{}, locals[n.Fn]...), callFindings[n.Fn]...)
		sort.Slice(fs, func(i, j int) bool { return fs[i].pos < fs[j].pos })
		for _, f := range fs {
			pass.Reportf(f.pos, "hotpath function %s: %s", n.Fn.Name(), f.msg)
		}
	}
	for _, a := range sortedWaivers(waivers) {
		switch {
		case a.reason == "":
			pass.Reportf(a.pos, "//hmtx:allocok annotation needs a reason")
		case !a.used:
			pass.Reportf(a.pos, "stale //hmtx:allocok annotation: no allocation is reported on this line")
		}
	}

	for fn, res := range sums {
		pass.ExportObjectFact(fn, &cleanFact{Clean: clean[fn], Reason: reason[fn], Leaks: res.ParamLeaks})
	}
	return nil, nil
}

func leaksDiffer(a, b []bool) bool {
	if len(a) != len(b) {
		return true
	}
	for i := range a {
		if a[i] != b[i] {
			return true
		}
	}
	return false
}

// localFindings walks one function body for intrinsic allocation sites and
// folds in the valueflow escape results. Call edges to static callees are
// returned separately for the interprocedural phase.
func localFindings(pass *analysis.Pass, decl *ast.FuncDecl, res *valueflow.Result) ([]finding, []callEdge) {
	var fs []finding
	var es []callEdge
	gated := res.PanicGated
	add := func(pos token.Pos, format string, args ...any) {
		fs = append(fs, finding{pos, fmt.Sprintf(format, args...)})
	}

	// Innermost enclosing signature for return-boxing checks: the decl plus
	// every function literal, matched by position.
	type sigSpan struct {
		lo, hi token.Pos
		sig    *types.Signature
	}
	spans := []sigSpan{{decl.Pos(), decl.End(), pass.TypesInfo.Defs[decl.Name].Type().(*types.Signature)}}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			if sig, ok := pass.TypesInfo.Types[lit].Type.(*types.Signature); ok {
				spans = append(spans, sigSpan{lit.Pos(), lit.End(), sig})
			}
		}
		return true
	})
	sigAt := func(pos token.Pos) *types.Signature {
		best := spans[0].sig
		bestLo := spans[0].lo
		for _, s := range spans[1:] {
			if s.lo <= pos && pos <= s.hi && s.lo > bestLo {
				best, bestLo = s.sig, s.lo
			}
		}
		return best
	}

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if tv, ok := pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() {
				if !gated(n.Pos()) && stringByteConv(pass, n) {
					add(n.Pos(), "conversion between string and byte/rune slice allocates")
				}
				if !gated(n.Pos()) {
					checkBox(pass, add, tv.Type, n.Args[0])
				}
				return true
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					if gated(n.Pos()) {
						return true
					}
					switch id.Name {
					case "make":
						add(n.Pos(), "make allocates")
					case "new":
						add(n.Pos(), "new allocates")
					case "append":
						add(n.Pos(), "append may grow its backing array")
					}
					return true
				}
			}
			callee := callgraph.StaticCallee(pass.TypesInfo, n)
			if callee != nil {
				es = append(es, callEdge{n.Pos(), callee, gated(n.Pos())})
			} else if !gated(n.Pos()) {
				add(n.Pos(), "dynamic call cannot be proven allocation-free")
			}
			// Interface-typed parameters box concrete arguments.
			if sig, ok := pass.TypesInfo.Types[n.Fun].Type.(*types.Signature); ok && !gated(n.Pos()) {
				for i, arg := range n.Args {
					if pt := paramType(sig, i, n); pt != nil {
						checkBox(pass, add, pt, arg)
					}
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && !gated(n.Pos()) {
				if tv, ok := pass.TypesInfo.Types[n]; ok {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						add(n.Pos(), "string concatenation allocates")
					}
				}
			}
		case *ast.CompositeLit:
			if tv, ok := pass.TypesInfo.Types[n]; ok && !gated(n.Pos()) {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					add(n.Pos(), "map literal allocates")
				}
			}
		case *ast.GoStmt:
			add(n.Pos(), "go statement allocates a goroutine")
		case *ast.DeferStmt:
			if !gated(n.Pos()) {
				add(n.Pos(), "defer may allocate its frame")
			}
		case *ast.AssignStmt:
			if gated(n.Pos()) {
				return true
			}
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if tv, ok := pass.TypesInfo.Types[lhs]; ok {
						checkBox(pass, add, tv.Type, n.Rhs[i])
					} else if id, ok := lhs.(*ast.Ident); ok {
						if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
							checkBox(pass, add, v.Type(), n.Rhs[i])
						}
					}
				}
			}
		case *ast.ValueSpec:
			if n.Type == nil || gated(n.Pos()) {
				return true
			}
			if tv, ok := pass.TypesInfo.Types[n.Type]; ok {
				for _, val := range n.Values {
					checkBox(pass, add, tv.Type, val)
				}
			}
		case *ast.ReturnStmt:
			if gated(n.Pos()) {
				return true
			}
			sig := sigAt(n.Pos())
			if sig != nil && len(n.Results) == sig.Results().Len() {
				for i, r := range n.Results {
					checkBox(pass, add, sig.Results().At(i).Type(), r)
				}
			}
		}
		return true
	})

	entry := map[*types.Var]bool{}
	for _, v := range res.EntryVars {
		entry[v] = true
	}
	for v, esc := range res.EscapedVars {
		if entry[v] {
			add(esc.Pos, "parameter %s escapes to the heap (%s) and is heap-moved on every call", v.Name(), esc.Reason)
			continue
		}
		if gated(esc.Pos) && gated(v.Pos()) {
			continue // allocation happens only on the panic-bound path
		}
		add(esc.Pos, "local %s escapes to the heap (%s)", v.Name(), esc.Reason)
	}
	for expr, esc := range res.EscapedExprs {
		if gated(esc.Pos) && gated(expr.Pos()) {
			continue
		}
		kind := "composite literal"
		switch expr.(type) {
		case *ast.FuncLit:
			kind = "closure"
		case *ast.SelectorExpr:
			kind = "method value"
		}
		add(expr.Pos(), "escaping %s allocates (%s)", kind, esc.Reason)
	}

	sort.Slice(fs, func(i, j int) bool {
		if fs[i].pos != fs[j].pos {
			return fs[i].pos < fs[j].pos
		}
		return fs[i].msg < fs[j].msg
	})
	return fs, es
}

// paramType returns the declared type of argument i, nil for positions that
// cannot box (no signature, f(g()) spreads, untracked).
func paramType(sig *types.Signature, i int, call *ast.CallExpr) types.Type {
	if len(call.Args) == 1 {
		if _, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr); ok && sig.Params().Len() != 1 {
			return nil // f(g()) multi-value spread
		}
	}
	switch {
	case sig.Variadic() && i >= sig.Params().Len()-1:
		if call.Ellipsis.IsValid() {
			return nil // passing an existing slice does not box per-element
		}
		if s, ok := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	case i < sig.Params().Len():
		return sig.Params().At(i).Type()
	}
	return nil
}

// checkBox reports when assigning val to target type boxes a value into an
// interface with a heap allocation: the target is an interface, the value's
// static type is concrete, and the value is not a single pointer word (only
// pointers, channels, maps, funcs and unsafe.Pointer fit a bare iface data
// word; everything else — ints, structs, strings, slices — is copied to the
// heap).
func checkBox(pass *analysis.Pass, add func(token.Pos, string, ...any), target types.Type, val ast.Expr) {
	if target == nil {
		return
	}
	if _, ok := target.Underlying().(*types.Interface); !ok {
		return
	}
	tv, ok := pass.TypesInfo.Types[val]
	if !ok || tv.Type == nil {
		return
	}
	vt := tv.Type
	if b, ok := vt.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	if _, isIface := vt.Underlying().(*types.Interface); isIface {
		return // interface-to-interface carries the existing box
	}
	if boxFree(vt) {
		return
	}
	// Constants of pointer-word size may hit the runtime's small-value cache,
	// but the general case allocates; stay conservative.
	add(val.Pos(), "boxing %s into %s allocates", types.TypeString(vt, types.RelativeTo(pass.Pkg)), types.TypeString(target, types.RelativeTo(pass.Pkg)))
}

func boxFree(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func stringByteConv(pass *analysis.Pass, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	to, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return false
	}
	from, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok {
		return false
	}
	return (isString(to.Type) && isByteOrRuneSlice(from.Type)) ||
		(isByteOrRuneSlice(to.Type) && isString(from.Type))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func funcName(pass *analysis.Pass, fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		name = types.TypeString(sig.Recv().Type(), types.RelativeTo(pass.Pkg)) + "." + name
	} else if fn.Pkg() != nil && fn.Pkg() != pass.Pkg {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}

// isHot reports whether decl carries a //hmtx:hotpath marker, in its doc
// comment or on the line directly above the declaration.
func isHot(pass *analysis.Pass, hotLines map[lineKey]bool, decl *ast.FuncDecl) bool {
	if decl.Doc != nil {
		for _, c := range decl.Doc.List {
			if isHotMarker(c.Text) {
				return true
			}
		}
	}
	p := pass.Fset.Position(decl.Pos())
	return hotLines[lineKey{p.Filename, p.Line - 1}] || hotLines[lineKey{p.Filename, p.Line}]
}

// isHotMarker matches the directive form only — //hmtx:hotpath at the start
// of the comment — so prose that merely mentions the directive (this file,
// DESIGN.md quotes) does not mark anything hot.
func isHotMarker(text string) bool {
	body := strings.TrimSuffix(strings.TrimPrefix(strings.TrimPrefix(text, "//"), "/*"), "*/")
	rest, ok := strings.CutPrefix(body, "hmtx:hotpath")
	return ok && (rest == "" || rest[0] == ' ' || rest[0] == '\t')
}

func collectHotLines(pass *analysis.Pass, files []*ast.File) map[lineKey]bool {
	lines := map[lineKey]bool{}
	for _, file := range files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				if isHotMarker(c.Text) {
					p := pass.Fset.Position(c.Pos())
					lines[lineKey{p.Filename, p.Line}] = true
				}
			}
		}
	}
	return lines
}

// waive drops findings covered by an //hmtx:allocok annotation on the same
// line or the line above, marking the annotation used.
func waive(pass *analysis.Pass, ann map[lineKey]*annotation, fs []finding) []finding {
	var out []finding
	for _, f := range fs {
		p := pass.Fset.Position(f.pos)
		a := ann[lineKey{p.Filename, p.Line}]
		if a == nil {
			a = ann[lineKey{p.Filename, p.Line - 1}]
		}
		if a != nil {
			a.used = true
			continue
		}
		out = append(out, f)
	}
	return out
}

func collectAllocok(pass *analysis.Pass, files []*ast.File) map[lineKey]*annotation {
	ann := map[lineKey]*annotation{}
	for _, file := range files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				body := strings.TrimSuffix(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"), "*/")
				text, ok := strings.CutPrefix(body, "hmtx:allocok")
				if !ok {
					continue
				}
				p := pass.Fset.Position(c.Pos())
				ann[lineKey{p.Filename, p.Line}] = &annotation{
					pos:    c.Pos(),
					reason: strings.TrimSpace(text),
				}
			}
		}
	}
	return ann
}

func sortedWaivers(ann map[lineKey]*annotation) []*annotation {
	out := make([]*annotation, 0, len(ann))
	for _, a := range ann {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}
