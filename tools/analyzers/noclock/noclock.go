// Package noclock keeps wall-clock time and ambient randomness out of the
// simulation packages.
//
// The determinism contract (DESIGN.md) requires that a run be a pure
// function of Config: simulated time advances only through engine cycles,
// and every random decision flows from the single *rand.Rand the engine
// seeds with Config.Seed. The analyzer therefore forbids, in simulation
// packages:
//
//   - time.Now, time.Since, time.Until, time.Tick, time.After,
//     time.AfterFunc, time.NewTicker, time.NewTimer — wall-clock reads;
//   - package-level math/rand and math/rand/v2 functions (rand.Intn,
//     rand.Float64, rand.Shuffle, ...) — the process-global generator is
//     seeded randomly and shared across goroutines;
//   - RNG constructors (rand.New, rand.NewSource, rand.NewPCG,
//     rand.NewChaCha8, rand.NewZipf) anywhere except the engine package,
//     which owns seeding, and _test.go files, which may build private
//     generators with fixed seeds.
//
// Methods on an existing *rand.Rand value are always allowed — that value
// necessarily came from an approved constructor.
package noclock

import (
	"go/ast"
	"go/types"
	"strings"

	"hmtx/tools/analyzers/analysis"
	"hmtx/tools/analyzers/simscope"
)

var Analyzer = &analysis.Analyzer{
	Name: "noclock",
	Doc:  "forbids wall-clock reads and unseeded randomness in simulation packages",
	Run:  run,
}

var forbiddenTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Tick": true,
	"After": true, "AfterFunc": true, "NewTicker": true, "NewTimer": true,
}

var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !simscope.Covers(pass.PkgPath) {
		return nil, nil
	}
	// The engine owns RNG construction: engine.New seeds exactly one
	// generator from cfg.Seed and everything else draws from it.
	inEngine := strings.HasSuffix(strings.TrimSuffix(pass.PkgPath, "_test"), "internal/engine")

	for _, file := range pass.Files {
		inTestFile := strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go")
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // method values/calls, e.g. rng.Intn — allowed
			}
			switch fn.Pkg().Path() {
			case "time":
				if forbiddenTime[fn.Name()] {
					pass.Reportf(sel.Pos(), "time.%s reads the wall clock; simulated time must come from engine cycles", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				switch {
				case randConstructors[fn.Name()]:
					if !inEngine && !inTestFile {
						pass.Reportf(sel.Pos(), "rand.%s outside internal/engine; all simulation randomness must be seeded from Config.Seed by the engine", fn.Name())
					}
				default:
					pass.Reportf(sel.Pos(), "global rand.%s uses the shared, randomly-seeded generator; draw from the engine's Config.Seed-seeded *rand.Rand", fn.Name())
				}
			}
			return true
		})
	}
	return nil, nil
}
