package noclock_test

import (
	"testing"

	"hmtx/tools/analyzers/analysis/analysistest"
	"hmtx/tools/analyzers/noclock"
)

func TestNoclock(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), noclock.Analyzer,
		"clock", "hmtx/internal/engine", "hmtx/internal/vid")
}
