package engine

import "math/rand"

// The engine owns RNG construction: seeding from Config.Seed happens here,
// so constructors are allowed...
func newRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// ...but the process-global generator is still off limits.
func sample() int64 {
	return rand.Int63() // want `global rand\.Int63`
}
