package vid

import "time"

// This fixture stands in for an hmtx package outside the simulation scope
// (see simscope.SimPackages): the rules do not apply here.
func stamp() int64 {
	return time.Now().UnixNano()
}
