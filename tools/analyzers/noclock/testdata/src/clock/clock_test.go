package clock

import "math/rand"

// Test files may build private generators with fixed seeds.
func fixedGen() *rand.Rand {
	return rand.New(rand.NewSource(7))
}
