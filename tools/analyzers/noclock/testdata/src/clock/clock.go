package clock

import (
	"math/rand"
	"time"
)

func stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now reads the wall clock`
}

func wait() {
	<-time.After(time.Second) // want `time\.After reads the wall clock`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func roll() int {
	return rand.Intn(6) // want `global rand\.Intn`
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global rand\.Shuffle`
}

func gen() *rand.Rand {
	return rand.New(rand.NewSource(1)) // want `rand\.New outside internal/engine` `rand\.NewSource outside internal/engine`
}

// Drawing from an existing generator is always fine: the value necessarily
// came from an approved constructor.
func draw(rng *rand.Rand) int {
	return rng.Intn(6)
}

// Durations and time arithmetic on values passed in are fine; only the
// wall-clock sources are forbidden.
func deadline(t time.Time) time.Time {
	return t.Add(3 * time.Second)
}
