package memsys

import "hmtx/internal/obs"

type hier struct {
	tracer *obs.Tracer
}

// Guarded emits are the contract: no diagnostics.
func (h *hier) guarded(addr uint64) {
	if h.tracer.Enabled(obs.CatBus) {
		h.tracer.Emit(obs.Event{Addr: addr})
	}
	if h.tracer.Enabled(obs.CatBus) && addr != 0 {
		// Nested inside the guard body still counts.
		if addr > 16 {
			h.tracer.Emit(obs.Event{Addr: addr})
		}
		h.tracer.Emit(obs.Event{Addr: addr + 1})
	}
	tr := h.tracer
	if tr.Enabled(obs.CatTxn) {
		tr.SetTime(1)
		tr.Emit(obs.Event{})
	}
}

func (h *hier) unguarded(addr uint64) {
	h.tracer.Emit(obs.Event{Addr: addr}) // want `Emit outside an Enabled\(\) guard`
	if addr != 0 {
		// An if statement that never consults Enabled is not a guard.
		h.tracer.Emit(obs.Event{Addr: addr}) // want `Emit outside an Enabled\(\) guard`
	}
	if h.tracer.Enabled(obs.CatBus) {
		_ = addr
	}
	// After a guard body ends the gate is closed again.
	h.tracer.Emit(obs.Event{Addr: addr}) // want `Emit outside an Enabled\(\) guard`
}

// Methods named Emit on other types are not tracer emits.
type logger struct{}

func (logger) Emit(e obs.Event) {}

func use(l logger) { l.Emit(obs.Event{}) }
