// Package other is outside internal/memsys and internal/engine, so the gate
// does not apply: unguarded emits are fine off the simulated fast path.
package other

import "hmtx/internal/obs"

func Dump(t *obs.Tracer) {
	t.Emit(obs.Event{Addr: 1})
}
