// Package obs is a minimal stand-in for hmtx/internal/obs: the analyzer
// matches the Tracer type by name and package-path suffix, so the fixture
// only needs the methods the gate cares about.
package obs

type Category uint64

const (
	CatBus Category = 1 << iota
	CatTxn
)

type Event struct {
	Cycle int64
	Addr  uint64
}

type Tracer struct{ mask Category }

func (t *Tracer) Enabled(c Category) bool { return t != nil && t.mask&c != 0 }
func (t *Tracer) Emit(e Event)            {}
func (t *Tracer) SetTime(now int64)       {}
