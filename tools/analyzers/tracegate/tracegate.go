// Package tracegate keeps event tracing off the simulator's fast path.
//
// The observability contract (DESIGN.md §10) is that a run with tracing
// disabled pays only one nil-check per potential event: every call to
// (*obs.Tracer).Emit inside internal/memsys and internal/engine must sit in
// the body of an if statement whose condition calls Enabled on a tracer, so
// the Event struct is never even built when no category is selected. The
// analyzer reports any Emit call in those packages that is not enclosed by
// such a guard.
//
// Test files are exempt: tests construct events deliberately and are not on
// the simulated fast path.
package tracegate

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hmtx/tools/analyzers/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "tracegate",
	Doc:  "requires every obs.Tracer.Emit in memsys/engine to be inside an Enabled() guard",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	pkg := strings.TrimSuffix(pass.PkgPath, "_test")
	if !strings.HasSuffix(pkg, "internal/memsys") && !strings.HasSuffix(pkg, "internal/engine") {
		return nil, nil
	}
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		// First pass: the body ranges of every if statement whose condition
		// consults Enabled on a tracer. Emits inside such a body (at any
		// nesting depth) are guarded.
		var guards []guard
		ast.Inspect(file, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			if condCallsEnabled(pass, ifs.Cond) {
				guards = append(guards, guard{ifs.Body.Pos(), ifs.Body.End()})
			}
			return true
		})
		// Second pass: every Emit method call on a tracer must fall inside
		// one of the collected guard bodies.
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isTracerMethod(pass, call, "Emit") {
				return true
			}
			for _, g := range guards {
				if g.lo <= call.Pos() && call.Pos() < g.hi {
					return true
				}
			}
			pass.Reportf(call.Pos(), "obs.Tracer.Emit outside an Enabled() guard; wrap it in `if tr.Enabled(cat) { ... }` to keep the fast path allocation-free")
			return true
		})
	}
	return nil, nil
}

type guard struct{ lo, hi token.Pos }

// condCallsEnabled reports whether the expression contains a call to the
// tracer's Enabled method, however it is combined (negation, &&, ||).
func condCallsEnabled(pass *analysis.Pass, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isTracerMethod(pass, call, "Enabled") {
			found = true
		}
		return !found
	})
	return found
}

// isTracerMethod reports whether call invokes the named method on a value
// whose type is obs.Tracer (or a pointer to it) from an internal/obs package.
func isTracerMethod(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return false
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Tracer" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/obs")
}
