package tracegate_test

import (
	"testing"

	"hmtx/tools/analyzers/analysis/analysistest"
	"hmtx/tools/analyzers/tracegate"
)

func TestTracegate(t *testing.T) {
	// sim/internal/memsys carries the want comments; other is out of scope
	// and must stay silent despite its unguarded Emit.
	analysistest.Run(t, analysistest.TestData(), tracegate.Analyzer,
		"sim/internal/memsys", "other")
}
