package detrange_test

import (
	"testing"

	"hmtx/tools/analyzers/analysis/analysistest"
	"hmtx/tools/analyzers/detrange"
)

func TestDetrange(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), detrange.Analyzer, "rangedet")
}
