// Package detrange flags `for range` loops over maps in simulation packages.
//
// Go randomizes map iteration order, so any map range whose body can affect
// simulation state, simulated time, or report text breaks the determinism
// contract (same Config.Seed => byte-identical output; see DESIGN.md). The
// analyzer permits bodies that are provably order-insensitive — pure
// key-indexed copies, deletes keyed by the range key, and integer
// accumulation — and asks for everything else to iterate a sorted key slice.
//
// Test files are exempt: they only talk to testing.T, which tolerates
// unordered reporting and cannot feed state back into a simulation run.
package detrange

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hmtx/tools/analyzers/analysis"
	"hmtx/tools/analyzers/simscope"
)

var Analyzer = &analysis.Analyzer{
	Name: "detrange",
	Doc:  "flags map iteration with order-sensitive bodies in simulation packages",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	if !simscope.Covers(pass.PkgPath) {
		return nil, nil
	}
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if orderInsensitive(pass, rs) {
				return true
			}
			pass.Reportf(rs.For, "range over map has an order-sensitive body; iterate a sorted key slice to keep runs deterministic")
			return true
		})
	}
	return nil, nil
}

// orderInsensitive reports whether every statement in the loop body commutes
// across iterations, making the map's random order unobservable.
func orderInsensitive(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	key, _ := rs.Key.(*ast.Ident)
	for _, stmt := range rs.Body.List {
		if !orderInsensitiveStmt(pass, key, stmt) {
			return false
		}
	}
	return true
}

func orderInsensitiveStmt(pass *analysis.Pass, key *ast.Ident, stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		switch s.Tok {
		case token.ASSIGN:
			// m2[k] = v: writes to distinct keys commute. Every target must
			// be indexed by the range key and no operand may call anything.
			for _, lhs := range s.Lhs {
				ix, ok := lhs.(*ast.IndexExpr)
				if !ok || !isIdent(pass, ix.Index, key) {
					return false
				}
			}
			return !anyCalls(s.Rhs)
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN,
			token.AND_ASSIGN, token.XOR_ASSIGN:
			// Integer accumulation commutes; float accumulation does not
			// (rounding depends on order), strings concatenate in order.
			return isInteger(pass, s.Lhs[0]) && !anyCalls(s.Rhs)
		}
		return false
	case *ast.IncDecStmt:
		return isInteger(pass, s.X)
	case *ast.ExprStmt:
		// delete(m2, k) removes distinct keys, which commutes.
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || len(call.Args) != 2 {
			return false
		}
		if b, ok := pass.TypesInfo.Uses[fn].(*types.Builtin); !ok || b.Name() != "delete" {
			return false
		}
		return isIdent(pass, call.Args[1], key)
	}
	return false
}

func isIdent(pass *analysis.Pass, e ast.Expr, key *ast.Ident) bool {
	id, ok := e.(*ast.Ident)
	if !ok || key == nil {
		return false
	}
	return pass.TypesInfo.Uses[id] == pass.TypesInfo.Defs[key] && pass.TypesInfo.Defs[key] != nil
}

func isInteger(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func anyCalls(exprs []ast.Expr) bool {
	for _, e := range exprs {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if _, ok := n.(*ast.CallExpr); ok {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
