// Package detrange flags `for range` loops over maps in simulation packages.
//
// Go randomizes map iteration order, so any map range whose body can affect
// simulation state, simulated time, or report text breaks the determinism
// contract (same Config.Seed => byte-identical output; see DESIGN.md). The
// analyzer permits bodies that are provably order-insensitive — pure
// key-indexed copies, deletes keyed by the range key, and integer
// accumulation — and asks for everything else to iterate a sorted key slice.
//
// Since v2 it also permits the idiom that *builds* that sorted key slice: a
// loop whose body only appends the range key (or a conversion of it) to a
// local slice, immediately followed by a sort of that slice. The randomness
// dies in the sort — keys are distinct, so even an unstable sort yields one
// deterministic order. The allowance is keys-only: collected *values* may
// contain sort-equal elements whose final order would still be the
// iteration order.
//
// Test files are exempt: they only talk to testing.T, which tolerates
// unordered reporting and cannot feed state back into a simulation run.
package detrange

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hmtx/tools/analyzers/analysis"
	"hmtx/tools/analyzers/simscope"
)

var Analyzer = &analysis.Analyzer{
	Name:    "detrange",
	Doc:     "flags map iteration with order-sensitive bodies in simulation packages",
	Version: "2",
	Run:     run,
}

func run(pass *analysis.Pass) (any, error) {
	if !simscope.Covers(pass.PkgPath) {
		return nil, nil
	}
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		next := nextStmts(file)
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if orderInsensitive(pass, rs) {
				return true
			}
			if collectThenSort(pass, rs, next[rs]) {
				return true
			}
			pass.Reportf(rs.For, "range over map has an order-sensitive body; iterate a sorted key slice to keep runs deterministic")
			return true
		})
	}
	return nil, nil
}

// nextStmts maps each statement to the statement that follows it in its
// enclosing statement list, so a range loop can be judged together with
// what runs right after it.
func nextStmts(file *ast.File) map[ast.Stmt]ast.Stmt {
	next := map[ast.Stmt]ast.Stmt{}
	record := func(list []ast.Stmt) {
		for i := 0; i+1 < len(list); i++ {
			next[list[i]] = list[i+1]
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			record(n.List)
		case *ast.CaseClause:
			record(n.Body)
		case *ast.CommClause:
			record(n.Body)
		}
		return true
	})
	return next
}

// collectThenSort reports whether rs is the sorted-key-slice builder the
// finding message recommends: the body only appends the range key (possibly
// through a type conversion) to a local slice, and the very next statement
// sorts that slice. The map's random order is then unobservable — keys are
// distinct, so the sorted result is unique.
func collectThenSort(pass *analysis.Pass, rs *ast.RangeStmt, after ast.Stmt) bool {
	key, _ := rs.Key.(*ast.Ident)
	if key == nil || !isBlank(rs.Value) {
		return false
	}
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	dst, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 || call.Ellipsis != token.NoPos {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok {
		return false
	} else if b, ok := pass.TypesInfo.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	base, ok := call.Args[0].(*ast.Ident)
	if !ok || identObj(pass, base) == nil || identObj(pass, base) != identObj(pass, dst) {
		return false
	}
	appended := ast.Unparen(call.Args[1])
	if conv, ok := appended.(*ast.CallExpr); ok && len(conv.Args) == 1 {
		if tv, ok := pass.TypesInfo.Types[conv.Fun]; ok && tv.IsType() {
			appended = ast.Unparen(conv.Args[0])
		}
	}
	if !isIdent(pass, appended, key) {
		return false
	}
	return sortsSlice(pass, after, identObj(pass, dst))
}

// sortsSlice reports whether stmt is a call to a stdlib sorting function
// whose collection argument is the variable obj.
func sortsSlice(pass *analysis.Pass, stmt ast.Stmt, obj types.Object) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok || obj == nil {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		switch fn.Name() {
		case "Sort", "Stable", "Slice", "SliceStable", "Strings", "Ints", "Float64s":
		default:
			return false
		}
	case "slices":
		if !strings.HasPrefix(fn.Name(), "Sort") {
			return false
		}
	default:
		return false
	}
	arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && identObj(pass, arg) == obj
}

func isBlank(e ast.Expr) bool {
	if e == nil {
		return true
	}
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func identObj(pass *analysis.Pass, id *ast.Ident) types.Object {
	if o := pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return pass.TypesInfo.Defs[id]
}

// orderInsensitive reports whether every statement in the loop body commutes
// across iterations, making the map's random order unobservable.
func orderInsensitive(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	key, _ := rs.Key.(*ast.Ident)
	for _, stmt := range rs.Body.List {
		if !orderInsensitiveStmt(pass, key, stmt) {
			return false
		}
	}
	return true
}

func orderInsensitiveStmt(pass *analysis.Pass, key *ast.Ident, stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		switch s.Tok {
		case token.ASSIGN:
			// m2[k] = v: writes to distinct keys commute. Every target must
			// be indexed by the range key and no operand may call anything.
			for _, lhs := range s.Lhs {
				ix, ok := lhs.(*ast.IndexExpr)
				if !ok || !isIdent(pass, ix.Index, key) {
					return false
				}
			}
			return !anyCalls(s.Rhs)
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN,
			token.AND_ASSIGN, token.XOR_ASSIGN:
			// Integer accumulation commutes; float accumulation does not
			// (rounding depends on order), strings concatenate in order.
			return isInteger(pass, s.Lhs[0]) && !anyCalls(s.Rhs)
		}
		return false
	case *ast.IncDecStmt:
		return isInteger(pass, s.X)
	case *ast.ExprStmt:
		// delete(m2, k) removes distinct keys, which commutes.
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || len(call.Args) != 2 {
			return false
		}
		if b, ok := pass.TypesInfo.Uses[fn].(*types.Builtin); !ok || b.Name() != "delete" {
			return false
		}
		return isIdent(pass, call.Args[1], key)
	}
	return false
}

func isIdent(pass *analysis.Pass, e ast.Expr, key *ast.Ident) bool {
	id, ok := e.(*ast.Ident)
	if !ok || key == nil {
		return false
	}
	return pass.TypesInfo.Uses[id] == pass.TypesInfo.Defs[key] && pass.TypesInfo.Defs[key] != nil
}

func isInteger(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func anyCalls(exprs []ast.Expr) bool {
	for _, e := range exprs {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if _, ok := n.(*ast.CallExpr); ok {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
