package rangedet

// Order-sensitive bodies: each of these observes map iteration order.

func collectKeys(counts map[string]int) []string {
	var keys []string
	for k := range counts { // want `range over map has an order-sensitive body`
		keys = append(keys, k)
	}
	return keys
}

func sumFloats(xs map[int]float64) float64 {
	var s float64
	for _, x := range xs { // want `range over map has an order-sensitive body`
		s += x
	}
	return s
}

func scatter(m, out map[int]int) {
	i := 0
	for _, v := range m { // want `range over map has an order-sensitive body`
		out[i] = v
		i++
	}
}

func concat(parts map[int]string) string {
	s := ""
	for _, p := range parts { // want `range over map has an order-sensitive body`
		s += p
	}
	return s
}

// Order-insensitive bodies: iteration order cannot be observed.

func copyByKey(src, dst map[int]uint64) {
	for a, v := range src {
		dst[a] = v
	}
}

func dropDead(live map[int]uint64, dead map[int]bool) {
	for k := range dead {
		delete(live, k)
	}
}

func total(counts map[string]int) int {
	n := 0
	for _, c := range counts {
		n += c
	}
	return n
}

func census(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}
