package rangedet

import "sort"

// Order-sensitive bodies: each of these observes map iteration order.

func collectKeys(counts map[string]int) []string {
	var keys []string
	for k := range counts { // want `range over map has an order-sensitive body`
		keys = append(keys, k)
	}
	return keys
}

func sumFloats(xs map[int]float64) float64 {
	var s float64
	for _, x := range xs { // want `range over map has an order-sensitive body`
		s += x
	}
	return s
}

func scatter(m, out map[int]int) {
	i := 0
	for _, v := range m { // want `range over map has an order-sensitive body`
		out[i] = v
		i++
	}
}

func concat(parts map[int]string) string {
	s := ""
	for _, p := range parts { // want `range over map has an order-sensitive body`
		s += p
	}
	return s
}

// Order-insensitive bodies: iteration order cannot be observed.

func copyByKey(src, dst map[int]uint64) {
	for a, v := range src {
		dst[a] = v
	}
}

func dropDead(live map[int]uint64, dead map[int]bool) {
	for k := range dead {
		delete(live, k)
	}
}

func total(counts map[string]int) int {
	n := 0
	for _, c := range counts {
		n += c
	}
	return n
}

func census(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Collect-then-sort (v2): building the sorted key slice the finding message
// recommends is allowed when the very next statement sorts the collection.

func sortedKeys(counts map[string]int) []string {
	keys := make([]string, 0, len(counts))
	for k := range counts { // collect + immediate sort: allowed
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedConvertedKeys(m map[uint32]int) []uint64 {
	out := make([]uint64, 0, len(m))
	for k := range m { // conversion of the key is still just the key
		out = append(out, uint64(k))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func collectThenSortOther(m map[int]int) []int {
	var a, b []int
	for k := range m { // want `range over map has an order-sensitive body`
		a = append(a, k)
	}
	sort.Ints(b) // sorts the wrong slice: a keeps iteration order
	a = append(a, b...)
	return a
}

func collectValuesSorted(m map[int]string) []string {
	var vs []string
	for _, v := range m { // want `range over map has an order-sensitive body`
		vs = append(vs, v)
	}
	// Values are not keys: with a partial comparison (sort.Slice is
	// unstable) equal elements would keep their iteration order, so the
	// allowance is keys-only.
	sort.Strings(vs)
	return vs
}
