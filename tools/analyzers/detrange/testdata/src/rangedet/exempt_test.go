package rangedet

// Test files are exempt: order-sensitive map iteration here only affects
// test reporting, never simulation state.

func orderedInTest(m map[string]string) string {
	s := ""
	for _, v := range m {
		s += v
	}
	return s
}
