package atomicfield_test

import (
	"testing"

	"hmtx/tools/analyzers/analysis/analysistest"
	"hmtx/tools/analyzers/atomicfield"
)

func TestAtomicfield(t *testing.T) {
	// auuser carries the want comments; aulib only contributes the
	// atomic-field fact for Gauge.N.
	analysistest.Run(t, analysistest.TestData(), atomicfield.Analyzer, "auuser")
}
