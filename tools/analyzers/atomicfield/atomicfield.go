// Package atomicfield enforces the domain-worker memory discipline of
// DESIGN.md §16/§17: a struct field that is accessed through sync/atomic
// anywhere in the program is a shared word, and every access to it reachable
// from a go-spawned goroutine must also be atomic. Mixing a plain
// `s.bound = x` with `atomic.AddInt64(&s.bound, d)` on concurrent goroutines
// is a data race the race detector only catches when the schedule cooperates;
// this analyzer catches it structurally.
//
// Two rules, both scoped to goroutine-reachable code (the valueflow
// GoReachable closure: go statements, their static callees, and any function
// or method referenced as a value inside reachable bodies — so workers
// dispatched through function pointers are covered):
//
//   - a field marked atomic — its address is passed to a sync/atomic function
//     somewhere, in this package or (via analyzer facts) a dependency — may
//     only be used as &x.f inside a sync/atomic call. Any other read or write
//     is reported.
//
//   - a value of one of the sync/atomic wrapper types (atomic.Int64,
//     atomic.Uint64, atomic.Bool, atomic.Pointer[T], atomic.Value, ...) may
//     only be used as a method-call receiver or through its address — the
//     per-core bound words `[]atomic.Int64` in internal/engine/domains.go are
//     the motivating case. Copying one (assignment, range value, argument)
//     smuggles a stale snapshot out of the atomic domain and is reported.
//
// Sites on the coordinating goroutine (not go-reachable) are deliberately not
// flagged: pre-spawn initialization and post-join reads are the intended
// plain-access windows. Test files are exempt.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hmtx/tools/analyzers/analysis"
	"hmtx/tools/analyzers/analysis/callgraph"
	"hmtx/tools/analyzers/analysis/valueflow"
)

var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc:  "reports plain access to atomically-accessed struct fields from goroutine-reachable code",
	Run:  run,
}

// atomicFact marks a struct field whose address reaches sync/atomic.
type atomicFact struct{}

func (*atomicFact) AFact() {}

func run(pass *analysis.Pass) (any, error) {
	var files []*ast.File
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		files = append(files, file)
	}

	// Pass 1: find the atomic fields — every &x.f argument of a sync/atomic
	// call — and bless those exact selector nodes.
	atomicFields := map[*types.Var]bool{}
	blessed := map[ast.Node]bool{}
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				blessed[sel] = true
				if f := fieldOf(pass, sel); f != nil {
					atomicFields[f] = true
				}
			}
			return true
		})
	}
	for f := range atomicFields {
		pass.ExportObjectFact(f, &atomicFact{})
	}
	isAtomicField := func(v *types.Var) bool {
		if atomicFields[v] {
			return true
		}
		var f atomicFact
		return pass.ImportObjectFact(v, &f)
	}

	// Pass 2: every plain use inside the goroutine-reachability closure.
	cg := callgraph.Build(pass)
	reach := valueflow.GoReachable(pass, cg, false)

	type body struct {
		b   *ast.BlockStmt
		via string
	}
	var bodies []body
	for fn, via := range reach.Funcs {
		if n := cg.Node(fn); n != nil && n.Decl != nil && n.Decl.Body != nil {
			if !strings.HasSuffix(pass.Fset.Position(n.Decl.Pos()).Filename, "_test.go") {
				bodies = append(bodies, body{n.Decl.Body, via})
			}
		}
	}
	for _, lit := range reach.Lits {
		bodies = append(bodies, body{lit.Body, lit.Via})
	}

	// A go-launched literal's body sits inside some declaration; when that
	// declaration is itself reachable the nodes would be visited twice.
	seen := map[token.Pos]bool{}
	report := func(pos token.Pos, format string, args ...any) {
		if !seen[pos] {
			seen[pos] = true
			pass.Reportf(pos, format, args...)
		}
	}
	for _, b := range bodies {
		parents := parentMap(b.b)
		ast.Inspect(b.b, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if !blessed[n] {
					if f := fieldOf(pass, n); f != nil && isAtomicField(f) {
						report(n.Sel.Pos(), "plain access to atomic field %s on a goroutine (%s); every goroutine-reachable access must go through sync/atomic", f.Name(), b.via)
					}
				}
			case *ast.RangeStmt:
				// Range value variables are declarations (no Types entry);
				// the copy they perform is checked here.
				if id, ok := n.Value.(*ast.Ident); ok {
					if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
						if name := atomicTypeName(v.Type()); name != "" {
							report(id.Pos(), "copies sync/atomic value %s on a goroutine (%s); range over indices instead", name, b.via)
						}
					}
				}
			}
			checkAtomicValueUse(pass, report, parents, n, b.via)
			return true
		})
	}
	return nil, nil
}

// checkAtomicValueUse flags expressions of a sync/atomic wrapper type used as
// a plain value: anything but a method-call receiver, a field/element path on
// the way to one, or an address-of.
func checkAtomicValueUse(pass *analysis.Pass, report func(token.Pos, string, ...any), parents map[ast.Node]ast.Node, n ast.Node, via string) {
	e, ok := n.(ast.Expr)
	if !ok {
		return
	}
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr, *ast.CallExpr:
	default:
		return
	}
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || !tv.IsValue() {
		return
	}
	name := atomicTypeName(tv.Type)
	if name == "" {
		return
	}
	switch p := parents[e].(type) {
	case *ast.SelectorExpr:
		if p.X == e {
			return // receiver of .Load()/.Store()/... or a deeper path
		}
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			return // address taken; passing *atomic.T around is fine
		}
	case *ast.StarExpr, *ast.ParenExpr:
		return // deref/parens: judged at the outer expression
	case *ast.IndexExpr:
		if p.X == e {
			return // indexing into a collection of atomics
		}
	}
	report(e.Pos(), "copies sync/atomic value %s on a goroutine (%s); operate on it through methods via a pointer", name, via)
}

func parentMap(body *ast.BlockStmt) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := callgraph.StaticCallee(pass.TypesInfo, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// fieldOf resolves sel to the struct field it selects, or nil.
func fieldOf(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	return nil
}

// atomicTypeName reports t's name when it is one of the sync/atomic wrapper
// struct types, "" otherwise.
func atomicTypeName(t types.Type) string {
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return ""
	}
	if _, isStruct := n.Underlying().(*types.Struct); !isStruct {
		return ""
	}
	return "atomic." + obj.Name()
}
