// Package auuser exercises both atomicfield rules: mixed plain/atomic field
// access and sync/atomic value copies, on and off the goroutine closure.
package auuser

import (
	"sync/atomic"

	"aulib"
)

type counter struct {
	n    int64
	name string
}

func (c *counter) bump() { atomic.AddInt64(&c.n, 1) }

// plainTouch is reached only through a method value inside the goroutine
// literal below — exactly the hidden dispatch the closure must see through.
func (c *counter) plainTouch() {
	c.n = 1 // want `plain access to atomic field n`
}

func serve(c *counter) {
	go func() {
		c.n++ // want `plain access to atomic field n`
		c.name = "worker"
		atomic.StoreInt64(&c.n, 0)
		c.bump()
		f := c.plainTouch
		f()
	}()
	// Coordinator side: pre-spawn/post-join plain access is the intended
	// window and stays silent.
	c.n = 0
}

func viaFuncValue(c *counter) {
	go run(plainSet, c)
}

func run(f func(*counter), c *counter) { f(c) }

func plainSet(c *counter) {
	c.n = 2 // want `plain access to atomic field n`
}

func crossPkg(g *aulib.Gauge) {
	go func() {
		g.N = 5 // want `plain access to atomic field N`
		g.Label = "w"
	}()
}

type state struct {
	bounds []atomic.Int64
	gen    atomic.Uint64
}

func launch(s *state) {
	go s.worker()
}

func (s *state) worker() {
	s.bounds[0].Add(1)
	v := s.bounds[1] // want `copies sync/atomic value atomic.Int64`
	_ = v.Load()
	g := s.gen // want `copies sync/atomic value atomic.Uint64`
	_ = g.Load()
	p := &s.bounds[2]
	p.Store(9)
	for _, b := range s.bounds { // want `copies sync/atomic value atomic.Int64`
		_ = b.Load()
	}
	_ = s.gen.Load()
}
