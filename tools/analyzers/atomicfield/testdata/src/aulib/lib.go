// Package aulib is a fixture dependency: Gauge.N becomes an atomic field
// here, and the fact must reach importing packages.
package aulib

import "sync/atomic"

type Gauge struct {
	N     int64
	Label string
}

func Bump(g *Gauge) { atomic.AddInt64(&g.N, 1) }
