// Package txbalance checks the transactional discipline of code driving
// engine.Env: every transaction a function opens with Begin(seq) must be
// closed — by Commit, Abort, or detaching with Begin(0) — on every path
// before the function returns, and the Env handle itself must not escape the
// synchronous scope it was handed to (Env methods may only be called from the
// program's own goroutine; see internal/engine/env.go).
//
// The balance check is a conservative abstract interpretation over the
// statement structure: the transaction state is closed, open, or maybe-open,
// branches join states, and loops must leave the state as they found it (an
// iteration that can exit open would double-Begin on the next pass or leak
// the transaction out of the loop). A deferred Commit/Abort/Begin(0)
// discharges the end-of-function obligation. Test files are exempt, like
// detrange: engine tests intentionally exercise unbalanced sequences.
package txbalance

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hmtx/tools/analyzers/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "txbalance",
	Doc:  "checks that every engine.Env Begin is matched by Commit/Abort/Begin(0) on all paths and that Env handles do not escape",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	if strings.HasSuffix(pass.PkgPath, "internal/engine") {
		// The engine itself constructs Env handles and hands them to the
		// program goroutines it launches; the single-goroutine rule is a
		// contract it enforces on clients, not one it is subject to.
		return nil, nil
	}
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, fn.Body)
			}
			return true
		}
		ast.Inspect(file, walk)
		checkEscapes(pass, file)
	}
	return nil, nil
}

// Transaction states of the abstract interpretation.
type st uint8

const (
	closed st = iota // no transaction open
	open             // a Begin(seq) is unmatched
	maybe            // open on some paths
	dead             // unreachable (after return/panic/break/continue)
)

func join(a, b st) st {
	switch {
	case a == dead:
		return b
	case b == dead:
		return a
	case a == b:
		return a
	default:
		return maybe
	}
}

// checker tracks the interpretation of one function body. Nested function
// literals are separate scopes checked independently.
type checker struct {
	pass *analysis.Pass
	// openPos remembers where the possibly-unmatched Begin happened, for
	// the diagnostic.
	openPos token.Pos
	// deferred reports that a deferred call closes the transaction at
	// function exit, discharging return-path obligations.
	deferred bool
	// loops carries the state joined from break statements of the
	// innermost for/switch/select nesting.
	breaks []st
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	c := &checker{pass: pass}
	for _, s := range body.List {
		if d, ok := s.(*ast.DeferStmt); ok && closesCall(pass, d.Call) {
			c.deferred = true
		}
	}
	out := c.block(body, closed)
	if out == open || out == maybe {
		if !c.deferred {
			pass.Reportf(c.openPos, "transaction opened by Begin may still be open when the function returns; close it with Commit, Abort or Begin(0)")
		}
	}
}

func (c *checker) block(b *ast.BlockStmt, cur st) st {
	for _, s := range b.List {
		cur = c.stmt(s, cur)
	}
	return cur
}

func (c *checker) stmt(s ast.Stmt, cur st) st {
	if cur == dead {
		return dead
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		return c.block(s, cur)
	case *ast.ExprStmt, *ast.AssignStmt, *ast.DeclStmt, *ast.SendStmt, *ast.IncDecStmt:
		return c.scanCalls(s, cur)
	case *ast.ReturnStmt:
		cur = c.scanCalls(s, cur)
		if (cur == open || cur == maybe) && !c.deferred {
			c.pass.Reportf(s.Pos(), "return with a transaction still open; close it with Commit, Abort or Begin(0)")
		}
		return dead
	case *ast.IfStmt:
		if s.Init != nil {
			cur = c.scanCalls(s.Init, cur)
		}
		cur = c.scanCalls(s.Cond, cur)
		thenOut := c.block(s.Body, cur)
		elseOut := cur
		if s.Else != nil {
			elseOut = c.stmt(s.Else, cur)
		}
		return join(thenOut, elseOut)
	case *ast.ForStmt:
		if s.Init != nil {
			cur = c.scanCalls(s.Init, cur)
		}
		if s.Cond != nil {
			cur = c.scanCalls(s.Cond, cur)
		}
		return c.loopBody(s.Body, cur, s.Cond == nil)
	case *ast.RangeStmt:
		cur = c.scanCalls(s.X, cur)
		return c.loopBody(s.Body, cur, false)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return c.branches(s, cur)
	case *ast.BranchStmt:
		// break/continue/goto end this path; break feeds the enclosing
		// construct's join. (goto is treated as path-terminating, which
		// is unsound in general but goto is absent from this codebase.)
		if s.Tok == token.BREAK {
			c.breaks = append(c.breaks, cur)
		} else if s.Tok == token.CONTINUE && cur != closed {
			// A continue with the transaction open re-enters the loop
			// body in a state it was not checked under.
			c.reportLoop(s.Pos())
		}
		return dead
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, cur)
	case *ast.GoStmt:
		// The spawned body runs on another goroutine; Env use inside it
		// is reported by checkEscapes, not interpreted here.
		return cur
	case *ast.DeferStmt:
		return cur
	default:
		return c.scanCalls(s, cur)
	}
}

// loopBody interprets a loop body: an iteration must leave the transaction
// state exactly as it found it, or consecutive iterations (and the code after
// the loop) observe an unchecked state. infinite marks `for {` loops, whose
// only exits are breaks.
func (c *checker) loopBody(body *ast.BlockStmt, cur st, infinite bool) st {
	savedBreaks := c.breaks
	c.breaks = nil
	out := c.block(body, cur)
	if out != dead && out != cur {
		c.reportLoop(body.Pos())
	}
	after := dead
	if !infinite {
		after = cur
	}
	for _, b := range c.breaks {
		after = join(after, b)
	}
	c.breaks = savedBreaks
	return after
}

func (c *checker) reportLoop(pos token.Pos) {
	c.pass.Reportf(pos, "loop iteration may leave a transaction open; every Begin must be matched by Commit, Abort or Begin(0) within the iteration")
}

// branches joins the outcomes of a switch/select's cases. A missing default
// (or non-exhaustive switch) keeps the entry state as a possible outcome.
func (c *checker) branches(s ast.Stmt, cur st) st {
	var bodyList []ast.Stmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			cur = c.scanCalls(s.Init, cur)
		}
		if s.Tag != nil {
			cur = c.scanCalls(s.Tag, cur)
		}
		bodyList = s.Body.List
	case *ast.TypeSwitchStmt:
		bodyList = s.Body.List
	case *ast.SelectStmt:
		bodyList = s.Body.List
	}
	savedBreaks := c.breaks
	c.breaks = nil
	out := dead
	for _, cl := range bodyList {
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			}
			stmts = cl.Body
		}
		caseOut := cur
		for _, cs := range stmts {
			caseOut = c.stmt(cs, caseOut)
		}
		out = join(out, caseOut)
	}
	if _, isSelect := s.(*ast.SelectStmt); !hasDefault && !isSelect {
		out = join(out, cur) // a switch without default may skip every case
	}
	for _, b := range c.breaks {
		out = join(out, b)
	}
	c.breaks = savedBreaks
	return out
}

// scanCalls applies every Begin/Commit/Abort call appearing in the node, in
// traversal order, skipping nested function literals (separate scopes). A
// call to panic terminates the path.
func (c *checker) scanCalls(n ast.Node, cur st) st {
	if n == nil {
		return cur
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
			cur = dead
			return true
		}
		switch envCallKind(c.pass, call) {
		case kindOpen:
			if cur == open || cur == maybe {
				c.pass.Reportf(call.Pos(), "Begin while a transaction may already be open; close the previous one first")
			}
			if cur != dead {
				cur = open
				c.openPos = call.Pos()
			}
		case kindClose:
			if cur != dead {
				cur = closed
			}
		}
		return true
	})
	return cur
}

type callKind int

const (
	kindNone callKind = iota
	kindOpen
	kindClose
)

// envCallKind classifies a call: Begin with a non-zero sequence opens a
// transaction; Commit, Abort, and Begin(0) (the detach idiom) close one.
func envCallKind(pass *analysis.Pass, call *ast.CallExpr) callKind {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return kindNone
	}
	recv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || !isEnvType(recv.Type) {
		return kindNone
	}
	switch sel.Sel.Name {
	case "Commit", "Abort":
		return kindClose
	case "Begin":
		if len(call.Args) == 1 {
			if tv, ok := pass.TypesInfo.Types[call.Args[0]]; ok && tv.Value != nil && tv.Value.String() == "0" {
				return kindClose
			}
		}
		return kindOpen
	}
	return kindNone
}

// closesCall reports whether a deferred call closes a transaction.
func closesCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	return envCallKind(pass, call) == kindClose
}

// isEnvType reports whether t is engine.Env or a pointer to it.
func isEnvType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Env" && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/engine")
}

// checkEscapes reports Env handles leaving the synchronous scope they were
// handed to: captured by a goroutine, returned, stored into a struct, slice,
// map, global or channel. Env methods are only legal from the program's own
// goroutine, and a stored handle outlives the transaction scope the balance
// check reasons about.
func checkEscapes(pass *analysis.Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			reportEnvRefs(pass, n, "engine.Env handle captured by a goroutine; Env methods may only be called from the program's own goroutine")
			return false
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if isEnvExpr(pass, r) {
					pass.Reportf(r.Pos(), "engine.Env handle returned; the handle must not outlive the program function it was passed to")
				}
			}
		case *ast.SendStmt:
			if isEnvExpr(pass, n.Value) {
				pass.Reportf(n.Value.Pos(), "engine.Env handle sent on a channel; the handle must not cross goroutines")
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				if !isEnvExpr(pass, n.Rhs[i]) {
					continue
				}
				if storesBeyondScope(pass, lhs) {
					pass.Reportf(n.Rhs[i].Pos(), "engine.Env handle stored outside the transaction scope; keep the handle in locals")
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if isEnvExpr(pass, v) {
					pass.Reportf(v.Pos(), "engine.Env handle stored in a composite literal; keep the handle in locals")
				}
			}
		}
		return true
	})
}

// reportEnvRefs reports each Env-typed object referenced inside n but
// declared outside it (a capture), once per object.
func reportEnvRefs(pass *analysis.Pass, n ast.Node, msg string) {
	seen := map[types.Object]bool{}
	ast.Inspect(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || seen[obj] || !isEnvType(obj.Type()) {
			return true
		}
		if obj.Pos() >= n.Pos() && obj.Pos() < n.End() {
			return true // declared inside the goroutine; stays there
		}
		seen[obj] = true
		pass.Reportf(id.Pos(), "%s", msg)
		return true
	})
}

func isEnvExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && isEnvType(tv.Type)
}

// storesBeyondScope reports whether assigning to lhs makes the value outlive
// the enclosing function: a package-level variable, a struct field, or an
// element of a slice or map.
func storesBeyondScope(pass *analysis.Pass, lhs ast.Expr) bool {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Defs[lhs]
		if obj == nil {
			obj = pass.TypesInfo.Uses[lhs]
		}
		if v, ok := obj.(*types.Var); ok {
			return v.Parent() == v.Pkg().Scope()
		}
		return false
	case *ast.SelectorExpr:
		sel, ok := pass.TypesInfo.Selections[lhs]
		if ok && sel.Kind() == types.FieldVal {
			return true
		}
		// A qualified package-level identifier (pkg.Var).
		return !ok
	case *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return true
	}
	return false
}
