package txb

import "hmtx/internal/engine"

// Balanced: the canonical begin/commit iteration (doall style).
func balancedLoop(e *engine.Env, iters int) {
	for it := 0; it < iters; it++ {
		e.Begin(engine.Seq(it + 1))
		e.Store(0, 1)
		e.Commit(engine.Seq(it + 1))
	}
}

// Balanced: detach with Begin(0) instead of committing (stage-1 style).
func balancedDetach(e *engine.Env, iters int) {
	for it := 0; it < iters; it++ {
		e.Begin(engine.Seq(it + 1))
		e.Store(0, 1)
		e.Begin(0)
		e.Produce(1, uint64(it))
	}
	e.CloseQueue(1)
}

// Balanced: abort path closes too.
func balancedAbort(e *engine.Env, bad bool) {
	e.Begin(1)
	if bad {
		e.Abort(1)
		return
	}
	e.Commit(1)
}

// Balanced: a deferred Commit discharges the return obligation.
func balancedDefer(e *engine.Env) {
	defer e.Commit(1)
	e.Begin(1)
	e.Store(0, 1)
}

// Balanced: panic terminates the path, no obligation.
func balancedPanic(e *engine.Env) {
	e.Begin(1)
	if e.Load(0) == 0 {
		panic("bad state")
	}
	e.Commit(1)
}

// Unbalanced: no close before falling off the end.
func leakSimple(e *engine.Env) {
	e.Begin(1) // want `transaction opened by Begin may still be open`
	e.Store(0, 1)
}

// Unbalanced: one branch returns with the transaction open.
func leakBranch(e *engine.Env, cond bool) {
	e.Begin(1)
	if cond {
		return // want `return with a transaction still open`
	}
	e.Commit(1)
}

// Unbalanced: only one branch closes; the fallthrough may still be open.
func leakMaybe(e *engine.Env, cond bool) {
	e.Begin(2) // want `transaction opened by Begin may still be open`
	if cond {
		e.Commit(2)
	}
	e.Store(0, 1)
}

// Unbalanced: the loop body exits an iteration with the transaction open.
func leakLoop(e *engine.Env, iters int) {
	for it := 0; it < iters; it++ { // want `loop iteration may leave a transaction open`
		e.Begin(engine.Seq(it + 1))
		e.Store(0, 1)
	}
}

// Unbalanced: Begin while the previous transaction may still be open.
func doubleBegin(e *engine.Env) {
	e.Begin(1)
	e.Begin(2) // want `Begin while a transaction may already be open`
	e.Commit(2)
}

// Escape: captured by a goroutine.
func escapeGo(e *engine.Env) {
	go func() {
		e.Begin(1) // want `captured by a goroutine`
		e.Commit(1)
	}()
}

// Escape: returned from the function.
func escapeReturn(e *engine.Env) *engine.Env {
	return e // want `handle returned`
}

// Escape: stored into a struct field.
type holder struct {
	env *engine.Env
}

func escapeField(h *holder, e *engine.Env) {
	h.env = e // want `stored outside the transaction scope`
}

// Escape: sent on a channel.
func escapeSend(ch chan *engine.Env, e *engine.Env) {
	ch <- e // want `sent on a channel`
}

// Escape: stored in a composite literal.
func escapeLit(e *engine.Env) holder {
	return holder{env: e} // want `stored in a composite literal`
}

// Not an escape: passing the handle down a synchronous call.
func helper(e *engine.Env) { e.Store(0, 1) }

func passDown(e *engine.Env) {
	e.Begin(1)
	helper(e)
	e.Commit(1)
}
