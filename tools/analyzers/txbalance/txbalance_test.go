package txbalance_test

import (
	"testing"

	"hmtx/tools/analyzers/analysis/analysistest"
	"hmtx/tools/analyzers/txbalance"
)

func TestTxbalance(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), txbalance.Analyzer, "txb")
}
