package fp

// snapshot is fully covered: clone references a and b, appendCanon covers c.
type snapshot struct {
	a int
	b []byte
	c uint64
	d int // statefp:ignore — derived bookkeeping, not semantic state
}

func (s *snapshot) clone() *snapshot {
	return &snapshot{a: s.a, b: append([]byte(nil), s.b...)}
}

func (s *snapshot) appendCanon(buf []byte) []byte {
	buf = append(buf, byte(s.c))
	return buf
}

// leaky has a field its Clone method forgot.
type leaky struct {
	kept    int
	dropped int // want `field dropped of fingerprinted struct leaky is not referenced`
}

func (l *leaky) Clone() *leaky {
	return &leaky{kept: l.kept}
}

// sibling coverage: a field may be canonicalized from another struct's
// designated method, as memsys does for Line.lru from the cache encoder.
type inner struct {
	rank int
}

func (in *inner) clone() inner { return inner{} } // rank covered by outer.appendCanon

type outer struct {
	items []inner
}

func (o *outer) appendCanon(buf []byte) []byte {
	for i := range o.items {
		buf = append(buf, byte(o.items[i].rank))
	}
	return buf
}

// embedded fields must be covered through the embedded type name.
type base struct {
	x int
}

func (b *base) clone() base { return base{x: b.x} }

type wrapper struct {
	base // want `embedded field base of fingerprinted struct wrapper is not referenced`
	y    int
}

func (w *wrapper) clone() wrapper { return wrapper{y: w.y} }

// plain structs without designated methods are not checked.
type plain struct {
	anything int
}
