package statefp_test

import (
	"testing"

	"hmtx/tools/analyzers/analysis/analysistest"
	"hmtx/tools/analyzers/statefp"
)

func TestStatefp(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), statefp.Analyzer, "fp")
}
