// Package statefp keeps the model checker's state snapshots honest: any
// field added to a struct that participates in cloning or canonical
// fingerprinting (internal/memsys/snapshot.go, internal/check) must also be
// referenced by those methods, or the checker would silently explore a state
// space that ignores the new field — merging states that differ in it and
// missing bugs it can cause.
//
// A struct is "fingerprinted" if it has a method named Clone, clone,
// cloneInto, AppendCanonical or appendCanon. Every field of such a struct
// must be referenced — via a selector or a keyed composite literal — inside
// the body of *some* designated method of the same package (not necessarily
// its own: memsys canonicalizes Line.lru from the owning cache's method). A
// field that is deliberately not part of the semantic state can be annotated
// with a `statefp:ignore` comment on its declaration.
package statefp

import (
	"go/ast"
	"go/types"
	"strings"

	"hmtx/tools/analyzers/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "statefp",
	Doc:  "checks that every field of cloned/fingerprinted structs is referenced by the snapshot methods",
	Run:  run,
}

// designated are the snapshot method names that define both which structs
// are fingerprinted and where field references count as coverage.
var designated = map[string]bool{
	"Clone": true, "clone": true, "cloneInto": true,
	"AppendCanonical": true, "appendCanon": true,
}

func run(pass *analysis.Pass) (any, error) {
	if strings.HasSuffix(pass.PkgPath, "_test") {
		return nil, nil
	}

	// Pass 1: find the designated methods and the struct types they make
	// fingerprinted.
	var methods []*ast.FuncDecl
	printed := map[*types.Struct]bool{} // struct types with a designated method
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || !designated[fd.Name.Name] || fd.Body == nil {
				continue
			}
			methods = append(methods, fd)
			if st := recvStruct(pass, fd); st != nil {
				printed[st] = true
			}
		}
	}
	if len(methods) == 0 {
		return nil, nil
	}

	// Pass 2: collect every field object referenced inside a designated
	// method body — selectors (x.f) resolve through Selections, keyed
	// composite literal fields (T{f: v}) through Uses.
	covered := map[types.Object]bool{}
	for _, m := range methods {
		ast.Inspect(m.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sel, ok := pass.TypesInfo.Selections[n]; ok && sel.Kind() == types.FieldVal {
					covered[sel.Obj()] = true
				}
			case *ast.CompositeLit:
				for _, el := range n.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if id, ok := kv.Key.(*ast.Ident); ok {
						if obj := pass.TypesInfo.Uses[id]; obj != nil {
							covered[obj] = true
						}
					}
				}
			}
			return true
		})
	}

	// Pass 3: every field of every fingerprinted struct must be covered or
	// explicitly opted out.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				stExpr, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				def := pass.TypesInfo.Defs[ts.Name]
				if def == nil {
					continue
				}
				named, ok := def.Type().(*types.Named)
				if !ok {
					continue
				}
				st, ok := named.Underlying().(*types.Struct)
				if !ok || !printed[st] {
					continue
				}
				checkStruct(pass, ts.Name.Name, stExpr, st, covered)
			}
		}
	}
	return nil, nil
}

// recvStruct resolves a method's receiver to its struct type, or nil.
func recvStruct(pass *analysis.Pass, fd *ast.FuncDecl) *types.Struct {
	if len(fd.Recv.List) == 0 {
		return nil
	}
	tv, ok := pass.TypesInfo.Types[fd.Recv.List[0].Type]
	if !ok {
		return nil
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, _ := t.Underlying().(*types.Struct)
	return st
}

func checkStruct(pass *analysis.Pass, name string, stExpr *ast.StructType, st *types.Struct, covered map[types.Object]bool) {
	// Match AST fields to type-checker field objects by name.
	objs := map[string]types.Object{}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		objs[f.Name()] = f
	}
	for _, f := range stExpr.Fields.List {
		if ignored(f) {
			continue
		}
		for _, id := range f.Names {
			if id.Name == "_" {
				continue
			}
			obj := objs[id.Name]
			if obj == nil || covered[obj] {
				continue
			}
			pass.Reportf(id.Pos(), "field %s of fingerprinted struct %s is not referenced by any clone/canonical method; include it in the snapshot or annotate it with statefp:ignore", id.Name, name)
		}
		if len(f.Names) == 0 {
			// An embedded field is referenced through its type name.
			if id := embeddedName(f.Type); id != "" {
				if obj := objs[id]; obj != nil && !covered[obj] {
					pass.Reportf(f.Pos(), "embedded field %s of fingerprinted struct %s is not referenced by any clone/canonical method; include it in the snapshot or annotate it with statefp:ignore", id, name)
				}
			}
		}
	}
}

func embeddedName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return embeddedName(e.X)
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}

// ignored reports whether the field declaration carries a statefp:ignore
// annotation in its doc or trailing comment.
func ignored(f *ast.Field) bool {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if strings.Contains(c.Text, "statefp:ignore") {
				return true
			}
		}
	}
	return false
}
