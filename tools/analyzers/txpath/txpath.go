// Package txpath checks the MTX lifecycle of code driving engine.Env with a
// path-sensitive walk over each function's control-flow graph. Where
// txbalance abstracts branches into an open/maybe/closed lattice, txpath
// carries a set of exact per-path states — which VID the open epoch belongs
// to and which VIDs have already committed — so it can enforce the paper's
// per-transaction rules, not just balance:
//
//   - every Begin(seq) must reach a Commit, Abort or Begin(0) detach on
//     every path out of the function (a commit-less branch leaks the epoch);
//   - a VID that has committed must not be begun again until its backing
//     variable takes a fresh value (VIDs are unique until a VID reset, §4.6;
//     re-attaching a detached-but-uncommitted VID is the legal stage-2 idiom
//     and is not flagged);
//   - Commit of one VID while a different transaction is open is a protocol
//     violation (the commit process commits with no epoch open, which is
//     legal — that is the SMTX commit-process idiom);
//   - tracked memory accesses (Load/Store) must happen inside an open
//     epoch — enforced only in functions that open transactions themselves,
//     since sequential baselines and workload stages run non-speculatively.
//
// The memory-access rule is interprocedural: a function that performs
// tracked accesses through an *engine.Env parameter (directly or via its
// own static callees) exports a TxFact, and calls to it count as accesses
// at the call site.
//
// VID keys are tracked symbolically: a constant argument is its value, an
// identifier is its object until the variable is reassigned (a loop that
// rebinds seq each iteration begins a genuinely fresh VID). Arguments the
// analysis cannot name are unconstrained. Like txbalance, test files and
// internal/engine itself are exempt.
package txpath

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"hmtx/tools/analyzers/analysis"
	"hmtx/tools/analyzers/analysis/callgraph"
	"hmtx/tools/analyzers/analysis/cfg"
)

var Analyzer = &analysis.Analyzer{
	Name: "txpath",
	Doc:  "path-sensitively checks that every MTX Begin reaches one commit-or-abort on all paths, VIDs are not reused after committing, and tracked memory accesses happen inside an open epoch",
	Run:  run,
}

// TxFact marks a function that performs tracked memory accesses through an
// *engine.Env parameter without opening its own transaction: callers must
// have an epoch open at the call site. Accesses lists the parameter indices
// the accesses flow through.
type TxFact struct {
	Accesses []int
}

func (*TxFact) AFact() {}

// maxStates bounds the per-block state set; the VID-key alphabet of a
// function is finite so the fixpoint always terminates, this is a safety
// rail against pathological blowup.
const maxStates = 32

func run(pass *analysis.Pass) (any, error) {
	if strings.HasSuffix(pass.PkgPath, "internal/engine") {
		// The engine implements the epoch machinery; the lifecycle rules
		// are the contract it enforces on clients.
		return nil, nil
	}
	c := &checker{
		pass:      pass,
		cg:        callgraph.Build(pass),
		summaries: make(map[*types.Func]*TxFact),
		reported:  make(map[token.Pos]bool),
	}
	c.computeFacts()
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					c.checkFunc(fn.Body)
				}
			case *ast.FuncLit:
				c.checkFunc(fn.Body)
			}
			return true
		})
	}
	return nil, nil
}

type checker struct {
	pass      *analysis.Pass
	cg        *callgraph.Graph
	summaries map[*types.Func]*TxFact
	// reported dedups diagnostics: the fixpoint visits a program point once
	// per distinct reaching state, and several states can violate the same
	// rule at the same position.
	reported map[token.Pos]bool
}

func (c *checker) reportOnce(pos token.Pos, format string, args ...any) {
	if c.reported[pos] {
		return
	}
	c.reported[pos] = true
	c.pass.Reportf(pos, format, args...)
}

// computeFacts summarizes, bottom-up over the package call graph, which
// functions reach tracked memory through an env parameter, and exports the
// summaries as facts for importing packages. Functions that open their own
// transactions manage their own epoch and are not summarized.
func (c *checker) computeFacts() {
	order := c.cg.PostOrder()
	for iter := 0; iter < 16; iter++ {
		changed := false
		for _, n := range order {
			if n.Decl == nil || n.Decl.Body == nil {
				continue
			}
			params := c.envParams(n.Fn)
			if len(params) == 0 || c.opensEpoch(n.Decl.Body) {
				continue
			}
			acc := make(map[int]bool)
			ast.Inspect(n.Decl.Body, func(m ast.Node) bool {
				if _, ok := m.(*ast.FuncLit); ok {
					return false // runs when invoked, not when this fn is called
				}
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if kind, _ := c.envCall(call); kind == opAccess {
					if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
						if i, ok := c.paramIndex(params, sel.X); ok {
							acc[i] = true
						}
					}
					return true
				}
				if callee := callgraph.StaticCallee(c.pass.TypesInfo, call); callee != nil {
					for _, j := range c.factFor(callee) {
						if j < len(call.Args) {
							if i, ok := c.paramIndex(params, call.Args[j]); ok {
								acc[i] = true
							}
						}
					}
				}
				return true
			})
			if len(acc) == 0 {
				continue
			}
			idx := make([]int, 0, len(acc))
			for i := range acc {
				idx = append(idx, i)
			}
			sort.Ints(idx)
			if old := c.summaries[n.Fn]; old == nil || len(old.Accesses) != len(idx) {
				c.summaries[n.Fn] = &TxFact{Accesses: idx}
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for fn, fact := range c.summaries {
		c.pass.ExportObjectFact(fn, fact)
	}
}

// factFor returns the accessed-parameter indices of fn, consulting this
// package's in-progress summaries first and imported facts otherwise.
func (c *checker) factFor(fn *types.Func) []int {
	if sum, ok := c.summaries[fn]; ok {
		return sum.Accesses
	}
	var fact TxFact
	if c.pass.ImportObjectFact(fn, &fact) {
		return fact.Accesses
	}
	return nil
}

// envParams maps each *engine.Env parameter object of fn to its index.
func (c *checker) envParams(fn *types.Func) map[types.Object]int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var params map[types.Object]int
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if isEnvType(p.Type()) {
			if params == nil {
				params = make(map[types.Object]int)
			}
			params[p] = i
		}
	}
	return params
}

// paramIndex resolves an expression to an env parameter's index.
func (c *checker) paramIndex(params map[types.Object]int, e ast.Expr) (int, bool) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return 0, false
	}
	i, ok := params[c.pass.TypesInfo.Uses[id]]
	return i, ok
}

// Path states. epoch is the key of the open transaction ("" when closed,
// "?" when open under a key the analysis cannot name); committed holds the
// keys of VIDs that have committed and whose backing value has not changed
// since.
type pstate struct {
	epoch     string
	openPos   token.Pos
	committed map[string]bool
}

func (s pstate) clone() pstate {
	m := make(map[string]bool, len(s.committed))
	for k := range s.committed {
		m[k] = true
	}
	return pstate{epoch: s.epoch, openPos: s.openPos, committed: m}
}

// canon is the state's identity for set membership and join.
func (s pstate) canon() string {
	keys := make([]string, 0, len(s.committed))
	for k := range s.committed {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return s.epoch + "|" + strings.Join(keys, ",")
}

// stateSet is the per-block dataflow value: every distinct state some path
// can reach the block in.
type stateSet map[string]pstate

// Epoch-relevant events of one statement, in evaluation order.
type opKind int

const (
	opBegin  opKind = iota // Begin with a non-zero (or unknown) sequence
	opDetach               // Begin(0)
	opCommit
	opAbort
	opAccess // tracked memory access (Load/Store or summarized callee)
	opKill   // the variable behind a VID key took a new value
)

type event struct {
	kind opKind
	key  string // VID key; "" when unknown
	pos  token.Pos
}

func (c *checker) checkFunc(body *ast.BlockStmt) {
	if !c.opensEpoch(body) && !c.usesEnv(body) {
		return
	}
	hasBegin := c.opensEpoch(body)
	deferred := false
	for _, s := range body.List {
		if d, ok := s.(*ast.DeferStmt); ok {
			if kind, _ := c.envCall(d.Call); kind == opDetach || kind == opCommit || kind == opAbort {
				deferred = true
			}
		}
	}

	g := cfg.New(body)
	// Cache each block's event list; transfer runs once per fixpoint visit.
	events := make([][]event, len(g.Blocks))
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			c.events(n, &events[blk.Index])
		}
	}

	init := stateSet{pstate{committed: map[string]bool{}}.canon(): {committed: map[string]bool{}}}
	transfer := func(blk *cfg.Block, in stateSet) stateSet {
		out := make(stateSet, len(in))
		for _, st := range in {
			cur := st.clone()
			for _, ev := range events[blk.Index] {
				cur = c.apply(cur, ev, hasBegin)
			}
			out[cur.canon()] = cur
		}
		return out
	}
	join := func(into, from stateSet, first bool) (stateSet, bool) {
		if first || into == nil {
			merged := make(stateSet, len(from))
			for k, v := range from {
				merged[k] = v
			}
			return merged, true
		}
		changed := false
		for k, v := range from {
			if _, ok := into[k]; !ok && len(into) < maxStates {
				into[k] = v
				changed = true
			}
		}
		return into, changed
	}
	in := cfg.Forward(g, init, transfer, join)

	if deferred {
		return
	}
	// Every state reaching the synthetic exit must have resolved its epoch.
	exitIn := in[g.Exit.Index]
	var leaks []pstate
	for _, st := range exitIn {
		if st.epoch != "" {
			leaks = append(leaks, st)
		}
	}
	sort.Slice(leaks, func(i, j int) bool { return leaks[i].openPos < leaks[j].openPos })
	for _, st := range leaks {
		c.reportOnce(st.openPos, "transaction opened here may reach function return with the epoch still open; close it with Commit, Abort or Begin(0) on every path")
	}
}

// apply advances one state across one event, reporting violations.
func (c *checker) apply(st pstate, ev event, hasBegin bool) pstate {
	switch ev.kind {
	case opBegin:
		if st.epoch != "" {
			c.reportOnce(ev.pos, "Begin while transaction %s is still open on this path; close it first", describeKey(st.epoch))
		} else if ev.key != "" && st.committed[ev.key] {
			c.reportOnce(ev.pos, "Begin reuses VID %s, which already committed on this path; VIDs stay unique until a VID reset", describeKey(ev.key))
		}
		st.epoch = ev.key
		if st.epoch == "" {
			st.epoch = "?"
		}
		st.openPos = ev.pos
	case opDetach:
		st.epoch = ""
	case opCommit:
		if st.epoch != "" && st.epoch != "?" && ev.key != "" && ev.key != st.epoch {
			c.reportOnce(ev.pos, "Commit of VID %s while transaction %s is open on this path", describeKey(ev.key), describeKey(st.epoch))
		}
		st.epoch = ""
		if ev.key != "" {
			st.committed[ev.key] = true
		}
	case opAbort:
		// Aborting while closed squashes another core's speculation (the
		// e.Abort(seq+1) early-exit idiom) and is legal; an aborted VID may
		// be begun again on retry.
		st.epoch = ""
	case opAccess:
		if hasBegin && st.epoch == "" {
			c.reportOnce(ev.pos, "tracked memory access outside an open transaction epoch on this path; speculative state must be written between Begin and Commit/Abort/Begin(0)")
		}
	case opKill:
		delete(st.committed, ev.key)
		if st.epoch == ev.key {
			st.epoch = "?" // still open, but the key no longer names it
		}
	}
	return st
}

// events collects the epoch-relevant events of n in evaluation order:
// calls inside an assignment's right-hand side happen before the
// assignment rebinds its targets.
func (c *checker) events(n ast.Node, out *[]event) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false // separate scope, checked on its own
		case *ast.DeferStmt, *ast.GoStmt:
			// Only the arguments are evaluated here; the call itself runs
			// at function exit (deferred closes are credited separately)
			// or on another goroutine.
			var call *ast.CallExpr
			if d, ok := m.(*ast.DeferStmt); ok {
				call = d.Call
			} else {
				call = m.(*ast.GoStmt).Call
			}
			for _, a := range call.Args {
				c.events(a, out)
			}
			return false
		case *ast.AssignStmt:
			for _, r := range m.Rhs {
				c.events(r, out)
			}
			for _, l := range m.Lhs {
				if id, ok := l.(*ast.Ident); ok {
					if k := c.identKey(id); k != "" {
						*out = append(*out, event{kind: opKill, key: k, pos: id.Pos()})
					}
				} else {
					c.events(l, out)
				}
			}
			return false
		case *ast.IncDecStmt:
			if id, ok := m.X.(*ast.Ident); ok {
				if k := c.identKey(id); k != "" {
					*out = append(*out, event{kind: opKill, key: k, pos: id.Pos()})
				}
				return false
			}
			return true
		case *ast.ValueSpec:
			for _, v := range m.Values {
				c.events(v, out)
			}
			for _, name := range m.Names {
				if k := c.identKey(name); k != "" {
					*out = append(*out, event{kind: opKill, key: k, pos: name.Pos()})
				}
			}
			return false
		case *ast.CallExpr:
			c.events(m.Fun, out)
			for _, a := range m.Args {
				c.events(a, out)
			}
			c.classify(m, out)
			return false
		}
		return true
	})
}

// classify appends the events of one call expression.
func (c *checker) classify(call *ast.CallExpr, out *[]event) {
	kind, key := c.envCall(call)
	if kind >= 0 {
		*out = append(*out, event{kind: kind, key: key, pos: call.Pos()})
		return
	}
	callee := callgraph.StaticCallee(c.pass.TypesInfo, call)
	if callee == nil {
		return
	}
	for _, j := range c.factFor(callee) {
		if j < len(call.Args) {
			if tv, ok := c.pass.TypesInfo.Types[call.Args[j]]; ok && isEnvType(tv.Type) {
				*out = append(*out, event{kind: opAccess, pos: call.Pos()})
				return
			}
		}
	}
}

// envCall classifies a call on an engine.Env receiver; kind is -1 for
// calls that do not affect the epoch.
func (c *checker) envCall(call *ast.CallExpr) (opKind, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return -1, ""
	}
	recv, ok := c.pass.TypesInfo.Types[sel.X]
	if !ok || !isEnvType(recv.Type) {
		return -1, ""
	}
	argKey := func() string {
		if len(call.Args) == 1 {
			return c.vidKey(call.Args[0])
		}
		return ""
	}
	switch sel.Sel.Name {
	case "Begin":
		k := argKey()
		if k == "c:0" {
			return opDetach, ""
		}
		return opBegin, k
	case "Commit":
		return opCommit, argKey()
	case "Abort":
		return opAbort, argKey()
	case "Load", "Store":
		return opAccess, ""
	}
	return -1, ""
}

// vidKey names a sequence-number argument symbolically: constants by value,
// identifiers by the variable object (stable until reassignment),
// conversions by their operand. "" means the analysis cannot name it.
func (c *checker) vidKey(e ast.Expr) string {
	e = ast.Unparen(e)
	if tv, ok := c.pass.TypesInfo.Types[e]; ok && tv.Value != nil {
		return "c:" + tv.Value.String()
	}
	if id, ok := e.(*ast.Ident); ok {
		return c.identKey(id)
	}
	if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
		if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
			return c.vidKey(call.Args[0])
		}
	}
	return ""
}

func (c *checker) identKey(id *ast.Ident) string {
	obj := c.pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = c.pass.TypesInfo.Defs[id]
	}
	if v, ok := obj.(*types.Var); ok {
		return fmt.Sprintf("v:%d", v.Pos())
	}
	return ""
}

// describeKey renders a VID key for diagnostics.
func describeKey(k string) string {
	switch {
	case strings.HasPrefix(k, "c:"):
		return strings.TrimPrefix(k, "c:")
	case k == "?":
		return "(unknown)"
	default:
		return "(variable)"
	}
}

// opensEpoch reports whether body contains a non-detach Begin outside
// nested function literals.
func (c *checker) opensEpoch(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(m ast.Node) bool {
		if found {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok {
			if kind, _ := c.envCall(call); kind == opBegin {
				found = true
			}
		}
		return true
	})
	return found
}

// usesEnv reports whether body makes any Env call at all; functions that
// never touch the Env are skipped wholesale.
func (c *checker) usesEnv(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(m ast.Node) bool {
		if found {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if tv, ok := c.pass.TypesInfo.Types[sel.X]; ok && isEnvType(tv.Type) {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// isEnvType reports whether t is engine.Env or a pointer to it.
func isEnvType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Env" && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/engine")
}
