// Package engine is a fixture stand-in for hmtx/internal/engine: just enough
// of the Env surface for txbalance to classify calls.
package engine

// Env mimics the per-thread simulated environment handle.
type Env struct{}

// Seq mimics vid.Seq.
type Seq int64

func (e *Env) Begin(seq Seq)                 {}
func (e *Env) Commit(seq Seq)                {}
func (e *Env) Abort(seq Seq)                 {}
func (e *Env) Load(addr uint64) uint64       { return 0 }
func (e *Env) Store(addr uint64, val uint64) {}
func (e *Env) Produce(q int, val uint64)     {}
func (e *Env) Consume(q int) (uint64, bool)  { return 0, false }
func (e *Env) CloseQueue(q int)              {}

// Program mimics engine.Program.
type Program func(*Env)
