// Package txhelp holds helpers that touch tracked memory through an env
// parameter without opening their own epoch: txpath must export TxFacts so
// callers in other packages are checked at the call site.
package txhelp

import "hmtx/internal/engine"

// Touch performs a tracked access through e.
func Touch(e *engine.Env) {
	e.Store(64, 1)
}

// Indirect reaches tracked memory through another helper.
func Indirect(e *engine.Env) {
	Touch(e)
}

// Charge does no tracked access: callers may call it with the epoch closed.
func Charge(e *engine.Env, n int) {
	e.Produce(9, uint64(n))
}
