// Package txp exercises txpath: MTX lifecycle violations on some path must
// be reported, and the repository's blessed pipeline idioms must not be.
package txp

import (
	"hmtx/internal/engine"
	"txhelp"
)

// LeakyBranch is the seeded self-test of ISSUE 6: the else path returns
// with the epoch still open.
func LeakyBranch(e *engine.Env, n int) {
	e.Begin(1) // want `transaction opened here may reach function return with the epoch still open`
	if n > 0 {
		e.Commit(1)
	}
}

// BalancedBranches closes the epoch differently on every arm: clean.
func BalancedBranches(e *engine.Env, n int) {
	e.Begin(1)
	switch n {
	case 0:
		e.Commit(1)
	case 1:
		e.Abort(1)
	default:
		e.Begin(0)
	}
}

// DeferredClose discharges the exit obligation: clean.
func DeferredClose(e *engine.Env, seq engine.Seq) {
	defer e.Commit(seq)
	e.Begin(seq)
	e.Store(1, 2)
}

// ReuseAfterCommit begins a VID that already committed.
func ReuseAfterCommit(e *engine.Env) {
	e.Begin(1)
	e.Commit(1)
	e.Begin(1) // want `Begin reuses VID 1, which already committed on this path`
	e.Commit(1)
}

// LoopStale never rebinds seq, so the second iteration reuses a committed
// VID.
func LoopStale(e *engine.Env, seq engine.Seq, n int) {
	for i := 0; i < n; i++ {
		e.Begin(seq) // want `Begin reuses VID \(variable\), which already committed on this path`
		e.Commit(seq)
	}
}

// LoopFresh rebinds seq every iteration and detaches instead of
// committing — the stage-1 pipeline idiom: clean.
func LoopFresh(e *engine.Env, n int) {
	for it := 0; it < n; it++ {
		seq := engine.Seq(it + 1)
		e.Begin(seq)
		e.Store(1, uint64(it))
		e.Begin(0)
		e.Produce(1, uint64(seq))
	}
	e.CloseQueue(1)
}

// DoubleBegin opens a second transaction with the first still open.
func DoubleBegin(e *engine.Env) {
	e.Begin(1)
	e.Begin(2) // want `Begin while transaction 1 is still open on this path`
	e.Commit(2)
}

// MismatchedCommit commits a different VID than the open epoch.
func MismatchedCommit(e *engine.Env) {
	e.Begin(4)
	e.Commit(5) // want `Commit of VID 5 while transaction 4 is open on this path`
}

// SquashSuccessor aborts the next VID after committing its own — the
// early-exit squash idiom: clean.
func SquashSuccessor(e *engine.Env, seq engine.Seq) {
	e.Begin(seq)
	e.Commit(seq)
	e.Abort(seq + 1)
}

// CommitProcess commits in order with no epoch of its own — the SMTX
// commit-process idiom: clean.
func CommitProcess(e *engine.Env, last engine.Seq) {
	expected := engine.Seq(1)
	for expected <= last {
		e.Commit(expected)
		expected++
	}
}

// AccessOutside touches tracked memory after the epoch closed.
func AccessOutside(e *engine.Env) {
	e.Begin(1)
	e.Commit(1)
	e.Store(8, 9) // want `tracked memory access outside an open transaction epoch on this path`
}

// touchLocal is a same-package helper summarized by a TxFact.
func touchLocal(e *engine.Env) {
	e.Store(16, 1)
}

// AccessOutsideViaHelper reaches tracked memory through a same-package
// helper with the epoch closed.
func AccessOutsideViaHelper(e *engine.Env) {
	e.Begin(2)
	e.Commit(2)
	touchLocal(e) // want `tracked memory access outside an open transaction epoch on this path`
}

// AccessOutsideViaImport reaches tracked memory through an imported
// helper, two calls deep, with the epoch closed.
func AccessOutsideViaImport(e *engine.Env) {
	e.Begin(3)
	e.Commit(3)
	txhelp.Indirect(e) // want `tracked memory access outside an open transaction epoch on this path`
}

// HelperInsideEpoch calls the same helpers with the epoch open: clean.
func HelperInsideEpoch(e *engine.Env) {
	e.Begin(7)
	touchLocal(e)
	txhelp.Touch(e)
	e.Commit(7)
	txhelp.Charge(e, 3) // no tracked access inside: legal while closed
}

// NonSpeculative never opens an epoch, like workload stages and the
// sequential baseline: tracked accesses are legal.
func NonSpeculative(e *engine.Env, it int) bool {
	v := e.Load(uint64(it))
	e.Store(uint64(it), v+1)
	return v < 100
}
