package txpath_test

import (
	"testing"

	"hmtx/tools/analyzers/analysis/analysistest"
	"hmtx/tools/analyzers/txpath"
)

func TestTxpath(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), txpath.Analyzer, "txp")
}
