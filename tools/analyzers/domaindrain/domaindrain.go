// Package domaindrain keeps simulation-visible output out of goroutines in
// the intra-run simulation layer (internal/engine, internal/memsys).
//
// The domain-sharded scheduler (DESIGN.md §16) runs one goroutine per domain
// inside each conservative time quantum. Everything those goroutines compute
// that feeds simulation-visible output — architectural counters, profiler
// charges, metric instruments, trace events — must be buffered as plain
// per-core records and applied by the coordinator in the canonical barrier
// drain (cycle, core, issue order), because applying it from a worker would
// interleave in host-scheduler order and silently break the byte-identical
// determinism contract.
//
// The analyzer finds every function reachable from a `go` statement in the
// scoped packages (the goroutine entry itself, function literals launched
// directly, and every statically resolvable same-package callee) and reports:
//
//   - calls into hmtx/internal/prof, hmtx/internal/metrics or
//     hmtx/internal/obs, except the Enabled guard query — charging,
//     observing or emitting from a worker is exactly the nondeterministic
//     ordering the drain exists to prevent;
//   - writes to fields of the engine or memsys Stats structs — the
//     architectural counters are simulation-visible output too.
//
// Buffering records, publishing atomic bounds, and channel handoffs are all
// fine: the rule is only that effects on simulation-visible state happen on
// the coordinator, after the barrier. Test files are exempt: test goroutines
// are not simulation schedulers.
package domaindrain

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"hmtx/tools/analyzers/analysis"
	"hmtx/tools/analyzers/analysis/callgraph"
)

var Analyzer = &analysis.Analyzer{
	Name: "domaindrain",
	Doc:  "requires goroutine state in engine/memsys to reach simulation-visible output via the canonical barrier drain",
	Run:  run,
}

// sinkPkgs are the package-path suffixes whose calls count as
// simulation-visible output effects ("Enabled" excepted).
var sinkPkgs = []string{
	"internal/prof",
	"internal/metrics",
	"internal/obs",
}

// statsPkgs are the package-path suffixes whose "Stats" struct fields are
// architectural counters.
var statsPkgs = []string{
	"internal/engine",
	"internal/memsys",
}

func run(pass *analysis.Pass) (any, error) {
	pkg := strings.TrimSuffix(pass.PkgPath, "_test")
	if !strings.HasSuffix(pkg, "internal/engine") && !strings.HasSuffix(pkg, "internal/memsys") {
		return nil, nil
	}
	graph := callgraph.Build(pass)

	// Roots: functions entered by a `go` statement, and the bodies of
	// function literals launched directly. Literal bodies are scanned in
	// place; their statically resolvable callees join the worklist like any
	// declared root.
	reached := map[*types.Func]string{} // reachable function -> goroutine entry description
	var work []*types.Func
	add := func(fn *types.Func, via string) {
		if fn == nil || reached[fn] != "" {
			return
		}
		if graph.Node(fn) == nil {
			return // out-of-package callee: only sink calls matter, checked at the call site
		}
		reached[fn] = via
		work = append(work, fn)
	}
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
				via := "goroutine literal"
				checkBody(pass, lit.Body, via)
				for _, callee := range bodyCallees(pass, lit.Body) {
					add(callee, via)
				}
				return true
			}
			if fn := callgraph.StaticCallee(pass.TypesInfo, gs.Call); fn != nil {
				add(fn, "goroutine "+fn.Name())
			}
			return true
		})
	}

	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		node := graph.Node(fn)
		if node == nil || node.Decl == nil || node.Decl.Body == nil {
			continue
		}
		via := reached[fn]
		if strings.HasSuffix(pass.Fset.Position(node.Decl.Pos()).Filename, "_test.go") {
			continue
		}
		checkBody(pass, node.Decl.Body, via)
		for _, callee := range node.Callees {
			add(callee, via)
		}
	}
	return nil, nil
}

// bodyCallees lists the statically resolvable call targets lexically inside
// body.
func bodyCallees(pass *analysis.Pass, body *ast.BlockStmt) []*types.Func {
	var out []*types.Func
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := callgraph.StaticCallee(pass.TypesInfo, call); fn != nil {
				out = append(out, fn)
			}
		}
		return true
	})
	return out
}

// checkBody reports every simulation-visible output effect inside body,
// which executes on a domain goroutine reached via the given entry.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt, via string) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := sinkCall(pass, n); ok {
				pass.Reportf(n.Pos(), "%s called on a domain goroutine (via %s); buffer the effect and apply it in the canonical barrier drain", name, via)
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if name, ok := statsWrite(pass, lhs); ok {
					pass.Reportf(lhs.Pos(), "%s written on a domain goroutine (via %s); buffer the effect and apply it in the canonical barrier drain", name, via)
				}
			}
		case *ast.IncDecStmt:
			if name, ok := statsWrite(pass, n.X); ok {
				pass.Reportf(n.X.Pos(), "%s written on a domain goroutine (via %s); buffer the effect and apply it in the canonical barrier drain", name, via)
			}
		}
		return true
	})
}

// sinkCall reports whether call invokes a simulation-visible output API:
// anything in the prof, metrics or obs packages except the Enabled query.
func sinkCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Name() == "Enabled" {
		return "", false
	}
	for _, suffix := range sinkPkgs {
		if strings.HasSuffix(fn.Pkg().Path(), suffix) {
			return fmt.Sprintf("%s.%s", fn.Pkg().Name(), fn.Name()), true
		}
	}
	return "", false
}

// calleeFunc resolves the called function or method, including methods
// reached through interface values (which have no static callee but still
// name the API being invoked).
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// statsWrite reports whether e writes a field of an engine or memsys Stats
// struct (directly or through a pointer).
func statsWrite(pass *analysis.Pass, e ast.Expr) (string, bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return "", false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Stats" || named.Obj().Pkg() == nil {
		return "", false
	}
	for _, suffix := range statsPkgs {
		if strings.HasSuffix(named.Obj().Pkg().Path(), suffix) {
			return fmt.Sprintf("%s.Stats.%s", named.Obj().Pkg().Name(), sel.Sel.Name), true
		}
	}
	return "", false
}
