// Package domaindrain keeps simulation-visible output out of goroutines in
// the intra-run simulation layer (internal/engine, internal/memsys).
//
// The domain-sharded scheduler (DESIGN.md §16) runs one goroutine per domain
// inside each conservative time quantum. Everything those goroutines compute
// that feeds simulation-visible output — architectural counters, profiler
// charges, metric instruments, trace events — must be buffered as plain
// per-core records and applied by the coordinator in the canonical barrier
// drain (cycle, core, issue order), because applying it from a worker would
// interleave in host-scheduler order and silently break the byte-identical
// determinism contract.
//
// Since v2 the reachability is the valueflow goroutine closure (DESIGN.md
// §17) over the package call graph: a go statement's entry, function
// literals launched directly, every statically resolvable callee, and —
// the part a syntactic walk misses — functions and methods referenced *as
// values* inside reachable code or passed as goroutine arguments, so a
// worker dispatched through a function pointer or method value is checked
// like any other. Inside reachable code the analyzer reports:
//
//   - calls into hmtx/internal/prof, hmtx/internal/metrics or
//     hmtx/internal/obs, except the Enabled guard query — charging,
//     observing or emitting from a worker is exactly the nondeterministic
//     ordering the drain exists to prevent;
//   - writes to fields of the engine or memsys Stats structs — the
//     architectural counters are simulation-visible output too;
//   - calls to functions in *other* packages whose exported emit fact says
//     they (transitively) perform one of the above: the analyzer computes a
//     bottom-up emit summary for every package it runs on and exports it as
//     object facts, so laundering a charge through an out-of-package helper
//     is caught at the call site.
//
// Buffering records, publishing atomic bounds, and channel handoffs are all
// fine: the rule is only that effects on simulation-visible state happen on
// the coordinator, after the barrier. Test files are exempt: test goroutines
// are not simulation schedulers.
package domaindrain

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"hmtx/tools/analyzers/analysis"
	"hmtx/tools/analyzers/analysis/callgraph"
	"hmtx/tools/analyzers/analysis/valueflow"
)

var Analyzer = &analysis.Analyzer{
	Name:    "domaindrain",
	Doc:     "requires goroutine state in engine/memsys to reach simulation-visible output via the canonical barrier drain",
	Version: "2",
	Run:     run,
}

// sinkPkgs are the package-path suffixes whose calls count as
// simulation-visible output effects ("Enabled" excepted).
var sinkPkgs = []string{
	"internal/prof",
	"internal/metrics",
	"internal/obs",
}

// statsPkgs are the package-path suffixes whose "Stats" struct fields are
// architectural counters.
var statsPkgs = []string{
	"internal/engine",
	"internal/memsys",
}

// emitFact lists the simulation-visible effects a function (transitively)
// performs, so call sites in other packages can be judged.
type emitFact struct {
	Sinks []string
}

func (*emitFact) AFact() {}

func run(pass *analysis.Pass) (any, error) {
	cg := callgraph.Build(pass)
	isTest := func(n ast.Node) bool {
		return strings.HasSuffix(pass.Fset.Position(n.Pos()).Filename, "_test.go")
	}

	// Phase 1, every package: bottom-up transitive emit summaries, exported
	// as facts. This runs outside the scoped packages too — that is the
	// point: an engine worker calling a helper from some other package needs
	// the helper's summary.
	sums := map[*types.Func][]string{}
	emitsOf := func(fn *types.Func) []string {
		if s, ok := sums[fn]; ok {
			return s
		}
		var f emitFact
		if pass.ImportObjectFact(fn, &f) {
			return f.Sinks
		}
		return nil
	}
	order := cg.PostOrder()
	for iter := 0; iter < 16; iter++ {
		changed := false
		for _, n := range order {
			if n.Decl.Body == nil || isTest(n.Decl) {
				continue
			}
			set := map[string]bool{}
			ast.Inspect(n.Decl.Body, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.CallExpr:
					if name, ok := sinkCall(pass, m); ok {
						set[name] = true
					}
				case *ast.AssignStmt:
					for _, lhs := range m.Lhs {
						if name, ok := statsWrite(pass, lhs); ok {
							set[name] = true
						}
					}
				case *ast.IncDecStmt:
					if name, ok := statsWrite(pass, m.X); ok {
						set[name] = true
					}
				}
				return true
			})
			for _, callee := range n.Callees {
				for _, s := range emitsOf(callee) {
					set[s] = true
				}
			}
			cur := make([]string, 0, len(set))
			for s := range set {
				cur = append(cur, s)
			}
			sort.Strings(cur)
			if !equalStrings(sums[n.Fn], cur) {
				sums[n.Fn] = cur
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for fn, sinks := range sums {
		if len(sinks) > 0 {
			pass.ExportObjectFact(fn, &emitFact{Sinks: sinks})
		}
	}

	// Phase 2: reporting, scoped to the simulation layer.
	pkg := strings.TrimSuffix(pass.PkgPath, "_test")
	if !strings.HasSuffix(pkg, "internal/engine") && !strings.HasSuffix(pkg, "internal/memsys") {
		return nil, nil
	}

	reach := valueflow.GoReachable(pass, cg, false)
	// A go-launched literal body nests inside some declaration; if that
	// declaration is itself reachable its nodes are visited twice.
	seen := map[token.Pos]bool{}
	report := func(pos token.Pos, format string, args ...any) {
		if !seen[pos] {
			seen[pos] = true
			pass.Reportf(pos, format, args...)
		}
	}
	checkCall := func(call *ast.CallExpr, via string) {
		if name, ok := sinkCall(pass, call); ok {
			report(call.Pos(), "%s called on a domain goroutine (via %s); buffer the effect and apply it in the canonical barrier drain", name, via)
			return
		}
		callee := callgraph.StaticCallee(pass.TypesInfo, call)
		if callee == nil || callee.Pkg() == pass.Pkg {
			return // in-package callees are checked in their own bodies
		}
		if sinks := emitsOf(callee); len(sinks) > 0 {
			report(call.Pos(), "%s emits %s when called on a domain goroutine (via %s); buffer the effect and apply it in the canonical barrier drain",
				funcName(pass, callee), strings.Join(sinks, ", "), via)
		}
	}
	checkBody := func(body *ast.BlockStmt, via string) {
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(n, via)
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if name, ok := statsWrite(pass, lhs); ok {
						report(lhs.Pos(), "%s written on a domain goroutine (via %s); buffer the effect and apply it in the canonical barrier drain", name, via)
					}
				}
			case *ast.IncDecStmt:
				if name, ok := statsWrite(pass, n.X); ok {
					report(n.X.Pos(), "%s written on a domain goroutine (via %s); buffer the effect and apply it in the canonical barrier drain", name, via)
				}
			}
			return true
		})
	}

	for fn, via := range reach.Funcs {
		n := cg.Node(fn)
		if n == nil || n.Decl == nil || n.Decl.Body == nil || isTest(n.Decl) {
			continue
		}
		checkBody(n.Decl.Body, via)
	}
	for _, lit := range reach.Lits {
		checkBody(lit.Body, lit.Via)
	}
	// The go statement's own call: `go prof.Charge(...)` or `go helper()`
	// with an imported, emitting helper never appears inside a reachable
	// body, so it is checked at the root.
	for _, file := range pass.Files {
		if isTest(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if gs, ok := n.(*ast.GoStmt); ok {
				if _, isLit := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); !isLit {
					checkCall(gs.Call, "goroutine entry")
				}
			}
			return true
		})
	}
	return nil, nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func funcName(pass *analysis.Pass, fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return types.TypeString(sig.Recv().Type(), types.RelativeTo(pass.Pkg)) + "." + name
	}
	if fn.Pkg() != nil && fn.Pkg() != pass.Pkg {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

// sinkCall reports whether call invokes a simulation-visible output API:
// anything in the prof, metrics or obs packages except the Enabled query.
func sinkCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Name() == "Enabled" {
		return "", false
	}
	for _, suffix := range sinkPkgs {
		if strings.HasSuffix(fn.Pkg().Path(), suffix) {
			return fmt.Sprintf("%s.%s", fn.Pkg().Name(), fn.Name()), true
		}
	}
	return "", false
}

// calleeFunc resolves the called function or method, including methods
// reached through interface values (which have no static callee but still
// name the API being invoked).
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// statsWrite reports whether e writes a field of an engine or memsys Stats
// struct (directly or through a pointer).
func statsWrite(pass *analysis.Pass, e ast.Expr) (string, bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return "", false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Stats" || named.Obj().Pkg() == nil {
		return "", false
	}
	for _, suffix := range statsPkgs {
		if strings.HasSuffix(named.Obj().Pkg().Path(), suffix) {
			return fmt.Sprintf("%s.Stats.%s", named.Obj().Pkg().Name(), sel.Sel.Name), true
		}
	}
	return "", false
}
