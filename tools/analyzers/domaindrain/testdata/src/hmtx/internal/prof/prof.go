// Package prof is a minimal stand-in for hmtx/internal/prof: the analyzer
// matches the Collector type by name and package-path suffix, so the fixture
// only needs the methods the gate cares about.
package prof

type Bucket uint8

const (
	Compute Bucket = iota
	Bus
)

type Collector struct{ total int64 }

func (c *Collector) Enabled() bool { return c != nil }

func (c *Collector) Charge(core int, seq uint64, b Bucket, cycles int64) {}

func (c *Collector) ChargeLine(core int, seq uint64, b Bucket, cycles int64, line uint64) {}

func (c *Collector) LineConflict(line uint64) {}

func (c *Collector) CoreDone(core int, cycles int64) {}

func (c *Collector) RunEnd(makespan int64, aborted bool, lastCommitted uint64) {}
