// Package metrics is a minimal stand-in for hmtx/internal/metrics: the
// analyzer matches calls by package-path suffix, so the fixture only needs
// the methods the rule cares about.
package metrics

type Series struct{ n int64 }

func (s *Series) Enabled() bool { return s != nil }

func (s *Series) Tick(cycle int64) {}

type Hist struct{ n int64 }

func (h *Hist) Observe(v int64) {}
