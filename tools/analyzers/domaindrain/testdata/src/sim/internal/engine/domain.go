// Fixture for domaindrain: the package path ends in internal/engine, so the
// rule applies. Domain-worker goroutines may buffer records and publish
// bounds, but every simulation-visible effect — profiler charges, metric
// ticks, Stats counter writes — must happen on the coordinator, in the
// canonical barrier drain.
package engine

import (
	"sync"

	"hmtx/internal/metrics"
	"hmtx/internal/prof"

	"simhelp"
)

type Stats struct {
	Instructions uint64
	Branches     uint64
}

type rec struct {
	key    int64
	cycles int64
}

type sys struct {
	stats  Stats
	prof   *prof.Collector
	series *metrics.Series
	recs   []rec
	mu     sync.Mutex
}

// runRound is the good pattern: workers buffer, the coordinator drains.
func (s *sys) runRound() {
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.workerBuffer(0)
		}()
	}
	wg.Wait()
	s.drain() // not on a goroutine: effects apply here, in canonical order
}

// workerBuffer only appends records and reads the Enabled guards: no
// diagnostics.
func (s *sys) workerBuffer(k int64) {
	if s.series.Enabled() {
		k++
	}
	s.mu.Lock()
	s.recs = append(s.recs, rec{key: k, cycles: 2})
	s.mu.Unlock()
}

// drain applies the buffered effects on the coordinator: no diagnostics.
func (s *sys) drain() {
	for _, r := range s.recs {
		s.stats.Instructions++
		if s.series.Enabled() {
			s.series.Tick(r.key)
		}
		if s.prof.Enabled() {
			s.prof.Charge(0, 1, prof.Compute, r.cycles)
		}
	}
	s.recs = s.recs[:0]
}

// badLiteral emits directly from a goroutine literal.
func (s *sys) badLiteral() {
	go func() {
		s.series.Tick(1)                      // want `metrics.Tick called on a domain goroutine`
		s.prof.Charge(0, 1, prof.Compute, 2)  // want `prof.Charge called on a domain goroutine`
		s.stats.Instructions++                // want `engine.Stats.Instructions written on a domain goroutine`
		s.stats.Branches = s.stats.Branches + 1 // want `engine.Stats.Branches written on a domain goroutine`
	}()
}

// badWorker is entered via a go statement below; its effects are flagged
// even though the go statement is elsewhere.
func (s *sys) badWorker() {
	s.chargeHelper(4)
}

// chargeHelper is reached transitively from the goroutine entry.
func (s *sys) chargeHelper(cycles int64) {
	if s.prof.Enabled() {
		s.prof.ChargeLine(0, 1, prof.Bus, cycles, 0x40) // want `prof.ChargeLine called on a domain goroutine`
	}
}

func (s *sys) launch() {
	go s.badWorker()
}

// coordinatorPath calls the same helper without any goroutine: the helper is
// already flagged via launch's reachability, but calls on the coordinator do
// not add diagnostics of their own.
func (s *sys) coordinatorOnly() {
	s.drain()
}

// tickHelper is reached only through the method value passed as a goroutine
// argument in hiddenDispatch: v1's syntactic walk missed this entirely.
func (s *sys) tickHelper() {
	s.series.Tick(9) // want `metrics.Tick called on a domain goroutine`
}

func (s *sys) hiddenDispatch() {
	go runFn(s.tickHelper)
}

func runFn(f func()) { f() }

// tickFree is reached through a plain function value bound inside a
// goroutine literal.
func tickFree(s *sys) {
	s.series.Tick(11) // want `metrics.Tick called on a domain goroutine`
}

func (s *sys) valueInBody() {
	go func() {
		g := tickFree
		g(s)
	}()
}

// crossPackage launders the charge through an out-of-package helper; the
// helper's emit fact surfaces it at the call site.
func (s *sys) crossPackage(k int64) {
	go func() {
		_ = simhelp.Pure(k)
		simhelp.Emit(s.prof) // want `simhelp.Emit emits prof.Charge when called on a domain goroutine`
	}()
}
