// Package simhelp is outside the engine/memsys scope but emits
// simulation-visible output: its exported emit facts must make calls from
// scoped goroutines reportable at the call site.
package simhelp

import "hmtx/internal/prof"

// Emit transitively reaches prof.Charge through a local helper, so the
// exported fact is itself the product of the bottom-up summary.
func Emit(p *prof.Collector) {
	charge(p)
}

func charge(p *prof.Collector) {
	p.Charge(0, 1, prof.Compute, 3)
}

// Pure does not emit; calls to it from workers must stay silent.
func Pure(x int64) int64 { return x * 2 }
