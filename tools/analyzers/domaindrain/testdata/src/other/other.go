// Package other is outside the engine/memsys scope: goroutines here may talk
// to the instrument packages directly (e.g. the experiments worker pool, rate
// reporters), so the analyzer must stay silent.
package other

import "hmtx/internal/prof"

type runner struct {
	prof *prof.Collector
}

func (r *runner) spawn() {
	go func() {
		r.prof.Charge(0, 1, prof.Compute, 1)
	}()
}
