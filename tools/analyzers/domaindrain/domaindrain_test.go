package domaindrain_test

import (
	"testing"

	"hmtx/tools/analyzers/analysis/analysistest"
	"hmtx/tools/analyzers/domaindrain"
)

func TestDomaindrain(t *testing.T) {
	// sim/internal/engine carries the want comments; other launches
	// goroutines that charge directly but is out of scope and must stay
	// silent.
	analysistest.Run(t, analysistest.TestData(), domaindrain.Analyzer,
		"sim/internal/engine", "other")
}
