// Package memsys is a stand-in for the simulator's memory system: its
// structs are simulation-visible state for the detflow fixtures.
package memsys

// Line is one simulated cache line.
type Line struct {
	State int
	Note  string
}

// Hierarchy is the simulated cache hierarchy.
type Hierarchy struct {
	Lines []Line
	Note  string
	Seed  int64
}

// SetNote stores its argument into simulation-visible state: detflow must
// summarize the parameter as sink-reaching so tainted call sites are caught.
func (h *Hierarchy) SetNote(n string) {
	h.Note = n
}

// Blend is pure: the result depends on the parameters but nothing reaches a
// sink, so tainted arguments at call sites are fine unless the result is
// then stored somewhere visible.
func Blend(a, b int) int {
	return a*31 + b
}
