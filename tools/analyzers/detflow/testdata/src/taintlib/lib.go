// Package taintlib launders nondeterminism sources through helper
// functions; nothing in here is a finding by itself, but detflow's
// summaries must carry the taint to callers in other packages.
package taintlib

import "time"

// FirstKey leaks map iteration order through a return value.
func FirstKey(m map[string]int) string {
	for k := range m {
		return k
	}
	return ""
}

// Passthrough propagates its parameter to its result.
func Passthrough(s string) string {
	return s + "!"
}

// Stamp returns wall-clock time: its result is inherently tainted.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Sum is order-insensitive: iterating a map without exposing the order
// yields an untainted result.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
