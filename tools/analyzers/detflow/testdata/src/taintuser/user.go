// Package taintuser exercises detflow: nondeterminism sources laundered
// through taintlib must be reported when they reach simulation-visible
// state, and only then.
package taintuser

import (
	"encoding/json"
	"fmt"
	"sort"

	"hmtx/internal/memsys"
	"taintlib"
)

// InterproceduralMapLeak is the seeded self-test of ISSUE 6: the map
// iteration order escapes through a helper in another package and lands in
// a simulation-visible field.
func InterproceduralMapLeak(h *memsys.Hierarchy, m map[string]int) {
	k := taintlib.FirstKey(m)
	h.Note = k // want `nondeterministic value \(map iteration order\) flows into simulation-visible field Hierarchy\.Note`
}

// DoubleLaundered pushes the taint through two helpers.
func DoubleLaundered(h *memsys.Hierarchy, m map[string]int) {
	k := taintlib.Passthrough(taintlib.FirstKey(m))
	h.Lines[0].Note = k // want `nondeterministic value \(map iteration order\) flows into simulation-visible field Line\.Note`
}

// ParamSinkCall reaches the sink inside the callee: the finding lands at
// the call site, where the nondeterministic argument is.
func ParamSinkCall(h *memsys.Hierarchy, m map[string]int) {
	k := taintlib.FirstKey(m)
	h.SetNote(k) // want `nondeterministic value \(map iteration order\) flows into simulation-visible field Hierarchy\.Note \(inside SetNote\)`
}

// WallClockSeed stores a laundered wall-clock read into a composite
// literal of a simulation-visible struct.
func WallClockSeed() memsys.Hierarchy {
	t := taintlib.Stamp()
	return memsys.Hierarchy{Seed: t} // want `nondeterministic value \(wall-clock time\) flows into simulation-visible struct Hierarchy`
}

// SelectOrder binds a value under select: which arm ran is scheduler
// dependent.
func SelectOrder(h *memsys.Hierarchy, a, b chan int) {
	var v int
	select {
	case v = <-a:
	case v = <-b:
	}
	h.Lines[0].State = v // want `nondeterministic value \(select arm ordering\) flows into simulation-visible field Line\.State`
}

// PointerText formats an address; the text is unstable across runs.
func PointerText(h *memsys.Hierarchy) {
	s := fmt.Sprintf("%p", h)
	h.Note = s // want `nondeterministic value \(pointer-formatted address \(%p\)\) flows into simulation-visible field Hierarchy\.Note`
}

// JSONLeak marshals a tainted value: JSON documents are compared
// byte-for-byte in CI.
func JSONLeak(m map[string]int) []byte {
	k := taintlib.FirstKey(m)
	out, _ := json.Marshal(k) // want `nondeterministic value \(map iteration order\) flows into JSON output`
	return out
}

// SortedIsClean collects map keys, sorts them, and uses them: the blessed
// deterministic-iteration pattern must not be flagged.
func SortedIsClean(h *memsys.Hierarchy, m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h.Note = keys[0]
}

// FoldIsClean sums map values: a commutative integer fold is
// order-insensitive, like detrange's accumulation exemption.
func FoldIsClean(h *memsys.Hierarchy, m map[string]int) {
	h.Lines[0].State = taintlib.Sum(m)
}

// Waived carries an annotation with a reason: the finding is suppressed.
func Waived(h *memsys.Hierarchy, m map[string]int) {
	h.Note = taintlib.FirstKey(m) //hmtx:detsafe fixture: order feeds a debug label only
}

// WaivedAbove carries the annotation on its own line above the flagged
// statement: also suppressed.
func WaivedAbove(h *memsys.Hierarchy, m map[string]int) {
	//hmtx:detsafe fixture: an own-line annotation covers the next line
	h.Note = taintlib.FirstKey(m)
}

// MissingReason has an annotation without a reason: still suppressed, but
// the annotation itself is reported.
func MissingReason(h *memsys.Hierarchy, m map[string]int) {
	h.Note = taintlib.FirstKey(m) /*hmtx:detsafe*/ // want `//hmtx:detsafe annotation needs a reason`
}

// Stale carries an annotation on a line with no finding.
func Stale(h *memsys.Hierarchy) {
	h.Note = "constant" /*hmtx:detsafe fixture: nothing here*/ // want `stale //hmtx:detsafe annotation`
}

// PureUseIsClean passes tainted values to a pure function and discards the
// relationship before any sink.
func PureUseIsClean(h *memsys.Hierarchy, m map[string]int) {
	n := memsys.Blend(len(m), 7)
	h.Lines[0].State = n
}
