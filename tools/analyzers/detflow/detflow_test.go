package detflow_test

import (
	"testing"

	"hmtx/tools/analyzers/analysis/analysistest"
	"hmtx/tools/analyzers/detflow"
)

func TestDetflow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), detflow.Analyzer, "taintuser")
}
