// Package detflow is an interprocedural taint analysis for the determinism
// contract (DESIGN.md §9, §14): it marks values derived from nondeterminism
// sources and reports any explicit flow — across function and package
// boundaries — into simulation-visible state.
//
// Sources:
//   - map iteration order: `for range` over a map, and the stdlib map-order
//     launderers maps.Keys / maps.Values / maps.All and
//     reflect.Value.MapKeys / MapRange;
//   - select arm choice: values bound by a select communication clause;
//   - wall-clock time: time.Now / Since / Until;
//   - ambient randomness: package-level math/rand and math/rand/v2
//     functions and crypto/rand;
//   - host and process identity: runtime.NumCPU, runtime.NumGoroutine,
//     os.Getpid, os.Environ, os.Hostname;
//   - pointer-formatted addresses: fmt verbs with %p in a constant format
//     string, and unsafe.Pointer-to-uintptr conversions.
//
// Sinks:
//   - a store into a field (or composite literal) of a struct defined in a
//     simulation-visible package (internal/memsys, engine, prof, obs,
//     stats, check, experiments, hmtx, smtx, vid);
//   - a call into a simulation-visible package, or into the
//     deterministic-output encoders (encoding/json), passing a tainted
//     argument;
//   - a call to any function whose summary says the parameter reaches one
//     of the above inside the callee.
//
// The analysis is a forward dataflow over each function's CFG
// (analysis/cfg) tracking tainted objects. Function summaries — which
// results are inherently tainted, which parameters propagate to which
// results, and which parameters reach a sink — are computed bottom-up over
// the package call graph (analysis/callgraph) and exported as object facts,
// so a nondeterminism source laundered through helpers in another package
// is still caught at the point it enters simulation state. Only explicit
// flows are tracked: a branch on a tainted condition does not taint the
// values assigned under it (detrange covers order-sensitive loop bodies
// syntactically).
//
// A finding can be waived by annotating the reported line (or the line
// above it, for annotations written on their own line):
//
//	doc.Wall = time.Since(start).Seconds() //hmtx:detsafe wall-clock is the datum a perf snapshot records
//
// The reason is mandatory, and a detsafe annotation that no longer
// suppresses any finding is itself reported as stale, so waivers cannot
// outlive the code they excused. Staleness is judged against the packages
// of the run: lint the whole repository (./...), as CI does, because a
// partial run may lack the cross-package summaries that produce the waived
// finding and misreport its annotation as stale. Test files are exempt.
package detflow

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"hmtx/tools/analyzers/analysis"
	"hmtx/tools/analyzers/analysis/callgraph"
	"hmtx/tools/analyzers/analysis/cfg"
)

var Analyzer = &analysis.Analyzer{
	Name: "detflow",
	Doc:  "reports interprocedural flows from nondeterminism sources into simulation-visible state",
	Run:  run,
}

// simVisible are the package-path suffixes whose types and APIs count as
// simulation-visible state (the byte-identical-output surface of DESIGN.md
// §9 plus the experiment/report builders).
var simVisible = []string{
	"internal/memsys",
	"internal/engine",
	"internal/prof",
	"internal/obs",
	"internal/stats",
	"internal/check",
	"internal/experiments",
	"internal/hmtx",
	"internal/smtx",
	"internal/vid",
}

func isSimVisiblePath(path string) bool {
	path = strings.TrimSuffix(path, "_test")
	for _, s := range simVisible {
		if strings.HasSuffix(path, s) {
			return true
		}
	}
	return false
}

// summary is the exported per-function fact.
type summary struct {
	// Results[i] describes taint of the i'th result.
	Results []resTaint
	// Sinks lists parameters that reach a sink inside the function (or a
	// callee of it), with a description of that sink.
	Sinks []paramSink
}

func (*summary) AFact() {}

type resTaint struct {
	Sources []string // inherent source kinds flowing to this result
	Params  []int    // parameter indices whose taint propagates to this result
}

type paramSink struct {
	Param int
	Sink  string
}

// Ordering-kind sources describe the *order* values are observed in, not
// the values themselves. They are erased by operations that re-establish
// order-independence: sorting the collection, folding through a commutative
// integer operation, or storing into a map (whose content is independent of
// insertion order). Value-kind sources (time, rand, addresses) survive all
// of those.
var orderKinds = map[string]bool{
	"map iteration order":           true,
	"map iteration order (reflect)": true,
	"select arm ordering":           true,
}

func stripOrder(t taint) taint {
	var out taint
	for _, s := range t {
		if !orderKinds[s] {
			out = append(out, s)
		}
	}
	return out
}

// paramMark encodes parameter i as a pseudo-source during summary
// computation; the NUL prefix keeps it out of any real source description.
func paramMark(i int) string { return "\x00" + strconv.Itoa(i) }

func unmark(s string) (int, bool) {
	if strings.HasPrefix(s, "\x00") {
		n, err := strconv.Atoi(s[1:])
		return n, err == nil
	}
	return 0, false
}

type state struct {
	pass      *analysis.Pass
	cg        *callgraph.Graph
	summaries map[*types.Func]*summary
	// selectComm marks statements that are a select clause's communication
	// operation; values they bind are ordering-dependent.
	selectComm map[ast.Stmt]bool
	// report is nil while computing summaries (no diagnostics) and set
	// during the reporting pass.
	report func(pos token.Pos, format string, args ...any)
	// sinkHit collects parameter-to-sink flows of the function under
	// summary analysis.
	sinkHit map[paramSink]bool
}

func run(pass *analysis.Pass) (any, error) {
	s := &state{
		pass:       pass,
		cg:         callgraph.Build(pass),
		summaries:  make(map[*types.Func]*summary),
		selectComm: make(map[ast.Stmt]bool),
	}
	var files []*ast.File
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		files = append(files, file)
		ast.Inspect(file, func(n ast.Node) bool {
			if cc, ok := n.(*ast.CommClause); ok && cc.Comm != nil {
				s.selectComm[cc.Comm] = true
			}
			return true
		})
	}

	// Bottom-up summaries over the call graph, iterated to a fixpoint so
	// recursion (and literal-mediated cycles) converge.
	order := s.cg.PostOrder()
	for iter := 0; iter < 16; iter++ {
		changed := false
		for _, n := range order {
			if strings.HasSuffix(pass.Fset.Position(n.Decl.Pos()).Filename, "_test.go") {
				continue
			}
			if s.computeSummary(n.Fn, n.Decl) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, n := range s.cg.Nodes {
		if sum := s.summaries[n.Fn]; sum != nil {
			pass.ExportObjectFact(n.Fn, sum)
		}
	}

	// Reporting pass: re-run the dataflow per function with diagnostics on
	// and parameters unseeded (parameter flows are reported at call sites,
	// where the actual nondeterministic argument is visible).
	ann := collectDetsafe(pass, files)
	var diags []analysis.Diagnostic
	s.report = func(pos token.Pos, format string, args ...any) {
		diags = append(diags, analysis.Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
	}
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					s.flow(fn.Body, nil, fn.Type)
				}
			case *ast.FuncLit:
				s.flow(fn.Body, nil, fn.Type)
			}
			return true
		})
	}

	// Apply //hmtx:detsafe waivers, then report the stale ones.
	for _, d := range diags {
		p := pass.Fset.Position(d.Pos)
		// A waiver applies to findings on its own line or, for annotations
		// written on their own line above the flagged statement, the next.
		a := ann[lineKey{p.Filename, p.Line}]
		if a == nil {
			a = ann[lineKey{p.Filename, p.Line - 1}]
		}
		if a != nil {
			a.used = true
			continue
		}
		pass.Report(d)
	}
	for _, a := range ann {
		switch {
		case a.reason == "":
			pass.Reportf(a.pos, "//hmtx:detsafe annotation needs a reason")
		case !a.used:
			pass.Reportf(a.pos, "stale //hmtx:detsafe annotation: no nondeterminism flow is reported on this line")
		}
	}
	return nil, nil
}

type lineKey struct {
	file string
	line int
}

type annotation struct {
	pos    token.Pos
	reason string
	used   bool
}

func collectDetsafe(pass *analysis.Pass, files []*ast.File) map[lineKey]*annotation {
	ann := make(map[lineKey]*annotation)
	for _, file := range files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				// Both comment forms are accepted; the block form lets a
				// fixture put a want comment on the same line.
				body := strings.TrimSuffix(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"), "*/")
				text, ok := strings.CutPrefix(body, "hmtx:detsafe")
				if !ok {
					continue
				}
				p := pass.Fset.Position(c.Pos())
				ann[lineKey{p.Filename, p.Line}] = &annotation{
					pos:    c.Pos(),
					reason: strings.TrimSpace(text),
				}
			}
		}
	}
	return ann
}

// taint is a sorted set of source descriptions (or parameter marks).
type taint []string

func (t taint) has() bool { return len(t) > 0 }

func union(a, b taint) taint {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	m := make(map[string]bool, len(a)+len(b))
	for _, s := range a {
		m[s] = true
	}
	for _, s := range b {
		m[s] = true
	}
	out := make(taint, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func (t taint) describe() string {
	var real []string
	for _, s := range t {
		if _, isMark := unmark(s); !isMark {
			real = append(real, s)
		}
	}
	return strings.Join(real, ", ")
}

// tmap is the dataflow state: taint per object.
type tmap map[types.Object]taint

func (m tmap) clone() tmap {
	c := make(tmap, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// computeSummary runs the dataflow for fn with parameters seeded with marks
// and records the resulting summary, reporting whether it changed.
func (s *state) computeSummary(fn *types.Func, decl *ast.FuncDecl) bool {
	sig := fn.Type().(*types.Signature)
	init := make(tmap)
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		init[params.At(i)] = taint{paramMark(i)}
	}
	if recv := sig.Recv(); recv != nil {
		// The receiver is not a summarized parameter; leave it unseeded.
		_ = recv
	}
	s.sinkHit = make(map[paramSink]bool)
	results := s.flow(decl.Body, init, decl.Type)
	sum := &summary{Results: results}
	for ps := range s.sinkHit {
		sum.Sinks = append(sum.Sinks, ps)
	}
	sort.Slice(sum.Sinks, func(i, j int) bool {
		if sum.Sinks[i].Param != sum.Sinks[j].Param {
			return sum.Sinks[i].Param < sum.Sinks[j].Param
		}
		return sum.Sinks[i].Sink < sum.Sinks[j].Sink
	})
	s.sinkHit = nil
	old := s.summaries[fn]
	s.summaries[fn] = sum
	return old == nil || !equalSummaries(old, sum)
}

func equalSummaries(a, b *summary) bool {
	return fmt.Sprint(*a) == fmt.Sprint(*b)
}

// flow runs the forward taint dataflow over one function body. init may be
// nil (no seeded taint). It returns the joined taint of each result across
// all return statements.
func (s *state) flow(body *ast.BlockStmt, init tmap, ftype *ast.FuncType) []resTaint {
	g := cfg.New(body)
	nresults := 0
	if ftype.Results != nil {
		for _, f := range ftype.Results.List {
			n := len(f.Names)
			if n == 0 {
				n = 1
			}
			nresults += n
		}
	}
	results := make([]taint, nresults)
	if init == nil {
		init = make(tmap)
	}

	transfer := func(b *cfg.Block, in tmap) tmap {
		cur := in.clone()
		for _, node := range b.Nodes {
			s.node(node, cur, false, nil)
		}
		return cur
	}
	join := func(into, from tmap, first bool) (tmap, bool) {
		if first {
			return from.clone(), true
		}
		changed := false
		for obj, t := range from {
			merged := union(into[obj], t)
			if len(merged) != len(into[obj]) {
				if !changed {
					into = into.clone()
					changed = true
				}
				into[obj] = merged
			}
		}
		return into, changed
	}
	in := cfg.Forward(g, init, transfer, join)

	// Final walk: same transfer, with sinks reported (or recorded into the
	// summary) and return taints accumulated.
	for _, b := range g.Blocks {
		cur := in[b.Index]
		if cur == nil {
			continue // unreachable block
		}
		cur = cur.clone()
		for _, node := range b.Nodes {
			s.node(node, cur, true, results)
		}
	}

	out := make([]resTaint, nresults)
	for i, t := range results {
		for _, src := range t {
			if p, isMark := unmark(src); isMark {
				out[i].Params = append(out[i].Params, p)
			} else {
				out[i].Sources = append(out[i].Sources, src)
			}
		}
	}
	return out
}

// node applies one CFG node to the taint state. With check set, sink
// violations are reported (or recorded as parameter sinks) and return
// statements accumulate into results.
func (s *state) node(node ast.Node, cur tmap, check bool, results []taint) {
	switch n := node.(type) {
	case *ast.AssignStmt:
		s.assign(n, cur, check)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var t taint
					if len(vs.Values) == len(vs.Names) {
						t = s.expr(vs.Values[i], cur, check)
					} else if len(vs.Values) == 1 {
						t = tupleJoin(s.call(vs.Values[0], cur, check))
					}
					setObj(s.pass, cur, name, t)
				}
			}
		}
	case *ast.RangeStmt:
		t := s.expr(n.X, cur, check)
		if tv, ok := s.pass.TypesInfo.Types[n.X]; ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				t = union(t, taint{"map iteration order"})
			}
		}
		if id, ok := n.Key.(*ast.Ident); ok {
			setObj(s.pass, cur, id, t)
		}
		if id, ok := n.Value.(*ast.Ident); ok {
			setObj(s.pass, cur, id, t)
		}
	case *ast.ReturnStmt:
		if check && results != nil {
			if len(n.Results) == 1 && len(results) > 1 {
				for i, t := range s.call(n.Results[0], cur, check) {
					if i < len(results) {
						results[i] = union(results[i], t)
					}
				}
			} else {
				for i, r := range n.Results {
					if i < len(results) {
						results[i] = union(results[i], s.expr(r, cur, check))
					}
				}
			}
		} else {
			for _, r := range n.Results {
				s.expr(r, cur, check)
			}
		}
	case *ast.ExprStmt:
		s.expr(n.X, cur, check)
	case *ast.IncDecStmt:
		s.expr(n.X, cur, check)
	case *ast.SendStmt:
		s.expr(n.Chan, cur, check)
		s.expr(n.Value, cur, check)
	case *ast.GoStmt:
		s.expr(n.Call, cur, check)
	case *ast.DeferStmt:
		s.expr(n.Call, cur, check)
	case ast.Expr:
		s.expr(n, cur, check)
	case ast.Stmt:
		// Init statements of if/switch appear as ordinary nodes above;
		// anything else has no taint effect.
		if a, ok := node.(*ast.AssignStmt); ok {
			s.assign(a, cur, check)
		}
	}
}

// assign propagates taint through one assignment and checks sink stores.
func (s *state) assign(n *ast.AssignStmt, cur tmap, check bool) {
	var rhs []taint
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		rhs = s.call(n.Rhs[0], cur, check)
		for len(rhs) < len(n.Lhs) {
			rhs = append(rhs, nil)
		}
	} else {
		for _, r := range n.Rhs {
			rhs = append(rhs, s.expr(r, cur, check))
		}
	}
	// A select communication `v := <-ch` binds an ordering-dependent value.
	if s.selectComm[n] {
		for i := range rhs {
			rhs[i] = union(rhs[i], taint{"select arm ordering"})
		}
	}
	for i, lhs := range n.Lhs {
		if i >= len(rhs) {
			break
		}
		t := rhs[i]
		if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
			// Compound assignment joins with the old value. A commutative
			// integer fold (sum += v, bits |= v, ...) is order-insensitive,
			// so ordering-kind taint does not survive it — this is the
			// dataflow analogue of detrange's integer-accumulation
			// exemption.
			if commutativeFold(s.pass, n.Tok, lhs) {
				t = stripOrder(t)
			}
			t = union(t, s.expr(lhs, cur, check))
		}
		s.store(lhs, t, cur, check)
	}
}

// store writes taint t into the lvalue lhs: identifiers get per-object
// taint; field/index/pointer stores taint the base object and, when the
// target type belongs to a simulation-visible package, are sink-checked.
func (s *state) store(lhs ast.Expr, t taint, cur tmap, check bool) {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		setObj(s.pass, cur, lhs, t)
	case *ast.SelectorExpr:
		if check && t.has() {
			if sel, ok := s.pass.TypesInfo.Selections[lhs]; ok && sel.Kind() == types.FieldVal {
				if owner := namedOwner(sel.Recv()); owner != nil && isSimVisiblePath(owner.Obj().Pkg().Path()) {
					s.sink(lhs.Pos(), t, fmt.Sprintf("simulation-visible field %s.%s", owner.Obj().Name(), lhs.Sel.Name))
				}
			}
		}
		s.taintBase(lhs.X, t, cur)
	case *ast.IndexExpr:
		// A map's content is independent of the order keys were inserted
		// in, so ordering-kind taint does not survive a map store; a slice
		// store at an order-dependent position keeps it.
		if tv, ok := s.pass.TypesInfo.Types[lhs.X]; ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				t = stripOrder(t)
			}
			if check && t.has() {
				if owner := namedOwner(tv.Type); owner != nil && isSimVisiblePath(owner.Obj().Pkg().Path()) {
					s.sink(lhs.Pos(), t, fmt.Sprintf("simulation-visible container %s", owner.Obj().Name()))
				}
			}
		}
		s.taintBase(lhs.X, t, cur)
	case *ast.StarExpr:
		s.taintBase(lhs.X, t, cur)
	}
}

// commutativeFold reports whether tok is a commutative compound assignment
// into an integer-typed lvalue (float addition is not associative, so only
// integers qualify).
func commutativeFold(pass *analysis.Pass, tok token.Token, lhs ast.Expr) bool {
	switch tok {
	case token.ADD_ASSIGN, token.MUL_ASSIGN, token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
	default:
		return false
	}
	tv, ok := pass.TypesInfo.Types[lhs]
	if !ok {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// killOrder removes ordering-kind taint from the root object of e (the
// collection just sorted).
func (s *state) killOrder(e ast.Expr, cur tmap) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.Ident:
			if obj := identObj(s.pass, x); obj != nil {
				if t := stripOrder(cur[obj]); len(t) != len(cur[obj]) {
					if t.has() {
						cur[obj] = t
					} else {
						delete(cur, obj)
					}
				}
			}
			return
		default:
			return
		}
	}
}

// taintBase joins t into the root identifier of a field/index/deref chain,
// so `x.f = tainted` makes later uses of x tainted.
func (s *state) taintBase(e ast.Expr, t taint, cur tmap) {
	if !t.has() {
		return
	}
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.Ident:
			if obj := identObj(s.pass, x); obj != nil {
				cur[obj] = union(cur[obj], t)
			}
			return
		default:
			return
		}
	}
}

func identObj(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

func setObj(pass *analysis.Pass, cur tmap, id *ast.Ident, t taint) {
	if id.Name == "_" {
		return
	}
	obj := identObj(pass, id)
	if obj == nil {
		return
	}
	if t.has() {
		cur[obj] = t
	} else {
		delete(cur, obj)
	}
}

// namedOwner unwraps pointers to return the named type of t, if any.
func namedOwner(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if ok && n.Obj().Pkg() != nil {
		return n
	}
	return nil
}

// sink reports (or, during summary computation, records) taint reaching a
// sink. Parameter marks become parameter-sink summary entries; real sources
// become diagnostics.
func (s *state) sink(pos token.Pos, t taint, what string) {
	for _, src := range t {
		if p, isMark := unmark(src); isMark {
			if s.sinkHit != nil {
				s.sinkHit[paramSink{p, what}] = true
			}
		}
	}
	if s.report == nil {
		return
	}
	if desc := t.describe(); desc != "" {
		s.report(pos, "nondeterministic value (%s) flows into %s; simulation-visible state must be deterministic, or waive with //hmtx:detsafe <reason>", desc, what)
	}
}

// expr computes the taint of an expression, recursing structurally.
// Function literals are separate scopes and contribute nothing.
func (s *state) expr(e ast.Expr, cur tmap, check bool) taint {
	switch e := e.(type) {
	case nil:
		return nil
	case *ast.Ident:
		if obj := identObj(s.pass, e); obj != nil {
			return cur[obj]
		}
		return nil
	case *ast.ParenExpr:
		return s.expr(e.X, cur, check)
	case *ast.UnaryExpr:
		return s.expr(e.X, cur, check)
	case *ast.StarExpr:
		return s.expr(e.X, cur, check)
	case *ast.BinaryExpr:
		return union(s.expr(e.X, cur, check), s.expr(e.Y, cur, check))
	case *ast.SelectorExpr:
		// Field read: tainted iff the base is. Qualified identifier
		// (pkg.Var): untracked, untainted.
		return s.expr(e.X, cur, check)
	case *ast.IndexExpr:
		return union(s.expr(e.X, cur, check), s.expr(e.Index, cur, check))
	case *ast.SliceExpr:
		return s.expr(e.X, cur, check)
	case *ast.TypeAssertExpr:
		return s.expr(e.X, cur, check)
	case *ast.CompositeLit:
		var t taint
		simOwner := ""
		if tv, ok := s.pass.TypesInfo.Types[e]; ok {
			if owner := namedOwner(tv.Type); owner != nil && isSimVisiblePath(owner.Obj().Pkg().Path()) {
				simOwner = owner.Obj().Name()
			}
		}
		for _, el := range e.Elts {
			v := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			et := s.expr(v, cur, check)
			if check && et.has() && simOwner != "" {
				s.sink(v.Pos(), et, fmt.Sprintf("simulation-visible struct %s (composite literal)", simOwner))
			}
			t = union(t, et)
		}
		return t
	case *ast.CallExpr:
		return tupleJoin(s.call(e, cur, check))
	case *ast.FuncLit:
		return nil
	default:
		return nil
	}
}

func tupleJoin(ts []taint) taint {
	var out taint
	for _, t := range ts {
		out = union(out, t)
	}
	return out
}

// call computes the per-result taint of a call (or conversion) expression
// and performs sink checks on its arguments.
func (s *state) call(e ast.Expr, cur tmap, check bool) []taint {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return []taint{s.expr(e, cur, check)}
	}

	// Type conversion? uintptr(unsafe.Pointer(x)) exposes an address.
	if tv, ok := s.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		t := s.expr(call.Args[0], cur, check)
		if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Kind() == types.Uintptr {
			if atv, ok := s.pass.TypesInfo.Types[call.Args[0]]; ok {
				if ab, ok := atv.Type.Underlying().(*types.Basic); ok && ab.Kind() == types.UnsafePointer {
					t = union(t, taint{"pointer address (unsafe.Pointer)"})
				}
			}
		}
		return []taint{t}
	}

	// Builtins: len/cap of an order-tainted collection are still
	// deterministic; delete/make/new/copy introduce nothing.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := s.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "len", "cap", "make", "new", "delete", "clear", "min", "max":
				for _, a := range call.Args {
					s.expr(a, cur, check)
				}
				return []taint{nil}
			}
		}
	}

	// Sorting re-establishes a deterministic order: ordering-kind taint on
	// the sorted collection dies here. (sort.Slice's less function and the
	// collection share the first argument slot across the sort APIs.)
	if callee := callgraph.StaticCallee(s.pass.TypesInfo, call); callee != nil && callee.Pkg() != nil {
		sorts := false
		switch callee.Pkg().Path() {
		case "sort":
			switch callee.Name() {
			case "Sort", "Stable", "Slice", "SliceStable", "Strings", "Ints", "Float64s":
				sorts = true
			}
		case "slices":
			sorts = strings.HasPrefix(callee.Name(), "Sort")
		}
		if sorts {
			for _, a := range call.Args {
				s.killOrder(a, cur)
			}
		}
	}

	var argT []taint
	for _, a := range call.Args {
		argT = append(argT, s.expr(a, cur, check))
	}
	recvT := receiverTaint(s, call, cur, check)
	allArgs := tupleJoin(argT)
	allArgs = union(allArgs, recvT)

	nres := resultCount(s.pass, call)
	mk := func(t taint) []taint {
		out := make([]taint, nres)
		for i := range out {
			out[i] = t
		}
		return out
	}

	// Builtin sources.
	if src := sourceKind(s.pass, call); src != "" {
		return mk(union(allArgs, taint{src}))
	}

	// Statically known callee: use its summary if available.
	if callee := callgraph.StaticCallee(s.pass.TypesInfo, call); callee != nil {
		var sum *summary
		if local, ok := s.summaries[callee]; ok {
			sum = local
		} else {
			var imported summary
			if s.pass.ImportObjectFact(callee, &imported) {
				sum = &imported
			}
		}
		if sum != nil {
			for _, ps := range sum.Sinks {
				if ps.Param < len(argT) && argT[ps.Param].has() {
					pos := call.Args[ps.Param].Pos()
					s.sinkIfCheck(check, pos, argT[ps.Param],
						fmt.Sprintf("%s (inside %s)", ps.Sink, callee.Name()))
				}
			}
			out := make([]taint, nres)
			for i := range out {
				if i < len(sum.Results) {
					rt := sum.Results[i]
					if len(rt.Sources) > 0 {
						out[i] = union(out[i], taint(rt.Sources))
					}
					for _, p := range rt.Params {
						if p < len(argT) {
							out[i] = union(out[i], argT[p])
						}
					}
				}
			}
			return out
		}
		// No summary: a call into a simulation-visible package with a
		// tainted argument is itself a sink; otherwise propagate.
		if pkg := callee.Pkg(); pkg != nil && isSimVisiblePath(pkg.Path()) {
			if allArgs.has() {
				s.sinkIfCheck(check, call.Pos(), allArgs,
					fmt.Sprintf("simulation API %s.%s", pkg.Name(), callee.Name()))
			}
			return mk(nil)
		}
		if pkg := callee.Pkg(); pkg != nil && pkg.Path() == "encoding/json" && allArgs.has() {
			s.sinkIfCheck(check, call.Pos(), allArgs, "JSON output (encoding/json)")
		}
	}

	// Method sinks by receiver package: (*json.Encoder).Encode and any
	// method on an internal/obs type.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if tv, ok := s.pass.TypesInfo.Types[sel.X]; ok && !tv.IsType() {
			if owner := namedOwner(tv.Type); owner != nil && owner.Obj().Pkg() != nil {
				p := owner.Obj().Pkg().Path()
				if p == "encoding/json" && sel.Sel.Name == "Encode" && allArgs.has() {
					s.sinkIfCheck(check, call.Pos(), allArgs, "JSON output (encoding/json)")
				}
			}
		}
	}

	// Unknown callee: taint propagates from arguments to results.
	return mk(allArgs)
}

func (s *state) sinkIfCheck(check bool, pos token.Pos, t taint, what string) {
	if check {
		s.sink(pos, t, what)
	}
}

func receiverTaint(s *state, call *ast.CallExpr, cur tmap, check bool) taint {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if _, isSel := s.pass.TypesInfo.Selections[sel]; isSel {
		return s.expr(sel.X, cur, check)
	}
	return nil
}

func resultCount(pass *analysis.Pass, call *ast.CallExpr) int {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return 1
	}
	if tup, ok := tv.Type.(*types.Tuple); ok {
		return tup.Len()
	}
	return 1
}

// sourceKind classifies a call as a nondeterminism source, returning a
// description or "".
func sourceKind(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	// reflect.Value.MapKeys / MapRange launder map order.
	if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.MethodVal {
		if owner := namedOwner(s.Recv()); owner != nil && owner.Obj().Pkg() != nil &&
			owner.Obj().Pkg().Path() == "reflect" {
			if sel.Sel.Name == "MapKeys" || sel.Sel.Name == "MapRange" {
				return "map iteration order (reflect)"
			}
		}
		return ""
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	name := fn.Name()
	switch fn.Pkg().Path() {
	case "time":
		switch name {
		case "Now", "Since", "Until":
			return "wall-clock time"
		}
	case "math/rand", "math/rand/v2":
		if !strings.HasPrefix(name, "New") {
			return "ambient math/rand"
		}
	case "crypto/rand":
		return "crypto randomness"
	case "runtime":
		switch name {
		case "NumCPU", "NumGoroutine":
			return "host " + name
		}
	case "os":
		switch name {
		case "Getpid", "Environ", "Hostname":
			return "process/host identity (os." + name + ")"
		}
	case "maps":
		switch name {
		case "Keys", "Values", "All":
			return "map iteration order"
		}
	case "fmt":
		switch name {
		case "Sprintf", "Sprint", "Sprintln", "Errorf", "Appendf", "Fprintf":
			if formatHasPointerVerb(pass, call) {
				return "pointer-formatted address (%p)"
			}
		}
	}
	return ""
}

// formatHasPointerVerb reports whether any constant string argument of the
// call contains a %p verb.
func formatHasPointerVerb(pass *analysis.Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			continue
		}
		if strings.Contains(constant.StringVal(tv.Value), "%p") {
			return true
		}
	}
	return false
}
