package metricsgate_test

import (
	"testing"

	"hmtx/tools/analyzers/analysis/analysistest"
	"hmtx/tools/analyzers/metricsgate"
)

func TestMetricsgate(t *testing.T) {
	// sim/internal/engine carries the want comments; other is out of scope
	// and must stay silent despite its unguarded records.
	analysistest.Run(t, analysistest.TestData(), metricsgate.Analyzer,
		"sim/internal/engine", "other")
}
