// Package metrics is a minimal stand-in for hmtx/internal/metrics: the
// analyzer matches any named type by package-path suffix, so the fixture only
// needs the instruments and the methods the gate cares about.
package metrics

type EdgeKind uint8

const EdgeConflict EdgeKind = 0

type Sampler struct{ rows int }

func (s *Sampler) Enabled() bool { return s != nil }

func (s *Sampler) Tick(now int64) {}

func (s *Sampler) Flush(now int64) {}

func (s *Sampler) Probe(name string, fn func() uint64) {}

type Recorder struct{ n int }

func (r *Recorder) Enabled() bool { return r != nil }

func (r *Recorder) SetTime(cycle int64) {}

func (r *Recorder) Record(aborter, victim, addr uint64, kind EdgeKind) {}

type Hist struct{ total uint64 }

func (h *Hist) Observe(v uint64) {}

type LatHists struct {
	Open       *Hist
	Validation *Hist
	CommitArb  *Hist
}

func (l *LatHists) Enabled() bool { return l != nil }
