package engine

import "hmtx/internal/metrics"

type sys struct {
	series    *metrics.Sampler
	conflicts *metrics.Recorder
	lat       *metrics.LatHists
}

// Guarded records are the contract: no diagnostics.
func (s *sys) guarded(now int64) {
	if s.series.Enabled() {
		s.series.Tick(now)
	}
	if s.conflicts.Enabled() && now > 0 {
		// Nested inside the guard body still counts.
		if now > 16 {
			s.conflicts.SetTime(now)
		}
		s.conflicts.Record(1, 2, 0x40, metrics.EdgeConflict)
	}
	if s.lat.Enabled() {
		s.lat.Open.Observe(uint64(now))
		s.lat.CommitArb.Observe(0)
	}
	r := s.conflicts
	if r.Enabled() {
		r.Record(0, 1, 0x80, metrics.EdgeConflict)
	}
}

func (s *sys) unguarded(now int64) {
	s.series.Tick(now) // want `Sampler.Tick outside an Enabled\(\) guard`
	if now != 0 {
		// An if statement that never consults Enabled is not a guard.
		s.conflicts.Record(1, 2, 0x40, metrics.EdgeConflict) // want `Recorder.Record outside an Enabled\(\) guard`
	}
	if s.lat.Enabled() {
		_ = now
	}
	// After a guard body ends the gate is closed again.
	s.lat.Open.Observe(uint64(now)) // want `Hist.Observe outside an Enabled\(\) guard`
}

// Methods named like instrument methods on other types are not instrument
// calls, and Enabled itself needs no guard.
type meter struct{}

func (meter) Tick(now int64) {}

func use(m meter, sm *metrics.Sampler) bool {
	m.Tick(1)
	return sm.Enabled()
}
