// Package other is outside internal/memsys and internal/engine, so the gate
// does not apply: unguarded records are fine off the simulated fast path
// (e.g. a CLI snapshotting an instrument it just ran).
package other

import "hmtx/internal/metrics"

func Dump(sm *metrics.Sampler, r *metrics.Recorder) {
	sm.Flush(100)
	r.Record(1, 2, 0x40, metrics.EdgeConflict)
}
