// Package metricsgate keeps the DESIGN.md §15 metric instruments off the
// simulator's fast path.
//
// The instrument contract mirrors the profiler's (see profgate): a run with
// metrics disabled pays only one nil-check per potential record. Every call
// to a method of a metrics-package instrument — Sampler.Tick,
// Recorder.Record, Hist.Observe, and the rest — inside internal/memsys and
// internal/engine must sit in the body of an if statement whose condition
// calls Enabled on an instrument, so no row is appended, no edge built, and
// no bucket touched when metrics are off. The analyzer reports any instrument
// method call in those packages that is not enclosed by such a guard; Enabled
// itself is the guard and is exempt.
//
// Test files are exempt: tests drive the instruments deliberately and are not
// on the simulated fast path.
package metricsgate

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hmtx/tools/analyzers/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "metricsgate",
	Doc:  "requires every metrics-instrument call in memsys/engine to be inside an Enabled() guard",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	pkg := strings.TrimSuffix(pass.PkgPath, "_test")
	if !strings.HasSuffix(pkg, "internal/memsys") && !strings.HasSuffix(pkg, "internal/engine") {
		return nil, nil
	}
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		// First pass: the body ranges of every if statement whose condition
		// consults Enabled on an instrument. Records inside such a body (at
		// any nesting depth) are guarded.
		var guards []guard
		ast.Inspect(file, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			if condCallsEnabled(pass, ifs.Cond) {
				guards = append(guards, guard{ifs.Body.Pos(), ifs.Body.End()})
			}
			return true
		})
		// Second pass: every instrument method call other than Enabled must
		// fall inside one of the collected guard bodies.
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, name, ok := instrumentMethod(pass, call)
			if !ok || name == "Enabled" {
				return true
			}
			for _, g := range guards {
				if g.lo <= call.Pos() && call.Pos() < g.hi {
					return true
				}
			}
			pass.Reportf(call.Pos(), "metrics.%s.%s outside an Enabled() guard; wrap it in `if m.Enabled() { ... }` to keep the fast path free when metrics are off", recv, name)
			return true
		})
	}
	return nil, nil
}

type guard struct{ lo, hi token.Pos }

// condCallsEnabled reports whether the expression contains a call to an
// instrument's Enabled method, however it is combined (negation, &&, ||).
func condCallsEnabled(pass *analysis.Pass, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, name, ok := instrumentMethod(pass, call); ok && name == "Enabled" {
				found = true
			}
		}
		return !found
	})
	return found
}

// instrumentMethod reports whether call invokes a method on a value whose
// type is any named type (or pointer to one) from an internal/metrics
// package — Sampler, Recorder, LatHists, Hist — and returns the receiver type
// and method names.
func instrumentMethod(pass *analysis.Pass, call *ast.CallExpr) (recvName, method string, ok bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return "", "", false
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return "", "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "internal/metrics") {
		return "", "", false
	}
	return obj.Name(), sel.Sel.Name, true
}
