package profgate_test

import (
	"testing"

	"hmtx/tools/analyzers/analysis/analysistest"
	"hmtx/tools/analyzers/profgate"
)

func TestProfgate(t *testing.T) {
	// sim/internal/engine carries the want comments; other is out of scope
	// and must stay silent despite its unguarded charges.
	analysistest.Run(t, analysistest.TestData(), profgate.Analyzer,
		"sim/internal/engine", "other")
}
