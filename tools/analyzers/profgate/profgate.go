// Package profgate keeps cycle profiling off the simulator's fast path.
//
// The profiler contract (DESIGN.md §13) is that a run with profiling disabled
// pays only one nil-check per potential charge: every call to a
// (*prof.Collector) emit method — Charge, ChargeLine, the heatmap counters,
// CoreDone, RunEnd — inside internal/memsys and internal/engine must sit in
// the body of an if statement whose condition calls Enabled on a collector,
// so no charge entry is built and no map is touched when profiling is off.
// The analyzer reports any collector method call in those packages that is
// not enclosed by such a guard; Enabled itself is the guard and is exempt.
//
// Test files are exempt: tests drive the collector deliberately and are not
// on the simulated fast path.
package profgate

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hmtx/tools/analyzers/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "profgate",
	Doc:  "requires every prof.Collector call in memsys/engine to be inside an Enabled() guard",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	pkg := strings.TrimSuffix(pass.PkgPath, "_test")
	if !strings.HasSuffix(pkg, "internal/memsys") && !strings.HasSuffix(pkg, "internal/engine") {
		return nil, nil
	}
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		// First pass: the body ranges of every if statement whose condition
		// consults Enabled on a collector. Charges inside such a body (at
		// any nesting depth) are guarded.
		var guards []guard
		ast.Inspect(file, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			if condCallsEnabled(pass, ifs.Cond) {
				guards = append(guards, guard{ifs.Body.Pos(), ifs.Body.End()})
			}
			return true
		})
		// Second pass: every collector method call other than Enabled must
		// fall inside one of the collected guard bodies.
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := collectorMethod(pass, call)
			if !ok || name == "Enabled" {
				return true
			}
			for _, g := range guards {
				if g.lo <= call.Pos() && call.Pos() < g.hi {
					return true
				}
			}
			pass.Reportf(call.Pos(), "prof.Collector.%s outside an Enabled() guard; wrap it in `if p.Enabled() { ... }` to keep the fast path free when profiling is off", name)
			return true
		})
	}
	return nil, nil
}

type guard struct{ lo, hi token.Pos }

// condCallsEnabled reports whether the expression contains a call to the
// collector's Enabled method, however it is combined (negation, &&, ||).
func condCallsEnabled(pass *analysis.Pass, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if name, ok := collectorMethod(pass, call); ok && name == "Enabled" {
				found = true
			}
		}
		return !found
	})
	return found
}

// collectorMethod reports whether call invokes a method on a value whose type
// is prof.Collector (or a pointer to it) from an internal/prof package, and
// returns the method name.
func collectorMethod(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return "", false
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Name() != "Collector" || obj.Pkg() == nil ||
		!strings.HasSuffix(obj.Pkg().Path(), "internal/prof") {
		return "", false
	}
	return sel.Sel.Name, true
}
