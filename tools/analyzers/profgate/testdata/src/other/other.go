// Package other is outside internal/memsys and internal/engine, so the gate
// does not apply: unguarded charges are fine off the simulated fast path
// (e.g. a CLI snapshotting a collector it just ran).
package other

import "hmtx/internal/prof"

func Dump(p *prof.Collector) {
	p.Charge(0, 1, prof.Compute, 10)
	p.RunEnd(10, false, 1)
}
