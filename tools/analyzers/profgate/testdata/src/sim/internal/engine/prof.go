package engine

import "hmtx/internal/prof"

type sys struct {
	prof *prof.Collector
}

// Guarded charges are the contract: no diagnostics.
func (s *sys) guarded(cycles int64) {
	if s.prof.Enabled() {
		s.prof.Charge(0, 1, prof.Compute, cycles)
	}
	if s.prof.Enabled() && cycles > 0 {
		// Nested inside the guard body still counts.
		if cycles > 16 {
			s.prof.ChargeLine(0, 1, prof.Bus, cycles, 0x40)
		}
		s.prof.LineConflict(0x40)
	}
	p := s.prof
	if p.Enabled() {
		p.CoreDone(0, cycles)
		p.RunEnd(cycles, false, 1)
	}
}

func (s *sys) unguarded(cycles int64) {
	s.prof.Charge(0, 1, prof.Compute, cycles) // want `Charge outside an Enabled\(\) guard`
	if cycles != 0 {
		// An if statement that never consults Enabled is not a guard.
		s.prof.LineConflict(0x40) // want `LineConflict outside an Enabled\(\) guard`
	}
	if s.prof.Enabled() {
		_ = cycles
	}
	// After a guard body ends the gate is closed again.
	s.prof.CoreDone(0, cycles) // want `CoreDone outside an Enabled\(\) guard`
}

// Methods named Charge on other types are not collector charges, and
// Enabled itself needs no guard.
type meter struct{}

func (meter) Charge(core int, seq uint64, b prof.Bucket, cycles int64) {}

func use(m meter, p *prof.Collector) bool {
	m.Charge(0, 0, prof.Compute, 1)
	return p.Enabled()
}
