package statemut_test

import (
	"testing"

	"hmtx/tools/analyzers/analysis/analysistest"
	"hmtx/tools/analyzers/statemut"
)

func TestStatemut(t *testing.T) {
	// sim/internal/memsys exercises the own-package exemption: Promote
	// writes the guarded fields and must produce no diagnostics.
	analysistest.Run(t, analysistest.TestData(), statemut.Analyzer,
		"smuser", "sim/internal/memsys")
}
