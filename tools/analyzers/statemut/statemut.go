// Package statemut guards the memsys cache-line metadata against mutation
// from outside the protocol implementation.
//
// The coherence invariants MOESI-San enforces (internal/memsys/sanitize.go)
// are only meaningful if every transition of a line's protocol fields —
// St, Mod, High, Epoch — happens inside internal/memsys, where the
// transition helpers keep the hierarchy consistent. The analyzer reports
// any assignment (plain, compound, or ++/--) whose target is one of those
// fields from any other package, tests included.
package statemut

import (
	"go/ast"
	"go/types"
	"strings"

	"hmtx/tools/analyzers/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "statemut",
	Doc:  "forbids mutating memsys.Line protocol fields outside internal/memsys",
	Run:  run,
}

var guardedFields = map[string]bool{
	"St": true, "Mod": true, "High": true, "Epoch": true,
}

func run(pass *analysis.Pass) (any, error) {
	// The protocol package itself (and its tests) owns the fields.
	if strings.HasSuffix(strings.TrimSuffix(pass.PkgPath, "_test"), "internal/memsys") {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range s.Lhs {
					report(pass, lhs)
				}
			case *ast.IncDecStmt:
				report(pass, s.X)
			case *ast.UnaryExpr:
				// &l.St would let the caller mutate through a pointer.
				if s.Op.String() == "&" {
					report(pass, s.X)
				}
			}
			return true
		})
	}
	return nil, nil
}

func report(pass *analysis.Pass, target ast.Expr) {
	sel, ok := target.(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	field := selection.Obj()
	if !guardedFields[field.Name()] || field.Pkg() == nil {
		return
	}
	if !strings.HasSuffix(field.Pkg().Path(), "internal/memsys") {
		return
	}
	pass.Reportf(sel.Pos(), "direct write to memsys line field %s outside internal/memsys; use the protocol transition helpers", field.Name())
}
