package smuser

import "sim/internal/memsys"

func corrupt(l *memsys.Line) {
	l.St = 3       // want `direct write to memsys line field St`
	l.Mod++        // want `direct write to memsys line field Mod`
	l.High = l.Mod // want `direct write to memsys line field High`
	l.Epoch = 0    // want `direct write to memsys line field Epoch`
}

func alias(l *memsys.Line) *memsys.State {
	return &l.St // want `direct write to memsys line field St`
}

// Reads and writes to unguarded fields are fine.
func observe(l *memsys.Line) memsys.V {
	l.Data[0] = 1
	return l.Mod
}
