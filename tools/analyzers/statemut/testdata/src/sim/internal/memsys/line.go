// Package memsys is a fixture standing in for hmtx/internal/memsys: the
// analyzer matches on the "internal/memsys" path suffix so the real package
// need not be imported from testdata.
package memsys

type V uint32

type State uint8

type Line struct {
	St    State
	Mod   V
	High  V
	Epoch uint32
	Data  [8]byte
}

// The protocol package itself may transition its own lines.
func (l *Line) Promote(st State, mod, high V) {
	l.St = st
	l.Mod = mod
	l.High = high
}
