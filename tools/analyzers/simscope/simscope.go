// Package simscope decides which packages the determinism lint rules apply
// to. The simulator must be bit-reproducible for a fixed Config.Seed (see
// DESIGN.md "Determinism contract"), so the rules cover exactly the packages
// that compute simulated time, protocol state, or reported figures.
package simscope

import "strings"

// SimPackages are the hmtx packages whose behaviour feeds simulation state
// or experiment output, and therefore must be deterministic.
var SimPackages = map[string]bool{
	"hmtx/internal/engine":      true,
	"hmtx/internal/memsys":      true,
	"hmtx/internal/check":       true,
	"hmtx/internal/obs":         true,
	"hmtx/internal/prof":        true,
	"hmtx/internal/metrics":     true,
	"hmtx/internal/hmtx":        true,
	"hmtx/internal/smtx":        true,
	"hmtx/internal/experiments": true,
}

// Covers reports whether the lint rules apply to the package with the given
// import path. Paths outside the hmtx module (analyzer test fixtures) are
// always covered; hmtx packages are covered only when listed in SimPackages.
// A "_test" suffix (the loader's marker for external test packages) is
// ignored, so a package and its foo_test package are scoped identically.
func Covers(path string) bool {
	path = strings.TrimSuffix(path, "_test")
	if path != "hmtx" && !strings.HasPrefix(path, "hmtx/") {
		return true
	}
	return SimPackages[path]
}
