package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// ListedPackage mirrors the fields of `go list -json` output that the loader reads.
type ListedPackage struct {
	ImportPath   string
	Name         string
	Dir          string
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
	TestImports  []string
	XTestImports []string
	Export       string
	DepOnly      bool
	Standard     bool
	ForTest      string
}

// GoList runs `go list -export -deps -test -json` on patterns and returns the
// decoded entries. Every dependency in the output carries the path of its
// compiler export data, which is what lets the loader type-check without any
// source for the transitive closure.
func GoList(patterns ...string) ([]*ListedPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-test", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []*ListedPackage
	dec := json.NewDecoder(&stdout)
	for {
		p := new(ListedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load resolves patterns as `go list` would and type-checks every matched
// package from source, including its in-package _test.go files. A package
// with an external test package (package foo_test) yields a second *Package
// whose PkgPath carries a "_test" suffix.
//
// Packages come back in dependency order — every package after all the
// loaded packages it imports, ties broken by import path — so a caller
// running a fact-exporting analyzer over the slice in order gives each
// package the facts of its dependencies.
func Load(patterns ...string) ([]*Package, error) {
	listed, err := GoList(patterns...)
	if err != nil {
		return nil, err
	}

	c := NewChecker()
	var targets []*ListedPackage
	for _, p := range listed {
		// Test variants ("pkg [pkg.test]", "pkg.test") duplicate the plain
		// entries; only the plain entry describes the package's file split.
		if p.ForTest != "" || strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		if p.Export != "" {
			c.exports[p.ImportPath] = p.Export
		}
		if p.DepOnly || p.Standard {
			continue
		}
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported", p.ImportPath)
		}
		targets = append(targets, p)
	}

	// Register every target as a source unit first so that imports between
	// targets (and the external test package's import of its own package)
	// resolve to the source-checked package, test files included. Each unit
	// records which other units it imports, for the dependency sort.
	unitImports := make(map[string][]string)
	isUnit := make(map[string]bool)
	for _, p := range targets {
		isUnit[p.ImportPath] = true
		if len(p.XTestGoFiles) > 0 {
			isUnit[p.ImportPath+"_test"] = true
		}
	}
	for _, p := range targets {
		files := joinDir(p.Dir, p.GoFiles)
		files = append(files, joinDir(p.Dir, p.TestGoFiles)...)
		c.AddUnit(p.ImportPath, files)
		unitImports[p.ImportPath] = unitEdges(isUnit, p.Imports, p.TestImports)
		if len(p.XTestGoFiles) > 0 {
			xpath := p.ImportPath + "_test"
			c.AddUnit(xpath, joinDir(p.Dir, p.XTestGoFiles))
			unitImports[xpath] = unitEdges(isUnit, p.XTestImports, []string{p.ImportPath})
		}
	}

	var pkgs []*Package
	for _, path := range DependencyOrder(unitImports) {
		pkg, err := c.Package(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// unitEdges filters the concatenation of the import lists down to loaded
// units, deduplicated and sorted.
func unitEdges(isUnit map[string]bool, lists ...[]string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, list := range lists {
		for _, imp := range list {
			if isUnit[imp] && !seen[imp] {
				seen[imp] = true
				out = append(out, imp)
			}
		}
	}
	sort.Strings(out)
	return out
}

// DependencyOrder topologically sorts the units (dependencies first), with
// lexicographic tie-breaking so the order is deterministic. Import cycles
// cannot occur between valid Go packages; if the edges nonetheless form one
// (e.g. bad input), the remaining units are appended in name order so every
// unit is still returned exactly once.
func DependencyOrder(unitImports map[string][]string) []string {
	indegree := make(map[string]int, len(unitImports))
	dependents := make(map[string][]string)
	for path := range unitImports {
		indegree[path] = 0
	}
	for path, imps := range unitImports {
		for _, imp := range imps {
			indegree[path]++
			dependents[imp] = append(dependents[imp], path)
		}
	}
	var ready []string
	for path, n := range indegree {
		if n == 0 {
			ready = append(ready, path)
		}
	}
	sort.Strings(ready)
	var order []string
	for len(ready) > 0 {
		path := ready[0]
		ready = ready[1:]
		order = append(order, path)
		changed := false
		for _, dep := range dependents[path] {
			if indegree[dep]--; indegree[dep] == 0 {
				ready = append(ready, dep)
				changed = true
			}
		}
		if changed {
			sort.Strings(ready)
		}
	}
	if len(order) < len(unitImports) {
		var rest []string
		inOrder := make(map[string]bool, len(order))
		for _, path := range order {
			inOrder[path] = true
		}
		for path := range unitImports {
			if !inOrder[path] {
				rest = append(rest, path)
			}
		}
		sort.Strings(rest)
		order = append(order, rest...)
	}
	return order
}

func joinDir(dir string, names []string) []string {
	paths := make([]string, len(names))
	for i, n := range names {
		paths[i] = filepath.Join(dir, n)
	}
	return paths
}

// A unit is one package's worth of source files awaiting type-checking.
type unit struct {
	path     string
	files    []string
	syntax   []*ast.File
	pkg      *types.Package
	info     *types.Info
	checking bool
}

// A Checker type-checks source units against each other and against compiler
// export data for everything else. Source units shadow export data, so units
// see each other's test-augmented form.
type Checker struct {
	fset    *token.FileSet
	exports map[string]string // import path -> export data file
	units   map[string]*unit  // import path -> source-loaded package
	gc      types.Importer
}

// NewChecker returns an empty Checker. Populate exports via Exports and
// source packages via AddUnit before calling Package.
func NewChecker() *Checker {
	c := &Checker{
		fset:    token.NewFileSet(),
		exports: make(map[string]string),
		units:   make(map[string]*unit),
	}
	c.gc = importer.ForCompiler(c.fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := c.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return c
}

// Exports exposes the import-path-to-export-data map for callers that gather
// export data themselves (see analysistest).
func (c *Checker) Exports() map[string]string { return c.exports }

// AddUnit registers a source package under an import path.
func (c *Checker) AddUnit(path string, files []string) {
	c.units[path] = &unit{path: path, files: files}
}

// Package type-checks (once) and returns the unit registered under path.
func (c *Checker) Package(path string) (*Package, error) {
	u, ok := c.units[path]
	if !ok {
		return nil, fmt.Errorf("no source unit registered for %q", path)
	}
	if err := c.check(u); err != nil {
		return nil, err
	}
	return &Package{
		PkgPath: u.path,
		Fset:    c.fset,
		Files:   u.syntax,
		Types:   u.pkg,
		Info:    u.info,
	}, nil
}

// Import implements types.Importer.
func (c *Checker) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if u, ok := c.units[path]; ok {
		if err := c.check(u); err != nil {
			return nil, err
		}
		return u.pkg, nil
	}
	return c.gc.Import(path)
}

func (c *Checker) check(u *unit) error {
	if u.pkg != nil {
		return nil
	}
	if u.checking {
		return fmt.Errorf("import cycle through %q", u.path)
	}
	u.checking = true
	defer func() { u.checking = false }()

	if u.syntax == nil {
		for _, f := range u.files {
			syntax, err := parser.ParseFile(c.fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return err
			}
			u.syntax = append(u.syntax, syntax)
		}
	}
	u.info = NewInfo()
	conf := types.Config{
		Importer: c,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check(u.path, c.fset, u.syntax, u.info)
	if err != nil {
		return fmt.Errorf("type-checking %s: %v", u.path, err)
	}
	u.pkg = pkg
	return nil
}
