package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// ListedPackage mirrors the fields of `go list -json` output that the loader reads.
type ListedPackage struct {
	ImportPath   string
	Name         string
	Dir          string
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
	Export       string
	DepOnly      bool
	Standard     bool
	ForTest      string
}

// GoList runs `go list -export -deps -test -json` on patterns and returns the
// decoded entries. Every dependency in the output carries the path of its
// compiler export data, which is what lets the loader type-check without any
// source for the transitive closure.
func GoList(patterns ...string) ([]*ListedPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-test", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []*ListedPackage
	dec := json.NewDecoder(&stdout)
	for {
		p := new(ListedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load resolves patterns as `go list` would and type-checks every matched
// package from source, including its in-package _test.go files. A package
// with an external test package (package foo_test) yields a second *Package
// whose PkgPath carries a "_test" suffix.
func Load(patterns ...string) ([]*Package, error) {
	listed, err := GoList(patterns...)
	if err != nil {
		return nil, err
	}

	c := NewChecker()
	var targets []*ListedPackage
	for _, p := range listed {
		// Test variants ("pkg [pkg.test]", "pkg.test") duplicate the plain
		// entries; only the plain entry describes the package's file split.
		if p.ForTest != "" || strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		if p.Export != "" {
			c.exports[p.ImportPath] = p.Export
		}
		if p.DepOnly || p.Standard {
			continue
		}
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported", p.ImportPath)
		}
		targets = append(targets, p)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	// Register every target as a source unit first so that imports between
	// targets (and the external test package's import of its own package)
	// resolve to the source-checked package, test files included.
	for _, p := range targets {
		files := joinDir(p.Dir, p.GoFiles)
		files = append(files, joinDir(p.Dir, p.TestGoFiles)...)
		c.AddUnit(p.ImportPath, files)
		if len(p.XTestGoFiles) > 0 {
			c.AddUnit(p.ImportPath+"_test", joinDir(p.Dir, p.XTestGoFiles))
		}
	}

	var pkgs []*Package
	for _, p := range targets {
		for _, path := range []string{p.ImportPath, p.ImportPath + "_test"} {
			if _, ok := c.units[path]; !ok {
				continue
			}
			pkg, err := c.Package(path)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

func joinDir(dir string, names []string) []string {
	paths := make([]string, len(names))
	for i, n := range names {
		paths[i] = filepath.Join(dir, n)
	}
	return paths
}

// A unit is one package's worth of source files awaiting type-checking.
type unit struct {
	path     string
	files    []string
	syntax   []*ast.File
	pkg      *types.Package
	info     *types.Info
	checking bool
}

// A Checker type-checks source units against each other and against compiler
// export data for everything else. Source units shadow export data, so units
// see each other's test-augmented form.
type Checker struct {
	fset    *token.FileSet
	exports map[string]string // import path -> export data file
	units   map[string]*unit  // import path -> source-loaded package
	gc      types.Importer
}

// NewChecker returns an empty Checker. Populate exports via Exports and
// source packages via AddUnit before calling Package.
func NewChecker() *Checker {
	c := &Checker{
		fset:    token.NewFileSet(),
		exports: make(map[string]string),
		units:   make(map[string]*unit),
	}
	c.gc = importer.ForCompiler(c.fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := c.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return c
}

// Exports exposes the import-path-to-export-data map for callers that gather
// export data themselves (see analysistest).
func (c *Checker) Exports() map[string]string { return c.exports }

// AddUnit registers a source package under an import path.
func (c *Checker) AddUnit(path string, files []string) {
	c.units[path] = &unit{path: path, files: files}
}

// Package type-checks (once) and returns the unit registered under path.
func (c *Checker) Package(path string) (*Package, error) {
	u, ok := c.units[path]
	if !ok {
		return nil, fmt.Errorf("no source unit registered for %q", path)
	}
	if err := c.check(u); err != nil {
		return nil, err
	}
	return &Package{
		PkgPath: u.path,
		Fset:    c.fset,
		Files:   u.syntax,
		Types:   u.pkg,
		Info:    u.info,
	}, nil
}

// Import implements types.Importer.
func (c *Checker) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if u, ok := c.units[path]; ok {
		if err := c.check(u); err != nil {
			return nil, err
		}
		return u.pkg, nil
	}
	return c.gc.Import(path)
}

func (c *Checker) check(u *unit) error {
	if u.pkg != nil {
		return nil
	}
	if u.checking {
		return fmt.Errorf("import cycle through %q", u.path)
	}
	u.checking = true
	defer func() { u.checking = false }()

	if u.syntax == nil {
		for _, f := range u.files {
			syntax, err := parser.ParseFile(c.fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return err
			}
			u.syntax = append(u.syntax, syntax)
		}
	}
	u.info = NewInfo()
	conf := types.Config{
		Importer: c,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check(u.path, c.fset, u.syntax, u.info)
	if err != nil {
		return fmt.Errorf("type-checking %s: %v", u.path, err)
	}
	u.pkg = pkg
	return nil
}
