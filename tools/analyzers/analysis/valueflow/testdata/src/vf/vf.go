// Package vf pins the valueflow escape lattice: which origins escape, which
// provably do not, which parameters leak, and where panic gating applies.
package vf

import "fmt"

var global *int

var sink []*int

var keep *counter

type big struct{ a, b, c int64 }

type counter struct{ n int }

func (c *counter) inc() { c.n++ }

// remember stores its receiver: slot 0 (the receiver) leaks.
func (c *counter) remember() { // want `leaks 0`
	keep = c
}

// stash stores its argument in a package-level variable: param 0 leaks.
func stash(p *int) { // want `leaks 0`
	global = p
}

// stash2 leaks transitively through stash.
func stash2(p *int) { // want `leaks 0`
	stash(p)
}

// reads only dereferences its argument: no leak.
func reads(p *int) int {
	return *p
}

func escapeViaLeak() {
	x := 1
	stash(&x) // want `local x escapes \(passed to stash\)`
}

func escapeTransitive() {
	x := 1
	stash2(&x) // want `local x escapes \(passed to stash2\)`
}

func noEscapeViaClean() int {
	x := 1
	return reads(&x)
}

func escapeViaUnknown() {
	x := 1
	fmt.Println(&x) // want `local x escapes \(passed to fmt.Println\)`
}

func escapeViaReturn() *int {
	x := 2
	return &x // want `local x escapes \(returned\)`
}

// paramEscape is the PR 8 install() bug class: taking the parameter's
// address in a fmt-style panic argument heap-moves the parameter at every
// call, panic or not. The entry-var escape is reported (and is never
// panic-gated); the leak of slot 0 follows from &ln being reachable.
func paramEscape(ln big) { // want `leaks 0`
	panic(fmt.Sprintf("bad: %v", &ln)) // want `entry ln escapes \(passed to fmt.Sprintf\)`
}

// gatedCopy is the fixed form: the copy is declared on the panic-bound path,
// so its heap allocation happens only when the panic fires.
func gatedCopy(ln big) string {
	if ln.a > 0 {
		return "ok"
	}
	bad := ln
	panic(fmt.Sprintf("bad: %v", &bad)) // want `local bad escapes\+gated \(passed to fmt.Sprintf\)`
}

func litEscapes() *big {
	return &big{a: 1} // want `expr escapes \(returned\)`
}

func litLocal() int {
	p := &big{a: 1}
	p.b = 2
	return int(p.b)
}

func closureEscapes() func() int {
	n := 0
	f := func() int { n++; return n }
	return f // want `expr escapes \(returned\)`
}

func closureLocal() int {
	n := 0
	f := func() int { n++; return n }
	return f()
}

// methodValueEscapes returns a bound method value, which closes over the
// receiver: both the closure and the receiver pointer leak.
func methodValueEscapes(c *counter) func() { // want `leaks 0`
	return c.inc // want `expr escapes \(returned\)`
}

func callClean(c *counter) {
	c.inc()
}

func callRemember() {
	var c counter
	c.remember() // want `local c escapes \(receiver passed to remember\)`
}

func sliceEscape() []byte {
	var buf [8]byte
	return buf[:] // want `local buf escapes \(returned\)`
}

func appendEscape() {
	x := 3
	sink = append(sink, &x) // want `local x escapes \(appended to a slice\)`
}

func sendEscape(ch chan *int) {
	x := 4
	ch <- &x // want `local x escapes \(sent on a channel\)`
}

func goEscape() {
	x := 5
	go fmt.Println(&x) // want `local x escapes \(passed to a goroutine\)`
}
