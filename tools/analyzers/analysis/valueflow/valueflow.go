// Package valueflow is the SSA-lite value-flow layer of the analysis
// framework: def-use chains over one function's syntax, an
// address-taken/escape lattice for its variables, and (reach.go) a
// goroutine-reachability computation over the package call graph.
//
// It deliberately stops short of full SSA. The hmtx analyzers need to answer
// three questions a plain AST walk cannot:
//
//   - does the address of this variable reach the heap? (hotalloc: an
//     escaping parameter is heap-moved at every call — the PR 8 install()
//     `&ln` panic-argument bug class);
//   - does this function leak the pointer values passed to it? (so a caller
//     can pass `&local` to a callee without the local escaping);
//   - which functions can execute on a go-spawned goroutine, including
//     targets reached through function values and method values?
//     (atomicfield, domaindrain).
//
// The escape analysis is flow-insensitive and monotone: every tracked
// *origin* (the address of a local, an addressable composite literal, a
// function literal, a method value, a pointer-shaped parameter value) is
// propagated through assignments between locals until the origin set of
// every variable is stable, and any origin observed at an escape sink —
// stored outside the frame, returned, sent, captured by go/defer, or passed
// to a callee that leaks the corresponding parameter — is marked escaped
// with a human-readable reason. Flow-insensitivity over-approximates, which
// is the safe direction for every client: a variable reported non-escaping
// truly cannot escape.
package valueflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"hmtx/tools/analyzers/analysis"
	"hmtx/tools/analyzers/analysis/callgraph"
	"hmtx/tools/analyzers/analysis/cfg"
)

// An Escape records why and where an origin left the function frame.
type Escape struct {
	Pos    token.Pos // the sink site
	Reason string    // e.g. "passed to fmt.Sprintf", "returned", "stored to heap"
}

// Result is the value-flow summary of one function body.
type Result struct {
	// EntryVars lists the variables materialised at function entry —
	// receiver, parameters, named results, in declaration order. If one of
	// these escapes (see EscapedVars) the function heap-allocates it on
	// every call, not just on the path containing the sink.
	EntryVars []*types.Var

	// EscapedVars maps each variable whose *address* reached an escape sink
	// to the first sink that did it (first in syntactic walk order, so the
	// result is deterministic).
	EscapedVars map[*types.Var]Escape

	// EscapedExprs maps allocation-candidate expressions — &T{...} composite
	// literals, function literals, method values — that reached an escape
	// sink to the sink. A candidate absent from this map provably does not
	// escape and is stack-allocated by the compiler.
	EscapedExprs map[ast.Node]Escape

	// ParamLeaks[i] reports whether the pointer value arriving in
	// EntryVars[i] may still be reachable after the function returns
	// (stored, returned, or passed on to a leaking callee). Callers use this
	// to decide whether an argument `&x` forces x to escape.
	ParamLeaks []bool

	panicBlocks []span // source intervals executed only on panic-bound paths
}

type span struct{ lo, hi token.Pos }

// PanicGated reports whether pos lies in a statement that executes only on a
// path ending in a call to the panic builtin (per the function's CFG: a block
// terminated by panic). Allocations there never run on the non-panicking fast
// path; escaping *entry* variables are deliberately not excused by this —
// their heap move happens at function entry regardless.
func (r *Result) PanicGated(pos token.Pos) bool {
	for _, s := range r.panicBlocks {
		if s.lo <= pos && pos <= s.hi {
			return true
		}
	}
	return false
}

// LeakOf resolves the ParamLeaks summary of a callee, or nil when the callee
// is unknown (every pointer argument is then assumed to leak). Clients wire
// this to their bottom-up summary store (in-package) and fact store
// (imported packages).
type LeakOf func(*types.Func) []bool

// Analyze computes the value-flow summary of fn's body. leakOf may be nil,
// which treats every callee as leaking all of its parameters.
func Analyze(pass *analysis.Pass, fn *ast.FuncDecl, leakOf LeakOf) *Result {
	a := &analyzer{
		pass:    pass,
		leakOf:  leakOf,
		res:     &Result{EscapedVars: map[*types.Var]Escape{}, EscapedExprs: map[ast.Node]Escape{}},
		holds:   map[*types.Var]map[origin]bool{},
		escaped: map[origin]Escape{},
	}
	a.collectEntryVars(fn)
	// Seed pointer-shaped entry values: their escape is a parameter leak.
	for i, v := range a.res.EntryVars {
		if pointerShaped(v.Type()) {
			a.addHold(v, origin{kind: oParamVal, v: v, idx: i})
		}
	}
	// Monotone fixpoint: origin sets only grow, so re-walking the body until
	// nothing changes terminates and visits every sink with the final sets.
	for {
		a.changed = false
		a.walk(fn.Body)
		if !a.changed {
			break
		}
	}
	a.finish(fn)
	return a.res
}

// origin identifies one tracked value source.
type origin struct {
	kind int // oAddrOf, oParamVal, oExpr
	v    *types.Var
	idx  int // oParamVal: entry-var index
	expr ast.Node
}

const (
	oAddrOf = iota // &localVar (or local array sliced)
	oParamVal
	oExpr // &T{...}, FuncLit, method value
)

type analyzer struct {
	pass    *analysis.Pass
	leakOf  LeakOf
	res     *Result
	holds   map[*types.Var]map[origin]bool
	escaped map[origin]Escape
	changed bool
}

func (a *analyzer) collectEntryVars(fn *ast.FuncDecl) {
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if v, ok := a.pass.TypesInfo.Defs[name].(*types.Var); ok {
					a.res.EntryVars = append(a.res.EntryVars, v)
				}
			}
		}
	}
	add(fn.Recv)
	add(fn.Type.Params)
	add(fn.Type.Results) // named results are entry-allocated too
}

func (a *analyzer) addHold(v *types.Var, o origin) {
	m := a.holds[v]
	if m == nil {
		m = map[origin]bool{}
		a.holds[v] = m
	}
	if !m[o] {
		m[o] = true
		a.changed = true
	}
}

func (a *analyzer) escape(os []origin, pos token.Pos, reason string) {
	for _, o := range os {
		if _, done := a.escaped[o]; !done {
			a.escaped[o] = Escape{Pos: pos, Reason: reason}
			a.changed = true
		}
	}
}

// localVar resolves e to a function-local (or entry) variable, or nil.
func (a *analyzer) localVar(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := a.pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = a.pass.TypesInfo.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || v.Parent() == nil || v.Parent() == a.pass.Pkg.Scope() {
		return nil // field, package-level, or not a var at all
	}
	return v
}

// originsOf returns the tracked origins expression e may evaluate to.
func (a *analyzer) originsOf(e ast.Expr) []origin {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		if v := a.localVar(e); v != nil {
			var out []origin
			for o := range a.holds[v] {
				out = append(out, o)
			}
			return out
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			inner := ast.Unparen(e.X)
			if lit, ok := inner.(*ast.CompositeLit); ok {
				return []origin{{kind: oExpr, expr: lit}}
			}
			if v := a.addrBase(inner); v != nil {
				return []origin{{kind: oAddrOf, v: v}}
			}
		}
	case *ast.CompositeLit:
		// A bare composite used as a value copies; only its address matters.
		return nil
	case *ast.FuncLit:
		return []origin{{kind: oExpr, expr: e}}
	case *ast.SelectorExpr:
		if sel, ok := a.pass.TypesInfo.Selections[e]; ok && sel.Kind() == types.MethodVal {
			// The method value closes over its receiver: it carries the
			// receiver's origins along with its own closure allocation.
			return append([]origin{{kind: oExpr, expr: e}}, a.originsOf(e.X)...)
		}
	case *ast.SliceExpr:
		// Slicing a local array aliases its storage: x[:] carries &x.
		if v := a.localVar(e.X); v != nil && isArray(a.pass, e.X) {
			return []origin{{kind: oAddrOf, v: v}}
		}
		return a.originsOf(e.X)
	case *ast.CallExpr:
		// A conversion passes its operand's origins through; real calls
		// yield untracked values (arguments were handled at the call).
		if tv, ok := a.pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return a.originsOf(e.Args[0])
		}
	case *ast.StarExpr, *ast.IndexExpr, *ast.BinaryExpr, *ast.TypeAssertExpr, *ast.BasicLit:
		return nil
	}
	return nil
}

// addrBase finds the local variable whose storage &e aliases: the variable
// itself, or the base of selector/index chains rooted at a non-pointer local
// (&x.f aliases x; &p.f where p is a pointer aliases heap).
func (a *analyzer) addrBase(e ast.Expr) *types.Var {
	for {
		e = ast.Unparen(e)
		switch x := e.(type) {
		case *ast.Ident:
			return a.localVar(x)
		case *ast.SelectorExpr:
			if tv, ok := a.pass.TypesInfo.Types[x.X]; ok {
				if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
					return nil
				}
			}
			e = x.X
		case *ast.IndexExpr:
			if !isArray(a.pass, x.X) {
				return nil // slice/map element storage is already heap
			}
			e = x.X
		default:
			return nil
		}
	}
}

func isArray(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	_, isArr := tv.Type.Underlying().(*types.Array)
	return isArr
}

// pointerShaped reports whether values of t carry a reference to storage the
// caller may also hold (so leaking the value leaks that storage).
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	}
	return false
}

// walk performs one monotone pass over the body, growing origin sets and
// recording sinks. FuncLit bodies are walked in place: an assignment or sink
// inside a literal is treated as happening in the enclosing function, which
// over-approximates (the literal may never run) in the safe direction.
func (a *analyzer) walk(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			a.assign(n)
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				a.escape(a.originsOf(r), r.Pos(), "returned")
			}
		case *ast.SendStmt:
			a.escape(a.originsOf(n.Value), n.Pos(), "sent on a channel")
		case *ast.GoStmt:
			a.escape(a.originsOf(n.Call.Fun), n.Pos(), "started as a goroutine")
			for _, arg := range n.Call.Args {
				a.escape(a.originsOf(arg), arg.Pos(), "passed to a goroutine")
			}
		case *ast.DeferStmt:
			a.escape(a.originsOf(n.Call.Fun), n.Pos(), "deferred")
			for _, arg := range n.Call.Args {
				a.escape(a.originsOf(arg), arg.Pos(), "passed to a deferred call")
			}
		case *ast.CallExpr:
			a.call(n)
		case *ast.CompositeLit:
			// Origins stored into a composite literal may outlive the frame
			// with the literal; treated as escaping (conservative).
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				a.escape(a.originsOf(el), el.Pos(), "stored in a composite literal")
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					if v, ok := a.pass.TypesInfo.Defs[name].(*types.Var); ok {
						for _, o := range a.originsOf(n.Values[i]) {
							a.addHold(v, o)
						}
					}
				}
			}
		case *ast.RangeStmt:
			// Ranging over a var that holds origins aliases them into the
			// value variable.
			if n.Value != nil {
				if v := a.localVar(n.Value); v != nil {
					for _, o := range a.originsOf(n.X) {
						a.addHold(v, o)
					}
				}
			}
		}
		return true
	})
}

func (a *analyzer) assign(n *ast.AssignStmt) {
	for i, lhs := range n.Lhs {
		var rhs ast.Expr
		switch {
		case len(n.Rhs) == len(n.Lhs):
			rhs = n.Rhs[i]
		case len(n.Rhs) == 1:
			rhs = n.Rhs[0] // multi-value call/assert: results carry no origins
			if _, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
				continue
			}
			if _, ok := ast.Unparen(rhs).(*ast.TypeAssertExpr); ok {
				continue
			}
		default:
			continue
		}
		os := a.originsOf(rhs)
		if len(os) == 0 {
			continue
		}
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if id.Name == "_" {
				continue
			}
			if v := a.localVar(id); v != nil {
				for _, o := range os {
					a.addHold(v, o)
				}
				continue
			}
			a.escape(os, lhs.Pos(), "stored in a package-level variable")
			continue
		}
		// Storing through a selector or index of a *local* struct/array var
		// keeps the origin inside the frame: propagate to the base variable.
		if v := a.addrBase(lhs); v != nil {
			for _, o := range os {
				a.addHold(v, o)
			}
			continue
		}
		a.escape(os, lhs.Pos(), "stored outside the function frame")
	}
}

// call applies escape sinks for one call expression's arguments (and, for
// method calls on addressable locals, the implicit receiver address).
func (a *analyzer) call(call *ast.CallExpr) {
	if tv, ok := a.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, handled by originsOf
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := a.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			a.builtinCall(id.Name, call)
			return
		}
	}
	callee := callgraph.StaticCallee(a.pass.TypesInfo, call)
	var leaks []bool
	if callee != nil && a.leakOf != nil {
		leaks = a.leakOf(callee)
	}
	name := calleeName(a.pass, call)

	// Implicit receiver: x.m() on an addressable local with a pointer-
	// receiver method takes &x.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := a.pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.MethodVal {
			recvOrigins := a.originsOf(sel.X)
			if fn, ok := s.Obj().(*types.Func); ok {
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					if _, ptrRecv := sig.Recv().Type().Underlying().(*types.Pointer); ptrRecv {
						if v := a.addrBase(sel.X); v != nil {
							recvOrigins = append(recvOrigins, origin{kind: oAddrOf, v: v})
						}
					}
				}
			}
			if len(recvOrigins) > 0 && (leaks == nil || leaks[0]) {
				a.escape(recvOrigins, sel.Pos(), "receiver passed to "+name)
			}
		}
	}
	// leaks indexes entry vars: slot 0 is the receiver for methods.
	argBase := 0
	if callee != nil && callee.Type().(*types.Signature).Recv() != nil {
		argBase = 1
	}
	sig, _ := a.pass.TypesInfo.Types[call.Fun].Type.(*types.Signature)
	for i, arg := range call.Args {
		os := a.originsOf(arg)
		if len(os) == 0 {
			continue
		}
		slot := argBase + i
		if sig != nil && sig.Variadic() && i >= sig.Params().Len()-1 {
			slot = argBase + sig.Params().Len() - 1
		}
		if leaks == nil || slot >= len(leaks) || leaks[slot] {
			a.escape(os, arg.Pos(), "passed to "+name)
		}
	}
}

func (a *analyzer) builtinCall(name string, call *ast.CallExpr) {
	switch name {
	case "append":
		// Elements land in heap-backed storage; the slice operand keeps its
		// own origins (growth reallocates away from them, which only helps).
		for _, arg := range call.Args[1:] {
			a.escape(a.originsOf(arg), arg.Pos(), "appended to a slice")
		}
	case "copy":
		if len(call.Args) == 2 {
			a.escape(a.originsOf(call.Args[1]), call.Args[1].Pos(), "copied into a slice")
		}
	case "panic", "print", "println":
		for _, arg := range call.Args {
			a.escape(a.originsOf(arg), arg.Pos(), "passed to "+name)
		}
	case "len", "cap", "delete", "clear", "min", "max", "recover", "new", "make", "close", "complex", "real", "imag":
		// No pointer operand escapes through these.
	}
}

func calleeName(pass *analysis.Pass, call *ast.CallExpr) string {
	if fn := callgraph.StaticCallee(pass.TypesInfo, call); fn != nil {
		if fn.Pkg() != nil && fn.Pkg() != pass.Pkg {
			return fn.Pkg().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return "dynamic call " + fun.Sel.Name
	case *ast.Ident:
		return "dynamic call " + fun.Name
	}
	return "a dynamic call"
}

// finish folds the raw escape records into the public result and computes
// the panic-gated spans from the CFG.
func (a *analyzer) finish(fn *ast.FuncDecl) {
	entryIdx := map[*types.Var]int{}
	for i, v := range a.res.EntryVars {
		entryIdx[v] = i
	}
	a.res.ParamLeaks = make([]bool, len(a.res.EntryVars))
	for o, esc := range a.escaped {
		switch o.kind {
		case oAddrOf:
			if _, ok := a.res.EscapedVars[o.v]; !ok {
				a.res.EscapedVars[o.v] = esc
			} else if esc.Pos < a.res.EscapedVars[o.v].Pos {
				a.res.EscapedVars[o.v] = esc
			}
			if i, ok := entryIdx[o.v]; ok {
				// The caller's storage is reachable through &param too.
				a.res.ParamLeaks[i] = true
			}
		case oParamVal:
			a.res.ParamLeaks[o.idx] = true
		case oExpr:
			if cur, ok := a.res.EscapedExprs[o.expr]; !ok || esc.Pos < cur.Pos {
				a.res.EscapedExprs[o.expr] = esc
			}
		}
	}
	// Panic spans come from the CFG of the body and of every nested function
	// literal: cfg.New treats a literal as an opaque expression, so without
	// the extra graphs a panic-bound block inside a closure would go unseen.
	bodies := []*ast.BlockStmt{fn.Body}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			bodies = append(bodies, lit.Body)
		}
		return true
	})
	for _, body := range bodies {
		g := cfg.New(body)
		for _, blk := range g.Blocks {
			if len(blk.Nodes) == 0 {
				continue
			}
			if es, ok := blk.Nodes[len(blk.Nodes)-1].(*ast.ExprStmt); ok && isPanicCall(es.X) {
				a.res.panicBlocks = append(a.res.panicBlocks, span{blk.Nodes[0].Pos(), es.End()})
			}
		}
	}
}

func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
