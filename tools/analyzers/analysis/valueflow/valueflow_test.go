package valueflow_test

import (
	"go/types"
	"testing"

	"hmtx/tools/analyzers/analysis"
	"hmtx/tools/analyzers/analysis/analysistest"
	"hmtx/tools/analyzers/analysis/callgraph"
	"hmtx/tools/analyzers/analysis/valueflow"
)

// The test analyzer reports every escape valueflow finds, in the fixture's
// own vocabulary, so the want comments in testdata/src/vf pin the lattice:
//
//	entry <name> escapes (<reason>)    an entry variable (param/receiver)
//	local <name> escapes (<reason>)    a plain local; "+gated" when the sink
//	                                   and declaration are panic-gated
//	expr escapes (<reason>)            a composite literal / closure / method value
//	leaks <i>                          ParamLeaks[i] is set
var testAnalyzer = &analysis.Analyzer{
	Name: "vftest",
	Doc:  "reports valueflow escapes for fixture verification",
	Run: func(pass *analysis.Pass) (any, error) {
		g := callgraph.Build(pass)
		sums := map[*types.Func]*valueflow.Result{}
		leakOf := func(fn *types.Func) []bool {
			if s, ok := sums[fn]; ok {
				return s.ParamLeaks
			}
			return nil
		}
		// Bottom-up with one re-iteration handles the fixture's call chains.
		order := g.PostOrder()
		for i := 0; i < 2; i++ {
			for _, n := range order {
				sums[n.Fn] = valueflow.Analyze(pass, n.Decl, leakOf)
			}
		}
		for _, n := range g.Nodes {
			res := sums[n.Fn]
			entry := map[*types.Var]bool{}
			for _, v := range res.EntryVars {
				entry[v] = true
			}
			for v, esc := range res.EscapedVars {
				kind := "local"
				if entry[v] {
					kind = "entry"
				}
				gated := ""
				if kind == "local" && res.PanicGated(esc.Pos) && res.PanicGated(v.Pos()) {
					gated = "+gated"
				}
				pass.Reportf(esc.Pos, "%s %s escapes%s (%s)", kind, v.Name(), gated, esc.Reason)
			}
			for _, esc := range res.EscapedExprs {
				pass.Reportf(esc.Pos, "expr escapes (%s)", esc.Reason)
			}
			for i, leak := range res.ParamLeaks {
				if leak {
					pass.Reportf(n.Decl.Pos(), "leaks %d", i)
				}
			}
		}
		return nil, nil
	},
}

func TestValueFlow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), testAnalyzer, "vf")
}
