package valueflow

import (
	"go/ast"
	"go/types"
	"strings"

	"hmtx/tools/analyzers/analysis"
	"hmtx/tools/analyzers/analysis/callgraph"
)

// Reach is the goroutine-reachability closure of one package: everything
// that may execute on a go-spawned goroutine.
type Reach struct {
	// Funcs maps each reachable function — declared in this package or
	// imported — to a short description of the goroutine entry it is
	// reached from. Imported functions have no syntax here; clients check
	// them through analyzer facts.
	Funcs map[*types.Func]string
	// Lits lists the bodies of function literals launched directly by a go
	// statement (they are not callgraph nodes but their code runs on the
	// goroutine; nested literals inside reachable functions are covered by
	// walking the enclosing body).
	Lits []ReachedLit
}

// ReachedLit is one go-launched function literal body.
type ReachedLit struct {
	Body *ast.BlockStmt
	Via  string
}

// GoReachable computes the functions reachable from `go` statements in the
// package, through three edge kinds:
//
//   - static calls (the package call graph, function literals included);
//   - function values: a declared function or method referenced *as a value*
//     inside reachable code may be invoked there or handed to another worker,
//     so it joins the closure — this is what catches effects hidden behind
//     function pointers and method values;
//   - nested go statements inside reachable code.
//
// Bodies in _test.go files are skipped when includeTests is false: test
// goroutines are not simulation workers.
func GoReachable(pass *analysis.Pass, g *callgraph.Graph, includeTests bool) *Reach {
	r := &Reach{Funcs: map[*types.Func]string{}}
	var work []*types.Func
	add := func(fn *types.Func, via string) {
		if fn == nil {
			return
		}
		if _, seen := r.Funcs[fn]; seen {
			return
		}
		r.Funcs[fn] = via
		if g.Node(fn) != nil {
			work = append(work, fn)
		}
	}

	isTestFile := func(n ast.Node) bool {
		return strings.HasSuffix(pass.Fset.Position(n.Pos()).Filename, "_test.go")
	}

	// scanBody walks one reachable body: static callees, function values,
	// method values, and nested spawns all join the closure.
	var scanBody func(body *ast.BlockStmt, via string)
	scanBody = func(body *ast.BlockStmt, via string) {
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				add(callgraph.StaticCallee(pass.TypesInfo, n), via)
			case *ast.Ident:
				// A function referenced outside call position is a value.
				if fn, ok := pass.TypesInfo.Uses[n].(*types.Func); ok {
					add(fn, via+" (function value)")
				}
			case *ast.SelectorExpr:
				if sel, ok := pass.TypesInfo.Selections[n]; ok {
					if fn, ok := sel.Obj().(*types.Func); ok && (sel.Kind() == types.MethodVal || sel.Kind() == types.MethodExpr) {
						add(fn, via+" (method value)")
					}
				}
			}
			return true
		})
	}
	// Identifiers in call position also match the *ast.Ident case above,
	// which is harmless: the target is reachable either way. The CallExpr
	// case exists for call forms the Ident case misses (selector calls of
	// imported functions, method calls).

	for _, file := range pass.Files {
		if !includeTests && isTestFile(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
				via := "goroutine literal"
				r.Lits = append(r.Lits, ReachedLit{Body: lit.Body, Via: via})
				scanBody(lit.Body, via)
			} else if fn := callgraph.StaticCallee(pass.TypesInfo, gs.Call); fn != nil {
				add(fn, "goroutine "+fn.Name())
			}
			// Function values passed as goroutine arguments may run there.
			for _, arg := range gs.Call.Args {
				ast.Inspect(arg, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						if fn, ok := pass.TypesInfo.Uses[id].(*types.Func); ok {
							add(fn, "goroutine argument")
						}
					}
					return true
				})
			}
			return true
		})
	}

	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		node := g.Node(fn)
		if node == nil || node.Decl == nil || node.Decl.Body == nil {
			continue
		}
		if !includeTests && isTestFile(node.Decl) {
			continue
		}
		scanBody(node.Decl.Body, r.Funcs[fn])
	}
	return r
}
