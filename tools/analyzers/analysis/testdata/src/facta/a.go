// Package facta is a driver-test fixture: the test analyzer exports a fact
// on Marked and none on Plain.
package facta

func Marked() int { return 1 }

func Plain() int { return 2 }
