// Package factb imports facta: the test analyzer must see, via imported
// facts, which facta functions were marked.
package factb

import "facta"

func Use() int { return facta.Marked() + facta.Plain() }
