// Package analysistest runs an analyzer over fixture packages and checks its
// diagnostics against expectations written in the fixtures themselves, in the
// style of golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under testdata/src/<importpath>/, GOPATH-style: a fixture
// file's import path is its directory relative to testdata/src, so fixtures
// can import each other. Imports with no fixture directory resolve to real
// packages via compiler export data.
//
// An expected diagnostic is declared with a trailing comment on the line it
// is reported at:
//
//	for k := range m { // want `range over map`
//
// Each quoted or backquoted string is a regular expression that must match
// the message of a distinct diagnostic on that line. Lines without a want
// comment must produce no diagnostics.
package analysistest

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"hmtx/tools/analyzers/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory (go test runs with the package directory as working directory).
func TestData() string {
	p, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return p
}

// Run loads every fixture package under testdata/src, applies a to each of
// the named packages, and reports mismatches between the diagnostics and the
// fixtures' want comments through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	checker, err := loadFixtures(filepath.Join(testdata, "src"))
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range pkgpaths {
		pkg, err := checker.Package(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		diags, err := analysis.Run(pkg, a)
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		checkExpectations(t, pkg, diags)
	}
}

// loadFixtures registers every directory under srcroot that contains Go
// files as a source unit keyed by its slash-separated relative path, and
// gathers export data for any imports that are not fixtures.
func loadFixtures(srcroot string) (*analysis.Checker, error) {
	checker := analysis.NewChecker()
	external := make(map[string]bool)
	fset := token.NewFileSet()

	err := filepath.WalkDir(srcroot, func(dir string, d os.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			return err
		}
		var files []string
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				files = append(files, filepath.Join(dir, e.Name()))
			}
		}
		if len(files) == 0 {
			return nil
		}
		sort.Strings(files)
		rel, err := filepath.Rel(srcroot, dir)
		if err != nil {
			return err
		}
		checker.AddUnit(filepath.ToSlash(rel), files)
		for _, f := range files {
			syntax, err := parser.ParseFile(fset, f, nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			for _, imp := range syntax.Imports {
				if path, err := strconv.Unquote(imp.Path.Value); err == nil {
					external[path] = true
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Anything imported by a fixture that is not itself a fixture must come
	// from export data; one `go list -export` resolves them all.
	var need []string
	for path := range external {
		if path == "unsafe" {
			continue
		}
		if _, err := os.Stat(filepath.Join(srcroot, filepath.FromSlash(path))); err == nil {
			continue
		}
		need = append(need, path)
	}
	sort.Strings(need)
	if len(need) > 0 {
		listed, err := analysis.GoList(need...)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.ForTest == "" && p.Export != "" {
				checker.Exports()[p.ImportPath] = p.Export
			}
		}
	}
	return checker, nil
}

// An expectation is one regexp from a want comment, anchored to a line.
type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	raw     string
	matched bool
}

var wantArg = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

func checkExpectations(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, lit := range wantArg.FindAllString(strings.TrimPrefix(text, "want "), -1) {
					pattern, err := strconv.Unquote(lit)
					if err != nil {
						t.Errorf("%s: bad want literal %s: %v", pos, lit, err)
						continue
					}
					rx, err := regexp.Compile(pattern)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, pattern, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, rx: rx, raw: pattern})
				}
			}
		}
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.rx.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}
