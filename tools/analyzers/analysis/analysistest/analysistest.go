// Package analysistest runs an analyzer over fixture packages and checks its
// diagnostics against expectations written in the fixtures themselves, in the
// style of golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under testdata/src/<importpath>/, GOPATH-style: a fixture
// file's import path is its directory relative to testdata/src, so fixtures
// can import each other. Imports with no fixture directory resolve to real
// packages via compiler export data.
//
// An expected diagnostic is declared with a trailing comment on the line it
// is reported at:
//
//	for k := range m { // want `range over map`
//
// Each quoted or backquoted string is a regular expression that must match
// the message of a distinct diagnostic on that line. Lines without a want
// comment must produce no diagnostics.
package analysistest

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"hmtx/tools/analyzers/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory (go test runs with the package directory as working directory).
func TestData() string {
	p, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return p
}

// Run loads every fixture package under testdata/src, applies a to all of
// them in dependency order with a shared fact store (so interprocedural
// analyzers see the facts of fixture dependencies), and reports mismatches
// between the diagnostics and the want comments of the named packages
// through t. Diagnostics in fixture packages that are not named are ignored
// — dependencies often deliberately contain the sources a finding in the
// named package flows from.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	checker, order, err := loadFixtures(filepath.Join(testdata, "src"))
	if err != nil {
		t.Fatal(err)
	}
	requested := make(map[string]bool, len(pkgpaths))
	for _, path := range pkgpaths {
		requested[path] = true
	}
	runner := analysis.NewRunner()
	ran := make(map[string]bool)
	for _, path := range order {
		pkg, err := checker.Package(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		diags, err := runner.Run(pkg, a)
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		ran[path] = true
		if requested[path] {
			checkExpectations(t, pkg, diags)
		}
	}
	for _, path := range pkgpaths {
		if !ran[path] {
			t.Errorf("requested fixture package %s not found under %s", path, testdata)
		}
	}
}

// loadFixtures registers every directory under srcroot that contains Go
// files as a source unit keyed by its slash-separated relative path, and
// gathers export data for any imports that are not fixtures. The returned
// order lists the fixture paths dependencies-first.
func loadFixtures(srcroot string) (*analysis.Checker, []string, error) {
	checker := analysis.NewChecker()
	units := make(map[string]bool)       // every fixture path
	imports := make(map[string][]string) // fixture path -> all imports
	fset := token.NewFileSet()

	err := filepath.WalkDir(srcroot, func(dir string, d os.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			return err
		}
		var files []string
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				files = append(files, filepath.Join(dir, e.Name()))
			}
		}
		if len(files) == 0 {
			return nil
		}
		sort.Strings(files)
		rel, err := filepath.Rel(srcroot, dir)
		if err != nil {
			return err
		}
		unitPath := filepath.ToSlash(rel)
		checker.AddUnit(unitPath, files)
		units[unitPath] = true
		for _, f := range files {
			syntax, err := parser.ParseFile(fset, f, nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			for _, imp := range syntax.Imports {
				if path, err := strconv.Unquote(imp.Path.Value); err == nil {
					imports[unitPath] = append(imports[unitPath], path)
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	// Anything imported by a fixture that is not itself a fixture must come
	// from export data; one `go list -export` resolves them all.
	need := make(map[string]bool)
	fixtureImports := make(map[string][]string, len(units))
	for unitPath := range units {
		fixtureImports[unitPath] = nil
		for _, path := range imports[unitPath] {
			if path == "unsafe" {
				continue
			}
			if units[path] {
				fixtureImports[unitPath] = append(fixtureImports[unitPath], path)
				continue
			}
			need[path] = true
		}
	}
	var needList []string
	for path := range need {
		needList = append(needList, path)
	}
	sort.Strings(needList)
	if len(needList) > 0 {
		listed, err := analysis.GoList(needList...)
		if err != nil {
			return nil, nil, err
		}
		for _, p := range listed {
			if p.ForTest == "" && p.Export != "" {
				checker.Exports()[p.ImportPath] = p.Export
			}
		}
	}
	return checker, analysis.DependencyOrder(fixtureImports), nil
}

// An expectation is one regexp from a want comment, anchored to a line.
type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	raw     string
	matched bool
}

var wantArg = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

func checkExpectations(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, lit := range wantArg.FindAllString(strings.TrimPrefix(text, "want "), -1) {
					pattern, err := strconv.Unquote(lit)
					if err != nil {
						t.Errorf("%s: bad want literal %s: %v", pos, lit, err)
						continue
					}
					rx, err := regexp.Compile(pattern)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, pattern, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, rx: rx, raw: pattern})
				}
			}
		}
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.rx.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}
