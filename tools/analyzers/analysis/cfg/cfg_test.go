package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// build parses src as the body of a function and returns its CFG.
func build(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return New(fd.Body)
}

// reachable returns the set of blocks reachable from the entry.
func reachable(g *Graph) map[*Block]bool {
	seen := make(map[*Block]bool)
	var visit func(b *Block)
	visit = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			visit(s)
		}
	}
	visit(g.Entry)
	return seen
}

func TestStraightLine(t *testing.T) {
	g := build(t, "x := 1\n_ = x")
	if !reachable(g)[g.Exit] {
		t.Fatal("exit not reachable from entry")
	}
	if g.Exit.Index != len(g.Blocks)-1 {
		t.Fatalf("exit index = %d, want last (%d)", g.Exit.Index, len(g.Blocks)-1)
	}
}

func TestPanicTerminates(t *testing.T) {
	g := build(t, `panic("no")`)
	if reachable(g)[g.Exit] {
		t.Fatal("exit reachable past an unconditional panic")
	}
}

func TestReturnEdgesToExit(t *testing.T) {
	g := build(t, "if true {\nreturn\n}\nreturn")
	r := reachable(g)
	if !r[g.Exit] {
		t.Fatal("exit not reachable")
	}
	// Both returns must flow to exit: exit has >= 2 predecessors.
	preds := 0
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s == g.Exit {
				preds++
			}
		}
	}
	if preds < 2 {
		t.Fatalf("exit has %d predecessor edges, want >= 2", preds)
	}
}

func TestInfiniteLoopWithoutBreak(t *testing.T) {
	g := build(t, "for {\nf()\n}")
	if reachable(g)[g.Exit] {
		t.Fatal("exit reachable past `for {}` with no break")
	}
}

func TestLoopBreakReachesExit(t *testing.T) {
	g := build(t, "for {\nif true {\nbreak\n}\n}")
	if !reachable(g)[g.Exit] {
		t.Fatal("break out of `for {}` must reach exit")
	}
}

func TestLabeledBreak(t *testing.T) {
	g := build(t, "outer:\nfor {\nfor {\nbreak outer\n}\n}")
	if !reachable(g)[g.Exit] {
		t.Fatal("labeled break out of nested loops must reach exit")
	}
}

func TestSwitchWithoutDefaultMayskip(t *testing.T) {
	// A switch without default can match nothing: the statement after it
	// must be reachable even though every case returns.
	g := build(t, "switch x {\ncase 1:\nreturn\n}\nf()")
	if !reachable(g)[g.Exit] {
		t.Fatal("statement after non-exhaustive switch must be reachable")
	}
}

func TestSelectCommNodes(t *testing.T) {
	g := build(t, "select {\ncase v := <-ch:\n_ = v\ncase ch2 <- 1:\n}")
	// Each comm statement must appear as a node in some block.
	comms := 0
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if u, ok := n.Rhs[0].(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					comms++
				}
			case *ast.SendStmt:
				comms++
			}
		}
	}
	if comms != 2 {
		t.Fatalf("found %d comm nodes, want 2", comms)
	}
}

func TestForwardReachingConstancy(t *testing.T) {
	// A tiny reaching analysis: state is "how many f() calls can have run",
	// joined by max. The call inside the if must make the exit state
	// uncertain (join of 0 and 1 -> 1 under max-join with a flag).
	g := build(t, "if c {\nf()\n}\ng()")
	type st struct{ lo, hi int }
	in := Forward(g, st{0, 0},
		func(b *Block, s st) st {
			for _, n := range b.Nodes {
				if es, ok := n.(*ast.ExprStmt); ok {
					if call, ok := es.X.(*ast.CallExpr); ok {
						if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "f" {
							s.lo++
							s.hi++
						}
					}
				}
			}
			return s
		},
		func(into, from st, first bool) (st, bool) {
			if first {
				return from, true
			}
			merged := st{min(into.lo, from.lo), max(into.hi, from.hi)}
			return merged, merged != into
		})
	got := in[g.Exit.Index]
	if got.lo != 0 || got.hi != 1 {
		t.Fatalf("exit in-state = %+v, want {lo:0 hi:1}", got)
	}
}
