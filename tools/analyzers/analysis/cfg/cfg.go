// Package cfg builds per-function control-flow graphs from Go syntax and
// provides a forward-dataflow fixpoint engine over them. It is the
// path-structure substrate of the whole-program analyzers (detflow, txpath):
// the AST-walking lints reason about one statement at a time, while a CFG
// lets an analyzer ask "what states can reach this point" across branches,
// loops and early exits.
//
// The graph is deliberately simple: a Block is a maximal straight-line
// sequence of statements (plus the header expressions of the construct that
// opened it), and Succs are the possible successor blocks. Return statements
// edge to the synthetic Exit block; a call to the panic builtin terminates
// its block with no successors (the path does not continue in this
// function). goto is not supported — it does not occur in this repository —
// and is likewise treated as terminating, which is conservative for
// reachability-style checks.
package cfg

import (
	"go/ast"
	"go/token"
)

// A Block is a straight-line run of nodes with no internal control flow.
// Nodes holds statements and, for construct headers, the relevant
// sub-expressions (an *ast.IfStmt's Cond, a *ast.RangeStmt itself, a
// *ast.CommClause's Comm statement) in execution order.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// A Graph is the control-flow graph of one function body.
type Graph struct {
	Blocks []*Block // in creation order; Blocks[i].Index == i
	Entry  *Block
	Exit   *Block // synthetic normal-exit block, always last
}

// New builds the control-flow graph of a function body.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{}
	entry := b.newBlock()
	exitB := b.newBlock()
	g := &Graph{Entry: entry, Exit: exitB}
	b.exit = exitB
	cur := b.stmts(entry, body.List)
	if cur != nil {
		b.edge(cur, exitB)
	}
	// The exit block was created second but belongs last; renumber.
	blocks := make([]*Block, 0, len(b.blocks))
	for _, blk := range b.blocks {
		if blk != exitB {
			blocks = append(blocks, blk)
		}
	}
	blocks = append(blocks, exitB)
	for i, blk := range blocks {
		blk.Index = i
	}
	g.Blocks = blocks
	return g
}

type builder struct {
	blocks []*Block
	exit   *Block
	// loops and switches record break/continue targets, innermost last.
	// label is the statement label, "" if none.
	breaks    []jumpTarget
	continues []jumpTarget
	// pendingLabel is the label of a LabeledStmt being built, consumed by
	// the next loop/switch/select construct.
	pendingLabel string
}

type jumpTarget struct {
	label string
	block *Block
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.blocks)}
	b.blocks = append(b.blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

// stmts builds the statement list starting in cur and returns the block in
// which control continues, or nil if every path has left the list (return,
// panic, break, ...). Statements after a terminated path still get blocks
// (unreachable, no predecessors) so analyzers can see their syntax.
func (b *builder) stmts(cur *Block, list []ast.Stmt) *Block {
	for _, s := range list {
		if cur == nil {
			cur = b.newBlock() // unreachable continuation
		}
		cur = b.stmt(cur, s)
	}
	return cur
}

func (b *builder) stmt(cur *Block, s ast.Stmt) *Block {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(cur, s.List)

	case *ast.LabeledStmt:
		saved := b.pendingLabel
		b.pendingLabel = s.Label.Name
		out := b.stmt(cur, s.Stmt)
		b.pendingLabel = saved
		return out

	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, s)
		b.edge(cur, b.exit)
		return nil

	case *ast.BranchStmt:
		cur.Nodes = append(cur.Nodes, s)
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if t := findTarget(b.breaks, label); t != nil {
				b.edge(cur, t)
			}
		case token.CONTINUE:
			if t := findTarget(b.continues, label); t != nil {
				b.edge(cur, t)
			}
		case token.GOTO:
			// Unsupported: treat as terminating (absent from this repo).
		case token.FALLTHROUGH:
			// Handled by the switch builder; nothing to do here.
			return cur
		}
		return nil

	case *ast.IfStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		cur.Nodes = append(cur.Nodes, s.Cond)
		thenB := b.newBlock()
		b.edge(cur, thenB)
		thenOut := b.stmts(thenB, s.Body.List)
		var elseOut *Block
		if s.Else != nil {
			elseB := b.newBlock()
			b.edge(cur, elseB)
			elseOut = b.stmt(elseB, s.Else)
		}
		join := b.newBlock()
		if thenOut != nil {
			b.edge(thenOut, join)
		}
		if s.Else == nil {
			b.edge(cur, join)
		} else if elseOut != nil {
			b.edge(elseOut, join)
		}
		return join

	case *ast.ForStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		head := b.newBlock()
		b.edge(cur, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		after := b.newBlock()
		post := b.newBlock()
		if s.Cond != nil {
			b.edge(head, after)
		}
		body := b.newBlock()
		b.edge(head, body)
		bodyOut := b.loopBody(body, s.Body.List, after, post)
		if bodyOut != nil {
			b.edge(bodyOut, post)
		}
		if s.Post != nil {
			post.Nodes = append(post.Nodes, s.Post)
		}
		b.edge(post, head)
		return after

	case *ast.RangeStmt:
		head := b.newBlock()
		b.edge(cur, head)
		head.Nodes = append(head.Nodes, s) // analyzers key on the RangeStmt itself
		after := b.newBlock()
		b.edge(head, after)
		body := b.newBlock()
		b.edge(head, body)
		bodyOut := b.loopBody(body, s.Body.List, after, head)
		if bodyOut != nil {
			b.edge(bodyOut, head)
		}
		return after

	case *ast.SwitchStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		if s.Tag != nil {
			cur.Nodes = append(cur.Nodes, s.Tag)
		}
		return b.cases(cur, s.Body.List, false)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		cur.Nodes = append(cur.Nodes, s.Assign)
		return b.cases(cur, s.Body.List, false)

	case *ast.SelectStmt:
		return b.cases(cur, s.Body.List, true)

	case *ast.ExprStmt:
		cur.Nodes = append(cur.Nodes, s)
		if isPanic(s.X) {
			return nil
		}
		return cur

	default:
		// AssignStmt, DeclStmt, IncDecStmt, SendStmt, GoStmt, DeferStmt,
		// EmptyStmt: straight-line.
		cur.Nodes = append(cur.Nodes, s)
		return cur
	}
}

// loopBody builds a loop body with break/continue targets pushed, returning
// the fall-off-end block (nil if the body always jumps away).
func (b *builder) loopBody(body *Block, list []ast.Stmt, breakTo, continueTo *Block) *Block {
	label := b.pendingLabel
	b.pendingLabel = ""
	b.breaks = append(b.breaks, jumpTarget{"", breakTo})
	b.continues = append(b.continues, jumpTarget{"", continueTo})
	if label != "" {
		b.breaks = append(b.breaks, jumpTarget{label, breakTo})
		b.continues = append(b.continues, jumpTarget{label, continueTo})
	}
	out := b.stmts(body, list)
	n := 1
	if label != "" {
		n = 2
	}
	b.breaks = b.breaks[:len(b.breaks)-n]
	b.continues = b.continues[:len(b.continues)-n]
	return out
}

// cases builds a switch/type-switch/select body: one block per clause, a
// shared join block reached by every falling-off clause and — for a
// non-select without a default clause — directly from the header.
func (b *builder) cases(cur *Block, clauses []ast.Stmt, isSelect bool) *Block {
	label := b.pendingLabel
	b.pendingLabel = ""
	join := b.newBlock()
	b.breaks = append(b.breaks, jumpTarget{"", join})
	if label != "" {
		b.breaks = append(b.breaks, jumpTarget{label, join})
	}
	hasDefault := false
	// Pre-create clause blocks so fallthrough can edge to the next one.
	blks := make([]*Block, len(clauses))
	for i := range clauses {
		blks[i] = b.newBlock()
		b.edge(cur, blks[i])
	}
	for i, cl := range clauses {
		var bodyList []ast.Stmt
		fallsThrough := false
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			bodyList = cl.Body
			if n := len(bodyList); n > 0 {
				if br, ok := bodyList[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
					fallsThrough = true
					bodyList = bodyList[:n-1]
				}
			}
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				blks[i].Nodes = append(blks[i].Nodes, cl.Comm)
			}
			bodyList = cl.Body
		}
		out := b.stmts(blks[i], bodyList)
		if out != nil {
			if fallsThrough && i+1 < len(blks) {
				b.edge(out, blks[i+1])
			} else {
				b.edge(out, join)
			}
		}
	}
	if !hasDefault && !isSelect {
		b.edge(cur, join) // the switch may match no case
	}
	n := 1
	if label != "" {
		n = 2
	}
	b.breaks = b.breaks[:len(b.breaks)-n]
	return join
}

func findTarget(stack []jumpTarget, label string) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

// isPanic reports whether e is a call to the panic builtin.
func isPanic(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// Forward runs a forward-dataflow fixpoint over g and returns the in-state
// of every block, indexed by Block.Index. The entry block's in-state is
// init; transfer maps a block's in-state to its out-state (it must not
// mutate its argument); join merges a predecessor's out-state into a
// block's pending in-state, reporting whether the in-state changed (its
// first argument may be the zero value of S for a block not yet reached).
// Blocks are processed in index order, which approximates reverse postorder
// for graphs built by New; the worklist guarantees convergence regardless.
func Forward[S any](g *Graph, init S, transfer func(*Block, S) S, join func(into S, from S, first bool) (S, bool)) []S {
	in := make([]S, len(g.Blocks))
	seen := make([]bool, len(g.Blocks))
	in[g.Entry.Index] = init
	seen[g.Entry.Index] = true
	onList := make([]bool, len(g.Blocks))
	work := []*Block{g.Entry}
	onList[g.Entry.Index] = true
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		onList[blk.Index] = false
		out := transfer(blk, in[blk.Index])
		for _, succ := range blk.Succs {
			merged, changed := join(in[succ.Index], out, !seen[succ.Index])
			if changed || !seen[succ.Index] {
				in[succ.Index] = merged
				seen[succ.Index] = true
				if !onList[succ.Index] {
					work = append(work, succ)
					onList[succ.Index] = true
				}
			}
		}
	}
	return in
}
