// Package callgraph builds a static call graph for one type-checked package
// from its go/types information. Only statically resolvable edges are
// recorded: direct calls of package-level functions and of methods on
// concrete receivers. Calls through interfaces, function values and channels
// have no edge — analyzers treat those callees as unknown and must handle
// them conservatively.
//
// The graph covers the package's declared functions (including methods);
// function literals are not graph nodes, but calls made inside a literal are
// attributed to the enclosing declared function, so a summary computed for a
// declared function covers the closures it builds.
package callgraph

import (
	"go/ast"
	"go/types"
	"sort"

	"hmtx/tools/analyzers/analysis"
)

// A Node is one declared function with its syntax and outgoing static calls.
type Node struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	// Callees are the statically resolved targets of calls lexically inside
	// Decl (function literals included), deduplicated, in a deterministic
	// order (same-package callees by declaration position, then imported
	// callees by full name).
	Callees []*types.Func
}

// A Graph maps every function declared in the package to its node.
type Graph struct {
	// Nodes in declaration order.
	Nodes []*Node
	byFn  map[*types.Func]*Node
}

// Node returns the node for fn, or nil if fn is not declared in the package.
func (g *Graph) Node(fn *types.Func) *Node { return g.byFn[fn] }

// StaticCallee resolves the target of a call expression to a declared
// function or method, or nil for calls through interfaces, function values,
// type conversions and builtins.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			// A method on an interface value has no static target.
			if types.IsInterface(sel.Recv()) {
				return nil
			}
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // package-qualified function
		}
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return fn
}

// Build constructs the package's call graph.
func Build(pass *analysis.Pass) *Graph {
	g := &Graph{byFn: make(map[*types.Func]*Node)}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &Node{Fn: fn, Decl: fd}
			seen := make(map[*types.Func]bool)
			ast.Inspect(fd.Body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := StaticCallee(pass.TypesInfo, call); callee != nil && !seen[callee] {
					seen[callee] = true
					n.Callees = append(n.Callees, callee)
				}
				return true
			})
			sort.Slice(n.Callees, func(i, j int) bool {
				a, b := n.Callees[i], n.Callees[j]
				if (a.Pkg() == pass.Pkg) != (b.Pkg() == pass.Pkg) {
					return a.Pkg() == pass.Pkg
				}
				if a.Pkg() == pass.Pkg && b.Pkg() == pass.Pkg {
					return a.Pos() < b.Pos()
				}
				return a.FullName() < b.FullName()
			})
			g.Nodes = append(g.Nodes, n)
			g.byFn[fn] = n
		}
	}
	return g
}

// PostOrder returns the package's functions callees-first: if f statically
// calls g and both are declared in the package, g precedes f (up to cycles,
// which are emitted in the order recursion found them). Analyzers computing
// bottom-up summaries process functions in this order and re-iterate until
// the summaries stop changing, which handles recursion.
func (g *Graph) PostOrder() []*Node {
	var order []*Node
	state := make(map[*Node]int) // 0 unvisited, 1 on stack, 2 done
	var visit func(n *Node)
	visit = func(n *Node) {
		if state[n] != 0 {
			return
		}
		state[n] = 1
		for _, callee := range n.Callees {
			if cn := g.byFn[callee]; cn != nil && state[cn] == 0 {
				visit(cn)
			}
		}
		state[n] = 2
		order = append(order, n)
	}
	for _, n := range g.Nodes {
		visit(n)
	}
	return order
}
