package callgraph

import (
	"os"
	"path/filepath"
	"testing"

	"hmtx/tools/analyzers/analysis"
)

const src = `package p

type T struct{}

func (t T) m() { leaf() }

func leaf() {}

func mid() { leaf(); lit := func() { top() }; lit() }

func top() {
	mid()
	var t T
	t.m()
	var i interface{ m() } = t
	i.m() // interface call: no static edge
}
`

func load(t *testing.T) *analysis.Pass {
	t.Helper()
	dir := t.TempDir()
	file := filepath.Join(dir, "p.go")
	if err := os.WriteFile(file, []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	c := analysis.NewChecker()
	c.AddUnit("p", []string{file})
	pkg, err := c.Package("p")
	if err != nil {
		t.Fatal(err)
	}
	return &analysis.Pass{
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		PkgPath:   pkg.PkgPath,
		TypesInfo: pkg.Info,
	}
}

func TestBuildEdges(t *testing.T) {
	g := Build(load(t))
	names := func(n *Node) []string {
		var out []string
		for _, c := range n.Callees {
			out = append(out, c.Name())
		}
		return out
	}
	byName := make(map[string]*Node)
	for _, n := range g.Nodes {
		byName[n.Fn.Name()] = n
	}

	if got := names(byName["top"]); len(got) != 2 || got[0] != "m" || got[1] != "mid" {
		// m is declared before mid in the source, so position order puts it first.
		t.Fatalf("top callees = %v, want [m mid] (interface call must not appear)", got)
	}
	// Calls inside the function literal are attributed to mid.
	found := false
	for _, c := range byName["mid"].Callees {
		if c.Name() == "top" {
			found = true
		}
	}
	if !found {
		t.Fatalf("mid callees = %v, want to include top (call inside its literal)", names(byName["mid"]))
	}
}

func TestPostOrder(t *testing.T) {
	g := Build(load(t))
	pos := make(map[string]int)
	for i, n := range g.PostOrder() {
		pos[n.Fn.Name()] = i
	}
	if !(pos["leaf"] < pos["mid"]) {
		t.Errorf("postorder: leaf (%d) must precede mid (%d)", pos["leaf"], pos["mid"])
	}
	if !(pos["leaf"] < pos["m"]) {
		t.Errorf("postorder: leaf (%d) must precede m (%d)", pos["leaf"], pos["m"])
	}
	if len(pos) != 4 {
		t.Errorf("postorder visited %d functions, want 4", len(pos))
	}
}
