// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package at a time and reports position-anchored diagnostics.
//
// Only the subset needed by the hmtx determinism linters is provided; there
// are no facts, no analyzer dependencies, and no suggested fixes. Packages
// are loaded with Load (see load.go), which shells out to `go list -export`
// and type-checks target packages from source against compiler export data,
// so the module needs no third-party imports.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one lint rule.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, e.g. "detrange".
	Name string
	// Doc is a one-paragraph description of what the analyzer reports.
	Doc string
	// Run applies the rule to a single package and reports diagnostics
	// through pass.Report. The returned value is ignored by the driver
	// but kept for signature compatibility with go/analysis.
	Run func(*Pass) (any, error)
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	PkgPath   string // import path; xtest packages carry a "_test" suffix
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// A Diagnostic is one reported problem.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Run applies one analyzer to one loaded package and returns its diagnostics
// in source order (the order the analyzer reported them).
func Run(pkg *Package, a *Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		PkgPath:   pkg.PkgPath,
		TypesInfo: pkg.Info,
		Report:    func(d Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
	}
	return diags, nil
}

// NewInfo returns a types.Info with all maps the analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}
