// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package at a time and reports position-anchored diagnostics.
//
// Only the subset needed by the hmtx linters is provided — no suggested
// fixes, no analyzer-to-analyzer dependencies. Packages are loaded with Load
// (see load.go), which shells out to `go list -export` and type-checks
// target packages from source against compiler export data, so the module
// needs no third-party imports. Load returns packages in dependency order;
// a Runner carries analyzer facts (facts.go) from a package to its
// importers, which is what lets detflow and txpath reason across function
// and package boundaries. Sub-packages cfg and callgraph supply the
// per-function control-flow graphs, the forward-dataflow fixpoint engine,
// and the static call graph those analyzers are built on.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one lint rule.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, e.g. "detrange".
	Name string
	// Doc is a one-paragraph description of what the analyzer reports.
	Doc string
	// Version identifies the rule revision in versioned outputs (the
	// hmtx-lint/v1 JSON schema). Analyzers that never changed report "1";
	// bump it when a rule's findings change meaning so baseline and report
	// diffs can tell rule drift from code drift.
	Version string
	// Run applies the rule to a single package and reports diagnostics
	// through pass.Report. The returned value is ignored by the driver
	// but kept for signature compatibility with go/analysis.
	Run func(*Pass) (any, error)
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	PkgPath   string // import path; xtest packages carry a "_test" suffix
	TypesInfo *types.Info
	Report    func(Diagnostic)

	facts *factStore
}

// A Diagnostic is one reported problem.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Runner applies analyzers to packages while carrying each analyzer's
// facts from one package to the next. Run packages in dependency order (the
// order Load returns them) so that an importer sees the facts its
// dependencies exported.
type Runner struct {
	facts *factStore
}

// NewRunner returns a Runner with an empty fact store.
func NewRunner() *Runner {
	return &Runner{facts: newFactStore()}
}

// Run applies one analyzer to one loaded package and returns its diagnostics
// sorted by position (ties broken by message), so the output is independent
// of the analyzer's internal traversal order.
func (r *Runner) Run(pkg *Package, a *Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		PkgPath:   pkg.PkgPath,
		TypesInfo: pkg.Info,
		Report:    func(d Diagnostic) { diags = append(diags, d) },
		facts:     r.facts,
	}
	if _, err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
	}
	sort.SliceStable(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}

// Run applies one analyzer to one package with a fresh fact store. Analyzers
// that rely on cross-package facts need a shared Runner instead.
func Run(pkg *Package, a *Analyzer) ([]Diagnostic, error) {
	return NewRunner().Run(pkg, a)
}

// NewInfo returns a types.Info with all maps the analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}
