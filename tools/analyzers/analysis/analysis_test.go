package analysis_test

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"hmtx/tools/analyzers/analysis"
)

// loadFixturePair source-loads the facta/factb fixture pair in one Checker.
func loadFixturePair(t *testing.T) (a, b *analysis.Package) {
	t.Helper()
	c := analysis.NewChecker()
	c.AddUnit("facta", []string{filepath.Join("testdata", "src", "facta", "a.go")})
	c.AddUnit("factb", []string{filepath.Join("testdata", "src", "factb", "b.go")})
	pa, err := c.Package("facta")
	if err != nil {
		t.Fatal(err)
	}
	pb, err := c.Package("factb")
	if err != nil {
		t.Fatal(err)
	}
	return pa, pb
}

type markFact struct{ Label string }

func (*markFact) AFact() {}

// TestFactPropagation runs a fact-exporting analyzer over two source-loaded
// packages in dependency order with a shared Runner and checks that the
// importer observes exactly the facts the dependency exported.
func TestFactPropagation(t *testing.T) {
	pa, pb := loadFixturePair(t)

	var sawMarked, sawPlain bool
	a := &analysis.Analyzer{
		Name: "facttest",
		Doc:  "exports a fact on facta.Marked and reads it from factb",
		Run: func(pass *analysis.Pass) (any, error) {
			switch pass.PkgPath {
			case "facta":
				obj := pass.Pkg.Scope().Lookup("Marked")
				if obj == nil {
					t.Fatal("facta.Marked not found")
				}
				pass.ExportObjectFact(obj, &markFact{Label: "yes"})
			case "factb":
				for _, imp := range pass.Pkg.Imports() {
					if imp.Path() != "facta" {
						continue
					}
					var f markFact
					if pass.ImportObjectFact(imp.Scope().Lookup("Marked"), &f) {
						sawMarked = true
						if f.Label != "yes" {
							t.Errorf("fact label = %q, want yes (copy must preserve fields)", f.Label)
						}
					}
					if pass.ImportObjectFact(imp.Scope().Lookup("Plain"), &f) {
						sawPlain = true
					}
				}
			}
			return nil, nil
		},
	}

	runner := analysis.NewRunner()
	for _, pkg := range []*analysis.Package{pa, pb} {
		if _, err := runner.Run(pkg, a); err != nil {
			t.Fatal(err)
		}
	}
	if !sawMarked {
		t.Error("fact exported on facta.Marked was not visible in factb")
	}
	if sawPlain {
		t.Error("fact reported for facta.Plain, which never had one exported")
	}

	// A second Runner starts with an empty store: facts must not leak
	// between independent runs.
	var leaked bool
	probe := &analysis.Analyzer{
		Name: "probe",
		Doc:  "checks fact isolation between runners",
		Run: func(pass *analysis.Pass) (any, error) {
			var f markFact
			if obj := pass.Pkg.Scope().Lookup("Marked"); obj != nil {
				leaked = pass.ImportObjectFact(obj, &f)
			}
			return nil, nil
		},
	}
	if _, err := analysis.NewRunner().Run(pa, probe); err != nil {
		t.Fatal(err)
	}
	if leaked {
		t.Error("fact from one Runner visible in a fresh Runner")
	}
}

// TestDiagnosticOrdering reports diagnostics in scrambled order and checks
// the Runner returns them sorted by position, then message.
func TestDiagnosticOrdering(t *testing.T) {
	pa, _ := loadFixturePair(t)
	a := &analysis.Analyzer{
		Name: "scramble",
		Doc:  "reports function declarations in reverse source order",
		Run: func(pass *analysis.Pass) (any, error) {
			var decls []*ast.FuncDecl
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					if fd, ok := d.(*ast.FuncDecl); ok {
						decls = append(decls, fd)
					}
				}
			}
			for i := len(decls) - 1; i >= 0; i-- {
				pass.Reportf(decls[i].Pos(), "decl %s", decls[i].Name.Name)
				pass.Reportf(decls[i].Pos(), "also %s", decls[i].Name.Name)
			}
			return nil, nil
		},
	}
	diags, err := analysis.NewRunner().Run(pa, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 4 {
		t.Fatalf("got %d diagnostics, want 4", len(diags))
	}
	var got []string
	lastPos := token.NoPos
	for _, d := range diags {
		if d.Pos < lastPos {
			t.Errorf("diagnostics not sorted by position: %v after %v", d.Pos, lastPos)
		}
		lastPos = d.Pos
		got = append(got, d.Message)
	}
	want := []string{"also Marked", "decl Marked", "also Plain", "decl Plain"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("messages = %v, want %v (position then message order)", got, want)
	}
}

// TestLoadDependencyOrder loads real repository packages and checks every
// package appears after its loaded imports.
func TestLoadDependencyOrder(t *testing.T) {
	pkgs, err := analysis.Load("hmtx/internal/vid", "hmtx/internal/memsys", "hmtx/internal/engine")
	if err != nil {
		t.Fatal(err)
	}
	index := make(map[string]int)
	for i, p := range pkgs {
		index[p.PkgPath] = i
	}
	for _, path := range []string{"hmtx/internal/vid", "hmtx/internal/memsys", "hmtx/internal/engine"} {
		if _, ok := index[path]; !ok {
			t.Fatalf("package %s missing from Load result", path)
		}
	}
	if index["hmtx/internal/vid"] > index["hmtx/internal/engine"] {
		t.Error("vid must precede engine, which imports it")
	}
	if index["hmtx/internal/memsys"] > index["hmtx/internal/engine"] {
		t.Error("memsys must precede engine, which imports it")
	}
}

// TestDependencyOrderDeterministic checks the topological sort breaks ties
// lexicographically and still emits every unit when the edges form a cycle.
func TestDependencyOrderDeterministic(t *testing.T) {
	edges := map[string][]string{
		"c":   {"a", "b"},
		"b":   nil,
		"a":   nil,
		"d":   {"c"},
		"ind": nil,
	}
	got := analysis.DependencyOrder(edges)
	// After a and b are emitted, c unblocks and sorts ahead of ind.
	want := []string{"a", "b", "c", "d", "ind"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("order = %v, want %v", got, want)
	}

	cyc := map[string][]string{"x": {"y"}, "y": {"x"}, "z": nil}
	got = analysis.DependencyOrder(cyc)
	if len(got) != 3 || got[0] != "z" {
		t.Errorf("cycle order = %v, want z first then the cycle members", got)
	}
	joined := strings.Join(got[1:], ",")
	if joined != "x,y" {
		t.Errorf("cycle members = %s, want x,y in name order", joined)
	}
}
