package analysis

import (
	"fmt"
	"go/types"
	"reflect"
)

// A Fact is a datum one analyzer attaches to a package or object while
// analyzing it, for consumption when the same analyzer later runs on an
// importing package. Facts make whole-program analyses possible under the
// one-package-at-a-time driver: a bottom-up pass over the import DAG sees
// every dependency's facts before the dependent package is analyzed.
//
// Fact values must be pointers to structs. Unlike golang.org/x/tools, facts
// are kept in memory for the life of one Runner rather than serialized, so
// they may carry any Go value — but analyzers should still restrict
// themselves to plain data, since a fact outlives the Pass that produced it.
type Fact interface {
	// AFact is a marker method; it has no behaviour.
	AFact()
}

// factStore holds the facts of every analyzer across one Runner's lifetime.
type factStore struct {
	obj map[objFactKey]Fact
	pkg map[pkgFactKey]Fact
}

type objFactKey struct {
	a   *Analyzer
	obj types.Object
	t   reflect.Type
}

type pkgFactKey struct {
	a   *Analyzer
	pkg *types.Package
	t   reflect.Type
}

func newFactStore() *factStore {
	return &factStore{
		obj: make(map[objFactKey]Fact),
		pkg: make(map[pkgFactKey]Fact),
	}
}

func factType(fact Fact) reflect.Type {
	t := reflect.TypeOf(fact)
	if t == nil || t.Kind() != reflect.Pointer {
		panic(fmt.Sprintf("analysis: fact %T is not a pointer", fact))
	}
	return t
}

// ExportObjectFact associates fact with obj for later ImportObjectFact calls
// by the same analyzer, from this or an importing package. Exporting twice
// for the same (object, fact type) overwrites.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if obj == nil {
		panic("analysis: ExportObjectFact(nil, ...)")
	}
	p.facts.obj[objFactKey{p.Analyzer, obj, factType(fact)}] = fact
}

// ImportObjectFact copies into fact the fact of the same concrete type
// previously exported for obj, reporting whether one was found. fact must be
// a pointer to the zero value of the sought type.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if obj == nil {
		return false
	}
	stored, ok := p.facts.obj[objFactKey{p.Analyzer, obj, factType(fact)}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

// ExportPackageFact associates fact with the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	p.facts.pkg[pkgFactKey{p.Analyzer, p.Pkg, factType(fact)}] = fact
}

// ImportPackageFact copies into fact the package fact previously exported
// for pkg by this analyzer, reporting whether one was found.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	if pkg == nil {
		return false
	}
	stored, ok := p.facts.pkg[pkgFactKey{p.Analyzer, pkg, factType(fact)}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}
