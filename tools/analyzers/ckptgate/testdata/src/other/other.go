// Package other is outside the engine/memsys scope: goroutines here may
// checkpoint directly (e.g. an experiments driver writing suite checkpoints
// from a progress goroutine would still be wrong, but it is not this
// analyzer's scope), so the analyzer must stay silent.
package other

import "hmtx/internal/ckpt"

func spawn() {
	go func() {
		doc := ckpt.CaptureRun()
		_ = ckpt.WriteFile("ckpt.json", doc)
	}()
}
