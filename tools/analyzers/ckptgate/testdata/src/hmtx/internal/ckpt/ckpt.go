// Package ckpt is a minimal stand-in for hmtx/internal/ckpt: the analyzer
// matches by package-path suffix, so the fixture only needs the document
// functions the gate cares about.
package ckpt

type Doc struct{ Kind string }

func CaptureRun() *Doc { return &Doc{Kind: "run"} }

func WriteFile(path string, doc *Doc) error { return nil }

func ReadFile(path string) (*Doc, error) { return &Doc{}, nil }
