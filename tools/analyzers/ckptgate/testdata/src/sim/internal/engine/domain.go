// Fixture for ckptgate: the package path ends in internal/engine, so the
// rule applies. Domain-worker goroutines may buffer records and publish
// bounds, but checkpoint capture/restore — internal/ckpt calls and the
// snapshot primitives — must happen on the coordinator at a segment
// boundary, never on a worker.
package engine

import (
	"sync"

	"hmtx/internal/ckpt"

	"ckpthelp"
)

// hier stands in for the memory hierarchy: the package-path suffix puts its
// snapshot primitives in the gate's scope.
type hier struct{ lines []byte }

func (h *hier) AppendExact(buf []byte) []byte { return append(buf, h.lines...) }

func (h *hier) RestoreExact(enc []byte) error {
	h.lines = append(h.lines[:0], enc...)
	return nil
}

type rec struct{ cycles int64 }

type sys struct {
	mem  *hier
	recs []rec
	mu   sync.Mutex
}

// runRound is the good pattern: workers buffer, the coordinator drains and
// checkpoints at the boundary.
func (s *sys) runRound() {
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.workerBuffer(1)
		}()
	}
	wg.Wait()
	// Boundary: every domain has drained, the machine is in its canonical
	// serial state — capture here is fine, no diagnostics.
	doc := ckpt.CaptureRun()
	_ = ckpt.WriteFile("ckpt.json", doc)
	_ = s.mem.AppendExact(nil)
}

// workerBuffer only appends records: no diagnostics.
func (s *sys) workerBuffer(c int64) {
	s.mu.Lock()
	s.recs = append(s.recs, rec{cycles: c})
	s.mu.Unlock()
}

// badLiteral checkpoints directly from a goroutine literal.
func (s *sys) badLiteral() {
	go func() {
		doc := ckpt.CaptureRun()       // want `ckpt.CaptureRun called on a domain goroutine`
		_ = ckpt.WriteFile("mid", doc) // want `ckpt.WriteFile called on a domain goroutine`
		_ = s.mem.AppendExact(nil)     // want `engine.AppendExact called on a domain goroutine`
	}()
}

// badWorker is entered via a go statement below; its effects are flagged
// even though the go statement is elsewhere.
func (s *sys) badWorker() {
	s.restoreHelper(nil)
}

// restoreHelper is reached transitively from the goroutine entry.
func (s *sys) restoreHelper(enc []byte) {
	_ = s.mem.RestoreExact(enc) // want `engine.RestoreExact called on a domain goroutine`
}

func (s *sys) launch() {
	go s.badWorker()
}

// snapHelper is reached only through the method value passed as a goroutine
// argument in hiddenDispatch — a syntactic walk would miss this.
func (s *sys) snapHelper() {
	_ = ckpt.WriteFile("late", nil) // want `ckpt.WriteFile called on a domain goroutine`
}

func (s *sys) hiddenDispatch() {
	go runFn(s.snapHelper)
}

func runFn(f func()) { f() }

// crossPackage launders the capture through an out-of-package helper; the
// helper's ckpt fact surfaces it at the call site.
func (s *sys) crossPackage(k int64) {
	go func() {
		_ = ckpthelp.Pure(k)
		_ = ckpthelp.Snapshot() // want `ckpthelp.Snapshot checkpoints \(ckpt.CaptureRun\) when called on a domain goroutine`
	}()
}
