// Package ckpthelp is outside the engine/memsys scope but checkpoints: its
// exported ckpt facts must make calls from scoped goroutines reportable at
// the call site.
package ckpthelp

import "hmtx/internal/ckpt"

// Snapshot transitively reaches ckpt.CaptureRun through a local helper, so
// the exported fact is itself the product of the bottom-up summary.
func Snapshot() *ckpt.Doc {
	return capture()
}

func capture() *ckpt.Doc {
	return ckpt.CaptureRun()
}

// Pure does not checkpoint; calls to it from workers must stay silent.
func Pure(x int64) int64 { return x + 1 }
