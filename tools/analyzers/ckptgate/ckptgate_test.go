package ckptgate_test

import (
	"testing"

	"hmtx/tools/analyzers/analysis/analysistest"
	"hmtx/tools/analyzers/ckptgate"
)

func TestCkptgate(t *testing.T) {
	// sim/internal/engine carries the want comments; other launches
	// goroutines that checkpoint directly but is out of scope and must stay
	// silent.
	analysistest.Run(t, analysistest.TestData(), ckptgate.Analyzer,
		"sim/internal/engine", "other")
}
