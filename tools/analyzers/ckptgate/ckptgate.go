// Package ckptgate keeps checkpoint capture and restore off domain-worker
// goroutines in the intra-run simulation layer (internal/engine,
// internal/memsys).
//
// An hmtx-ckpt/v1 snapshot (DESIGN.md §18) is a whole-machine observation:
// CaptureCkpt walks every architectural counter, AppendExact serialises
// every cache line of every level, and the internal/ckpt document functions
// stitch those into the versioned byte-exact format. The byte-determinism
// contract for checkpoints holds only because capture happens on the
// coordinator at a segment boundary, when every domain has drained and the
// machine is in its canonical serial state. A capture (or worse, a restore)
// issued from a domain goroutine would serialise a torn mid-quantum state —
// bytes that depend on the host scheduler, which is exactly what the format
// forbids.
//
// The reachability is the valueflow goroutine closure (DESIGN.md §17) over
// the package call graph, the same closure domaindrain v2 uses: a go
// statement's entry, launched function literals, every statically
// resolvable callee, and functions or methods referenced as values inside
// reachable code. Inside reachable code the analyzer reports:
//
//   - calls into hmtx/internal/ckpt — document capture, restore, read or
//     write has no business on a worker;
//   - calls to the snapshot methods of the checkpointable state holders
//     (CaptureCkpt/RestoreCkpt in engine, prof and metrics; AppendExact/
//     RestoreExact in memsys) — these are the primitives a torn capture
//     would be assembled from;
//   - calls to functions in other packages whose exported ckpt fact says
//     they (transitively) do one of the above: the analyzer computes a
//     bottom-up summary for every package it runs on and exports it as
//     object facts, so laundering a capture through an out-of-package
//     helper is caught at the call site.
//
// Buffering per-core records, publishing bounds and channel handoffs remain
// fine; checkpointing is a coordinator-only, boundary-only activity. Test
// files are exempt: test goroutines are not simulation schedulers.
package ckptgate

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"hmtx/tools/analyzers/analysis"
	"hmtx/tools/analyzers/analysis/callgraph"
	"hmtx/tools/analyzers/analysis/valueflow"
)

var Analyzer = &analysis.Analyzer{
	Name:    "ckptgate",
	Doc:     "forbids checkpoint capture/restore (internal/ckpt, snapshot methods) on domain goroutines in engine/memsys",
	Version: "1",
	Run:     run,
}

// ckptPkgs are the package-path suffixes all of whose functions count as
// checkpoint operations.
var ckptPkgs = []string{
	"internal/ckpt",
}

// snapNames are the snapshot primitives; a call counts when the name matches
// and the receiver's package is one of snapPkgs.
var snapNames = map[string]bool{
	"CaptureCkpt":  true,
	"RestoreCkpt":  true,
	"AppendExact":  true,
	"RestoreExact": true,
}

// snapPkgs are the package-path suffixes whose snapNames methods are
// checkpoint primitives.
var snapPkgs = []string{
	"internal/engine",
	"internal/memsys",
	"internal/prof",
	"internal/metrics",
}

// ckptFact lists the checkpoint operations a function (transitively)
// performs, so call sites in other packages can be judged.
type ckptFact struct {
	Ops []string
}

func (*ckptFact) AFact() {}

func run(pass *analysis.Pass) (any, error) {
	cg := callgraph.Build(pass)
	isTest := func(n ast.Node) bool {
		return strings.HasSuffix(pass.Fset.Position(n.Pos()).Filename, "_test.go")
	}

	// Phase 1, every package: bottom-up transitive ckpt summaries, exported
	// as facts — an engine worker calling a helper from some other package
	// needs the helper's summary.
	sums := map[*types.Func][]string{}
	opsOf := func(fn *types.Func) []string {
		if s, ok := sums[fn]; ok {
			return s
		}
		var f ckptFact
		if pass.ImportObjectFact(fn, &f) {
			return f.Ops
		}
		return nil
	}
	order := cg.PostOrder()
	for iter := 0; iter < 16; iter++ {
		changed := false
		for _, n := range order {
			if n.Decl.Body == nil || isTest(n.Decl) {
				continue
			}
			set := map[string]bool{}
			ast.Inspect(n.Decl.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if name, ok := ckptCall(pass, call); ok {
						set[name] = true
					}
				}
				return true
			})
			for _, callee := range n.Callees {
				for _, s := range opsOf(callee) {
					set[s] = true
				}
			}
			cur := make([]string, 0, len(set))
			for s := range set {
				cur = append(cur, s)
			}
			sort.Strings(cur)
			if !equalStrings(sums[n.Fn], cur) {
				sums[n.Fn] = cur
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for fn, ops := range sums {
		if len(ops) > 0 {
			pass.ExportObjectFact(fn, &ckptFact{Ops: ops})
		}
	}

	// Phase 2: reporting, scoped to the simulation layer.
	pkg := strings.TrimSuffix(pass.PkgPath, "_test")
	if !strings.HasSuffix(pkg, "internal/engine") && !strings.HasSuffix(pkg, "internal/memsys") {
		return nil, nil
	}

	reach := valueflow.GoReachable(pass, cg, false)
	seen := map[token.Pos]bool{}
	report := func(pos token.Pos, format string, args ...any) {
		if !seen[pos] {
			seen[pos] = true
			pass.Reportf(pos, format, args...)
		}
	}
	checkCall := func(call *ast.CallExpr, via string) {
		if name, ok := ckptCall(pass, call); ok {
			report(call.Pos(), "%s called on a domain goroutine (via %s); checkpoints capture whole-machine state and must run on the coordinator at a segment boundary", name, via)
			return
		}
		callee := callgraph.StaticCallee(pass.TypesInfo, call)
		if callee == nil || callee.Pkg() == pass.Pkg {
			return // in-package callees are checked in their own bodies
		}
		if ops := opsOf(callee); len(ops) > 0 {
			report(call.Pos(), "%s checkpoints (%s) when called on a domain goroutine (via %s); checkpoints must run on the coordinator at a segment boundary",
				funcName(pass, callee), strings.Join(ops, ", "), via)
		}
	}
	checkBody := func(body *ast.BlockStmt, via string) {
		ast.Inspect(body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkCall(call, via)
			}
			return true
		})
	}

	for fn, via := range reach.Funcs {
		n := cg.Node(fn)
		if n == nil || n.Decl == nil || n.Decl.Body == nil || isTest(n.Decl) {
			continue
		}
		checkBody(n.Decl.Body, via)
	}
	for _, lit := range reach.Lits {
		checkBody(lit.Body, lit.Via)
	}
	// The go statement's own call: `go ckpt.WriteFile(...)` or `go helper()`
	// with an imported, checkpointing helper never appears inside a
	// reachable body, so it is checked at the root.
	for _, file := range pass.Files {
		if isTest(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if gs, ok := n.(*ast.GoStmt); ok {
				if _, isLit := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); !isLit {
					checkCall(gs.Call, "goroutine entry")
				}
			}
			return true
		})
	}
	return nil, nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func funcName(pass *analysis.Pass, fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return types.TypeString(sig.Recv().Type(), types.RelativeTo(pass.Pkg)) + "." + name
	}
	if fn.Pkg() != nil && fn.Pkg() != pass.Pkg {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

// ckptCall reports whether call invokes a checkpoint operation: anything in
// the internal/ckpt package, or a snapshot primitive of a checkpointable
// state holder.
func ckptCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	path := fn.Pkg().Path()
	for _, suffix := range ckptPkgs {
		if strings.HasSuffix(path, suffix) {
			return fmt.Sprintf("%s.%s", fn.Pkg().Name(), fn.Name()), true
		}
	}
	if snapNames[fn.Name()] {
		for _, suffix := range snapPkgs {
			if strings.HasSuffix(path, suffix) {
				return fmt.Sprintf("%s.%s", fn.Pkg().Name(), fn.Name()), true
			}
		}
	}
	return "", false
}

// calleeFunc resolves the called function or method, including methods
// reached through interface values (which have no static callee but still
// name the API being invoked).
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
