// Command benchdiff compares two recorded benchmark documents and enforces
// the regression policy of EXPERIMENTS.md.
//
// Usage:
//
//	benchdiff [-tol 0.20] [-geomean-tol 0] OLD.json NEW.json
//
// Both files must carry the same schema tag:
//
//   - "hmtx-bench/v1" (cmd/experiments -json): every field is a simulated,
//     deterministic measurement, so the documents must match exactly; any
//     difference is a regression (exit 1).
//   - "hmtx-perf/v1" (tools/perfsnap): the simulated digest must match
//     exactly (exit 1 on drift — the snapshots measured different work), an
//     allocs/op increase in any shared microbenchmark fails (exit 1: the
//     zero-allocation contract is host-independent), and wall-clock or
//     ns/op regressions beyond -tol only warn (exit 0) because host timing
//     is machine- and load-dependent.
//
// -geomean-tol (0 disables, the default) adds one hard timing gate to the
// hmtx-perf/v1 comparison: the geometric mean of the per-benchmark ns/op
// ratios over the shared microbenchmarks must not regress by more than the
// given fraction. A single noisy benchmark only warns, but the whole hot
// path drifting slower together is a real regression even on a shared
// runner, so CI fails it.
//
// Exit status: 0 comparison passed (warnings allowed), 1 regression,
// 2 usage or read error.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"hmtx/internal/experiments"
	"hmtx/internal/stats"
	"hmtx/tools/benchfmt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	tol := flag.Float64("tol", 0.20, "relative guardband for host-time regressions (warn-only)")
	geoTol := flag.Float64("geomean-tol", 0, "fail if the geomean ns/op ratio over shared benchmarks regresses by more than this fraction (0 disables)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-tol 0.20] [-geomean-tol 0] OLD.json NEW.json")
		os.Exit(2)
	}
	oldBuf, newBuf := mustRead(flag.Arg(0)), mustRead(flag.Arg(1))

	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(oldBuf, &probe); err != nil {
		log.Println(err)
		os.Exit(2)
	}

	var fails, warns int
	switch probe.Schema {
	case "hmtx-bench/v1":
		fails = diffBench(oldBuf, newBuf)
	case benchfmt.Schema:
		fails, warns = diffPerf(oldBuf, newBuf, *tol, *geoTol)
	default:
		log.Printf("%s: unknown schema %q", flag.Arg(0), probe.Schema)
		os.Exit(2)
	}

	switch {
	case fails > 0:
		log.Printf("FAIL: %d regression(s), %d warning(s)", fails, warns)
		os.Exit(1)
	case warns > 0:
		log.Printf("ok with %d warning(s)", warns)
	default:
		log.Printf("ok: no regressions")
	}
}

func mustRead(path string) []byte {
	buf, err := os.ReadFile(path)
	if err != nil {
		log.Println(err)
		os.Exit(2)
	}
	return buf
}

// diffBench compares two hmtx-bench/v1 documents field by field; every
// difference is a failure because the document is fully deterministic.
func diffBench(oldBuf, newBuf []byte) (fails int) {
	var od, nd experiments.Doc
	for _, p := range []struct {
		buf []byte
		doc *experiments.Doc
	}{{oldBuf, &od}, {newBuf, &nd}} {
		if err := json.Unmarshal(p.buf, p.doc); err != nil {
			log.Println(err)
			os.Exit(2)
		}
	}
	if od.Scale != nd.Scale || od.Cores != nd.Cores {
		log.Printf("FAIL: configs differ: scale %d/%d cores %d/%d — not comparable",
			od.Scale, nd.Scale, od.Cores, nd.Cores)
		return 1
	}
	oldBy := map[string]experiments.BenchJSON{}
	for _, b := range od.Benchmarks {
		oldBy[b.Name] = b
	}
	for _, nb := range nd.Benchmarks {
		ob, ok := oldBy[nb.Name]
		if !ok {
			log.Printf("note: %s only in new document", nb.Name)
			continue
		}
		delete(oldBy, nb.Name)
		// BenchJSON holds pointers (SMTX results), so compare the
		// canonical JSON encodings rather than the structs.
		oj, _ := json.Marshal(ob)
		nj, _ := json.Marshal(nb)
		if !bytes.Equal(oj, nj) {
			log.Printf("FAIL: %s simulated metrics drifted:\n  old: %s\n  new: %s", nb.Name, oj, nj)
			fails++
		}
	}
	for name := range oldBy {
		log.Printf("FAIL: %s missing from new document", name)
		fails++
	}
	return fails
}

// diffPerf compares two hmtx-perf/v1 documents: simulated digest exactly,
// allocation counts monotonically, host timing within tol (warn-only).
func diffPerf(oldBuf, newBuf []byte, tol, geoTol float64) (fails, warns int) {
	od, err := benchfmt.Read(bytes.NewReader(oldBuf))
	if err == nil {
		var nd benchfmt.Doc
		nd, err = benchfmt.Read(bytes.NewReader(newBuf))
		if err == nil {
			return diffPerfDocs(od, nd, tol, geoTol)
		}
	}
	log.Println(err)
	os.Exit(2)
	return
}

func diffPerfDocs(od, nd benchfmt.Doc, tol, geoTol float64) (fails, warns int) {
	// Simulated digest: deterministic, so exact.
	if od.Suite.GeomeanHMTX != nd.Suite.GeomeanHMTX || od.Suite.TotalSeqCycles != nd.Suite.TotalSeqCycles {
		log.Printf("FAIL: simulated digest drifted: geomean %.6f -> %.6f, seq cycles %d -> %d",
			od.Suite.GeomeanHMTX, nd.Suite.GeomeanHMTX,
			od.Suite.TotalSeqCycles, nd.Suite.TotalSeqCycles)
		fails++
	}

	// Suite wall-clock: warn-only guardband.
	if ow, nw := od.Suite.WallSeconds, nd.Suite.WallSeconds; ow > 0 && nw > ow*(1+tol) {
		log.Printf("warn: suite wall-clock regressed %.1f%%: %.2fs -> %.2fs (parallelism %d -> %d)",
			100*(nw/ow-1), ow, nw, od.Suite.Parallelism, nd.Suite.Parallelism)
		warns++
	}

	oldBy := map[string]benchfmt.Benchmark{}
	for _, b := range od.Benchmarks {
		oldBy[b.Name] = b
	}
	var ratios []float64
	for _, nb := range nd.Benchmarks {
		ob, ok := oldBy[nb.Name]
		if !ok {
			continue
		}
		if nb.AllocsPerOp > ob.AllocsPerOp {
			log.Printf("FAIL: %s allocs/op increased: %d -> %d", nb.Name, ob.AllocsPerOp, nb.AllocsPerOp)
			fails++
		}
		if ob.NsPerOp > 0 && nb.NsPerOp > 0 {
			ratios = append(ratios, nb.NsPerOp/ob.NsPerOp)
		}
		if ob.NsPerOp > 0 && nb.NsPerOp > ob.NsPerOp*(1+tol) {
			log.Printf("warn: %s ns/op regressed %.1f%%: %.1f -> %.1f",
				nb.Name, 100*(nb.NsPerOp/ob.NsPerOp-1), ob.NsPerOp, nb.NsPerOp)
			warns++
		}
	}

	// Geomean gate: one benchmark jittering past tol is host noise and only
	// warns above, but the whole shared set drifting slower together is a
	// hot-path regression and fails when the gate is armed.
	if geoTol > 0 && len(ratios) > 0 {
		if g := stats.Geomean(ratios); g > 1+geoTol {
			log.Printf("FAIL: geomean ns/op over %d shared benchmark(s) regressed %.1f%% (gate %.0f%%)",
				len(ratios), 100*(g-1), 100*geoTol)
			fails++
		}
	}
	return fails, warns
}
