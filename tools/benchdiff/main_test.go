package main

import (
	"encoding/json"
	"testing"

	"hmtx/internal/experiments"
	"hmtx/tools/benchfmt"
)

func benchDoc(cycles int64) []byte {
	doc := experiments.Doc{
		Schema: "hmtx-bench/v1", Scale: 1, Cores: 4,
		Benchmarks: []experiments.BenchJSON{{
			Name: "ispell", Paradigm: "PS-DSWP", SeqCycles: cycles,
			HMTX: experiments.SysJSON{Cycles: cycles / 2, Speedup: 2, Runs: 1},
		}},
		GeomeanHMTX: 2,
	}
	buf, err := json.Marshal(doc)
	if err != nil {
		panic(err)
	}
	return buf
}

func TestDiffBenchExact(t *testing.T) {
	if fails := diffBench(benchDoc(1000), benchDoc(1000)); fails != 0 {
		t.Fatalf("identical docs: %d fails, want 0", fails)
	}
	if fails := diffBench(benchDoc(1000), benchDoc(1001)); fails == 0 {
		t.Fatal("simulated-cycle drift not detected")
	}
}

func perfDoc(wall float64, seqCycles int64, ns float64, allocs int64) benchfmt.Doc {
	return benchfmt.Doc{
		Schema: benchfmt.Schema,
		Suite: benchfmt.Suite{
			Parallelism: 1, WallSeconds: wall,
			GeomeanHMTX: 2.5, TotalSeqCycles: seqCycles,
		},
		Benchmarks: []benchfmt.Benchmark{
			{Name: "BenchmarkL1HitLoad", NsPerOp: ns, AllocsPerOp: allocs},
		},
	}
}

func TestDiffPerfPolicy(t *testing.T) {
	base := perfDoc(10, 1000, 30, 0)

	// Identical: clean pass.
	if fails, warns := diffPerfDocs(base, perfDoc(10, 1000, 30, 0), 0.20); fails != 0 || warns != 0 {
		t.Fatalf("identical: fails=%d warns=%d", fails, warns)
	}

	// Simulated digest drift: hard failure.
	if fails, _ := diffPerfDocs(base, perfDoc(10, 1001, 30, 0), 0.20); fails == 0 {
		t.Fatal("sim digest drift not failed")
	}

	// Allocation increase: hard failure (host-independent contract).
	if fails, _ := diffPerfDocs(base, perfDoc(10, 1000, 30, 1), 0.20); fails == 0 {
		t.Fatal("allocs/op increase not failed")
	}

	// Wall-clock regression beyond tolerance: warn only.
	if fails, warns := diffPerfDocs(base, perfDoc(13, 1000, 30, 0), 0.20); fails != 0 || warns != 1 {
		t.Fatalf("wall-clock regression: fails=%d warns=%d, want 0/1", fails, warns)
	}

	// ns/op regression beyond tolerance: warn only.
	if fails, warns := diffPerfDocs(base, perfDoc(10, 1000, 40, 0), 0.20); fails != 0 || warns != 1 {
		t.Fatalf("ns/op regression: fails=%d warns=%d, want 0/1", fails, warns)
	}

	// Within tolerance: no warning.
	if fails, warns := diffPerfDocs(base, perfDoc(11, 1000, 33, 0), 0.20); fails != 0 || warns != 0 {
		t.Fatalf("within tolerance: fails=%d warns=%d", fails, warns)
	}
}
