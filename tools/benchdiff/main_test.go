package main

import (
	"encoding/json"
	"testing"

	"hmtx/internal/experiments"
	"hmtx/tools/benchfmt"
)

func benchDoc(cycles int64) []byte {
	doc := experiments.Doc{
		Schema: "hmtx-bench/v1", Scale: 1, Cores: 4,
		Benchmarks: []experiments.BenchJSON{{
			Name: "ispell", Paradigm: "PS-DSWP", SeqCycles: cycles,
			HMTX: experiments.SysJSON{Cycles: cycles / 2, Speedup: 2, Runs: 1},
		}},
		GeomeanHMTX: 2,
	}
	buf, err := json.Marshal(doc)
	if err != nil {
		panic(err)
	}
	return buf
}

func TestDiffBenchExact(t *testing.T) {
	if fails := diffBench(benchDoc(1000), benchDoc(1000)); fails != 0 {
		t.Fatalf("identical docs: %d fails, want 0", fails)
	}
	if fails := diffBench(benchDoc(1000), benchDoc(1001)); fails == 0 {
		t.Fatal("simulated-cycle drift not detected")
	}
}

func perfDoc(wall float64, seqCycles int64, ns float64, allocs int64) benchfmt.Doc {
	return benchfmt.Doc{
		Schema: benchfmt.Schema,
		Suite: benchfmt.Suite{
			Parallelism: 1, WallSeconds: wall,
			GeomeanHMTX: 2.5, TotalSeqCycles: seqCycles,
		},
		Benchmarks: []benchfmt.Benchmark{
			{Name: "BenchmarkL1HitLoad", NsPerOp: ns, AllocsPerOp: allocs},
		},
	}
}

func TestDiffPerfPolicy(t *testing.T) {
	base := perfDoc(10, 1000, 30, 0)

	// Identical: clean pass.
	if fails, warns := diffPerfDocs(base, perfDoc(10, 1000, 30, 0), 0.20, 0); fails != 0 || warns != 0 {
		t.Fatalf("identical: fails=%d warns=%d", fails, warns)
	}

	// Simulated digest drift: hard failure.
	if fails, _ := diffPerfDocs(base, perfDoc(10, 1001, 30, 0), 0.20, 0); fails == 0 {
		t.Fatal("sim digest drift not failed")
	}

	// Allocation increase: hard failure (host-independent contract).
	if fails, _ := diffPerfDocs(base, perfDoc(10, 1000, 30, 1), 0.20, 0); fails == 0 {
		t.Fatal("allocs/op increase not failed")
	}

	// Wall-clock regression beyond tolerance: warn only.
	if fails, warns := diffPerfDocs(base, perfDoc(13, 1000, 30, 0), 0.20, 0); fails != 0 || warns != 1 {
		t.Fatalf("wall-clock regression: fails=%d warns=%d, want 0/1", fails, warns)
	}

	// ns/op regression beyond tolerance: warn only.
	if fails, warns := diffPerfDocs(base, perfDoc(10, 1000, 40, 0), 0.20, 0); fails != 0 || warns != 1 {
		t.Fatalf("ns/op regression: fails=%d warns=%d, want 0/1", fails, warns)
	}

	// Within tolerance: no warning.
	if fails, warns := diffPerfDocs(base, perfDoc(11, 1000, 33, 0), 0.20, 0); fails != 0 || warns != 0 {
		t.Fatalf("within tolerance: fails=%d warns=%d", fails, warns)
	}
}

// multiDoc builds a perf document with several benchmarks whose ns/op are
// the base values scaled by f.
func multiDoc(f float64) benchfmt.Doc {
	doc := benchfmt.Doc{
		Schema: benchfmt.Schema,
		Suite:  benchfmt.Suite{Parallelism: 1, WallSeconds: 10, GeomeanHMTX: 2.5, TotalSeqCycles: 1000},
	}
	for _, b := range []struct {
		name string
		ns   float64
	}{{"BenchmarkA", 40}, {"BenchmarkB", 100}, {"BenchmarkC", 400}} {
		doc.Benchmarks = append(doc.Benchmarks, benchfmt.Benchmark{Name: b.name, NsPerOp: b.ns * f})
	}
	return doc
}

func TestDiffPerfGeomeanGate(t *testing.T) {
	base := multiDoc(1)

	// Everything 12% slower: each benchmark is inside the 20% per-benchmark
	// guardband (no warnings), but the armed 10% geomean gate fails.
	fails, warns := diffPerfDocs(base, multiDoc(1.12), 0.20, 0.10)
	if fails != 1 || warns != 0 {
		t.Fatalf("uniform 12%% drift: fails=%d warns=%d, want 1/0", fails, warns)
	}

	// Gate disarmed (0): same drift passes with no warnings.
	if fails, warns := diffPerfDocs(base, multiDoc(1.12), 0.20, 0); fails != 0 || warns != 0 {
		t.Fatalf("disarmed gate: fails=%d warns=%d, want 0/0", fails, warns)
	}

	// Uniform 8% drift: inside the 10% gate, passes.
	if fails, _ := diffPerfDocs(base, multiDoc(1.08), 0.20, 0.10); fails != 0 {
		t.Fatalf("8%% drift under a 10%% gate: fails=%d, want 0", fails)
	}

	// One benchmark 30% slower, the others unchanged: geomean ~1.09 stays
	// under the gate, and the per-benchmark tolerance reports the outlier
	// as a warning only.
	one := multiDoc(1)
	one.Benchmarks[1].NsPerOp *= 1.30
	if fails, warns := diffPerfDocs(base, one, 0.20, 0.10); fails != 0 || warns != 1 {
		t.Fatalf("single outlier: fails=%d warns=%d, want 0/1", fails, warns)
	}

	// Uniform speedup must never trip the gate.
	if fails, _ := diffPerfDocs(base, multiDoc(0.8), 0.20, 0.10); fails != 0 {
		t.Fatalf("speedup tripped the gate: fails=%d", fails)
	}
}
