// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§6). Each figure benchmark regenerates its table from a shared
// measurement suite (computed once) and reports the headline numbers as
// benchmark metrics; `go test -bench . -benchtime 1x` prints every table via
// -v logging. Protocol-level microbenchmarks live in the internal packages.
package hmtx_test

import (
	"sync"
	"testing"

	"hmtx/internal/engine"
	"hmtx/internal/experiments"
	"hmtx/internal/hmtx"
	"hmtx/internal/paradigm"
	"hmtx/internal/smtx"
	"hmtx/internal/stats"
	"hmtx/internal/workloads"
)

var (
	suiteOnce    sync.Once
	suiteResults []experiments.BenchResult
)

// suite runs the full measurement suite (8 benchmarks x {sequential, HMTX,
// SMTX-min, SMTX-max}) once and caches it for every figure benchmark.
func suite(b *testing.B) []experiments.BenchResult {
	b.Helper()
	suiteOnce.Do(func() {
		suiteResults = experiments.RunAll(experiments.Default(), nil)
	})
	return suiteResults
}

// BenchmarkFig1Paradigms regenerates Figure 1: the linked-list loop under
// Sequential, DOACROSS, DSWP and PS-DSWP execution.
func BenchmarkFig1Paradigms(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.Fig1(4)
	}
	b.Log("\n" + out)
}

// BenchmarkFig2SMTXValidation regenerates Figure 2: SMTX whole-program
// speedup with minimal vs substantial read/write sets.
func BenchmarkFig2SMTXValidation(b *testing.B) {
	rs := suite(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.Fig2(rs)
	}
	b.Log("\n" + out)
	var mins, maxs []float64
	for i := range rs {
		if rs[i].Spec.HasSMTX {
			mins = append(mins, rs[i].WholeProgram(rs[i].HotSpeedupSMTX(smtx.MinSet)))
			maxs = append(maxs, rs[i].WholeProgram(rs[i].HotSpeedupSMTX(smtx.MaxSet)))
		}
	}
	b.ReportMetric(stats.Geomean(mins), "geomean-min-x")
	b.ReportMetric(stats.Geomean(maxs), "geomean-max-x")
}

// BenchmarkTable1Stats regenerates Table 1: per-benchmark speculative
// execution statistics under HMTX.
func BenchmarkTable1Stats(b *testing.B) {
	rs := suite(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.Table1(rs)
	}
	b.Log("\n" + out)
}

// BenchmarkTable2Config regenerates Table 2: the architectural
// configuration.
func BenchmarkTable2Config(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.Table2(experiments.Default())
	}
	b.Log("\n" + out)
}

// BenchmarkFig8Speedup regenerates Figure 8: hot-loop speedup over
// sequential on 4 cores, SMTX minimal sets vs HMTX maximal sets. The paper
// reports a geomean of 1.99x for HMTX across all 8 benchmarks.
func BenchmarkFig8Speedup(b *testing.B) {
	rs := suite(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.Fig8(rs)
	}
	b.Log("\n" + out)
	var all, comp, smtxMin []float64
	for i := range rs {
		all = append(all, rs[i].HotSpeedupHMTX())
		if rs[i].Spec.HasSMTX {
			comp = append(comp, rs[i].HotSpeedupHMTX())
			smtxMin = append(smtxMin, rs[i].HotSpeedupSMTX(smtx.MinSet))
		}
	}
	b.ReportMetric(stats.Geomean(all), "hmtx-geomean-all-x")
	b.ReportMetric(stats.Geomean(comp), "hmtx-geomean-comp-x")
	b.ReportMetric(stats.Geomean(smtxMin), "smtx-geomean-comp-x")
}

// BenchmarkFig9SetSizes regenerates Figure 9: average read/write set sizes
// per transaction.
func BenchmarkFig9SetSizes(b *testing.B) {
	rs := suite(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.Fig9(rs)
	}
	b.Log("\n" + out)
	var combined []float64
	for i := range rs {
		if rs[i].HMTXEng.Txs > 0 {
			combined = append(combined,
				float64(rs[i].HMTXEng.ReadSetBytes+rs[i].HMTXEng.WriteSetBytes)/float64(rs[i].HMTXEng.Txs)/1024)
		}
	}
	b.ReportMetric(stats.Geomean(combined), "geomean-combined-kB")
}

// BenchmarkTable3Power regenerates Table 3: area, power and energy of the
// commodity machine vs the machine with HMTX extensions.
func BenchmarkTable3Power(b *testing.B) {
	rs := suite(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.Table3(experiments.Default(), rs)
	}
	b.Log("\n" + out)
}

// --- Design-choice ablations (DESIGN.md §7) ----------------------------------

// BenchmarkAblationSLA measures the cost of disabling speculative load
// acknowledgments (§5.1) on the most misprediction-heavy benchmark.
func BenchmarkAblationSLA(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.AblationSLA(experiments.Default())
	}
	b.Log("\n" + out)
}

// BenchmarkAblationVIDWidth sweeps the hardware VID width (§4.6).
func BenchmarkAblationVIDWidth(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.AblationVIDWidth(experiments.Default())
	}
	b.Log("\n" + out)
}

// BenchmarkAblationLazyCommit contrasts lazy (§5.3) and eager (§4.4) commit
// processing.
func BenchmarkAblationLazyCommit(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.AblationLazyCommit(experiments.Default())
	}
	b.Log("\n" + out)
}

// BenchmarkAblationScaling sweeps the core count (§8 future work).
func BenchmarkAblationScaling(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.AblationScaling(experiments.Default())
	}
	b.Log("\n" + out)
}

// --- End-to-end per-benchmark benchmarks -------------------------------------

// BenchmarkHMTX runs each benchmark under HMTX and reports its speedup.
func BenchmarkHMTX(b *testing.B) {
	for _, spec := range workloads.All() {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			var speedup float64
			for i := 0; i < b.N; i++ {
				seqSys := engine.New(engine.DefaultConfig())
				loop := spec.New(1)
				loop.Setup(seqSys.Mem)
				seq := paradigm.RunSequential(seqSys, loop)

				sys := engine.New(engine.DefaultConfig())
				loop = spec.New(1)
				loop.Setup(sys.Mem)
				out := hmtx.Run(sys, loop, spec.Paradigm, 4)
				speedup = float64(seq) / float64(out.Cycles)
			}
			b.ReportMetric(speedup, "speedup-x")
		})
	}
}
