// Command hmtxsim runs one benchmark on the simulated HMTX machine and
// prints its timing and speculative-execution statistics.
//
// Usage:
//
//	hmtxsim -bench 164.gzip [-system hmtx|smtx-min|smtx-max|seq]
//	        [-paradigm auto|doall|doacross|dswp|psdswp]
//	        [-cores 4] [-scale 1] [-no-sla] [-vid-bits 6] [-eager-commit]
//	        [-sanitize]
//	        [-trace] [-trace-cats bus,txn,...] [-trace-out trace.json]
//	        [-stats] [-stats-json stats.json]
//	        [-prof] [-prof-out prof.json] [-prof-folded prof.folded]
//	        [-series series.json] [-series-window 2048]
//	        [-conflicts conflicts.json] [-conflicts-dot conflicts.dot]
//	        [-cascade-window 512] [-hist hist.json]
//	        [-ckpt-every N] [-ckpt-out ckpt.json] [-ckpt-halt]
//	        [-resume ckpt.json]
//	        [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// Observability (DESIGN.md §10): -trace streams a gem5-style text log of the
// selected event categories to stdout; -trace-out writes the same events as
// Chrome trace_event JSON (load in chrome://tracing or Perfetto). -stats
// dumps the hierarchical statistics registry as an aligned table; -stats-json
// writes the run summary plus the full registry as deterministic JSON.
//
// Profiling (DESIGN.md §13): -prof attributes every simulated cycle of every
// core to a bucket (compute, cache/memory latency by level, bus contention,
// commit, stalls, validation, abort, wasted re-execution) and prints the
// attribution tables; -prof-out writes the profile as an "hmtx-prof/v1"
// document for cmd/hmtxprof, and -prof-folded writes folded stacks for
// flamegraph tooling. All outputs are byte-identical across runs of the same
// configuration.
//
// Metrics (DESIGN.md §15): -series samples the run's counters every
// -series-window simulated cycles into an "hmtx-series/v1" time-series
// document; -conflicts records every who-aborted-whom edge and writes the
// "hmtx-conflicts/v1" conflict graph (with -conflicts-dot for a Graphviz
// rendering, cascades detected within -cascade-window cycles); -hist collects
// transaction latency histograms into an "hmtx-hist/v1" document. All three
// feed cmd/hmtxreport.
//
// Checkpointing (DESIGN.md §18): -ckpt-every N segments the run into
// N-iteration engine runs; -ckpt-out writes an hmtx-ckpt/v1 document with the
// full simulation state at each segment boundary, and -ckpt-halt stops the
// run at the first boundary. -resume continues a halted run from its
// checkpoint: the benchmark, machine configuration, paradigm, instruments and
// segment length all come from the document, and the resumed run's outputs
// (stdout and all five JSON documents) are byte-identical to the same
// segmented run left uninterrupted. Checkpoint files are also the input to
// cmd/hmtxdbg, the time-travel debugger.
//
// hmtxsim -list prints the available benchmarks.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"hmtx/internal/ckpt"
	"hmtx/internal/engine"
	"hmtx/internal/hmtx"
	"hmtx/internal/metrics"
	"hmtx/internal/obs"
	"hmtx/internal/paradigm"
	"hmtx/internal/prof"
	"hmtx/internal/smtx"
	"hmtx/internal/vid"
	"hmtx/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// statsDoc is the -stats-json document ("hmtx-run/v1"): the run summary plus
// the nested statistics registry. Field order is fixed by the struct; the
// stats tree is a map, which encoding/json marshals with sorted keys, so the
// document is byte-identical across runs of the same configuration.
type statsDoc struct {
	Schema string         `json:"schema"`
	Run    runDoc         `json:"run"`
	Stats  map[string]any `json:"stats"`
}

type runDoc struct {
	Bench      string  `json:"bench"`
	System     string  `json:"system"`
	Paradigm   string  `json:"paradigm"`
	Cores      int     `json:"cores"`
	Scale      int     `json:"scale"`
	Iterations int     `json:"iterations"`
	Cycles     int64   `json:"cycles"`
	SeqCycles  int64   `json:"seq_cycles"`
	Speedup    float64 `json:"speedup"`
	Aborts     int     `json:"aborts"`
	Runs       int     `json:"runs"`
}

// run is main's testable body: it parses args, runs the simulation and
// writes all output to stdout/stderr, returning the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hmtxsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bench := fs.String("bench", "", "benchmark name (see -list)")
	system := fs.String("system", "hmtx", "execution system: hmtx, smtx-min, smtx-max, seq")
	par := fs.String("paradigm", "auto", "paradigm: auto, doall, doacross, dswp, psdswp")
	cores := fs.Int("cores", 4, "number of simulated cores")
	domains := fs.Int("domains", 1, "parallel simulation domains (1 = serial reference scheduler; results are byte-identical for any value)")
	scale := fs.Int("scale", 1, "iteration-count multiplier")
	noSLA := fs.Bool("no-sla", false, "disable speculative load acknowledgments (§5.1)")
	vidBits := fs.Uint("vid-bits", 6, "hardware VID width in bits (§4.6)")
	eager := fs.Bool("eager-commit", false, "use eager commit sweeps instead of lazy commits (§5.3)")
	sanitize := fs.Bool("sanitize", false, "run under MOESI-San: assert coherence invariants after every memory operation")
	trace := fs.Bool("trace", false, "stream a text event trace to stdout")
	traceCats := fs.String("trace-cats", "all", "comma-separated trace categories (bus,cache,version,overflow,sla,txn,commit,queue,engine) or \"all\"")
	traceOut := fs.String("trace-out", "", "write the event trace as Chrome trace_event JSON to this file")
	statsText := fs.Bool("stats", false, "dump the statistics registry as an aligned table")
	statsJSON := fs.String("stats-json", "", "write the run summary and statistics registry as JSON to this file")
	profText := fs.Bool("prof", false, "attribute every simulated cycle to a bucket and print the profile")
	profOut := fs.String("prof-out", "", "write the cycle profile as an hmtx-prof/v1 document to this file")
	profFolded := fs.String("prof-folded", "", "write the cycle profile as folded stacks (flamegraph input) to this file")
	seriesOut := fs.String("series", "", "write a windowed hmtx-series/v1 time-series document to this file")
	seriesWindow := fs.Int64("series-window", 0, "time-series sampling window in simulated cycles (0 = default)")
	conflictsOut := fs.String("conflicts", "", "write the hmtx-conflicts/v1 conflict-graph document to this file")
	conflictsDOT := fs.String("conflicts-dot", "", "write the conflict graph in Graphviz dot syntax to this file")
	cascadeWindow := fs.Int64("cascade-window", 0, "abort-cascade detection window in simulated cycles (0 = default)")
	histOut := fs.String("hist", "", "write the hmtx-hist/v1 latency-histogram document to this file")
	ckptEvery := fs.Int("ckpt-every", 0, "segment the run every N iterations for checkpointing (0 = off; -system hmtx only)")
	ckptOut := fs.String("ckpt-out", "", "write an hmtx-ckpt/v1 checkpoint to this file at each segment boundary")
	ckptHalt := fs.Bool("ckpt-halt", false, "halt the run at the first segment boundary (after writing -ckpt-out)")
	resume := fs.String("resume", "", "resume a halted run from an hmtx-ckpt/v1 checkpoint file")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write an allocation profile to this file on exit")
	list := fs.Bool("list", false, "list benchmarks and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "hmtxsim: "+format+"\n", a...)
		return 1
	}

	// Resuming adopts the run's identity — benchmark, machine configuration,
	// paradigm, instruments, segment length — from the checkpoint; flags that
	// would contradict it are rejected rather than silently ignored.
	var rdoc *ckpt.Doc
	if *resume != "" {
		doc, err := ckpt.ReadFile(*resume)
		if err != nil {
			return fail("%v", err)
		}
		switch doc.Kind {
		case ckpt.KindRun:
		case ckpt.KindExperiments:
			return fail("%s is an experiment-suite checkpoint; resume it with cmd/experiments -resume", *resume)
		case ckpt.KindCheck:
			return fail("%s is a model-checker counterexample; open it with cmd/hmtxdbg", *resume)
		}
		rdoc = doc
		fixed := map[string]bool{"bench": true, "system": true, "paradigm": true,
			"cores": true, "scale": true, "no-sla": true, "vid-bits": true,
			"eager-commit": true, "sanitize": true, "ckpt-every": true,
			"series-window": true, "cascade-window": true}
		var bad string
		fs.Visit(func(f *flag.Flag) {
			if fixed[f.Name] {
				bad = f.Name
			}
		})
		if bad != "" {
			return fail("-%s conflicts with -resume: it is fixed by the checkpoint", bad)
		}
		rs := doc.Run
		if rs.System != "hmtx" {
			return fail("checkpoint records system %q; only hmtx runs are resumable", rs.System)
		}
		*bench, *system = rs.Bench, rs.System
		*cores, *scale = rs.Cores, rs.Scale
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fail("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail("%v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(stderr, "hmtxsim: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(stderr, "hmtxsim: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(stderr, "hmtxsim: %v\n", err)
			}
		}()
	}

	if *list {
		for _, s := range workloads.All() {
			smtxNote := ""
			if s.HasSMTX {
				smtxNote = " (SMTX comparison available)"
			}
			fmt.Fprintf(stdout, "%-12s %v%s\n", s.Name, s.Paradigm, smtxNote)
		}
		return 0
	}
	if *bench == "" {
		fs.Usage()
		return 2
	}
	spec, err := workloads.ByName(*bench)
	if err != nil {
		return fail("%v", err)
	}

	kind := spec.Paradigm
	switch *par {
	case "auto":
	case "doall":
		kind = paradigm.DOALL
	case "doacross":
		kind = paradigm.DOACROSS
	case "dswp":
		kind = paradigm.DSWP
	case "psdswp":
		kind = paradigm.PSDSWP
	default:
		return fail("unknown paradigm %q", *par)
	}
	if rdoc != nil {
		kind = paradigm.Sequential
		for _, k := range []paradigm.Kind{paradigm.DOALL, paradigm.DOACROSS, paradigm.DSWP, paradigm.PSDSWP} {
			if k.String() == rdoc.Run.Paradigm {
				kind = k
			}
		}
		if kind == paradigm.Sequential {
			return fail("checkpoint records unknown paradigm %q", rdoc.Run.Paradigm)
		}
	}
	switch *system {
	case "seq", "hmtx", "smtx-min", "smtx-max":
	default:
		return fail("unknown system %q", *system)
	}
	if (*ckptEvery > 0 || *ckptOut != "" || *ckptHalt || rdoc != nil) && *system != "hmtx" {
		return fail("checkpointing requires -system hmtx")
	}
	if (*ckptOut != "" || *ckptHalt) && *ckptEvery <= 0 && rdoc == nil {
		return fail("-ckpt-out and -ckpt-halt need -ckpt-every")
	}

	cfg := engine.DefaultConfig()
	cfg.Mem.Cores = *cores
	cfg.Mem.SLAEnabled = !*noSLA
	cfg.Mem.VIDSpace = vid.Space{Bits: *vidBits}
	cfg.Mem.EagerCommit = *eager
	cfg.Mem.Sanitize = *sanitize
	cfg.Domains = *domains
	if *domains < 1 {
		return fail("-domains must be >= 1")
	}

	if rdoc != nil {
		// Rebuild the checkpointed machine exactly; only the host-side
		// scheduler choice (-domains, byte-identical by construction) may
		// differ from the captured configuration.
		ec := rdoc.Run.EngineCfg
		ec.Domains = *domains
		rdoc.Run.EngineCfg = ec
		cfg = ec
	}

	seqSys := engine.New(cfg)
	var sys *engine.System
	if rdoc != nil {
		var err error
		sys, err = ckpt.RestoreRun(rdoc)
		if err != nil {
			return fail("%v", err)
		}
	} else {
		sys = engine.New(cfg)
	}

	// Instrument the system that executes the measured run; the sequential
	// reference run stays untraced unless it is the measured system.
	target := sys
	if *system == "seq" {
		target = seqSys
	}

	var tracer *obs.Tracer
	var txCol *obs.TxCollector
	var traceFile *os.File
	if *trace || *traceOut != "" {
		mask, err := obs.ParseCategories(*traceCats)
		if err != nil {
			return fail("%v", err)
		}
		tracer = obs.NewTracer(mask, 0)
		txCol = obs.NewTxCollector()
		tracer.Attach(txCol)
		if *traceOut != "" {
			traceFile, err = os.Create(*traceOut)
			if err != nil {
				return fail("%v", err)
			}
			tracer.Attach(obs.NewChromeSink(traceFile))
		}
		if *trace {
			tracer.Attach(obs.NewTextSink(stdout))
		}
		target.SetTracer(tracer)
	}

	var reg *obs.Registry
	if *statsText || *statsJSON != "" {
		reg = obs.NewRegistry()
		target.Register(reg)
		target.Mem.Register(reg, "memsys")
	}

	wantProf := *profText || *profOut != "" || *profFolded != "" || *seriesOut != ""
	wantSeries := *seriesOut != ""
	wantConflicts := *conflictsOut != "" || *conflictsDOT != ""
	wantHists := *histOut != ""
	if rdoc != nil {
		// RestoreRun reattached exactly the instruments the checkpoint was
		// taken with; the output flags must ask for the same set, or the
		// resumed documents could not be byte-identical.
		for _, in := range []struct {
			name        string
			saved, want bool
		}{
			{"profiler", rdoc.Run.Prof != nil, wantProf},
			{"time-series sampler", rdoc.Run.Series != nil, wantSeries},
			{"conflict recorder", rdoc.Run.Conflicts != nil, wantConflicts},
			{"latency histograms", rdoc.Run.Hists != nil, wantHists},
			{"statistics registry", rdoc.Run.ObsHists != nil, reg != nil},
		} {
			if in.saved != in.want {
				if in.saved {
					return fail("checkpoint was taken with the %s attached; pass the matching output flags to resume", in.name)
				}
				return fail("checkpoint was taken without the %s; it cannot be attached mid-run", in.name)
			}
		}
		// The registry's histograms only exist once Register has run, so
		// their state restores here rather than in ckpt.RestoreRun.
		if err := ckpt.RestoreObsHists(target, rdoc.Run); err != nil {
			return fail("%v", err)
		}
	} else {
		if wantProf {
			// The sampler's validation/commit columns read the profiler's
			// live buckets, so sampling implies profiling (a pure observer:
			// it does not change the simulated execution).
			target.SetProf(prof.New())
		}
		if wantSeries {
			target.SetSeries(metrics.NewSampler(*seriesWindow))
		}
		if wantConflicts {
			target.SetConflicts(metrics.NewRecorder(*cascadeWindow))
		}
		if wantHists {
			target.SetLatHists(metrics.NewLatHists())
		}
	}

	// Sequential reference for the speedup.
	loop := spec.New(*scale)
	loop.Setup(seqSys.Mem)
	seqCycles := paradigm.RunSequential(seqSys, loop)

	var out hmtx.Outcome
	var ckptErr error
	var halted bool
	switch *system {
	case "seq":
		out = hmtx.Outcome{Cycles: seqCycles, Iterations: loop.Iters(), Runs: 1}
	case "hmtx":
		loop = spec.New(*scale)
		opts := hmtx.Options{Every: *ckptEvery}
		if rdoc != nil {
			// Memory state was restored; the paradigm contract (all mutable
			// loop state lives in simulated memory) means no re-Setup.
			opts.Every, opts.Partial = rdoc.Run.Every, rdoc.Run.Partial
		} else {
			loop.Setup(sys.Mem)
		}
		if *ckptOut != "" || *ckptHalt {
			opts.Checkpoint = func(nextIt int, sofar hmtx.Outcome) bool {
				if *ckptOut != "" {
					doc := ckpt.CaptureRun(sys, ckpt.RunState{
						Bench: spec.Name, System: *system, Paradigm: kind.String(),
						Cores: *cores, Scale: *scale, Every: opts.Every,
						EngineCfg: cfg, NextIt: nextIt, Partial: sofar,
					})
					if err := ckpt.WriteFile(*ckptOut, doc); err != nil {
						ckptErr = err
						return true
					}
				}
				halted = *ckptHalt
				return halted
			}
		}
		out = hmtx.RunOpts(sys, loop, kind, *cores, opts)
	case "smtx-min":
		loop = spec.New(*scale)
		loop.Setup(sys.Mem)
		out = smtx.Run(sys, loop, kind, *cores, smtx.MinSet, smtx.DefaultConfig())
	case "smtx-max":
		loop = spec.New(*scale)
		loop.Setup(sys.Mem)
		out = smtx.Run(sys, loop, kind, *cores, smtx.MaxSet, smtx.DefaultConfig())
	}

	if err := tracer.Close(); err != nil {
		return fail("closing trace sinks: %v", err)
	}
	if traceFile != nil {
		if err := traceFile.Close(); err != nil {
			return fail("closing %s: %v", *traceOut, err)
		}
	}

	if ckptErr != nil {
		return fail("writing checkpoint: %v", ckptErr)
	}
	if halted {
		where := ""
		if *ckptOut != "" {
			where = " -> " + *ckptOut
		}
		fmt.Fprintf(stdout, "checkpoint: halted at iteration %d%s (continue with -resume)\n",
			out.Iterations, where)
		return 0
	}

	if *domains > 1 {
		// Scheduler diagnostics go to stderr: stdout must stay byte-identical
		// to a serial (-domains=1) run of the same configuration.
		fmt.Fprintf(stderr, "hmtxsim: parallel scheduler: %d domains, %d rounds, %d fast ops\n",
			*domains, sys.Rounds(), sys.FastOps())
	}

	fmt.Fprintf(stdout, "benchmark:        %s (%v, %d iterations)\n", spec.Name, kind, out.Iterations)
	fmt.Fprintf(stdout, "system:           %s on %d cores\n", *system, *cores)
	fmt.Fprintf(stdout, "cycles:           %d (sequential: %d)\n", out.Cycles, seqCycles)
	fmt.Fprintf(stdout, "hot-loop speedup: %.2fx\n", float64(seqCycles)/float64(out.Cycles))
	fmt.Fprintf(stdout, "aborts:           %d (recovery runs: %d)\n", out.Aborts, out.Runs)

	if *system != "seq" {
		es, ms := sys.Stats(), sys.Mem.Stats()
		fmt.Fprintf(stdout, "instructions:     %d (%d branches, %d mispredicted)\n",
			es.Instructions, es.Branches, es.Mispredicts)
		if es.Txs > 0 {
			fmt.Fprintf(stdout, "transactions:     %d committed, %.0f spec accesses/tx\n",
				es.Txs, float64(es.SpecAccesses)/float64(es.Txs))
			fmt.Fprintf(stdout, "read/write sets:  %.1f kB / %.1f kB per tx (max combined %.1f kB)\n",
				float64(es.ReadSetBytes/es.Txs)/1024,
				float64(es.WriteSetBytes/es.Txs)/1024,
				float64(es.MaxCombinedBytes)/1024)
		}
		fmt.Fprintf(stdout, "memory system:    %d L1 hits, %d peer transfers, %d L2 hits, %d mem reads\n",
			ms.L1Hits, ms.PeerTransfers, ms.L2Hits, ms.MemReads)
		fmt.Fprintf(stdout, "speculation:      %d spec loads, %d spec stores, %d versions created\n",
			ms.SpecLoads, ms.SpecStores, ms.VersionsCreated)
		fmt.Fprintf(stdout, "SLAs:             %d sent, %d false misspeculations avoided\n",
			ms.SLAsSent, ms.AvoidedAborts)
		fmt.Fprintf(stdout, "VID resets:       %d\n", ms.VIDResets)
	}

	if txCol != nil {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, txCol.Summary().String())
		fmt.Fprintf(stdout, "trace events:     %d recorded (categories: %v)\n", tracer.Count(), tracer.Mask())
	}

	if *statsText {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, reg.Snapshot().Text())
	}

	if *statsJSON != "" {
		tree, err := reg.Snapshot().Nested()
		if err != nil {
			return fail("%v", err)
		}
		doc := statsDoc{
			Schema: "hmtx-run/v1",
			Run: runDoc{
				Bench:      spec.Name,
				System:     *system,
				Paradigm:   kind.String(),
				Cores:      *cores,
				Scale:      *scale,
				Iterations: out.Iterations,
				Cycles:     out.Cycles,
				SeqCycles:  seqCycles,
				Speedup:    float64(seqCycles) / float64(out.Cycles),
				Aborts:     out.Aborts,
				Runs:       out.Runs,
			},
			Stats: tree,
		}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return fail("%v", err)
		}
		if err := os.WriteFile(*statsJSON, append(buf, '\n'), 0o644); err != nil {
			return fail("%v", err)
		}
	}

	if target.Prof().Enabled() {
		pk := kind
		if *system == "seq" {
			pk = paradigm.Sequential
		}
		p := target.Prof().Snapshot(spec.Name, *system, pk.String(), 0)
		if err := p.CheckInvariant(); err != nil {
			return fail("%v", err)
		}
		doc := prof.Doc{Schema: prof.Schema, Scale: *scale, Cores: *cores, Profiles: []prof.Profile{p}}
		if *profText {
			fmt.Fprintln(stdout)
			fmt.Fprint(stdout, p.Text())
		}
		if *profOut != "" {
			f, err := os.Create(*profOut)
			if err != nil {
				return fail("%v", err)
			}
			if err := prof.WriteDoc(f, doc); err != nil {
				return fail("%v", err)
			}
			if err := f.Close(); err != nil {
				return fail("%v", err)
			}
		}
		if *profFolded != "" {
			f, err := os.Create(*profFolded)
			if err != nil {
				return fail("%v", err)
			}
			if err := prof.WriteFolded(f, doc); err != nil {
				return fail("%v", err)
			}
			if err := f.Close(); err != nil {
				return fail("%v", err)
			}
		}
	}

	writeJSON := func(path string, v any) error {
		buf, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(path, append(buf, '\n'), 0o644)
	}
	label := spec.Name + "/" + *system

	if target.Series().Enabled() {
		target.FlushSeries()
		sr := target.Series().Snapshot(label)
		fmt.Fprintf(stdout, "time series:      %d samples at window %d -> %s\n",
			len(sr.Cycles), sr.Window, *seriesOut)
		doc := metrics.SeriesDoc{Schema: metrics.SeriesSchema, Scale: *scale, Cores: *cores,
			Series: []metrics.Series{sr}}
		if err := writeJSON(*seriesOut, doc); err != nil {
			return fail("%v", err)
		}
	}

	if target.Conflicts().Enabled() {
		g := target.Conflicts().Snapshot(label)
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, g.Text())
		if *conflictsOut != "" {
			doc := metrics.ConflictDoc{Schema: metrics.ConflictSchema, Scale: *scale, Cores: *cores,
				Graphs: []metrics.Graph{g}}
			if err := writeJSON(*conflictsOut, doc); err != nil {
				return fail("%v", err)
			}
		}
		if *conflictsDOT != "" {
			if err := os.WriteFile(*conflictsDOT, []byte(g.DOT()), 0o644); err != nil {
				return fail("%v", err)
			}
		}
	}

	if target.LatHists().Enabled() {
		lh := target.LatHists().Snapshot(label)
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, lh.Text())
		doc := metrics.HistDoc{Schema: metrics.HistSchema, Scale: *scale, Cores: *cores,
			Histograms: []metrics.LabeledHists{lh}}
		if err := writeJSON(*histOut, doc); err != nil {
			return fail("%v", err)
		}
	}
	return 0
}
