// Command hmtxsim runs one benchmark on the simulated HMTX machine and
// prints its timing and speculative-execution statistics.
//
// Usage:
//
//	hmtxsim -bench 164.gzip [-system hmtx|smtx-min|smtx-max|seq]
//	        [-paradigm auto|doall|doacross|dswp|psdswp]
//	        [-cores 4] [-scale 1] [-no-sla] [-vid-bits 6] [-eager-commit]
//	        [-sanitize]
//	        [-trace] [-trace-cats bus,txn,...] [-trace-out trace.json]
//	        [-stats] [-stats-json stats.json]
//	        [-prof] [-prof-out prof.json] [-prof-folded prof.folded]
//	        [-series series.json] [-series-window 2048]
//	        [-conflicts conflicts.json] [-conflicts-dot conflicts.dot]
//	        [-cascade-window 512] [-hist hist.json]
//	        [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// Observability (DESIGN.md §10): -trace streams a gem5-style text log of the
// selected event categories to stdout; -trace-out writes the same events as
// Chrome trace_event JSON (load in chrome://tracing or Perfetto). -stats
// dumps the hierarchical statistics registry as an aligned table; -stats-json
// writes the run summary plus the full registry as deterministic JSON.
//
// Profiling (DESIGN.md §13): -prof attributes every simulated cycle of every
// core to a bucket (compute, cache/memory latency by level, bus contention,
// commit, stalls, validation, abort, wasted re-execution) and prints the
// attribution tables; -prof-out writes the profile as an "hmtx-prof/v1"
// document for cmd/hmtxprof, and -prof-folded writes folded stacks for
// flamegraph tooling. All outputs are byte-identical across runs of the same
// configuration.
//
// Metrics (DESIGN.md §15): -series samples the run's counters every
// -series-window simulated cycles into an "hmtx-series/v1" time-series
// document; -conflicts records every who-aborted-whom edge and writes the
// "hmtx-conflicts/v1" conflict graph (with -conflicts-dot for a Graphviz
// rendering, cascades detected within -cascade-window cycles); -hist collects
// transaction latency histograms into an "hmtx-hist/v1" document. All three
// feed cmd/hmtxreport.
//
// hmtxsim -list prints the available benchmarks.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"hmtx/internal/engine"
	"hmtx/internal/hmtx"
	"hmtx/internal/metrics"
	"hmtx/internal/obs"
	"hmtx/internal/paradigm"
	"hmtx/internal/prof"
	"hmtx/internal/smtx"
	"hmtx/internal/vid"
	"hmtx/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// statsDoc is the -stats-json document ("hmtx-run/v1"): the run summary plus
// the nested statistics registry. Field order is fixed by the struct; the
// stats tree is a map, which encoding/json marshals with sorted keys, so the
// document is byte-identical across runs of the same configuration.
type statsDoc struct {
	Schema string         `json:"schema"`
	Run    runDoc         `json:"run"`
	Stats  map[string]any `json:"stats"`
}

type runDoc struct {
	Bench      string  `json:"bench"`
	System     string  `json:"system"`
	Paradigm   string  `json:"paradigm"`
	Cores      int     `json:"cores"`
	Scale      int     `json:"scale"`
	Iterations int     `json:"iterations"`
	Cycles     int64   `json:"cycles"`
	SeqCycles  int64   `json:"seq_cycles"`
	Speedup    float64 `json:"speedup"`
	Aborts     int     `json:"aborts"`
	Runs       int     `json:"runs"`
}

// run is main's testable body: it parses args, runs the simulation and
// writes all output to stdout/stderr, returning the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hmtxsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bench := fs.String("bench", "", "benchmark name (see -list)")
	system := fs.String("system", "hmtx", "execution system: hmtx, smtx-min, smtx-max, seq")
	par := fs.String("paradigm", "auto", "paradigm: auto, doall, doacross, dswp, psdswp")
	cores := fs.Int("cores", 4, "number of simulated cores")
	domains := fs.Int("domains", 1, "parallel simulation domains (1 = serial reference scheduler; results are byte-identical for any value)")
	scale := fs.Int("scale", 1, "iteration-count multiplier")
	noSLA := fs.Bool("no-sla", false, "disable speculative load acknowledgments (§5.1)")
	vidBits := fs.Uint("vid-bits", 6, "hardware VID width in bits (§4.6)")
	eager := fs.Bool("eager-commit", false, "use eager commit sweeps instead of lazy commits (§5.3)")
	sanitize := fs.Bool("sanitize", false, "run under MOESI-San: assert coherence invariants after every memory operation")
	trace := fs.Bool("trace", false, "stream a text event trace to stdout")
	traceCats := fs.String("trace-cats", "all", "comma-separated trace categories (bus,cache,version,overflow,sla,txn,commit,queue,engine) or \"all\"")
	traceOut := fs.String("trace-out", "", "write the event trace as Chrome trace_event JSON to this file")
	statsText := fs.Bool("stats", false, "dump the statistics registry as an aligned table")
	statsJSON := fs.String("stats-json", "", "write the run summary and statistics registry as JSON to this file")
	profText := fs.Bool("prof", false, "attribute every simulated cycle to a bucket and print the profile")
	profOut := fs.String("prof-out", "", "write the cycle profile as an hmtx-prof/v1 document to this file")
	profFolded := fs.String("prof-folded", "", "write the cycle profile as folded stacks (flamegraph input) to this file")
	seriesOut := fs.String("series", "", "write a windowed hmtx-series/v1 time-series document to this file")
	seriesWindow := fs.Int64("series-window", 0, "time-series sampling window in simulated cycles (0 = default)")
	conflictsOut := fs.String("conflicts", "", "write the hmtx-conflicts/v1 conflict-graph document to this file")
	conflictsDOT := fs.String("conflicts-dot", "", "write the conflict graph in Graphviz dot syntax to this file")
	cascadeWindow := fs.Int64("cascade-window", 0, "abort-cascade detection window in simulated cycles (0 = default)")
	histOut := fs.String("hist", "", "write the hmtx-hist/v1 latency-histogram document to this file")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write an allocation profile to this file on exit")
	list := fs.Bool("list", false, "list benchmarks and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "hmtxsim: "+format+"\n", a...)
		return 1
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fail("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail("%v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(stderr, "hmtxsim: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(stderr, "hmtxsim: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(stderr, "hmtxsim: %v\n", err)
			}
		}()
	}

	if *list {
		for _, s := range workloads.All() {
			smtxNote := ""
			if s.HasSMTX {
				smtxNote = " (SMTX comparison available)"
			}
			fmt.Fprintf(stdout, "%-12s %v%s\n", s.Name, s.Paradigm, smtxNote)
		}
		return 0
	}
	if *bench == "" {
		fs.Usage()
		return 2
	}
	spec, err := workloads.ByName(*bench)
	if err != nil {
		return fail("%v", err)
	}

	kind := spec.Paradigm
	switch *par {
	case "auto":
	case "doall":
		kind = paradigm.DOALL
	case "doacross":
		kind = paradigm.DOACROSS
	case "dswp":
		kind = paradigm.DSWP
	case "psdswp":
		kind = paradigm.PSDSWP
	default:
		return fail("unknown paradigm %q", *par)
	}
	switch *system {
	case "seq", "hmtx", "smtx-min", "smtx-max":
	default:
		return fail("unknown system %q", *system)
	}

	cfg := engine.DefaultConfig()
	cfg.Mem.Cores = *cores
	cfg.Mem.SLAEnabled = !*noSLA
	cfg.Mem.VIDSpace = vid.Space{Bits: *vidBits}
	cfg.Mem.EagerCommit = *eager
	cfg.Mem.Sanitize = *sanitize
	cfg.Domains = *domains
	if *domains < 1 {
		return fail("-domains must be >= 1")
	}

	seqSys := engine.New(cfg)
	sys := engine.New(cfg)

	// Instrument the system that executes the measured run; the sequential
	// reference run stays untraced unless it is the measured system.
	target := sys
	if *system == "seq" {
		target = seqSys
	}

	var tracer *obs.Tracer
	var txCol *obs.TxCollector
	var traceFile *os.File
	if *trace || *traceOut != "" {
		mask, err := obs.ParseCategories(*traceCats)
		if err != nil {
			return fail("%v", err)
		}
		tracer = obs.NewTracer(mask, 0)
		txCol = obs.NewTxCollector()
		tracer.Attach(txCol)
		if *traceOut != "" {
			traceFile, err = os.Create(*traceOut)
			if err != nil {
				return fail("%v", err)
			}
			tracer.Attach(obs.NewChromeSink(traceFile))
		}
		if *trace {
			tracer.Attach(obs.NewTextSink(stdout))
		}
		target.SetTracer(tracer)
	}

	var reg *obs.Registry
	if *statsText || *statsJSON != "" {
		reg = obs.NewRegistry()
		target.Register(reg)
		target.Mem.Register(reg, "memsys")
	}

	if *profText || *profOut != "" || *profFolded != "" {
		target.SetProf(prof.New())
	}

	if *seriesOut != "" {
		// The sampler's validation/commit columns read the profiler's live
		// buckets, so sampling implies profiling (a pure observer: it does
		// not change the simulated execution).
		if !target.Prof().Enabled() {
			target.SetProf(prof.New())
		}
		target.SetSeries(metrics.NewSampler(*seriesWindow))
	}
	if *conflictsOut != "" || *conflictsDOT != "" {
		target.SetConflicts(metrics.NewRecorder(*cascadeWindow))
	}
	if *histOut != "" {
		target.SetLatHists(metrics.NewLatHists())
	}

	// Sequential reference for the speedup.
	loop := spec.New(*scale)
	loop.Setup(seqSys.Mem)
	seqCycles := paradigm.RunSequential(seqSys, loop)

	var out hmtx.Outcome
	switch *system {
	case "seq":
		out = hmtx.Outcome{Cycles: seqCycles, Iterations: loop.Iters(), Runs: 1}
	case "hmtx":
		loop = spec.New(*scale)
		loop.Setup(sys.Mem)
		out = hmtx.Run(sys, loop, kind, *cores)
	case "smtx-min":
		loop = spec.New(*scale)
		loop.Setup(sys.Mem)
		out = smtx.Run(sys, loop, kind, *cores, smtx.MinSet, smtx.DefaultConfig())
	case "smtx-max":
		loop = spec.New(*scale)
		loop.Setup(sys.Mem)
		out = smtx.Run(sys, loop, kind, *cores, smtx.MaxSet, smtx.DefaultConfig())
	}

	if err := tracer.Close(); err != nil {
		return fail("closing trace sinks: %v", err)
	}
	if traceFile != nil {
		if err := traceFile.Close(); err != nil {
			return fail("closing %s: %v", *traceOut, err)
		}
	}

	if *domains > 1 {
		// Scheduler diagnostics go to stderr: stdout must stay byte-identical
		// to a serial (-domains=1) run of the same configuration.
		fmt.Fprintf(stderr, "hmtxsim: parallel scheduler: %d domains, %d rounds, %d fast ops\n",
			*domains, sys.Rounds(), sys.FastOps())
	}

	fmt.Fprintf(stdout, "benchmark:        %s (%v, %d iterations)\n", spec.Name, kind, out.Iterations)
	fmt.Fprintf(stdout, "system:           %s on %d cores\n", *system, *cores)
	fmt.Fprintf(stdout, "cycles:           %d (sequential: %d)\n", out.Cycles, seqCycles)
	fmt.Fprintf(stdout, "hot-loop speedup: %.2fx\n", float64(seqCycles)/float64(out.Cycles))
	fmt.Fprintf(stdout, "aborts:           %d (recovery runs: %d)\n", out.Aborts, out.Runs)

	if *system != "seq" {
		es, ms := sys.Stats(), sys.Mem.Stats()
		fmt.Fprintf(stdout, "instructions:     %d (%d branches, %d mispredicted)\n",
			es.Instructions, es.Branches, es.Mispredicts)
		if es.Txs > 0 {
			fmt.Fprintf(stdout, "transactions:     %d committed, %.0f spec accesses/tx\n",
				es.Txs, float64(es.SpecAccesses)/float64(es.Txs))
			fmt.Fprintf(stdout, "read/write sets:  %.1f kB / %.1f kB per tx (max combined %.1f kB)\n",
				float64(es.ReadSetBytes/es.Txs)/1024,
				float64(es.WriteSetBytes/es.Txs)/1024,
				float64(es.MaxCombinedBytes)/1024)
		}
		fmt.Fprintf(stdout, "memory system:    %d L1 hits, %d peer transfers, %d L2 hits, %d mem reads\n",
			ms.L1Hits, ms.PeerTransfers, ms.L2Hits, ms.MemReads)
		fmt.Fprintf(stdout, "speculation:      %d spec loads, %d spec stores, %d versions created\n",
			ms.SpecLoads, ms.SpecStores, ms.VersionsCreated)
		fmt.Fprintf(stdout, "SLAs:             %d sent, %d false misspeculations avoided\n",
			ms.SLAsSent, ms.AvoidedAborts)
		fmt.Fprintf(stdout, "VID resets:       %d\n", ms.VIDResets)
	}

	if txCol != nil {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, txCol.Summary().String())
		fmt.Fprintf(stdout, "trace events:     %d recorded (categories: %v)\n", tracer.Count(), tracer.Mask())
	}

	if *statsText {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, reg.Snapshot().Text())
	}

	if *statsJSON != "" {
		tree, err := reg.Snapshot().Nested()
		if err != nil {
			return fail("%v", err)
		}
		doc := statsDoc{
			Schema: "hmtx-run/v1",
			Run: runDoc{
				Bench:      spec.Name,
				System:     *system,
				Paradigm:   kind.String(),
				Cores:      *cores,
				Scale:      *scale,
				Iterations: out.Iterations,
				Cycles:     out.Cycles,
				SeqCycles:  seqCycles,
				Speedup:    float64(seqCycles) / float64(out.Cycles),
				Aborts:     out.Aborts,
				Runs:       out.Runs,
			},
			Stats: tree,
		}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return fail("%v", err)
		}
		if err := os.WriteFile(*statsJSON, append(buf, '\n'), 0o644); err != nil {
			return fail("%v", err)
		}
	}

	if target.Prof().Enabled() {
		pk := kind
		if *system == "seq" {
			pk = paradigm.Sequential
		}
		p := target.Prof().Snapshot(spec.Name, *system, pk.String(), 0)
		if err := p.CheckInvariant(); err != nil {
			return fail("%v", err)
		}
		doc := prof.Doc{Schema: prof.Schema, Scale: *scale, Cores: *cores, Profiles: []prof.Profile{p}}
		if *profText {
			fmt.Fprintln(stdout)
			fmt.Fprint(stdout, p.Text())
		}
		if *profOut != "" {
			f, err := os.Create(*profOut)
			if err != nil {
				return fail("%v", err)
			}
			if err := prof.WriteDoc(f, doc); err != nil {
				return fail("%v", err)
			}
			if err := f.Close(); err != nil {
				return fail("%v", err)
			}
		}
		if *profFolded != "" {
			f, err := os.Create(*profFolded)
			if err != nil {
				return fail("%v", err)
			}
			if err := prof.WriteFolded(f, doc); err != nil {
				return fail("%v", err)
			}
			if err := f.Close(); err != nil {
				return fail("%v", err)
			}
		}
	}

	writeJSON := func(path string, v any) error {
		buf, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(path, append(buf, '\n'), 0o644)
	}
	label := spec.Name + "/" + *system

	if target.Series().Enabled() {
		target.FlushSeries()
		sr := target.Series().Snapshot(label)
		fmt.Fprintf(stdout, "time series:      %d samples at window %d -> %s\n",
			len(sr.Cycles), sr.Window, *seriesOut)
		doc := metrics.SeriesDoc{Schema: metrics.SeriesSchema, Scale: *scale, Cores: *cores,
			Series: []metrics.Series{sr}}
		if err := writeJSON(*seriesOut, doc); err != nil {
			return fail("%v", err)
		}
	}

	if target.Conflicts().Enabled() {
		g := target.Conflicts().Snapshot(label)
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, g.Text())
		if *conflictsOut != "" {
			doc := metrics.ConflictDoc{Schema: metrics.ConflictSchema, Scale: *scale, Cores: *cores,
				Graphs: []metrics.Graph{g}}
			if err := writeJSON(*conflictsOut, doc); err != nil {
				return fail("%v", err)
			}
		}
		if *conflictsDOT != "" {
			if err := os.WriteFile(*conflictsDOT, []byte(g.DOT()), 0o644); err != nil {
				return fail("%v", err)
			}
		}
	}

	if target.LatHists().Enabled() {
		lh := target.LatHists().Snapshot(label)
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, lh.Text())
		doc := metrics.HistDoc{Schema: metrics.HistSchema, Scale: *scale, Cores: *cores,
			Histograms: []metrics.LabeledHists{lh}}
		if err := writeJSON(*histOut, doc); err != nil {
			return fail("%v", err)
		}
	}
	return 0
}
