// Command hmtxsim runs one benchmark on the simulated HMTX machine and
// prints its timing and speculative-execution statistics.
//
// Usage:
//
//	hmtxsim -bench 164.gzip [-system hmtx|smtx-min|smtx-max|seq]
//	        [-paradigm auto|doall|doacross|dswp|psdswp]
//	        [-cores 4] [-scale 1] [-no-sla] [-vid-bits 6] [-eager-commit]
//	        [-sanitize]
//
// hmtxsim -list prints the available benchmarks.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hmtx/internal/engine"
	"hmtx/internal/hmtx"
	"hmtx/internal/paradigm"
	"hmtx/internal/smtx"
	"hmtx/internal/vid"
	"hmtx/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hmtxsim: ")
	bench := flag.String("bench", "", "benchmark name (see -list)")
	system := flag.String("system", "hmtx", "execution system: hmtx, smtx-min, smtx-max, seq")
	par := flag.String("paradigm", "auto", "paradigm: auto, doall, doacross, dswp, psdswp")
	cores := flag.Int("cores", 4, "number of simulated cores")
	scale := flag.Int("scale", 1, "iteration-count multiplier")
	noSLA := flag.Bool("no-sla", false, "disable speculative load acknowledgments (§5.1)")
	vidBits := flag.Uint("vid-bits", 6, "hardware VID width in bits (§4.6)")
	eager := flag.Bool("eager-commit", false, "use eager commit sweeps instead of lazy commits (§5.3)")
	sanitize := flag.Bool("sanitize", false, "run under MOESI-San: assert coherence invariants after every memory operation")
	list := flag.Bool("list", false, "list benchmarks and exit")
	flag.Parse()

	if *list {
		for _, s := range workloads.All() {
			smtxNote := ""
			if s.HasSMTX {
				smtxNote = " (SMTX comparison available)"
			}
			fmt.Printf("%-12s %v%s\n", s.Name, s.Paradigm, smtxNote)
		}
		return
	}
	if *bench == "" {
		flag.Usage()
		os.Exit(2)
	}
	spec, err := workloads.ByName(*bench)
	if err != nil {
		log.Fatal(err)
	}

	kind := spec.Paradigm
	switch *par {
	case "auto":
	case "doall":
		kind = paradigm.DOALL
	case "doacross":
		kind = paradigm.DOACROSS
	case "dswp":
		kind = paradigm.DSWP
	case "psdswp":
		kind = paradigm.PSDSWP
	default:
		log.Fatalf("unknown paradigm %q", *par)
	}

	cfg := engine.DefaultConfig()
	cfg.Mem.Cores = *cores
	cfg.Mem.SLAEnabled = !*noSLA
	cfg.Mem.VIDSpace = vid.Space{Bits: *vidBits}
	cfg.Mem.EagerCommit = *eager
	cfg.Mem.Sanitize = *sanitize

	// Sequential reference for the speedup.
	seqSys := engine.New(cfg)
	loop := spec.New(*scale)
	loop.Setup(seqSys.Mem)
	seqCycles := paradigm.RunSequential(seqSys, loop)

	sys := engine.New(cfg)
	loop = spec.New(*scale)
	loop.Setup(sys.Mem)

	var out hmtx.Outcome
	switch *system {
	case "seq":
		out = hmtx.Outcome{Cycles: seqCycles, Iterations: loop.Iters(), Runs: 1}
	case "hmtx":
		out = hmtx.Run(sys, loop, kind, *cores)
	case "smtx-min":
		out = smtx.Run(sys, loop, kind, *cores, smtx.MinSet, smtx.DefaultConfig())
	case "smtx-max":
		out = smtx.Run(sys, loop, kind, *cores, smtx.MaxSet, smtx.DefaultConfig())
	default:
		log.Fatalf("unknown system %q", *system)
	}

	fmt.Printf("benchmark:        %s (%v, %d iterations)\n", spec.Name, kind, out.Iterations)
	fmt.Printf("system:           %s on %d cores\n", *system, *cores)
	fmt.Printf("cycles:           %d (sequential: %d)\n", out.Cycles, seqCycles)
	fmt.Printf("hot-loop speedup: %.2fx\n", float64(seqCycles)/float64(out.Cycles))
	fmt.Printf("aborts:           %d (recovery runs: %d)\n", out.Aborts, out.Runs)

	if *system != "seq" {
		es, ms := sys.Stats(), sys.Mem.Stats()
		fmt.Printf("instructions:     %d (%d branches, %d mispredicted)\n",
			es.Instructions, es.Branches, es.Mispredicts)
		if es.Txs > 0 {
			fmt.Printf("transactions:     %d committed, %.0f spec accesses/tx\n",
				es.Txs, float64(es.SpecAccesses)/float64(es.Txs))
			fmt.Printf("read/write sets:  %.1f kB / %.1f kB per tx (max combined %.1f kB)\n",
				float64(es.ReadSetBytes/es.Txs)/1024,
				float64(es.WriteSetBytes/es.Txs)/1024,
				float64(es.MaxCombinedBytes)/1024)
		}
		fmt.Printf("memory system:    %d L1 hits, %d peer transfers, %d L2 hits, %d mem reads\n",
			ms.L1Hits, ms.PeerTransfers, ms.L2Hits, ms.MemReads)
		fmt.Printf("speculation:      %d spec loads, %d spec stores, %d versions created\n",
			ms.SpecLoads, ms.SpecStores, ms.VersionsCreated)
		fmt.Printf("SLAs:             %d sent, %d false misspeculations avoided\n",
			ms.SLAsSent, ms.AvoidedAborts)
		fmt.Printf("VID resets:       %d\n", ms.VIDResets)
	}
}
