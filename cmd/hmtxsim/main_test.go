package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSystemsEndToEnd runs one small benchmark through each execution
// system and checks the human output, the exit status and the -stats-json
// document.
func TestRunSystemsEndToEnd(t *testing.T) {
	for _, system := range []string{"hmtx", "smtx-min", "seq"} {
		t.Run(system, func(t *testing.T) {
			sj := filepath.Join(t.TempDir(), "stats.json")
			var out, errb bytes.Buffer
			code := run([]string{"-bench", "052.alvinn", "-system", system, "-cores", "4", "-stats-json", sj}, &out, &errb)
			if code != 0 {
				t.Fatalf("exit %d, stderr: %s", code, errb.String())
			}
			for _, want := range []string{"benchmark:", "cycles:", "hot-loop speedup:"} {
				if !strings.Contains(out.String(), want) {
					t.Errorf("output missing %q:\n%s", want, out.String())
				}
			}

			buf, err := os.ReadFile(sj)
			if err != nil {
				t.Fatal(err)
			}
			var doc struct {
				Schema string         `json:"schema"`
				Run    map[string]any `json:"run"`
				Stats  map[string]any `json:"stats"`
			}
			if err := json.Unmarshal(buf, &doc); err != nil {
				t.Fatalf("invalid stats JSON: %v", err)
			}
			if doc.Schema != "hmtx-run/v1" {
				t.Errorf("schema = %q", doc.Schema)
			}
			if doc.Run["system"] != system || doc.Run["bench"] != "052.alvinn" {
				t.Errorf("run doc = %v", doc.Run)
			}
			if c, _ := doc.Run["cycles"].(float64); c <= 0 {
				t.Errorf("cycles = %v", doc.Run["cycles"])
			}
			for _, key := range []string{"engine", "memsys"} {
				sub, ok := doc.Stats[key].(map[string]any)
				if !ok {
					t.Fatalf("stats missing %q subtree", key)
				}
				if key == "memsys" {
					if _, ok := sub["l1[0]"]; !ok {
						t.Errorf("memsys stats missing per-cache entries: %v", sub)
					}
				}
			}
			if system == "hmtx" {
				eng := doc.Stats["engine"].(map[string]any)
				if txc, _ := eng["tx"].(map[string]any); txc["count"].(float64) == 0 {
					t.Errorf("no committed transactions in stats: %v", eng)
				}
			}
		})
	}
}

// TestRunDeterministic checks the acceptance criterion of DESIGN.md §10:
// both the stats JSON and the Chrome trace are byte-identical across two
// runs of the same configuration, and the trace is valid JSON.
func TestRunDeterministic(t *testing.T) {
	do := func() (stdout, stats, trace []byte) {
		dir := t.TempDir()
		sj := filepath.Join(dir, "stats.json")
		tj := filepath.Join(dir, "trace.json")
		var out, errb bytes.Buffer
		code := run([]string{"-bench", "052.alvinn", "-cores", "4",
			"-stats-json", sj, "-trace-out", tj, "-trace-cats", "txn,commit,bus"}, &out, &errb)
		if code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, errb.String())
		}
		stats, err := os.ReadFile(sj)
		if err != nil {
			t.Fatal(err)
		}
		trace, err = os.ReadFile(tj)
		if err != nil {
			t.Fatal(err)
		}
		return out.Bytes(), stats, trace
	}
	o1, s1, t1 := do()
	o2, s2, t2 := do()
	if !bytes.Equal(s1, s2) {
		t.Error("stats JSON differs across identical runs")
	}
	if !bytes.Equal(t1, t2) {
		t.Error("trace JSON differs across identical runs")
	}
	if !bytes.Equal(o1, o2) {
		t.Error("stdout differs across identical runs")
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(t1, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace contains no events")
	}
	if !strings.Contains(string(o1), "per-transaction timeline") {
		t.Errorf("tracing run missing timeline summary:\n%s", o1)
	}
}

func TestRunBadInput(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-bench", "no-such-bench"}, &out, &errb); code != 1 {
		t.Errorf("unknown bench: exit %d", code)
	}
	if code := run([]string{"-bench", "052.alvinn", "-system", "bogus"}, &out, &errb); code != 1 {
		t.Errorf("unknown system: exit %d", code)
	}
	if code := run([]string{"-bench", "052.alvinn", "-trace", "-trace-cats", "bogus"}, &out, &errb); code != 1 {
		t.Errorf("unknown category: exit %d", code)
	}
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("missing bench: exit %d", code)
	}
}
