package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSystemsEndToEnd runs one small benchmark through each execution
// system and checks the human output, the exit status and the -stats-json
// document.
func TestRunSystemsEndToEnd(t *testing.T) {
	for _, system := range []string{"hmtx", "smtx-min", "seq"} {
		t.Run(system, func(t *testing.T) {
			sj := filepath.Join(t.TempDir(), "stats.json")
			var out, errb bytes.Buffer
			code := run([]string{"-bench", "052.alvinn", "-system", system, "-cores", "4", "-stats-json", sj}, &out, &errb)
			if code != 0 {
				t.Fatalf("exit %d, stderr: %s", code, errb.String())
			}
			for _, want := range []string{"benchmark:", "cycles:", "hot-loop speedup:"} {
				if !strings.Contains(out.String(), want) {
					t.Errorf("output missing %q:\n%s", want, out.String())
				}
			}

			buf, err := os.ReadFile(sj)
			if err != nil {
				t.Fatal(err)
			}
			var doc struct {
				Schema string         `json:"schema"`
				Run    map[string]any `json:"run"`
				Stats  map[string]any `json:"stats"`
			}
			if err := json.Unmarshal(buf, &doc); err != nil {
				t.Fatalf("invalid stats JSON: %v", err)
			}
			if doc.Schema != "hmtx-run/v1" {
				t.Errorf("schema = %q", doc.Schema)
			}
			if doc.Run["system"] != system || doc.Run["bench"] != "052.alvinn" {
				t.Errorf("run doc = %v", doc.Run)
			}
			if c, _ := doc.Run["cycles"].(float64); c <= 0 {
				t.Errorf("cycles = %v", doc.Run["cycles"])
			}
			for _, key := range []string{"engine", "memsys"} {
				sub, ok := doc.Stats[key].(map[string]any)
				if !ok {
					t.Fatalf("stats missing %q subtree", key)
				}
				if key == "memsys" {
					if _, ok := sub["l1[0]"]; !ok {
						t.Errorf("memsys stats missing per-cache entries: %v", sub)
					}
				}
			}
			if system == "hmtx" {
				eng := doc.Stats["engine"].(map[string]any)
				if txc, _ := eng["tx"].(map[string]any); txc["count"].(float64) == 0 {
					t.Errorf("no committed transactions in stats: %v", eng)
				}
			}
		})
	}
}

// TestRunDeterministic checks the acceptance criterion of DESIGN.md §10:
// both the stats JSON and the Chrome trace are byte-identical across two
// runs of the same configuration, and the trace is valid JSON.
func TestRunDeterministic(t *testing.T) {
	do := func() (stdout, stats, trace []byte) {
		dir := t.TempDir()
		sj := filepath.Join(dir, "stats.json")
		tj := filepath.Join(dir, "trace.json")
		var out, errb bytes.Buffer
		code := run([]string{"-bench", "052.alvinn", "-cores", "4",
			"-stats-json", sj, "-trace-out", tj, "-trace-cats", "txn,commit,bus"}, &out, &errb)
		if code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, errb.String())
		}
		stats, err := os.ReadFile(sj)
		if err != nil {
			t.Fatal(err)
		}
		trace, err = os.ReadFile(tj)
		if err != nil {
			t.Fatal(err)
		}
		return out.Bytes(), stats, trace
	}
	o1, s1, t1 := do()
	o2, s2, t2 := do()
	if !bytes.Equal(s1, s2) {
		t.Error("stats JSON differs across identical runs")
	}
	if !bytes.Equal(t1, t2) {
		t.Error("trace JSON differs across identical runs")
	}
	if !bytes.Equal(o1, o2) {
		t.Error("stdout differs across identical runs")
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(t1, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace contains no events")
	}
	if !strings.Contains(string(o1), "per-transaction timeline") {
		t.Errorf("tracing run missing timeline summary:\n%s", o1)
	}
}

func TestRunBadInput(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-bench", "no-such-bench"}, &out, &errb); code != 1 {
		t.Errorf("unknown bench: exit %d", code)
	}
	if code := run([]string{"-bench", "052.alvinn", "-system", "bogus"}, &out, &errb); code != 1 {
		t.Errorf("unknown system: exit %d", code)
	}
	if code := run([]string{"-bench", "052.alvinn", "-trace", "-trace-cats", "bogus"}, &out, &errb); code != 1 {
		t.Errorf("unknown category: exit %d", code)
	}
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("missing bench: exit %d", code)
	}
}

// TestRunMetricsOutputs verifies the -series/-conflicts/-hist flags: each
// writes a well-formed schema-tagged document, the DOT output is valid dot
// syntax, and all are byte-identical across identical runs.
func TestRunMetricsOutputs(t *testing.T) {
	do := func(system string) (series, conflicts, hist, dot []byte) {
		dir := t.TempDir()
		sp := filepath.Join(dir, "series.json")
		cp := filepath.Join(dir, "conflicts.json")
		hp := filepath.Join(dir, "hist.json")
		dp := filepath.Join(dir, "conflicts.dot")
		var out, errb bytes.Buffer
		code := run([]string{"-bench", "052.alvinn", "-system", system, "-cores", "4",
			"-series", sp, "-series-window", "1024",
			"-conflicts", cp, "-conflicts-dot", dp, "-hist", hp}, &out, &errb)
		if code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, errb.String())
		}
		read := func(p string) []byte {
			buf, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			return buf
		}
		return read(sp), read(cp), read(hp), read(dp)
	}

	s1, c1, h1, d1 := do("hmtx")
	s2, c2, h2, d2 := do("hmtx")
	for _, eq := range []struct {
		name string
		a, b []byte
	}{{"series", s1, s2}, {"conflicts", c1, c2}, {"hist", h1, h2}, {"dot", d1, d2}} {
		if !bytes.Equal(eq.a, eq.b) {
			t.Errorf("%s differs across identical runs", eq.name)
		}
	}

	var sd struct {
		Schema string `json:"schema"`
		Series []struct {
			Label  string  `json:"label"`
			Cycles []int64 `json:"cycles"`
			Cols   []struct {
				Name string `json:"name"`
			} `json:"columns"`
		} `json:"series"`
	}
	if err := json.Unmarshal(s1, &sd); err != nil {
		t.Fatalf("series JSON: %v", err)
	}
	if sd.Schema != "hmtx-series/v1" || len(sd.Series) != 1 {
		t.Fatalf("series doc = %+v", sd)
	}
	if sd.Series[0].Label != "052.alvinn/hmtx" || len(sd.Series[0].Cycles) == 0 {
		t.Errorf("series = %+v", sd.Series[0])
	}
	names := map[string]bool{}
	for _, c := range sd.Series[0].Cols {
		names[c.Name] = true
	}
	for _, want := range []string{"instructions", "txs_committed", "aborts", "validation_cycles", "commit_cycles"} {
		if !names[want] {
			t.Errorf("series missing column %q", want)
		}
	}

	var cd struct {
		Schema string `json:"schema"`
		Graphs []struct {
			Edges []any `json:"edges"`
		} `json:"graphs"`
	}
	if err := json.Unmarshal(c1, &cd); err != nil {
		t.Fatalf("conflicts JSON: %v", err)
	}
	if cd.Schema != "hmtx-conflicts/v1" || len(cd.Graphs) != 1 {
		t.Fatalf("conflict doc = %+v", cd)
	}
	if cd.Graphs[0].Edges == nil {
		t.Error("edges should be [] even when empty, not null")
	}

	var hd struct {
		Schema     string `json:"schema"`
		Histograms []struct {
			Hists []struct {
				Name  string `json:"name"`
				Total uint64 `json:"total"`
			} `json:"hists"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(h1, &hd); err != nil {
		t.Fatalf("hist JSON: %v", err)
	}
	if hd.Schema != "hmtx-hist/v1" || len(hd.Histograms) != 1 || len(hd.Histograms[0].Hists) != 3 {
		t.Fatalf("hist doc = %+v", hd)
	}
	if hd.Histograms[0].Hists[0].Name != "open_to_commit" || hd.Histograms[0].Hists[0].Total == 0 {
		t.Errorf("open_to_commit hist = %+v", hd.Histograms[0].Hists[0])
	}

	if !strings.HasPrefix(string(d1), "digraph") || !strings.HasSuffix(string(d1), "}\n") {
		t.Errorf("dot output malformed:\n%s", d1)
	}

	// SMTX runs must populate the validation histogram (§2.3): the paradigm
	// shift hmtxreport charts.
	_, _, hs, _ := do("smtx-min")
	if err := json.Unmarshal(hs, &hd); err != nil {
		t.Fatal(err)
	}
	if hd.Histograms[0].Hists[1].Name != "validation" || hd.Histograms[0].Hists[1].Total == 0 {
		t.Errorf("smtx-min validation hist = %+v", hd.Histograms[0].Hists[1])
	}
}

// TestCheckpointResumeCLI: a run halted at a mid-run checkpoint and resumed
// produces byte-identical stdout and output documents to the same segmented
// run left uninterrupted (the hmtx-ckpt/v1 contract, DESIGN.md §18).
func TestCheckpointResumeCLI(t *testing.T) {
	outputs := func(dir string) []string {
		return []string{
			"-prof-out", filepath.Join(dir, "prof.json"),
			"-series", filepath.Join(dir, "series.json"),
			"-conflicts", filepath.Join(dir, "conflicts.json"),
			"-hist", filepath.Join(dir, "hist.json"),
			// The stats registry rides along: its histograms are carried in
			// the checkpoint's obs_hists and restored after re-registration.
			"-stats-json", filepath.Join(dir, "stats.json"),
		}
	}
	base := []string{"-bench", "052.alvinn", "-cores", "4", "-ckpt-every", "10"}

	fullDir := t.TempDir()
	var fullOut, errb bytes.Buffer
	if code := run(append(append([]string{}, base...), outputs(fullDir)...), &fullOut, &errb); code != 0 {
		t.Fatalf("full run: exit %d, stderr: %s", code, errb.String())
	}

	haltDir := t.TempDir()
	ckptFile := filepath.Join(haltDir, "ckpt.json")
	var haltOut bytes.Buffer
	errb.Reset()
	args := append(append([]string{}, base...), "-ckpt-out", ckptFile, "-ckpt-halt")
	args = append(args, outputs(haltDir)...)
	if code := run(args, &haltOut, &errb); code != 0 {
		t.Fatalf("halted run: exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(haltOut.String(), "checkpoint: halted at iteration 10") {
		t.Fatalf("halted run output:\n%s", haltOut.String())
	}
	if _, err := os.Stat(filepath.Join(haltDir, "prof.json")); !os.IsNotExist(err) {
		t.Error("halted run should not write output documents")
	}

	resDir := t.TempDir()
	var resOut bytes.Buffer
	errb.Reset()
	if code := run(append([]string{"-resume", ckptFile}, outputs(resDir)...), &resOut, &errb); code != 0 {
		t.Fatalf("resumed run: exit %d, stderr: %s", code, errb.String())
	}

	// stdout embeds the -series path; normalise the directories away before
	// comparing.
	norm := func(s, dir string) string { return strings.ReplaceAll(s, dir, "DIR") }
	if got, want := norm(resOut.String(), resDir), norm(fullOut.String(), fullDir); got != want {
		t.Errorf("resumed stdout differs from full run:\n--- resumed\n%s\n--- full\n%s", got, want)
	}
	for _, name := range []string{"prof.json", "series.json", "conflicts.json", "hist.json", "stats.json"} {
		full, err := os.ReadFile(filepath.Join(fullDir, name))
		if err != nil {
			t.Fatal(err)
		}
		res, err := os.ReadFile(filepath.Join(resDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(full, res) {
			t.Errorf("%s differs between full and resumed run", name)
		}
	}
}

// TestCheckpointFlagValidation covers the resume/instrument mismatch errors.
func TestCheckpointFlagValidation(t *testing.T) {
	dir := t.TempDir()
	ckptFile := filepath.Join(dir, "ckpt.json")
	var out, errb bytes.Buffer
	code := run([]string{"-bench", "052.alvinn", "-cores", "4", "-ckpt-every", "10",
		"-ckpt-out", ckptFile, "-ckpt-halt",
		"-hist", filepath.Join(dir, "hist.json")}, &out, &errb)
	if code != 0 {
		t.Fatalf("halted run: exit %d, stderr: %s", code, errb.String())
	}

	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"instrument mismatch", []string{"-resume", ckptFile}, "latency histograms"},
		{"registry mismatch", []string{"-resume", ckptFile, "-hist", filepath.Join(dir, "h3.json"),
			"-stats-json", filepath.Join(dir, "s3.json")}, "statistics registry"},
		{"fixed flag", []string{"-resume", ckptFile, "-cores", "8", "-hist", filepath.Join(dir, "h2.json")}, "conflicts with -resume"},
		{"ckpt on seq", []string{"-bench", "052.alvinn", "-system", "seq", "-ckpt-every", "5"}, "requires -system hmtx"},
		{"halt without every", []string{"-bench", "052.alvinn", "-ckpt-halt"}, "need -ckpt-every"},
	} {
		out.Reset()
		errb.Reset()
		if code := run(tc.args, &out, &errb); code == 0 {
			t.Errorf("%s: want nonzero exit", tc.name)
		} else if !strings.Contains(errb.String(), tc.want) {
			t.Errorf("%s: stderr %q does not mention %q", tc.name, errb.String(), tc.want)
		}
	}
}
