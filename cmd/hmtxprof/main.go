// Command hmtxprof inspects and compares hmtx-prof/v1 cycle-attribution
// profiles written by hmtxsim -prof-out or experiments -prof.
//
// Usage:
//
//	hmtxprof show profile.json            pretty-print every profile
//	hmtxprof diff old.json new.json       per-bucket deltas, old vs new
//	hmtxprof fold profile.json            folded stacks (flamegraph input)
//
// show renders each profile's bucket table (with per-core columns), its
// contention heatmap and its re-execution records. diff pairs profiles by
// label — or directly, when both documents hold exactly one profile — and
// prints each bucket's cycle delta and share shift, which is how the HMTX vs
// SMTX validation/commit overhead trade (§6) reads off two profile files.
// fold emits "label;coreN;bucket cycles" lines for flamegraph tooling.
package main

import (
	"fmt"
	"io"
	"os"

	"hmtx/internal/prof"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(stderr io.Writer) int {
	fmt.Fprint(stderr, "usage: hmtxprof show FILE | diff OLD NEW | fold FILE\n")
	return 2
}

func run(args []string, stdout, stderr io.Writer) int {
	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "hmtxprof: "+format+"\n", a...)
		return 1
	}
	if len(args) < 1 {
		return usage(stderr)
	}
	switch args[0] {
	case "show":
		if len(args) != 2 {
			return usage(stderr)
		}
		doc, err := readDoc(args[1])
		if err != nil {
			return fail("%v", err)
		}
		for i := range doc.Profiles {
			p := &doc.Profiles[i]
			if err := p.CheckInvariant(); err != nil {
				return fail("%v", err)
			}
			if i > 0 {
				fmt.Fprintln(stdout)
			}
			fmt.Fprint(stdout, p.Text())
		}
		return 0

	case "diff":
		if len(args) != 3 {
			return usage(stderr)
		}
		oldDoc, err := readDoc(args[1])
		if err != nil {
			return fail("%v", err)
		}
		newDoc, err := readDoc(args[2])
		if err != nil {
			return fail("%v", err)
		}
		pairs, err := pair(oldDoc, newDoc)
		if err != nil {
			return fail("%v", err)
		}
		for i, pr := range pairs {
			if i > 0 {
				fmt.Fprintln(stdout)
			}
			fmt.Fprint(stdout, prof.DiffText(pr[0], pr[1]))
		}
		return 0

	case "fold":
		if len(args) != 2 {
			return usage(stderr)
		}
		doc, err := readDoc(args[1])
		if err != nil {
			return fail("%v", err)
		}
		if err := prof.WriteFolded(stdout, doc); err != nil {
			return fail("%v", err)
		}
		return 0
	}
	return usage(stderr)
}

func readDoc(path string) (prof.Doc, error) {
	f, err := os.Open(path)
	if err != nil {
		return prof.Doc{}, err
	}
	defer f.Close()
	return prof.ReadDoc(f)
}

// pair matches old and new profiles for diffing. Two single-profile documents
// pair directly whatever their labels (the hmtxsim HMTX-vs-SMTX use case);
// otherwise profiles pair by label, in the old document's order, and labels
// present on only one side are an error so a diff never silently drops a
// workload.
func pair(oldDoc, newDoc prof.Doc) ([][2]*prof.Profile, error) {
	if len(oldDoc.Profiles) == 1 && len(newDoc.Profiles) == 1 {
		return [][2]*prof.Profile{{&oldDoc.Profiles[0], &newDoc.Profiles[0]}}, nil
	}
	byLabel := make(map[string]*prof.Profile, len(newDoc.Profiles))
	for i := range newDoc.Profiles {
		byLabel[newDoc.Profiles[i].Label] = &newDoc.Profiles[i]
	}
	var pairs [][2]*prof.Profile
	for i := range oldDoc.Profiles {
		p := &oldDoc.Profiles[i]
		np, ok := byLabel[p.Label]
		if !ok {
			return nil, fmt.Errorf("profile %q exists only in the old document", p.Label)
		}
		delete(byLabel, p.Label)
		pairs = append(pairs, [2]*prof.Profile{p, np})
	}
	for i := range newDoc.Profiles {
		if _, stray := byLabel[newDoc.Profiles[i].Label]; stray {
			return nil, fmt.Errorf("profile %q exists only in the new document", newDoc.Profiles[i].Label)
		}
	}
	return pairs, nil
}
