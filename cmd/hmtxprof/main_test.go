package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hmtx/internal/prof"
)

func writeDoc(t *testing.T, dir, name string, profiles ...prof.Profile) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	doc := prof.Doc{Schema: prof.Schema, Scale: 1, Cores: 2, Profiles: profiles}
	if err := prof.WriteDoc(f, doc); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func profileWith(label string, buckets map[prof.Bucket]int64) prof.Profile {
	c := prof.New()
	var total int64
	for b, v := range buckets {
		c.Charge(0, 1, b, v)
		total += v
	}
	c.CoreDone(0, total)
	c.RunEnd(total, false, 1)
	parts := strings.SplitN(label, "/", 2)
	return c.Snapshot(parts[0], parts[1], "DOALL", 0)
}

func TestShowDiffFold(t *testing.T) {
	dir := t.TempDir()
	a := writeDoc(t, dir, "a.json",
		profileWith("wl/hmtx", map[prof.Bucket]int64{prof.Compute: 100, prof.Commit: 30}))
	b := writeDoc(t, dir, "b.json",
		profileWith("wl/smtx-max", map[prof.Bucket]int64{prof.Compute: 100, prof.Validation: 250}))

	var out, errb bytes.Buffer
	if code := run([]string{"show", a}, &out, &errb); code != 0 {
		t.Fatalf("show exited %d: %s", code, errb.String())
	}
	for _, frag := range []string{"wl/hmtx", "compute", "commit"} {
		if !strings.Contains(out.String(), frag) {
			t.Errorf("show output missing %q:\n%s", frag, out.String())
		}
	}

	// Single-profile documents diff directly even with different labels:
	// the HMTX-vs-SMTX comparison.
	out.Reset()
	if code := run([]string{"diff", a, b}, &out, &errb); code != 0 {
		t.Fatalf("diff exited %d: %s", code, errb.String())
	}
	for _, frag := range []string{"wl/hmtx -> wl/smtx-max", "validation", "+250", "commit", "-30"} {
		if !strings.Contains(out.String(), frag) {
			t.Errorf("diff output missing %q:\n%s", frag, out.String())
		}
	}

	out.Reset()
	if code := run([]string{"fold", a}, &out, &errb); code != 0 {
		t.Fatalf("fold exited %d: %s", code, errb.String())
	}
	want := "wl/hmtx;core0;compute 100\nwl/hmtx;core0;commit 30\n"
	if out.String() != want {
		t.Errorf("fold output %q, want %q", out.String(), want)
	}
}

func TestDiffPairsByLabel(t *testing.T) {
	dir := t.TempDir()
	p1 := profileWith("w1/hmtx", map[prof.Bucket]int64{prof.Compute: 10})
	p2 := profileWith("w2/hmtx", map[prof.Bucket]int64{prof.Compute: 20})
	p2b := profileWith("w2/hmtx", map[prof.Bucket]int64{prof.Compute: 25})
	p1b := profileWith("w1/hmtx", map[prof.Bucket]int64{prof.Compute: 15})

	a := writeDoc(t, dir, "a.json", p1, p2)
	// Reversed order in the new document: pairing is by label, output
	// follows the old document's order.
	b := writeDoc(t, dir, "b.json", p2b, p1b)
	var out, errb bytes.Buffer
	if code := run([]string{"diff", a, b}, &out, &errb); code != 0 {
		t.Fatalf("diff exited %d: %s", code, errb.String())
	}
	w1 := strings.Index(out.String(), "w1/hmtx")
	w2 := strings.Index(out.String(), "w2/hmtx")
	if w1 < 0 || w2 < 0 || w1 > w2 {
		t.Errorf("diff order wrong (w1 at %d, w2 at %d):\n%s", w1, w2, out.String())
	}

	// A label on only one side is an error, not a silent drop.
	c := writeDoc(t, dir, "c.json", p1)
	out.Reset()
	errb.Reset()
	if code := run([]string{"diff", a, c}, &out, &errb); code != 1 {
		t.Fatalf("diff with missing label exited %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "w2/hmtx") {
		t.Errorf("error does not name the unmatched label: %s", errb.String())
	}
}

func TestBadUsageAndSchema(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no args exited %d, want 2", code)
	}
	if code := run([]string{"frobnicate"}, &out, &errb); code != 2 {
		t.Errorf("unknown subcommand exited %d, want 2", code)
	}

	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"hmtx-bench/v1"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	errb.Reset()
	if code := run([]string{"show", bad}, &out, &errb); code != 1 {
		t.Errorf("wrong schema exited %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "schema") {
		t.Errorf("error does not mention the schema: %s", errb.String())
	}
}
