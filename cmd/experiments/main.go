// Command experiments regenerates the tables and figures of the paper's
// evaluation (§6) on the simulated 4-core HMTX machine.
//
// Usage:
//
//	experiments [-scale N] [-cores N] [-parallel N] [-domains N]
//	            [-only fig8,table1,...]
//	            [-ablations] [-json BENCH_run.json] [-prof PROF_run.json]
//	            [-series SERIES_run.json] [-series-window N]
//	            [-conflicts CONFLICTS_run.json] [-hist HIST_run.json]
//	            [-ckpt-every N] [-ckpt-out ckpt.json] [-ckpt-halt]
//	            [-resume ckpt.json]
//	            [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// With no -only list it runs everything: Figure 1, Figure 2, Table 1,
// Table 2, Figure 8, Figure 9 and Table 3, plus the design-choice ablations
// when -ablations is set. -json additionally writes the raw measurements as
// a deterministic "hmtx-bench/v1" document (see EXPERIMENTS.md for how to
// diff two of them); -prof attaches the cycle-attribution profiler to every
// simulation and writes the suite's profiles as an "hmtx-prof/v1" document
// (inspect or diff them with cmd/hmtxprof). -series, -conflicts and -hist
// attach the DESIGN.md §15 metric instruments to every simulation and write
// the suite's time-series ("hmtx-series/v1"), conflict-graph
// ("hmtx-conflicts/v1") and latency-histogram ("hmtx-hist/v1") documents,
// which cmd/hmtxreport turns into an HTML report. All documents are
// byte-identical at every -parallel and -domains setting: -parallel runs
// whole simulations concurrently, while -domains shards the cores of each
// simulation across goroutines inside conservative time quanta
// (DESIGN.md §16).
//
// Checkpointing (DESIGN.md §18): with -parallel 1, -ckpt-every N writes an
// hmtx-ckpt/v1 suite checkpoint to -ckpt-out after every N completed
// (benchmark, mode) units; -ckpt-halt stops the suite at the first
// checkpoint, and -resume continues it, re-running only the remaining units.
// Because every unit owns its own simulated machine, a resumed suite's
// documents are byte-identical to an uninterrupted run's.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"hmtx/internal/ckpt"
	"hmtx/internal/experiments"
	"hmtx/internal/prof"
	"hmtx/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	scale := flag.Int("scale", 1, "iteration-count multiplier for every benchmark")
	cores := flag.Int("cores", 4, "number of simulated cores")
	parallel := flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS, 1 = serial)")
	domains := flag.Int("domains", 1, "intra-simulation parallel domains (1 = serial engine scheduler; results are byte-identical at any setting)")
	only := flag.String("only", "", "comma-separated subset: fig1,fig2,fig8,fig9,table1,table2,table3")
	ablations := flag.Bool("ablations", false, "also run the design-choice ablations")
	quiet := flag.Bool("q", false, "suppress progress output")
	jsonOut := flag.String("json", "", "write the raw measurements as deterministic JSON to this file")
	profOut := flag.String("prof", "", "profile every simulation and write the hmtx-prof/v1 document to this file")
	seriesOut := flag.String("series", "", "sample every simulation and write the hmtx-series/v1 document to this file")
	seriesWindow := flag.Int64("series-window", 0, "time-series sampling window in simulated cycles (0 = default)")
	conflictsOut := flag.String("conflicts", "", "record abort edges and write the hmtx-conflicts/v1 document to this file")
	histOut := flag.String("hist", "", "collect latency histograms and write the hmtx-hist/v1 document to this file")
	ckptEvery := flag.Int("ckpt-every", 0, "checkpoint after every N completed (benchmark, mode) units (0 = off; requires -parallel 1)")
	ckptOut := flag.String("ckpt-out", "", "write an hmtx-ckpt/v1 suite checkpoint to this file at each checkpoint")
	ckptHalt := flag.Bool("ckpt-halt", false, "halt the suite at the first checkpoint (after writing -ckpt-out)")
	resume := flag.String("resume", "", "resume a halted suite from an hmtx-ckpt/v1 checkpoint file")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatal(err)
			}
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
	}

	metricsOn := *seriesOut != "" || *conflictsOut != "" || *histOut != ""
	cfg := experiments.Config{
		Scale: *scale, Cores: *cores, Parallelism: *parallel,
		Profile: *profOut != "",
		Metrics: metricsOn, MetricsWindow: *seriesWindow,
		Domains: *domains,
	}
	want := map[string]bool{}
	for _, k := range strings.Split(*only, ",") {
		if k = strings.TrimSpace(k); k != "" {
			want[k] = true
		}
	}
	pick := func(k string) bool { return len(want) == 0 || want[k] }

	if pick("table2") {
		fmt.Println(experiments.Table2(cfg))
	}
	if pick("fig1") {
		fmt.Println(experiments.Fig1(*cores))
	}

	needSuite := *jsonOut != "" || *profOut != "" || metricsOn ||
		pick("fig2") || pick("fig8") || pick("fig9") || pick("table1") || pick("table3")
	if needSuite {
		var progress io.Writer = os.Stderr
		if *quiet {
			progress = nil
		}
		var results []experiments.BenchResult
		ckptOn := *ckptEvery > 0 || *ckptOut != "" || *ckptHalt || *resume != ""
		if ckptOn {
			// Suite checkpoints cut at (benchmark, mode) unit boundaries,
			// which requires the serial unit order.
			if cfg.Parallelism != 1 {
				log.Fatal("checkpointing requires -parallel 1")
			}
			if (*ckptOut != "" || *ckptHalt) && *ckptEvery <= 0 {
				log.Fatal("-ckpt-out and -ckpt-halt need -ckpt-every")
			}
			opts := experiments.CkptOptions{Every: *ckptEvery}
			if *resume != "" {
				doc, err := ckpt.ReadFile(*resume)
				if err != nil {
					log.Fatal(err)
				}
				if doc.Kind != ckpt.KindExperiments {
					log.Fatalf("%s is a %q checkpoint; experiments resumes %q checkpoints (hmtxsim -resume handles runs, hmtxdbg opens counterexamples)",
						*resume, doc.Kind, ckpt.KindExperiments)
				}
				if doc.Experiments.Config != cfg {
					log.Fatalf("checkpoint was taken under -scale %d -cores %d -domains %d and the matching instrument flags; rerun with the same configuration",
						doc.Experiments.Config.Scale, doc.Experiments.Config.Cores, doc.Experiments.Config.Domains)
				}
				st := doc.Experiments.State
				opts.Resume = &st
			}
			var unitsDone int
			if *ckptOut != "" || *ckptHalt {
				opts.Checkpoint = func(st experiments.CkptState) bool {
					if *ckptOut != "" {
						doc := &ckpt.Doc{Schema: ckpt.Schema, Kind: ckpt.KindExperiments,
							Experiments: &ckpt.ExperimentsState{Config: cfg, State: st}}
						if err := ckpt.WriteFile(*ckptOut, doc); err != nil {
							log.Fatal(err)
						}
					}
					unitsDone = len(st.Done)
					return *ckptHalt
				}
			}
			var halted bool
			var err error
			results, halted, err = experiments.RunSpecsCkpt(cfg, workloads.All(), progress, opts)
			if err != nil {
				log.Fatal(err)
			}
			if halted {
				where := ""
				if *ckptOut != "" {
					where = " -> " + *ckptOut
				}
				fmt.Printf("checkpoint: suite halted after %d units%s (continue with -resume)\n", unitsDone, where)
				return
			}
		} else {
			results = experiments.RunAll(cfg, progress)
		}
		if *jsonOut != "" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				log.Fatal(err)
			}
			if err := experiments.WriteJSON(f, experiments.BuildDoc(cfg, results)); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}
		if *profOut != "" {
			f, err := os.Create(*profOut)
			if err != nil {
				log.Fatal(err)
			}
			if err := prof.WriteDoc(f, experiments.BuildProfDoc(cfg, results)); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}
		writeDoc := func(path string, doc any) {
			if path == "" {
				return
			}
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := experiments.WriteAnyJSON(f, doc); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}
		if *seriesOut != "" {
			writeDoc(*seriesOut, experiments.BuildSeriesDoc(cfg, results))
		}
		if *conflictsOut != "" {
			writeDoc(*conflictsOut, experiments.BuildConflictDoc(cfg, results))
		}
		if *histOut != "" {
			writeDoc(*histOut, experiments.BuildHistDoc(cfg, results))
		}
		if pick("table1") {
			fmt.Println(experiments.Table1(results))
		}
		if pick("fig2") {
			fmt.Println(experiments.Fig2(results))
		}
		if pick("fig8") {
			fmt.Println(experiments.Fig8(results))
		}
		if pick("fig9") {
			fmt.Println(experiments.Fig9(results))
		}
		if pick("table3") {
			fmt.Println(experiments.Table3(cfg, results))
		}
	}

	if *ablations {
		fmt.Println(experiments.AblationSLA(cfg))
		fmt.Println(experiments.AblationVIDWidth(cfg))
		fmt.Println(experiments.AblationLazyCommit(cfg))
		fmt.Println(experiments.AblationScaling(cfg))
		fmt.Println(experiments.Paradigms(cfg))
	}
}
