package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hmtx/internal/obs"
	"hmtx/internal/prof"
)

// writeTrace generates a Chrome trace via the real sink, so the summariser
// is tested against exactly what hmtxsim -trace-out produces.
func writeTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer(obs.CatAll, 0)
	tr.Attach(obs.NewChromeSink(f))
	tr.SetTime(10)
	tr.Emit(obs.Event{Kind: obs.KBusRequest, Core: 0, Addr: 0x1000, Note: "load"})
	tr.Emit(obs.Event{Kind: obs.KBusRequest, Core: 1, Addr: 0x1000, Note: "store"})
	tr.Emit(obs.Event{Kind: obs.KBusRequest, Core: 1, Addr: 0x2000, Note: "load"})
	tr.SetTime(50)
	tr.Emit(obs.Event{Kind: obs.KTxCommit, Core: 0, VID: 1, Arg: 40})
	tr.SetTime(90)
	tr.Emit(obs.Event{Kind: obs.KTxCommit, Core: 1, VID: 2, Arg: 60})
	tr.SetTime(120)
	tr.Emit(obs.Event{Kind: obs.KTxAbort, Core: 1, VID: 3, Note: "store vid 3 to line 0x1000 already accessed by vid 4"})
	tr.Emit(obs.Event{Kind: obs.KTxAbort, Core: 0, VID: 3, Note: "speculative line overflowed the last-level cache (§5.4)"})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSummarise(t *testing.T) {
	path := writeTrace(t)
	var out, errb bytes.Buffer
	if code := run([]string{"-top", "2", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	s := out.String()
	for _, want := range []string{
		"7 events",
		"bus", "txn",
		"0x1000", // hottest line first
		"commits",
		"mean commit latency (cycles)  50.0",
		"aborts: conflict",
		"aborts: overflow",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
	// 0x1000 (2 events) must rank above 0x2000 (1 event).
	if strings.Index(s, "0x1000") > strings.Index(s, "0x2000") {
		t.Errorf("hottest-line order wrong:\n%s", s)
	}
}

// TestCycleWindow filters the TestSummarise trace (events at cycles 10, 50,
// 90 and 120; the commit events are complete events windowed on ts+dur, i.e.
// their commit cycle) down to [40, 100]: the two commits survive, the bus
// events and aborts do not.
func TestCycleWindow(t *testing.T) {
	path := writeTrace(t)
	var out, errb bytes.Buffer
	if code := run([]string{"-from", "40", "-to", "100", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	s := out.String()
	for _, want := range []string{
		"window: cycles 40..100 (2 of 7 events)",
		"2 events",
		"mean commit latency (cycles)  50.0",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("windowed summary missing %q:\n%s", want, s)
		}
	}
	for _, reject := range []string{"bus", "aborts: conflict", "0x1000"} {
		if strings.Contains(s, reject) {
			t.Errorf("windowed summary still contains %q:\n%s", reject, s)
		}
	}

	// An open right edge keeps everything from -from on.
	out.Reset()
	if code := run([]string{"-from", "100", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "window: cycles 100..end (2 of 7 events)") {
		t.Errorf("open-ended window wrong:\n%s", out.String())
	}

	// An inverted window is a usage error.
	if code := run([]string{"-from", "100", "-to", "40", path}, &out, &errb); code != 2 {
		t.Errorf("inverted window: exit %d, want 2", code)
	}
}

func TestBadInput(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no args: exit %d", code)
	}
	if code := run([]string{"/nonexistent/trace.json"}, &out, &errb); code != 1 {
		t.Errorf("missing file: exit %d", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{bad}, &out, &errb); code != 1 {
		t.Errorf("bad JSON: exit %d", code)
	}
}

// writeAbortTrace emits a run where VID 3 is rolled back twice before its
// third attempt commits, and VID 4 is rolled back once, through the real
// sink — so the ledger rebuild is tested against real serialisation,
// including the commit event's ts-shifting.
func writeAbortTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer(obs.CatAll, 0)
	tr.Attach(obs.NewChromeSink(f))
	cycle := int64(100)
	for attempt := 0; attempt < 2; attempt++ {
		tr.SetTime(cycle)
		tr.Emit(obs.Event{Kind: obs.KTxBegin, Core: 0, VID: 3})
		tr.Emit(obs.Event{Kind: obs.KTxBegin, Core: 1, VID: 4})
		tr.SetTime(cycle + 50)
		if attempt == 1 { // second time around, VID 4 commits before the abort
			tr.Emit(obs.Event{Kind: obs.KTxCommit, Core: 1, VID: 4, Arg: 50})
		}
		tr.SetTime(cycle + 80)
		tr.Emit(obs.Event{Kind: obs.KTxAbort, Core: 0, VID: 3, Note: "store vid 3 to line 0x40 already accessed by vid 4"})
		cycle += 100
	}
	tr.SetTime(cycle)
	tr.Emit(obs.Event{Kind: obs.KTxBegin, Core: 0, VID: 3})
	tr.SetTime(cycle + 60)
	tr.Emit(obs.Event{Kind: obs.KTxCommit, Core: 0, VID: 3, Arg: 60})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// writeProf writes a one-profile hmtx-prof/v1 document whose re-execution
// records carry the given per-VID aborted-attempt counts.
func writeProf(t *testing.T, reexec []prof.TxProfile) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prof.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	doc := prof.Doc{Schema: prof.Schema, Profiles: []prof.Profile{{
		Label: "wl/hmtx", ReexecutedTxs: reexec,
	}}}
	if err := prof.WriteDoc(f, doc); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAttemptLedger(t *testing.T) {
	path := writeAbortTrace(t)
	var out, errb bytes.Buffer
	if code := run([]string{path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "re-executed transactions (trace-derived)") {
		t.Fatalf("ledger table missing:\n%s", s)
	}
	// VID 3: 2 aborted + 1 committed = 3 attempts; VID 4: 1 aborted + 1
	// committed = 2. Match whole table rows so a column swap cannot pass.
	for _, want := range []string{"3    2", "4    1"} {
		if !strings.Contains(s, want) {
			t.Errorf("ledger missing row %q:\n%s", want, s)
		}
	}
}

func TestProfCrossCheck(t *testing.T) {
	trace := writeAbortTrace(t)

	good := writeProf(t, []prof.TxProfile{
		{VID: 3, AbortedAttempts: 2, WastedCycles: 160},
		{VID: 4, AbortedAttempts: 1, WastedCycles: 80},
	})
	var out, errb bytes.Buffer
	if code := run([]string{"-prof", good, trace}, &out, &errb); code != 0 {
		t.Fatalf("agreeing cross-check failed (exit %d):\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "cross-check") || !strings.Contains(out.String(), "ok (2 re-executed VID(s) agree)") {
		t.Errorf("cross-check verdict missing:\n%s", out.String())
	}

	// Wrong count for VID 3 and a VID the trace never aborted: both named.
	bad := writeProf(t, []prof.TxProfile{
		{VID: 3, AbortedAttempts: 1},
		{VID: 9, AbortedAttempts: 1},
	})
	out.Reset()
	if code := run([]string{"-prof", bad, trace}, &out, &errb); code != 1 {
		t.Fatalf("disagreeing cross-check: exit %d, want 1", code)
	}
	s := out.String()
	for _, want := range []string{
		"MISMATCH",
		"vid 3: profile has 1 aborted attempt(s), trace has 2",
		"vid 9: profile has 1 aborted attempt(s), trace has none",
		"vid 4: trace has 1 aborted attempt(s), profile has none",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("mismatch report missing %q:\n%s", want, s)
		}
	}
}
