package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hmtx/internal/obs"
)

// writeTrace generates a Chrome trace via the real sink, so the summariser
// is tested against exactly what hmtxsim -trace-out produces.
func writeTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer(obs.CatAll, 0)
	tr.Attach(obs.NewChromeSink(f))
	tr.SetTime(10)
	tr.Emit(obs.Event{Kind: obs.KBusRequest, Core: 0, Addr: 0x1000, Note: "load"})
	tr.Emit(obs.Event{Kind: obs.KBusRequest, Core: 1, Addr: 0x1000, Note: "store"})
	tr.Emit(obs.Event{Kind: obs.KBusRequest, Core: 1, Addr: 0x2000, Note: "load"})
	tr.SetTime(50)
	tr.Emit(obs.Event{Kind: obs.KTxCommit, Core: 0, VID: 1, Arg: 40})
	tr.SetTime(90)
	tr.Emit(obs.Event{Kind: obs.KTxCommit, Core: 1, VID: 2, Arg: 60})
	tr.SetTime(120)
	tr.Emit(obs.Event{Kind: obs.KTxAbort, Core: 1, VID: 3, Note: "store vid 3 to line 0x1000 already accessed by vid 4"})
	tr.Emit(obs.Event{Kind: obs.KTxAbort, Core: 0, VID: 3, Note: "speculative line overflowed the last-level cache (§5.4)"})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSummarise(t *testing.T) {
	path := writeTrace(t)
	var out, errb bytes.Buffer
	if code := run([]string{"-top", "2", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	s := out.String()
	for _, want := range []string{
		"7 events",
		"bus", "txn",
		"0x1000", // hottest line first
		"commits",
		"mean commit latency (cycles)  50.0",
		"aborts: conflict",
		"aborts: overflow",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
	// 0x1000 (2 events) must rank above 0x2000 (1 event).
	if strings.Index(s, "0x1000") > strings.Index(s, "0x2000") {
		t.Errorf("hottest-line order wrong:\n%s", s)
	}
}

func TestBadInput(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no args: exit %d", code)
	}
	if code := run([]string{"/nonexistent/trace.json"}, &out, &errb); code != 1 {
		t.Errorf("missing file: exit %d", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{bad}, &out, &errb); code != 1 {
		t.Errorf("bad JSON: exit %d", code)
	}
}
