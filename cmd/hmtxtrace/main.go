// Command hmtxtrace summarises a Chrome trace_event JSON file produced by
// hmtxsim -trace-out: events per category, the hottest cache lines, the
// abort-cause attribution, and transaction commit-latency statistics.
//
// Usage:
//
//	hmtxtrace [-top N] trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"

	"hmtx/internal/obs"
	"hmtx/internal/stats"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// traceEvent mirrors the fields obs.ChromeSink writes.
type traceEvent struct {
	Name string `json:"name"`
	Cat  string `json:"cat"`
	Ph   string `json:"ph"`
	TS   int64  `json:"ts"`
	Dur  int64  `json:"dur"`
	Args struct {
		Addr string `json:"addr"`
		VID  uint64 `json:"vid"`
		Arg  uint64 `json:"arg"`
		Note string `json:"note"`
	} `json:"args"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hmtxtrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	top := fs.Int("top", 10, "number of hottest lines to show")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: hmtxtrace [-top N] trace.json")
		return 2
	}
	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "hmtxtrace: "+format+"\n", a...)
		return 1
	}

	buf, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return fail("%v", err)
	}
	var doc struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		return fail("parsing %s: %v", fs.Arg(0), err)
	}
	evs := doc.TraceEvents

	// Events per category.
	perCat := make(map[string]uint64)
	for i := range evs {
		perCat[evs[i].Cat]++
	}
	cats := make([]string, 0, len(perCat))
	for c := range perCat {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	var ct stats.Table
	ct.Add("category", "events")
	for _, c := range cats {
		ct.AddF(c, perCat[c])
	}
	ct.AddF("total", len(evs))
	fmt.Fprintf(stdout, "trace: %s (%d events)\n\n%s\n", fs.Arg(0), len(evs), ct.String())

	// Hottest lines: events per line address, count desc, address asc.
	type lineCount struct {
		addr  uint64
		count uint64
	}
	perLine := make(map[uint64]uint64)
	for i := range evs {
		if a := evs[i].Args.Addr; a != "" {
			if addr, err := strconv.ParseUint(a, 0, 64); err == nil {
				perLine[addr]++
			}
		}
	}
	lines := make([]lineCount, 0, len(perLine))
	for a, n := range perLine {
		lines = append(lines, lineCount{a, n})
	}
	sort.Slice(lines, func(i, j int) bool {
		if lines[i].count != lines[j].count {
			return lines[i].count > lines[j].count
		}
		return lines[i].addr < lines[j].addr
	})
	if len(lines) > 0 {
		n := *top
		if n > len(lines) {
			n = len(lines)
		}
		var lt stats.Table
		lt.Add("line", "events")
		for _, l := range lines[:n] {
			lt.AddF(fmt.Sprintf("%#x", l.addr), l.count)
		}
		fmt.Fprintf(stdout, "hottest lines (top %d of %d):\n\n%s\n", n, len(lines), lt.String())
	}

	// Abort attribution and commit-latency statistics.
	aborts := make(map[string]uint64)
	var nAborts uint64
	var nCommits, durSum, durMax uint64
	for i := range evs {
		switch evs[i].Name {
		case "tx_abort":
			aborts[obs.AbortClass(evs[i].Args.Note)]++
			nAborts++
		case "tx_commit":
			nCommits++
			d := uint64(evs[i].Dur)
			durSum += d
			if d > durMax {
				durMax = d
			}
		}
	}
	var tt stats.Table
	tt.Add("transactions", "value")
	tt.AddF("commits", nCommits)
	if nCommits > 0 {
		tt.AddF("mean commit latency (cycles)", fmt.Sprintf("%.1f", float64(durSum)/float64(nCommits)))
		tt.AddF("max commit latency (cycles)", durMax)
	}
	tt.AddF("aborts", nAborts)
	for _, class := range obs.AbortClasses() {
		if n, ok := aborts[class]; ok {
			tt.AddF("  aborts: "+class, n)
		}
	}
	fmt.Fprint(stdout, tt.String())
	return 0
}
