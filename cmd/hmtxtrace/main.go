// Command hmtxtrace summarises a Chrome trace_event JSON file produced by
// hmtxsim -trace-out: events per category, the hottest cache lines, the
// abort-cause attribution, transaction commit-latency statistics, and the
// per-VID attempt ledger (aborted vs committed attempts, rebuilt by feeding
// the trace back through the obs.TxCollector).
//
// Usage:
//
//	hmtxtrace [-top N] [-from CYC] [-to CYC] [-prof profile.json] trace.json
//
// -from and -to restrict every analysis to the simulated-cycle window
// [from, to] — the way to zoom a long trace onto one abort storm or one
// commit stall (find the cycle of interest with hmtxdbg, then filter the
// trace to it). A complete event (tx_commit) is windowed on the cycle it
// fired, ts+dur.
//
// With -prof, the trace-derived ledger is cross-checked against the
// profile's re-execution records (hmtx-prof/v1, DESIGN.md §13): the two
// instruments observe aborted attempts independently — the tracer from the
// event stream, the profiler from its charge sites — so any per-VID
// disagreement means one of them lost an attempt. A mismatch exits 1.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"

	"hmtx/internal/obs"
	"hmtx/internal/prof"
	"hmtx/internal/stats"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// traceEvent mirrors the fields obs.ChromeSink writes.
type traceEvent struct {
	Name string `json:"name"`
	Cat  string `json:"cat"`
	Ph   string `json:"ph"`
	TS   int64  `json:"ts"`
	Dur  int64  `json:"dur"`
	Args struct {
		Addr string `json:"addr"`
		VID  uint64 `json:"vid"`
		Arg  uint64 `json:"arg"`
		Note string `json:"note"`
	} `json:"args"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hmtxtrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	top := fs.Int("top", 10, "number of hottest lines to show")
	from := fs.Int64("from", 0, "ignore events before this simulated cycle")
	to := fs.Int64("to", 0, "ignore events after this simulated cycle (0 = end of trace)")
	profPath := fs.String("prof", "", "hmtx-prof/v1 profile to cross-check per-VID aborted attempts against")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: hmtxtrace [-top N] [-from CYC] [-to CYC] [-prof profile.json] trace.json")
		return 2
	}
	if *to > 0 && *to < *from {
		fmt.Fprintln(stderr, "hmtxtrace: -to is before -from")
		return 2
	}
	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "hmtxtrace: "+format+"\n", a...)
		return 1
	}

	buf, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return fail("%v", err)
	}
	var doc struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		return fail("parsing %s: %v", fs.Arg(0), err)
	}
	evs := doc.TraceEvents
	total := len(evs)
	if *from > 0 || *to > 0 {
		var kept []traceEvent
		for i := range evs {
			cyc := evs[i].TS
			if evs[i].Ph == "X" {
				cyc += evs[i].Dur
			}
			if cyc < *from || (*to > 0 && cyc > *to) {
				continue
			}
			kept = append(kept, evs[i])
		}
		evs = kept
		toStr := "end"
		if *to > 0 {
			toStr = fmt.Sprintf("%d", *to)
		}
		fmt.Fprintf(stdout, "window: cycles %d..%s (%d of %d events)\n", *from, toStr, len(evs), total)
	}

	// Events per category.
	perCat := make(map[string]uint64)
	for i := range evs {
		perCat[evs[i].Cat]++
	}
	cats := make([]string, 0, len(perCat))
	for c := range perCat {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	var ct stats.Table
	ct.Add("category", "events")
	for _, c := range cats {
		ct.AddF(c, perCat[c])
	}
	ct.AddF("total", len(evs))
	fmt.Fprintf(stdout, "trace: %s (%d events)\n\n%s\n", fs.Arg(0), len(evs), ct.String())

	// Hottest lines: events per line address, count desc, address asc.
	type lineCount struct {
		addr  uint64
		count uint64
	}
	perLine := make(map[uint64]uint64)
	for i := range evs {
		if a := evs[i].Args.Addr; a != "" {
			if addr, err := strconv.ParseUint(a, 0, 64); err == nil {
				perLine[addr]++
			}
		}
	}
	lines := make([]lineCount, 0, len(perLine))
	for a, n := range perLine {
		lines = append(lines, lineCount{a, n})
	}
	sort.Slice(lines, func(i, j int) bool {
		if lines[i].count != lines[j].count {
			return lines[i].count > lines[j].count
		}
		return lines[i].addr < lines[j].addr
	})
	if len(lines) > 0 {
		n := *top
		if n > len(lines) {
			n = len(lines)
		}
		var lt stats.Table
		lt.Add("line", "events")
		for _, l := range lines[:n] {
			lt.AddF(fmt.Sprintf("%#x", l.addr), l.count)
		}
		fmt.Fprintf(stdout, "hottest lines (top %d of %d):\n\n%s\n", n, len(lines), lt.String())
	}

	// Abort attribution and commit-latency statistics.
	aborts := make(map[string]uint64)
	var nAborts uint64
	var nCommits, durSum, durMax uint64
	for i := range evs {
		switch evs[i].Name {
		case "tx_abort":
			aborts[obs.AbortClass(evs[i].Args.Note)]++
			nAborts++
		case "tx_commit":
			nCommits++
			d := uint64(evs[i].Dur)
			durSum += d
			if d > durMax {
				durMax = d
			}
		}
	}
	var tt stats.Table
	tt.Add("transactions", "value")
	tt.AddF("commits", nCommits)
	if nCommits > 0 {
		tt.AddF("mean commit latency (cycles)", fmt.Sprintf("%.1f", float64(durSum)/float64(nCommits)))
		tt.AddF("max commit latency (cycles)", durMax)
	}
	tt.AddF("aborts", nAborts)
	for _, class := range obs.AbortClasses() {
		if n, ok := aborts[class]; ok {
			tt.AddF("  aborts: "+class, n)
		}
	}
	fmt.Fprint(stdout, tt.String())

	// Per-VID attempt ledger: replay the transaction events through the real
	// collector, so the attempt/abort semantics are obs.TxCollector's, not a
	// reimplementation that could drift.
	col := obs.NewTxCollector()
	for i := range evs {
		e, ok := collectorEvent(&evs[i])
		if !ok {
			continue
		}
		col.Emit(e)
	}
	attempts := attemptLedger(col)
	if len(attempts) > 0 {
		var at stats.Table
		at.Add("vid", "aborted attempts", "committed", "total attempts")
		for _, a := range attempts {
			at.AddF(a.vid, a.aborted, a.committed, a.aborted+a.committed)
		}
		fmt.Fprintf(stdout, "\nre-executed transactions (trace-derived):\n\n%s", at.String())
	}

	if *profPath != "" {
		f, err := os.Open(*profPath)
		if err != nil {
			return fail("%v", err)
		}
		doc, err := prof.ReadDoc(f)
		f.Close()
		if err != nil {
			return fail("%v", err)
		}
		if len(doc.Profiles) == 0 {
			return fail("%s has no profiles", *profPath)
		}
		p := &doc.Profiles[0]
		if bad := crossCheck(attempts, p); len(bad) > 0 {
			fmt.Fprintf(stdout, "\ncross-check against %s (%s): MISMATCH\n", *profPath, p.Label)
			for _, m := range bad {
				fmt.Fprintf(stdout, "  %s\n", m)
			}
			return 1
		}
		fmt.Fprintf(stdout, "\ncross-check against %s (%s): ok (%d re-executed VID(s) agree)\n",
			*profPath, p.Label, len(attempts))
	}
	return 0
}

// collectorEvent maps one Chrome record back to the obs.Event the sink
// serialised, for the kinds the transaction collector consumes. tx_commit is
// a complete ("X") event whose ts was shifted back by its duration, so the
// commit cycle is ts+dur and the latency is the duration itself.
func collectorEvent(ev *traceEvent) (obs.Event, bool) {
	e := obs.Event{Core: 0, VID: ev.Args.VID, Arg: ev.Args.Arg, Cycle: ev.TS}
	switch ev.Name {
	case "tx_begin":
		e.Kind = obs.KTxBegin
	case "tx_commit":
		e.Kind = obs.KTxCommit
		e.Cycle = ev.TS + ev.Dur
		e.Arg = uint64(ev.Dur)
	case "tx_abort":
		e.Kind = obs.KTxAbort
		e.Note = ev.Args.Note
	case "commit_resume":
		e.Kind = obs.KCommitResume
	default:
		return obs.Event{}, false
	}
	return e, true
}

// vidAttempts is one VID's attempt counts; only VIDs with at least one
// rolled-back attempt are reported (a clean first-try commit is the
// uninteresting common case, and it is what the profiler records too).
type vidAttempts struct {
	vid                uint64
	aborted, committed int
}

// attemptLedger aggregates the collector's records per VID, ascending.
func attemptLedger(col *obs.TxCollector) []vidAttempts {
	per := make(map[uint64]*vidAttempts)
	vids := []uint64{}
	get := func(vid uint64) *vidAttempts {
		a, ok := per[vid]
		if !ok {
			a = &vidAttempts{vid: vid}
			per[vid] = a
			vids = append(vids, vid)
		}
		return a
	}
	for _, t := range col.Aborted() {
		get(t.VID).aborted++
	}
	for _, t := range col.Committed() {
		get(t.VID).committed++
	}
	sort.Slice(vids, func(i, j int) bool { return vids[i] < vids[j] })
	out := []vidAttempts{}
	for _, v := range vids {
		if a := per[v]; a.aborted > 0 {
			out = append(out, *a)
		}
	}
	return out
}

// crossCheck compares the trace-derived ledger with the profile's
// re-execution records and returns one message per disagreement. The two
// must agree VID for VID: same set of re-executed VIDs, same aborted-attempt
// counts.
func crossCheck(attempts []vidAttempts, p *prof.Profile) []string {
	var bad []string
	traceBy := make(map[uint64]int, len(attempts))
	for _, a := range attempts {
		traceBy[a.vid] = a.aborted
	}
	profBy := make(map[uint64]int, len(p.ReexecutedTxs))
	for _, t := range p.ReexecutedTxs {
		profBy[t.VID] = t.AbortedAttempts
		got, ok := traceBy[t.VID]
		switch {
		case !ok:
			bad = append(bad, fmt.Sprintf("vid %d: profile has %d aborted attempt(s), trace has none", t.VID, t.AbortedAttempts))
		case got != t.AbortedAttempts:
			bad = append(bad, fmt.Sprintf("vid %d: profile has %d aborted attempt(s), trace has %d", t.VID, t.AbortedAttempts, got))
		}
	}
	for _, a := range attempts {
		if _, ok := profBy[a.vid]; !ok {
			bad = append(bad, fmt.Sprintf("vid %d: trace has %d aborted attempt(s), profile has none", a.vid, a.aborted))
		}
	}
	return bad
}
