// Command hmtxcheck exhaustively model-checks the HMTX coherence protocol
// (internal/check): it enumerates every reachable configuration of a bounded
// memory hierarchy under a nondeterministic stimulus alphabet, asserting the
// MOESI-San invariants and the end-to-end value properties on every edge.
// A property violation is reported with the shortest reproducing stimulus
// trace (DESIGN.md §12).
//
// Usage:
//
//	hmtxcheck [-cores N] [-addrs N] [-vids N] [-store-vals N]
//	          [-wrongpath] [-evict] [-l1ways N] [-l2ways N]
//	          [-max-states N] [-max-depth N] [-inject BUG]
//	          [-json FILE] [-emit-ckpt FILE] [-q]
//
// Exit status: 0 for a clean run, 1 for a property violation, 2 for usage
// errors. Output is deterministic: the same bounds always produce the same
// bytes, so CI can diff reports across runs.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"

	"hmtx/internal/check"
	"hmtx/internal/ckpt"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hmtxcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var cfg check.Config
	fs.IntVar(&cfg.Cores, "cores", 2, "number of cores/L1 caches")
	fs.IntVar(&cfg.Addrs, "addrs", 1, "number of distinct line addresses")
	fs.IntVar(&cfg.VIDs, "vids", 1, "number of speculative VIDs")
	storeVals := fs.Int("store-vals", 2, "number of distinct store values")
	fs.BoolVar(&cfg.WrongPath, "wrongpath", false, "include squashed wrong-path loads (§5.1)")
	fs.BoolVar(&cfg.Evict, "evict", false, "include forced evictions (§5.4 capacity pressure)")
	fs.IntVar(&cfg.L1Ways, "l1ways", 2, "L1 ways (single set)")
	fs.IntVar(&cfg.L2Ways, "l2ways", 4, "L2 ways (single set)")
	fs.IntVar(&cfg.MaxStates, "max-states", check.DefaultMaxStates, "visited-state cap (truncates the search)")
	fs.IntVar(&cfg.MaxDepth, "max-depth", 0, "BFS depth cap (0 = unbounded)")
	fs.StringVar(&cfg.InjectBug, "inject", "", "re-introduce a fixed protocol bug (memsys.Bug* name) to validate the checker")
	jsonOut := fs.String("json", "", "also write the summary as JSON to this file")
	ckptOut := fs.String("emit-ckpt", "", "on a violation, write the counterexample as an hmtx-ckpt/v1 checkpoint (openable with hmtxdbg) to this file")
	quiet := fs.Bool("q", false, "suppress the text report (exit status still reflects the verdict)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "hmtxcheck: unexpected arguments; bounds are set by flags")
		return 2
	}
	cfg.StoreVals = uint64(*storeVals)

	sum, err := check.Run(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "hmtxcheck: %v\n", err)
		return 2
	}
	if !*quiet {
		io.WriteString(stdout, sum.Text())
	}
	if *jsonOut != "" {
		js, jerr := sum.JSON()
		if jerr != nil {
			fmt.Fprintf(stderr, "hmtxcheck: %v\n", jerr)
			return 2
		}
		js = append(js, '\n')
		if werr := os.WriteFile(*jsonOut, js, 0o644); werr != nil {
			fmt.Fprintf(stderr, "hmtxcheck: %v\n", werr)
			return 2
		}
	}
	if *ckptOut != "" && sum.Violation != nil {
		// Replay the counterexample to its final (violating) state and emit
		// it as a "check" checkpoint; hmtxdbg re-materialises any prefix.
		ce := sum.Violation
		h, _, _ := cfg.ReplayTo(ce.Steps, len(ce.Steps))
		doc := &ckpt.Doc{Schema: ckpt.Schema, Kind: ckpt.KindCheck, Check: &ckpt.CheckState{
			Config:         cfg,
			Counterexample: ce,
			FinalState:     hex.EncodeToString(h.AppendExact(nil)),
		}}
		if werr := ckpt.WriteFile(*ckptOut, doc); werr != nil {
			fmt.Fprintf(stderr, "hmtxcheck: %v\n", werr)
			return 2
		}
	}
	if !sum.OK() {
		return 1
	}
	return 0
}
