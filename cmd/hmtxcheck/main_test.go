package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runMain(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestCleanRunExitsZero(t *testing.T) {
	code, out, _ := runMain(t, "-cores", "2", "-addrs", "1", "-vids", "1")
	if code != 0 {
		t.Fatalf("exit=%d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "result: ok") || !strings.Contains(out, "exhausted=true") {
		t.Fatalf("unexpected report:\n%s", out)
	}
}

func TestInjectedBugExitsOne(t *testing.T) {
	code, out, _ := runMain(t, "-vids", "1", "-inject", "stale-sscopy-on-convert")
	if code != 1 {
		t.Fatalf("exit=%d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "VIOLATION") || !strings.Contains(out, "counterexample") {
		t.Fatalf("missing counterexample in report:\n%s", out)
	}
}

func TestQuietAndJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sum.json")
	code, out, _ := runMain(t, "-q", "-json", path)
	if code != 0 {
		t.Fatalf("exit=%d, want 0", code)
	}
	if out != "" {
		t.Fatalf("-q still wrote output: %q", out)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var sum struct {
		States    int  `json:"states"`
		Exhausted bool `json:"exhausted"`
	}
	if err := json.Unmarshal(raw, &sum); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if sum.States == 0 || !sum.Exhausted {
		t.Fatalf("implausible JSON summary: %+v", sum)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runMain(t, "-cores", "99"); code != 2 {
		t.Fatal("invalid bounds must exit 2")
	}
	if code, _, _ := runMain(t, "-inject", "no-such-bug"); code != 2 {
		t.Fatal("unknown -inject must exit 2")
	}
	if code, _, _ := runMain(t, "stray-arg"); code != 2 {
		t.Fatal("positional arguments must exit 2")
	}
}
