package main

import (
	"path/filepath"
	"testing"
)

func TestSortFindingsStable(t *testing.T) {
	fs := []Finding{
		{File: "b.go", Line: 1, Col: 1, Analyzer: "z", Message: "m"},
		{File: "a.go", Line: 9, Col: 1, Analyzer: "z", Message: "m"},
		{File: "a.go", Line: 2, Col: 5, Analyzer: "z", Message: "m"},
		{File: "a.go", Line: 2, Col: 5, Analyzer: "a", Message: "m"},
		{File: "a.go", Line: 2, Col: 1, Analyzer: "z", Message: "b"},
		{File: "a.go", Line: 2, Col: 1, Analyzer: "z", Message: "a"},
	}
	sortFindings(fs)
	want := []Finding{
		{File: "a.go", Line: 2, Col: 1, Analyzer: "z", Message: "a"},
		{File: "a.go", Line: 2, Col: 1, Analyzer: "z", Message: "b"},
		{File: "a.go", Line: 2, Col: 5, Analyzer: "a", Message: "m"},
		{File: "a.go", Line: 2, Col: 5, Analyzer: "z", Message: "m"},
		{File: "a.go", Line: 9, Col: 1, Analyzer: "z", Message: "m"},
		{File: "b.go", Line: 1, Col: 1, Analyzer: "z", Message: "m"},
	}
	for i := range want {
		if fs[i] != want[i] {
			t.Fatalf("position %d: got %+v, want %+v", i, fs[i], want[i])
		}
	}
}

func TestDiffBaselineIgnoresLineDrift(t *testing.T) {
	baseline := []Finding{
		{File: "x.go", Line: 10, Col: 2, Analyzer: "detflow", Message: "old finding"},
		{File: "x.go", Line: 20, Col: 2, Analyzer: "txpath", Message: "dup"},
	}
	findings := []Finding{
		{File: "x.go", Line: 14, Col: 2, Analyzer: "detflow", Message: "old finding"}, // moved: tolerated
		{File: "x.go", Line: 20, Col: 2, Analyzer: "txpath", Message: "dup"},
		{File: "x.go", Line: 25, Col: 2, Analyzer: "txpath", Message: "dup"}, // second instance: new
		{File: "y.go", Line: 1, Col: 1, Analyzer: "noclock", Message: "brand new"},
	}
	fresh := diffBaseline(findings, baseline)
	if len(fresh) != 2 {
		t.Fatalf("got %d fresh findings, want 2: %+v", len(fresh), fresh)
	}
	if fresh[0].Line != 25 || fresh[0].Analyzer != "txpath" {
		t.Errorf("fresh[0] = %+v, want the second txpath dup", fresh[0])
	}
	if fresh[1].File != "y.go" {
		t.Errorf("fresh[1] = %+v, want the y.go finding", fresh[1])
	}
}

func TestDiffBaselineEmptyBaseline(t *testing.T) {
	findings := []Finding{{File: "x.go", Line: 1, Col: 1, Analyzer: "a", Message: "m"}}
	if fresh := diffBaseline(findings, nil); len(fresh) != 1 {
		t.Fatalf("got %d, want all findings fresh with an empty baseline", len(fresh))
	}
}

func TestRelPath(t *testing.T) {
	base := filepath.Join(string(filepath.Separator), "repo")
	inside := filepath.Join(base, "internal", "x.go")
	if got := relPath(base, inside); got != "internal/x.go" {
		t.Errorf("relPath(inside) = %q, want internal/x.go", got)
	}
	outside := filepath.Join(string(filepath.Separator), "elsewhere", "y.go")
	if got := relPath(base, outside); got != outside {
		t.Errorf("relPath(outside) = %q, want the absolute path kept", got)
	}
}
