package main

import (
	"os"
	"path/filepath"
	"testing"

	"hmtx/internal/lintdoc"
)

func TestSortFindingsStable(t *testing.T) {
	fs := []Finding{
		{File: "b.go", Line: 1, Col: 1, Analyzer: "z", Message: "m"},
		{File: "a.go", Line: 9, Col: 1, Analyzer: "z", Message: "m"},
		{File: "a.go", Line: 2, Col: 5, Analyzer: "z", Message: "m"},
		{File: "a.go", Line: 2, Col: 5, Analyzer: "a", Message: "m"},
		{File: "a.go", Line: 2, Col: 1, Analyzer: "z", Message: "b"},
		{File: "a.go", Line: 2, Col: 1, Analyzer: "z", Message: "a"},
	}
	sortFindings(fs)
	want := []Finding{
		{File: "a.go", Line: 2, Col: 1, Analyzer: "z", Message: "a"},
		{File: "a.go", Line: 2, Col: 1, Analyzer: "z", Message: "b"},
		{File: "a.go", Line: 2, Col: 5, Analyzer: "a", Message: "m"},
		{File: "a.go", Line: 2, Col: 5, Analyzer: "z", Message: "m"},
		{File: "a.go", Line: 9, Col: 1, Analyzer: "z", Message: "m"},
		{File: "b.go", Line: 1, Col: 1, Analyzer: "z", Message: "m"},
	}
	for i := range want {
		if fs[i] != want[i] {
			t.Fatalf("position %d: got %+v, want %+v", i, fs[i], want[i])
		}
	}
}

func TestDiffBaselineIgnoresLineDrift(t *testing.T) {
	baseline := []Finding{
		{File: "x.go", Line: 10, Col: 2, Analyzer: "detflow", Message: "old finding"},
		{File: "x.go", Line: 20, Col: 2, Analyzer: "txpath", Message: "dup"},
	}
	findings := []Finding{
		{File: "x.go", Line: 14, Col: 2, Analyzer: "detflow", Message: "old finding"}, // moved: tolerated
		{File: "x.go", Line: 20, Col: 2, Analyzer: "txpath", Message: "dup"},
		{File: "x.go", Line: 25, Col: 2, Analyzer: "txpath", Message: "dup"}, // second instance: new
		{File: "y.go", Line: 1, Col: 1, Analyzer: "noclock", Message: "brand new"},
	}
	fresh := diffBaseline(findings, baseline)
	if len(fresh) != 2 {
		t.Fatalf("got %d fresh findings, want 2: %+v", len(fresh), fresh)
	}
	if fresh[0].Line != 25 || fresh[0].Analyzer != "txpath" {
		t.Errorf("fresh[0] = %+v, want the second txpath dup", fresh[0])
	}
	if fresh[1].File != "y.go" {
		t.Errorf("fresh[1] = %+v, want the y.go finding", fresh[1])
	}
}

func TestDiffBaselineEmptyBaseline(t *testing.T) {
	findings := []Finding{{File: "x.go", Line: 1, Col: 1, Analyzer: "a", Message: "m"}}
	if fresh := diffBaseline(findings, nil); len(fresh) != 1 {
		t.Fatalf("got %d, want all findings fresh with an empty baseline", len(fresh))
	}
}

// TestReadBaselineFormats verifies both accepted baseline formats: the
// legacy bare array and the hmtx-lint/v1 document.
func TestReadBaselineFormats(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	legacy := write("legacy.json", `[{"file":"x.go","line":1,"col":2,"analyzer":"hotalloc","message":"m"}]`)
	doc := write("doc.json", `{"schema":"hmtx-lint/v1","analyzers":[{"name":"hotalloc","version":"1"}],`+
		`"findings":[{"file":"x.go","line":1,"col":2,"analyzer":"hotalloc","message":"m"}]}`)
	for _, path := range []string{legacy, doc} {
		fs, err := readBaseline(path)
		if err != nil {
			t.Fatalf("readBaseline(%s): %v", path, err)
		}
		if len(fs) != 1 || fs[0].Analyzer != "hotalloc" || fs[0].Line != 1 {
			t.Errorf("readBaseline(%s) = %+v", path, fs)
		}
	}
	bad := write("bad.json", `{"schema":"hmtx-series/v1"}`)
	if _, err := readBaseline(bad); err == nil {
		t.Error("foreign schema accepted as baseline")
	}
}

// TestLintDoc verifies the -json document header: schema tag and one
// versioned entry per registered analyzer.
func TestLintDoc(t *testing.T) {
	doc := lintDoc(nil)
	if doc.Schema != lintdoc.Schema {
		t.Errorf("schema = %q", doc.Schema)
	}
	if len(doc.Analyzers) != len(analyzers) {
		t.Fatalf("%d analyzer entries, want %d", len(doc.Analyzers), len(analyzers))
	}
	vers := map[string]string{}
	for i, a := range doc.Analyzers {
		if a.Version == "" {
			t.Errorf("analyzer %s has empty version", a.Name)
		}
		if i > 0 && doc.Analyzers[i-1].Name >= a.Name {
			t.Errorf("analyzer roster not sorted at %s", a.Name)
		}
		vers[a.Name] = a.Version
	}
	if vers["domaindrain"] != "2" {
		t.Errorf("domaindrain version = %q, want 2 (value-flow reachability)", vers["domaindrain"])
	}
	if vers["hotalloc"] != "1" || vers["atomicfield"] != "1" {
		t.Errorf("new analyzers missing from roster: %v", vers)
	}
}

func TestRelPath(t *testing.T) {
	base := filepath.Join(string(filepath.Separator), "repo")
	inside := filepath.Join(base, "internal", "x.go")
	if got := relPath(base, inside); got != "internal/x.go" {
		t.Errorf("relPath(inside) = %q, want internal/x.go", got)
	}
	outside := filepath.Join(string(filepath.Separator), "elsewhere", "y.go")
	if got := relPath(base, outside); got != outside {
		t.Errorf("relPath(outside) = %q, want the absolute path kept", got)
	}
}
