// Command hmtxlint runs the hmtx determinism analyzers over Go packages.
//
// Usage:
//
//	hmtxlint [packages]
//
// With no arguments it checks ./... . It exits non-zero if any analyzer
// reports a diagnostic, printing one file:line:col line per finding. The
// rules (see tools/analyzers/*) enforce the determinism contract from
// DESIGN.md: no map-iteration-order dependence (detrange), no wall-clock or
// ambient randomness (noclock), no cache-line protocol mutation outside
// internal/memsys (statemut), no unguarded trace emission on the
// simulator fast path (tracegate), no unguarded profiler charges there
// either (profgate) — plus the transactional-API rules: every engine.Env
// Begin matched by Commit/Abort/Begin(0) with no escaping handles
// (txbalance), and model-checker snapshot methods covering every field of
// the structs they fingerprint (statefp).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hmtx/tools/analyzers/analysis"
	"hmtx/tools/analyzers/detrange"
	"hmtx/tools/analyzers/noclock"
	"hmtx/tools/analyzers/profgate"
	"hmtx/tools/analyzers/statefp"
	"hmtx/tools/analyzers/statemut"
	"hmtx/tools/analyzers/tracegate"
	"hmtx/tools/analyzers/txbalance"
)

var analyzers = []*analysis.Analyzer{
	detrange.Analyzer,
	noclock.Analyzer,
	profgate.Analyzer,
	statefp.Analyzer,
	statemut.Analyzer,
	tracegate.Analyzer,
	txbalance.Analyzer,
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("hmtxlint: ")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(patterns...)
	if err != nil {
		log.Fatal(err)
	}

	found := 0
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			diags, err := analysis.Run(pkg, a)
			if err != nil {
				log.Fatal(err)
			}
			for _, d := range diags {
				fmt.Printf("%s: %s [%s]\n", pkg.Fset.Position(d.Pos), d.Message, a.Name)
				found++
			}
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "hmtxlint: %d finding(s)\n", found)
		os.Exit(1)
	}
}
