// Command hmtxlint runs the hmtx determinism analyzers over Go packages.
//
// Usage:
//
//	hmtxlint [-json] [-baseline file] [packages]
//
// With no arguments it checks ./... . It exits non-zero if any analyzer
// reports a finding, printing one file:line:col line per finding (or, with
// -json, an "hmtx-lint/v1" document: schema header, the analyzer names and
// versions that ran, and the sorted findings — a versioned artifact
// hmtxreport diff understands like the metric documents). With -baseline,
// findings recorded in the given JSON file — an earlier -json run, in either
// the v1 document form or the legacy bare-array form — are tolerated: only
// new findings fail the run, so a gate can be introduced before every
// pre-existing finding is paid down.
//
// The rules (see tools/analyzers/*) enforce the determinism contract from
// DESIGN.md: no map-iteration-order dependence (detrange), no wall-clock or
// ambient randomness (noclock), no cache-line protocol mutation outside
// internal/memsys (statemut), no unguarded trace emission on the
// simulator fast path (tracegate), no unguarded profiler charges there
// either (profgate), and no unguarded metric-instrument records there
// (metricsgate), no simulation-visible output effects on domain-worker
// goroutines outside the canonical barrier drain (domaindrain, v2: callgraph
// + value-flow reachability, so workers dispatched through function pointers
// or method values are covered), no checkpoint capture/restore on those
// goroutines either — internal/ckpt calls and the snapshot primitives are
// coordinator-only, boundary-only (ckptgate) — statically allocation-free //hmtx:hotpath
// functions (hotalloc), atomically-consistent access to sync/atomic-managed
// struct fields from goroutine-reachable code (atomicfield) — plus the
// transactional-API rules: every engine.Env
// Begin matched by Commit/Abort/Begin(0) with no escaping handles
// (txbalance), model-checker snapshot methods covering every field of
// the structs they fingerprint (statefp), and the whole-program rules:
// interprocedural nondeterminism taint into simulation-visible state
// (detflow) and path-sensitive MTX lifecycle checking (txpath).
//
// Packages are analyzed in dependency order with a shared fact store, so
// the interprocedural analyzers see the summaries of every dependency.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"hmtx/internal/lintdoc"
	"hmtx/tools/analyzers/analysis"
	"hmtx/tools/analyzers/atomicfield"
	"hmtx/tools/analyzers/ckptgate"
	"hmtx/tools/analyzers/detflow"
	"hmtx/tools/analyzers/detrange"
	"hmtx/tools/analyzers/domaindrain"
	"hmtx/tools/analyzers/hotalloc"
	"hmtx/tools/analyzers/metricsgate"
	"hmtx/tools/analyzers/noclock"
	"hmtx/tools/analyzers/profgate"
	"hmtx/tools/analyzers/statefp"
	"hmtx/tools/analyzers/statemut"
	"hmtx/tools/analyzers/tracegate"
	"hmtx/tools/analyzers/txbalance"
	"hmtx/tools/analyzers/txpath"
)

var analyzers = []*analysis.Analyzer{
	atomicfield.Analyzer,
	ckptgate.Analyzer,
	detflow.Analyzer,
	detrange.Analyzer,
	domaindrain.Analyzer,
	hotalloc.Analyzer,
	metricsgate.Analyzer,
	noclock.Analyzer,
	profgate.Analyzer,
	statefp.Analyzer,
	statemut.Analyzer,
	tracegate.Analyzer,
	txbalance.Analyzer,
	txpath.Analyzer,
}

// Finding is the stable external format, shared with hmtxreport through
// internal/lintdoc.
type Finding = lintdoc.Finding

func main() {
	log.SetFlags(0)
	log.SetPrefix("hmtxlint: ")
	jsonOut := flag.Bool("json", false, "emit findings as a sorted JSON array on stdout")
	baselinePath := flag.String("baseline", "", "JSON findings file (from a -json run); only findings not in it fail the run")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(patterns...)
	if err != nil {
		log.Fatal(err)
	}

	cwd, _ := os.Getwd()
	runner := analysis.NewRunner()
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			diags, err := runner.Run(pkg, a)
			if err != nil {
				log.Fatal(err)
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				findings = append(findings, Finding{
					File:     relPath(cwd, pos.Filename),
					Line:     pos.Line,
					Col:      pos.Column,
					Analyzer: a.Name,
					Message:  d.Message,
				})
			}
		}
	}
	sortFindings(findings)

	fresh := findings
	if *baselinePath != "" {
		baseline, err := readBaseline(*baselinePath)
		if err != nil {
			log.Fatal(err)
		}
		fresh = diffBaseline(findings, baseline)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []Finding{}
		}
		if err := enc.Encode(lintDoc(findings)); err != nil {
			log.Fatal(err)
		}
	} else {
		for _, f := range fresh {
			fmt.Printf("%s:%d:%d: %s [%s]\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
		}
	}
	if len(fresh) > 0 {
		fmt.Fprintf(os.Stderr, "hmtxlint: %d finding(s)", len(fresh))
		if *baselinePath != "" {
			fmt.Fprintf(os.Stderr, " not in baseline %s", *baselinePath)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(1)
	}
}

// relPath makes name relative to base when that yields a path inside it;
// otherwise the absolute path is kept.
func relPath(base, name string) string {
	if base == "" {
		return name
	}
	rel, err := filepath.Rel(base, name)
	if err != nil || rel == ".." || filepath.IsAbs(rel) || len(rel) > 2 && rel[:3] == ".."+string(filepath.Separator) {
		return name
	}
	return filepath.ToSlash(rel)
}

// sortFindings orders findings for stable output: by file, line, column,
// analyzer, message.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// lintDoc wraps sorted findings in the versioned document: schema header and
// the analyzer roster (name + rule version, sorted by name — the analyzers
// slice is kept sorted).
func lintDoc(findings []Finding) *lintdoc.Doc {
	doc := &lintdoc.Doc{Schema: lintdoc.Schema, Findings: findings}
	for _, a := range analyzers {
		v := a.Version
		if v == "" {
			v = "1"
		}
		doc.Analyzers = append(doc.Analyzers, lintdoc.Analyzer{Name: a.Name, Version: v})
	}
	return doc
}

// readBaseline accepts both baseline formats: the hmtx-lint/v1 document and
// the legacy bare findings array.
func readBaseline(path string) ([]Finding, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var fs []Finding
		if err := json.Unmarshal(data, &fs); err != nil {
			return nil, fmt.Errorf("parsing baseline %s: %v", path, err)
		}
		return fs, nil
	}
	var doc lintdoc.Doc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %v", path, err)
	}
	if doc.Schema != lintdoc.Schema {
		return nil, fmt.Errorf("baseline %s: unsupported schema %q (want %q or a bare findings array)", path, doc.Schema, lintdoc.Schema)
	}
	return doc.Findings, nil
}

// diffBaseline returns the findings not accounted for by the baseline.
// Matching ignores line and column — code above a finding moves it without
// changing what it is — and is multiset-aware: two identical findings need
// two baseline entries.
func diffBaseline(findings, baseline []Finding) []Finding {
	seen := make(map[Finding]int, len(baseline))
	for _, f := range baseline {
		f.Line, f.Col = 0, 0
		seen[f]++
	}
	var fresh []Finding
	for _, f := range findings {
		key := f
		key.Line, key.Col = 0, 0
		if seen[key] > 0 {
			seen[key]--
			continue
		}
		fresh = append(fresh, f)
	}
	return fresh
}
