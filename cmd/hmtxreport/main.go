// Command hmtxreport turns the simulator's metric documents into one
// self-contained report.
//
// Usage:
//
//	hmtxreport [-series SERIES.json] [-conflicts CONFLICTS.json]
//	           [-hist HIST.json] [-prof PROF.json]
//	           [-o report.html] [-title NAME]
//	hmtxreport diff A.json B.json
//
// The default mode consumes any subset of the four artifact kinds the
// simulator emits — "hmtx-series/v1" time series (hmtxsim -series,
// experiments -series), "hmtx-conflicts/v1" conflict graphs,
// "hmtx-hist/v1" latency histograms, and "hmtx-prof/v1" cycle profiles —
// and renders them as one self-contained HTML file (-o): inline-SVG
// time-series charts (commit throughput, abort rate, speculative occupancy,
// and the validation-vs-commit cycle split that shows the paper's §6 shift
// from software validation to hardware commit), conflict-cascade and
// dominant-address tables, latency percentile tables, and the profiler's
// per-line conflict heatmap. Without -o it prints the same content as plain
// text. The HTML contains no scripts and no external references, and is
// byte-identical for byte-identical inputs.
//
// The diff subcommand compares two documents of the same schema (A/B runs,
// e.g. the same suite under different paradigms or configurations), pairing
// entries by label and reporting per-column final deltas (series), percentile
// deltas (hist), or edge/cascade deltas (conflicts). It also accepts the
// "hmtx-lint/v1" documents hmtxlint -json emits, reporting per-analyzer
// version and finding-count drift plus the new/fixed findings themselves.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"hmtx/internal/metrics"
	"hmtx/internal/prof"
	"hmtx/internal/stats"
)

// newFlagSet returns a flag set that reports errors to stderr instead of
// exiting, keeping run testable.
func newFlagSet(name string, stderr io.Writer) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	return fs
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 && args[0] == "diff" {
		return runDiff(args[1:], stdout, stderr)
	}
	return runReport(args, stdout, stderr)
}

// readJSON decodes one JSON document from path into v.
func readJSON(path string, v any) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(buf, v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// checkSchema verifies a document's schema tag.
func checkSchema(path, got, want string) error {
	if got != want {
		return fmt.Errorf("%s: schema %q, want %q", path, got, want)
	}
	return nil
}

func runReport(args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet("hmtxreport", stderr)
	seriesPath := fs.String("series", "", "hmtx-series/v1 time-series document")
	conflictsPath := fs.String("conflicts", "", "hmtx-conflicts/v1 conflict-graph document")
	histPath := fs.String("hist", "", "hmtx-hist/v1 latency-histogram document")
	profPath := fs.String("prof", "", "hmtx-prof/v1 cycle-profile document")
	out := fs.String("o", "", "write a self-contained HTML report to this file (default: plain text to stdout)")
	title := fs.String("title", "HMTX simulation report", "report title")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "hmtxreport: "+format+"\n", a...)
		return 1
	}
	if *seriesPath == "" && *conflictsPath == "" && *histPath == "" && *profPath == "" {
		fs.Usage()
		return 2
	}

	var rep report
	rep.Title = *title
	if *seriesPath != "" {
		var doc metrics.SeriesDoc
		if err := readJSON(*seriesPath, &doc); err != nil {
			return fail("%v", err)
		}
		if err := checkSchema(*seriesPath, doc.Schema, metrics.SeriesSchema); err != nil {
			return fail("%v", err)
		}
		rep.SeriesDoc = &doc
	}
	if *conflictsPath != "" {
		var doc metrics.ConflictDoc
		if err := readJSON(*conflictsPath, &doc); err != nil {
			return fail("%v", err)
		}
		if err := checkSchema(*conflictsPath, doc.Schema, metrics.ConflictSchema); err != nil {
			return fail("%v", err)
		}
		rep.ConflictDoc = &doc
	}
	if *histPath != "" {
		var doc metrics.HistDoc
		if err := readJSON(*histPath, &doc); err != nil {
			return fail("%v", err)
		}
		if err := checkSchema(*histPath, doc.Schema, metrics.HistSchema); err != nil {
			return fail("%v", err)
		}
		rep.HistDoc = &doc
	}
	if *profPath != "" {
		f, err := os.Open(*profPath)
		if err != nil {
			return fail("%v", err)
		}
		doc, err := prof.ReadDoc(f)
		f.Close()
		if err != nil {
			return fail("%v", err)
		}
		rep.ProfDoc = &doc
	}

	if *out == "" {
		rep.writeText(stdout)
		return 0
	}
	html, err := rep.html()
	if err != nil {
		return fail("%v", err)
	}
	if err := os.WriteFile(*out, []byte(html), 0o644); err != nil {
		return fail("%v", err)
	}
	fmt.Fprintf(stdout, "wrote %s\n", *out)
	return 0
}

// report aggregates every loaded artifact.
type report struct {
	Title       string
	SeriesDoc   *metrics.SeriesDoc
	ConflictDoc *metrics.ConflictDoc
	HistDoc     *metrics.HistDoc
	ProfDoc     *prof.Doc
}

// writeText renders the plain-text report.
func (r *report) writeText(w io.Writer) {
	fmt.Fprintf(w, "%s\n%s\n", r.Title, strings.Repeat("=", len(r.Title)))
	if r.SeriesDoc != nil {
		for i := range r.SeriesDoc.Series {
			fmt.Fprintln(w)
			fmt.Fprint(w, r.SeriesDoc.Series[i].Text())
		}
	}
	if r.ConflictDoc != nil {
		for i := range r.ConflictDoc.Graphs {
			fmt.Fprintln(w)
			fmt.Fprint(w, r.ConflictDoc.Graphs[i].Text())
		}
	}
	if r.HistDoc != nil {
		for i := range r.HistDoc.Histograms {
			fmt.Fprintln(w)
			fmt.Fprint(w, r.HistDoc.Histograms[i].Text())
		}
	}
	if r.ProfDoc != nil {
		for i := range r.ProfDoc.Profiles {
			fmt.Fprintln(w)
			fmt.Fprint(w, heatmapText(&r.ProfDoc.Profiles[i]))
		}
	}
}

// heatmapText renders one profile's per-line conflict heatmap as text.
func heatmapText(p *prof.Profile) string {
	out := fmt.Sprintf("per-line heatmap: %s\n", p.Label)
	if len(p.HotLines) == 0 {
		return out + "(no hot lines)\n"
	}
	var t stats.Table
	t.Add("line", "conflicts", "overflows", "peer-xfer", "access-cycles", "wasted-cycles")
	for _, l := range p.HotLines {
		t.AddF(l.Addr, l.Conflicts, l.Overflows, l.PeerTransfers, l.AccessCycles, l.WastedCycles)
	}
	return out + t.String()
}
