package main

import (
	"fmt"
	"html/template"
	"strings"

	"hmtx/internal/metrics"
	"hmtx/internal/prof"
)

// chartLine is one polyline of a chart: a named value sequence index-aligned
// with the chart's cycle axis.
type chartLine struct {
	Name   string
	Color  string
	Values []float64
}

// palette is the fixed line-color rotation; a fixed palette keeps the HTML
// byte-identical across runs.
var palette = [...]string{"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b"}

// svgChart renders one deterministic inline-SVG line chart: no scripts, no
// external references. Returns an empty string when there is nothing to plot.
func svgChart(title string, cycles []int64, lines []chartLine) template.HTML {
	const (
		w, h          = 720, 190
		mLeft, mRight = 60, 10
		mTop, mBottom = 24, 22
		plotW, plotH  = w - mLeft - mRight, h - mTop - mBottom
	)
	if len(cycles) < 2 {
		return ""
	}
	var yMax float64
	for _, l := range lines {
		for _, v := range l.Values {
			if v > yMax {
				yMax = v
			}
		}
	}
	if yMax == 0 {
		yMax = 1
	}
	x0, x1 := float64(cycles[0]), float64(cycles[len(cycles)-1])
	if x1 == x0 {
		x1 = x0 + 1
	}
	xAt := func(c int64) float64 { return mLeft + (float64(c)-x0)/(x1-x0)*plotW }
	yAt := func(v float64) float64 { return mTop + (1-v/yMax)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg width="%d" height="%d" viewBox="0 0 %d %d" role="img">`, w, h, w, h)
	fmt.Fprintf(&b, `<text x="%d" y="14" class="ct">%s</text>`, mLeft, template.HTMLEscapeString(title))
	// Axes and y-gridlines at 0, 1/2 and max.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" class="ax"/>`, mLeft, mTop, mLeft, mTop+plotH)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" class="ax"/>`, mLeft, mTop+plotH, mLeft+plotW, mTop+plotH)
	for _, f := range []float64{0, 0.5, 1} {
		y := yAt(yMax * f)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" class="gr"/>`, mLeft, y, mLeft+plotW, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" class="tl" text-anchor="end">%.0f</text>`, mLeft-4, y+4, yMax*f)
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" class="tl">%d</text>`, mLeft, h-6, cycles[0])
	fmt.Fprintf(&b, `<text x="%d" y="%d" class="tl" text-anchor="end">%d cycles</text>`, mLeft+plotW, h-6, cycles[len(cycles)-1])
	for li, l := range lines {
		var pts strings.Builder
		for i, v := range l.Values {
			if i > 0 {
				pts.WriteByte(' ')
			}
			fmt.Fprintf(&pts, "%.1f,%.1f", xAt(cycles[i]), yAt(v))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`, pts.String(), l.Color)
		// Legend swatch + name, laid out left to right under the title.
		lx := mLeft + 150*li
		fmt.Fprintf(&b, `<rect x="%d" y="18" width="9" height="3" fill="%s"/>`, lx+70, l.Color)
		fmt.Fprintf(&b, `<text x="%d" y="23" class="tl">%s</text>`, lx+84, template.HTMLEscapeString(l.Name))
	}
	b.WriteString(`</svg>`)
	return template.HTML(b.String())
}

// deltas converts a cumulative column to per-window deltas (rates).
func deltas(vals []uint64) []float64 {
	out := make([]float64, len(vals))
	for i, v := range vals {
		if i > 0 {
			out[i] = float64(v) - float64(vals[i-1])
		} else {
			out[i] = float64(v)
		}
	}
	return out
}

// seriesView is one series' rendered chart set.
type seriesView struct {
	Label  string
	Charts []template.HTML
}

// seriesCharts builds the chart set of one series: commit/abort rates, the
// validation-vs-commit cycle split (the §6 shift), and speculative occupancy.
func seriesCharts(sr *metrics.Series) seriesView {
	v := seriesView{Label: sr.Label}
	add := func(title string, lines []chartLine) {
		var any bool
		for _, l := range lines {
			if l.Values != nil {
				any = true
			}
		}
		if !any {
			return
		}
		if c := svgChart(title, sr.Cycles, lines); c != "" {
			v.Charts = append(v.Charts, c)
		}
	}
	line := func(i int, name, col string, f func([]uint64) []float64) chartLine {
		vals := sr.Col(col)
		if vals == nil {
			return chartLine{Name: name, Color: palette[i%len(palette)]}
		}
		return chartLine{Name: name, Color: palette[i%len(palette)], Values: f(vals)}
	}
	raw := func(vals []uint64) []float64 {
		out := make([]float64, len(vals))
		for i, x := range vals {
			out[i] = float64(x)
		}
		return out
	}
	add("Commit throughput and aborts (per window)", []chartLine{
		line(0, "commits", "txs_committed", deltas),
		line(1, "aborts", "aborts", deltas),
	})
	add("Validation vs commit cycles (per window)", []chartLine{
		line(0, "validation", "validation_cycles", deltas),
		line(1, "commit", "commit_cycles", deltas),
	})
	add("Speculative cache-line occupancy", []chartLine{
		line(2, "spec lines", "spec_lines", raw),
	})
	add("Commit stall cycles (per window)", []chartLine{
		line(3, "commit stalls", "commit_stall_cycles", deltas),
	})
	return v
}

// heatRow is one row of the per-line heatmap with its precomputed cell shade.
type heatRow struct {
	Line  prof.LineProfile
	Shade template.CSS
}

// profView is one profile's heatmap rendering.
type profView struct {
	Label string
	Rows  []heatRow
}

func profViews(doc *prof.Doc) []profView {
	var out []profView
	for i := range doc.Profiles {
		p := &doc.Profiles[i]
		v := profView{Label: p.Label}
		var max int64
		for _, l := range p.HotLines {
			if t := l.AccessCycles + l.WastedCycles; t > max {
				max = t
			}
		}
		if max == 0 {
			max = 1
		}
		for _, l := range p.HotLines {
			// Shade intensity follows the line's share of the hottest
			// line's cycles; two decimals keep the bytes stable.
			alpha := float64(l.AccessCycles+l.WastedCycles) / float64(max)
			shade := template.CSS(fmt.Sprintf("background:rgba(214,39,40,%.2f)", alpha*0.6))
			v.Rows = append(v.Rows, heatRow{Line: l, Shade: shade})
		}
		out = append(out, v)
	}
	return out
}

var reportTmpl = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{{.Title}}</title>
<style>
body { font-family: sans-serif; margin: 2em; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.15em; margin-top: 2em; } h3 { font-size: 1em; }
table { border-collapse: collapse; margin: 0.5em 0; }
th, td { border: 1px solid #ccc; padding: 2px 8px; font-size: 0.85em; text-align: right; }
th { background: #f0f0f0; } td:first-child, th:first-child { text-align: left; }
svg { margin: 0.5em 0; }
svg .ct { font-size: 12px; font-weight: bold; }
svg .tl { font-size: 10px; fill: #555; }
svg .ax { stroke: #333; stroke-width: 1; }
svg .gr { stroke: #ddd; stroke-width: 0.5; }
.empty { color: #777; font-style: italic; }
</style>
</head>
<body>
<h1>{{.Title}}</h1>
{{if .Series}}<h2>Time series</h2>
{{range .Series}}<h3>{{.Label}}</h3>
{{if .Charts}}{{range .Charts}}{{.}}
{{end}}{{else}}<p class="empty">not enough samples to chart</p>{{end}}
{{end}}{{end}}
{{if .Conflicts}}<h2>Conflicts</h2>
{{range .Conflicts}}<h3>{{.Label}}</h3>
<p>{{.Nodes}} transactions, {{len .Edges}} abort edges, {{len .Cascades}} cascades (window {{.Window}} cycles)</p>
{{if .Cascades}}<table>
<tr><th>cascade</th><th>start</th><th>end</th><th>edges</th><th>transactions</th></tr>
{{range $i, $c := .Cascades}}<tr><td>{{$i}}</td><td>{{$c.Start}}</td><td>{{$c.End}}</td><td>{{$c.Edges}}</td><td>{{range $j, $t := $c.Txs}}{{if $j}}, {{end}}{{$t}}{{end}}</td></tr>
{{end}}</table>{{end}}
{{if .TopAddrs}}<table>
<tr><th>line</th><th>edges</th><th>conflicts</th><th>SLA</th><th>overflow</th><th>explicit</th></tr>
{{range .TopAddrs}}<tr><td>{{.Addr}}</td><td>{{.Total}}</td><td>{{.Conflicts}}</td><td>{{.SLAs}}</td><td>{{.Overflows}}</td><td>{{.Explicits}}</td></tr>
{{end}}</table>{{end}}
{{end}}{{end}}
{{if .Hists}}<h2>Latency</h2>
{{range .Hists}}<h3>{{.Label}}</h3>
<table>
<tr><th>histogram</th><th>count</th><th>mean</th><th>p50</th><th>p95</th><th>p99</th><th>p999</th><th>max</th></tr>
{{range .Hists}}<tr><td>{{.Name}}</td><td>{{.Total}}</td>{{if .Total}}<td>{{.Mean}}</td><td>{{.P50}}</td><td>{{.P95}}</td><td>{{.P99}}</td><td>{{.P999}}</td><td>{{.Max}}</td>{{else}}<td>-</td><td>-</td><td>-</td><td>-</td><td>-</td><td>-</td>{{end}}</tr>
{{end}}</table>
{{end}}{{end}}
{{if .Profs}}<h2>Per-line heatmap</h2>
{{range .Profs}}<h3>{{.Label}}</h3>
{{if .Rows}}<table>
<tr><th>line</th><th>conflicts</th><th>overflows</th><th>peer transfers</th><th>access cycles</th><th>wasted cycles</th></tr>
{{range .Rows}}<tr style="{{.Shade}}"><td>{{.Line.Addr}}</td><td>{{.Line.Conflicts}}</td><td>{{.Line.Overflows}}</td><td>{{.Line.PeerTransfers}}</td><td>{{.Line.AccessCycles}}</td><td>{{.Line.WastedCycles}}</td></tr>
{{end}}</table>{{else}}<p class="empty">no hot lines</p>{{end}}
{{end}}{{end}}
</body>
</html>
`))

// html renders the full self-contained report.
func (r *report) html() (string, error) {
	data := struct {
		Title     string
		Series    []seriesView
		Conflicts []metrics.Graph
		Hists     []metrics.LabeledHists
		Profs     []profView
	}{Title: r.Title}
	if r.SeriesDoc != nil {
		for i := range r.SeriesDoc.Series {
			data.Series = append(data.Series, seriesCharts(&r.SeriesDoc.Series[i]))
		}
	}
	if r.ConflictDoc != nil {
		data.Conflicts = r.ConflictDoc.Graphs
	}
	if r.HistDoc != nil {
		data.Hists = r.HistDoc.Histograms
	}
	if r.ProfDoc != nil {
		data.Profs = profViews(r.ProfDoc)
	}
	var b strings.Builder
	if err := reportTmpl.Execute(&b, data); err != nil {
		return "", err
	}
	return b.String(), nil
}
