package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hmtx/internal/lintdoc"
	"hmtx/internal/metrics"
	"hmtx/internal/prof"
)

// fixtures writes one of each artifact kind to dir and returns the paths.
func fixtures(t *testing.T, dir string) (series, conflicts, hist, profile string) {
	t.Helper()

	sm := metrics.NewSampler(100)
	var commits, val uint64
	sm.Probe("txs_committed", func() uint64 { return commits })
	sm.Probe("aborts", func() uint64 { return 0 })
	sm.Probe("validation_cycles", func() uint64 { return val })
	sm.Probe("commit_cycles", func() uint64 { return 40 })
	sm.Probe("spec_lines", func() uint64 { return 7 })
	for i := int64(1); i <= 5; i++ {
		commits, val = uint64(i), uint64(i*300)
		sm.Tick(i * 100)
	}
	sdoc := metrics.SeriesDoc{Schema: metrics.SeriesSchema, Scale: 1, Cores: 4,
		Series: []metrics.Series{sm.Snapshot("bench/hmtx")}}

	rec := metrics.NewRecorder(100)
	rec.SetTime(50)
	rec.Record(1, 2, 0x40, metrics.EdgeConflict)
	rec.SetTime(80)
	rec.Record(2, 3, 0x40, metrics.EdgeConflict)
	cdoc := metrics.ConflictDoc{Schema: metrics.ConflictSchema, Scale: 1, Cores: 4,
		Graphs: []metrics.Graph{rec.Snapshot("bench/hmtx")}}

	l := metrics.NewLatHists()
	for i := uint64(1); i <= 100; i++ {
		l.Open.Observe(i * 10)
		l.CommitArb.Observe(i % 3)
	}
	hdoc := metrics.HistDoc{Schema: metrics.HistSchema, Scale: 1, Cores: 4,
		Histograms: []metrics.LabeledHists{l.Snapshot("bench/hmtx")}}

	pdoc := prof.Doc{Schema: prof.Schema, Scale: 1, Cores: 4, Profiles: []prof.Profile{{
		Label: "bench/hmtx", Workload: "bench", System: "hmtx", Paradigm: "DOALL",
		Runs: 1, TotalCycles: 1000, CoreCycles: 1000,
		Buckets: map[string]int64{"compute": 1000},
		HotLines: []prof.LineProfile{
			{Addr: "0x40", Conflicts: 2, AccessCycles: 500, WastedCycles: 100},
			{Addr: "0x80", Conflicts: 1, AccessCycles: 200},
		},
	}}}

	write := func(name string, v any) string {
		buf, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	return write("series.json", sdoc), write("conflicts.json", cdoc),
		write("hist.json", hdoc), write("prof.json", pdoc)
}

// TestReportHTML verifies the HTML report: all four sections render, the §6
// validation-vs-commit chart is present, the output is self-contained, and
// byte-identical across runs.
func TestReportHTML(t *testing.T) {
	dir := t.TempDir()
	sp, cp, hp, pp := fixtures(t, dir)
	render := func(out string) string {
		var stdout, stderr bytes.Buffer
		code := run([]string{"-series", sp, "-conflicts", cp, "-hist", hp, "-prof", pp, "-o", out}, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, stderr.String())
		}
		buf, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		return string(buf)
	}
	html := render(filepath.Join(dir, "a.html"))
	for _, want := range []string{
		"<h2>Time series</h2>",
		"Validation vs commit cycles",
		"Commit throughput and aborts",
		"<polyline",
		"<h2>Conflicts</h2>",
		"2 abort edges",
		"<h2>Latency</h2>",
		"open_to_commit",
		"<h2>Per-line heatmap</h2>",
		"rgba(214,39,40,0.60)",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("report missing %q", want)
		}
	}
	for _, banned := range []string{"<script", "http://", "https://"} {
		if strings.Contains(html, banned) {
			t.Errorf("report not self-contained: found %q", banned)
		}
	}
	if html2 := render(filepath.Join(dir, "b.html")); html2 != html {
		t.Error("HTML differs across identical runs")
	}
}

// TestReportText verifies the plain-text mode renders every section.
func TestReportText(t *testing.T) {
	dir := t.TempDir()
	sp, cp, hp, pp := fixtures(t, dir)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-series", sp, "-conflicts", cp, "-hist", hp, "-prof", pp}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"time series: bench/hmtx", "conflict graph: bench/hmtx",
		"latency histograms: bench/hmtx", "per-line heatmap: bench/hmtx"} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q:\n%s", want, out)
		}
	}
}

// TestDiff verifies the diff subcommand on each schema and its schema
// mismatch error.
func TestDiff(t *testing.T) {
	dir := t.TempDir()
	sp, cp, hp, _ := fixtures(t, dir)

	for _, tc := range []struct {
		path, want string
	}{
		{sp, "txs_committed"},
		{cp, "A edges"},
		{hp, "p50 B/A"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run([]string{"diff", tc.path, tc.path}, &stdout, &stderr); code != 0 {
			t.Fatalf("diff exit %d, stderr: %s", code, stderr.String())
		}
		if !strings.Contains(stdout.String(), tc.want) {
			t.Errorf("diff of %s missing %q:\n%s", tc.path, tc.want, stdout.String())
		}
		// Self-diff of a series must show 1.00x ratios.
		if tc.path == sp && !strings.Contains(stdout.String(), "1.00x") {
			t.Errorf("series self-diff missing 1.00x:\n%s", stdout.String())
		}
	}

	var stdout, stderr bytes.Buffer
	if code := run([]string{"diff", sp, hp}, &stdout, &stderr); code != 1 {
		t.Fatalf("schema mismatch: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "schema mismatch") {
		t.Errorf("stderr = %q", stderr.String())
	}

	// A checkpoint is not a metric document: the diff must refuse it and
	// point at hmtxdbg rather than report an unknown schema.
	kp := filepath.Join(dir, "ckpt.json")
	if err := os.WriteFile(kp, []byte(`{"schema": "hmtx-ckpt/v1", "kind": "run"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"diff", kp, kp}, &stdout, &stderr); code != 1 {
		t.Fatalf("ckpt diff: exit %d, want 1", code)
	}
	if msg := stderr.String(); !strings.Contains(msg, "hmtxdbg") || !strings.Contains(msg, "hmtx-ckpt/v1") {
		t.Errorf("ckpt diff stderr should point at hmtxdbg, got %q", msg)
	}
}

// TestDiffLint verifies the hmtx-lint/v1 diff: roster table, new and fixed
// finding movement, and line-drift tolerance.
func TestDiffLint(t *testing.T) {
	dir := t.TempDir()
	a := lintdoc.Doc{Schema: lintdoc.Schema,
		Analyzers: []lintdoc.Analyzer{{Name: "domaindrain", Version: "2"}, {Name: "hotalloc", Version: "1"}},
		Findings: []lintdoc.Finding{
			{File: "x.go", Line: 10, Col: 2, Analyzer: "hotalloc", Message: "make allocates"},
			{File: "x.go", Line: 20, Col: 2, Analyzer: "hotalloc", Message: "fixed later"},
		}}
	b := lintdoc.Doc{Schema: lintdoc.Schema,
		Analyzers: a.Analyzers,
		Findings: []lintdoc.Finding{
			// Same finding, moved: must not count as new.
			{File: "x.go", Line: 14, Col: 2, Analyzer: "hotalloc", Message: "make allocates"},
			{File: "y.go", Line: 1, Col: 1, Analyzer: "domaindrain", Message: "brand new"},
		}}
	write := func(name string, v any) string {
		buf, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	pa, pb := write("a.json", a), write("b.json", b)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"diff", pa, pb}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"lint diff: A has 2 findings, B has 2",
		"domaindrain",
		"new in B",
		"brand new",
		"fixed in B",
		"fixed later",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("lint diff missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "make allocates") {
		t.Errorf("moved finding reported as churn:\n%s", out)
	}
}

// TestBadInput verifies argument and file errors.
func TestBadInput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{}, &stdout, &stderr); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := run([]string{"-series", "/nonexistent.json"}, &stdout, &stderr); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
	if code := run([]string{"diff", "only-one.json"}, &stdout, &stderr); code != 2 {
		t.Errorf("diff one arg: exit %d, want 2", code)
	}

	// A series document with the wrong schema tag must be rejected.
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"hmtx-prof/v1","series":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-series", bad}, &stdout, &stderr); code != 1 {
		t.Errorf("wrong schema: exit %d, want 1", code)
	}
}
