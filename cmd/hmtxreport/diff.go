package main

import (
	"fmt"
	"io"
	"sort"

	"hmtx/internal/ckpt"
	"hmtx/internal/lintdoc"
	"hmtx/internal/metrics"
	"hmtx/internal/stats"
)

// runDiff compares two metric documents of the same schema, pairing entries
// by label: hmtxreport diff A.json B.json.
func runDiff(args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet("hmtxreport diff", stderr)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "hmtxreport: "+format+"\n", a...)
		return 1
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: hmtxreport diff A.json B.json")
		return 2
	}
	pa, pb := fs.Arg(0), fs.Arg(1)

	var sa, sb struct {
		Schema string `json:"schema"`
	}
	if err := readJSON(pa, &sa); err != nil {
		return fail("%v", err)
	}
	if err := readJSON(pb, &sb); err != nil {
		return fail("%v", err)
	}
	if sa.Schema != sb.Schema {
		return fail("schema mismatch: %s is %q, %s is %q", pa, sa.Schema, pb, sb.Schema)
	}

	switch sa.Schema {
	case metrics.SeriesSchema:
		var a, b metrics.SeriesDoc
		if err := readJSON(pa, &a); err != nil {
			return fail("%v", err)
		}
		if err := readJSON(pb, &b); err != nil {
			return fail("%v", err)
		}
		diffSeries(stdout, &a, &b)
	case metrics.ConflictSchema:
		var a, b metrics.ConflictDoc
		if err := readJSON(pa, &a); err != nil {
			return fail("%v", err)
		}
		if err := readJSON(pb, &b); err != nil {
			return fail("%v", err)
		}
		diffConflicts(stdout, &a, &b)
	case metrics.HistSchema:
		var a, b metrics.HistDoc
		if err := readJSON(pa, &a); err != nil {
			return fail("%v", err)
		}
		if err := readJSON(pb, &b); err != nil {
			return fail("%v", err)
		}
		diffHists(stdout, &a, &b)
	case lintdoc.Schema:
		var a, b lintdoc.Doc
		if err := readJSON(pa, &a); err != nil {
			return fail("%v", err)
		}
		if err := readJSON(pb, &b); err != nil {
			return fail("%v", err)
		}
		diffLint(stdout, &a, &b)
	case ckpt.Schema:
		// Checkpoints are simulation state, not metrics: two checkpoints of
		// the same configuration differ in machine state, which hmtxdbg can
		// diff cycle against cycle (EXPERIMENTS.md "Debugging an abort
		// storm"). Point there instead of pretending a metric diff applies.
		return fail("%s is an %s checkpoint, not a metric document; open it with hmtxdbg (its diff command compares machine state across cycles)", pa, ckpt.Schema)
	default:
		return fail("unsupported schema %q (want series, conflicts, hist, or lint)", sa.Schema)
	}
	return 0
}

// pairs walks A's entries in order, pairing each with B's same-labelled entry
// when present; B-only entries follow in B's order. Label order is input
// order, so the diff is deterministic.
func pairs(aLabels, bLabels []string) [][2]int {
	bIdx := make(map[string]int, len(bLabels))
	for i, l := range bLabels {
		bIdx[l] = i
	}
	seen := make(map[string]bool, len(aLabels))
	var out [][2]int
	for i, l := range aLabels {
		j, ok := bIdx[l]
		if !ok {
			j = -1
		}
		seen[l] = true
		out = append(out, [2]int{i, j})
	}
	for j, l := range bLabels {
		if !seen[l] {
			out = append(out, [2]int{-1, j})
		}
	}
	return out
}

// ratio renders b/a, guarding the empty sides.
func ratio(a, b float64) string {
	if a == 0 {
		if b == 0 {
			return "-"
		}
		return "new"
	}
	return fmt.Sprintf("%.2fx", b/a)
}

// diffSeries compares the final cumulative value of every column of every
// same-labelled series.
func diffSeries(w io.Writer, a, b *metrics.SeriesDoc) {
	la := make([]string, len(a.Series))
	for i := range a.Series {
		la[i] = a.Series[i].Label
	}
	lb := make([]string, len(b.Series))
	for i := range b.Series {
		lb[i] = b.Series[i].Label
	}
	fmt.Fprintf(w, "series diff: A has %d series, B has %d\n", len(a.Series), len(b.Series))
	for _, p := range pairs(la, lb) {
		switch {
		case p[1] < 0:
			fmt.Fprintf(w, "\n%s: only in A\n", a.Series[p[0]].Label)
		case p[0] < 0:
			fmt.Fprintf(w, "\n%s: only in B\n", b.Series[p[1]].Label)
		default:
			sa, sb := &a.Series[p[0]], &b.Series[p[1]]
			fmt.Fprintf(w, "\n%s (A: %d samples, B: %d samples)\n", sa.Label, len(sa.Cycles), len(sb.Cycles))
			var t stats.Table
			t.Add("column", "A final", "B final", "B/A")
			for _, c := range sa.Cols {
				var fa, fb uint64
				if len(c.Values) > 0 {
					fa = c.Values[len(c.Values)-1]
				}
				if bv := sb.Col(c.Name); len(bv) > 0 {
					fb = bv[len(bv)-1]
				}
				t.AddF(c.Name, fa, fb, ratio(float64(fa), float64(fb)))
			}
			fmt.Fprint(w, t.String())
		}
	}
}

// diffConflicts compares edge, cascade and node counts per labelled graph.
func diffConflicts(w io.Writer, a, b *metrics.ConflictDoc) {
	la := make([]string, len(a.Graphs))
	for i := range a.Graphs {
		la[i] = a.Graphs[i].Label
	}
	lb := make([]string, len(b.Graphs))
	for i := range b.Graphs {
		lb[i] = b.Graphs[i].Label
	}
	fmt.Fprintf(w, "conflict diff: A has %d graphs, B has %d\n\n", len(a.Graphs), len(b.Graphs))
	var t stats.Table
	t.Add("label", "A edges", "B edges", "A cascades", "B cascades", "A txs", "B txs")
	for _, p := range pairs(la, lb) {
		var ga, gb *metrics.Graph
		label := ""
		if p[0] >= 0 {
			ga = &a.Graphs[p[0]]
			label = ga.Label
		}
		if p[1] >= 0 {
			gb = &b.Graphs[p[1]]
			label = gb.Label
		}
		cell := func(g *metrics.Graph, f func(*metrics.Graph) int) string {
			if g == nil {
				return "-"
			}
			return fmt.Sprint(f(g))
		}
		edges := func(g *metrics.Graph) int { return len(g.Edges) }
		cascades := func(g *metrics.Graph) int { return len(g.Cascades) }
		nodes := func(g *metrics.Graph) int { return g.Nodes }
		t.AddF(label, cell(ga, edges), cell(gb, edges), cell(ga, cascades), cell(gb, cascades),
			cell(ga, nodes), cell(gb, nodes))
	}
	fmt.Fprint(w, t.String())
}

// diffHists compares the percentiles of every histogram of every
// same-labelled set.
func diffHists(w io.Writer, a, b *metrics.HistDoc) {
	la := make([]string, len(a.Histograms))
	for i := range a.Histograms {
		la[i] = a.Histograms[i].Label
	}
	lb := make([]string, len(b.Histograms))
	for i := range b.Histograms {
		lb[i] = b.Histograms[i].Label
	}
	fmt.Fprintf(w, "latency diff: A has %d sets, B has %d\n", len(a.Histograms), len(b.Histograms))
	for _, p := range pairs(la, lb) {
		switch {
		case p[1] < 0:
			fmt.Fprintf(w, "\n%s: only in A\n", a.Histograms[p[0]].Label)
		case p[0] < 0:
			fmt.Fprintf(w, "\n%s: only in B\n", b.Histograms[p[1]].Label)
		default:
			ha, hb := &a.Histograms[p[0]], &b.Histograms[p[1]]
			fmt.Fprintf(w, "\n%s\n", ha.Label)
			byName := make(map[string]*metrics.HistSnapshot, len(hb.Hists))
			var names []string
			for i := range hb.Hists {
				byName[hb.Hists[i].Name] = &hb.Hists[i]
				names = append(names, hb.Hists[i].Name)
			}
			_ = names
			var t stats.Table
			t.Add("histogram", "A count", "B count", "A p50", "B p50", "A p95", "B p95", "A p99", "B p99", "p50 B/A")
			for i := range ha.Hists {
				x := &ha.Hists[i]
				y := byName[x.Name]
				if y == nil {
					t.AddF(x.Name, x.Total, "-", x.P50, "-", x.P95, "-", x.P99, "-", "-")
					continue
				}
				t.AddF(x.Name, x.Total, y.Total, x.P50, y.P50, x.P95, y.P95, x.P99, y.P99,
					ratio(float64(x.P50), float64(y.P50)))
			}
			fmt.Fprint(w, t.String())
		}
	}
}

// diffLint compares two hmtx-lint/v1 documents: the analyzer roster (rule
// versions and finding counts per analyzer) and the finding movement —
// matching ignores line and column, like the hmtxlint baseline differ, so
// unrelated edits above a finding do not show up as churn.
func diffLint(w io.Writer, a, b *lintdoc.Doc) {
	fmt.Fprintf(w, "lint diff: A has %d findings, B has %d\n\n", len(a.Findings), len(b.Findings))

	verA := map[string]string{}
	verB := map[string]string{}
	cntA := map[string]int{}
	cntB := map[string]int{}
	for _, an := range a.Analyzers {
		verA[an.Name] = an.Version
	}
	for _, an := range b.Analyzers {
		verB[an.Name] = an.Version
	}
	for _, f := range a.Findings {
		cntA[f.Analyzer]++
	}
	for _, f := range b.Findings {
		cntB[f.Analyzer]++
	}
	nameSet := map[string]bool{}
	for n := range verA {
		nameSet[n] = true
	}
	for n := range verB {
		nameSet[n] = true
	}
	names := make([]string, 0, len(nameSet))
	for n := range nameSet {
		names = append(names, n)
	}
	sort.Strings(names)
	var t stats.Table
	t.Add("analyzer", "A ver", "B ver", "A findings", "B findings")
	cell := func(m map[string]string, n string) string {
		if v, ok := m[n]; ok {
			return v
		}
		return "-"
	}
	for _, n := range names {
		t.AddF(n, cell(verA, n), cell(verB, n), cntA[n], cntB[n])
	}
	fmt.Fprint(w, t.String())

	key := func(f lintdoc.Finding) lintdoc.Finding {
		f.Line, f.Col = 0, 0
		return f
	}
	printMoves := func(header string, from, to []lintdoc.Finding) {
		seen := map[lintdoc.Finding]int{}
		for _, f := range from {
			seen[key(f)]++
		}
		var out []lintdoc.Finding
		for _, f := range to {
			k := key(f)
			if seen[k] > 0 {
				seen[k]--
				continue
			}
			out = append(out, f)
		}
		if len(out) == 0 {
			return
		}
		fmt.Fprintf(w, "\n%s:\n", header)
		for _, f := range out {
			fmt.Fprintf(w, "  %s:%d:%d: %s [%s]\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
		}
	}
	printMoves("new in B", a.Findings, b.Findings)
	printMoves("fixed in B (present only in A)", b.Findings, a.Findings)
}
