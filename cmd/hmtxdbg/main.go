// Command hmtxdbg is the time-travel debugger for hmtx-ckpt/v1 checkpoints
// (DESIGN.md §18): it re-materialises any simulated instant of a checkpointed
// run by deterministic re-execution, and steps through model-checker
// counterexamples stimulus by stimulus.
//
// Usage:
//
//	hmtxdbg [-c "cmd; cmd; ..."] checkpoint.json
//
// With -c the command list runs in batch mode; otherwise hmtxdbg reads
// commands interactively from stdin. Commands:
//
//	seek N              go to simulated cycle N (run) or stimulus step N (check)
//	step [cycle|event|tx]  advance one cycle, one engine event, or to the next
//	                    transaction begin/commit/abort (check: one stimulus)
//	continue            run forward until a watchpoint hits
//	watch line ADDR     break on any load/store of the line
//	watch state ADDR    break when the line's MOESI state changes in any cache
//	watch version ADDR  break when a new speculative version of the line appears
//	watch vid N         break on begin/commit/abort of transaction sequence N
//	watch abort         break on any explicit transaction abort
//	watch               list watchpoints;  delete N removes one
//	line ADDR           MOESI state, version chain and data of a cache line
//	tx N                VID mapping and read/write footprint of a transaction
//	core N              resident lines of core N's L1 (and its last event)
//	diff A B            state differences between cycles/steps A and B
//	info                current position;  trace (check) prints the stimulus trace
//	dump                render every valid line in the hierarchy
//	help                command summary;  quit exits
//
// Time travel never suspends the simulation: a "run" checkpoint pins a
// quiescent engine boundary, and every seek re-executes deterministically
// from that boundary with a capture hook, snapshotting the memory hierarchy
// the first time the target instant (or a watchpoint) is reached. Seeking
// backwards is just another re-execution. "check" checkpoints replay the
// counterexample's stimulus prefix instead; the engine is not involved.
//
// Attaching the debug hook forces the serial reference scheduler (like
// -trace), so captures are exact regardless of the checkpoint's -domains.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"hmtx/internal/check"
	"hmtx/internal/ckpt"
	"hmtx/internal/engine"
	"hmtx/internal/hmtx"
	"hmtx/internal/memsys"
	"hmtx/internal/paradigm"
	"hmtx/internal/vid"
	"hmtx/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hmtxdbg", flag.ContinueOnError)
	fs.SetOutput(stderr)
	script := fs.String("c", "", "execute this semicolon-separated command list and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: hmtxdbg [-c \"cmd; cmd\"] checkpoint.json")
		return 2
	}
	doc, err := ckpt.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "hmtxdbg: %v\n", err)
		return 1
	}
	d := &dbg{doc: doc, out: stdout}
	switch doc.Kind {
	case ckpt.KindRun:
		err = d.openRun()
	case ckpt.KindCheck:
		err = d.openCheck()
	default:
		err = fmt.Errorf("%s records experiment-suite progress, not machine state; resume it with cmd/experiments -resume", fs.Arg(0))
	}
	if err != nil {
		fmt.Fprintf(stderr, "hmtxdbg: %v\n", err)
		return 1
	}

	exec := func(line string) bool {
		line = strings.TrimSpace(line)
		if line == "" {
			return true
		}
		if line == "quit" || line == "q" || line == "exit" {
			return false
		}
		if err := d.do(line); err != nil {
			fmt.Fprintf(stdout, "error: %v\n", err)
		}
		return true
	}

	if *script != "" {
		for _, c := range strings.Split(*script, ";") {
			if !exec(c) {
				break
			}
		}
		return 0
	}
	sc := bufio.NewScanner(stdin)
	for {
		fmt.Fprint(stdout, "(hmtxdbg) ")
		if !sc.Scan() {
			fmt.Fprintln(stdout)
			return 0
		}
		if !exec(sc.Text()) {
			return 0
		}
	}
}

// snap is one re-materialised instant of a checkpointed run: the event that
// was about to execute, its position, and a deep copy of the hierarchy.
type snap struct {
	cycle    int64
	idx      int // event index since the checkpoint boundary; -1 = boundary
	ev       *engine.DebugEvent
	h        *memsys.Hierarchy
	lastCore map[int]engine.DebugEvent
}

type watchpoint struct {
	kind string // "line", "state", "version", "vid", "abort"
	addr memsys.Addr
	seq  vid.Seq
}

func (w watchpoint) String() string {
	switch w.kind {
	case "line", "state", "version":
		return fmt.Sprintf("%s %#x", w.kind, w.addr)
	case "vid":
		return fmt.Sprintf("vid %d", w.seq)
	default:
		return w.kind
	}
}

type dbg struct {
	doc     *ckpt.Doc
	out     io.Writer
	watches []watchpoint

	// run kind
	spec    workloads.Spec
	kind    paradigm.Kind
	cur     *snap
	endSeen int64 // highest event cycle observed in a full re-execution

	// check kind
	steps   []check.Stimulus
	stepIdx int
	curH    *memsys.Hierarchy
}

func (d *dbg) isRun() bool { return d.doc.Kind == ckpt.KindRun }

// nCaches returns the cache count: one L1 per core plus the shared L2.
func (d *dbg) nCaches() int {
	if d.isRun() {
		return d.doc.Run.EngineCfg.Mem.Cores + 1
	}
	return d.doc.Check.Config.Cores + 1
}

func (d *dbg) cacheName(i int) string {
	if i == d.nCaches()-1 {
		return "l2"
	}
	return fmt.Sprintf("l1[%d]", i)
}

func (d *dbg) hier() *memsys.Hierarchy {
	if d.isRun() {
		return d.cur.h
	}
	return d.curH
}

func (d *dbg) openRun() error {
	rs := d.doc.Run
	spec, err := workloads.ByName(rs.Bench)
	if err != nil {
		return err
	}
	d.spec = spec
	d.kind = paradigm.Sequential
	for _, k := range []paradigm.Kind{paradigm.DOALL, paradigm.DOACROSS, paradigm.DSWP, paradigm.PSDSWP} {
		if k.String() == rs.Paradigm {
			d.kind = k
		}
	}
	if d.kind == paradigm.Sequential {
		return fmt.Errorf("checkpoint records unknown paradigm %q", rs.Paradigm)
	}
	// The initial position is the checkpoint boundary itself: its memory
	// image is in the document, no re-execution needed.
	sys, err := ckpt.RestoreRun(d.doc)
	if err != nil {
		return err
	}
	d.cur = &snap{cycle: rs.Engine.CumCycles, idx: -1, h: sys.Mem, lastCore: map[int]engine.DebugEvent{}}
	d.endSeen = rs.Engine.CumCycles
	fmt.Fprintf(d.out, "run checkpoint: %s on %s (%s, %d cores, scale %d)\n",
		rs.Bench, rs.System, rs.Paradigm, rs.Cores, rs.Scale)
	fmt.Fprintf(d.out, "captured at iteration %d, cycle %d (segment length %d)\n",
		rs.NextIt, rs.Engine.CumCycles, rs.Every)
	d.info()
	return nil
}

func (d *dbg) openCheck() error {
	cs := d.doc.Check
	if cs.Counterexample == nil {
		return fmt.Errorf("check checkpoint has no counterexample trace")
	}
	d.steps = cs.Counterexample.Steps
	fmt.Fprintf(d.out, "counterexample: %s (%s)\n",
		cs.Counterexample.Property, cs.Counterexample.Detail)
	fmt.Fprintf(d.out, "%d stimulus steps; the violation fires on step %d\n",
		len(d.steps), len(d.steps))
	if err := d.seekStep(len(d.steps)); err != nil {
		return err
	}
	return nil
}

// runUntil re-executes the checkpointed run from its boundary with the debug
// hook installed, capturing the state the first time pred returns true. The
// predicate sees each event BEFORE it executes, so the captured hierarchy
// reflects everything strictly earlier. Returns nil when the run finished
// without the predicate firing.
func (d *dbg) runUntil(pred func(ev engine.DebugEvent, h *memsys.Hierarchy, idx int) bool) (*snap, error) {
	sys, err := ckpt.RestoreRun(d.doc)
	if err != nil {
		return nil, err
	}
	var cap *snap
	idx := 0
	last := map[int]engine.DebugEvent{}
	sys.SetDebugHook(func(ev engine.DebugEvent) {
		if ev.Cycle > d.endSeen {
			d.endSeen = ev.Cycle
		}
		if cap == nil && pred(ev, sys.Mem, idx) {
			lc := make(map[int]engine.DebugEvent, len(last))
			for k, v := range last {
				lc[k] = v
			}
			e := ev
			cap = &snap{cycle: ev.Cycle, idx: idx, ev: &e, h: sys.Mem.Clone(), lastCore: lc}
		}
		last[ev.Core] = ev
		idx++
	})
	loop := d.spec.New(d.doc.Run.Scale)
	hmtx.RunOpts(sys, loop, d.kind, d.doc.Run.Cores, hmtx.Options{
		Every: d.doc.Run.Every, Partial: d.doc.Run.Partial,
	})
	return cap, nil
}

func (d *dbg) do(line string) error {
	f := strings.Fields(line)
	cmd, rest := f[0], f[1:]
	switch cmd {
	case "help", "h":
		fmt.Fprint(d.out, "commands: seek N | step [cycle|event|tx] | continue | watch ... | delete N |\n"+
			"          line ADDR | tx N | core N | diff A B | info | trace | dump | quit\n")
		return nil
	case "info":
		d.info()
		return nil
	case "dump":
		fmt.Fprint(d.out, d.hier().String())
		return nil
	case "trace":
		if d.isRun() {
			return fmt.Errorf("trace prints counterexample steps; this is a run checkpoint")
		}
		fmt.Fprint(d.out, d.doc.Check.Counterexample.Trace())
		return nil
	case "watch":
		return d.watchCmd(rest)
	case "delete":
		if len(rest) != 1 {
			return fmt.Errorf("usage: delete N")
		}
		n, err := strconv.Atoi(rest[0])
		if err != nil || n < 0 || n >= len(d.watches) {
			return fmt.Errorf("no watchpoint %s", rest[0])
		}
		d.watches = append(d.watches[:n], d.watches[n+1:]...)
		return nil
	case "seek":
		if len(rest) != 1 {
			return fmt.Errorf("usage: seek N")
		}
		n, err := strconv.ParseInt(rest[0], 0, 64)
		if err != nil {
			return fmt.Errorf("bad position %q", rest[0])
		}
		if d.isRun() {
			return d.seekCycle(n)
		}
		return d.seekStep(int(n))
	case "step", "s":
		mode := "event"
		if len(rest) == 1 {
			mode = rest[0]
		}
		return d.stepCmd(mode)
	case "continue", "c":
		return d.contin()
	case "line":
		if len(rest) != 1 {
			return fmt.Errorf("usage: line ADDR")
		}
		a, err := strconv.ParseUint(rest[0], 0, 64)
		if err != nil {
			return fmt.Errorf("bad address %q", rest[0])
		}
		d.queryLine(memsys.Addr(a))
		return nil
	case "tx":
		if len(rest) != 1 {
			return fmt.Errorf("usage: tx N")
		}
		n, err := strconv.ParseUint(rest[0], 0, 64)
		if err != nil {
			return fmt.Errorf("bad transaction %q", rest[0])
		}
		d.queryTx(vid.Seq(n))
		return nil
	case "core":
		if len(rest) != 1 {
			return fmt.Errorf("usage: core N")
		}
		n, err := strconv.Atoi(rest[0])
		if err != nil || n < 0 || n >= d.nCaches()-1 {
			return fmt.Errorf("no core %q", rest[0])
		}
		d.queryCore(n)
		return nil
	case "diff":
		if len(rest) != 2 {
			return fmt.Errorf("usage: diff A B")
		}
		a, err1 := strconv.ParseInt(rest[0], 0, 64)
		b, err2 := strconv.ParseInt(rest[1], 0, 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad positions %q %q", rest[0], rest[1])
		}
		return d.diffCmd(a, b)
	default:
		return fmt.Errorf("unknown command %q (try help)", cmd)
	}
}

func (d *dbg) info() {
	if d.isRun() {
		if d.cur.idx < 0 {
			fmt.Fprintf(d.out, "position: checkpoint boundary, cycle %d (iteration %d committed)\n",
				d.cur.cycle, d.doc.Run.NextIt)
			return
		}
		fmt.Fprintf(d.out, "position: cycle %d, event %d: %s\n", d.cur.cycle, d.cur.idx, evString(*d.cur.ev))
		return
	}
	fmt.Fprintf(d.out, "position: step %d/%d", d.stepIdx, len(d.steps))
	if d.stepIdx > 0 {
		fmt.Fprintf(d.out, " (after %s)", stimString(d.steps[d.stepIdx-1]))
	}
	fmt.Fprintln(d.out)
}

func evString(ev engine.DebugEvent) string {
	s := fmt.Sprintf("core %d %s", ev.Core, ev.Op)
	switch ev.Op {
	case "load", "store":
		s += fmt.Sprintf(" %#x", ev.Addr)
	case "begin", "commit", "abort", "await":
		s += fmt.Sprintf(" tx %d", ev.Seq)
	}
	return s
}

func stimString(s check.Stimulus) string {
	return fmt.Sprintf("%v: %v", s.Op, s)
}

// seekCycle re-materialises the state at the start of cycle n: everything
// before cycle n has executed, nothing at or after it has.
func (d *dbg) seekCycle(n int64) error {
	base := d.doc.Run.Engine.CumCycles
	if n < base {
		return fmt.Errorf("cycle %d predates the checkpoint (cycle %d); re-run with an earlier -ckpt-every boundary", n, base)
	}
	if n == base {
		return d.gotoBoundary()
	}
	s, err := d.runUntil(func(ev engine.DebugEvent, _ *memsys.Hierarchy, _ int) bool {
		return ev.Cycle >= n
	})
	if err != nil {
		return err
	}
	if s == nil {
		return fmt.Errorf("run ended at cycle %d, before cycle %d", d.endSeen, n)
	}
	d.cur = s
	d.info()
	return nil
}

func (d *dbg) gotoBoundary() error {
	sys, err := ckpt.RestoreRun(d.doc)
	if err != nil {
		return err
	}
	d.cur = &snap{cycle: d.doc.Run.Engine.CumCycles, idx: -1, h: sys.Mem, lastCore: map[int]engine.DebugEvent{}}
	d.info()
	return nil
}

func (d *dbg) seekStep(k int) error {
	if k < 0 || k > len(d.steps) {
		return fmt.Errorf("step %d out of range 0..%d", k, len(d.steps))
	}
	h, applied, err := d.doc.Check.Config.ReplayTo(d.steps, k)
	if err != nil {
		fmt.Fprintf(d.out, "replay stopped on step %d: %v\n", applied, err)
	}
	d.curH = h
	d.stepIdx = applied
	d.info()
	return nil
}

func (d *dbg) stepCmd(mode string) error {
	if !d.isRun() {
		return d.seekStep(d.stepIdx + 1)
	}
	cur := d.cur
	var pred func(ev engine.DebugEvent, h *memsys.Hierarchy, idx int) bool
	switch mode {
	case "event":
		pred = func(_ engine.DebugEvent, _ *memsys.Hierarchy, idx int) bool { return idx > cur.idx }
	case "cycle":
		pred = func(ev engine.DebugEvent, _ *memsys.Hierarchy, _ int) bool { return ev.Cycle > cur.cycle }
	case "tx":
		pred = func(ev engine.DebugEvent, _ *memsys.Hierarchy, idx int) bool {
			return idx > cur.idx && (ev.Op == "begin" || ev.Op == "commit" || ev.Op == "abort")
		}
	default:
		return fmt.Errorf("step what? (cycle, event or tx)")
	}
	s, err := d.runUntil(pred)
	if err != nil {
		return err
	}
	if s == nil {
		return fmt.Errorf("run ended at cycle %d", d.endSeen)
	}
	d.cur = s
	d.info()
	return nil
}

func (d *dbg) watchCmd(rest []string) error {
	if len(rest) == 0 {
		if len(d.watches) == 0 {
			fmt.Fprintln(d.out, "no watchpoints")
		}
		for i, w := range d.watches {
			fmt.Fprintf(d.out, "%d: watch %s\n", i, w)
		}
		return nil
	}
	w := watchpoint{kind: rest[0]}
	switch w.kind {
	case "line", "state", "version":
		if len(rest) != 2 {
			return fmt.Errorf("usage: watch %s ADDR", w.kind)
		}
		a, err := strconv.ParseUint(rest[1], 0, 64)
		if err != nil {
			return fmt.Errorf("bad address %q", rest[1])
		}
		w.addr = memsys.LineAddr(memsys.Addr(a))
	case "vid":
		if len(rest) != 2 {
			return fmt.Errorf("usage: watch vid N")
		}
		n, err := strconv.ParseUint(rest[1], 0, 64)
		if err != nil {
			return fmt.Errorf("bad sequence %q", rest[1])
		}
		w.seq = vid.Seq(n)
	case "abort":
	default:
		return fmt.Errorf("watch what? (line, state, version, vid or abort)")
	}
	d.watches = append(d.watches, w)
	fmt.Fprintf(d.out, "%d: watch %s\n", len(d.watches)-1, w)
	return nil
}

// lineSig renders a line's full cross-cache coherence signature.
func (d *dbg) lineSig(h *memsys.Hierarchy, la memsys.Addr) (sig string, specVersions int) {
	var b strings.Builder
	for i := 0; i < d.nCaches(); i++ {
		for _, v := range h.Versions(i, la) {
			fmt.Fprintf(&b, "%s:%s ", d.cacheName(i), v.String())
			if v.St.Speculative() {
				specVersions++
			}
		}
	}
	if b.Len() == 0 {
		return "not resident", 0
	}
	return strings.TrimSpace(b.String()), specVersions
}

func (d *dbg) contin() error {
	if len(d.watches) == 0 {
		return fmt.Errorf("no watchpoints; set one with watch first")
	}
	if !d.isRun() {
		return d.continCheck()
	}
	minIdx := d.cur.idx
	var hit string
	sigs := make([]string, len(d.watches))
	counts := make([]int, len(d.watches))
	seen := make([]bool, len(d.watches))
	pred := func(ev engine.DebugEvent, h *memsys.Hierarchy, idx int) bool {
		for wi, w := range d.watches {
			switch w.kind {
			case "line":
				if idx > minIdx && (ev.Op == "load" || ev.Op == "store") && ev.Addr == w.addr {
					hit = fmt.Sprintf("watch %d (line %#x): %s by core %d", wi, w.addr, ev.Op, ev.Core)
					return true
				}
			case "vid":
				if idx > minIdx && ev.Seq == w.seq &&
					(ev.Op == "begin" || ev.Op == "commit" || ev.Op == "abort" || ev.Op == "await") {
					hit = fmt.Sprintf("watch %d (vid %d): %s on core %d", wi, w.seq, ev.Op, ev.Core)
					return true
				}
			case "abort":
				if idx > minIdx && ev.Op == "abort" {
					hit = fmt.Sprintf("watch %d: abort of tx %d on core %d", wi, ev.Seq, ev.Core)
					return true
				}
			case "state", "version":
				sig, n := d.lineSig(h, w.addr)
				oldSig, oldN, was := sigs[wi], counts[wi], seen[wi]
				sigs[wi], counts[wi], seen[wi] = sig, n, true
				if !was || idx <= minIdx {
					continue
				}
				if w.kind == "state" && sig != oldSig {
					hit = fmt.Sprintf("watch %d (state %#x): %s -> %s", wi, w.addr, oldSig, sig)
					return true
				}
				if w.kind == "version" && n > oldN {
					hit = fmt.Sprintf("watch %d (version %#x): %d -> %d speculative versions (%s)",
						wi, w.addr, oldN, n, sig)
					return true
				}
			}
		}
		return false
	}
	s, err := d.runUntil(pred)
	if err != nil {
		return err
	}
	if s == nil {
		return fmt.Errorf("run ended at cycle %d without hitting a watchpoint", d.endSeen)
	}
	fmt.Fprintln(d.out, hit)
	d.cur = s
	d.info()
	return nil
}

// continCheck advances the counterexample replay until a watchpoint hits.
func (d *dbg) continCheck() error {
	sigs := make([]string, len(d.watches))
	counts := make([]int, len(d.watches))
	for wi, w := range d.watches {
		if w.kind == "state" || w.kind == "version" {
			sigs[wi], counts[wi] = d.lineSig(d.curH, w.addr)
		}
	}
	for k := d.stepIdx + 1; k <= len(d.steps); k++ {
		st := d.steps[k-1]
		h, applied, rerr := d.doc.Check.Config.ReplayTo(d.steps, k)
		for wi, w := range d.watches {
			var hit string
			switch w.kind {
			case "line":
				if memsys.LineAddr(st.Addr) == w.addr {
					hit = fmt.Sprintf("watch %d (line %#x): %s", wi, w.addr, stimString(st))
				}
			case "vid":
				if vid.Seq(st.VID) == w.seq {
					hit = fmt.Sprintf("watch %d (vid %d): %s", wi, w.seq, stimString(st))
				}
			case "state", "version":
				sig, n := d.lineSig(h, w.addr)
				if w.kind == "state" && sig != sigs[wi] {
					hit = fmt.Sprintf("watch %d (state %#x): %s -> %s", wi, w.addr, sigs[wi], sig)
				} else if w.kind == "version" && n > counts[wi] {
					hit = fmt.Sprintf("watch %d (version %#x): %d -> %d speculative versions", wi, w.addr, counts[wi], n)
				}
				sigs[wi], counts[wi] = sig, n
			}
			if hit != "" {
				fmt.Fprintln(d.out, hit)
				d.curH, d.stepIdx = h, applied
				if rerr != nil {
					fmt.Fprintf(d.out, "replay stopped on step %d: %v\n", applied, rerr)
				}
				d.info()
				return nil
			}
		}
		d.curH, d.stepIdx = h, applied
		if rerr != nil {
			return fmt.Errorf("replay stopped on step %d without hitting a watchpoint: %v", applied, rerr)
		}
	}
	return fmt.Errorf("trace ended at step %d without hitting a watchpoint", d.stepIdx)
}

func (d *dbg) queryLine(addr memsys.Addr) {
	h := d.hier()
	la := memsys.LineAddr(addr)
	fmt.Fprintf(d.out, "line %#x: committed word %#x\n", la, h.PeekWord(la))
	var chain []memsys.Line
	for i := 0; i < d.nCaches(); i++ {
		for _, v := range h.Versions(i, la) {
			fmt.Fprintf(d.out, "  %-6s %-10s word %#x  epoch %d", d.cacheName(i), v.String(), v.Word(la), v.Epoch)
			if v.St.Speculative() {
				fmt.Fprintf(d.out, "  (modVID %d, highVID %d)", v.Mod, v.High)
				chain = append(chain, v)
			}
			fmt.Fprintln(d.out)
		}
	}
	if len(chain) > 0 {
		sort.Slice(chain, func(i, j int) bool { return chain[i].Mod > chain[j].Mod })
		parts := make([]string, len(chain))
		for i, v := range chain {
			parts[i] = v.String()
		}
		fmt.Fprintf(d.out, "  version chain: %s -> mem\n", strings.Join(parts, " -> "))
	}
}

func (d *dbg) queryTx(seq vid.Seq) {
	h := d.hier()
	var v vid.V
	if d.isRun() {
		sp := d.doc.Run.EngineCfg.Mem.VIDSpace
		epoch, hw := sp.Split(seq)
		v = hw
		fmt.Fprintf(d.out, "tx %d: epoch %d, hardware VID %d (hierarchy epoch %d, LC %d)\n",
			seq, epoch, hw, h.CurrentEpoch(), h.LC())
		if epoch != h.CurrentEpoch() {
			fmt.Fprintln(d.out, "  (transaction belongs to a different VID epoch; its lines have settled)")
		}
	} else {
		v = vid.V(seq)
		fmt.Fprintf(d.out, "VID %d (hierarchy epoch %d, LC %d):\n", v, h.CurrentEpoch(), h.LC())
	}
	found := false
	for _, a := range h.Addrs() {
		for i := 0; i < d.nCaches(); i++ {
			for _, ln := range h.Versions(i, a) {
				if !ln.St.Speculative() || (ln.Mod != v && ln.High != v) {
					continue
				}
				role := "read-marked"
				if ln.Mod == v {
					role = "wrote"
				}
				fmt.Fprintf(d.out, "  %s line %#x in %s: %s\n", role, a, d.cacheName(i), ln.String())
				found = true
			}
		}
	}
	if !found {
		fmt.Fprintln(d.out, "  no resident speculative versions for this transaction")
	}
}

func (d *dbg) queryCore(n int) {
	h := d.hier()
	if d.isRun() && d.cur.idx >= 0 {
		if ev, ok := d.cur.lastCore[n]; ok {
			fmt.Fprintf(d.out, "core %d last event: %s (cycle %d)\n", n, evString(ev), ev.Cycle)
		} else {
			fmt.Fprintf(d.out, "core %d: no events since the checkpoint boundary\n", n)
		}
	}
	lines := 0
	for _, a := range h.Addrs() {
		for _, ln := range h.Versions(n, a) {
			fmt.Fprintf(d.out, "  %-10s %#x  word %#x\n", ln.String(), a, ln.Word(a))
			lines++
		}
	}
	fmt.Fprintf(d.out, "core %d L1: %d resident lines\n", n, lines)
}

func (d *dbg) diffCmd(a, b int64) error {
	var ha, hb *memsys.Hierarchy
	if d.isRun() {
		sa, err := d.snapAt(a)
		if err != nil {
			return err
		}
		sb, err := d.snapAt(b)
		if err != nil {
			return err
		}
		ha, hb = sa.h, sb.h
	} else {
		var err1, err2 error
		ha, _, err1 = d.doc.Check.Config.ReplayTo(d.steps, int(a))
		hb, _, err2 = d.doc.Check.Config.ReplayTo(d.steps, int(b))
		if ha == nil || hb == nil {
			return fmt.Errorf("replay failed: %v %v", err1, err2)
		}
	}
	seen := map[memsys.Addr]bool{}
	var addrs []memsys.Addr
	for _, x := range append(ha.Addrs(), hb.Addrs()...) {
		if !seen[x] {
			seen[x] = true
			addrs = append(addrs, x)
		}
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	changed := 0
	for _, la := range addrs {
		sa, _ := d.lineSig(ha, la)
		sb, _ := d.lineSig(hb, la)
		wa, wb := ha.PeekWord(la), hb.PeekWord(la)
		if sa == sb && wa == wb {
			continue
		}
		changed++
		fmt.Fprintf(d.out, "line %#x:\n", la)
		if sa != sb {
			fmt.Fprintf(d.out, "  @%d: %s\n  @%d: %s\n", a, sa, b, sb)
		}
		if wa != wb {
			fmt.Fprintf(d.out, "  committed word: %#x -> %#x\n", wa, wb)
		}
	}
	fmt.Fprintf(d.out, "%d lines differ between %d and %d\n", changed, a, b)
	return nil
}

// snapAt captures the state at cycle n without moving the current position.
func (d *dbg) snapAt(n int64) (*snap, error) {
	base := d.doc.Run.Engine.CumCycles
	if n < base {
		return nil, fmt.Errorf("cycle %d predates the checkpoint (cycle %d)", n, base)
	}
	if n == base {
		sys, err := ckpt.RestoreRun(d.doc)
		if err != nil {
			return nil, err
		}
		return &snap{cycle: base, idx: -1, h: sys.Mem}, nil
	}
	s, err := d.runUntil(func(ev engine.DebugEvent, _ *memsys.Hierarchy, _ int) bool {
		return ev.Cycle >= n
	})
	if err != nil {
		return nil, err
	}
	if s == nil {
		return nil, fmt.Errorf("run ended at cycle %d, before cycle %d", d.endSeen, n)
	}
	return s, nil
}
