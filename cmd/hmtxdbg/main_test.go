package main

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"hmtx/internal/check"
	"hmtx/internal/ckpt"
	"hmtx/internal/engine"
	"hmtx/internal/hmtx"
	"hmtx/internal/memsys"
	"hmtx/internal/workloads"
)

// makeRunCkpt produces a mid-run checkpoint of 052.alvinn, the same way
// hmtxsim -ckpt-every 10 -ckpt-halt does.
func makeRunCkpt(t *testing.T) string {
	t.Helper()
	spec, err := workloads.ByName("052.alvinn")
	if err != nil {
		t.Fatal(err)
	}
	cfg := engine.DefaultConfig()
	cfg.Mem.Cores = 4
	sys := engine.New(cfg)
	loop := spec.New(1)
	loop.Setup(sys.Mem)
	var doc *ckpt.Doc
	hmtx.RunOpts(sys, loop, spec.Paradigm, 4, hmtx.Options{
		Every: 10,
		Checkpoint: func(nextIt int, sofar hmtx.Outcome) bool {
			doc = ckpt.CaptureRun(sys, ckpt.RunState{
				Bench: spec.Name, System: "hmtx", Paradigm: spec.Paradigm.String(),
				Cores: 4, Scale: 1, Every: 10, EngineCfg: cfg,
				NextIt: nextIt, Partial: sofar,
			})
			return true
		},
	})
	if doc == nil {
		t.Fatal("no checkpoint boundary reached")
	}
	path := filepath.Join(t.TempDir(), "run.json")
	if err := ckpt.WriteFile(path, doc); err != nil {
		t.Fatal(err)
	}
	return path
}

func drive(t *testing.T, path, cmds string) string {
	t.Helper()
	var out, errb bytes.Buffer
	if code := run([]string{"-c", cmds, path}, strings.NewReader(""), &out, &errb); code != 0 {
		t.Fatalf("hmtxdbg exit %d, stderr: %s", code, errb.String())
	}
	return out.String()
}

func TestDebugRunCheckpoint(t *testing.T) {
	path := makeRunCkpt(t)
	out := drive(t, path, "info; step event; step tx; core 0; line 0x1000000")
	for _, want := range []string{
		"run checkpoint: 052.alvinn",
		"position: checkpoint boundary",
		"position: cycle",
		"tx 11", // first event after a 10-iteration segment is begin tx 11
		"line 0x1000000",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// baseCycle reads the checkpoint's boundary cycle, so the tests do not
// hard-code simulated timing.
func baseCycle(t *testing.T, path string) int64 {
	t.Helper()
	doc, err := ckpt.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return doc.Run.Engine.CumCycles
}

func TestDebugSeekDeterministic(t *testing.T) {
	path := makeRunCkpt(t)
	cmds := fmt.Sprintf("seek %d; line 0x1000000; dump", baseCycle(t, path)+130)
	a := drive(t, path, cmds)
	b := drive(t, path, cmds)
	if a != b {
		t.Errorf("seek is not deterministic:\n--- first\n%s\n--- second\n%s", a, b)
	}
}

func TestDebugWatchAndDiff(t *testing.T) {
	path := makeRunCkpt(t)
	base := baseCycle(t, path)
	out := drive(t, path, fmt.Sprintf("watch version 0x1000000; continue; diff %d %d", base, base+130))
	if !strings.Contains(out, "speculative versions") {
		t.Errorf("version watch did not report a hit:\n%s", out)
	}
	if !strings.Contains(out, fmt.Sprintf("lines differ between %d and %d", base, base+130)) {
		t.Errorf("diff summary missing:\n%s", out)
	}
}

// TestDebugCheckCheckpoint drives the acceptance path: open an -emit-ckpt
// counterexample, seek to the failing step, and read the offending line's
// MOESI state and version chain.
func TestDebugCheckCheckpoint(t *testing.T) {
	cfg := check.Config{Cores: 2, Addrs: 1, VIDs: 1, StoreVals: 2,
		InjectBug: memsys.BugStaleCopyOnConvert}
	sum, err := check.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Violation == nil {
		t.Fatal("injected bug not found by the checker")
	}
	doc := &ckpt.Doc{Schema: ckpt.Schema, Kind: ckpt.KindCheck, Check: &ckpt.CheckState{
		Config: cfg, Counterexample: sum.Violation,
	}}
	path := filepath.Join(t.TempDir(), "ce.json")
	if err := ckpt.WriteFile(path, doc); err != nil {
		t.Fatal(err)
	}

	out := drive(t, path, fmt.Sprintf("trace; seek %d; line 0x0", len(sum.Violation.Steps)))
	for _, want := range []string{
		"counterexample:",
		"position: step",
		"line 0x0:",
		"version chain:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestDebugRejectsExperimentsCheckpoint(t *testing.T) {
	doc := &ckpt.Doc{Schema: ckpt.Schema, Kind: ckpt.KindExperiments,
		Experiments: &ckpt.ExperimentsState{}}
	path := filepath.Join(t.TempDir(), "suite.json")
	if err := ckpt.WriteFile(path, doc); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{path}, strings.NewReader(""), &out, &errb); code == 0 {
		t.Fatal("experiments checkpoint accepted")
	}
	if !strings.Contains(errb.String(), "cmd/experiments -resume") {
		t.Errorf("error does not point at cmd/experiments: %s", errb.String())
	}
}
