module hmtx

go 1.22
