// Quickstart: the Figure 3 example end to end.
//
// A linked-list loop with an early exit is speculatively pipeline-
// parallelized with hardware multithreaded transactions: stage 1 walks the
// list inside transactions (beginMTX), forwarding each node to stage 2
// through versioned memory instead of explicit queues; stage 2 applies the
// work function, group-commits each transaction (commitMTX), and — when the
// control-flow-speculated early exit fires — squashes the over-speculated
// iterations (abortMTX).
package main

import (
	"fmt"

	"hmtx/internal/engine"
	"hmtx/internal/hmtx"
	"hmtx/internal/memsys"
	"hmtx/internal/paradigm"
)

// Memory layout (all loop state lives in simulated memory).
const (
	listBase = memsys.Addr(0x100000) // node i: [value, next]
	head     = memsys.Addr(0x1000)   // loop-carried cursor
	produced = memsys.Addr(0x1040)   // producedNode (Figure 3)
	sum      = memsys.Addr(0x1080)   // accumulated work results
	maxWork  = 40                    // the "w > MAX" early-exit threshold
)

// fig3Loop is the loop of Figure 3(a):
//
//	while (node):
//	    w = work(node)
//	    if (w > MAX): break
//	    node = node->next
type fig3Loop struct{ n int }

func (l *fig3Loop) Name() string { return "figure3" }
func (l *fig3Loop) Iters() int   { return l.n }

func (l *fig3Loop) Setup(h *memsys.Hierarchy) {
	for i := 0; i < l.n; i++ {
		node := listBase + memsys.Addr(i)*memsys.LineSize
		h.PokeWord(node, uint64(i+1)*3) // node values 3, 6, 9, ...
		next := node + memsys.LineSize
		if i == l.n-1 {
			next = 0
		}
		h.PokeWord(node+8, next)
	}
	h.PokeWord(head, uint64(listBase))
}

// Stage1 is Figure 3(b): inside beginMTX(vid), publish the node through a
// speculative store and advance the recurrence.
func (l *fig3Loop) Stage1(e *engine.Env, it int) bool {
	node := e.Load(head)
	e.Store(produced, node) // new version of producedNode, tagged with the VID
	next := e.Load(memsys.Addr(node) + 8)
	e.Store(head, next)
	return next != 0
}

// Stage2 is Figure 3(c): continue the same transaction on another core, see
// stage 1's uncommitted store, do the work, and commit — or exit.
func (l *fig3Loop) Stage2(e *engine.Env, it int) bool {
	node := e.Load(produced) // finds the version with this transaction's VID
	w := e.Load(memsys.Addr(node))
	e.Compute(1500) // work(node)
	s := e.Load(sum)
	e.Store(sum, s+w)
	return w > maxWork // if (w > MAX): abortMTX(vid+1) — handled by the runtime
}

func main() {
	cfg := engine.DefaultConfig() // Table 2: 4 cores, 64KB L1s, 32MB L2
	loop := &fig3Loop{n: 100}

	// Sequential reference.
	seqSys := engine.New(cfg)
	loop.Setup(seqSys.Mem)
	seqCycles := paradigm.RunSequential(seqSys, loop)
	seqSum := seqSys.Mem.PeekWord(sum)

	// Speculative PS-DSWP with HMTX: 1 traversal thread + 3 workers.
	parSys := engine.New(cfg)
	loop.Setup(parSys.Mem)
	out := hmtx.Run(parSys, loop, paradigm.PSDSWP, 4)
	parSum := parSys.Mem.PeekWord(sum)

	fmt.Println("Figure 3 linked-list loop, speculative PS-DSWP vs sequential")
	fmt.Printf("  iterations executed:   %d (early exit at value > %d)\n", out.Iterations, maxWork)
	fmt.Printf("  exited early:          %v (over-speculated iterations squashed: %d abort)\n", out.ExitedEarly, out.Aborts)
	fmt.Printf("  sequential sum:        %d\n", seqSum)
	fmt.Printf("  speculative sum:       %d\n", parSum)
	fmt.Printf("  sequential cycles:     %d\n", seqCycles)
	fmt.Printf("  HMTX cycles:           %d\n", out.Cycles)
	fmt.Printf("  hot-loop speedup:      %.2fx on 4 cores\n", float64(seqCycles)/float64(out.Cycles))
	if parSum != seqSum {
		panic("speculative execution diverged from sequential semantics")
	}
	ms := parSys.Mem.Stats()
	fmt.Printf("  spec loads/stores:     %d/%d, %d line versions created\n",
		ms.SpecLoads, ms.SpecStores, ms.VersionsCreated)
	fmt.Printf("  group commits:         %d, SLAs sent: %d\n", ms.Commits, ms.SLAsSent)
}
