// Cachetrace walks through Figure 5 of the paper step by step, printing the
// versioned cache-line states after every instruction: two threads
// collaborate on transactions via the HMTX coherence protocol, creating
// multiple versions of one line (S-O/S-M chains), forwarding uncommitted
// values across caches, and lazily settling on commit.
package main

import (
	"fmt"
	"strings"

	"hmtx/internal/memsys"
)

const addr = memsys.Addr(0xA40) // "0xa" in the figure

func dump(h *memsys.Hierarchy, step string) {
	fmt.Printf("%-52s", step)
	for c := 0; c < 2; c++ {
		var states []string
		for _, ln := range h.Versions(c, addr) {
			states = append(states, ln.String())
		}
		if len(states) == 0 {
			states = []string{"I"}
		}
		fmt.Printf("  cache%d: %-24s", c+1, strings.Join(states, " "))
	}
	fmt.Println()
}

func main() {
	cfg := memsys.DefaultConfig()
	cfg.Cores = 2
	h := memsys.New(cfg)
	h.PokeWord(addr, 100) // the list node's initial contents

	fmt.Println("Figure 5: cache states for address 0xa (line versions as State(modVID,highVID))")
	fmt.Println()
	dump(h, "initial")

	// Thread 1 (core 0), "next" stage, transaction VID 1.
	v, _ := h.Load(0, addr, 1) // beginMTX(1); r1 = M[0xa]
	dump(h, fmt.Sprintf("T1 vid1: r1 = M[0xa]            (loaded %d)", v))

	h.Store(0, addr, 101, 1) // M[0xa] = M[r1]
	dump(h, "T1 vid1: M[0xa] = M[r1]         (stores 101)")

	// Thread 1 moves on to transaction VID 2 (beginMTX(0); beginMTX(2)).
	v, _ = h.Load(0, addr, 2)
	dump(h, fmt.Sprintf("T1 vid2: r1 = M[0xa]            (loaded %d)", v))
	h.Store(0, addr, 102, 2)
	dump(h, "T1 vid2: M[0xa] = M[r1]         (stores 102)")

	// Thread 2 (core 1), "work" stage, continues transaction VID 1: the
	// broadcast hits the S-O(1,2) version in cache 1, not VID 2's update.
	v, _ = h.Load(1, addr, 1)
	dump(h, fmt.Sprintf("T2 vid1: r1 = M[0xa]            (loaded %d)", v))

	// Thread 2 commits transaction 1: a single LC VID broadcast; the
	// lines settle lazily on their next touch (§5.3).
	h.Commit(1)
	dump(h, "T2: commitMTX(1)                (lazy: not yet settled)")

	v, _ = h.Load(0, addr, 2) // touching the line settles it
	dump(h, fmt.Sprintf("T1 vid2: reload M[0xa]          (loaded %d, settles)", v))

	h.Commit(2)
	v, _ = h.Load(1, addr, 0) // non-speculative read sees VID 2's commit
	dump(h, fmt.Sprintf("T2: commitMTX(2); nonspec load  (loaded %d)", v))

	fmt.Println()
	fmt.Printf("final committed value at 0xa: %d\n", h.PeekWord(addr))
	fmt.Printf("versions created: %d, commits: %d\n",
		h.Stats().VersionsCreated, h.Stats().Commits)
}
