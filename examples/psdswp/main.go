// Psdswp demonstrates why parallel-stage DSWP is the paradigm HMTX was
// built for (Figure 1): the same work-heavy linked-list loop runs under
// DOACROSS, DSWP and PS-DSWP over a range of core counts. DOACROSS and
// plain DSWP top out at roughly two threads' worth of parallelism, while
// PS-DSWP's parallel work stage keeps scaling with the machine.
package main

import (
	"fmt"

	"hmtx/internal/engine"
	"hmtx/internal/hmtx"
	"hmtx/internal/memsys"
	"hmtx/internal/paradigm"
)

const (
	listBase = memsys.Addr(0x100000)
	head     = memsys.Addr(0x1000)
	produced = memsys.Addr(0x1040)
	outBase  = memsys.Addr(0x200000)
)

// workLoop: a short traversal stage feeding an expensive work stage — the
// shape PS-DSWP exploits (Figure 1(d)).
type workLoop struct{ n int }

func (l *workLoop) Name() string { return "workloop" }
func (l *workLoop) Iters() int   { return l.n }
func (l *workLoop) Setup(h *memsys.Hierarchy) {
	for i := 0; i < l.n; i++ {
		node := listBase + memsys.Addr(i)*memsys.LineSize
		h.PokeWord(node, uint64(i)*13+5)
		next := node + memsys.LineSize
		if i == l.n-1 {
			next = 0
		}
		h.PokeWord(node+8, next)
	}
	h.PokeWord(head, uint64(listBase))
}
func (l *workLoop) Stage1(e *engine.Env, it int) bool {
	node := e.Load(head)
	e.Store(produced, node)
	e.Compute(300) // n_i: find the next node
	next := e.Load(memsys.Addr(node) + 8)
	e.Store(head, next)
	return next != 0
}
func (l *workLoop) Stage2(e *engine.Env, it int) bool {
	node := e.Load(produced)
	v := e.Load(memsys.Addr(node))
	e.Compute(4200) // w_i: the work function
	e.Store(outBase+memsys.Addr(it)*memsys.LineSize, v*v)
	return false
}

func main() {
	loop := &workLoop{n: 64}
	seqSys := engine.New(engine.DefaultConfig())
	loop.Setup(seqSys.Mem)
	seq := paradigm.RunSequential(seqSys, loop)
	fmt.Printf("linked-list loop, %d iterations: traversal ~300 cycles, work ~4200 cycles\n", loop.n)
	fmt.Printf("sequential: %d cycles\n\n", seq)

	coreCounts := []int{2, 4, 8}
	fmt.Printf("%-10s", "paradigm")
	for _, c := range coreCounts {
		fmt.Printf("  %8s", fmt.Sprintf("%d cores", c))
	}
	fmt.Println("\n--------------------------------------------")

	for _, kind := range []paradigm.Kind{paradigm.DOACROSS, paradigm.DSWP, paradigm.PSDSWP} {
		fmt.Printf("%-10s", kind)
		for _, cores := range coreCounts {
			cfg := engine.DefaultConfig()
			cfg.Mem.Cores = cores
			sys := engine.New(cfg)
			l := &workLoop{n: loop.n}
			l.Setup(sys.Mem)
			out := hmtx.Run(sys, l, kind, cores)
			fmt.Printf("  %7.2fx", float64(seq)/float64(out.Cycles))
		}
		fmt.Println()
	}

	fmt.Println("\nDSWP is bounded by its two pipeline stages; PS-DSWP replicates")
	fmt.Println("the work stage and scales with the core count (§2.1).")

	// The paper's second point: DOACROSS pays the inter-core latency on
	// every iteration (the loop-carried dependence crosses cores each
	// time), while pipeline techniques pay it only at pipeline fill.
	fmt.Println("\nSensitivity to inter-core latency (4 cores):")
	fmt.Printf("%-10s", "paradigm")
	lats := []int64{40, 800, 3200}
	for _, l := range lats {
		fmt.Printf("  %8s", fmt.Sprintf("lat=%d", l))
	}
	fmt.Println("\n--------------------------------------------")
	for _, kind := range []paradigm.Kind{paradigm.DOACROSS, paradigm.PSDSWP} {
		fmt.Printf("%-10s", kind)
		for _, lat := range lats {
			cfg := engine.DefaultConfig()
			cfg.QueueLat = lat
			sys := engine.New(cfg)
			l := &workLoop{n: loop.n}
			l.Setup(sys.Mem)
			out := hmtx.Run(sys, l, kind, 4)
			fmt.Printf("  %7.2fx", float64(seq)/float64(out.Cycles))
		}
		fmt.Println()
	}
	fmt.Println("\nDOACROSS degrades as inter-core latency grows; DSWP-style")
	fmt.Println("pipelines only pay the latency once at pipeline fill (§2.1).")
}
