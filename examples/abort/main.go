// Abort demonstrates misspeculation detection and recovery: a pipeline
// whose work stage occasionally writes a cell the traversal stage reads.
// When a later transaction has already speculatively read the cell, the
// earlier transaction's store is a flow-dependence violation (§4.3): the
// HMTX system flushes all uncommitted transactions (§4.4), and the runtime
// rolls forward from the last committed transaction — yet the final memory
// image still matches the sequential execution exactly.
package main

import (
	"fmt"

	"hmtx/internal/engine"
	"hmtx/internal/hmtx"
	"hmtx/internal/memsys"
	"hmtx/internal/paradigm"
)

const (
	cursor   = memsys.Addr(0x1000)
	produced = memsys.Addr(0x1040)
	shared   = memsys.Addr(0x1080) // the contended cell
	results  = memsys.Addr(0x200000)
)

// racyLoop reads the shared cell in stage 1 every iteration and rewrites it
// in stage 2 on a few iterations — a genuine cross-iteration dependence that
// speculation gets wrong whenever the pipeline has run ahead.
type racyLoop struct{ n int }

func (l *racyLoop) Name() string { return "racy" }
func (l *racyLoop) Iters() int   { return l.n }
func (l *racyLoop) Setup(h *memsys.Hierarchy) {
	h.PokeWord(cursor, 1)
	h.PokeWord(shared, 7)
}

func (l *racyLoop) Stage1(e *engine.Env, it int) bool {
	cur := e.Load(cursor)
	bias := e.Load(shared) // marked with this transaction's VID
	e.Store(produced, mix(cur)+bias)
	e.Store(cursor, cur+1)
	return it+1 < l.n
}

func (l *racyLoop) Stage2(e *engine.Env, it int) bool {
	v := e.Load(produced)
	e.Compute(800)
	e.Store(results+memsys.Addr(it)*memsys.LineSize, v)
	if it%7 == 3 {
		// Rewrites the cell stage 1 of *later* transactions already
		// read: misspeculation, detected by the versioned caches.
		e.Store(shared, v%100)
	}
	return false
}

func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	return x ^ (x >> 29)
}

func main() {
	cfg := engine.DefaultConfig()
	loop := &racyLoop{n: 40}

	seqSys := engine.New(cfg)
	loop.Setup(seqSys.Mem)
	seqCycles := paradigm.RunSequential(seqSys, loop)

	parSys := engine.New(cfg)
	loop.Setup(parSys.Mem)
	out := hmtx.Run(parSys, loop, paradigm.PSDSWP, 4)

	fmt.Println("Misspeculation and recovery on a racy pipeline")
	fmt.Printf("  iterations:        %d\n", out.Iterations)
	fmt.Printf("  aborts:            %d (each flushed all uncommitted transactions)\n", out.Aborts)
	fmt.Printf("  engine runs:       %d (1 + recovery re-executions)\n", out.Runs)
	fmt.Printf("  cycles:            %d (sequential %d, %.2fx)\n",
		out.Cycles, seqCycles, float64(seqCycles)/float64(out.Cycles))

	mismatches := 0
	for it := 0; it < loop.n; it++ {
		a := results + memsys.Addr(it)*memsys.LineSize
		if parSys.Mem.PeekWord(a) != seqSys.Mem.PeekWord(a) {
			mismatches++
		}
	}
	if parSys.Mem.PeekWord(shared) != seqSys.Mem.PeekWord(shared) {
		mismatches++
	}
	fmt.Printf("  result mismatches: %d (sequential semantics preserved, §4.3)\n", mismatches)
	if mismatches != 0 {
		panic("recovery failed to restore sequential semantics")
	}
}
