// Package experiments regenerates every table and figure of the paper's
// evaluation (§6): Table 1 (speculative-execution statistics), Table 2
// (architectural configuration), Table 3 (area, power, energy), Figure 1
// (paradigm timing), Figure 2 (SMTX validation sensitivity), Figure 8
// (hot-loop speedup), and Figure 9 (read/write-set sizes). The cmd/experiments
// binary and the repository's benchmark harness both drive this package.
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"hmtx/internal/engine"
	"hmtx/internal/hmtx"
	"hmtx/internal/memsys"
	"hmtx/internal/metrics"
	"hmtx/internal/paradigm"
	"hmtx/internal/power"
	"hmtx/internal/prof"
	"hmtx/internal/smtx"
	"hmtx/internal/stats"
	"hmtx/internal/workloads"
)

// Config controls an experiment run.
type Config struct {
	// Scale multiplies every benchmark's iteration count (1 = the
	// configuration recorded in EXPERIMENTS.md).
	Scale int
	// Cores is the machine size; the paper evaluates 4.
	Cores int
	// Parallelism is the number of simulations RunAll drives concurrently.
	// Each (benchmark, mode) pair is one unit of work over its own
	// engine.System, so the simulated results are identical at any setting;
	// 1 runs the suite serially as before, 0 means GOMAXPROCS.
	Parallelism int
	// Profile attaches a cycle-attribution profiler to every simulation
	// and fills the BenchResult *Prof fields. Each unit owns its collector,
	// so profiles — like all other results — are identical at any
	// Parallelism.
	Profile bool
	// Metrics attaches the DESIGN.md §15 instruments — the windowed
	// time-series sampler, the conflict recorder, and the latency
	// histograms — to every simulation and fills the BenchResult *Metrics
	// fields. Sampling implies profiling (the validation/commit columns
	// read the profiler's live buckets). Each unit owns its instruments,
	// so the documents are identical at any Parallelism.
	Metrics bool
	// MetricsWindow is the time-series sampling window in simulated cycles
	// (0 = metrics.DefaultWindow).
	MetricsWindow int64
	// Domains selects the engine's intra-run parallel scheduler
	// (engine.Config.Domains): each simulation's cores are sharded over this
	// many goroutines inside conservative time quanta. Results are
	// byte-identical at any setting; 0 or 1 uses the serial reference
	// scheduler. Composes with Parallelism (across-simulation workers).
	Domains int
}

// Default returns the evaluation configuration.
func Default() Config { return Config{Scale: 1, Cores: 4, Parallelism: 1} }

func (c Config) engineConfig() engine.Config {
	ec := engine.DefaultConfig()
	ec.Mem.Cores = c.Cores
	ec.Domains = c.Domains
	return ec
}

// BenchResult holds every measurement taken for one benchmark.
type BenchResult struct {
	Spec workloads.Spec

	SeqCycles int64
	SeqAct    power.Activity

	HMTXOut hmtx.Outcome
	HMTXAct power.Activity
	HMTXEng engine.Stats
	HMTXMem memsys.Stats

	// SMTX results are only present when Spec.HasSMTX.
	SMTXMinOut, SMTXMaxOut hmtx.Outcome
	SMTXMinAct, SMTXMaxAct power.Activity

	// Cycle-attribution profiles, only present when Config.Profile is set
	// (and, for the SMTX pair, when Spec.HasSMTX).
	SeqProf, HMTXProf        *prof.Profile
	SMTXMinProf, SMTXMaxProf *prof.Profile

	// Metric-set snapshots, only present when Config.Metrics is set (and,
	// for the SMTX pair, when Spec.HasSMTX).
	SeqMetrics, HMTXMetrics        *MetricSet
	SMTXMinMetrics, SMTXMaxMetrics *MetricSet
}

// MetricSet bundles one system run's metric snapshots (DESIGN.md §15),
// labelled "benchmark/system".
type MetricSet struct {
	Series    metrics.Series
	Conflicts metrics.Graph
	Hists     metrics.LabeledHists
}

// metricSets returns the result's metric sets in the canonical system order
// (seq, hmtx, smtx-min, smtx-max); absent sets are nil.
func (r *BenchResult) metricSets() []*MetricSet {
	return []*MetricSet{r.SeqMetrics, r.HMTXMetrics, r.SMTXMinMetrics, r.SMTXMaxMetrics}
}

// instrument attaches the metric instruments to a unit's system when
// Config.Metrics is set. Like the profiler, the instruments are pure
// observers: they never change the simulated execution.
func instrument(cfg Config, sys *engine.System) {
	if !cfg.Metrics {
		return
	}
	if !sys.Prof().Enabled() {
		sys.SetProf(prof.New())
	}
	sys.SetSeries(metrics.NewSampler(cfg.MetricsWindow))
	sys.SetConflicts(metrics.NewRecorder(0))
	sys.SetLatHists(metrics.NewLatHists())
}

// metricSnapshot captures a unit's metric set (nil when metrics are off).
func metricSnapshot(cfg Config, sys *engine.System, r *BenchResult, system string) *MetricSet {
	if !cfg.Metrics {
		return nil
	}
	sys.FlushSeries()
	label := r.Spec.Name + "/" + system
	return &MetricSet{
		Series:    sys.Series().Snapshot(label),
		Conflicts: sys.Conflicts().Snapshot(label),
		Hists:     sys.LatHists().Snapshot(label),
	}
}

// HotSpeedupHMTX returns the hot-loop speedup of HMTX over sequential.
func (r *BenchResult) HotSpeedupHMTX() float64 {
	return float64(r.SeqCycles) / float64(r.HMTXOut.Cycles)
}

// HotSpeedupSMTX returns the hot-loop speedup of SMTX in the given mode.
func (r *BenchResult) HotSpeedupSMTX(mode smtx.Mode) float64 {
	out := r.SMTXMinOut
	if mode == smtx.MaxSet {
		out = r.SMTXMaxOut
	}
	return float64(r.SeqCycles) / float64(out.Cycles)
}

// WholeProgram converts a hot-loop speedup to a whole-program speedup using
// the benchmark's hot-loop execution-time share (Table 1) and Amdahl's law.
func (r *BenchResult) WholeProgram(hotSpeedup float64) float64 {
	h := r.Spec.HotLoopPct / 100
	return 1 / ((1 - h) + h/hotSpeedup)
}

func activity(cycles int64, eng *engine.Stats, mem *memsys.Stats) power.Activity {
	return power.Activity{
		Cycles:       cycles,
		Instructions: eng.Instructions,
		L1Accesses:   mem.L1Hits + mem.BusMessages,
		L2Accesses:   mem.L2Hits + mem.MemReads,
		MemAccesses:  mem.MemReads + mem.MemWrites,
		BusMessages:  mem.BusMessages,
	}
}

// runSeq measures the sequential baseline, writing only the Seq* fields.
func runSeq(cfg Config, r *BenchResult) {
	sys := engine.New(cfg.engineConfig())
	if cfg.Profile {
		sys.SetProf(prof.New())
	}
	instrument(cfg, sys)
	loop := r.Spec.New(cfg.Scale)
	loop.Setup(sys.Mem)
	r.SeqCycles = paradigm.RunSequential(sys, loop)
	r.SeqAct = activity(r.SeqCycles, sys.Stats(), sys.Mem.Stats())
	r.SeqProf = snapshot(sys, r, "seq", paradigm.Sequential)
	r.SeqMetrics = metricSnapshot(cfg, sys, r, "seq")
}

// snapshot captures the system's profile (nil when profiling is off).
func snapshot(sys *engine.System, r *BenchResult, system string, kind paradigm.Kind) *prof.Profile {
	if !sys.Prof().Enabled() {
		return nil
	}
	p := sys.Prof().Snapshot(r.Spec.Name, system, kind.String(), 0)
	return &p
}

// runHMTX measures HMTX with maximal validation — every load and store inside
// every transaction is validated (§6.1) — writing only the HMTX* fields.
func runHMTX(cfg Config, r *BenchResult) {
	sys := engine.New(cfg.engineConfig())
	if cfg.Profile {
		sys.SetProf(prof.New())
	}
	instrument(cfg, sys)
	loop := r.Spec.New(cfg.Scale)
	loop.Setup(sys.Mem)
	r.HMTXOut = hmtx.Run(sys, loop, r.Spec.Paradigm, cfg.Cores)
	r.HMTXEng = *sys.Stats()
	r.HMTXMem = *sys.Mem.Stats()
	r.HMTXAct = activity(r.HMTXOut.Cycles, sys.Stats(), sys.Mem.Stats())
	r.HMTXProf = snapshot(sys, r, "hmtx", r.Spec.Paradigm)
	r.HMTXMetrics = metricSnapshot(cfg, sys, r, "hmtx")
}

// runSMTX measures SMTX with the given read/write-set mode, writing only the
// corresponding SMTX* fields.
func runSMTX(cfg Config, r *BenchResult, mode smtx.Mode) {
	sys := engine.New(cfg.engineConfig())
	if cfg.Profile {
		sys.SetProf(prof.New())
	}
	instrument(cfg, sys)
	loop := r.Spec.New(cfg.Scale)
	loop.Setup(sys.Mem)
	out := smtx.Run(sys, loop, r.Spec.Paradigm, cfg.Cores, mode, smtx.DefaultConfig())
	act := activity(out.Cycles, sys.Stats(), sys.Mem.Stats())
	if mode == smtx.MaxSet {
		r.SMTXMaxOut, r.SMTXMaxAct = out, act
		r.SMTXMaxProf = snapshot(sys, r, "smtx-max", r.Spec.Paradigm)
		r.SMTXMaxMetrics = metricSnapshot(cfg, sys, r, "smtx-max")
	} else {
		r.SMTXMinOut, r.SMTXMinAct = out, act
		r.SMTXMinProf = snapshot(sys, r, "smtx-min", r.Spec.Paradigm)
		r.SMTXMinMetrics = metricSnapshot(cfg, sys, r, "smtx-min")
	}
}

// RunBench measures one benchmark: sequential, HMTX with maximal validation,
// and (when available) SMTX with minimal and maximal read/write sets.
func RunBench(cfg Config, spec workloads.Spec) BenchResult {
	r := BenchResult{Spec: spec}
	runSeq(cfg, &r)
	runHMTX(cfg, &r)
	if spec.HasSMTX {
		runSMTX(cfg, &r, smtx.MinSet)
		runSMTX(cfg, &r, smtx.MaxSet)
	}
	return r
}

// unit is one independently runnable simulation: a (benchmark, mode) pair.
// Each unit builds its own engine.System and writes a disjoint group of
// fields of its BenchResult, so units never share mutable state.
type unit struct {
	idx  int // index into the result slice
	mode string
	run  func(*BenchResult)
}

// units expands specs into the flat work list, in spec order.
func units(cfg Config, specs []workloads.Spec) []unit {
	var us []unit
	for i, spec := range specs {
		i := i
		us = append(us,
			unit{i, "seq", func(r *BenchResult) { runSeq(cfg, r) }},
			unit{i, "hmtx", func(r *BenchResult) { runHMTX(cfg, r) }})
		if spec.HasSMTX {
			us = append(us,
				unit{i, "smtx-min", func(r *BenchResult) { runSMTX(cfg, r, smtx.MinSet) }},
				unit{i, "smtx-max", func(r *BenchResult) { runSMTX(cfg, r, smtx.MaxSet) }})
		}
	}
	return us
}

// RunSpecs measures the given benchmarks, writing progress lines to w (may be
// nil). With cfg.Parallelism != 1 the (benchmark, mode) units run concurrently
// on a worker pool; because every unit owns its engine.System and writes a
// disjoint field group, and results live at fixed spec-order indices, the
// returned slice — and hence BuildDoc's JSON — is identical at any
// parallelism (DESIGN.md §11).
func RunSpecs(cfg Config, specs []workloads.Spec, w io.Writer) []BenchResult {
	out := make([]BenchResult, len(specs))
	for i := range out {
		out[i].Spec = specs[i]
	}

	p := cfg.Parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p == 1 {
		for i, spec := range specs {
			if w != nil {
				fmt.Fprintf(w, "running %-12s (%v, scale %d)...\n", spec.Name, spec.Paradigm, cfg.Scale)
			}
			runSeq(cfg, &out[i])
			runHMTX(cfg, &out[i])
			if spec.HasSMTX {
				runSMTX(cfg, &out[i], smtx.MinSet)
				runSMTX(cfg, &out[i], smtx.MaxSet)
			}
		}
		return out
	}

	us := units(cfg, specs)
	if p > len(us) {
		p = len(us)
	}
	var next atomic.Int64
	var mu sync.Mutex // serialises progress lines
	var wg sync.WaitGroup
	for g := 0; g < p; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := int(next.Add(1)) - 1
				if n >= len(us) {
					return
				}
				u := us[n]
				if w != nil {
					spec := out[u.idx].Spec
					mu.Lock()
					fmt.Fprintf(w, "running %-12s %-8s (%v, scale %d)...\n", spec.Name, u.mode, spec.Paradigm, cfg.Scale)
					mu.Unlock()
				}
				u.run(&out[u.idx])
			}
		}()
	}
	wg.Wait()
	return out
}

// RunAll measures every benchmark, writing progress lines to w (may be nil).
func RunAll(cfg Config, w io.Writer) []BenchResult {
	return RunSpecs(cfg, workloads.All(), w)
}

// Table1 renders the per-benchmark speculative-execution statistics
// (paper Table 1).
func Table1(results []BenchResult) string {
	var t stats.Table
	t.Add("Benchmark", "Paradigm", "HotLoop%", "SpecAcc/TX", "SLAAvoid/TX", "%LoadsNeedSLA", "%Branches", "Mispred%")
	for i := range results {
		r := &results[i]
		txs := float64(r.HMTXEng.Txs)
		specLoads := float64(r.HMTXMem.SpecLoads)
		branches := float64(r.HMTXEng.Branches)
		insts := float64(r.HMTXEng.Instructions)
		t.AddF(r.Spec.Name, r.Spec.Paradigm, r.Spec.HotLoopPct,
			fmt.Sprintf("%.0f", float64(r.HMTXEng.SpecAccesses)/txs),
			fmt.Sprintf("%.3f", float64(r.HMTXEng.AvoidedAborts)/txs),
			stats.Pct(float64(r.HMTXMem.SLAsSent)/specLoads, 2),
			stats.Pct(branches/insts, 1),
			stats.Pct(float64(r.HMTXEng.Mispredicts)/branches, 2))
	}
	return "Table 1: Statistics from simulated speculative execution using HMTX\n" + t.String()
}

// Table2 renders the architectural configuration (paper Table 2).
func Table2(cfg Config) string {
	mc := cfg.engineConfig().Mem
	var t stats.Table
	t.Add("Feature", "Parameter")
	t.AddF("Cores", mc.Cores)
	t.AddF("Clock Speed", "2.0 GHz")
	t.AddF("L1 D Cache", fmt.Sprintf("%dKB, %d-way, %d cycle latency", mc.L1Size>>10, mc.L1Ways, mc.L1Lat))
	t.AddF("Shared L2 Cache", fmt.Sprintf("%dMB, %d-way, %d cycle latency", mc.L2Size>>20, mc.L2Ways, mc.L2Lat))
	t.AddF("Cache Line Size", fmt.Sprintf("%dB", memsys.LineSize))
	t.AddF("Base Coherence Protocol", "MOESI")
	t.AddF("Memory Latency", fmt.Sprintf("%d cycles", mc.MemLat))
	t.AddF("VID Width", fmt.Sprintf("%d bits", mc.VIDSpace.Bits))
	return "Table 2: Architectural configuration\n" + t.String()
}

// Fig2 renders the SMTX whole-program speedup comparison with minimal vs
// substantial read/write sets (paper Figure 2).
func Fig2(results []BenchResult) string {
	var t stats.Table
	t.Add("Benchmark", "SMTX min R/W (whole prog)", "SMTX max R/W (whole prog)")
	var mins, maxs []float64
	for i := range results {
		r := &results[i]
		if !r.Spec.HasSMTX {
			continue
		}
		mn := r.WholeProgram(r.HotSpeedupSMTX(smtx.MinSet))
		mx := r.WholeProgram(r.HotSpeedupSMTX(smtx.MaxSet))
		mins, maxs = append(mins, mn), append(maxs, mx)
		t.AddF(r.Spec.Name, fmt.Sprintf("%.2fx", mn), fmt.Sprintf("%.2fx", mx))
	}
	t.AddF("Geomean", fmt.Sprintf("%.2fx", stats.Geomean(mins)), fmt.Sprintf("%.2fx", stats.Geomean(maxs)))
	return "Figure 2: SMTX whole-program speedup, minimal vs substantial R/W set\n" + t.String()
}

// Fig8 renders the hot-loop speedups over sequential execution on 4 cores
// (paper Figure 8): SMTX with minimal sets vs HMTX with maximal sets.
func Fig8(results []BenchResult) string {
	var t stats.Table
	t.Add("Benchmark", "SMTX min R/W", "HMTX max R/W")
	var hAll, hComp, sComp []float64
	for i := range results {
		r := &results[i]
		h := r.HotSpeedupHMTX()
		hAll = append(hAll, h)
		sCell := "-"
		if r.Spec.HasSMTX {
			s := r.HotSpeedupSMTX(smtx.MinSet)
			sComp = append(sComp, s)
			hComp = append(hComp, h)
			sCell = fmt.Sprintf("%.2fx", s)
		}
		t.AddF(r.Spec.Name, sCell, fmt.Sprintf("%.2fx", h))
	}
	t.AddF("Geomean (Comp.)", fmt.Sprintf("%.2fx", stats.Geomean(sComp)), fmt.Sprintf("%.2fx", stats.Geomean(hComp)))
	t.AddF("Geomean (All)", "-", fmt.Sprintf("%.2fx", stats.Geomean(hAll)))
	return "Figure 8: Hot loop speedup over sequential using 4 cores\n" + t.String()
}

// Fig9 renders the average read/write-set sizes per transaction
// (paper Figure 9).
func Fig9(results []BenchResult) string {
	var t stats.Table
	t.Add("Benchmark", "Read Set", "Write Set", "Combined", "Max Combined")
	var combined []float64
	for i := range results {
		r := &results[i]
		txs := r.HMTXEng.Txs
		if txs == 0 {
			continue
		}
		rb := r.HMTXEng.ReadSetBytes / txs
		wb := r.HMTXEng.WriteSetBytes / txs
		combined = append(combined, float64(rb+wb)/1024)
		t.AddF(r.Spec.Name, stats.KB(rb), stats.KB(wb), stats.KB(rb+wb), stats.KB(r.HMTXEng.MaxCombinedBytes))
	}
	t.AddF("Geomean", "", "", fmt.Sprintf("%.1f kB", stats.Geomean(combined)), "")
	return "Figure 9: Average read/write set size per transaction\n" + t.String()
}

// Table3 renders the area, power and energy comparison (paper Table 3).
func Table3(cfg Config, results []BenchResult) string {
	m := power.Default22nm()
	mc := cfg.engineConfig().Mem
	baseArea := m.Area(mc, false)
	hmtxArea := m.Area(mc, true)

	type row struct {
		hw, model string
		area      power.Area
		hmtxHW    bool
		pick      func(*BenchResult) (power.Activity, bool)
	}
	seqAct := func(r *BenchResult) (power.Activity, bool) { return r.SeqAct, true }
	seqComp := func(r *BenchResult) (power.Activity, bool) { return r.SeqAct, r.Spec.HasSMTX }
	smtxMin := func(r *BenchResult) (power.Activity, bool) { return r.SMTXMinAct, r.Spec.HasSMTX }
	hmtxAll := func(r *BenchResult) (power.Activity, bool) { return r.HMTXAct, true }
	hmtxComp := func(r *BenchResult) (power.Activity, bool) { return r.HMTXAct, r.Spec.HasSMTX }

	rows := []row{
		{"Commodity", "Sequential (All)", baseArea, false, seqAct},
		{"Commodity", "Sequential (Comp.)", baseArea, false, seqComp},
		{"Commodity", "SMTX, Min R/W", baseArea, false, smtxMin},
		{"Commodity+HMTX", "Sequential (All)", hmtxArea, true, seqAct},
		{"Commodity+HMTX", "Sequential (Comp.)", hmtxArea, true, seqComp},
		{"Commodity+HMTX", "SMTX, Min R/W", hmtxArea, true, smtxMin},
		{"Commodity+HMTX", "HMTX, Max R/W (All)", hmtxArea, true, hmtxAll},
		{"Commodity+HMTX", "HMTX, Max R/W (Comp.)", hmtxArea, true, hmtxComp},
	}

	var t stats.Table
	t.Add("Hardware", "Exec Model", "Area (mm2)", "Leakage (W)", "Geomean Dyn (W)", "Geomean Energy (J)")
	for _, rw := range rows {
		var pows, engs []float64
		for i := range results {
			act, ok := rw.pick(&results[i])
			if !ok {
				continue
			}
			pows = append(pows, m.DynamicPower(act, rw.hmtxHW))
			engs = append(engs, m.TotalEnergy(act, rw.area, rw.hmtxHW))
		}
		t.AddF(rw.hw, rw.model,
			fmt.Sprintf("%.1f", rw.area.Total()),
			fmt.Sprintf("%.3f", m.Leakage(rw.area)),
			fmt.Sprintf("%.2f", stats.Geomean(pows)),
			fmt.Sprintf("%.4f", stats.Geomean(engs)))
	}
	return "Table 3: Area, power, and energy on the simulated 4-core machine\n" + t.String()
}
