package experiments

import (
	"fmt"

	"hmtx/internal/engine"
	"hmtx/internal/hmtx"
	"hmtx/internal/paradigm"
	"hmtx/internal/stats"
	"hmtx/internal/vid"
	"hmtx/internal/workloads"
)

// AblationSLA contrasts runs with speculative load acknowledgments enabled
// and disabled (§5.1) on 186.crafty, the benchmark with the highest branch
// misprediction rate. Without SLAs, squashed wrong-path loads mark cache
// lines and cause false misspeculation aborts.
func AblationSLA(cfg Config) string {
	spec, err := workloads.ByName("052.alvinn")
	if err != nil {
		panic(err)
	}
	var t stats.Table
	t.Add("SLAs", "Cycles", "Aborts", "AvoidedAborts", "Recovery runs")
	for _, enabled := range []bool{true, false} {
		ec := cfg.engineConfig()
		ec.Mem.SLAEnabled = enabled
		sys := engine.New(ec)
		loop := spec.New(cfg.Scale)
		loop.Setup(sys.Mem)
		out := hmtx.Run(sys, loop, spec.Paradigm, cfg.Cores)
		t.AddF(fmt.Sprintf("%v", enabled), out.Cycles, out.Aborts, sys.Mem.Stats().AvoidedAborts, out.Runs)
	}
	return "Ablation: speculative load acknowledgments (§5.1) on 052.alvinn\n" + t.String()
}

// AblationVIDWidth sweeps the hardware VID width m (§4.6): narrow VIDs force
// frequent VID resets that drain the DSWP pipeline, while wide VIDs cost
// area and energy (the paper settles on 6 bits).
func AblationVIDWidth(cfg Config) string {
	spec, err := workloads.ByName("164.gzip")
	if err != nil {
		panic(err)
	}
	widths := []uint{2, 3, 4, 6, 8}
	type meas struct {
		cycles int64
		resets uint64
	}
	results := make(map[uint]meas)
	for _, bits := range widths {
		ec := cfg.engineConfig()
		ec.Mem.VIDSpace = vid.Space{Bits: bits}
		sys := engine.New(ec)
		loop := spec.New(cfg.Scale)
		loop.Setup(sys.Mem)
		out := hmtx.Run(sys, loop, spec.Paradigm, cfg.Cores)
		results[bits] = meas{out.Cycles, sys.Mem.Stats().VIDResets}
	}
	base := float64(results[6].cycles)
	var t stats.Table
	t.Add("VID bits", "VIDs/epoch", "Cycles", "VID resets", "Slowdown vs m=6")
	for _, bits := range widths {
		r := results[bits]
		t.AddF(bits, (uint64(1)<<bits)-1, r.cycles, r.resets,
			fmt.Sprintf("%.2fx", float64(r.cycles)/base))
	}
	return "Ablation: VID width vs reset-stall cost (§4.6) on 164.gzip\n" + t.String()
}

// AblationLazyCommit contrasts the lazy commit scheme of §5.3 with the naive
// eager scheme of §4.4 (every commit sweeps all caches, as in
// Vachharajani's proposal, §7.1).
func AblationLazyCommit(cfg Config) string {
	spec, err := workloads.ByName("456.hmmer")
	if err != nil {
		panic(err)
	}
	var t stats.Table
	t.Add("Commit scheme", "Cycles", "Slowdown")
	var lazy int64
	for _, eager := range []bool{false, true} {
		ec := cfg.engineConfig()
		ec.Mem.EagerCommit = eager
		sys := engine.New(ec)
		loop := spec.New(cfg.Scale)
		loop.Setup(sys.Mem)
		out := hmtx.Run(sys, loop, spec.Paradigm, cfg.Cores)
		name := "lazy (§5.3)"
		slow := "1.00x"
		if eager {
			name = "eager sweep (§4.4)"
			slow = fmt.Sprintf("%.2fx", float64(out.Cycles)/float64(lazy))
		} else {
			lazy = out.Cycles
		}
		t.AddF(name, out.Cycles, slow)
	}
	return "Ablation: lazy vs eager commit processing (§5.3) on 456.hmmer\n" + t.String()
}

// AblationScaling sweeps the core count on a work-stage-bound loop,
// anticipating the paper's future-work question of scaling HMTX beyond four
// cores (§8): PS-DSWP keeps profiting from added cores while DSWP cannot.
func AblationScaling(cfg Config) string {
	var t stats.Table
	t.Add("Cores", "DSWP", "PS-DSWP")
	seqSys := engine.New(cfg.engineConfig())
	loop := &microLoop{n: 48, work: 2600, nWork: 320}
	loop.Setup(seqSys.Mem)
	seq := paradigm.RunSequential(seqSys, loop)
	for _, cores := range []int{2, 4, 6, 8} {
		row := []interface{}{cores}
		for _, k := range []paradigm.Kind{paradigm.DSWP, paradigm.PSDSWP} {
			ec := cfg.engineConfig()
			ec.Mem.Cores = cores
			sys := engine.New(ec)
			l := &microLoop{n: 48, work: 2600, nWork: 320}
			l.Setup(sys.Mem)
			out := hmtx.Run(sys, l, k, cores)
			row = append(row, fmt.Sprintf("%.2fx", float64(seq)/float64(out.Cycles)))
		}
		t.AddF(row...)
	}
	return "Ablation: core-count scaling on the work-bound loop (§8)\n" + t.String()
}

// Paradigms compares all applicable paradigms on every benchmark, extending
// Figure 1's conceptual comparison to the full suite.
func Paradigms(cfg Config) string {
	var t stats.Table
	t.Add("Benchmark", "DOACROSS", "DSWP", "PS-DSWP", "DOALL")
	for _, spec := range workloads.All() {
		cells := []interface{}{spec.Name}
		for _, k := range []paradigm.Kind{paradigm.DOACROSS, paradigm.DSWP, paradigm.PSDSWP, paradigm.DOALL} {
			if k == paradigm.DOALL && spec.Paradigm != paradigm.DOALL {
				// Only alvinn's iterations are independent enough
				// for DOALL.
				cells = append(cells, "-")
				continue
			}
			seqSys := engine.New(cfg.engineConfig())
			loop := spec.New(cfg.Scale)
			loop.Setup(seqSys.Mem)
			seq := paradigm.RunSequential(seqSys, loop)

			sys := engine.New(cfg.engineConfig())
			loop = spec.New(cfg.Scale)
			loop.Setup(sys.Mem)
			out := hmtx.Run(sys, loop, k, cfg.Cores)
			cells = append(cells, fmt.Sprintf("%.2fx", float64(seq)/float64(out.Cycles)))
		}
		t.AddF(cells...)
	}
	return "Paradigm comparison: hot-loop speedup by execution model (HMTX)\n" + t.String()
}
