package experiments

import (
	"reflect"
	"testing"

	"hmtx/internal/engine"
	"hmtx/internal/hmtx"
	"hmtx/internal/memsys"
	"hmtx/internal/workloads"
)

// replay runs one misprediction-heavy benchmark under a given seed and
// returns everything a run can observably produce: the outcome plus all
// engine and memory-system counters.
func replay(t *testing.T, seed int64) (hmtx.Outcome, engine.Stats, memsys.Stats) {
	t.Helper()
	spec, err := workloads.ByName("164.gzip")
	if err != nil {
		t.Fatal(err)
	}
	cfg := engine.DefaultConfig()
	cfg.Seed = seed
	cfg.Mem.Cores = 4
	cfg.Mem.Sanitize = true
	sys := engine.New(cfg)
	loop := spec.New(1)
	loop.Setup(sys.Mem)
	out := hmtx.Run(sys, loop, spec.Paradigm, 4)
	return out, *sys.Stats(), *sys.Mem.Stats()
}

// TestSeedReplayDeterminism pins the determinism contract (DESIGN.md): a run
// is a pure function of Config, so replaying the same seed must reproduce
// the outcome and every statistic exactly, including the counters perturbed
// by rng-driven wrong-path loads (§5.1).
func TestSeedReplayDeterminism(t *testing.T) {
	out1, es1, ms1 := replay(t, 12345)
	out2, es2, ms2 := replay(t, 12345)

	// The engine rng only matters if the workload actually mispredicts;
	// guard against the test silently losing its teeth.
	if es1.Mispredicts == 0 {
		t.Fatal("benchmark exercised no mispredictions; wrong-path rng untested")
	}
	if !reflect.DeepEqual(out1, out2) {
		t.Errorf("outcome differs across replays:\n  %+v\n  %+v", out1, out2)
	}
	if !reflect.DeepEqual(es1, es2) {
		t.Errorf("engine stats differ across replays:\n  %+v\n  %+v", es1, es2)
	}
	if !reflect.DeepEqual(ms1, ms2) {
		t.Errorf("memory stats differ across replays:\n  %+v\n  %+v", ms1, ms2)
	}

	// A different seed steers wrong-path loads elsewhere, but semantics
	// (committed iterations) must not depend on the seed.
	out3, _, _ := replay(t, 999)
	if out3.Iterations != out1.Iterations || out3.ExitedEarly != out1.ExitedEarly {
		t.Errorf("committed work depends on seed: %+v vs %+v", out1, out3)
	}
}
