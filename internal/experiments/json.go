package experiments

import (
	"encoding/json"
	"io"

	"hmtx/internal/hmtx"
	"hmtx/internal/metrics"
	"hmtx/internal/prof"
	"hmtx/internal/stats"
)

// Doc is the machine-readable evaluation document ("hmtx-bench/v1") emitted
// by cmd/experiments -json. Struct field order and encoding/json's sorted map
// keys make the document byte-identical across runs of the same Config, so
// two BENCH_*.json files can be compared with cmp or diffed field by field
// (EXPERIMENTS.md).
type Doc struct {
	Schema     string      `json:"schema"`
	Scale      int         `json:"scale"`
	Cores      int         `json:"cores"`
	Benchmarks []BenchJSON `json:"benchmarks"`
	// GeomeanHMTX is the geometric-mean HMTX hot-loop speedup across all
	// benchmarks (the Figure 8 "Geomean (All)" row).
	GeomeanHMTX float64 `json:"geomean_hmtx_speedup"`
}

// BenchJSON is one benchmark's measurements.
type BenchJSON struct {
	Name      string   `json:"name"`
	Paradigm  string   `json:"paradigm"`
	SeqCycles int64    `json:"seq_cycles"`
	HMTX      SysJSON  `json:"hmtx"`
	SMTXMin   *SysJSON `json:"smtx_min,omitempty"`
	SMTXMax   *SysJSON `json:"smtx_max,omitempty"`

	// Per-transaction statistics of the HMTX run (Table 1 / Figure 9).
	Txs           uint64 `json:"txs"`
	SpecAccesses  uint64 `json:"spec_accesses"`
	SLAsSent      uint64 `json:"slas_sent"`
	AvoidedAborts uint64 `json:"avoided_aborts"`
	ReadSetBytes  uint64 `json:"read_set_bytes"`
	WriteSetBytes uint64 `json:"write_set_bytes"`
}

// SysJSON is one execution system's outcome on one benchmark.
type SysJSON struct {
	Cycles  int64   `json:"cycles"`
	Speedup float64 `json:"speedup"`
	Aborts  int     `json:"aborts"`
	Runs    int     `json:"runs"`
}

func sysJSON(seqCycles int64, out hmtx.Outcome) SysJSON {
	return SysJSON{
		Cycles:  out.Cycles,
		Speedup: float64(seqCycles) / float64(out.Cycles),
		Aborts:  out.Aborts,
		Runs:    out.Runs,
	}
}

// BuildDoc converts a RunAll result set into the JSON document.
func BuildDoc(cfg Config, results []BenchResult) Doc {
	doc := Doc{Schema: "hmtx-bench/v1", Scale: cfg.Scale, Cores: cfg.Cores}
	var speedups []float64
	for i := range results {
		r := &results[i]
		b := BenchJSON{
			Name:          r.Spec.Name,
			Paradigm:      r.Spec.Paradigm.String(),
			SeqCycles:     r.SeqCycles,
			HMTX:          sysJSON(r.SeqCycles, r.HMTXOut),
			Txs:           r.HMTXEng.Txs,
			SpecAccesses:  r.HMTXEng.SpecAccesses,
			SLAsSent:      r.HMTXMem.SLAsSent,
			AvoidedAborts: r.HMTXEng.AvoidedAborts,
			ReadSetBytes:  r.HMTXEng.ReadSetBytes,
			WriteSetBytes: r.HMTXEng.WriteSetBytes,
		}
		if r.Spec.HasSMTX {
			mn := sysJSON(r.SeqCycles, r.SMTXMinOut)
			mx := sysJSON(r.SeqCycles, r.SMTXMaxOut)
			b.SMTXMin, b.SMTXMax = &mn, &mx
		}
		speedups = append(speedups, b.HMTX.Speedup)
		doc.Benchmarks = append(doc.Benchmarks, b)
	}
	doc.GeomeanHMTX = stats.Geomean(speedups)
	return doc
}

// WriteJSON writes the document as indented JSON with a trailing newline.
func WriteJSON(w io.Writer, doc Doc) error {
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// BuildSeriesDoc collects the suite's time-series snapshots into one
// hmtx-series/v1 document, in spec order with the per-benchmark system order
// seq, hmtx, smtx-min, smtx-max. Results from a Config without Metrics set
// produce an empty series list.
func BuildSeriesDoc(cfg Config, results []BenchResult) metrics.SeriesDoc {
	doc := metrics.SeriesDoc{Schema: metrics.SeriesSchema, Scale: cfg.Scale, Cores: cfg.Cores}
	for i := range results {
		for _, m := range results[i].metricSets() {
			if m != nil {
				doc.Series = append(doc.Series, m.Series)
			}
		}
	}
	return doc
}

// BuildConflictDoc collects the suite's conflict graphs into one
// hmtx-conflicts/v1 document, in the same order as BuildSeriesDoc.
func BuildConflictDoc(cfg Config, results []BenchResult) metrics.ConflictDoc {
	doc := metrics.ConflictDoc{Schema: metrics.ConflictSchema, Scale: cfg.Scale, Cores: cfg.Cores}
	for i := range results {
		for _, m := range results[i].metricSets() {
			if m != nil {
				doc.Graphs = append(doc.Graphs, m.Conflicts)
			}
		}
	}
	return doc
}

// BuildHistDoc collects the suite's latency histograms into one hmtx-hist/v1
// document, in the same order as BuildSeriesDoc.
func BuildHistDoc(cfg Config, results []BenchResult) metrics.HistDoc {
	doc := metrics.HistDoc{Schema: metrics.HistSchema, Scale: cfg.Scale, Cores: cfg.Cores}
	for i := range results {
		for _, m := range results[i].metricSets() {
			if m != nil {
				doc.Histograms = append(doc.Histograms, m.Hists)
			}
		}
	}
	return doc
}

// WriteAnyJSON writes any document as indented JSON with a trailing newline.
func WriteAnyJSON(w io.Writer, doc any) error {
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// BuildProfDoc collects the suite's cycle-attribution profiles into one
// hmtx-prof/v1 document, in spec order with the per-benchmark system order
// seq, hmtx, smtx-min, smtx-max. Results from a Config without Profile set
// produce an empty profile list.
func BuildProfDoc(cfg Config, results []BenchResult) prof.Doc {
	doc := prof.Doc{Schema: prof.Schema, Scale: cfg.Scale, Cores: cfg.Cores}
	for i := range results {
		r := &results[i]
		for _, p := range []*prof.Profile{r.SeqProf, r.HMTXProf, r.SMTXMinProf, r.SMTXMaxProf} {
			if p != nil {
				doc.Profiles = append(doc.Profiles, *p)
			}
		}
	}
	return doc
}
