package experiments

import (
	"strings"
	"testing"

	"hmtx/internal/smtx"
	"hmtx/internal/workloads"
)

// oneBench runs the smallest benchmark once for formatting tests.
func oneBench(t *testing.T) []BenchResult {
	t.Helper()
	spec, err := workloads.ByName("ispell")
	if err != nil {
		t.Fatal(err)
	}
	return []BenchResult{RunBench(Default(), spec)}
}

func TestRunBenchMeasuresEverything(t *testing.T) {
	spec, err := workloads.ByName("456.hmmer")
	if err != nil {
		t.Fatal(err)
	}
	r := RunBench(Default(), spec)
	if r.SeqCycles <= 0 || r.HMTXOut.Cycles <= 0 {
		t.Fatal("missing cycle measurements")
	}
	if r.HotSpeedupHMTX() <= 1 {
		t.Fatalf("hmmer HMTX speedup = %.2f, want > 1", r.HotSpeedupHMTX())
	}
	if !spec.HasSMTX {
		t.Fatal("hmmer should have an SMTX comparison")
	}
	if r.SMTXMinOut.Cycles <= 0 || r.SMTXMaxOut.Cycles <= 0 {
		t.Fatal("missing SMTX measurements")
	}
	if r.HotSpeedupSMTX(smtx.MaxSet) >= r.HotSpeedupSMTX(smtx.MinSet) {
		t.Fatal("maximal validation must cost SMTX performance (Figure 2)")
	}
	if r.HMTXEng.Txs == 0 || r.HMTXEng.SpecAccesses == 0 {
		t.Fatal("missing per-transaction statistics")
	}
}

func TestWholeProgramAmdahl(t *testing.T) {
	r := BenchResult{Spec: workloads.Spec{HotLoopPct: 50}}
	// 2x on half the program -> 1/(0.5+0.25) = 1.333x whole program.
	if got := r.WholeProgram(2); got < 1.32 || got > 1.34 {
		t.Fatalf("WholeProgram(2) at 50%% = %f, want ~1.333", got)
	}
	r.Spec.HotLoopPct = 100
	if got := r.WholeProgram(2); got < 1.99 || got > 2.01 {
		t.Fatalf("WholeProgram(2) at 100%% = %f, want 2", got)
	}
}

func TestTableFormatting(t *testing.T) {
	rs := oneBench(t)
	for name, out := range map[string]string{
		"Table1": Table1(rs),
		"Fig8":   Fig8(rs),
		"Fig9":   Fig9(rs),
	} {
		if !strings.Contains(out, "ispell") {
			t.Errorf("%s missing benchmark row:\n%s", name, out)
		}
	}
	if out := Table3(Default(), rs); !strings.Contains(out, "HMTX, Max R/W (All)") {
		t.Errorf("Table3 missing HMTX row:\n%s", out)
	}
	if out := Table2(Default()); !strings.Contains(out, "MOESI") {
		t.Errorf("Table2 missing protocol row:\n%s", out)
	}
}

func TestFig1ShowsParadigmOrdering(t *testing.T) {
	out := Fig1(4)
	for _, want := range []string{"Sequential", "DOACROSS", "DSWP", "PS-DSWP"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fig1 missing %s:\n%s", want, out)
		}
	}
}

func TestAblationSLAShowsFalseMisspeculation(t *testing.T) {
	out := AblationSLA(Default())
	if !strings.Contains(out, "true") || !strings.Contains(out, "false") {
		t.Fatalf("SLA ablation must show both modes:\n%s", out)
	}
}

func TestAblationLazyCommitSlower(t *testing.T) {
	out := AblationLazyCommit(Default())
	if !strings.Contains(out, "eager sweep") {
		t.Fatalf("missing eager row:\n%s", out)
	}
}
