package experiments

import (
	"fmt"

	"hmtx/internal/engine"
	"hmtx/internal/hmtx"
	"hmtx/internal/memsys"
	"hmtx/internal/paradigm"
	"hmtx/internal/stats"
)

// microLoop is the linked-list-with-work loop of Figure 1: stage 1 walks the
// list (the loop-carried dependence n_i), stage 2 performs the work w_i.
type microLoop struct {
	n     int
	work  int64
	nWork int64 // stage-1 (traversal) work
}

const (
	f1List     = memsys.Addr(0x900000)
	f1Head     = memsys.Addr(0x9000)
	f1Produced = memsys.Addr(0x9040)
	f1Out      = memsys.Addr(0x980000)
)

func (l *microLoop) Name() string { return "fig1-loop" }
func (l *microLoop) Iters() int   { return l.n }

func (l *microLoop) Setup(h *memsys.Hierarchy) {
	for i := 0; i < l.n; i++ {
		node := f1List + memsys.Addr(i)*memsys.LineSize
		h.PokeWord(node, uint64(i)*7+1)
		next := node + memsys.LineSize
		if i == l.n-1 {
			next = 0
		}
		h.PokeWord(node+8, next)
	}
	h.PokeWord(f1Head, uint64(f1List))
}

func (l *microLoop) Stage1(e *engine.Env, it int) bool {
	node := e.Load(f1Head)
	e.Store(f1Produced, node)
	e.Compute(l.nWork)
	next := e.Load(memsys.Addr(node) + 8)
	e.Store(f1Head, next)
	return next != 0
}

func (l *microLoop) Stage2(e *engine.Env, it int) bool {
	node := e.Load(f1Produced)
	v := e.Load(memsys.Addr(node))
	e.Compute(l.work)
	e.Store(f1Out+memsys.Addr(it)*memsys.LineSize, v*3)
	return false
}

// Fig1 reproduces the execution-model comparison of Figure 1: the same loop
// under Sequential, DOACROSS, DSWP and PS-DSWP execution. DOACROSS and DSWP
// can profitably use only two threads' worth of parallelism (stage 1 is the
// serial recurrence), while PS-DSWP's parallel work stage scales.
func Fig1(cores int) string {
	kinds := []paradigm.Kind{paradigm.Sequential, paradigm.DOACROSS, paradigm.DSWP, paradigm.PSDSWP}
	var t stats.Table
	t.Add("Paradigm", "Threads", "Cycles", "Speedup")
	var seqCycles int64
	for _, k := range kinds {
		loop := &microLoop{n: 48, work: 2600, nWork: 320}
		cfg := engine.DefaultConfig()
		cfg.Mem.Cores = cores
		sys := engine.New(cfg)
		loop.Setup(sys.Mem)
		out := hmtx.Run(sys, loop, k, cores)
		if k == paradigm.Sequential {
			seqCycles = out.Cycles
		}
		threads := cores
		if k == paradigm.Sequential {
			threads = 1
		}
		t.AddF(k, threads, out.Cycles, fmt.Sprintf("%.2fx", float64(seqCycles)/float64(out.Cycles)))
	}
	return "Figure 1: Execution paradigms on the linked-list loop (HMTX)\n" + t.String()
}
