package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"hmtx/internal/workloads"
)

func TestBuildDocDeterministic(t *testing.T) {
	spec, err := workloads.ByName("052.alvinn")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Scale: 1, Cores: 4}
	emit := func() []byte {
		r := RunBench(cfg, spec)
		var buf bytes.Buffer
		if err := WriteJSON(&buf, BuildDoc(cfg, []BenchResult{r})); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := emit(), emit()
	if !bytes.Equal(a, b) {
		t.Fatal("BENCH JSON differs across identical runs")
	}
	var doc Doc
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, a)
	}
	if doc.Schema != "hmtx-bench/v1" || len(doc.Benchmarks) != 1 {
		t.Fatalf("doc = %+v", doc)
	}
	bj := doc.Benchmarks[0]
	if bj.Name != "052.alvinn" || bj.HMTX.Cycles <= 0 || bj.HMTX.Speedup <= 1 {
		t.Errorf("benchmark entry = %+v", bj)
	}
	if bj.SMTXMin == nil || bj.SMTXMin.Cycles <= 0 {
		t.Errorf("smtx_min missing for an SMTX-capable benchmark: %+v", bj)
	}
	// Geomean goes through exp(log(x)), so allow float round-off.
	if d := doc.GeomeanHMTX - bj.HMTX.Speedup; d > 1e-9 || d < -1e-9 {
		t.Errorf("geomean of one benchmark = %v, want %v", doc.GeomeanHMTX, bj.HMTX.Speedup)
	}
}
