package experiments

import (
	"fmt"
	"io"

	"hmtx/internal/workloads"
)

// Checkpoint support (hmtx-ckpt/v1, DESIGN.md §18) at (benchmark, mode) unit
// granularity. Every unit owns its engine.System and writes a disjoint field
// group of its BenchResult, so a unit boundary is a perfect cut: resuming a
// suite from a checkpoint re-runs only the remaining units and produces
// byte-identical documents to an uninterrupted run — unlike hmtxsim's
// intra-run segmentation, nothing about simulated timing changes.

// CkptState is the serialisable progress of a partially completed suite: the
// completed unit keys ("benchmark/mode", completion order) and the partial
// results in spec order. BenchResult serialises fully except Spec.New (a
// constructor function), which the resume re-derives from the workload
// registry by name.
type CkptState struct {
	Done    []string      `json:"done"`
	Results []BenchResult `json:"results"`
}

// CkptOptions controls unit-granularity checkpointing.
type CkptOptions struct {
	// Every calls Checkpoint after every Every completed units (0 = never).
	Every int
	// Checkpoint receives the progress so far; returning true halts the
	// suite at the unit boundary.
	Checkpoint func(st CkptState) (halt bool)
	// Resume, when non-nil, seeds completed units and their results; only
	// the remaining units run.
	Resume *CkptState
}

// RunSpecsCkpt is RunSpecs with checkpoint support. Checkpointing requires
// the serial unit order, so cfg.Parallelism must be 1. It returns the
// results and whether a Checkpoint callback halted the suite (in which case
// the results are partial).
func RunSpecsCkpt(cfg Config, specs []workloads.Spec, w io.Writer, opts CkptOptions) ([]BenchResult, bool, error) {
	if cfg.Parallelism != 1 {
		return nil, false, fmt.Errorf("experiments: checkpointing requires Parallelism 1, got %d", cfg.Parallelism)
	}
	out := make([]BenchResult, len(specs))
	for i := range out {
		out[i].Spec = specs[i]
	}
	done := make(map[string]bool)
	var doneKeys []string
	if opts.Resume != nil {
		if len(opts.Resume.Results) != len(specs) {
			return nil, false, fmt.Errorf("experiments: checkpoint has %d benchmarks, suite has %d", len(opts.Resume.Results), len(specs))
		}
		for i := range out {
			if got, want := opts.Resume.Results[i].Spec.Name, specs[i].Name; got != want {
				return nil, false, fmt.Errorf("experiments: checkpoint benchmark %d is %q, suite expects %q", i, got, want)
			}
			out[i] = opts.Resume.Results[i]
			out[i].Spec = specs[i] // reattach the live constructor
		}
		doneKeys = append(doneKeys, opts.Resume.Done...)
		for _, k := range doneKeys {
			done[k] = true
		}
	}
	completed := 0
	for _, u := range units(cfg, specs) {
		key := specs[u.idx].Name + "/" + u.mode
		if done[key] {
			continue
		}
		if w != nil {
			fmt.Fprintf(w, "running %-12s %-8s (%v, scale %d)...\n", specs[u.idx].Name, u.mode, specs[u.idx].Paradigm, cfg.Scale)
		}
		u.run(&out[u.idx])
		doneKeys = append(doneKeys, key)
		completed++
		if opts.Every > 0 && completed%opts.Every == 0 && opts.Checkpoint != nil {
			st := CkptState{Done: doneKeys, Results: out}
			if opts.Checkpoint(st) {
				return out, true, nil
			}
		}
	}
	return out, false, nil
}
