package experiments

import (
	"bytes"
	"testing"

	"hmtx/internal/workloads"
)

// domainsDocs runs the given specs at the given engine Domains setting and
// renders every deterministic document: hmtx-bench/v1, hmtx-prof/v1,
// hmtx-series/v1, hmtx-conflicts/v1 and hmtx-hist/v1. The full instrument
// stack costs ~100x the plain run, so callers pass a small spec list.
func domainsDocs(t *testing.T, specs []workloads.Spec, domains int) [5][]byte {
	t.Helper()
	cfg := Default()
	cfg.Domains = domains
	cfg.Profile = true
	cfg.Metrics = true
	cfg.MetricsWindow = 1024
	results := RunSpecs(cfg, specs, nil)
	var out [5][]byte
	for i, doc := range []any{
		BuildDoc(cfg, results),
		BuildProfDoc(cfg, results),
		BuildSeriesDoc(cfg, results),
		BuildConflictDoc(cfg, results),
		BuildHistDoc(cfg, results),
	} {
		var buf bytes.Buffer
		if err := WriteAnyJSON(&buf, doc); err != nil {
			t.Fatal(err)
		}
		out[i] = buf.Bytes()
	}
	return out
}

// TestDomainsSuiteDeterminism is the end-to-end tentpole contract at the
// experiments layer: with the engine's domain-sharded scheduler at any
// domain count, every document the suite emits — measurements, cycle
// profiles, time series, conflict graphs, latency histograms — must be
// byte-identical to the serial reference scheduler's. Run under -race this
// also exercises the round workers for data races.
func TestDomainsSuiteDeterminism(t *testing.T) {
	specs := subset(t)[:1] // ispell: the full instrument stack is ~35s/run on the larger specs
	serial := domainsDocs(t, specs, 1)
	names := [5]string{"bench", "prof", "series", "conflicts", "hist"}
	for _, d := range []int{2, 4, 8} {
		par := domainsDocs(t, specs, d)
		for i, name := range names {
			if !bytes.Equal(serial[i], par[i]) {
				t.Errorf("domains=%d: %s JSON differs from serial", d, name)
			}
		}
	}
	if !bytes.Contains(serial[2], []byte(`"label": "ispell/hmtx"`)) {
		t.Error("series doc missing expected labels; comparison may be vacuous")
	}
}

// TestDomainsBenchDeterminismBreadth covers the whole benchmark subset with
// the plain (uninstrumented) configuration, where the parallel rounds engage
// on every run: the hmtx-bench/v1 measurements must be byte-identical to
// serial at every domain count.
func TestDomainsBenchDeterminismBreadth(t *testing.T) {
	docBytes := func(domains int) []byte {
		cfg := Default()
		cfg.Domains = domains
		results := RunSpecs(cfg, subset(t), nil)
		var buf bytes.Buffer
		if err := WriteJSON(&buf, BuildDoc(cfg, results)); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	ref := docBytes(1)
	for _, d := range []int{2, 4, 8} {
		if got := docBytes(d); !bytes.Equal(ref, got) {
			t.Errorf("domains=%d: bench JSON differs from serial", d)
		}
	}
}

// TestDomainsComposesWithParallelism runs intra-simulation domains under the
// across-simulation worker pool at once; the stacked concurrency must still
// produce byte-identical measurements.
func TestDomainsComposesWithParallelism(t *testing.T) {
	specs := subset(t)[:2]
	docBytes := func(parallelism, domains int) []byte {
		cfg := Default()
		cfg.Parallelism = parallelism
		cfg.Domains = domains
		results := RunSpecs(cfg, specs, nil)
		var buf bytes.Buffer
		if err := WriteJSON(&buf, BuildDoc(cfg, results)); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	ref := docBytes(1, 1)
	for _, c := range [][2]int{{1, 4}, {4, 1}, {4, 4}} {
		if got := docBytes(c[0], c[1]); !bytes.Equal(ref, got) {
			t.Errorf("parallel=%d domains=%d: bench JSON differs from serial reference", c[0], c[1])
		}
	}
}
