package experiments

import (
	"bytes"
	"strings"
	"testing"

	"hmtx/internal/workloads"
)

// subset returns a small benchmark set covering both unit shapes (with and
// without an SMTX comparison) so the determinism test stays fast.
func subset(t *testing.T) []workloads.Spec {
	t.Helper()
	var specs []workloads.Spec
	for _, name := range []string{"ispell", "052.alvinn", "456.hmmer"} {
		spec, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, spec)
	}
	return specs
}

// TestParallelSuiteDeterminism is the package's determinism contract: the
// hmtx-bench/v1 document produced with a worker pool must be byte-identical
// to the serial one. Run under -race this also exercises the pool for data
// races (each unit owns its engine.System and a disjoint result field group).
func TestParallelSuiteDeterminism(t *testing.T) {
	specs := subset(t)

	docBytes := func(parallelism int) []byte {
		cfg := Default()
		cfg.Parallelism = parallelism
		results := RunSpecs(cfg, specs, nil)
		var buf bytes.Buffer
		if err := WriteJSON(&buf, BuildDoc(cfg, results)); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	serial := docBytes(1)
	parallel := docBytes(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("parallel suite JSON differs from serial:\n-- serial --\n%s\n-- parallel --\n%s", serial, parallel)
	}
}

// TestSerialProgressFormat pins the progress lines of the serial path, which
// scripts may scrape: one line per benchmark, exactly as before the pool
// existed.
func TestSerialProgressFormat(t *testing.T) {
	specs := subset(t)[:1]
	var buf bytes.Buffer
	cfg := Default()
	cfg.Scale = 1
	RunSpecs(cfg, specs, &buf)
	want := "running ispell       (PS-DSWP, scale 1)...\n"
	if buf.String() != want {
		t.Fatalf("serial progress = %q, want %q", buf.String(), want)
	}
}

// TestParallelProgressCoversUnits checks that the parallel path reports every
// (benchmark, mode) unit, whatever order they finish in.
func TestParallelProgressCoversUnits(t *testing.T) {
	spec, err := workloads.ByName("456.hmmer") // has SMTX, so four units
	if err != nil {
		t.Fatal(err)
	}
	specs := []workloads.Spec{spec}
	var buf bytes.Buffer
	cfg := Default()
	cfg.Parallelism = 4
	RunSpecs(cfg, specs, &buf)
	out := buf.String()
	for _, mode := range []string{"seq", "hmtx", "smtx-min", "smtx-max"} {
		if !strings.Contains(out, mode) {
			t.Errorf("parallel progress missing %s unit:\n%s", mode, out)
		}
	}
	if got := strings.Count(out, "\n"); got != 4 {
		t.Errorf("parallel progress has %d lines, want 4:\n%s", got, out)
	}
}

// TestParallelMetricsDeterminism extends the determinism contract to the
// DESIGN.md §15 metric documents: series, conflict, and histogram JSON must
// be byte-identical between a serial and a pooled suite run.
func TestParallelMetricsDeterminism(t *testing.T) {
	specs := subset(t)[:2]

	docsBytes := func(parallelism int) [3][]byte {
		cfg := Default()
		cfg.Parallelism = parallelism
		cfg.Metrics = true
		cfg.MetricsWindow = 1024
		results := RunSpecs(cfg, specs, nil)
		var out [3][]byte
		for i, doc := range []any{
			BuildSeriesDoc(cfg, results),
			BuildConflictDoc(cfg, results),
			BuildHistDoc(cfg, results),
		} {
			var buf bytes.Buffer
			if err := WriteAnyJSON(&buf, doc); err != nil {
				t.Fatal(err)
			}
			out[i] = buf.Bytes()
		}
		return out
	}

	serial := docsBytes(1)
	parallel := docsBytes(8)
	for i, name := range []string{"series", "conflicts", "hist"} {
		if !bytes.Equal(serial[i], parallel[i]) {
			t.Errorf("parallel %s JSON differs from serial", name)
		}
	}
	// The metric sets must actually be populated, in canonical order.
	if !bytes.Contains(serial[0], []byte(`"label": "ispell/seq"`)) ||
		!bytes.Contains(serial[0], []byte(`"label": "ispell/hmtx"`)) {
		t.Error("series doc missing expected labels")
	}
}
