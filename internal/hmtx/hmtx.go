// Package hmtx is the software runtime for hardware multithreaded
// transactions: it structures speculative parallel loops over the engine's
// beginMTX/commitMTX/abortMTX primitives (§3), assigns program-ordered
// transaction sequence numbers, enforces in-order group commit, and recovers
// from misspeculation by rolling forward from the last committed
// transaction — the software half of the contract described in §4.7.
//
// Every paradigm of Figure 1 is provided: DOALL, DOACROSS, DSWP and
// PS-DSWP, all driven from the same paradigm.Loop decomposition.
package hmtx

import (
	"fmt"
	"sync/atomic"

	"hmtx/internal/engine"
	"hmtx/internal/paradigm"
	"hmtx/internal/vid"
)

// qVIDs is the queue carrying transaction VIDs from stage 1 to stage 2
// (produceVID/consumeVID in Figure 3).
const qVIDs = 1

// qTokBase is the base id of the DOACROSS recurrence-token queues.
const qTokBase = 100

// Outcome summarises a parallel loop execution, including any recovery
// re-executions after misspeculation.
type Outcome struct {
	// Cycles is total simulated time across the initial run and every
	// recovery run.
	Cycles int64
	// Iterations is the number of loop iterations that committed.
	Iterations int
	// Aborts counts misspeculation aborts (including the intentional
	// squash of over-speculated iterations on an early loop exit).
	Aborts int
	// Runs counts engine runs (1 + recovery runs).
	Runs int
	// ExitedEarly reports that Stage2 terminated the loop before Iters().
	ExitedEarly bool
}

// Run executes the loop speculatively under the given paradigm using the
// given number of cores and returns the outcome. The system must be fresh
// (no transactions committed yet); Setup must already have populated
// simulated memory.
//
// If the region misspeculates, all uncommitted transactions roll back in the
// memory system; Run then re-executes the first uncommitted iteration in a
// lone transaction (the recovery code of initMTX, §3.1) and restarts the
// pipeline after it.
func Run(sys *engine.System, loop paradigm.Loop, kind paradigm.Kind, cores int) Outcome {
	if kind == paradigm.Sequential {
		cyc := paradigm.RunSequential(sys, loop)
		return Outcome{Cycles: cyc, Iterations: loop.Iters(), Runs: 1}
	}
	if cores < 2 {
		panic("hmtx: parallel paradigms need at least 2 cores")
	}
	d := &driver{sys: sys, loop: loop, kind: kind, cores: cores}
	return d.run()
}

type driver struct {
	sys     *engine.System
	loop    paradigm.Loop
	kind    paradigm.Kind
	cores   int
	exitSeq atomic.Int64
}

func (d *driver) run() Outcome {
	var out Outcome
	startIt := int(d.sys.LastCommitted())
	for {
		d.exitSeq.Store(0)
		res := d.sys.Run(d.programs(startIt))
		out.Cycles += res.Cycles
		out.Runs++
		if !res.Aborted {
			out.Iterations = int(res.LastCommitted)
			return out
		}
		out.Aborts++
		if exit := d.exitSeq.Load(); exit != 0 && vid.Seq(exit) == res.LastCommitted {
			// The abort was the intentional squash of iterations
			// speculated past an early loop exit (Figure 3's
			// abortMTX(vid+1)); the loop is done.
			out.ExitedEarly = true
			out.Iterations = int(res.LastCommitted)
			return out
		}
		// Genuine misspeculation: re-execute the first uncommitted
		// iteration alone, then resume the pipeline after it.
		it := int(res.LastCommitted)
		if it >= d.loop.Iters() {
			out.Iterations = it
			return out
		}
		var cont, exit bool
		res2 := d.sys.Run([]engine.Program{func(e *engine.Env) {
			seq := vid.Seq(it + 1)
			e.Begin(seq)
			cont = d.loop.Stage1(e, it)
			exit = d.loop.Stage2(e, it)
			e.Commit(seq)
		}})
		out.Cycles += res2.Cycles
		out.Runs++
		if res2.Aborted {
			panic(fmt.Sprintf("hmtx: lone recovery transaction aborted: %s", res2.Cause))
		}
		if exit || !cont || it+1 >= d.loop.Iters() {
			out.Iterations = it + 1
			out.ExitedEarly = exit
			return out
		}
		startIt = it + 1
	}
}

func (d *driver) programs(startIt int) []engine.Program {
	switch d.kind {
	case paradigm.DSWP:
		return []engine.Program{d.stage1Prog(startIt), d.stage2Prog()}
	case paradigm.PSDSWP:
		progs := []engine.Program{d.stage1Prog(startIt)}
		for w := 1; w < d.cores; w++ {
			progs = append(progs, d.stage2Prog())
		}
		return progs
	case paradigm.DOALL:
		var progs []engine.Program
		for w := 0; w < d.cores; w++ {
			progs = append(progs, d.doallProg(startIt, w))
		}
		return progs
	case paradigm.DOACROSS:
		var progs []engine.Program
		for w := 0; w < d.cores; w++ {
			progs = append(progs, d.doacrossProg(startIt, w))
		}
		return progs
	default:
		panic(fmt.Sprintf("hmtx: unsupported paradigm %v", d.kind))
	}
}

// stage1Prog is the sequential pipeline stage: it walks the loop-carried
// recurrence transaction by transaction, publishing each iteration's input
// through versioned memory and its VID through the queue (Figure 3(b)).
func (d *driver) stage1Prog(startIt int) engine.Program {
	return func(e *engine.Env) {
		for it := startIt; it < d.loop.Iters(); it++ {
			seq := vid.Seq(it + 1)
			e.Begin(seq) // may stall for a VID reset (§4.6)
			cont := d.loop.Stage1(e, it)
			e.Begin(0) // done with this transaction, but do not commit
			e.Produce(qVIDs, uint64(seq))
			if !cont {
				break
			}
		}
		e.CloseQueue(qVIDs)
	}
}

// stage2Prog is a work-stage thread (Figure 3(c)); PS-DSWP runs several.
func (d *driver) stage2Prog() engine.Program {
	return func(e *engine.Env) {
		for {
			v, ok := e.Consume(qVIDs)
			if !ok {
				return
			}
			seq := vid.Seq(v)
			it := int(seq) - 1
			e.Begin(seq) // continue the transaction stage 1 started
			exit := d.loop.Stage2(e, it)
			e.Commit(seq)
			if exit {
				// The loop exit was control-flow speculated away;
				// squash the iterations that over-speculated.
				d.exitSeq.Store(int64(seq))
				e.Abort(seq + 1)
			}
		}
	}
}

func (d *driver) doallProg(startIt, w int) engine.Program {
	return func(e *engine.Env) {
		for it := startIt + w; it < d.loop.Iters(); it += d.cores {
			seq := vid.Seq(it + 1)
			e.Begin(seq)
			d.loop.Stage1(e, it)
			exit := d.loop.Stage2(e, it)
			e.Commit(seq)
			if exit {
				d.exitSeq.Store(int64(seq))
				e.Abort(seq + 1)
			}
		}
	}
}

func (d *driver) doacrossProg(startIt, w int) engine.Program {
	qOf := func(worker int) int { return qTokBase + worker }
	return func(e *engine.Env) {
		for it := startIt + w; it < d.loop.Iters(); it += d.cores {
			if it > startIt {
				// Wait for the predecessor iteration's recurrence
				// (the loop-carried dependence, Figure 1(b)).
				tok, ok := e.Consume(qOf(w))
				if !ok {
					return
				}
				if tok == 0 {
					// Stop token: cascade and quit.
					e.Produce(qOf((w+1)%d.cores), 0)
					return
				}
			}
			seq := vid.Seq(it + 1)
			e.Begin(seq)
			cont := d.loop.Stage1(e, it)
			if it+1 < d.loop.Iters() {
				tok := uint64(1)
				if !cont {
					tok = 0
				}
				e.Produce(qOf((w+1)%d.cores), tok)
			}
			exit := d.loop.Stage2(e, it)
			e.Commit(seq)
			if exit {
				d.exitSeq.Store(int64(seq))
				e.Abort(seq + 1)
			}
			if !cont {
				return
			}
		}
	}
}
