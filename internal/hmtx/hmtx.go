// Package hmtx is the software runtime for hardware multithreaded
// transactions: it structures speculative parallel loops over the engine's
// beginMTX/commitMTX/abortMTX primitives (§3), assigns program-ordered
// transaction sequence numbers, enforces in-order group commit, and recovers
// from misspeculation by rolling forward from the last committed
// transaction — the software half of the contract described in §4.7.
//
// Every paradigm of Figure 1 is provided: DOALL, DOACROSS, DSWP and
// PS-DSWP, all driven from the same paradigm.Loop decomposition.
package hmtx

import (
	"fmt"
	"sync/atomic"

	"hmtx/internal/engine"
	"hmtx/internal/paradigm"
	"hmtx/internal/vid"
)

// qVIDs is the queue carrying transaction VIDs from stage 1 to stage 2
// (produceVID/consumeVID in Figure 3).
const qVIDs = 1

// qTokBase is the base id of the DOACROSS recurrence-token queues.
const qTokBase = 100

// Outcome summarises a parallel loop execution, including any recovery
// re-executions after misspeculation.
type Outcome struct {
	// Cycles is total simulated time across the initial run and every
	// recovery run.
	Cycles int64
	// Iterations is the number of loop iterations that committed.
	Iterations int
	// Aborts counts misspeculation aborts (including the intentional
	// squash of over-speculated iterations on an early loop exit).
	Aborts int
	// Runs counts engine runs (1 + recovery runs).
	Runs int
	// ExitedEarly reports that Stage2 terminated the loop before Iters().
	ExitedEarly bool
}

// Options controls segmented execution for checkpointing (hmtx-ckpt/v1,
// DESIGN.md §18). The zero value runs the loop to completion in one sweep,
// exactly as Run always has.
type Options struct {
	// Every, when positive, segments the run: the pipeline executes at most
	// Every iterations per engine run, returning to the driver — with the
	// engine fully quiescent (no program goroutines, queues drained by
	// reset) — at each boundary. Segmentation changes pipeline fill/drain
	// timing, so outcomes are comparable only between runs using the same
	// Every; byte-identity of a resumed run is against the checkpointed
	// run, not against an unsegmented one.
	Every int
	// Partial seeds the outcome accumulators when resuming from a
	// checkpoint: the restored engine already knows the committed frontier,
	// but cycles/aborts/runs of the pre-checkpoint half live here.
	Partial Outcome
	// Checkpoint, when non-nil, is called at every segment boundary with
	// the next iteration to execute and the outcome so far. Returning true
	// halts the run at the boundary; the returned Outcome is then partial
	// (Iterations holds the committed frontier).
	Checkpoint func(nextIt int, sofar Outcome) (halt bool)
}

// Run executes the loop speculatively under the given paradigm using the
// given number of cores and returns the outcome. The system must be fresh
// (no transactions committed yet); Setup must already have populated
// simulated memory.
//
// If the region misspeculates, all uncommitted transactions roll back in the
// memory system; Run then re-executes the first uncommitted iteration in a
// lone transaction (the recovery code of initMTX, §3.1) and restarts the
// pipeline after it.
func Run(sys *engine.System, loop paradigm.Loop, kind paradigm.Kind, cores int) Outcome {
	return RunOpts(sys, loop, kind, cores, Options{})
}

// RunOpts is Run with segmented-execution options. With a restored system
// (engine + memory state from a checkpoint) and opts.Partial from the same
// checkpoint, the continued run is byte-identical to the checkpointed run
// left uninterrupted: the engine's committed frontier tells the driver where
// to resume, and the paradigm contract (all mutable loop state lives in
// simulated memory) guarantees the loop needs no host-side re-setup.
func RunOpts(sys *engine.System, loop paradigm.Loop, kind paradigm.Kind, cores int, opts Options) Outcome {
	if kind == paradigm.Sequential {
		if opts.Every > 0 {
			panic("hmtx: segmented execution needs a parallel paradigm")
		}
		cyc := paradigm.RunSequential(sys, loop)
		return Outcome{Cycles: cyc, Iterations: loop.Iters(), Runs: 1}
	}
	if cores < 2 {
		panic("hmtx: parallel paradigms need at least 2 cores")
	}
	d := &driver{sys: sys, loop: loop, kind: kind, cores: cores, opts: opts}
	return d.run()
}

type driver struct {
	sys   *engine.System
	loop  paradigm.Loop
	kind  paradigm.Kind
	cores int
	opts  Options

	exitSeq atomic.Int64
	// stopped records that a pipeline program ended the loop for a
	// data-dependent reason (Stage1 returned false) rather than by reaching
	// its segment's iteration limit. Without it a segment boundary would be
	// indistinguishable from the loop deciding to stop, and the next
	// segment would wrongly run more iterations.
	stopped atomic.Bool
}

func (d *driver) run() Outcome {
	out := d.opts.Partial
	for {
		startIt := int(d.sys.LastCommitted())
		endIt := d.loop.Iters()
		if d.opts.Every > 0 && startIt+d.opts.Every < endIt {
			endIt = startIt + d.opts.Every
		}
		if d.runSegment(startIt, endIt, &out) {
			return out
		}
		if d.opts.Checkpoint != nil {
			if halt := d.opts.Checkpoint(int(d.sys.LastCommitted()), out); halt {
				return out
			}
		}
	}
}

// runSegment executes iterations [startIt, endIt) including any abort
// recovery, and reports whether the loop as a whole is done (as opposed to
// having merely reached the segment boundary).
func (d *driver) runSegment(startIt, endIt int, out *Outcome) bool {
	for {
		d.exitSeq.Store(0)
		d.stopped.Store(false)
		res := d.sys.Run(d.programs(startIt, endIt))
		out.Cycles += res.Cycles
		out.Runs++
		if !res.Aborted {
			out.Iterations = int(res.LastCommitted)
			return d.stopped.Load() || int(res.LastCommitted) >= d.loop.Iters()
		}
		out.Aborts++
		if exit := d.exitSeq.Load(); exit != 0 && vid.Seq(exit) == res.LastCommitted {
			// The abort was the intentional squash of iterations
			// speculated past an early loop exit (Figure 3's
			// abortMTX(vid+1)); the loop is done.
			out.ExitedEarly = true
			out.Iterations = int(res.LastCommitted)
			return true
		}
		// Genuine misspeculation: re-execute the first uncommitted
		// iteration alone, then resume the pipeline after it.
		it := int(res.LastCommitted)
		if it >= d.loop.Iters() {
			out.Iterations = it
			return true
		}
		var cont, exit bool
		res2 := d.sys.Run([]engine.Program{func(e *engine.Env) {
			seq := vid.Seq(it + 1)
			e.Begin(seq)
			cont = d.loop.Stage1(e, it)
			exit = d.loop.Stage2(e, it)
			e.Commit(seq)
		}})
		out.Cycles += res2.Cycles
		out.Runs++
		if res2.Aborted {
			panic(fmt.Sprintf("hmtx: lone recovery transaction aborted: %s", res2.Cause))
		}
		if exit || !cont || it+1 >= d.loop.Iters() {
			out.Iterations = it + 1
			out.ExitedEarly = exit
			return true
		}
		startIt = it + 1
		if startIt >= endIt {
			// Recovery carried the committed frontier to (or past) the
			// segment boundary; stop here so the checkpoint cadence holds.
			out.Iterations = startIt
			return false
		}
	}
}

func (d *driver) programs(startIt, endIt int) []engine.Program {
	switch d.kind {
	case paradigm.DSWP:
		return []engine.Program{d.stage1Prog(startIt, endIt), d.stage2Prog()}
	case paradigm.PSDSWP:
		progs := []engine.Program{d.stage1Prog(startIt, endIt)}
		for w := 1; w < d.cores; w++ {
			progs = append(progs, d.stage2Prog())
		}
		return progs
	case paradigm.DOALL:
		var progs []engine.Program
		for w := 0; w < d.cores; w++ {
			progs = append(progs, d.doallProg(startIt, endIt, w))
		}
		return progs
	case paradigm.DOACROSS:
		var progs []engine.Program
		for w := 0; w < d.cores; w++ {
			progs = append(progs, d.doacrossProg(startIt, endIt, w))
		}
		return progs
	default:
		panic(fmt.Sprintf("hmtx: unsupported paradigm %v", d.kind))
	}
}

// stage1Prog is the sequential pipeline stage: it walks the loop-carried
// recurrence transaction by transaction, publishing each iteration's input
// through versioned memory and its VID through the queue (Figure 3(b)).
func (d *driver) stage1Prog(startIt, endIt int) engine.Program {
	return func(e *engine.Env) {
		for it := startIt; it < endIt; it++ {
			seq := vid.Seq(it + 1)
			e.Begin(seq) // may stall for a VID reset (§4.6)
			cont := d.loop.Stage1(e, it)
			e.Begin(0) // done with this transaction, but do not commit
			e.Produce(qVIDs, uint64(seq))
			if !cont {
				d.stopped.Store(true)
				break
			}
		}
		e.CloseQueue(qVIDs)
	}
}

// stage2Prog is a work-stage thread (Figure 3(c)); PS-DSWP runs several.
func (d *driver) stage2Prog() engine.Program {
	return func(e *engine.Env) {
		for {
			v, ok := e.Consume(qVIDs)
			if !ok {
				return
			}
			seq := vid.Seq(v)
			it := int(seq) - 1
			e.Begin(seq) // continue the transaction stage 1 started
			exit := d.loop.Stage2(e, it)
			e.Commit(seq)
			if exit {
				// The loop exit was control-flow speculated away;
				// squash the iterations that over-speculated.
				d.exitSeq.Store(int64(seq))
				e.Abort(seq + 1)
			}
		}
	}
}

func (d *driver) doallProg(startIt, endIt, w int) engine.Program {
	return func(e *engine.Env) {
		for it := startIt + w; it < endIt; it += d.cores {
			seq := vid.Seq(it + 1)
			e.Begin(seq)
			d.loop.Stage1(e, it)
			exit := d.loop.Stage2(e, it)
			e.Commit(seq)
			if exit {
				d.exitSeq.Store(int64(seq))
				e.Abort(seq + 1)
			}
		}
	}
}

func (d *driver) doacrossProg(startIt, endIt, w int) engine.Program {
	qOf := func(worker int) int { return qTokBase + worker }
	return func(e *engine.Env) {
		for it := startIt + w; it < endIt; it += d.cores {
			if it > startIt {
				// Wait for the predecessor iteration's recurrence
				// (the loop-carried dependence, Figure 1(b)).
				tok, ok := e.Consume(qOf(w))
				if !ok {
					return
				}
				if tok == 0 {
					// Stop token: cascade and quit.
					e.Produce(qOf((w+1)%d.cores), 0)
					return
				}
			}
			seq := vid.Seq(it + 1)
			e.Begin(seq)
			cont := d.loop.Stage1(e, it)
			if it+1 < d.loop.Iters() {
				tok := uint64(1)
				if !cont {
					tok = 0
				}
				e.Produce(qOf((w+1)%d.cores), tok)
			}
			exit := d.loop.Stage2(e, it)
			e.Commit(seq)
			if exit {
				d.exitSeq.Store(int64(seq))
				e.Abort(seq + 1)
			}
			if !cont {
				d.stopped.Store(true)
				return
			}
		}
	}
}
