package hmtx

import (
	"testing"

	"hmtx/internal/engine"
	"hmtx/internal/memsys"
	"hmtx/internal/paradigm"
)

// listLoop is the Figure 3 linked-list loop: stage 1 walks the list, stage 2
// applies a work function to each node and accumulates. All loop-carried
// state lives in simulated memory.
type listLoop struct {
	n        int
	max      uint64 // early-exit threshold on node values; 0 = never
	workCost int64
	conflict bool // stage 2 writes a cell stage 1 reads: forces misspeculation
}

const (
	llListBase = memsys.Addr(0x100000) // node i at llListBase + i*64: [0]=value, [+8]=next
	llHead     = memsys.Addr(0x700)    // recurrence: pointer to current node
	llProduced = memsys.Addr(0x800)    // producedNode (Figure 3)
	llSum      = memsys.Addr(0x900)    // accumulator written by stage 2
	llShared   = memsys.Addr(0xA00)    // cell read by stage 1, written by stage 2 when conflict
)

func (l *listLoop) Name() string { return "listloop" }
func (l *listLoop) Iters() int   { return l.n }

func (l *listLoop) Setup(h *memsys.Hierarchy) {
	for i := 0; i < l.n; i++ {
		node := llListBase + memsys.Addr(i)*memsys.LineSize
		h.PokeWord(node, uint64(i+1))
		next := node + memsys.LineSize
		if i == l.n-1 {
			next = 0
		}
		h.PokeWord(node+8, next)
	}
	h.PokeWord(llHead, uint64(llListBase))
}

func (l *listLoop) Stage1(e *engine.Env, it int) bool {
	node := e.Load(llHead)
	e.Store(llProduced, node)
	if l.conflict {
		e.Load(llShared) // marked by this VID; a later stage-2 write conflicts
	}
	next := e.Load(memsys.Addr(node) + 8)
	e.Store(llHead, next)
	e.Branch(1, next != 0)
	return next != 0
}

func (l *listLoop) Stage2(e *engine.Env, it int) bool {
	node := e.Load(llProduced)
	val := e.Load(memsys.Addr(node))
	e.Compute(l.workCost)
	sum := e.Load(llSum)
	e.Store(llSum, sum+val)
	if l.conflict && it == 3 {
		e.Store(llShared, 99)
	}
	e.Branch(2, l.max != 0 && val > l.max)
	return l.max != 0 && val > l.max
}

func runBoth(t *testing.T, loop *listLoop, kind paradigm.Kind, cores int) (seqCycles int64, out Outcome, mem *memsys.Hierarchy) {
	t.Helper()
	cfg := engine.DefaultConfig()
	cfg.Mem.Cores = cores

	seqSys := engine.New(cfg)
	loop.Setup(seqSys.Mem)
	seqCycles = paradigm.RunSequential(seqSys, loop)
	wantSum := seqSys.Mem.PeekWord(llSum)
	wantHead := seqSys.Mem.PeekWord(llHead)

	parSys := engine.New(cfg)
	loop.Setup(parSys.Mem)
	out = Run(parSys, loop, kind, cores)

	if got := parSys.Mem.PeekWord(llSum); got != wantSum {
		t.Fatalf("%v sum = %d, want %d (sequential)", kind, got, wantSum)
	}
	if got := parSys.Mem.PeekWord(llHead); got != wantHead {
		t.Fatalf("%v head = %d, want %d (sequential)", kind, got, wantHead)
	}
	return seqCycles, out, parSys.Mem
}

func TestDSWPMatchesSequential(t *testing.T) {
	loop := &listLoop{n: 50, workCost: 500}
	seq, out, _ := runBoth(t, loop, paradigm.DSWP, 4)
	if out.Aborts != 0 {
		t.Fatalf("unexpected aborts: %d", out.Aborts)
	}
	if out.Iterations != 50 {
		t.Fatalf("iterations = %d, want 50", out.Iterations)
	}
	if out.Cycles >= seq {
		t.Fatalf("DSWP (%d cycles) not faster than sequential (%d)", out.Cycles, seq)
	}
}

func TestPSDSWPScalesBeyondDSWP(t *testing.T) {
	loop := &listLoop{n: 60, workCost: 3000}
	_, dswp, _ := runBoth(t, loop, paradigm.DSWP, 4)
	_, ps, _ := runBoth(t, loop, paradigm.PSDSWP, 4)
	if ps.Cycles >= dswp.Cycles {
		t.Fatalf("PS-DSWP (%d) not faster than DSWP (%d) on work-heavy loop", ps.Cycles, dswp.Cycles)
	}
}

func TestDOACROSSMatchesSequential(t *testing.T) {
	loop := &listLoop{n: 40, workCost: 800}
	_, out, _ := runBoth(t, loop, paradigm.DOACROSS, 4)
	if out.Iterations != 40 {
		t.Fatalf("iterations = %d, want 40", out.Iterations)
	}
}

// doallLoop is an independent-iteration loop (052.alvinn style).
type doallLoop struct{ n int }

const (
	daIn  = memsys.Addr(0x200000)
	daOut = memsys.Addr(0x300000)
)

func (l *doallLoop) Name() string { return "doall" }
func (l *doallLoop) Iters() int   { return l.n }
func (l *doallLoop) Setup(h *memsys.Hierarchy) {
	for i := 0; i < l.n; i++ {
		h.PokeWord(daIn+memsys.Addr(i)*memsys.LineSize, uint64(i)*3)
	}
}
func (l *doallLoop) Stage1(e *engine.Env, it int) bool { return it+1 < l.n }
func (l *doallLoop) Stage2(e *engine.Env, it int) bool {
	v := e.Load(daIn + memsys.Addr(it)*memsys.LineSize)
	e.Compute(400)
	e.Store(daOut+memsys.Addr(it)*memsys.LineSize, v*v)
	return false
}

func TestDOALLMatchesSequentialAndSpeedsUp(t *testing.T) {
	cfg := engine.DefaultConfig()
	loop := &doallLoop{n: 64}

	seqSys := engine.New(cfg)
	loop.Setup(seqSys.Mem)
	seq := paradigm.RunSequential(seqSys, loop)

	parSys := engine.New(cfg)
	loop.Setup(parSys.Mem)
	out := Run(parSys, loop, paradigm.DOALL, 4)
	if out.Aborts != 0 {
		t.Fatalf("aborts = %d, want 0", out.Aborts)
	}
	for i := 0; i < loop.n; i++ {
		want := uint64(i) * 3 * uint64(i) * 3
		if got := parSys.Mem.PeekWord(daOut + memsys.Addr(i)*memsys.LineSize); got != want {
			t.Fatalf("out[%d] = %d, want %d", i, got, want)
		}
	}
	if out.Cycles >= seq {
		t.Fatalf("DOALL (%d) not faster than sequential (%d)", out.Cycles, seq)
	}
	if float64(seq)/float64(out.Cycles) < 2 {
		t.Fatalf("DOALL speedup %.2f, want >= 2 on 4 cores", float64(seq)/float64(out.Cycles))
	}
}

// TestEarlyExitSquashesOverSpeculation exercises the Figure 3 early-exit
// path: stage 2 finds w > MAX, commits its iteration, and aborts the
// iterations stage 1 speculated past the exit.
func TestEarlyExitSquashesOverSpeculation(t *testing.T) {
	loop := &listLoop{n: 50, max: 10, workCost: 2000}
	_, out, _ := runBoth(t, loop, paradigm.PSDSWP, 4)
	if !out.ExitedEarly {
		t.Fatal("loop should have exited early")
	}
	// Node values are 1..n; exit fires on the iteration with value 11.
	if out.Iterations != 11 {
		t.Fatalf("iterations = %d, want 11", out.Iterations)
	}
	if out.Aborts != 1 {
		t.Fatalf("aborts = %d, want exactly the early-exit squash", out.Aborts)
	}
}

// TestMisspeculationRecovery forces a genuine cross-iteration conflict and
// checks that the runtime rolls back, re-executes, and still produces the
// sequential result.
func TestMisspeculationRecovery(t *testing.T) {
	loop := &listLoop{n: 20, workCost: 1500, conflict: true}
	_, out, mem := runBoth(t, loop, paradigm.PSDSWP, 4)
	if out.Aborts == 0 {
		t.Fatal("expected at least one misspeculation abort")
	}
	if out.Iterations != 20 {
		t.Fatalf("iterations = %d, want 20", out.Iterations)
	}
	if got := mem.PeekWord(llShared); got != 99 {
		t.Fatalf("shared cell = %d, want 99", got)
	}
}

// TestLongLoopCrossesVIDResets runs enough iterations to exhaust the 6-bit
// VID space several times under a live pipeline.
func TestLongLoopCrossesVIDResets(t *testing.T) {
	loop := &listLoop{n: 200, workCost: 50}
	_, out, mem := runBoth(t, loop, paradigm.PSDSWP, 4)
	if out.Aborts != 0 {
		t.Fatalf("aborts = %d, want 0", out.Aborts)
	}
	if out.Iterations != 200 {
		t.Fatalf("iterations = %d, want 200", out.Iterations)
	}
	// 200 iterations / 63 VIDs: at least 3 resets.
	sys := mem.Stats()
	if sys.VIDResets < 3 {
		t.Fatalf("VIDResets = %d, want >= 3", sys.VIDResets)
	}
}
