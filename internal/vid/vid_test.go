package vid

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSplitJoinRoundTrip(t *testing.T) {
	s := DefaultSpace
	f := func(q uint64) bool {
		q %= 1 << 40
		seq := Seq(q)
		e, v := s.Split(seq)
		if seq == NonSpecSeq {
			return e == 0 && v == NonSpec
		}
		return v >= 1 && v <= s.Max() && s.Join(e, v) == seq
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitSequence(t *testing.T) {
	s := Space{Bits: 6}
	cases := []struct {
		seq   Seq
		epoch uint64
		v     V
	}{
		{0, 0, 0},
		{1, 0, 1},
		{63, 0, 63},
		{64, 1, 1},
		{126, 1, 63},
		{127, 2, 1},
	}
	for _, c := range cases {
		e, v := s.Split(c.seq)
		if e != c.epoch || v != c.v {
			t.Errorf("Split(%d) = (%d,%d), want (%d,%d)", c.seq, e, v, c.epoch, c.v)
		}
	}
}

func TestOrderPreservedWithinEpoch(t *testing.T) {
	s := DefaultSpace
	per := s.PerEpoch()
	for epoch := uint64(0); epoch < 3; epoch++ {
		var prev V
		for i := uint64(1); i <= per; i++ {
			_, v := s.Split(Seq(epoch*per + i))
			if v <= prev {
				t.Fatalf("VIDs not strictly increasing within epoch %d: %d after %d", epoch, v, prev)
			}
			prev = v
		}
	}
}

func TestLastOfEpoch(t *testing.T) {
	s := DefaultSpace
	if !s.LastOfEpoch(63) || !s.LastOfEpoch(126) {
		t.Fatal("seq 63 and 126 end their epochs")
	}
	if s.LastOfEpoch(1) || s.LastOfEpoch(64) || s.LastOfEpoch(0) {
		t.Fatal("seq 0, 1 and 64 do not end their epochs")
	}
}

func TestMaxByWidth(t *testing.T) {
	for bits, want := range map[uint]V{1: 1, 2: 3, 4: 15, 6: 63, 8: 255} {
		if got := (Space{Bits: bits}).Max(); got != want {
			t.Errorf("Max(%d bits) = %d, want %d", bits, got, want)
		}
	}
}

func TestInvalidWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Max with 0 bits should panic")
		}
	}()
	_ = Space{Bits: 0}.Max()
}
