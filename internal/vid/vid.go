// Package vid defines version identifiers (VIDs) for hardware multithreaded
// transactions (HMTX).
//
// Every transaction is assigned a VID corresponding to the original
// sequential program order of the transactions (paper §3). Hardware VIDs are
// m-bit quantities (m = 6 in the evaluated configuration, §4.5), so the
// system periodically exhausts them and performs a VID Reset (§4.6). This
// package provides the mapping between the unbounded program-order
// transaction sequence numbers used by software and the finite (epoch, VID)
// pairs used by the memory system.
package vid

import "fmt"

// V is a hardware version ID as stored on cache lines and attached to memory
// requests. V(0) is reserved for non-speculative execution.
type V uint8

// NonSpec is the VID of non-speculative execution.
const NonSpec V = 0

// Seq is a global program-order transaction sequence number assigned by
// software. Seq(0) denotes non-speculative execution; transaction sequence
// numbers start at 1 and increase in original program order.
type Seq uint64

// NonSpecSeq is the sequence number of non-speculative execution.
const NonSpecSeq Seq = 0

// Space describes a finite hardware VID space of Bits-bit VIDs.
//
// Within one epoch the usable VIDs are 1..Max(); once all are outstanding
// the software must wait for every transaction of the epoch to commit and
// trigger a VID Reset, which begins the next epoch (§4.6).
type Space struct {
	// Bits is the width m of hardware VIDs. The paper settles on 6 as "a
	// fair medium" between reset frequency and per-line storage (§4.6).
	Bits uint
}

// DefaultSpace is the 6-bit VID space evaluated in the paper.
var DefaultSpace = Space{Bits: 6}

// Max returns the largest usable VID, 2^Bits - 1.
func (s Space) Max() V {
	if s.Bits == 0 || s.Bits > 8 {
		panic(fmt.Sprintf("vid: unsupported VID width %d", s.Bits))
	}
	return V(1<<s.Bits - 1)
}

// PerEpoch returns the number of transactions that fit in one epoch.
func (s Space) PerEpoch() uint64 { return uint64(s.Max()) }

// Split maps a program-order sequence number to its (epoch, hardware VID)
// pair. Non-speculative Seq 0 maps to epoch 0, VID 0.
func (s Space) Split(q Seq) (epoch uint64, v V) {
	if q == NonSpecSeq {
		return 0, NonSpec
	}
	per := s.PerEpoch()
	return (uint64(q) - 1) / per, V((uint64(q)-1)%per) + 1
}

// Join is the inverse of Split for speculative sequence numbers.
func (s Space) Join(epoch uint64, v V) Seq {
	if v == NonSpec {
		return NonSpecSeq
	}
	return Seq(epoch*s.PerEpoch() + uint64(v))
}

// Epoch returns only the epoch of q.
func (s Space) Epoch(q Seq) uint64 { e, _ := s.Split(q); return e }

// HW returns only the hardware VID of q.
func (s Space) HW(q Seq) V { _, v := s.Split(q); return v }

// LastOfEpoch reports whether q uses the final VID of its epoch, i.e.
// whether allocating past q requires a VID Reset.
func (s Space) LastOfEpoch(q Seq) bool {
	_, v := s.Split(q)
	return v == s.Max()
}
