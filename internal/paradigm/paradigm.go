// Package paradigm defines the decomposition contract between workloads and
// the parallel execution paradigms of the paper's §2.1: a hot loop is split
// into a sequential recurrence stage (stage 1) and a work stage (stage 2),
// exactly as DSWP partitions it. The same decomposition serves every
// paradigm: sequential execution fuses the stages, DOALL ignores stage 1's
// recurrence, DOACROSS runs whole iterations on alternating cores, and
// DSWP/PS-DSWP pipeline the stages across threads (Figure 1).
package paradigm

import (
	"fmt"

	"hmtx/internal/engine"
	"hmtx/internal/memsys"
)

// Kind selects a thread-level parallelization technique (§2.1).
type Kind int

// The paradigms of Figure 1, plus the sequential baseline.
const (
	Sequential Kind = iota
	DOALL
	DOACROSS
	DSWP
	PSDSWP
)

var kindNames = [...]string{"Sequential", "DOALL", "DOACROSS", "DSWP", "PS-DSWP"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Loop is a speculatively parallelizable hot loop.
//
// All mutable loop state must live in simulated memory and be accessed
// through the Env: after a misspeculation abort, uncommitted versions roll
// back in the memory system and iterations re-execute, so host-side mutable
// state would go stale. Read-only host-side configuration is fine.
type Loop interface {
	// Name identifies the benchmark.
	Name() string

	// Setup populates simulated memory with the loop's data structures
	// (host-direct, before timing starts).
	Setup(h *memsys.Hierarchy)

	// Iters bounds the iteration count. Loops with data-dependent exits
	// (linked-list ends, early breaks) may finish sooner via Stage1's
	// cont or Stage2's exit.
	Iters() int

	// Stage1 executes the recurrence part of iteration it (0-based)
	// inside the current transaction: it advances loop-carried state and
	// publishes the iteration's input through versioned memory (the
	// producedNode pattern of Figure 3). It returns false if this is the
	// final iteration.
	Stage1(e *engine.Env, it int) (cont bool)

	// Stage2 executes the work part of iteration it. It returns true if
	// the loop must terminate after this iteration (an early exit that
	// was control-flow speculated away, as in Figure 3's w > MAX).
	Stage2(e *engine.Env, it int) (exit bool)
}

// RunSequential executes the loop non-speculatively on core 0 and returns
// the cycle count. It is the baseline every speedup in the evaluation is
// measured against.
func RunSequential(sys *engine.System, loop Loop) int64 {
	res := sys.Run([]engine.Program{func(e *engine.Env) {
		for it := 0; it < loop.Iters(); it++ {
			cont := loop.Stage1(e, it)
			exit := loop.Stage2(e, it)
			if exit || !cont {
				return
			}
		}
	}})
	if res.Aborted {
		panic(fmt.Sprintf("paradigm: sequential run aborted: %s", res.Cause))
	}
	return res.Cycles
}
