package paradigm

import (
	"testing"

	"hmtx/internal/engine"
	"hmtx/internal/memsys"
)

type countLoop struct {
	n      int
	early  int // stage 2 exits after this iteration (0 = never)
	s1, s2 []int
}

func (l *countLoop) Name() string              { return "count" }
func (l *countLoop) Iters() int                { return l.n }
func (l *countLoop) Setup(h *memsys.Hierarchy) {}
func (l *countLoop) Stage1(e *engine.Env, it int) bool {
	l.s1 = append(l.s1, it)
	return it+1 < l.n
}
func (l *countLoop) Stage2(e *engine.Env, it int) bool {
	l.s2 = append(l.s2, it)
	e.Store(0x1000+memsys.Addr(it)*memsys.LineSize, uint64(it))
	return l.early != 0 && it+1 >= l.early
}

func TestRunSequentialOrdering(t *testing.T) {
	sys := engine.New(engine.DefaultConfig())
	loop := &countLoop{n: 5}
	RunSequential(sys, loop)
	if len(loop.s1) != 5 || len(loop.s2) != 5 {
		t.Fatalf("stage calls: %v / %v, want 5 each in order", loop.s1, loop.s2)
	}
	for i := 0; i < 5; i++ {
		if loop.s1[i] != i || loop.s2[i] != i {
			t.Fatalf("iteration order broken: %v / %v", loop.s1, loop.s2)
		}
	}
}

func TestRunSequentialEarlyExit(t *testing.T) {
	sys := engine.New(engine.DefaultConfig())
	loop := &countLoop{n: 10, early: 4}
	RunSequential(sys, loop)
	if len(loop.s2) != 4 {
		t.Fatalf("stage 2 ran %d times, want 4 (early exit)", len(loop.s2))
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		Sequential: "Sequential",
		DOALL:      "DOALL",
		DOACROSS:   "DOACROSS",
		DSWP:       "DSWP",
		PSDSWP:     "PS-DSWP",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if (Kind(99)).String() != "Kind(99)" {
		t.Errorf("unknown kind formatting broken")
	}
}
