package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"hmtx/internal/stats"
)

// Registry is a hierarchical statistics registry in the style of gem5's
// stats dump: components register named counters, scalar formulas and
// fixed-bucket histograms under dotted paths ("memsys.l1[0].hits",
// "engine.aborts.overflow"), and a Snapshot renders them as an aligned text
// table or deterministic JSON.
//
// Counter-valued entries are either live *Counter cells or read-through
// closures over a component's existing counter fields; scalars are always
// closures, evaluated at snapshot time. The Registry is not safe for
// concurrent use.
type Registry struct {
	entries []*entry
	byName  map[string]*entry
}

type entryKind uint8

const (
	entryCounter entryKind = iota
	entryScalar
	entryHist
)

type entry struct {
	name, desc string
	kind       entryKind
	counter    func() uint64
	scalar     func() float64
	hist       *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*entry)}
}

// Counter is a live cumulative counter cell.
type Counter struct{ n uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds d.
func (c *Counter) Add(d uint64) { c.n += d }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Histogram is a fixed-bucket histogram of uint64 samples. Bounds are
// inclusive upper bounds; one extra overflow bucket catches larger samples.
type Histogram struct {
	bounds []uint64
	counts []uint64
	total  uint64
	sum    uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.total++
	h.sum += v
}

// Total returns the number of samples observed.
func (h *Histogram) Total() uint64 { return h.total }

// Mean returns the mean sample (0 with no samples).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// HistCkpt is a Histogram's recorded contents for hmtx-ckpt/v1 checkpoints
// (DESIGN.md §18). Bounds are construction-time configuration, not state, so
// only the sample record is carried; RestoreCkpt validates the bucket count
// against the receiver's bounds.
type HistCkpt struct {
	Counts []uint64 `json:"counts"`
	Total  uint64   `json:"total,omitempty"`
	Sum    uint64   `json:"sum,omitempty"`
}

// Ckpt captures the histogram's recorded samples.
func (h *Histogram) Ckpt() HistCkpt {
	ck := HistCkpt{Counts: make([]uint64, len(h.counts)), Total: h.total, Sum: h.sum}
	copy(ck.Counts, h.counts)
	return ck
}

// RestoreCkpt overwrites the recorded samples with a checkpoint taken from a
// histogram with the same bounds.
func (h *Histogram) RestoreCkpt(ck HistCkpt) error {
	if len(ck.Counts) != len(h.counts) {
		return fmt.Errorf("obs: histogram checkpoint has %d buckets, histogram has %d", len(ck.Counts), len(h.counts))
	}
	copy(h.counts, ck.Counts)
	h.total, h.sum = ck.Total, ck.Sum
	return nil
}

func (r *Registry) add(name, desc string, e *entry) *entry {
	if name == "" {
		panic("obs: empty stat name")
	}
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("obs: duplicate stat %q", name))
	}
	e.name, e.desc = name, desc
	r.entries = append(r.entries, e)
	r.byName[name] = e
	return e
}

// Counter registers and returns a live counter cell.
func (r *Registry) Counter(name, desc string) *Counter {
	c := &Counter{}
	r.add(name, desc, &entry{kind: entryCounter, counter: c.Value})
	return c
}

// CounterFunc registers a counter read through f at snapshot time, for
// components that keep their counts in plain struct fields.
func (r *Registry) CounterFunc(name, desc string, f func() uint64) {
	r.add(name, desc, &entry{kind: entryCounter, counter: f})
}

// Scalar registers a derived scalar formula evaluated at snapshot time.
// Non-finite results snapshot as 0 so JSON dumps stay valid.
func (r *Registry) Scalar(name, desc string, f func() float64) {
	r.add(name, desc, &entry{kind: entryScalar, scalar: f})
}

// Histogram registers and returns a histogram with the given inclusive
// upper bounds (which must be strictly increasing).
func (r *Registry) Histogram(name, desc string, bounds []uint64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not increasing", name))
		}
	}
	h := &Histogram{bounds: append([]uint64(nil), bounds...), counts: make([]uint64, len(bounds)+1)}
	r.add(name, desc, &entry{kind: entryHist, hist: h})
	return h
}

// Group returns a view of the registry that prefixes every name with
// prefix + ".", so a component can register its stats without knowing where
// it is mounted.
func (r *Registry) Group(prefix string) Group { return Group{r: r, prefix: prefix} }

// Group is a prefixed view of a Registry; see Registry.Group.
type Group struct {
	r      *Registry
	prefix string
}

func (g Group) full(name string) string {
	if g.prefix == "" {
		return name
	}
	return g.prefix + "." + name
}

// Group nests a further prefix.
func (g Group) Group(prefix string) Group {
	return Group{r: g.r, prefix: g.full(prefix)}
}

// Counter registers a live counter cell under the group's prefix.
func (g Group) Counter(name, desc string) *Counter { return g.r.Counter(g.full(name), desc) }

// CounterFunc registers a read-through counter under the group's prefix.
func (g Group) CounterFunc(name, desc string, f func() uint64) {
	g.r.CounterFunc(g.full(name), desc, f)
}

// Scalar registers a derived scalar under the group's prefix.
func (g Group) Scalar(name, desc string, f func() float64) { g.r.Scalar(g.full(name), desc, f) }

// Histogram registers a histogram under the group's prefix.
func (g Group) Histogram(name, desc string, bounds []uint64) *Histogram {
	return g.r.Histogram(g.full(name), desc, bounds)
}

// HistSnapshot is a histogram's frozen contents. Counts has one more element
// than Bounds: the overflow bucket.
type HistSnapshot struct {
	Bounds []uint64 `json:"bounds"`
	Counts []uint64 `json:"counts"`
	Total  uint64   `json:"total"`
	Sum    uint64   `json:"sum"`
}

// SnapEntry is one frozen statistic.
type SnapEntry struct {
	Name, Desc string
	Kind       string // "counter", "scalar" or "hist"
	Counter    uint64
	Scalar     float64
	Hist       *HistSnapshot
}

// Snapshot is a frozen, name-sorted view of a registry.
type Snapshot struct {
	Entries []SnapEntry
}

// Snapshot freezes every statistic, sorted by name.
func (r *Registry) Snapshot() Snapshot {
	out := Snapshot{Entries: make([]SnapEntry, 0, len(r.entries))}
	for _, e := range r.entries {
		se := SnapEntry{Name: e.name, Desc: e.desc}
		switch e.kind {
		case entryCounter:
			se.Kind = "counter"
			se.Counter = e.counter()
		case entryScalar:
			se.Kind = "scalar"
			v := e.scalar()
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			se.Scalar = v
		case entryHist:
			se.Kind = "hist"
			h := e.hist
			se.Hist = &HistSnapshot{
				Bounds: append([]uint64(nil), h.bounds...),
				Counts: append([]uint64(nil), h.counts...),
				Total:  h.total,
				Sum:    h.sum,
			}
		}
		out.Entries = append(out.Entries, se)
	}
	sort.Slice(out.Entries, func(i, j int) bool { return out.Entries[i].Name < out.Entries[j].Name })
	return out
}

// Text renders the snapshot as an aligned table, one row per statistic and
// one row per histogram bucket, in gem5's dotted-name dump style.
func (s Snapshot) Text() string {
	var t stats.Table
	t.Add("name", "value", "description")
	for _, e := range s.Entries {
		switch e.Kind {
		case "counter":
			t.Add(e.Name, fmt.Sprintf("%d", e.Counter), e.Desc)
		case "scalar":
			t.Add(e.Name, fmt.Sprintf("%.4f", e.Scalar), e.Desc)
		case "hist":
			h := e.Hist
			t.Add(e.Name, fmt.Sprintf("%d", h.Total),
				fmt.Sprintf("%s (samples; mean %.1f)", e.Desc, histMean(h)))
			for i, c := range h.Counts {
				if c == 0 {
					continue
				}
				label := "+Inf"
				if i < len(h.Bounds) {
					label = fmt.Sprintf("%d", h.Bounds[i])
				}
				t.Add(fmt.Sprintf("%s[<=%s]", e.Name, label), fmt.Sprintf("%d", c), "")
			}
		}
	}
	return t.String()
}

func histMean(h *HistSnapshot) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Total)
}

// JSON renders the snapshot as indented JSON. Map keys marshal sorted, so
// the document is byte-identical across runs with identical values.
func (s Snapshot) JSON() ([]byte, error) {
	tree, err := s.Nested()
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(tree, "", "  ")
}

// Nested converts the snapshot to a tree keyed by the dotted name segments,
// with counters and scalars as leaves and histograms as
// {"bounds","counts","total","sum"} objects. It errors if one name is both a
// leaf and a prefix of another.
func (s Snapshot) Nested() (map[string]any, error) {
	root := make(map[string]any)
	for _, e := range s.Entries {
		segs := strings.Split(e.Name, ".")
		node := root
		for _, seg := range segs[:len(segs)-1] {
			child, ok := node[seg]
			if !ok {
				m := make(map[string]any)
				node[seg] = m
				node = m
				continue
			}
			m, ok := child.(map[string]any)
			if !ok {
				return nil, fmt.Errorf("obs: stat %q conflicts with a leaf at %q", e.Name, seg)
			}
			node = m
		}
		leaf := segs[len(segs)-1]
		if _, exists := node[leaf]; exists {
			return nil, fmt.Errorf("obs: stat %q conflicts with an existing subtree", e.Name)
		}
		switch e.Kind {
		case "counter":
			node[leaf] = e.Counter
		case "scalar":
			node[leaf] = e.Scalar
		case "hist":
			node[leaf] = e.Hist
		}
	}
	return root, nil
}
