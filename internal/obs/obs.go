// Package obs is the observability layer of the simulator: a deterministic
// event trace and a hierarchical statistics registry, modelled on gem5's
// --debug-flags tracing and hierarchical stats dump.
//
// The two halves are independent:
//
//   - The Tracer (trace.go) receives typed Events from the engine, the memory
//     system and the software runtimes, keeps the most recent ones in a ring
//     buffer, and forwards every enabled event to attached Sinks: a
//     gem5-style text log (sink_text.go), Chrome trace_event JSON for
//     timeline viewers (sink_chrome.go), and the per-transaction timeline
//     collector (txtimeline.go).
//
//   - The Registry (registry.go) holds named counters, scalar formulas and
//     fixed-bucket histograms registered per component
//     (memsys.l1[0].hits, engine.aborts.conflict, ...), and dumps a snapshot
//     as an aligned text table or deterministic JSON.
//
// Determinism contract (DESIGN.md §10): events carry only simulated state —
// cycles, cores, addresses, VIDs — never host time or host addresses, and
// every dump format iterates sorted keys, so two runs of the same Config
// produce byte-identical traces and stats documents.
//
// Performance contract: with tracing disabled (nil Tracer) every emit site
// must be behind an Enabled/nil guard so the hot path pays one predictable
// branch and zero allocations. The tracegate analyzer
// (tools/analyzers/tracegate) enforces the guard in internal/memsys and
// internal/engine.
package obs

import (
	"fmt"
	"strings"
)

// Category classifies trace events for filtering (the -trace-cats flag, in
// the mould of gem5's --debug-flags).
type Category uint32

const (
	// CatBus: broadcast requests on the L1-L2 snoopy bus.
	CatBus Category = 1 << iota
	// CatCache: cache-line protocol state transitions.
	CatCache
	// CatVersion: speculative version lifecycle (creation, S-O writeback).
	CatVersion
	// CatOverflow: speculative lines leaving the last-level cache (§5.4).
	CatOverflow
	// CatSLA: speculative load acknowledgments and wrong-path loads (§5.1).
	CatSLA
	// CatTxn: transaction lifecycle (begin, commit, abort, VID reset).
	CatTxn
	// CatCommit: commit machinery (LC advance, in-order commit stalls,
	// sweeps, SMTX validation spans).
	CatCommit
	// CatQueue: inter-stage produce/consume queue traffic.
	CatQueue
	// CatEngine: engine-level region events (runs, recoveries, spans).
	CatEngine

	catLimit
)

// CatAll enables every category.
const CatAll = catLimit - 1

// catNames is ordered by bit position.
var catNames = []string{
	"bus", "cache", "version", "overflow", "sla", "txn", "commit", "queue", "engine",
}

// String names the category set, e.g. "bus" or "bus+txn".
func (c Category) String() string {
	if c == CatAll {
		return "all"
	}
	var parts []string
	for i, n := range catNames {
		if c&(1<<i) != 0 {
			parts = append(parts, n)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}

// ParseCategories parses a comma-separated category list ("bus,txn"); "all"
// or the empty string selects every category.
func ParseCategories(s string) (Category, error) {
	if s == "" || s == "all" {
		return CatAll, nil
	}
	var c Category
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		found := false
		for i, n := range catNames {
			if part == n {
				c |= 1 << i
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("obs: unknown trace category %q (have %s, or \"all\")",
				part, strings.Join(catNames, ", "))
		}
	}
	return c, nil
}

// Kind identifies what happened; every Kind belongs to exactly one Category.
type Kind uint8

const (
	KNone Kind = iota

	// KBusRequest: a core broadcast a request on the snoopy bus
	// (Note: "load" or "store").
	KBusRequest
	// KStateChange: a cache line changed protocol state (Note: transition).
	KStateChange
	// KVersionCreate: a store created a new speculative version (§4.1).
	KVersionCreate
	// KSOWriteback: a non-speculative S-O line legally overflowed to
	// memory (§5.4).
	KSOWriteback
	// KOverflowAbort: a speculative line left the last-level cache,
	// forcing an abort (§5.4).
	KOverflowAbort
	// KWrongPath: a squashed branch-speculative load executed (§5.1).
	KWrongPath
	// KSLASent: a speculative load required an acknowledgment (§5.1).
	KSLASent
	// KSLAAvoided: an SLA avoided a false misspeculation (Table 1).
	KSLAAvoided
	// KTxBegin: beginMTX entered transaction VID.
	KTxBegin
	// KTxCommit: commitMTX committed transaction VID (Arg: commit
	// latency in cycles since beginMTX).
	KTxCommit
	// KTxAbort: the region aborted (Note: cause).
	KTxAbort
	// KVIDReset: the VID space was reset, starting a new epoch (§4.6).
	KVIDReset
	// KCommit: the memory system advanced the LC VID register (§5.3);
	// Arg is the frames swept under eager commit, 0 under lazy.
	KCommit
	// KAbortSweep: the memory system flushed all speculative state (§4.4).
	KAbortSweep
	// KCommitStall: a core parked waiting for the in-order commit of VID.
	KCommitStall
	// KCommitResume: a parked committer resumed (Arg: stall cycles).
	KCommitResume
	// KQueueProduce: a value entered inter-stage queue Arg.
	KQueueProduce
	// KQueueConsume: a value left inter-stage queue Arg.
	KQueueConsume
	// KQueueClose: inter-stage queue Arg was closed.
	KQueueClose
	// KSpanBegin and KSpanEnd bracket a named span of work (Note: name),
	// e.g. the SMTX commit process validating one transaction.
	KSpanBegin
	KSpanEnd
	// KRunStart and KRunEnd bracket one engine region execution
	// (Arg: run ordinal / final cycle count; Note on KRunEnd: abort cause).
	KRunStart
	KRunEnd

	kindLimit
)

// kindInfo maps a Kind to its name and category.
var kindInfo = [kindLimit]struct {
	name string
	cat  Category
}{
	KNone:          {"none", 0},
	KBusRequest:    {"bus_request", CatBus},
	KStateChange:   {"state_change", CatCache},
	KVersionCreate: {"version_create", CatVersion},
	KSOWriteback:   {"so_writeback", CatVersion},
	KOverflowAbort: {"overflow_abort", CatOverflow},
	KWrongPath:     {"wrong_path", CatSLA},
	KSLASent:       {"sla_sent", CatSLA},
	KSLAAvoided:    {"sla_avoided", CatSLA},
	KTxBegin:       {"tx_begin", CatTxn},
	KTxCommit:      {"tx_commit", CatTxn},
	KTxAbort:       {"tx_abort", CatTxn},
	KVIDReset:      {"vid_reset", CatTxn},
	KCommit:        {"commit", CatCommit},
	KAbortSweep:    {"abort_sweep", CatCommit},
	KCommitStall:   {"commit_stall", CatCommit},
	KCommitResume:  {"commit_resume", CatCommit},
	KQueueProduce:  {"queue_produce", CatQueue},
	KQueueConsume:  {"queue_consume", CatQueue},
	KQueueClose:    {"queue_close", CatQueue},
	KSpanBegin:     {"span_begin", CatEngine},
	KSpanEnd:       {"span_end", CatEngine},
	KRunStart:      {"run_start", CatEngine},
	KRunEnd:        {"run_end", CatEngine},
}

// String returns the kind's snake_case name (stable; part of the trace
// format).
func (k Kind) String() string {
	if k >= kindLimit {
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
	return kindInfo[k].name
}

// Category returns the category the kind belongs to.
func (k Kind) Category() Category {
	if k >= kindLimit {
		return 0
	}
	return kindInfo[k].cat
}

// Event is one trace record. Only simulated quantities appear: Cycle is the
// issuing core's clock (stamped by the Tracer), Core the simulated core
// (-1 when no single core is responsible), Addr a simulated physical
// address, VID a transaction identifier. Arg and Note carry kind-specific
// detail; Note is only populated under an enabled-category guard, so the
// disabled path never allocates.
type Event struct {
	Cycle int64
	Kind  Kind
	Core  int32
	VID   uint64
	Addr  uint64
	Arg   uint64
	Note  string
}

// Describe renders the event payload for the text log; the cycle and
// category are the sink's columns.
func (e Event) Describe() string {
	var b strings.Builder
	b.WriteString(e.Kind.String())
	if e.Core >= 0 {
		fmt.Fprintf(&b, " core%d", e.Core)
	}
	if e.Addr != 0 {
		fmt.Fprintf(&b, " line=%#x", e.Addr)
	}
	if e.VID != 0 {
		fmt.Fprintf(&b, " vid=%d", e.VID)
	}
	if e.Arg != 0 {
		fmt.Fprintf(&b, " arg=%d", e.Arg)
	}
	if e.Note != "" {
		fmt.Fprintf(&b, " %q", e.Note)
	}
	return b.String()
}

// AbortClass buckets an abort cause string into a stable attribution class:
// "conflict" (cross-transaction dependence violation, §4.3), "overflow"
// (speculative line left the LLC, §5.4), "sla-mismatch" (SLA replay value
// check failed, §5.1), "explicit" (software abortMTX, e.g. an early-exit
// squash), or "other".
func AbortClass(cause string) string {
	switch {
	case strings.HasPrefix(cause, "store vid "):
		return "conflict"
	case strings.Contains(cause, "overflowed the last-level cache"):
		return "overflow"
	case strings.HasPrefix(cause, "SLA mismatch"):
		return "sla-mismatch"
	case strings.HasPrefix(cause, "explicit abortMTX"):
		return "explicit"
	default:
		return "other"
	}
}

// AbortClasses lists every AbortClass value in display order.
func AbortClasses() []string {
	return []string{"conflict", "overflow", "sla-mismatch", "explicit", "other"}
}
