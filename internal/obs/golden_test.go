package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// golden compares got against testdata/<name>, rewriting the file under
// -update. Byte-for-byte comparison is the point: the sinks promise output
// identical across runs, so any diff — whitespace, field order, float
// formatting — is a contract change that must show up in review.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s does not match golden file; got:\n%s\nwant:\n%s", name, got, want)
	}
}

// abortRecommitTrace replays a fixed schedule through the tracer: VID 1
// commits, VIDs 2 and 3 are rolled back by a conflict abort (one with a
// validation span still open), then both recommit on attempt 2. It exercises
// every Chrome phase ("X", "B"/"E", "i") and the collector's aborted-attempt
// path.
func abortRecommitTrace(sinks ...Sink) {
	tr := NewTracer(CatAll, 0)
	for _, s := range sinks {
		tr.Attach(s)
	}
	tr.SetTime(100)
	tr.Emit(Event{Kind: KTxBegin, Core: 0, VID: 1})
	tr.Emit(Event{Kind: KTxBegin, Core: 1, VID: 2})
	tr.SetTime(120)
	tr.Emit(Event{Kind: KTxBegin, Core: 2, VID: 3})
	tr.Emit(Event{Kind: KSpanBegin, Core: 2, VID: 3, Note: "smtx.validate"})
	tr.SetTime(150)
	tr.Emit(Event{Kind: KTxCommit, Core: 0, VID: 1, Arg: 50})
	tr.SetTime(200)
	tr.Emit(Event{Kind: KTxAbort, Core: 1, VID: 2, Note: "store vid 2 to line 0x40 already accessed by vid 3"})
	tr.SetTime(210)
	tr.Emit(Event{Kind: KTxBegin, Core: 1, VID: 2})
	tr.Emit(Event{Kind: KTxBegin, Core: 2, VID: 3})
	tr.SetTime(280)
	tr.Emit(Event{Kind: KCommitResume, Core: 2, VID: 3, Arg: 30})
	tr.SetTime(300)
	tr.Emit(Event{Kind: KTxCommit, Core: 1, VID: 2, Arg: 90})
	tr.SetTime(320)
	tr.Emit(Event{Kind: KTxCommit, Core: 2, VID: 3, Arg: 110})
	tr.Close()
}

func TestChromeSinkGolden(t *testing.T) {
	var buf bytes.Buffer
	abortRecommitTrace(NewChromeSink(&buf))
	golden(t, "chrome_abort_recommit.json", buf.Bytes())
}

func TestTextSinkGolden(t *testing.T) {
	var buf bytes.Buffer
	abortRecommitTrace(NewTextSink(&buf))
	golden(t, "text_abort_recommit.log", buf.Bytes())
}

func TestTxTimelineGolden(t *testing.T) {
	col := NewTxCollector()
	abortRecommitTrace(col)

	aborted := col.Aborted()
	if len(aborted) != 2 {
		t.Fatalf("aborted attempts = %+v, want 2", aborted)
	}
	if aborted[0].VID != 2 || aborted[1].VID != 3 || aborted[1].AbortCycle != 200 {
		t.Fatalf("aborted records = %+v", aborted)
	}
	if got := col.Committed()[2]; got.VID != 3 || got.Attempt != 2 || got.StallCycles != 30 {
		t.Fatalf("vid 3 recommit record = %+v", got)
	}
	golden(t, "txtimeline_summary.txt", []byte(col.Summary().String()))
}
