package obs

// DefaultRingCap is the default capacity of a Tracer's ring buffer.
const DefaultRingCap = 1 << 16

// A Sink receives every enabled event in emission order. Close flushes any
// buffered output; after Close no further Emit calls arrive.
type Sink interface {
	Emit(Event)
	Close() error
}

// Tracer collects simulation events. The zero value of *Tracer (nil) is a
// valid disabled tracer: Enabled reports false and Emit is a no-op, so
// emit sites can be guarded with a single `if tracer.Enabled(cat)` check.
//
// The most recent events are retained in a ring buffer for post-mortem
// inspection (Events); attached sinks stream every event as it is emitted.
// The Tracer is not safe for concurrent use; the engine's serialised
// scheduler guarantees at most one emitter at a time.
type Tracer struct {
	mask  Category
	now   int64
	ring  []Event
	n     uint64 // total events emitted
	sinks []Sink
}

// NewTracer builds a tracer recording the given categories, keeping the last
// ringCap events (DefaultRingCap if ringCap <= 0).
func NewTracer(mask Category, ringCap int) *Tracer {
	if ringCap <= 0 {
		ringCap = DefaultRingCap
	}
	return &Tracer{mask: mask, ring: make([]Event, ringCap)}
}

// Enabled reports whether events of category c are recorded. It is the
// emit-site guard: safe (and false) on a nil tracer.
func (t *Tracer) Enabled(c Category) bool {
	return t != nil && t.mask&c != 0
}

// Mask returns the enabled category set (0 on a nil tracer).
func (t *Tracer) Mask() Category {
	if t == nil {
		return 0
	}
	return t.mask
}

// Attach adds a sink; every subsequent enabled event is forwarded to it.
func (t *Tracer) Attach(s Sink) { t.sinks = append(t.sinks, s) }

// SetTime sets the simulated cycle stamped on subsequent events. The engine
// calls it with the issuing core's clock before dispatching each request, so
// memory-system emits deep in a protocol transaction carry the right time.
// Safe on a nil tracer.
func (t *Tracer) SetTime(cycle int64) {
	if t == nil {
		return
	}
	t.now = cycle
}

// Now returns the cycle that would be stamped on the next event.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return t.now
}

// Emit records e, stamping e.Cycle from the last SetTime. Events of disabled
// categories are dropped. Safe on a nil tracer, but emit sites in the
// simulation packages must still guard with Enabled so the disabled path
// never constructs the Event (enforced by the tracegate analyzer).
func (t *Tracer) Emit(e Event) {
	if t == nil || t.mask&e.Kind.Category() == 0 {
		return
	}
	e.Cycle = t.now
	t.ring[t.n%uint64(len(t.ring))] = e
	t.n++
	for _, s := range t.sinks {
		s.Emit(e)
	}
}

// Count returns the total number of events emitted (including any that have
// rotated out of the ring).
func (t *Tracer) Count() uint64 {
	if t == nil {
		return 0
	}
	return t.n
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil || t.n == 0 {
		return nil
	}
	cap := uint64(len(t.ring))
	if t.n <= cap {
		out := make([]Event, t.n)
		copy(out, t.ring[:t.n])
		return out
	}
	out := make([]Event, cap)
	start := t.n % cap
	copy(out, t.ring[start:])
	copy(out[cap-start:], t.ring[:start])
	return out
}

// Close closes every attached sink in attachment order, returning the first
// error. Safe on a nil tracer.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	var first error
	for _, s := range t.sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
