package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestParseCategories(t *testing.T) {
	cases := []struct {
		in   string
		want Category
		err  bool
	}{
		{"", CatAll, false},
		{"all", CatAll, false},
		{"bus", CatBus, false},
		{"bus,txn", CatBus | CatTxn, false},
		{" sla , queue ", CatSLA | CatQueue, false},
		{"nope", 0, true},
	}
	for _, c := range cases {
		got, err := ParseCategories(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseCategories(%q): err = %v, want err=%v", c.in, err, c.err)
		}
		if err == nil && got != c.want {
			t.Errorf("ParseCategories(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestKindCategoryTotal(t *testing.T) {
	for k := KBusRequest; k < kindLimit; k++ {
		if k.Category() == 0 {
			t.Errorf("kind %v has no category", k)
		}
		if k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
}

func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	if tr.Enabled(CatAll) {
		t.Fatal("nil tracer reports enabled")
	}
	tr.SetTime(5)    // must not panic
	tr.Emit(Event{}) // must not panic
	if tr.Count() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer recorded events")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTracerRingAndFilter(t *testing.T) {
	tr := NewTracer(CatBus, 4)
	tr.SetTime(10)
	tr.Emit(Event{Kind: KBusRequest, Core: 0})
	tr.Emit(Event{Kind: KTxBegin, Core: 0, VID: 1}) // filtered out
	if tr.Count() != 1 {
		t.Fatalf("Count = %d, want 1 (txn category is disabled)", tr.Count())
	}
	for i := 2; i <= 6; i++ {
		tr.SetTime(int64(10 * i))
		tr.Emit(Event{Kind: KBusRequest, Core: int32(i)})
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(evs))
	}
	if evs[0].Core != 3 || evs[3].Core != 6 {
		t.Fatalf("ring order wrong: %+v", evs)
	}
	if evs[3].Cycle != 60 {
		t.Fatalf("SetTime not stamped: %+v", evs[3])
	}
}

func TestTextSinkFormat(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(CatAll, 0)
	tr.Attach(NewTextSink(&buf))
	tr.SetTime(1234)
	tr.Emit(Event{Kind: KTxBegin, Core: 1, VID: 3})
	tr.Emit(Event{Kind: KStateChange, Core: -1, Addr: 0x1a40, Note: "E->S-M"})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"1234: txn", "tx_begin core1 vid=3", "cache", `line=0x1a40`, `"E->S-M"`} {
		if !strings.Contains(out, want) {
			t.Errorf("text log missing %q:\n%s", want, out)
		}
	}
}

func TestChromeSinkValidDeterministicJSON(t *testing.T) {
	emitAll := func() []byte {
		var buf bytes.Buffer
		tr := NewTracer(CatAll, 0)
		tr.Attach(NewChromeSink(&buf))
		tr.SetTime(100)
		tr.Emit(Event{Kind: KTxBegin, Core: 0, VID: 1})
		tr.SetTime(150)
		tr.Emit(Event{Kind: KBusRequest, Core: 0, Addr: 0x40, Note: "load"})
		tr.SetTime(300)
		tr.Emit(Event{Kind: KSpanBegin, Core: 1, Note: "smtx.validate", VID: 1})
		tr.SetTime(400)
		tr.Emit(Event{Kind: KSpanEnd, Core: 1, Note: "smtx.validate", VID: 1})
		tr.SetTime(500)
		tr.Emit(Event{Kind: KTxCommit, Core: 0, VID: 1, Arg: 400})
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := emitAll(), emitAll()
	if !bytes.Equal(a, b) {
		t.Fatal("chrome trace differs across identical runs")
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, a)
	}
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("got %d events, want 5", len(doc.TraceEvents))
	}
	last := doc.TraceEvents[4]
	if last["ph"] != "X" || last["dur"] != float64(400) || last["ts"] != float64(100) {
		t.Fatalf("tx_commit not rendered as a complete event: %v", last)
	}
}

func TestChromeSinkEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	s := NewChromeSink(&buf)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		TraceEvents     []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if len(doc.TraceEvents) != 0 {
		t.Fatalf("empty trace has %d events", len(doc.TraceEvents))
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
}

func TestChromeSinkNameEscaping(t *testing.T) {
	// Span notes become event names verbatim; quotes, backslashes, newlines
	// and non-ASCII must survive the JSON round trip.
	hostile := "span \"q\" \\back\nnewline\tµ"
	var buf bytes.Buffer
	tr := NewTracer(CatAll, 0)
	tr.Attach(NewChromeSink(&buf))
	tr.SetTime(10)
	tr.Emit(Event{Kind: KSpanBegin, Core: 0, Note: hostile})
	tr.SetTime(20)
	tr.Emit(Event{Kind: KSpanEnd, Core: 0, Note: hostile})
	tr.SetTime(30)
	tr.Emit(Event{Kind: KTxAbort, Core: 0, VID: 1, Note: "cause with \"quotes\""})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Args struct {
				Note string `json:"note"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("hostile names broke the JSON: %v\n%s", err, buf.Bytes())
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3", len(doc.TraceEvents))
	}
	for _, i := range []int{0, 1} {
		if doc.TraceEvents[i].Name != hostile {
			t.Errorf("event %d name = %q, want %q", i, doc.TraceEvents[i].Name, hostile)
		}
	}
	if got := doc.TraceEvents[2].Args.Note; got != "cause with \"quotes\"" {
		t.Errorf("abort note = %q", got)
	}
}

func TestChromeSinkCategoryFiltering(t *testing.T) {
	// The tracer's mask gates what reaches the sink: with only CatTxn
	// enabled, bus and engine-span events must not appear in the trace.
	var buf bytes.Buffer
	tr := NewTracer(CatTxn, 0)
	tr.Attach(NewChromeSink(&buf))
	tr.SetTime(10)
	tr.Emit(Event{Kind: KTxBegin, Core: 0, VID: 1})
	tr.Emit(Event{Kind: KBusRequest, Core: 0, Addr: 0x40, Note: "load"})
	tr.Emit(Event{Kind: KSpanBegin, Core: 0, Note: "validate"})
	tr.SetTime(20)
	tr.Emit(Event{Kind: KTxCommit, Core: 0, VID: 1, Arg: 10})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.Bytes())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2 (txn only): %s", len(doc.TraceEvents), buf.Bytes())
	}
	for _, e := range doc.TraceEvents {
		if e.Cat != "txn" {
			t.Errorf("event %q leaked category %q through a txn-only mask", e.Name, e.Cat)
		}
	}
}

func TestTxCollectorAbortRecommit(t *testing.T) {
	tr := NewTracer(CatAll, 0)
	col := NewTxCollector()
	tr.Attach(col)

	// Run 1: VID 1 commits, VIDs 2 and 3 are in flight when the run aborts.
	tr.SetTime(100)
	tr.Emit(Event{Kind: KTxBegin, Core: 0, VID: 1})
	tr.SetTime(110)
	tr.Emit(Event{Kind: KTxBegin, Core: 1, VID: 2})
	tr.SetTime(120)
	tr.Emit(Event{Kind: KTxBegin, Core: 2, VID: 3})
	tr.SetTime(150)
	tr.Emit(Event{Kind: KTxCommit, Core: 0, VID: 1, Arg: 50})
	tr.SetTime(200)
	tr.Emit(Event{Kind: KTxAbort, Core: 1, VID: 2, Note: "store vid 2 to line 0x40 already accessed by vid 3"})

	// Run 2: both re-execute and commit.
	tr.SetTime(210)
	tr.Emit(Event{Kind: KTxBegin, Core: 1, VID: 2})
	tr.SetTime(220)
	tr.Emit(Event{Kind: KTxBegin, Core: 2, VID: 3})
	tr.SetTime(300)
	tr.Emit(Event{Kind: KTxCommit, Core: 1, VID: 2, Arg: 90})
	tr.SetTime(320)
	tr.Emit(Event{Kind: KTxCommit, Core: 2, VID: 3, Arg: 100})

	aborted := col.Aborted()
	if len(aborted) != 2 {
		t.Fatalf("aborted attempts = %+v, want 2 records", aborted)
	}
	// First-begin order within the abort, stamped with the abort cycle.
	if aborted[0].VID != 2 || aborted[1].VID != 3 {
		t.Fatalf("aborted order = %d,%d, want 2,3", aborted[0].VID, aborted[1].VID)
	}
	for _, a := range aborted {
		if !a.Aborted || a.AbortCycle != 200 || a.Attempt != 1 {
			t.Fatalf("aborted record = %+v", a)
		}
		if a.CommitCycle != 0 {
			t.Fatalf("aborted record has a commit: %+v", a)
		}
	}

	committed := col.Committed()
	if len(committed) != 3 {
		t.Fatalf("committed = %+v, want 3", committed)
	}
	// VID 1 committed on its first attempt; 2 and 3 on their second.
	wantAttempt := map[uint64]int{1: 1, 2: 2, 3: 2}
	for _, c := range committed {
		if c.Aborted {
			t.Fatalf("committed record marked aborted: %+v", c)
		}
		if c.Attempt != wantAttempt[c.VID] {
			t.Errorf("vid %d committed on attempt %d, want %d", c.VID, c.Attempt, wantAttempt[c.VID])
		}
	}

	s := col.Summary()
	if s.Committed != 3 || s.Aborts != 1 || s.AbortedAttempts != 2 || s.RecommittedTxs != 2 {
		t.Fatalf("summary = %+v", s)
	}
	out := s.String()
	for _, want := range []string{"aborted tx attempts", "txs recommitted after abort"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary table missing %q:\n%s", want, out)
		}
	}
}

func TestRegistrySnapshotTextAndJSON(t *testing.T) {
	r := NewRegistry()
	g := r.Group("memsys").Group("l1[0]")
	c := g.Counter("hits", "L1 hits")
	c.Add(41)
	c.Inc()
	var misses uint64 = 7
	g.CounterFunc("misses", "L1 misses", func() uint64 { return misses })
	r.Scalar("memsys.l1[0].hit_rate", "hit rate", func() float64 { return 42.0 / 49.0 })
	r.Scalar("bad", "division by zero", func() float64 { return 0.0 / zero() })
	h := r.Histogram("engine.lat", "latency", []uint64{4, 16, 64})
	for _, v := range []uint64{2, 4, 5, 100} {
		h.Observe(v)
	}

	snap := r.Snapshot()
	if len(snap.Entries) != 5 {
		t.Fatalf("got %d entries, want 5", len(snap.Entries))
	}
	for i := 1; i < len(snap.Entries); i++ {
		if snap.Entries[i-1].Name >= snap.Entries[i].Name {
			t.Fatalf("snapshot not sorted: %q >= %q", snap.Entries[i-1].Name, snap.Entries[i].Name)
		}
	}

	text := snap.Text()
	for _, want := range []string{"memsys.l1[0].hits", "42", "engine.lat[<=4]", "engine.lat[<=+Inf]"} {
		if !strings.Contains(text, want) {
			t.Errorf("text dump missing %q:\n%s", want, text)
		}
	}

	buf, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	buf2, err := r.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, buf2) {
		t.Fatal("registry JSON differs across identical snapshots")
	}
	var tree map[string]any
	if err := json.Unmarshal(buf, &tree); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf)
	}
	memsys := tree["memsys"].(map[string]any)
	l1 := memsys["l1[0]"].(map[string]any)
	if l1["hits"] != float64(42) || l1["misses"] != float64(7) {
		t.Fatalf("nested counters wrong: %v", l1)
	}
	if tree["bad"] != float64(0) {
		t.Fatalf("non-finite scalar not sanitised: %v", tree["bad"])
	}
	lat := tree["engine"].(map[string]any)["lat"].(map[string]any)
	if lat["total"] != float64(4) || lat["sum"] != float64(111) {
		t.Fatalf("histogram snapshot wrong: %v", lat)
	}
}

// zero defeats constant folding so the NaN is produced at run time.
func zero() float64 { return 0 }

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x", "")
	r.Counter("x", "")
}

func TestNestedConflict(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.b", "")
	r.Counter("a.b.c", "")
	if _, err := r.Snapshot().Nested(); err == nil {
		t.Fatal("leaf/subtree conflict not reported")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []uint64{10, 20})
	h.Observe(10) // inclusive upper bound
	h.Observe(11)
	h.Observe(21)
	snap := r.Snapshot().Entries[0].Hist
	want := []uint64{1, 1, 1}
	for i, c := range snap.Counts {
		if c != want[i] {
			t.Fatalf("counts = %v, want %v", snap.Counts, want)
		}
	}
	if h.Mean() != 14 {
		t.Fatalf("mean = %v, want 14", h.Mean())
	}
}

func TestAbortClass(t *testing.T) {
	cases := map[string]string{
		"store vid 3 to line 0x40 already accessed by vid 5":      "conflict",
		"speculative line overflowed the last-level cache (§5.4)": "overflow",
		"SLA mismatch at 0x80 vid 2: loaded 0x1, now 0x2":         "sla-mismatch",
		"explicit abortMTX by core 1 (seq 7)":                     "explicit",
		"???":                                                     "other",
	}
	for cause, want := range cases {
		if got := AbortClass(cause); got != want {
			t.Errorf("AbortClass(%q) = %q, want %q", cause, got, want)
		}
	}
}

func TestTxCollector(t *testing.T) {
	tr := NewTracer(CatAll, 0)
	col := NewTxCollector()
	tr.Attach(col)

	tr.SetTime(100)
	tr.Emit(Event{Kind: KTxBegin, Core: 0, VID: 1})
	tr.SetTime(110)
	tr.Emit(Event{Kind: KTxBegin, Core: 1, VID: 2})
	tr.SetTime(200)
	tr.Emit(Event{Kind: KTxCommit, Core: 0, VID: 1, Arg: 100})
	tr.SetTime(250)
	tr.Emit(Event{Kind: KCommitResume, Core: 1, VID: 2, Arg: 40})
	tr.SetTime(260)
	tr.Emit(Event{Kind: KTxCommit, Core: 1, VID: 2, Arg: 150})
	tr.SetTime(300)
	tr.Emit(Event{Kind: KTxBegin, Core: 0, VID: 3})
	tr.SetTime(320)
	tr.Emit(Event{Kind: KTxAbort, Core: 0, VID: 3, Note: "store vid 3 to line 0x40 already accessed by vid 5"})

	s := col.Summary()
	if s.Committed != 2 || s.Aborts != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if s.AbortsByClass["conflict"] != 1 {
		t.Fatalf("abort attribution = %v", s.AbortsByClass)
	}
	if s.MaxLatency != 150 || s.MeanLatency != 125 {
		t.Fatalf("latencies = %+v", s)
	}
	if s.TotalStall != 40 {
		t.Fatalf("stall = %+v", s)
	}
	got := col.Committed()
	if len(got) != 2 || got[1].StallCycles != 40 || got[1].CommitCycle != 260 {
		t.Fatalf("timelines = %+v", got)
	}
	out := s.String()
	if !strings.Contains(out, "aborts: conflict") {
		t.Errorf("summary table missing abort breakdown:\n%s", out)
	}
}
