package obs

import (
	"fmt"

	"hmtx/internal/stats"
)

// TxTimeline is the derived per-transaction record: when the transaction
// began, when it committed, how long it waited for its in-order commit turn,
// and the total begin-to-commit latency.
type TxTimeline struct {
	VID         uint64
	BeginCore   int32
	BeginCycle  int64
	CommitCore  int32
	CommitCycle int64
	// Latency is the begin-to-commit latency in cycles (the engine's
	// KTxCommit Arg, measured from the first beginMTX of the VID).
	Latency int64
	// StallCycles is the time spent parked waiting for the preceding
	// transaction to commit (in-order group commit, §4.7).
	StallCycles int64
}

// TxCollector is a trace sink that derives per-transaction timelines and an
// abort attribution from the event stream. Attach it to a Tracer whose mask
// includes CatTxn and CatCommit.
type TxCollector struct {
	open      map[uint64]*TxTimeline
	committed []TxTimeline
	aborts    map[string]uint64 // AbortClass -> count
	abortN    uint64
}

// NewTxCollector returns an empty collector.
func NewTxCollector() *TxCollector {
	return &TxCollector{open: make(map[uint64]*TxTimeline), aborts: make(map[string]uint64)}
}

// Emit consumes one event.
func (c *TxCollector) Emit(e Event) {
	switch e.Kind {
	case KTxBegin:
		// A re-begin of the same VID after an abort restarts the record.
		if t, ok := c.open[e.VID]; !ok || t.BeginCycle > e.Cycle {
			c.open[e.VID] = &TxTimeline{VID: e.VID, BeginCore: e.Core, BeginCycle: e.Cycle}
		}
	case KCommitResume:
		if t, ok := c.open[e.VID]; ok {
			t.StallCycles += int64(e.Arg)
		}
	case KTxCommit:
		t, ok := c.open[e.VID]
		if !ok {
			t = &TxTimeline{VID: e.VID}
		}
		t.CommitCore = e.Core
		t.CommitCycle = e.Cycle
		t.Latency = int64(e.Arg)
		c.committed = append(c.committed, *t)
		delete(c.open, e.VID)
	case KTxAbort:
		c.aborts[AbortClass(e.Note)]++
		c.abortN++
		// Uncommitted transactions roll back; drop their open records.
		c.open = make(map[uint64]*TxTimeline)
	}
}

// Close implements Sink; the collector has nothing to flush.
func (c *TxCollector) Close() error { return nil }

// Committed returns the committed-transaction timelines in commit order.
func (c *TxCollector) Committed() []TxTimeline { return c.committed }

// TxSummary aggregates the collector's timelines.
type TxSummary struct {
	Committed     uint64
	Aborts        uint64
	AbortsByClass map[string]uint64
	// MeanLatency and MaxLatency are begin-to-commit latencies in cycles.
	MeanLatency float64
	MaxLatency  int64
	// TotalStall and MeanStall are in-order commit-wait cycles.
	TotalStall int64
	MeanStall  float64
}

// Summary aggregates every committed transaction and abort seen so far.
func (c *TxCollector) Summary() TxSummary {
	s := TxSummary{
		Committed:     uint64(len(c.committed)),
		Aborts:        c.abortN,
		AbortsByClass: make(map[string]uint64),
	}
	for _, class := range AbortClasses() {
		if n := c.aborts[class]; n > 0 {
			s.AbortsByClass[class] = n
		}
	}
	var latSum, stallSum int64
	for i := range c.committed {
		t := &c.committed[i]
		latSum += t.Latency
		stallSum += t.StallCycles
		if t.Latency > s.MaxLatency {
			s.MaxLatency = t.Latency
		}
	}
	s.TotalStall = stallSum
	if n := len(c.committed); n > 0 {
		s.MeanLatency = float64(latSum) / float64(n)
		s.MeanStall = float64(stallSum) / float64(n)
	}
	return s
}

// String renders the summary as an aligned table: counts, latency
// statistics, stall cycles, and the abort-cause breakdown.
func (s TxSummary) String() string {
	var t stats.Table
	t.Add("per-transaction timeline", "value")
	t.AddF("transactions committed", s.Committed)
	t.AddF("mean commit latency (cycles)", fmt.Sprintf("%.1f", s.MeanLatency))
	t.AddF("max commit latency (cycles)", s.MaxLatency)
	t.AddF("commit-stall cycles (total)", s.TotalStall)
	t.AddF("commit-stall cycles (mean/tx)", fmt.Sprintf("%.1f", s.MeanStall))
	t.AddF("aborts", s.Aborts)
	for _, class := range AbortClasses() {
		if n, ok := s.AbortsByClass[class]; ok {
			t.AddF("  aborts: "+class, n)
		}
	}
	return t.String()
}
