package obs

import (
	"fmt"

	"hmtx/internal/stats"
)

// TxTimeline is the derived per-transaction record: when the transaction
// began, when it committed, how long it waited for its in-order commit turn,
// and the total begin-to-commit latency.
type TxTimeline struct {
	VID         uint64
	BeginCore   int32
	BeginCycle  int64
	CommitCore  int32
	CommitCycle int64
	// Latency is the begin-to-commit latency in cycles (the engine's
	// KTxCommit Arg, measured from the first beginMTX of the VID).
	Latency int64
	// StallCycles is the time spent parked waiting for the preceding
	// transaction to commit (in-order group commit, §4.7).
	StallCycles int64
	// Attempt numbers the VID's execution attempts from 1. A transaction
	// that aborts and later recommits yields one Aborted record per
	// rolled-back attempt plus a final committed record, all sharing the
	// VID but with increasing Attempt.
	Attempt int
	// Aborted marks a rolled-back attempt; AbortCycle is the cycle of the
	// run abort that discarded it. Committed records leave both zero.
	Aborted    bool
	AbortCycle int64
}

// TxCollector is a trace sink that derives per-transaction timelines and an
// abort attribution from the event stream. Attach it to a Tracer whose mask
// includes CatTxn and CatCommit.
type TxCollector struct {
	open map[uint64]*TxTimeline
	// openVIDs holds the open map's keys in first-begin order so that the
	// abort sweep never ranges over the map (determinism contract). Entries
	// whose VID has since committed are stale and skipped.
	openVIDs  []uint64
	committed []TxTimeline
	aborted   []TxTimeline
	attempts  map[uint64]int    // VID -> execution attempts seen so far
	aborts    map[string]uint64 // AbortClass -> count
	abortN    uint64
}

// NewTxCollector returns an empty collector.
func NewTxCollector() *TxCollector {
	return &TxCollector{
		open:     make(map[uint64]*TxTimeline),
		attempts: make(map[uint64]int),
		aborts:   make(map[string]uint64),
	}
}

// Emit consumes one event.
func (c *TxCollector) Emit(e Event) {
	switch e.Kind {
	case KTxBegin:
		t, ok := c.open[e.VID]
		switch {
		case !ok:
			// First begin of a fresh attempt (either the VID's first
			// execution or its re-execution after a run abort).
			c.attempts[e.VID]++
			c.open[e.VID] = &TxTimeline{
				VID: e.VID, BeginCore: e.Core, BeginCycle: e.Cycle,
				Attempt: c.attempts[e.VID],
			}
			c.openVIDs = append(c.openVIDs, e.VID)
		case t.BeginCycle > e.Cycle:
			// Another core's earlier begin of the same attempt (DSWP
			// stages share a VID): keep the earliest, same attempt.
			t.BeginCore, t.BeginCycle = e.Core, e.Cycle
		}
	case KCommitResume:
		if t, ok := c.open[e.VID]; ok {
			t.StallCycles += int64(e.Arg)
		}
	case KTxCommit:
		t, ok := c.open[e.VID]
		if !ok {
			c.attempts[e.VID]++
			t = &TxTimeline{VID: e.VID, Attempt: c.attempts[e.VID]}
		}
		t.CommitCore = e.Core
		t.CommitCycle = e.Cycle
		t.Latency = int64(e.Arg)
		c.committed = append(c.committed, *t)
		delete(c.open, e.VID)
	case KTxAbort:
		c.aborts[AbortClass(e.Note)]++
		c.abortN++
		// The run rolls back: every still-open transaction is a discarded
		// attempt. Record it (rather than silently dropping it) so a VID
		// that aborts and later recommits surfaces once per attempt.
		for _, v := range c.openVIDs {
			t, ok := c.open[v]
			if !ok {
				continue // committed since it was begun
			}
			t.Aborted = true
			t.AbortCycle = e.Cycle
			c.aborted = append(c.aborted, *t)
		}
		c.open = make(map[uint64]*TxTimeline)
		c.openVIDs = c.openVIDs[:0]
	}
}

// Close implements Sink; the collector has nothing to flush.
func (c *TxCollector) Close() error { return nil }

// Committed returns the committed-transaction timelines in commit order.
func (c *TxCollector) Committed() []TxTimeline { return c.committed }

// Aborted returns one timeline per rolled-back transaction attempt, in
// abort order (and within one abort, in first-begin order).
func (c *TxCollector) Aborted() []TxTimeline { return c.aborted }

// TxSummary aggregates the collector's timelines.
type TxSummary struct {
	Committed     uint64
	Aborts        uint64
	AbortsByClass map[string]uint64
	// AbortedAttempts counts rolled-back transaction attempts (one run
	// abort discards every in-flight transaction, so this is at least
	// Aborts); RecommittedTxs counts the distinct VIDs among them that
	// eventually committed on a later attempt.
	AbortedAttempts uint64
	RecommittedTxs  uint64
	// MeanLatency and MaxLatency are begin-to-commit latencies in cycles.
	MeanLatency float64
	MaxLatency  int64
	// TotalStall and MeanStall are in-order commit-wait cycles.
	TotalStall int64
	MeanStall  float64
}

// Summary aggregates every committed transaction and abort seen so far.
func (c *TxCollector) Summary() TxSummary {
	s := TxSummary{
		Committed:       uint64(len(c.committed)),
		Aborts:          c.abortN,
		AbortsByClass:   make(map[string]uint64),
		AbortedAttempts: uint64(len(c.aborted)),
	}
	for i := range c.committed {
		if c.committed[i].Attempt > 1 {
			s.RecommittedTxs++
		}
	}
	for _, class := range AbortClasses() {
		if n := c.aborts[class]; n > 0 {
			s.AbortsByClass[class] = n
		}
	}
	var latSum, stallSum int64
	for i := range c.committed {
		t := &c.committed[i]
		latSum += t.Latency
		stallSum += t.StallCycles
		if t.Latency > s.MaxLatency {
			s.MaxLatency = t.Latency
		}
	}
	s.TotalStall = stallSum
	if n := len(c.committed); n > 0 {
		s.MeanLatency = float64(latSum) / float64(n)
		s.MeanStall = float64(stallSum) / float64(n)
	}
	return s
}

// String renders the summary as an aligned table: counts, latency
// statistics, stall cycles, and the abort-cause breakdown.
func (s TxSummary) String() string {
	var t stats.Table
	t.Add("per-transaction timeline", "value")
	t.AddF("transactions committed", s.Committed)
	t.AddF("mean commit latency (cycles)", fmt.Sprintf("%.1f", s.MeanLatency))
	t.AddF("max commit latency (cycles)", s.MaxLatency)
	t.AddF("commit-stall cycles (total)", s.TotalStall)
	t.AddF("commit-stall cycles (mean/tx)", fmt.Sprintf("%.1f", s.MeanStall))
	t.AddF("aborts", s.Aborts)
	for _, class := range AbortClasses() {
		if n, ok := s.AbortsByClass[class]; ok {
			t.AddF("  aborts: "+class, n)
		}
	}
	if s.AbortedAttempts > 0 {
		t.AddF("aborted tx attempts", s.AbortedAttempts)
		t.AddF("txs recommitted after abort", s.RecommittedTxs)
	}
	return t.String()
}
