package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// ChromeSink writes the trace in the Chrome trace_event JSON format, viewable
// in chrome://tracing, Perfetto, or speedscope. Simulated cycles map directly
// to the viewer's microsecond timestamps.
//
// Mapping:
//   - KTxCommit becomes a complete ("X") event spanning the transaction's
//     commit latency on the committing core's track, so transactions render
//     as bars;
//   - KSpanBegin/KSpanEnd become duration ("B"/"E") events;
//   - everything else becomes a thread-scoped instant ("i") event.
//
// The document is streamed: each event is one JSON object appended to the
// traceEvents array, and Close writes the footer. Field order is fixed by
// the structs below, so the output is byte-identical across runs of the same
// simulation.
type ChromeSink struct {
	bw    *bufio.Writer
	first bool
	err   error
}

// NewChromeSink builds a Chrome trace_event sink writing to w.
func NewChromeSink(w io.Writer) *ChromeSink {
	s := &ChromeSink{bw: bufio.NewWriter(w), first: true}
	s.writeString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")
	return s
}

// chromeEvent is one trace_event record; field order is the output order.
type chromeEvent struct {
	Name  string     `json:"name"`
	Cat   string     `json:"cat"`
	Ph    string     `json:"ph"`
	TS    int64      `json:"ts"`
	Dur   *int64     `json:"dur,omitempty"`
	PID   int        `json:"pid"`
	TID   int32      `json:"tid"`
	Scope string     `json:"s,omitempty"`
	Args  chromeArgs `json:"args"`
}

type chromeArgs struct {
	Addr string `json:"addr,omitempty"`
	VID  uint64 `json:"vid,omitempty"`
	Arg  uint64 `json:"arg,omitempty"`
	Note string `json:"note,omitempty"`
}

// Emit appends one event.
func (s *ChromeSink) Emit(e Event) {
	ce := chromeEvent{
		Name: e.Kind.String(),
		Cat:  e.Kind.Category().String(),
		TS:   e.Cycle,
		TID:  e.Core,
		Args: chromeArgs{VID: e.VID, Arg: e.Arg, Note: e.Note},
	}
	if e.Addr != 0 {
		ce.Args.Addr = fmt.Sprintf("%#x", e.Addr)
	}
	if e.Core < 0 {
		ce.TID = 0
	}
	switch e.Kind {
	case KTxCommit:
		// Render the transaction as a bar spanning its commit latency.
		ce.Ph = "X"
		dur := int64(e.Arg)
		if dur < 1 {
			dur = 1
		}
		ce.TS = e.Cycle - dur
		ce.Dur = &dur
	case KSpanBegin:
		ce.Ph = "B"
		if e.Note != "" {
			ce.Name = e.Note
		}
	case KSpanEnd:
		ce.Ph = "E"
		if e.Note != "" {
			ce.Name = e.Note
		}
	default:
		ce.Ph = "i"
		ce.Scope = "t"
	}
	buf, err := json.Marshal(ce)
	if err != nil {
		if s.err == nil {
			s.err = err
		}
		return
	}
	if !s.first {
		s.writeString(",\n")
	}
	s.first = false
	s.write(buf)
}

// Close writes the footer and flushes.
func (s *ChromeSink) Close() error {
	s.writeString("\n]}\n")
	if err := s.bw.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

func (s *ChromeSink) write(b []byte) {
	if _, err := s.bw.Write(b); err != nil && s.err == nil {
		s.err = err
	}
}

func (s *ChromeSink) writeString(str string) {
	if _, err := s.bw.WriteString(str); err != nil && s.err == nil {
		s.err = err
	}
}
