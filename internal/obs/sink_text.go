package obs

import (
	"bufio"
	"fmt"
	"io"
)

// TextSink writes a gem5-style line-oriented debug log:
//
//	12345: txn    : tx_begin core1 vid=3
//
// One line per event: cycle, category, payload. Output is buffered; call
// Close (or Tracer.Close) to flush.
type TextSink struct {
	bw *bufio.Writer
}

// NewTextSink builds a text sink writing to w.
func NewTextSink(w io.Writer) *TextSink {
	return &TextSink{bw: bufio.NewWriter(w)}
}

// Emit writes one log line.
func (s *TextSink) Emit(e Event) {
	fmt.Fprintf(s.bw, "%10d: %-8s: %s\n", e.Cycle, e.Kind.Category(), e.Describe())
}

// Close flushes buffered output.
func (s *TextSink) Close() error { return s.bw.Flush() }
