package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 1},
		{[]float64{2}, 2},
		{[]float64{1, 4}, 2},
		{[]float64{2, 2, 2}, 2},
		{[]float64{1, 0, 3}, 0},
	}
	for _, c := range cases {
		if got := Geomean(c.in); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Geomean(%v) = %f, want %f", c.in, got, c.want)
		}
	}
}

func TestGeomeanBetweenMinAndMax(t *testing.T) {
	f := func(a, b, c uint16) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		g := Geomean(xs)
		mn, mx := xs[0], xs[0]
		for _, x := range xs {
			mn, mx = math.Min(mn, x), math.Max(mx, x)
		}
		return g >= mn-1e-9 && g <= mx+1e-9
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

func TestPctAndKB(t *testing.T) {
	if got := Pct(0.1234, 1); got != "12.3%" {
		t.Errorf("Pct = %q", got)
	}
	if got := KB(2048); got != "2.0 kB" {
		t.Errorf("KB = %q", got)
	}
}

func TestTableAlignment(t *testing.T) {
	var tb Table
	tb.Add("Name", "Value")
	tb.AddF("x", 1.5)
	tb.AddF("longer-name", 10)
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Fatalf("missing header rule:\n%s", out)
	}
	if !strings.Contains(lines[2], "1.50") {
		t.Fatalf("float not formatted:\n%s", out)
	}
}

func TestTableRuneWidths(t *testing.T) {
	// "§5.4 aborts" is 11 runes but 12 bytes; byte-based widths would pad
	// the ASCII rows one column too wide and misalign the value column.
	var tb Table
	tb.Add("cause", "count")
	tb.Add("§5.4 aborts", "3")
	tb.Add("conflicts →", "7")
	tb.Add("plain", "9")
	lines := strings.Split(strings.TrimSpace(tb.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("table has %d lines, want 5:\n%s", len(lines), tb.String())
	}
	// The widest first cell is 11 runes, so the value column must start at
	// rune 13 (11 + the 2-space gap) on every row, however many bytes the
	// first cell took.
	const valueCol = 13
	for i, l := range lines {
		if i == 1 {
			continue // header rule
		}
		runes := []rune(l)
		if len(runes) <= valueCol || runes[valueCol] == ' ' || runes[valueCol-1] != ' ' {
			t.Fatalf("line %d: value column not at rune %d:\n%s", i, valueCol, tb.String())
		}
	}
}

func TestEmptyTable(t *testing.T) {
	var tb Table
	if tb.String() != "" {
		t.Fatal("empty table should render empty")
	}
}
