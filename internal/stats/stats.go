// Package stats provides the small numeric and formatting helpers shared by
// the experiment harness: geometric means, percentage formatting, and
// aligned text tables in the style of the paper's tables.
package stats

import (
	"fmt"
	"math"
	"strings"
	"unicode/utf8"
)

// Geomean returns the geometric mean of xs (1 if empty).
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Pct formats a ratio as a percentage with the given precision.
func Pct(x float64, prec int) string {
	return fmt.Sprintf("%.*f%%", prec, 100*x)
}

// KB formats a byte count in kilobytes.
func KB(bytes uint64) string {
	return fmt.Sprintf("%.1f kB", float64(bytes)/1024)
}

// Table renders rows as an aligned text table. The first row is the header,
// separated by a rule.
type Table struct {
	rows [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.rows = append(t.rows, cells) }

// AddF appends a row, applying fmt.Sprint to each cell value.
func (t *Table) AddF(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	if len(t.rows) == 0 {
		return ""
	}
	// Column widths count runes, not bytes: cells like "§5.4" or "→" are
	// multi-byte but single-column, and byte-width padding would misalign
	// every column to their right.
	widths := make([]int, 0)
	for _, r := range t.rows {
		for i, c := range r {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if n := utf8.RuneCountInString(c); n > widths[i] {
				widths[i] = n
			}
		}
	}
	var b strings.Builder
	writeRow := func(r []string) {
		for i, c := range r {
			if i > 0 {
				b.WriteString("  ")
			}
			// fmt's %-*s pads by byte length, so pad explicitly by runes.
			b.WriteString(c)
			if pad := widths[i] - utf8.RuneCountInString(c); pad > 0 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.rows[0])
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, r := range t.rows[1:] {
		writeRow(r)
	}
	return b.String()
}
