// Package engine is a deterministic discrete-event simulator of a multicore
// processor running on the HMTX memory hierarchy of internal/memsys.
//
// Workload programs are ordinary Go functions that issue loads, stores,
// computation, branches and HMTX transaction operations through an Env
// handle. Each program runs on one simulated core; the engine serialises all
// memory-system activity and advances per-core cycle counts using the
// latencies of Table 2, so a run's cycle count is a deterministic function
// of the configuration and seed.
//
// The engine also models the processor front end the paper's §5.1 worries
// about: a 2-bit branch predictor whose mispredictions issue squashed
// wrong-path loads, which the memory system filters through speculative load
// acknowledgments (SLAs).
package engine

import "hmtx/internal/memsys"

// Config configures the simulated processor.
type Config struct {
	// Mem is the memory-hierarchy configuration (Table 2 defaults).
	Mem memsys.Config

	// MispredictPenalty is the pipeline refill cost of a branch
	// misprediction, in cycles.
	MispredictPenalty int64

	// WrongPathLoads is how many squashed speculative loads a
	// misprediction issues down the wrong path (§5.1).
	WrongPathLoads int

	// BusOccupancy is how long one bus transaction occupies the shared
	// snoopy bus. Misses from different cores serialise on the bus, so
	// parallel memory-level parallelism is bounded — without this, a
	// multicore run could overlap cold misses perfectly and show
	// super-linear speedups.
	BusOccupancy int64

	// QueueLat is the inter-core latency of the produce/consume queues
	// used by pipeline parallel stages (e.g. produceVID, §3.2).
	QueueLat int64

	// QueueOpCost is the instruction overhead of one produce or consume.
	QueueOpCost int64

	// QueueCap is the capacity of each inter-stage queue; producers
	// stall when it is full, bounding pipeline depth.
	QueueCap int

	// Seed drives the engine's only internal randomness: the choice of
	// wrong-path addresses on mispredictions.
	Seed int64

	// Domains selects the intra-run parallel scheduler (domains.go): the
	// simulated cores are partitioned into this many contiguous groups,
	// each advanced by its own host goroutine inside conservative time
	// quanta derived from Mem (never hard-coded), with results
	// byte-identical to the serial scheduler. 0 or 1 runs the original
	// single-loop scheduler, kept as the reference implementation.
	Domains int
}

// DefaultConfig returns the configuration used throughout the evaluation.
func DefaultConfig() Config {
	return Config{
		Mem:               memsys.DefaultConfig(),
		MispredictPenalty: 14,
		WrongPathLoads:    4,
		BusOccupancy:      24,
		QueueLat:          40,
		QueueOpCost:       4,
		QueueCap:          16,
		Seed:              1,
		Domains:           1,
	}
}
