package engine

import (
	"fmt"

	"hmtx/internal/obs"
)

// SetTracer installs the event tracer on the system and its memory hierarchy
// (nil disables tracing). Every emit site in this package is behind an
// Enabled guard (enforced by the tracegate analyzer), so the disabled path
// costs one predictable branch per site.
func (s *System) SetTracer(t *obs.Tracer) {
	s.tracer = t
	s.Mem.SetTracer(t)
}

// Tracer returns the installed tracer (possibly nil).
func (s *System) Tracer() *obs.Tracer { return s.tracer }

// setBounds buckets per-transaction footprint sizes in bytes.
var setBounds = []uint64{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10}

// latBounds buckets begin-to-commit latencies in cycles.
var latBounds = []uint64{64, 256, 1024, 4096, 16384}

// Register mounts the engine's statistics under "engine" in r: instruction
// and branch counters, per-transaction aggregates, the abort-cause breakdown,
// per-core cycle counts, and commit-latency / footprint histograms (which
// only fill while registered).
func (s *System) Register(r *obs.Registry) {
	g := r.Group("engine")
	st := &s.stats
	g.CounterFunc("instructions", "instructions executed", func() uint64 { return st.Instructions })
	g.CounterFunc("branches", "conditional branches executed", func() uint64 { return st.Branches })
	g.CounterFunc("mispredicts", "branch mispredictions", func() uint64 { return st.Mispredicts })
	g.CounterFunc("commit_stall_cycles", "cycles parked waiting for in-order commit (§4.7)", func() uint64 { return st.CommitStallCycles })

	tx := g.Group("tx")
	tx.CounterFunc("count", "transactions committed", func() uint64 { return st.Txs })
	tx.CounterFunc("spec_accesses", "speculative accesses inside committed transactions", func() uint64 { return st.SpecAccesses })
	tx.CounterFunc("avoided_aborts", "false misspeculations avoided via SLA (§5.1)", func() uint64 { return st.AvoidedAborts })
	tx.CounterFunc("read_set_bytes", "distinct lines read, in bytes", func() uint64 { return st.ReadSetBytes })
	tx.CounterFunc("write_set_bytes", "distinct lines written, in bytes", func() uint64 { return st.WriteSetBytes })
	tx.CounterFunc("max_combined_bytes", "largest single-transaction combined set", func() uint64 { return st.MaxCombinedBytes })

	ab := g.Group("aborts")
	ab.CounterFunc("conflict", "aborts from cross-transaction dependence violations (§4.3)", func() uint64 { return st.AbortsConflict })
	ab.CounterFunc("overflow", "aborts from speculative LLC overflow (§5.4)", func() uint64 { return st.AbortsOverflow })
	ab.CounterFunc("sla_mismatch", "aborts from SLA replay mismatches (§5.1)", func() uint64 { return st.AbortsSLA })
	ab.CounterFunc("explicit", "software abortMTX aborts (§3.2)", func() uint64 { return st.AbortsExplicit })
	ab.CounterFunc("other", "aborts with an unclassified cause", func() uint64 { return st.AbortsOther })

	for i, c := range s.cores {
		c := c
		g.Group(fmt.Sprintf("core[%d]", i)).CounterFunc("cycles", "core cycle count at snapshot", func() uint64 { return uint64(c.time) })
	}

	s.histCommitLat = g.Histogram("commit_latency", "begin-to-commit latency in cycles", latBounds)
	s.histReadSet = g.Histogram("tx_read_set", "per-transaction read set in bytes", setBounds)
	s.histWriteSet = g.Histogram("tx_write_set", "per-transaction write set in bytes", setBounds)
}

// AddObsHistCkpts adds the engine's registry-histogram state to dst under
// prefix, for hmtx-ckpt/v1 checkpoints (DESIGN.md §18). A no-op when no
// registry is attached: the histograms only exist — and only fill — while
// registered.
func (s *System) AddObsHistCkpts(prefix string, dst map[string]obs.HistCkpt) {
	if s.histCommitLat == nil {
		return
	}
	dst[prefix+"commit_latency"] = s.histCommitLat.Ckpt()
	dst[prefix+"tx_read_set"] = s.histReadSet.Ckpt()
	dst[prefix+"tx_write_set"] = s.histWriteSet.Ckpt()
}

// RestoreObsHistCkpts restores the engine's registry-histogram state from a
// checkpoint. Register must have been called first.
func (s *System) RestoreObsHistCkpts(prefix string, src map[string]obs.HistCkpt) error {
	if s.histCommitLat == nil {
		return fmt.Errorf("engine: RestoreObsHistCkpts before Register")
	}
	for _, e := range []struct {
		name string
		h    *obs.Histogram
	}{
		{"commit_latency", s.histCommitLat},
		{"tx_read_set", s.histReadSet},
		{"tx_write_set", s.histWriteSet},
	} {
		ck, ok := src[prefix+e.name]
		if !ok {
			return fmt.Errorf("engine: checkpoint is missing histogram %s%s", prefix, e.name)
		}
		if err := e.h.RestoreCkpt(ck); err != nil {
			return err
		}
	}
	return nil
}

// Emit records a software-runtime event (e.g. an SMTX validation span) on
// this program's core, stamped with the core's current cycle. Events of
// disabled categories cost one branch and are dropped without being built —
// callers pass a literal, so construction is cheap either way.
func (e *Env) Emit(ev obs.Event) {
	tr := e.sys.tracer
	if tr.Enabled(ev.Kind.Category()) {
		ev.Core = int32(e.c.id)
		tr.SetTime(e.c.time)
		tr.Emit(ev)
	}
}
