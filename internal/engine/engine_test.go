package engine

import (
	"testing"

	"hmtx/internal/memsys"
	"hmtx/internal/vid"
)

func newSys() *System { return New(DefaultConfig()) }

func TestSingleCoreRoundTrip(t *testing.T) {
	s := newSys()
	var got uint64
	res := s.Run([]Program{func(e *Env) {
		e.Store(0x1000, 42)
		e.Compute(10)
		got = e.Load(0x1000)
	}})
	if got != 42 {
		t.Fatalf("load = %d, want 42", got)
	}
	if res.Aborted {
		t.Fatalf("unexpected abort: %s", res.Cause)
	}
	if res.Cycles <= 10 {
		t.Fatalf("cycles = %d, want > 10", res.Cycles)
	}
}

func TestComputeAccountsCycles(t *testing.T) {
	s := newSys()
	res := s.Run([]Program{func(e *Env) { e.Compute(1000) }})
	if res.Cycles < 1000 {
		t.Fatalf("cycles = %d, want >= 1000", res.Cycles)
	}
	if s.Stats().Instructions < 1000 {
		t.Fatalf("instructions = %d, want >= 1000", s.Stats().Instructions)
	}
}

// TestDSWPTwoStagePipeline runs the Figure 3 pattern: stage 1 walks a linked
// list speculatively and forwards each node through versioned memory; stage
// 2 processes and commits each transaction.
func TestDSWPTwoStagePipeline(t *testing.T) {
	s := newSys()
	const (
		listBase = memsys.Addr(0x10000)
		produced = memsys.Addr(0x800)
		sumAddr  = memsys.Addr(0x900)
		n        = 20
		qVID     = 1
	)
	// Build a linked list in simulated memory: node i at listBase+i*64,
	// word 0 = value, word 8 = next pointer.
	for i := 0; i < n; i++ {
		node := listBase + memsys.Addr(i)*memsys.LineSize
		s.Mem.PokeWord(node, uint64(i+1))
		next := node + memsys.LineSize
		if i == n-1 {
			next = 0
		}
		s.Mem.PokeWord(node+8, next)
	}

	stage1 := func(e *Env) {
		node := uint64(listBase)
		seq := vid.Seq(1)
		for node != 0 {
			e.Begin(seq)
			e.Store(produced, node)
			node = e.Load(memsys.Addr(node) + 8)
			e.Begin(0)
			e.Produce(qVID, uint64(seq))
			seq++
		}
		e.CloseQueue(qVID)
	}
	stage2 := func(e *Env) {
		for {
			v, ok := e.Consume(qVID)
			if !ok {
				return
			}
			seq := vid.Seq(v)
			e.Begin(seq)
			node := e.Load(produced)
			val := e.Load(memsys.Addr(node))
			sum := e.Load(sumAddr)
			e.Store(sumAddr, sum+val)
			e.Commit(seq)
		}
	}
	res := s.Run([]Program{stage1, stage2})
	if res.Aborted {
		t.Fatalf("pipeline aborted: %s", res.Cause)
	}
	want := uint64(n * (n + 1) / 2)
	if got := s.Mem.PeekWord(sumAddr); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	if s.Stats().Txs != n {
		t.Fatalf("committed txs = %d, want %d", s.Stats().Txs, n)
	}
	if res.LastCommitted != vid.Seq(n) {
		t.Fatalf("last committed = %d, want %d", res.LastCommitted, n)
	}
}

// TestCommitOrdering verifies commitMTX blocks until the predecessor commits
// (§4.7) even when issued out of order by different cores.
func TestCommitOrdering(t *testing.T) {
	s := newSys()
	var order []vid.Seq
	p1 := func(e *Env) {
		e.Begin(2)
		e.Store(0x100, 2)
		e.Compute(1) // tx 2 is ready to commit almost immediately
		e.Commit(2)
		order = append(order, 2)
	}
	p2 := func(e *Env) {
		e.Begin(1)
		e.Store(0x200, 1)
		e.Compute(100000) // tx 1 takes much longer
		e.Commit(1)
		order = append(order, 1)
	}
	res := s.Run([]Program{p1, p2})
	if res.Aborted {
		t.Fatalf("aborted: %s", res.Cause)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("commit order = %v, want [1 2]", order)
	}
}

func TestQueueCloseAndDrain(t *testing.T) {
	s := newSys()
	var got []uint64
	prod := func(e *Env) {
		for i := uint64(1); i <= 5; i++ {
			e.Produce(7, i)
		}
		e.CloseQueue(7)
	}
	cons := func(e *Env) {
		for {
			v, ok := e.Consume(7)
			if !ok {
				return
			}
			got = append(got, v)
		}
	}
	s.Run([]Program{prod, cons})
	if len(got) != 5 || got[0] != 1 || got[4] != 5 {
		t.Fatalf("consumed %v, want [1..5]", got)
	}
}

func TestQueueCapacityBoundsPipelineDepth(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueCap = 2
	s := New(cfg)
	maxOutstanding := 0
	produced, consumed := 0, 0
	prod := func(e *Env) {
		for i := 0; i < 20; i++ {
			e.Produce(1, uint64(i))
			produced++
			if d := produced - consumed; d > maxOutstanding {
				maxOutstanding = d
			}
		}
		e.CloseQueue(1)
	}
	cons := func(e *Env) {
		for {
			_, ok := e.Consume(1)
			if !ok {
				return
			}
			consumed++
			e.Compute(10000)
		}
	}
	s.Run([]Program{prod, cons})
	if maxOutstanding > cfg.QueueCap+1 {
		t.Fatalf("outstanding items reached %d, queue capacity %d", maxOutstanding, cfg.QueueCap)
	}
}

// TestVIDResetStall pushes more transactions through than the 6-bit VID
// space holds; the engine must stall and reset the VID space (§4.6).
func TestVIDResetStall(t *testing.T) {
	s := newSys()
	const n = 150 // > 2*63 transactions: at least two resets
	p := func(e *Env) {
		for i := 1; i <= n; i++ {
			seq := vid.Seq(i)
			e.Begin(seq)
			e.Store(0x1000, uint64(i))
			e.Commit(seq)
		}
	}
	res := s.Run([]Program{p})
	if res.Aborted {
		t.Fatalf("aborted: %s", res.Cause)
	}
	if got := s.Mem.Stats().VIDResets; got < 2 {
		t.Fatalf("VIDResets = %d, want >= 2", got)
	}
	if got := s.Mem.PeekWord(0x1000); got != n {
		t.Fatalf("final value = %d, want %d", got, n)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() int64 {
		s := newSys()
		prog := func(e *Env) {
			for i := 0; i < 200; i++ {
				seq := vid.Seq(i + 1)
				e.Begin(seq)
				e.Load(memsys.Addr(0x1000 + i*8%512))
				e.Store(memsys.Addr(0x2000+i*64), uint64(i))
				e.Branch(1, i%3 == 0)
				e.Commit(seq)
			}
		}
		return s.Run([]Program{prog}).Cycles
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("non-deterministic: %d vs %d cycles", a, b)
	}
}

func TestExplicitAbortRollsBack(t *testing.T) {
	s := newSys()
	reached := false
	res := s.Run([]Program{func(e *Env) {
		e.Begin(1)
		e.Store(0x100, 99)
		e.Commit(1)
		e.Begin(2)
		e.Store(0x100, 123)
		e.Abort(2) // control-flow misspeculation detected in software
		reached = true
	}})
	if !res.Aborted {
		t.Fatal("run should report abort")
	}
	if reached {
		t.Fatal("program continued past Abort")
	}
	if res.LastCommitted != 1 {
		t.Fatalf("last committed = %d, want 1", res.LastCommitted)
	}
	if got := s.Mem.PeekWord(0x100); got != 99 {
		t.Fatalf("memory = %d, want committed 99", got)
	}
	// The system is reusable: re-execute the aborted transaction.
	res = s.Run([]Program{func(e *Env) {
		e.Begin(2)
		e.Store(0x100, 124)
		e.Commit(2)
	}})
	if res.Aborted {
		t.Fatalf("re-execution aborted: %s", res.Cause)
	}
	if got := s.Mem.PeekWord(0x100); got != 124 {
		t.Fatalf("memory = %d, want 124", got)
	}
}

func TestConflictAbortUnwindsAllCores(t *testing.T) {
	s := newSys()
	// Core 0 reads with a high VID; core 1 then stores with a lower VID,
	// a flow-dependence violation (§4.3).
	p0 := func(e *Env) {
		e.Begin(2)
		e.Load(0x1000)
		e.Compute(100000)
		e.Commit(2)
	}
	p1 := func(e *Env) {
		e.Compute(5000) // let core 0's read happen first
		e.Begin(1)
		e.Store(0x1000, 7)
		e.Commit(1)
	}
	res := s.Run([]Program{p0, p1})
	if !res.Aborted {
		t.Fatal("conflicting schedule must abort")
	}
	if res.LastCommitted != 0 {
		t.Fatalf("last committed = %d, want 0", res.LastCommitted)
	}
	if got := s.Mem.PeekWord(0x1000); got != 0 {
		t.Fatalf("memory = %d, want 0 (store rolled back)", got)
	}
}

func TestBranchPredictorCounts(t *testing.T) {
	s := newSys()
	s.Run([]Program{func(e *Env) {
		for i := 0; i < 100; i++ {
			e.Branch(5, true) // quickly learned: few mispredicts
		}
		for i := 0; i < 100; i++ {
			e.Branch(6, i%2 == 0) // alternating: many mispredicts
		}
	}})
	st := s.Stats()
	if st.Branches != 200 {
		t.Fatalf("branches = %d, want 200", st.Branches)
	}
	if st.Mispredicts < 40 || st.Mispredicts > 120 {
		t.Fatalf("mispredicts = %d, want mostly from the alternating branch", st.Mispredicts)
	}
}

// TestSLAAvoidsFalseMisspeculation constructs the §5.1 scenario end to end:
// a mispredicted branch inside a transaction issues wrong-path loads; a
// lower-VID store to one of those lines must not abort when SLAs filter the
// marks, and must abort when they are disabled.
func TestSLAAvoidsFalseMisspeculation(t *testing.T) {
	scenario := func(slaEnabled bool) (RunResult, *System) {
		cfg := DefaultConfig()
		cfg.Mem.SLAEnabled = slaEnabled
		cfg.WrongPathLoads = 8
		s := New(cfg)
		p0 := func(e *Env) {
			e.Begin(2)
			e.Load(0x4000) // the recent-address pool: wrong-path loads land on 0x4000..0x40C0
			for i := 0; i < 8; i++ {
				e.Branch(9, i%2 == 0) // alternating: mispredicts guaranteed
			}
			e.Compute(200000)
			e.Commit(2)
		}
		p1 := func(e *Env) {
			e.Compute(20000) // run after core 0's wrong-path loads
			e.Begin(1)
			for la := memsys.Addr(0x4040); la <= 0x40C0; la += memsys.LineSize {
				e.Store(la, 1) // lines tx 2 never truly accessed
			}
			e.Commit(1)
		}
		res := s.Run([]Program{p0, p1})
		return res, s
	}

	res, s := scenario(true)
	if res.Aborted {
		t.Fatalf("with SLAs the run must not abort, got: %s", res.Cause)
	}
	if s.Stats().AvoidedAborts == 0 && s.Mem.Stats().AvoidedAborts == 0 {
		t.Fatal("expected at least one avoided false misspeculation")
	}

	res, _ = scenario(false)
	if !res.Aborted {
		t.Fatal("without SLAs the squashed loads must cause a false misspeculation")
	}
}

func TestAwaitCommitted(t *testing.T) {
	s := newSys()
	woke := false
	p0 := func(e *Env) {
		e.AwaitCommitted(1)
		woke = true
	}
	p1 := func(e *Env) {
		e.Compute(50000)
		e.Begin(1)
		e.Store(0x100, 1)
		e.Commit(1)
	}
	res := s.Run([]Program{p0, p1})
	if !woke {
		t.Fatal("AwaitCommitted never woke")
	}
	if res.Aborted {
		t.Fatalf("aborted: %s", res.Cause)
	}
}

func TestTxSetTracking(t *testing.T) {
	s := newSys()
	s.Run([]Program{func(e *Env) {
		e.Begin(1)
		// 3 distinct lines read, 2 written (one overlapping).
		e.Load(0x1000)
		e.Load(0x1040)
		e.Load(0x1080)
		e.Store(0x1000, 1)
		e.Store(0x2000, 2)
		e.Commit(1)
	}})
	st := s.Stats()
	if st.Txs != 1 {
		t.Fatalf("txs = %d, want 1", st.Txs)
	}
	if st.ReadSetBytes != 3*memsys.LineSize {
		t.Fatalf("read set = %d bytes, want %d", st.ReadSetBytes, 3*memsys.LineSize)
	}
	if st.WriteSetBytes != 2*memsys.LineSize {
		t.Fatalf("write set = %d bytes, want %d", st.WriteSetBytes, 2*memsys.LineSize)
	}
	if st.SpecAccesses != 5 {
		t.Fatalf("spec accesses = %d, want 5", st.SpecAccesses)
	}
}
