package engine

import (
	"math"
	"runtime"
	"sort"
	"sync/atomic"

	"hmtx/internal/memsys"
	"hmtx/internal/prof"
	"hmtx/internal/vid"
)

// This file implements the domain-sharded parallel scheduler (DESIGN.md §16):
// an intra-run parallelisation of the serial event loop in system.go that is
// byte-identical to it. The simulated cores are partitioned into Domains
// contiguous groups; inside a *round*, each group's worker goroutine advances
// its cores through operations that touch only core-private state (compute,
// correct-path branches, txInfo reads, loads served by the core's own L1 —
// memsys.TryLocalLoad), while every operation that can reach shared state
// (the bus, the L2, peers' caches, commits, queues, aborts) is a *global*
// operation, handled one at a time by the coordinator exactly as the serial
// scheduler would.
//
// Determinism comes from a conservative ordering bound, not from locks. Every
// operation has a key
//
//	key = coreTime<<8 | coreID
//
// — the serial scheduler's pick order (earliest clock first, lowest core ID
// on ties; IDs fit 8 bits because memsys caps Cores at 255). Each core
// publishes a monotone atomic *bound*: a lower limit on the key of any
// operation it has not yet executed, with a final bit meaning the bound can
// no longer rise this round. A worker may execute its core's pending fast
// operation with key k only while k is below every other core's bound, so no
// fast operation ever runs ahead of a pending operation that could still
// reach shared state below it. Fast operations themselves commute physically
// — they touch disjoint, core-private state — so the executed set before any
// global operation is exactly {fast ops with smaller key}, independent of
// host thread timing, and the round's side effects on shared counters are
// buffered per core and replayed in canonical key order at the round barrier
// (drainRound). The round horizon additionally caps lookahead at the
// configured quantum (memsys.Config.Quantum: the minimum cross-core
// interaction latency, derived from the bus/L2 latencies).

// useRounds reports whether this run executes on the parallel scheduler.
// Instruments that observe per-operation order on the serial path — the
// event tracer, an attached debugger hook, MOESI-San (whose touch sets
// assume one operation at a time) and raw load/store latency histograms —
// force the serial reference loop.
func (s *System) useRounds() bool {
	return s.cfg.Domains > 1 && s.tracer == nil && s.debug == nil &&
		!s.cfg.Mem.Sanitize && !s.Mem.HasLatencyHists() && s.cfg.Mem.Quantum() > 0
}

// coreKey is the canonical scheduling key: cycle-major, core-ID minor.
func coreKey(c *core) int64 { return c.time<<8 | int64(c.id) }

// Rounds and FastOps report parallel-scheduler activity across all runs:
// quantum rounds opened, and operations executed inside them (off the serial
// coordinator). Both are zero when Domains <= 1 or an instrument forced the
// serial fallback; callers use them to verify the parallel path engaged.
func (s *System) Rounds() int64 { return s.rounds }

// FastOps reports how many operations executed inside rounds; see Rounds.
func (s *System) FastOps() int64 { return s.fastOps }

// seqRelease drops one live-core reference to a transaction sequence number.
func (s *System) seqRelease(seq vid.Seq) {
	if n := s.liveSeq[seq]; n <= 1 {
		delete(s.liveSeq, seq)
	} else {
		s.liveSeq[seq] = n - 1
	}
}

// txInfo returns the speculative-access count Env.TxInfo reports: the
// footprint of the core's current transaction, zero outside one (or when the
// footprint entry is gone because another core already committed the
// sequence number).
func (s *System) txInfo(c *core) uint64 {
	if c.curTx != nil {
		return c.curTx.specAccesses
	}
	return 0
}

// fastRec buffers one fast operation's effects on shared accumulators, to be
// replayed in key order at the round barrier. The physical effects (core
// clock, branch predictor, L1 state, transaction footprint) were applied
// directly by the worker; they commute across cores.
type fastRec struct {
	key      int64
	core     int
	seq      vid.Seq
	kind     reqKind
	instr    uint64      // engine instruction count delta
	charge   int64       // profiler cycles (compute: val; branch: 1; load: latency)
	bucket   prof.Bucket // compute/branch charge bucket
	src      memsys.Src  // load: serving level (always the local L1)
	lineAddr memsys.Addr // load: line charged in the contention heatmap
	specLoad bool        // load: counted in SpecLoads
}

// roundState is the scratch shared by one System's rounds (reused across
// rounds; only the coordinator touches it outside a round).
type roundState struct {
	// bounds[i] is live[i]'s published bound, encoded key<<1|final. It is
	// monotone within a round and written only by live[i]'s worker (the
	// coordinator initialises it between rounds).
	bounds  []atomic.Int64
	horizon int64       // first key past the quantum window
	quantum int64       // conservative lookahead, memsys.Config.Quantum()
	recs    [][]fastRec // per-core buffered effects, in issue order
	scratch []fastRec   // merge buffer for drainRound

	// Persistent worker pool: one goroutine per domain for the whole run
	// (spawning per round would dominate small rounds). start[w] wakes
	// worker w for one round; active counts workers still inside it; the
	// last one out signals done. spans[w] is worker w's slice of live.
	start  []chan struct{}
	spans  [][2]int
	active atomic.Int64
	done   chan struct{}
}

const advBlocked, advAdvanced, advExited = 0, 1, 2

// runRounds is the parallel counterpart of runSerial. The coordinator picks
// the earliest-key runnable core exactly like the serial loop; when that
// operation is fast it opens a round (quantum-bounded parallel execution,
// barrier, canonical drain), otherwise it handles the operation serially.
// Global operations therefore interleave with rounds in exactly the serial
// schedule's order, and rounds execute exactly the fast operations the
// serial schedule would have executed next.
func (s *System) runRounds(live []*core) {
	rs := &roundState{
		bounds:  make([]atomic.Int64, len(live)),
		recs:    make([][]fastRec, len(live)),
		quantum: s.cfg.Mem.Quantum(),
		done:    make(chan struct{}, 1),
	}
	domains := s.cfg.Domains
	if domains > len(live) {
		domains = len(live)
	}
	per := (len(live) + domains - 1) / domains
	for lo := 0; lo < len(live); lo += per {
		hi := lo + per
		if hi > len(live) {
			hi = len(live)
		}
		rs.start = append(rs.start, make(chan struct{}, 1))
		rs.spans = append(rs.spans, [2]int{lo, hi})
	}
	for w := range rs.start {
		go s.domainWorker(rs, live, w)
	}
	defer func() {
		for _, ch := range rs.start {
			close(ch)
		}
	}()
	for s.nLive > 0 {
		c := s.pickRunnable(live)
		if c == nil {
			s.dumpDeadlock(live)
		}
		if !s.aborting {
			if _, ok := s.fastEligible(c, c.pendingReq); ok {
				s.runRound(rs, live)
				continue
			}
		}
		r := c.pendingReq
		c.hasReq = false
		s.handle(c, r)
		c.fastFailed = false
		if !c.done && c.parked == parkNone {
			s.receive(c)
		}
		s.retryParked(live)
	}
}

// fastEligible reports whether the pending request can execute inside a
// round, touching only core-private state. Loads additionally need the
// memory-system side (TryLocalLoad) to agree; a refusal there sets
// c.fastFailed so the coordinator falls back to the serial path for that one
// operation.
func (s *System) fastEligible(c *core, r request) (delta int64, ok bool) {
	switch r.kind {
	case reqCompute:
		return int64(r.val), true
	case reqBranch:
		// Only correct-path branches: a mispredict issues wrong-path
		// loads through the shared hierarchy and draws on the global RNG.
		if (c.pred[r.site] >= 2) == r.taken {
			return 1, true
		}
		return 0, false
	case reqTxInfo:
		// The footprint counter is core-private only while no other live
		// core shares the transaction.
		if c.curSeq != 0 && s.liveSeq[c.curSeq] > 1 {
			return 0, false
		}
		return 0, true
	case reqLoad:
		if c.fastFailed {
			return 0, false
		}
		if c.curSeq == 0 {
			return s.cfg.Mem.L1Lat, true
		}
		t := c.curTx
		if t == nil || s.liveSeq[c.curSeq] > 1 {
			return 0, false
		}
		// The line must already be in the transaction's access sets:
		// then the serial path's SpecTouch would report it as already
		// tracked and send no SLA, so the worker can replicate the
		// footprint update without consulting the shared tracker.
		la := memsys.LineAddr(r.addr)
		if _, inR := t.read[la]; !inR {
			if _, inW := t.write[la]; !inW {
				return 0, false
			}
		}
		return s.cfg.Mem.L1Lat, true
	}
	return 0, false
}

// runRound executes one quantum-bounded parallel round: freeze per-core
// bounds, wake the persistent domain workers, wait for the round barrier,
// then drain the buffered effects in canonical key order.
func (s *System) runRound(rs *roundState, live []*core) {
	minKey := int64(math.MaxInt64)
	for _, c := range live {
		if !c.done && c.parked == parkNone && c.hasReq {
			if k := coreKey(c); k < minKey {
				minKey = k
			}
		}
	}
	s.rounds++
	rs.horizon = minKey + rs.quantum<<8
	for i, c := range live {
		if c.done || c.parked != parkNone {
			// Inert this round: parked cores wake only through global
			// operations, which run between rounds.
			rs.bounds[i].Store(math.MaxInt64) // odd: final
			continue
		}
		k := coreKey(c)
		if _, ok := s.fastEligible(c, c.pendingReq); ok && k < rs.horizon {
			rs.bounds[i].Store(k << 1)
		} else {
			rs.bounds[i].Store(k<<1 | 1)
		}
	}
	rs.active.Store(int64(len(rs.start)))
	for _, ch := range rs.start {
		ch <- struct{}{}
	}
	<-rs.done
	s.drainRound(rs)
}

// domainWorker is one domain's persistent worker goroutine: it sleeps
// between rounds and, when woken, advances its span of cores until every one
// has left the round (blocked on a global operation, the horizon, or a
// smaller frozen bound elsewhere). The last worker out signals the barrier.
func (s *System) domainWorker(rs *roundState, live []*core, w int) {
	span := rs.spans[w]
	act := make([]int, 0, span[1]-span[0])
	for range rs.start[w] {
		act = act[:0]
		for i := span[0]; i < span[1]; i++ {
			if rs.bounds[i].Load()&1 == 0 {
				act = append(act, i)
			}
		}
		for len(act) > 0 {
			progress := false
			for i := 0; i < len(act); {
				switch s.advanceCore(rs, act[i], live[act[i]]) {
				case advAdvanced:
					progress = true
					i++
				case advExited:
					act[i] = act[len(act)-1]
					act = act[:len(act)-1]
				default:
					i++
				}
			}
			if !progress && len(act) > 0 {
				runtime.Gosched()
			}
		}
		if rs.active.Add(-1) == 0 {
			rs.done <- struct{}{}
		}
	}
}

// advanceCore executes as many consecutive fast operations for core c as one
// conservative snapshot of the other cores' bounds allows. Bounds are
// monotone within a round, so a key strictly below the lowest bound observed
// in the snapshot stays safe for the whole batch — one O(cores) scan covers
// many operations.
func (s *System) advanceCore(rs *roundState, idx int, c *core) int {
	finalMin, openMin := int64(math.MaxInt64), int64(math.MaxInt64)
	for j := range rs.bounds {
		if j == idx {
			continue
		}
		v := rs.bounds[j].Load()
		k := v >> 1
		if v&1 != 0 {
			if k < finalMin {
				finalMin = k
			}
		} else if k < openMin {
			openMin = k
		}
	}
	advanced := false
	for {
		k := coreKey(c)
		if _, ok := s.fastEligible(c, c.pendingReq); !ok || k >= rs.horizon {
			rs.bounds[idx].Store(k<<1 | 1)
			return advExited
		}
		if finalMin <= k {
			// A frozen bound at or below our key: an operation that must
			// be ordered before ours is pending for the coordinator, so
			// this core is done for the round.
			rs.bounds[idx].Store(k<<1 | 1)
			return advExited
		}
		if openMin <= k {
			// Another core may still produce a smaller-key operation;
			// its bound can only rise, so rescan on the next pass.
			if advanced {
				return advAdvanced
			}
			return advBlocked
		}
		if !s.execFast(rs, idx, c) {
			c.fastFailed = true
			rs.bounds[idx].Store(k<<1 | 1)
			return advExited
		}
		advanced = true
	}
}

// execFast executes c's pending fast operation: applies its core-private
// physical effects, buffers its shared-accumulator effects, publishes the
// core's advanced bound, responds to the program and receives its next
// request. Returns false only for a load the memory system refused, leaving
// all state untouched except possibly settled versions in c's own L1 (a
// no-op under the serial schedule's lazy-commit rules — see
// memsys.TryLocalLoad).
func (s *System) execFast(rs *roundState, idx int, c *core) bool {
	r := c.pendingReq
	rec := fastRec{key: coreKey(c), core: c.id, seq: c.curSeq, kind: r.kind}
	var resp response
	switch r.kind {
	case reqCompute:
		c.time += int64(r.val)
		rec.instr = r.val
		rec.charge = int64(r.val)
		rec.bucket = r.tag
	case reqBranch:
		ctr := c.pred[r.site]
		c.time++
		rec.instr = 1
		rec.charge = 1
		rec.bucket = prof.Compute
		if r.taken && ctr < 3 {
			c.pred[r.site] = ctr + 1
		} else if !r.taken && ctr > 0 {
			c.pred[r.site] = ctr - 1
		}
	case reqTxInfo:
		resp.val = s.txInfo(c)
	case reqLoad:
		hw := s.hwVID(c.curSeq)
		val, res, specHit, ok := s.Mem.TryLocalLoad(c.id, r.addr, hw, s.series.Enabled())
		if !ok {
			return false
		}
		c.time += res.Lat
		rec.instr = 1
		rec.charge = res.Lat
		rec.src = res.Src
		rec.lineAddr = memsys.LineAddr(r.addr)
		rec.specLoad = specHit
		if specHit {
			// The serial path's trackLoad, for a line already in the
			// access sets: count the access, re-insert, no SLA.
			c.curTx.specAccesses++
			c.curTx.read[rec.lineAddr] = struct{}{}
		}
		c.pushRecent(r.addr)
		resp.val = val
	}
	rs.recs[idx] = append(rs.recs[idx], rec)
	rs.bounds[idx].Store(coreKey(c) << 1)
	c.hasReq = false
	c.resp <- resp
	s.receive(c)
	return true
}

// drainRound is the canonical barrier drain: the per-core effect buffers are
// merged and replayed in key order (cycle, then core ID, then per-core issue
// order — sort.SliceStable preserves the latter for equal keys), applying to
// the shared accumulators exactly the sequence of updates the serial
// scheduler interleaves between its per-operation sampler ticks.
func (s *System) drainRound(rs *roundState) {
	n := 0
	for i := range rs.recs {
		n += len(rs.recs[i])
	}
	if n == 0 {
		return
	}
	all := rs.scratch[:0]
	for i := range rs.recs {
		all = append(all, rs.recs[i]...)
		rs.recs[i] = rs.recs[i][:0]
	}
	sort.SliceStable(all, func(a, b int) bool { return all[a].key < all[b].key })
	s.fastOps += int64(n)
	ms := s.Mem.Stats()
	for i := range all {
		rec := &all[i]
		if s.series.Enabled() {
			// The serial scheduler ticks the sampler with the issuing
			// core's pre-operation clock; the key's high bits are
			// exactly that clock.
			s.series.Tick(s.cumCycles + rec.key>>8)
		}
		switch rec.kind {
		case reqCompute:
			s.stats.Instructions += rec.instr
			if s.prof.Enabled() {
				s.prof.Charge(rec.core, uint64(rec.seq), rec.bucket, rec.charge)
			}
			if s.lat.Enabled() && rec.bucket == prof.Validation {
				s.lat.Validation.Observe(rec.instr)
			}
		case reqBranch:
			s.stats.Branches++
			s.stats.Instructions++
			if s.prof.Enabled() {
				s.prof.Charge(rec.core, uint64(rec.seq), rec.bucket, rec.charge)
			}
		case reqLoad:
			ms.L1Hits++
			if rec.specLoad {
				ms.SpecLoads++
			}
			s.stats.Instructions++
			if s.prof.Enabled() {
				s.prof.ChargeLine(rec.core, uint64(rec.seq), srcBucket(rec.src), rec.charge, rec.lineAddr)
			}
		}
	}
	rs.scratch = all[:0]
}
