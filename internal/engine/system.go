package engine

import (
	"fmt"
	"math/rand"

	"hmtx/internal/memsys"
	"hmtx/internal/metrics"
	"hmtx/internal/obs"
	"hmtx/internal/prof"
	"hmtx/internal/vid"
)

// Program is a workload thread: it runs on one simulated core and interacts
// with the machine exclusively through its Env.
type Program func(*Env)

// RunResult summarises one parallel region execution.
type RunResult struct {
	// Cycles is the simulated execution time: the latest finish time of
	// any participating core.
	Cycles int64
	// Aborted reports that the region ended in a misspeculation abort;
	// all uncommitted transactions were rolled back (§4.4) and the
	// caller must re-execute everything after LastCommitted.
	Aborted bool
	// Cause describes the misspeculation.
	Cause string
	// LastCommitted is the last transaction sequence number whose
	// effects are durable.
	LastCommitted vid.Seq
}

// Stats aggregates engine-level counters across runs.
type Stats struct {
	Instructions uint64
	Branches     uint64
	Mispredicts  uint64

	// Per-transaction aggregates for Table 1 and Figure 9, accumulated
	// at commit time.
	Txs              uint64
	SpecAccesses     uint64 // speculative loads+stores inside transactions
	AvoidedAborts    uint64 // false misspeculations avoided via SLA (§5.1)
	ReadSetBytes     uint64 // distinct lines read, in bytes
	WriteSetBytes    uint64 // distinct lines written, in bytes
	MaxCombinedBytes uint64 // largest single-transaction combined set

	// Abort-cause breakdown (obs.AbortClass buckets) and in-order
	// commit-wait accounting (§4.7), maintained whether or not tracing is
	// enabled.
	AbortsConflict    uint64
	AbortsOverflow    uint64
	AbortsSLA         uint64
	AbortsExplicit    uint64
	AbortsOther       uint64
	CommitStallCycles uint64
}

type parkKind uint8

const (
	parkNone parkKind = iota
	parkConsume
	parkProduce
	parkCommit
	parkAwait
	parkEpoch
)

type core struct {
	id     int
	time   int64
	finish int64
	done   bool

	req  chan request
	resp chan response

	parked    parkKind
	parkedReq request
	parkedAt  int64 // core clock when it parked (commit-stall accounting)

	// pendingReq is the core's next request, received eagerly by the
	// scheduler as soon as the program goroutine issued it. A core whose
	// program is between requests never runs concurrently with another:
	// the scheduler hands execution to exactly one goroutine at a time.
	pendingReq request
	hasReq     bool

	curSeq vid.Seq
	// curTx caches the txStats of curSeq. It is set at beginMTX, cleared
	// when the transaction commits or the run aborts, and lets round
	// workers (domains.go) reach the core's own transaction footprint
	// without touching the shared s.txs map.
	curTx *txStats

	// fastFailed marks that the pending request passed the engine-side
	// fast-path checks but the memory system refused TryLocalLoad; the
	// coordinator must handle it serially (and clears the flag).
	fastFailed bool

	// Branch predictor: per-site 2-bit saturating counters.
	pred map[uint64]uint8
	// Recently touched addresses, the pool wrong-path loads draw from.
	recent  [16]memsys.Addr
	recentN int
}

func (c *core) pushRecent(a memsys.Addr) {
	c.recent[c.recentN%len(c.recent)] = a
	c.recentN++
}

type qItem struct {
	val   uint64
	ready int64
}

type queue struct {
	items       []qItem
	closed      bool
	lastPopTime int64
}

// txStats tracks one in-flight transaction's speculative footprint.
type txStats struct {
	read, write  map[memsys.Addr]struct{}
	specAccesses uint64
	avoided      uint64

	// begun/beginAt record the cycle of the first beginMTX of this
	// sequence number, for begin-to-commit latency.
	begun   bool
	beginAt int64
}

// System is the simulated multicore machine.
type System struct {
	cfg   Config
	Mem   *memsys.Hierarchy
	cores []*core

	queues map[int]*queue
	txs    map[vid.Seq]*txStats

	// liveSeq counts, per transaction sequence number, how many live cores
	// currently have it as curSeq. The parallel scheduler (domains.go)
	// treats per-transaction state as core-private only when the count is
	// 1; it is maintained at begin/commit, never inside a round.
	liveSeq map[vid.Seq]int

	lastCommitted  vid.Seq
	lastCommitTime int64

	busFreeAt  int64
	aborting   bool
	abortCause string

	rng    *rand.Rand
	rngSrc *countingSource // rng's underlying source; counts draws (ckpt.go)
	stats  Stats
	nLive  int

	// debug is the debugger event hook (ckpt.go); nil when no debugger is
	// attached. Like the tracer, attaching it forces the serial scheduler.
	debug func(DebugEvent)

	tracer *obs.Tracer     // nil when tracing is disabled (obs.go)
	prof   *prof.Collector // nil when profiling is disabled (prof.go)

	// Temporal/causal instruments (metrics.go); each is nil when disabled.
	series    *metrics.Sampler
	conflicts *metrics.Recorder
	lat       *metrics.LatHists

	// cumCycles is the summed makespan of completed runs: the global-time
	// base added to a core clock to stamp metrics with monotone simulated
	// time across recovery runs.
	cumCycles int64

	// rounds and fastOps count parallel-scheduler activity (domains.go):
	// quantum rounds opened and fast operations executed inside them. They
	// are scheduler diagnostics, deliberately kept out of Stats — the
	// simulated-architecture counters must be byte-identical between the
	// serial and parallel schedulers, while these are zero on one of them.
	rounds, fastOps int64

	// Histograms registered by Register (obs.go); nil until then.
	histCommitLat *obs.Histogram
	histReadSet   *obs.Histogram
	histWriteSet  *obs.Histogram
}

// New builds a system; the memory hierarchy is fresh and empty.
func New(cfg Config) *System {
	src := newCountingSource(cfg.Seed)
	s := &System{
		cfg:     cfg,
		Mem:     memsys.New(cfg.Mem),
		queues:  make(map[int]*queue),
		txs:     make(map[vid.Seq]*txStats),
		liveSeq: make(map[vid.Seq]int),
		rng:     rand.New(src),
		rngSrc:  src,
	}
	s.Mem.SetTracker((*sysTracker)(s))
	for i := 0; i < cfg.Mem.Cores; i++ {
		s.cores = append(s.cores, &core{
			id:   i,
			req:  make(chan request),
			resp: make(chan response),
			pred: make(map[uint64]uint8),
		})
	}
	return s
}

// Stats returns the engine-level counters.
func (s *System) Stats() *Stats { return &s.stats }

// LastCommitted returns the last durable transaction sequence number.
func (s *System) LastCommitted() vid.Seq { return s.lastCommitted }

// abortSignal unwinds a program when the region aborts.
type abortSignal struct{ cause string }

// Run executes the given programs, one per core starting at core 0, until
// they all finish or the region aborts. Core clocks restart at zero for each
// run; committed memory state, statistics and transaction numbering persist
// across runs, so a caller can re-execute after an abort.
func (s *System) Run(programs []Program) RunResult {
	if len(programs) == 0 || len(programs) > len(s.cores) {
		panic(fmt.Sprintf("engine: %d programs for %d cores", len(programs), len(s.cores)))
	}
	s.aborting = false
	s.abortCause = ""
	s.busFreeAt = 0
	if s.tracer.Enabled(obs.CatEngine) {
		s.tracer.SetTime(0)
		s.tracer.Emit(obs.Event{Kind: obs.KRunStart, Core: -1, Arg: uint64(len(programs))})
	}
	s.queues = make(map[int]*queue)
	s.nLive = len(programs)
	live := s.cores[:len(programs)]
	for _, c := range live {
		c.time, c.finish, c.done, c.parked, c.curSeq = 0, 0, false, parkNone, 0
		c.hasReq = false
		c.curTx = nil
		c.fastFailed = false
	}
	clear(s.liveSeq)
	// Launch the program goroutines one at a time, receiving each core's
	// first request before starting the next. Together with receive()
	// below this serialises all user code: exactly one program goroutine
	// executes between scheduler events, so programs may share host-side
	// state (test closures, read-only tables) without data races, and the
	// interleaving is fully deterministic for a given Config.Seed.
	for i, p := range programs {
		c := live[i]
		prog := p
		go func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(abortSignal); !ok {
						panic(r)
					}
				}
				c.req <- request{kind: reqDone}
			}()
			prog(&Env{sys: s, c: c})
		}()
		s.receive(c)
	}

	if s.useRounds() {
		s.runRounds(live)
	} else {
		s.runSerial(live)
	}

	var cycles int64
	for _, c := range live {
		if c.finish > cycles {
			cycles = c.finish
		}
	}
	if s.tracer.Enabled(obs.CatEngine) {
		s.tracer.SetTime(cycles)
		s.tracer.Emit(obs.Event{Kind: obs.KRunEnd, Core: -1, Arg: uint64(cycles), Note: s.abortCause})
	}
	if s.prof.Enabled() {
		// The run's outcome is known: fold this run's charges, moving
		// work done for rolled-back transactions to the wasted bucket.
		s.prof.RunEnd(cycles, s.abortCause != "", uint64(s.lastCommitted))
	}
	s.cumCycles += cycles
	return RunResult{
		Cycles:        cycles,
		Aborted:       s.abortCause != "",
		Cause:         s.abortCause,
		LastCommitted: s.lastCommitted,
	}
}

// runSerial is the original single-loop scheduler: one event at a time, the
// earliest-clock runnable core first. It is the reference implementation the
// parallel scheduler (domains.go) must match byte-for-byte.
func (s *System) runSerial(live []*core) {
	for s.nLive > 0 {
		c := s.pickRunnable(live)
		if c == nil {
			s.dumpDeadlock(live)
		}
		r := c.pendingReq
		c.hasReq = false
		s.handle(c, r)
		if !c.done && c.parked == parkNone {
			// handle responded: the program is running again. Wait
			// for its next request so no user code runs concurrently
			// with whichever core the scheduler picks next.
			s.receive(c)
		}
		s.retryParked(live)
	}
}

// receive blocks until core c's program issues its next request, letting its
// goroutine run user code up to that point. It must only be called when c's
// goroutine is the one executing (just launched, or just sent a response).
func (s *System) receive(c *core) {
	c.pendingReq = <-c.req
	c.hasReq = true
}

func (s *System) pickRunnable(live []*core) *core {
	var best *core
	for _, c := range live {
		if c.done || c.parked != parkNone || !c.hasReq {
			continue
		}
		if best == nil || c.time < best.time {
			best = c
		}
	}
	return best
}

func (s *System) dumpDeadlock(live []*core) {
	msg := "engine: deadlock: all cores parked:"
	for _, c := range live {
		msg += fmt.Sprintf(" core%d(done=%v park=%d seq=%d)", c.id, c.done, c.parked, c.curSeq)
	}
	panic(msg)
}

func (s *System) hwVID(q vid.Seq) vid.V {
	if q == 0 {
		return vid.NonSpec
	}
	epoch, v := s.cfg.Mem.VIDSpace.Split(q)
	if epoch != s.Mem.CurrentEpoch() {
		panic(fmt.Sprintf("engine: transaction %d belongs to epoch %d but memory system is in epoch %d", q, epoch, s.Mem.CurrentEpoch()))
	}
	return v
}

func (s *System) tx(q vid.Seq) *txStats {
	t, ok := s.txs[q]
	if !ok {
		t = &txStats{read: make(map[memsys.Addr]struct{}), write: make(map[memsys.Addr]struct{})}
		s.txs[q] = t
	}
	return t
}

func (s *System) handle(c *core, r request) {
	// Stamp subsequent trace events (including the memory system's, which
	// has no clock of its own) with the issuing core's time.
	s.tracer.SetTime(c.time)
	if s.series.Enabled() {
		s.series.Tick(s.cumCycles + c.time)
	}
	if s.conflicts.Enabled() {
		s.conflicts.SetTime(s.cumCycles + c.time)
	}
	if s.debug != nil {
		s.debugEvent(c, r)
	}
	if r.kind == reqDone {
		c.done = true
		c.finish = c.time
		s.nLive--
		if s.prof.Enabled() {
			// Sum-to-total invariant: every cycle of this core's clock
			// must have been charged to a bucket (panics on a gap).
			s.prof.CoreDone(c.id, c.time)
		}
		return
	}
	if s.aborting {
		c.resp <- response{abort: true}
		return
	}
	switch r.kind {
	case reqLoad:
		hw := s.hwVID(c.curSeq)
		busBefore := s.Mem.Stats().BusMessages
		val, res := s.Mem.Load(c.id, r.addr, hw)
		busWait := s.charge(c, res.Lat, s.Mem.Stats().BusMessages-busBefore)
		s.stats.Instructions++
		if s.prof.Enabled() {
			if busWait > 0 {
				s.prof.Charge(c.id, uint64(c.curSeq), prof.Bus, busWait)
			}
			s.prof.ChargeLine(c.id, uint64(c.curSeq), srcBucket(res.Src), res.Lat, memsys.LineAddr(r.addr))
		}
		c.pushRecent(r.addr)
		if res.Conflict {
			s.triggerAbort(res.Cause, c)
			return
		}
		c.resp <- response{val: val}

	case reqStore:
		hw := s.hwVID(c.curSeq)
		busBefore := s.Mem.Stats().BusMessages
		res := s.Mem.Store(c.id, r.addr, r.val, hw)
		busWait := s.charge(c, res.Lat, s.Mem.Stats().BusMessages-busBefore)
		s.stats.Instructions++
		if s.prof.Enabled() {
			if busWait > 0 {
				s.prof.Charge(c.id, uint64(c.curSeq), prof.Bus, busWait)
			}
			s.prof.ChargeLine(c.id, uint64(c.curSeq), srcBucket(res.Src), res.Lat, memsys.LineAddr(r.addr))
		}
		c.pushRecent(r.addr)
		if res.Conflict {
			s.triggerAbort(res.Cause, c)
			return
		}
		c.resp <- response{}

	case reqCompute:
		c.time += int64(r.val)
		s.stats.Instructions += r.val
		if s.prof.Enabled() {
			s.prof.Charge(c.id, uint64(c.curSeq), r.tag, int64(r.val))
		}
		if s.lat.Enabled() && r.tag == prof.Validation {
			s.lat.Validation.Observe(r.val)
		}
		c.resp <- response{}

	case reqBranch:
		if !s.branch(c, r) {
			return // aborted inside the branch (SLA-disabled mode)
		}
		c.resp <- response{}

	case reqBegin:
		if !s.begin(c, r) {
			return // parked on a VID-reset stall (§4.6)
		}
		c.resp <- response{}

	case reqCommit:
		if r.seq != s.lastCommitted+1 {
			s.park(c, parkCommit, r)
			return
		}
		if s.lat.Enabled() {
			// The commit proceeded without parking: zero arbitration
			// stall, recorded so the percentiles cover every commit.
			s.lat.CommitArb.Observe(0)
		}
		s.doCommit(c, r.seq)
		c.resp <- response{}

	case reqAbortTx:
		if s.conflicts.Enabled() {
			// A software abort: the transaction rolled itself back.
			s.conflicts.SetTime(s.cumCycles + c.time)
			s.conflicts.Record(uint64(r.seq), uint64(r.seq), 0, metrics.EdgeExplicit)
		}
		s.triggerAbort(fmt.Sprintf("explicit abortMTX by core %d (seq %d)", c.id, r.seq), c)

	case reqProduce:
		q := s.queue(r.q)
		if len(q.items) >= s.cfg.QueueCap {
			s.park(c, parkProduce, r)
			return
		}
		s.doProduce(c, q, r.val)
		if s.tracer.Enabled(obs.CatQueue) {
			s.tracer.SetTime(c.time)
			s.tracer.Emit(obs.Event{Kind: obs.KQueueProduce, Core: int32(c.id), Arg: uint64(r.q)})
		}
		c.resp <- response{}

	case reqConsume:
		q := s.queue(r.q)
		switch {
		case len(q.items) > 0:
			val := s.doConsume(c, q)
			if s.tracer.Enabled(obs.CatQueue) {
				s.tracer.SetTime(c.time)
				s.tracer.Emit(obs.Event{Kind: obs.KQueueConsume, Core: int32(c.id), Arg: uint64(r.q)})
			}
			c.resp <- response{val: val, ok: true}
		case q.closed:
			c.resp <- response{ok: false}
		default:
			s.park(c, parkConsume, r)
		}

	case reqClose:
		s.queue(r.q).closed = true
		c.time += s.cfg.QueueOpCost
		if s.prof.Enabled() {
			s.prof.Charge(c.id, uint64(c.curSeq), prof.Compute, s.cfg.QueueOpCost)
		}
		if s.tracer.Enabled(obs.CatQueue) {
			s.tracer.SetTime(c.time)
			s.tracer.Emit(obs.Event{Kind: obs.KQueueClose, Core: int32(c.id), Arg: uint64(r.q)})
		}
		c.resp <- response{}

	case reqAwait:
		if s.lastCommitted >= r.seq {
			c.resp <- response{}
			return
		}
		s.park(c, parkAwait, r)

	case reqTxInfo:
		c.resp <- response{val: s.txInfo(c)}

	default:
		panic(fmt.Sprintf("engine: unknown request kind %d", r.kind))
	}
}

// charge advances the core's clock by lat cycles; if the operation used the
// shared bus, the core first arbitrates for it and occupies it for
// busOps transactions, serialising concurrent misses from different cores.
// It returns the cycles spent waiting for bus arbitration (zero when the bus
// was free or unused), so the profiler can split contention from latency.
func (s *System) charge(c *core, lat int64, busOps uint64) int64 {
	if busOps > 0 {
		start := c.time
		if s.busFreeAt > start {
			start = s.busFreeAt
		}
		s.busFreeAt = start + int64(busOps)*s.cfg.BusOccupancy
		wait := start - c.time
		c.time = start + lat
		return wait
	}
	c.time += lat
	return 0
}

func (s *System) queue(id int) *queue {
	q, ok := s.queues[id]
	if !ok {
		q = &queue{}
		s.queues[id] = q
	}
	return q
}

func (s *System) doProduce(c *core, q *queue, val uint64) {
	q.items = append(q.items, qItem{val: val, ready: c.time + s.cfg.QueueLat})
	c.time += s.cfg.QueueOpCost
	s.stats.Instructions++
	if s.prof.Enabled() {
		s.prof.Charge(c.id, uint64(c.curSeq), prof.Compute, s.cfg.QueueOpCost)
	}
}

func (s *System) doConsume(c *core, q *queue) uint64 {
	it := q.items[0]
	q.items = q.items[1:]
	if it.ready > c.time {
		if s.prof.Enabled() {
			s.prof.Charge(c.id, uint64(c.curSeq), prof.QueueWait, it.ready-c.time)
		}
		c.time = it.ready
	}
	c.time += s.cfg.QueueOpCost
	q.lastPopTime = c.time
	s.stats.Instructions++
	if s.prof.Enabled() {
		s.prof.Charge(c.id, uint64(c.curSeq), prof.Compute, s.cfg.QueueOpCost)
	}
	return it.val
}

// begin executes beginMTX(seq). It returns false if the core parked waiting
// for outstanding commits before a VID reset (§4.6).
func (s *System) begin(c *core, r request) bool {
	if r.seq != 0 {
		needEpoch := s.cfg.Mem.VIDSpace.Epoch(r.seq)
		if cur := s.Mem.CurrentEpoch(); needEpoch > cur {
			// All transactions of earlier epochs must commit before
			// the VID space can be reset; this is the pipeline
			// stall the paper's VID-width trade-off is about.
			firstOfEpoch := vid.Seq(needEpoch * s.cfg.Mem.VIDSpace.PerEpoch())
			if s.lastCommitted < firstOfEpoch {
				s.park(c, parkEpoch, r)
				return false
			}
			res := s.Mem.VIDReset()
			c.time += res.Lat
			if s.prof.Enabled() {
				// Epoch machinery, not any one transaction's work:
				// charge to seq 0 so it never folds into wasted.
				s.prof.Charge(c.id, 0, prof.CommitStall, res.Lat)
			}
		}
	}
	if c.curSeq != 0 {
		s.seqRelease(c.curSeq)
	}
	if r.seq != 0 {
		s.liveSeq[r.seq]++
	}
	c.curSeq = r.seq
	c.curTx = nil
	c.time++ // the beginMTX instruction itself
	s.stats.Instructions++
	if s.prof.Enabled() {
		s.prof.Charge(c.id, uint64(r.seq), prof.Compute, 1)
	}
	if r.seq != 0 {
		t := s.tx(r.seq)
		c.curTx = t
		if !t.begun {
			t.begun, t.beginAt = true, c.time
		}
		if s.tracer.Enabled(obs.CatTxn) {
			s.tracer.SetTime(c.time)
			s.tracer.Emit(obs.Event{Kind: obs.KTxBegin, Core: int32(c.id), VID: uint64(r.seq)})
		}
	}
	return true
}

func (s *System) doCommit(c *core, seq vid.Seq) {
	res := s.Mem.Commit(s.hwVID(seq))
	c.time += res.Lat
	s.stats.Instructions++
	if s.prof.Enabled() {
		s.prof.Charge(c.id, uint64(seq), prof.Commit, res.Lat)
	}
	s.lastCommitted = seq
	if c.time > s.lastCommitTime {
		s.lastCommitTime = c.time
	}
	// The footprint entry below is deleted; drop every cached pointer to it
	// (an MTX's sequence number may be current on several cores).
	for _, d := range s.cores {
		if d.curSeq == seq {
			d.curTx = nil
		}
	}
	if c.curSeq == seq {
		c.curSeq = 0 // commitMTX returns to non-speculative execution
		s.seqRelease(seq)
	}
	if t, ok := s.txs[seq]; ok {
		s.stats.Txs++
		s.stats.SpecAccesses += t.specAccesses
		s.stats.AvoidedAborts += t.avoided
		rb := uint64(len(t.read)) * memsys.LineSize
		wb := uint64(len(t.write)) * memsys.LineSize
		s.stats.ReadSetBytes += rb
		s.stats.WriteSetBytes += wb
		if rb+wb > s.stats.MaxCombinedBytes {
			s.stats.MaxCombinedBytes = rb + wb
		}
		// Begin-to-commit latency; the begin may have run on another
		// core whose clock is ahead, so clamp at zero.
		var lat int64
		if t.begun && c.time > t.beginAt {
			lat = c.time - t.beginAt
		}
		if s.histCommitLat != nil {
			s.histCommitLat.Observe(uint64(lat))
			s.histReadSet.Observe(rb)
			s.histWriteSet.Observe(wb)
		}
		if s.lat.Enabled() {
			s.lat.Open.Observe(uint64(lat))
		}
		if s.tracer.Enabled(obs.CatTxn) {
			s.tracer.SetTime(c.time)
			s.tracer.Emit(obs.Event{Kind: obs.KTxCommit, Core: int32(c.id), VID: uint64(seq), Arg: uint64(lat)})
		}
		delete(s.txs, seq)
	}
}

// branch models one conditional branch; it returns false if the core
// aborted while executing wrong-path loads (only possible with SLAs
// disabled).
func (s *System) branch(c *core, r request) bool {
	s.stats.Branches++
	s.stats.Instructions++
	c.time++
	if s.prof.Enabled() {
		s.prof.Charge(c.id, uint64(c.curSeq), prof.Compute, 1)
	}
	ctr := c.pred[r.site]
	predictTaken := ctr >= 2
	if predictTaken != r.taken {
		s.stats.Mispredicts++
		c.time += s.cfg.MispredictPenalty
		if s.prof.Enabled() {
			s.prof.Charge(c.id, uint64(c.curSeq), prof.Compute, s.cfg.MispredictPenalty)
		}
		// Squashed wrong-path loads execute before the misprediction
		// is discovered (§5.1). They pull data through the caches but,
		// with SLAs, never mark lines.
		if c.curSeq != 0 && c.recentN > 0 {
			hw := s.hwVID(c.curSeq)
			n := len(c.recent)
			if c.recentN < n {
				n = c.recentN
			}
			for i := 0; i < s.cfg.WrongPathLoads; i++ {
				base := c.recent[s.rng.Intn(n)]
				// Wrong-path loads stray a few lines either side of
				// recently touched data — including into regions
				// that earlier transactions are still writing,
				// which is exactly what SLAs protect against.
				stride := int64(s.rng.Intn(16)-8) * memsys.LineSize
				addr := memsys.Addr(int64(base) + stride)
				_, res := s.Mem.WrongPathLoad(c.id, addr, hw)
				if res.Conflict {
					// Only possible when SLAs are disabled:
					// the squashed load marked a line and
					// tripped over existing versions.
					s.triggerAbort(res.Cause, c)
					return false
				}
			}
		}
	}
	// 2-bit saturating update.
	if r.taken && ctr < 3 {
		c.pred[r.site] = ctr + 1
	} else if !r.taken && ctr > 0 {
		c.pred[r.site] = ctr - 1
	}
	return true
}

func (s *System) triggerAbort(cause string, c *core) {
	res := s.Mem.AbortAll()
	c.time += res.Lat
	if s.prof.Enabled() {
		// Charged to seq 0: the rollback sweep itself is machine
		// overhead, distinct from the wasted re-execution it causes.
		s.prof.Charge(c.id, 0, prof.Abort, res.Lat)
	}
	s.aborting = true
	s.abortCause = cause
	switch obs.AbortClass(cause) {
	case "conflict":
		s.stats.AbortsConflict++
	case "overflow":
		s.stats.AbortsOverflow++
	case "sla-mismatch":
		s.stats.AbortsSLA++
	case "explicit":
		s.stats.AbortsExplicit++
	default:
		s.stats.AbortsOther++
	}
	if s.tracer.Enabled(obs.CatTxn) {
		s.tracer.SetTime(c.time)
		s.tracer.Emit(obs.Event{Kind: obs.KTxAbort, Core: int32(c.id), VID: uint64(c.curSeq), Note: cause})
	}
	// Discard in-flight transaction footprints; they never committed.
	s.txs = make(map[vid.Seq]*txStats)
	for _, d := range s.cores {
		d.curTx = nil
	}
	c.resp <- response{abort: true}
}

// retryParked re-examines parked cores after every event, waking those whose
// condition now holds. Iteration repeats until a fixed point so that chains
// (commit unblocking commit unblocking a VID reset) resolve in one pass.
// Every response is immediately followed by receive(), so a woken program
// runs alone until it issues its next request — the serialisation invariant
// of Run holds here too.
func (s *System) retryParked(live []*core) {
	for changed := true; changed; {
		changed = false
		for _, c := range live {
			if c.parked == parkNone || c.done {
				continue
			}
			if s.aborting {
				c.parked = parkNone
				c.resp <- response{abort: true}
				s.receive(c)
				changed = true
				continue
			}
			r := c.parkedReq
			switch c.parked {
			case parkConsume:
				q := s.queue(r.q)
				if len(q.items) > 0 {
					c.parked = parkNone
					val := s.doConsume(c, q)
					if s.tracer.Enabled(obs.CatQueue) {
						s.tracer.SetTime(c.time)
						s.tracer.Emit(obs.Event{Kind: obs.KQueueConsume, Core: int32(c.id), Arg: uint64(r.q)})
					}
					c.resp <- response{val: val, ok: true}
					s.receive(c)
					changed = true
				} else if q.closed {
					c.parked = parkNone
					c.resp <- response{ok: false}
					s.receive(c)
					changed = true
				}
			case parkProduce:
				q := s.queue(r.q)
				if len(q.items) < s.cfg.QueueCap {
					c.parked = parkNone
					if q.lastPopTime > c.time {
						if s.prof.Enabled() {
							s.prof.Charge(c.id, uint64(c.curSeq), prof.QueueWait, q.lastPopTime-c.time)
						}
						c.time = q.lastPopTime
					}
					s.doProduce(c, q, r.val)
					if s.tracer.Enabled(obs.CatQueue) {
						s.tracer.SetTime(c.time)
						s.tracer.Emit(obs.Event{Kind: obs.KQueueProduce, Core: int32(c.id), Arg: uint64(r.q)})
					}
					c.resp <- response{}
					s.receive(c)
					changed = true
				}
			case parkCommit:
				if r.seq == s.lastCommitted+1 {
					c.parked = parkNone
					if s.lastCommitTime > c.time {
						if s.prof.Enabled() {
							s.prof.Charge(c.id, uint64(r.seq), prof.CommitStall, s.lastCommitTime-c.time)
						}
						c.time = s.lastCommitTime
					}
					stall := c.time - c.parkedAt
					if stall < 0 {
						stall = 0
					}
					s.stats.CommitStallCycles += uint64(stall)
					if s.lat.Enabled() {
						s.lat.CommitArb.Observe(uint64(stall))
					}
					if s.tracer.Enabled(obs.CatCommit) {
						s.tracer.SetTime(c.time)
						s.tracer.Emit(obs.Event{Kind: obs.KCommitResume, Core: int32(c.id), VID: uint64(r.seq), Arg: uint64(stall)})
					}
					s.doCommit(c, r.seq)
					c.resp <- response{}
					s.receive(c)
					changed = true
				}
			case parkAwait:
				if s.lastCommitted >= r.seq {
					c.parked = parkNone
					if s.lastCommitTime > c.time {
						if s.prof.Enabled() {
							s.prof.Charge(c.id, 0, prof.CommitStall, s.lastCommitTime-c.time)
						}
						c.time = s.lastCommitTime
					}
					c.resp <- response{}
					s.receive(c)
					changed = true
				}
			case parkEpoch:
				needEpoch := s.cfg.Mem.VIDSpace.Epoch(r.seq)
				firstOfEpoch := vid.Seq(needEpoch * s.cfg.Mem.VIDSpace.PerEpoch())
				if s.lastCommitted >= firstOfEpoch {
					c.parked = parkNone
					if s.lastCommitTime > c.time {
						if s.prof.Enabled() {
							s.prof.Charge(c.id, 0, prof.CommitStall, s.lastCommitTime-c.time)
						}
						c.time = s.lastCommitTime
					}
					if s.begin(c, r) {
						c.resp <- response{}
						s.receive(c)
					}
					changed = true
				}
			}
		}
	}
}

func (s *System) park(c *core, k parkKind, r request) {
	c.parked = k
	c.parkedReq = r
	c.parkedAt = c.time
	if k == parkCommit && s.tracer.Enabled(obs.CatCommit) {
		s.tracer.SetTime(c.time)
		s.tracer.Emit(obs.Event{Kind: obs.KCommitStall, Core: int32(c.id), VID: uint64(r.seq)})
	}
}

// sysTracker implements memsys.Tracker on System.
type sysTracker System

func (t *sysTracker) SpecTouch(coreID int, lineAddr memsys.Addr, isStore bool) bool {
	s := (*System)(t)
	seq := s.cores[coreID].curSeq
	if seq == 0 {
		return true
	}
	tx := s.tx(seq)
	tx.specAccesses++
	_, inR := tx.read[lineAddr]
	_, inW := tx.write[lineAddr]
	if isStore {
		tx.write[lineAddr] = struct{}{}
	} else {
		tx.read[lineAddr] = struct{}{}
	}
	return inR || inW
}

func (t *sysTracker) WrongPath(coreID int, lineAddr memsys.Addr) {}

func (t *sysTracker) AvoidedAbort(coreID int) {
	s := (*System)(t)
	seq := s.cores[coreID].curSeq
	if seq == 0 {
		return
	}
	s.tx(seq).avoided++
}
