package engine

import (
	"encoding/json"
	"testing"

	"hmtx/internal/metrics"
	"hmtx/internal/vid"
)

// conflictingPair is the §4.3 flow-dependence violation schedule: core 0
// reads a line with a high VID, core 1 then stores to it with a lower VID.
func conflictingPair() []Program {
	p0 := func(e *Env) {
		e.Begin(2)
		e.Load(0x1000)
		e.Compute(100000)
		e.Commit(2)
	}
	p1 := func(e *Env) {
		e.Compute(5000)
		e.Begin(1)
		e.Store(0x1000, 7)
		e.Commit(1)
	}
	return []Program{p0, p1}
}

// TestConflictRecorderCapturesAbortEdge verifies the memsys hook: a store
// dependence violation records a who-aborted-whom edge with the storing VID
// as aborter, the marked later VID as victim, and the conflicting line.
func TestConflictRecorderCapturesAbortEdge(t *testing.T) {
	s := newSys()
	rec := metrics.NewRecorder(0)
	s.SetConflicts(rec)

	res := s.Run(conflictingPair())
	if !res.Aborted {
		t.Fatal("conflicting schedule must abort")
	}
	edges := rec.Edges()
	if len(edges) == 0 {
		t.Fatal("no conflict edges recorded")
	}
	e := edges[0]
	if e.Aborter != 1 || e.Victim != 2 {
		t.Errorf("edge = tx%d -> tx%d, want tx1 -> tx2", e.Aborter, e.Victim)
	}
	if e.Addr != 0x1000 {
		t.Errorf("edge addr = %#x, want 0x1000", e.Addr)
	}
	if e.Kind != metrics.EdgeConflict {
		t.Errorf("edge kind = %s, want conflict", e.Kind)
	}
	if e.Cycle <= 0 {
		t.Errorf("edge cycle = %d, want > 0 (stamped from simulated time)", e.Cycle)
	}
}

// TestConflictRecorderExplicitAbort verifies the engine hook for software
// abortMTX: the victim aborts itself.
func TestConflictRecorderExplicitAbort(t *testing.T) {
	s := newSys()
	rec := metrics.NewRecorder(0)
	s.SetConflicts(rec)

	s.Run([]Program{func(e *Env) {
		e.Begin(1)
		e.Store(0x100, 1)
		e.Abort(1)
	}})
	edges := rec.Edges()
	if len(edges) != 1 {
		t.Fatalf("edges = %+v, want one explicit edge", edges)
	}
	if edges[0].Kind != metrics.EdgeExplicit || edges[0].Aborter != 1 || edges[0].Victim != 1 {
		t.Errorf("edge = %+v, want explicit tx1 -> tx1", edges[0])
	}
}

// TestSeriesSamplerOverRun verifies the engine drives the sampler from its
// event loop: a compute-heavy run at a small window yields multiple rows with
// nondecreasing cycles and a monotone instruction column.
func TestSeriesSamplerOverRun(t *testing.T) {
	s := newSys()
	sm := metrics.NewSampler(500)
	s.SetSeries(sm)

	s.Run([]Program{func(e *Env) {
		e.Begin(1)
		e.Compute(5000)
		e.Store(0x100, 1)
		e.Commit(1)
	}})
	s.FlushSeries()

	if sm.Rows() < 5 {
		t.Fatalf("rows = %d, want >= 5 over a 5000-cycle run at window 500", sm.Rows())
	}
	sr := sm.Snapshot("t")
	instr := sr.Col("instructions")
	if instr == nil {
		t.Fatal("no instructions column")
	}
	for i := 1; i < len(sr.Cycles); i++ {
		if sr.Cycles[i] <= sr.Cycles[i-1] {
			t.Fatalf("cycles not increasing: %v", sr.Cycles)
		}
		if instr[i] < instr[i-1] {
			t.Fatalf("instructions not monotone: %v", instr)
		}
	}
	if last := instr[len(instr)-1]; last < 5000 {
		t.Errorf("final instructions = %d, want >= 5000", last)
	}
	if committed := sr.Col("txs_committed"); committed[len(committed)-1] != 1 {
		t.Errorf("final txs_committed = %d, want 1", committed[len(committed)-1])
	}
}

// TestSeriesSamplerSpansRuns verifies that the global-time base accumulates
// across Run calls, so a multi-run workload produces one continuous series.
func TestSeriesSamplerSpansRuns(t *testing.T) {
	s := newSys()
	sm := metrics.NewSampler(200)
	s.SetSeries(sm)

	for i := 0; i < 3; i++ {
		s.Run([]Program{func(e *Env) { e.Compute(1000) }})
	}
	s.FlushSeries()

	sr := sm.Snapshot("t")
	if len(sr.Cycles) == 0 {
		t.Fatal("no samples")
	}
	if last := sr.Cycles[len(sr.Cycles)-1]; last < 3000 {
		t.Errorf("last sample at cycle %d, want >= 3000 (cumulative across runs)", last)
	}
	for i := 1; i < len(sr.Cycles); i++ {
		if sr.Cycles[i] <= sr.Cycles[i-1] {
			t.Fatalf("cycles not increasing across runs: %v", sr.Cycles)
		}
	}
}

// TestLatHistsObserveCommits verifies the latency hooks: every committed
// transaction contributes an open→commit observation and a commit-arbitration
// observation.
func TestLatHistsObserveCommits(t *testing.T) {
	s := newSys()
	l := metrics.NewLatHists()
	s.SetLatHists(l)

	res := s.Run([]Program{func(e *Env) {
		for i := uint64(1); i <= 4; i++ {
			e.Begin(vid.Seq(i))
			e.Compute(50)
			e.Store(0x100, i)
			e.Commit(vid.Seq(i))
		}
	}})
	if res.Aborted {
		t.Fatalf("aborted: %s", res.Cause)
	}
	if l.Open.Total() != 4 {
		t.Errorf("open_to_commit total = %d, want 4", l.Open.Total())
	}
	if l.CommitArb.Total() != 4 {
		t.Errorf("commit_arbitration total = %d, want 4", l.CommitArb.Total())
	}
	if l.Open.Quantile(0.5) < 50 {
		t.Errorf("open_to_commit p50 = %d, want >= 50 (the compute span)", l.Open.Quantile(0.5))
	}
}

// TestMetricsDeterminism verifies the §15 determinism contract end to end:
// two identical executions yield byte-identical series, conflict, and
// histogram JSON.
func TestMetricsDeterminism(t *testing.T) {
	runOnce := func() (series, conflicts, hists []byte) {
		s := newSys()
		sm := metrics.NewSampler(500)
		rec := metrics.NewRecorder(0)
		l := metrics.NewLatHists()
		s.SetSeries(sm)
		s.SetConflicts(rec)
		s.SetLatHists(l)

		s.Run(conflictingPair())
		s.Run([]Program{func(e *Env) {
			e.Begin(1)
			e.Store(0x1000, 7)
			e.Commit(1)
			e.Begin(2)
			e.Load(0x1000)
			e.Commit(2)
		}})
		s.FlushSeries()

		mustJSON := func(v any) []byte {
			b, err := json.Marshal(v)
			if err != nil {
				t.Fatal(err)
			}
			return b
		}
		return mustJSON(sm.Snapshot("t")), mustJSON(rec.Snapshot("t")), mustJSON(l.Snapshot("t"))
	}
	s1, c1, h1 := runOnce()
	s2, c2, h2 := runOnce()
	if string(s1) != string(s2) {
		t.Errorf("series JSON differs:\n%s\n%s", s1, s2)
	}
	if string(c1) != string(c2) {
		t.Errorf("conflict JSON differs:\n%s\n%s", c1, c2)
	}
	if string(h1) != string(h2) {
		t.Errorf("hist JSON differs:\n%s\n%s", h1, h2)
	}
}
