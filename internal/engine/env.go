package engine

import (
	"hmtx/internal/memsys"
	"hmtx/internal/prof"
	"hmtx/internal/vid"
)

type reqKind uint8

const (
	reqLoad reqKind = iota
	reqStore
	reqCompute
	reqBranch
	reqBegin
	reqCommit
	reqAbortTx
	reqProduce
	reqConsume
	reqClose
	reqAwait
	reqTxInfo
	reqDone
)

type request struct {
	kind  reqKind
	addr  memsys.Addr
	val   uint64
	seq   vid.Seq
	q     int
	site  uint64
	taken bool
	// tag is the profiler bucket for reqCompute work; the zero value is
	// prof.Compute, so only overhead charges (ComputeValidation) set it.
	tag prof.Bucket
}

type response struct {
	val   uint64
	ok    bool
	abort bool
}

// Env is a program's handle to its simulated core. All methods may only be
// called from the program's own goroutine.
//
// When the region aborts, every Env method unwinds the program via an
// internal panic that the engine recovers; the program's Run call then
// reports the abort, and the caller re-executes from the last committed
// transaction. This is the software-visible analogue of jumping to the
// recovery code registered with initMTX (§3.1).
type Env struct {
	sys *System
	c   *core
}

// CoreID returns the simulated core this program runs on.
func (e *Env) CoreID() int { return e.c.id }

// Now returns the core's current cycle count.
func (e *Env) Now() int64 { return e.c.time }

func (e *Env) rpc(r request) response {
	e.c.req <- r
	resp := <-e.c.resp
	if resp.abort {
		panic(abortSignal{cause: e.sys.abortCause})
	}
	return resp
}

// Load issues a load; inside a transaction it is speculative and validated
// by the HMTX system (maximal speculation validation: every load, §6.1).
func (e *Env) Load(addr memsys.Addr) uint64 {
	return e.rpc(request{kind: reqLoad, addr: addr}).val
}

// Store issues a store; inside a transaction it creates or updates the
// transaction's version of the line.
func (e *Env) Store(addr memsys.Addr, val uint64) {
	e.rpc(request{kind: reqStore, addr: addr, val: val})
}

// Compute charges n cycles of non-memory work (n instructions at IPC 1).
func (e *Env) Compute(n int64) {
	if n <= 0 {
		return
	}
	e.rpc(request{kind: reqCompute, val: uint64(n)})
}

// ComputeValidation charges n cycles like Compute, but attributes them to the
// profiler's validation bucket. The SMTX baseline uses it for the software
// costs HMTX moves into hardware — validation-record logging, forwarding, and
// commit-process replay (§2, §6) — so a profile diff against HMTX shows the
// overhead shift directly.
func (e *Env) ComputeValidation(n int64) {
	if n <= 0 {
		return
	}
	e.rpc(request{kind: reqCompute, val: uint64(n), tag: prof.Validation})
}

// Branch models a conditional branch at the given site. A misprediction
// pays the pipeline penalty and issues squashed wrong-path loads (§5.1).
func (e *Env) Branch(site uint64, taken bool) {
	e.rpc(request{kind: reqBranch, site: site, taken: taken})
}

// Begin executes beginMTX: subsequent memory operations belong to
// transaction seq (0 returns to non-speculative execution without
// committing, §3.1). Entering a new VID epoch stalls until all earlier
// transactions commit, then performs the VID reset (§4.6).
func (e *Env) Begin(seq vid.Seq) {
	e.rpc(request{kind: reqBegin, seq: seq})
}

// Commit executes commitMTX(seq): it blocks until seq-1 has committed
// (commits must be consecutive, §4.7), then atomically group-commits every
// speculative modification of the transaction across all caches.
func (e *Env) Commit(seq vid.Seq) {
	e.rpc(request{kind: reqCommit, seq: seq})
}

// Abort executes abortMTX: it signals software-detected misspeculation
// (e.g. control-flow misspeculation, §3.2), rolling back every uncommitted
// transaction. It does not return: the program unwinds.
func (e *Env) Abort(seq vid.Seq) {
	e.rpc(request{kind: reqAbortTx, seq: seq})
	// Unreachable: the rpc always reports the abort and unwinds.
}

// Produce appends val to queue q (e.g. produceVID in Figure 3); it stalls
// while the queue is full.
func (e *Env) Produce(q int, val uint64) {
	e.rpc(request{kind: reqProduce, q: q, val: val})
}

// Consume pops the next value from queue q, stalling until one is available.
// ok is false once the queue is closed and drained.
func (e *Env) Consume(q int) (val uint64, ok bool) {
	r := e.rpc(request{kind: reqConsume, q: q})
	return r.val, r.ok
}

// CloseQueue marks queue q closed; drained consumers observe ok == false.
func (e *Env) CloseQueue(q int) {
	e.rpc(request{kind: reqClose, q: q})
}

// AwaitCommitted stalls until transaction seq has committed. The software
// runtime uses it to bound outstanding speculative state.
func (e *Env) AwaitCommitted(seq vid.Seq) {
	e.rpc(request{kind: reqAwait, seq: seq})
}

// SpecAccessCount returns the number of speculative memory accesses the
// core's current transaction has performed so far. The SMTX baseline uses it
// to size the validation-record batches it ships to the commit process.
func (e *Env) SpecAccessCount() uint64 {
	return e.rpc(request{kind: reqTxInfo}).val
}
