package engine

import (
	"hmtx/internal/metrics"
	"hmtx/internal/prof"
)

// SetSeries installs the windowed time-series sampler (nil disables it) and
// registers the standard probe set. The engine drives the sampler from its
// event loop: every scheduler event ticks it with the global simulated cycle
// (the cumulative cycles of completed runs plus the current core clock), so
// one row is appended per crossed window boundary. Probes read only simulated
// counters and the scheduler always runs the earliest-clock core, so the row
// sequence is identical for identical configurations.
//
// The validation_cycles and commit_cycles columns read the profiler's live
// bucket totals and stay zero unless a collector is installed (SetProf);
// callers that want them populated attach both instruments.
func (s *System) SetSeries(sm *metrics.Sampler) {
	s.series = sm
	if sm.Enabled() {
		ms := s.Mem.Stats()
		sm.Probe("instructions", func() uint64 { return s.stats.Instructions })
		sm.Probe("txs_committed", func() uint64 { return s.stats.Txs })
		sm.Probe("aborts", func() uint64 {
			return s.stats.AbortsConflict + s.stats.AbortsOverflow + s.stats.AbortsSLA +
				s.stats.AbortsExplicit + s.stats.AbortsOther
		})
		sm.Probe("commit_stall_cycles", func() uint64 { return s.stats.CommitStallCycles })
		sm.Probe("bus_messages", func() uint64 { return ms.BusMessages })
		sm.Probe("spec_lines", func() uint64 { return s.Mem.SpecOccupancy() })
		sm.Probe("validation_cycles", func() uint64 {
			if s.prof.Enabled() {
				return uint64(s.prof.Live(prof.Validation))
			}
			return 0
		})
		sm.Probe("commit_cycles", func() uint64 {
			if s.prof.Enabled() {
				return uint64(s.prof.Live(prof.Commit))
			}
			return 0
		})
	}
}

// Series returns the installed sampler (possibly nil).
func (s *System) Series() *metrics.Sampler { return s.series }

// FlushSeries takes one final sample at the current global simulated cycle,
// capturing the tail of the execution past the last window boundary. Callers
// invoke it once after the workload (including recovery runs) completes.
func (s *System) FlushSeries() {
	if s.series.Enabled() {
		s.series.Flush(s.cumCycles)
	}
}

// SetConflicts installs the causal conflict recorder on the system and its
// memory hierarchy (nil disables recording). The engine owns simulated time
// and stamps the recorder at every scheduler event; the memory system records
// the who-aborted-whom edges at the points where the protocol detects
// misspeculation, and the engine itself records software abortMTX edges.
func (s *System) SetConflicts(r *metrics.Recorder) {
	s.conflicts = r
	s.Mem.SetConflicts(r)
}

// Conflicts returns the installed recorder (possibly nil).
func (s *System) Conflicts() *metrics.Recorder { return s.conflicts }

// SetLatHists installs the latency-histogram bundle (nil disables it): epoch
// open→commit latency observed at every transaction commit,
// validation-batch latency observed at every ComputeValidation charge, and
// commit-arbitration stall observed at every commit (zero when the commit
// never parked).
func (s *System) SetLatHists(l *metrics.LatHists) { s.lat = l }

// LatHists returns the installed histogram bundle (possibly nil).
func (s *System) LatHists() *metrics.LatHists { return s.lat }
