package engine

import (
	"hmtx/internal/memsys"
	"hmtx/internal/prof"
)

// SetProf installs the cycle-attribution profiler on the system and its
// memory hierarchy (nil disables profiling). The engine owns simulated time,
// so every site that advances a core clock charges the same amount to a
// prof bucket; the memory system contributes the per-line contention
// counters. Every emit site is behind an Enabled guard (enforced by the
// profgate analyzer), so the disabled path costs one predictable branch per
// site.
func (s *System) SetProf(p *prof.Collector) {
	s.prof = p
	s.Mem.SetProf(p)
}

// Prof returns the installed collector (possibly nil).
func (s *System) Prof() *prof.Collector { return s.prof }

// srcBucket maps the hierarchy level that served a memory operation to its
// latency-attribution bucket.
func srcBucket(src memsys.Src) prof.Bucket {
	switch src {
	case memsys.SrcPeer:
		return prof.Peer
	case memsys.SrcL2:
		return prof.L2
	case memsys.SrcMem:
		return prof.Mem
	}
	return prof.L1
}
