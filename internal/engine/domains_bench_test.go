package engine

import (
	"fmt"
	"testing"

	"hmtx/internal/memsys"
	"hmtx/internal/vid"
)

// computeHeavy is the scaling workload for scheduler benchmarks: every core
// alternates private-line loads, computes and learned branches inside
// transactions, with commits as the only cross-core serialisation.
func computeHeavy(nCores, txs int) []Program {
	progs := make([]Program, nCores)
	for i := 0; i < nCores; i++ {
		i := i
		progs[i] = func(e *Env) {
			base := memsys.Addr(0x100000 + i*0x1000)
			e.Load(base)
			for r := 0; r < txs; r++ {
				seq := vid.Seq(r*nCores + i + 1)
				e.Begin(seq)
				e.Store(base, uint64(r))
				for k := 0; k < 40; k++ {
					e.Load(base)
					e.Compute(int64(2 + k%7))
					e.Branch(uint64(i), true)
				}
				e.Commit(seq)
			}
		}
	}
	return progs
}

func benchScheduler(b *testing.B, nCores, domains int) {
	cfg := DefaultConfig()
	cfg.Mem.Cores = nCores
	cfg.Mem.VIDSpace = vid.Space{Bits: 8}
	cfg.Domains = domains
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New(cfg)
		res := s.Run(computeHeavy(nCores, 3))
		if res.Aborted {
			b.Fatalf("aborted: %s", res.Cause)
		}
	}
}

func BenchmarkScheduler(b *testing.B) {
	for _, nc := range []int{8, 64} {
		for _, d := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("cores=%d/domains=%d", nc, d), func(b *testing.B) {
				benchScheduler(b, nc, d)
			})
		}
	}
}
