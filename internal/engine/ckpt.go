package engine

import (
	"fmt"
	"math/rand"
	"sort"

	"hmtx/internal/memsys"
	"hmtx/internal/vid"
)

// This file implements the engine's half of the hmtx-ckpt/v1 checkpoint
// format (internal/ckpt, DESIGN.md §18): capturing and restoring the
// System state that persists across Run calls, plus the per-event debug hook
// cmd/hmtxdbg uses to seek, watch and step through a deterministic
// re-execution.
//
// Checkpoints are only taken at run boundaries, where the machine is
// quiescent: no program goroutines are live, no core is parked, the bus is
// idle and the inter-stage queues are empty (Run resets all of that state
// anyway). What persists — and is therefore checkpointed — is exactly the
// state Run does NOT reset: committed memory (serialized separately via
// memsys.AppendExact), statistics, the commit frontier, the cumulative cycle
// base, per-core branch predictors and recent-address pools, any lingering
// transaction footprints, and the wrong-path RNG position.

// countingSource wraps the engine's deterministic PRNG source and counts raw
// draws. math/rand's rejection sampling makes "number of Intn calls" an
// unreliable replay coordinate, but the number of underlying Uint64 draws is
// exact: fast-forwarding a fresh source by Draws reproduces the stream
// position bit-for-bit without replacing the generator (whose exact output
// the committed cycle baselines depend on).
type countingSource struct {
	src   rand.Source64
	draws uint64
}

func (c *countingSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.draws++
	return c.src.Uint64()
}

func (c *countingSource) Seed(seed int64) { c.src.Seed(seed) }

// newCountingSource builds the engine RNG source for the given seed.
func newCountingSource(seed int64) *countingSource {
	return &countingSource{src: rand.NewSource(seed).(rand.Source64)}
}

// fastForward discards draws so the stream position matches a checkpoint.
func (c *countingSource) fastForward(draws uint64) {
	for c.draws < draws {
		c.Uint64()
	}
}

// CoreCkpt is the persistent state of one simulated core: the branch
// predictor table and the recent-address pool wrong-path loads draw from.
// Everything else in core is reset at the top of every Run.
type CoreCkpt struct {
	Pred    map[uint64]uint8 `json:"pred,omitempty"`
	Recent  []uint64         `json:"recent,omitempty"`
	RecentN int              `json:"recent_n,omitempty"`
}

// TxCkpt is one in-flight transaction footprint. Footprints normally drain
// by the time a run ends (commit deletes them, aborts clear the map), but an
// early-exit squash can leave entries behind; they are carried verbatim.
type TxCkpt struct {
	Read         []uint64 `json:"read,omitempty"`
	Write        []uint64 `json:"write,omitempty"`
	SpecAccesses uint64   `json:"spec_accesses,omitempty"`
	Avoided      uint64   `json:"avoided,omitempty"`
	Begun        bool     `json:"begun,omitempty"`
	BeginAt      int64    `json:"begin_at,omitempty"`
}

// Ckpt is the engine state of an hmtx-ckpt/v1 checkpoint: every System field
// that survives a Run boundary. It marshals deterministically (maps render
// with sorted keys under encoding/json).
type Ckpt struct {
	Stats          Stats             `json:"stats"`
	LastCommitted  uint64            `json:"last_committed"`
	LastCommitTime int64             `json:"last_commit_time"`
	CumCycles      int64             `json:"cum_cycles"`
	RNGDraws       uint64            `json:"rng_draws"`
	Rounds         int64             `json:"rounds,omitempty"`
	FastOps        int64             `json:"fast_ops,omitempty"`
	Cores          []CoreCkpt        `json:"cores"`
	Txs            map[uint64]TxCkpt `json:"txs,omitempty"`
}

// CaptureCkpt snapshots the persistent engine state. It must be called at a
// run boundary (between Run calls); it panics if the machine is not
// quiescent, because mid-run state (goroutine stacks, parked cores, queue
// contents) is deliberately not serializable.
func (s *System) CaptureCkpt() Ckpt {
	if s.nLive != 0 {
		panic("engine: CaptureCkpt during a run")
	}
	ck := Ckpt{
		Stats:          s.stats,
		LastCommitted:  uint64(s.lastCommitted),
		LastCommitTime: s.lastCommitTime,
		CumCycles:      s.cumCycles,
		RNGDraws:       s.rngSrc.draws,
		Rounds:         s.rounds,
		FastOps:        s.fastOps,
	}
	for _, c := range s.cores {
		if c.parked != parkNone {
			panic("engine: CaptureCkpt with a parked core")
		}
		cc := CoreCkpt{RecentN: c.recentN}
		if len(c.pred) > 0 {
			cc.Pred = make(map[uint64]uint8, len(c.pred))
			for k, v := range c.pred {
				cc.Pred[k] = v
			}
		}
		n := c.recentN
		if n > len(c.recent) {
			n = len(c.recent)
		}
		for i := 0; i < n; i++ {
			cc.Recent = append(cc.Recent, c.recent[i])
		}
		ck.Cores = append(ck.Cores, cc)
	}
	if len(s.txs) > 0 {
		ck.Txs = make(map[uint64]TxCkpt, len(s.txs))
		seqs := make([]vid.Seq, 0, len(s.txs))
		for seq := range s.txs {
			seqs = append(seqs, seq)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for _, seq := range seqs {
			t := s.txs[seq]
			ck.Txs[uint64(seq)] = TxCkpt{
				Read:         sortedAddrs(t.read),
				Write:        sortedAddrs(t.write),
				SpecAccesses: t.specAccesses,
				Avoided:      t.avoided,
				Begun:        t.begun,
				BeginAt:      t.beginAt,
			}
		}
	}
	return ck
}

func sortedAddrs(m map[memsys.Addr]struct{}) []uint64 {
	out := make([]uint64, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RestoreCkpt overwrites the persistent engine state with a checkpoint. The
// System must be freshly built by New with the same Config (in particular
// the same Seed and core count) and must not have run yet; the memory
// hierarchy is restored separately via Mem.RestoreExact.
func (s *System) RestoreCkpt(ck Ckpt) error {
	if len(ck.Cores) != len(s.cores) {
		return fmt.Errorf("engine: checkpoint has %d cores, machine has %d", len(ck.Cores), len(s.cores))
	}
	if s.rngSrc.draws > 0 || s.cumCycles != 0 {
		return fmt.Errorf("engine: RestoreCkpt on a system that already ran")
	}
	s.stats = ck.Stats
	s.lastCommitted = vid.Seq(ck.LastCommitted)
	s.lastCommitTime = ck.LastCommitTime
	s.cumCycles = ck.CumCycles
	s.rounds = ck.Rounds
	s.fastOps = ck.FastOps
	s.rngSrc.fastForward(ck.RNGDraws)
	for i, cc := range ck.Cores {
		c := s.cores[i]
		c.pred = make(map[uint64]uint8, len(cc.Pred))
		for k, v := range cc.Pred {
			c.pred[k] = v
		}
		if len(cc.Recent) > len(c.recent) {
			return fmt.Errorf("engine: core %d checkpoint has %d recent addresses, pool holds %d", i, len(cc.Recent), len(c.recent))
		}
		c.recent = [16]memsys.Addr{}
		copy(c.recent[:], cc.Recent)
		c.recentN = cc.RecentN
	}
	s.txs = make(map[vid.Seq]*txStats, len(ck.Txs))
	seqs := make([]uint64, 0, len(ck.Txs))
	for seq := range ck.Txs {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		t := ck.Txs[seq]
		ts := &txStats{
			read:         make(map[memsys.Addr]struct{}, len(t.Read)),
			write:        make(map[memsys.Addr]struct{}, len(t.Write)),
			specAccesses: t.SpecAccesses,
			avoided:      t.Avoided,
			begun:        t.Begun,
			beginAt:      t.BeginAt,
		}
		for _, a := range t.Read {
			ts.read[a] = struct{}{}
		}
		for _, a := range t.Write {
			ts.write[a] = struct{}{}
		}
		s.txs[vid.Seq(seq)] = ts
	}
	return nil
}

// DebugEvent describes one scheduler event for an attached debugger: the
// global simulated cycle at which the event is handled, the issuing core,
// its current transaction sequence number, the operation mnemonic, and the
// line address for memory operations (zero otherwise).
type DebugEvent struct {
	Cycle int64
	Core  int
	Seq   vid.Seq
	Op    string
	Addr  memsys.Addr
}

var reqKindNames = [...]string{
	"load", "store", "compute", "branch", "begin", "commit", "abort",
	"produce", "consume", "close", "await", "txinfo", "done",
}

func (k reqKind) String() string {
	if int(k) < len(reqKindNames) {
		return reqKindNames[k]
	}
	return fmt.Sprintf("req(%d)", int(k))
}

// SetDebugHook attaches fn to be called for every scheduler event, before it
// executes, stamped with the global simulated cycle. Like the tracer and
// MOESI-San, an attached debug hook forces the serial reference scheduler
// (useRounds, domains.go): the hook observes per-operation order, which the
// domain-sharded scheduler does not preserve. Pass nil to detach.
func (s *System) SetDebugHook(fn func(DebugEvent)) { s.debug = fn }

// debugEvent reports one event to the attached hook.
func (s *System) debugEvent(c *core, r request) {
	ev := DebugEvent{
		Cycle: s.cumCycles + c.time,
		Core:  c.id,
		Seq:   c.curSeq,
		Op:    r.kind.String(),
	}
	switch r.kind {
	case reqLoad, reqStore:
		ev.Addr = memsys.LineAddr(r.addr)
	case reqBegin, reqCommit, reqAbortTx, reqAwait:
		ev.Seq = r.seq
	}
	s.debug(ev)
}
