package engine

import (
	"encoding/json"
	"fmt"
	"testing"

	"hmtx/internal/memsys"
	"hmtx/internal/metrics"
	"hmtx/internal/vid"
)

// domainsTestAddrs is the superset of memory lines the workloads below touch;
// AppendCanonical needs it to include main memory in the state comparison.
func domainsTestAddrs() []memsys.Addr {
	var addrs []memsys.Addr
	for a := memsys.Addr(0x0); a < 0x20000; a += memsys.LineSize {
		addrs = append(addrs, a)
	}
	return addrs
}

// runShot is everything observable about one instrumented execution.
type runShot struct {
	results  []RunResult
	stats    Stats
	memStats memsys.Stats
	canon    []byte
	series   []byte
	confl    []byte
	hists    []byte
	rounds   int64
	fastOps  int64
}

// execWorkload builds a fresh instrumented system with the given Domains
// setting, runs every schedule the workload produces, and snapshots all
// observable outputs. The workload factory is re-invoked per execution so
// closures never share captured state across runs.
func execWorkload(t *testing.T, cfg Config, domains int, workload func(s *System) [][]Program) runShot {
	t.Helper()
	cfg.Domains = domains
	s := New(cfg)
	sm := metrics.NewSampler(500)
	rec := metrics.NewRecorder(0)
	l := metrics.NewLatHists()
	s.SetSeries(sm)
	s.SetConflicts(rec)
	s.SetLatHists(l)

	var shot runShot
	for _, progs := range workload(s) {
		shot.results = append(shot.results, s.Run(progs))
	}
	s.FlushSeries()

	mustJSON := func(v any) []byte {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	shot.stats = *s.Stats()
	shot.memStats = *s.Mem.Stats()
	shot.canon = s.Mem.AppendCanonical(nil, domainsTestAddrs())
	shot.series = mustJSON(sm.Snapshot("t"))
	shot.confl = mustJSON(rec.Snapshot("t"))
	shot.hists = mustJSON(l.Snapshot("t"))
	shot.rounds = s.Rounds()
	shot.fastOps = s.FastOps()
	return shot
}

// requireIdentical fails unless two executions are byte-identical in every
// observable: run results, engine and memory statistics, canonical
// architectural state, and all metrics JSON.
func requireIdentical(t *testing.T, serial, par runShot, label string) {
	t.Helper()
	if len(serial.results) != len(par.results) {
		t.Fatalf("%s: run counts differ: %d vs %d", label, len(serial.results), len(par.results))
	}
	for i := range serial.results {
		if serial.results[i] != par.results[i] {
			t.Errorf("%s: run %d result differs:\nserial: %+v\ndomains: %+v", label, i, serial.results[i], par.results[i])
		}
	}
	if serial.stats != par.stats {
		t.Errorf("%s: engine stats differ:\nserial: %+v\ndomains: %+v", label, serial.stats, par.stats)
	}
	if serial.memStats != par.memStats {
		t.Errorf("%s: memsys stats differ:\nserial: %+v\ndomains: %+v", label, serial.memStats, par.memStats)
	}
	if string(serial.canon) != string(par.canon) {
		t.Errorf("%s: canonical architectural state differs", label)
	}
	if string(serial.series) != string(par.series) {
		t.Errorf("%s: series JSON differs:\nserial: %s\ndomains: %s", label, serial.series, par.series)
	}
	if string(serial.confl) != string(par.confl) {
		t.Errorf("%s: conflict JSON differs:\nserial: %s\ndomains: %s", label, serial.confl, par.confl)
	}
	if string(serial.hists) != string(par.hists) {
		t.Errorf("%s: latency-histogram JSON differs:\nserial: %s\ndomains: %s", label, serial.hists, par.hists)
	}
}

// mixedWorkload stresses every fast-path operation kind across all cores:
// non-speculative warm-up loads, repeated in-transaction loads of tracked
// lines (the speculative fast path), well-predicted and mispredicting
// branches, computes, txInfo reads, and cross-core commit ordering through
// parkCommit. All mutable cross-core state lives in simulated memory.
func mixedWorkload(nCores, rounds int) func(s *System) [][]Program {
	return func(s *System) [][]Program {
		progs := make([]Program, nCores)
		for i := 0; i < nCores; i++ {
			i := i
			progs[i] = func(e *Env) {
				base := memsys.Addr(0x1000 + i*0x400)
				// Non-speculative warm-up: loads + learned branch.
				for k := 0; k < 8; k++ {
					e.Load(base + memsys.Addr(k*8)%0x200)
					e.Compute(int64(3 + k%5))
					e.Branch(uint64(i*8+1), true)
				}
				for r := 0; r < rounds; r++ {
					seq := vid.Seq(r*nCores + i + 1)
					e.Begin(seq)
					e.Store(base, uint64(r))
					// Repeated loads of a line already in the write set:
					// the speculative L1-hit fast path.
					for k := 0; k < 6; k++ {
						e.Load(base)
						e.Compute(int64(1 + (r+k)%4))
					}
					e.SpecAccessCount()
					// Alternating branch: mispredicts issue wrong-path
					// loads through the shared hierarchy (global ops).
					e.Branch(uint64(i*8+2), (r+i)%2 == 0)
					e.Commit(seq)
				}
			}
		}
		return [][]Program{progs}
	}
}

// TestDomainsByteIdentical is the core tentpole contract: for every workload
// and every domain count, the parallel scheduler's observable outputs are
// byte-identical to the serial reference scheduler's.
func TestDomainsByteIdentical(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mem.Cores = 8

	workloads := map[string]func(s *System) [][]Program{
		"mixed": mixedWorkload(8, 6),
		"conflict-then-recover": func(s *System) [][]Program {
			recover := []Program{func(e *Env) {
				e.Begin(1)
				e.Store(0x1000, 7)
				e.Commit(1)
				e.Begin(2)
				e.Load(0x1000)
				e.Load(0x1000)
				e.Commit(2)
			}}
			return [][]Program{conflictingPair(), recover}
		},
		"dswp-pipeline": func(s *System) [][]Program {
			for i := 0; i < 20; i++ {
				node := memsys.Addr(0x10000) + memsys.Addr(i)*memsys.LineSize
				s.Mem.PokeWord(node, uint64(i+1))
				next := node + memsys.LineSize
				if i == 19 {
					next = 0
				}
				s.Mem.PokeWord(node+8, next)
			}
			stage1 := func(e *Env) {
				node := uint64(0x10000)
				seq := vid.Seq(1)
				for node != 0 {
					e.Begin(seq)
					e.Store(0x800, node)
					node = e.Load(memsys.Addr(node) + 8)
					e.Begin(0)
					e.Produce(1, uint64(seq))
					seq++
				}
				e.CloseQueue(1)
			}
			stage2 := func(e *Env) {
				for {
					v, ok := e.Consume(1)
					if !ok {
						return
					}
					seq := vid.Seq(v)
					e.Begin(seq)
					node := e.Load(0x800)
					val := e.Load(memsys.Addr(node))
					sum := e.Load(0x900)
					e.Store(0x900, sum+val)
					e.Commit(seq)
				}
			}
			return [][]Program{{stage1, stage2}}
		},
		"vid-reset": func(s *System) [][]Program {
			return [][]Program{{func(e *Env) {
				for i := 1; i <= 150; i++ {
					seq := vid.Seq(i)
					e.Begin(seq)
					e.Store(0x1000, uint64(i))
					e.Load(0x1000)
					e.Commit(seq)
				}
			}}}
		},
	}

	for name, wl := range workloads {
		serial := execWorkload(t, cfg, 1, wl)
		if serial.rounds != 0 || serial.fastOps != 0 {
			t.Fatalf("%s: serial run opened %d rounds (%d fast ops), want none", name, serial.rounds, serial.fastOps)
		}
		for _, d := range []int{2, 4, 8} {
			par := execWorkload(t, cfg, d, wl)
			requireIdentical(t, serial, par, fmt.Sprintf("%s/domains=%d", name, d))
		}
	}
}

// TestDomainsFastPathEngages guards against a vacuous pass of the identity
// tests: with Domains > 1 and a compute-heavy multicore workload, the
// parallel scheduler must actually open rounds and execute operations off
// the serial coordinator.
func TestDomainsFastPathEngages(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mem.Cores = 8
	par := execWorkload(t, cfg, 4, mixedWorkload(8, 6))
	if par.rounds == 0 {
		t.Fatal("no parallel rounds opened; scheduler silently fell back to serial")
	}
	if par.fastOps == 0 {
		t.Fatal("rounds opened but no fast operations executed")
	}
	t.Logf("rounds=%d fastOps=%d", par.rounds, par.fastOps)
}

// TestDomainsSerialFallback verifies the instruments that require the serial
// path force it even when Domains > 1.
func TestDomainsSerialFallback(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Domains = 4

	s := New(cfg)
	if !s.useRounds() {
		t.Fatal("uninstrumented Domains=4 system must use rounds")
	}

	cfg2 := cfg
	cfg2.Mem.Sanitize = true
	if New(cfg2).useRounds() {
		t.Error("MOESI-San must force the serial scheduler")
	}

	cfg3 := cfg
	cfg3.Domains = 1
	if New(cfg3).useRounds() {
		t.Error("Domains=1 must use the serial scheduler")
	}
}

// TestCrossDomainLatencyIsQuantum pins the bound the round horizon rests on:
// the quantum equals the fastest cross-core interaction latency (the bus),
// so no core can observe a peer's activity within a quantum. The test drives
// the memory system directly: a line modified in core 0's L1, loaded by core
// 1, pays exactly one bus transfer beyond the L1 lookup — and that transfer
// latency is exactly Config.Quantum().
func TestCrossDomainLatencyIsQuantum(t *testing.T) {
	cfg := memsys.DefaultConfig()
	q := cfg.Quantum()
	if q != cfg.BusLat || q > cfg.L2Lat {
		t.Fatalf("Quantum() = %d, want min(BusLat=%d, L2Lat=%d)", q, cfg.BusLat, cfg.L2Lat)
	}

	h := memsys.New(cfg)
	h.Store(0, 0x1000, 42, vid.NonSpec) // core 0 gains Modified
	val, res := h.Load(1, 0x1000, vid.NonSpec)
	if val != 42 {
		t.Fatalf("cross-core load = %d, want 42", val)
	}
	if res.Src != memsys.SrcPeer {
		t.Fatalf("load served from %v, want peer transfer", res.Src)
	}
	if got := res.Lat - cfg.L1Lat; got != q {
		t.Errorf("cross-core transfer latency = %d cycles beyond the L1 lookup, want quantum = %d", got, q)
	}
	if h.Stats().PeerTransfers != 1 {
		t.Errorf("peer transfers = %d, want 1", h.Stats().PeerTransfers)
	}
}

// TestDomainsQuantumBoundary runs a schedule where a value produced by a
// core in one domain is consumed by a core in another exactly one bus
// transfer later, with both cores advancing through fast operations around
// the hand-off: the quantum must make the parallel run cycle-identical.
func TestDomainsQuantumBoundary(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mem.Cores = 2
	wl := func(s *System) [][]Program {
		producer := func(e *Env) {
			e.Store(0x1000, 99) // gains Modified in core 0's L1
			for k := 0; k < 32; k++ {
				e.Compute(3)
				e.Load(0x1000)
			}
		}
		consumer := func(e *Env) {
			for k := 0; k < 16; k++ {
				e.Compute(5)
			}
			// Cross-domain transfer: served from core 0's L1 over the bus.
			if v := e.Load(0x1000); v != 99 {
				panic("consumer read stale data")
			}
			for k := 0; k < 16; k++ {
				e.Compute(2)
				e.Load(0x1000)
			}
		}
		return [][]Program{{producer, consumer}}
	}
	serial := execWorkload(t, cfg, 1, wl)
	par := execWorkload(t, cfg, 2, wl)
	requireIdentical(t, serial, par, "quantum-boundary")
	if serial.memStats.PeerTransfers == 0 {
		t.Fatal("workload produced no cross-domain transfer")
	}
	if par.rounds == 0 {
		t.Fatal("parallel run opened no rounds")
	}
}

// TestDomainsAbortCascadeThreeDomains is the satellite abort test: cores in
// three different domains hold live transactions whose fate is decided by a
// single store — the flow-dependence violation aborts victims across all
// three domains within one quantum, and the parallel run must match the
// serial one byte for byte.
func TestDomainsAbortCascadeThreeDomains(t *testing.T) {
	cfg := DefaultConfig() // 4 cores; Domains=4 puts each core in its own domain
	wl := func(s *System) [][]Program {
		victim := func(seq vid.Seq, warm int64) Program {
			return func(e *Env) {
				e.Begin(seq)
				e.Load(0x1000) // marked with a high VID
				for k := 0; k < 50; k++ {
					e.Compute(warm) // fast ops keep the core inside rounds
					e.Load(0x1000)
				}
				e.Commit(seq)
			}
		}
		aborter := func(e *Env) {
			e.Compute(300) // let both victims mark the line first
			e.Begin(1)
			e.Store(0x1000, 7) // flow violation: aborts seq 2 and seq 3
			e.Commit(1)
		}
		return [][]Program{{victim(3, 9), victim(2, 11), aborter}}
	}
	serial := execWorkload(t, cfg, 1, wl)
	if !serial.results[0].Aborted {
		t.Fatal("schedule must abort")
	}
	for _, d := range []int{2, 4} {
		par := execWorkload(t, cfg, d, wl)
		requireIdentical(t, serial, par, fmt.Sprintf("abort-cascade/domains=%d", d))
	}
	par := execWorkload(t, cfg, 4, wl)
	if par.rounds == 0 {
		t.Fatal("abort cascade ran without any parallel rounds")
	}
}

// TestDomainsSeedReplay re-runs the same seeded workload several times per
// domain count: every execution, serial or parallel, must produce identical
// bytes (the engine's only RNG is seeded, and the parallel scheduler must
// not introduce host-timing dependence).
func TestDomainsSeedReplay(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mem.Cores = 8
	cfg.Seed = 42
	wl := mixedWorkload(8, 4)
	ref := execWorkload(t, cfg, 1, wl)
	for _, d := range []int{1, 2, 4, 8} {
		for rep := 0; rep < 3; rep++ {
			got := execWorkload(t, cfg, d, wl)
			requireIdentical(t, ref, got, fmt.Sprintf("seed-replay/domains=%d/rep=%d", d, rep))
		}
	}
}
