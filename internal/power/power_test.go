package power

import (
	"testing"

	"hmtx/internal/memsys"
)

func TestAreaMatchesTable3Baseline(t *testing.T) {
	m := Default22nm()
	cfg := memsys.DefaultConfig()
	base := m.Area(cfg, false)
	if got := base.Total(); got < 105 || got > 109 {
		t.Fatalf("commodity area = %.1f mm2, want ~107.1 (Table 3)", got)
	}
	ext := m.Area(cfg, true)
	delta := ext.Total() - base.Total()
	if delta < 3.0 || delta > 5.0 {
		t.Fatalf("HMTX area delta = %.2f mm2, want ~4.0 (Table 3)", delta)
	}
}

func TestLeakageMatchesTable3(t *testing.T) {
	m := Default22nm()
	cfg := memsys.DefaultConfig()
	base := m.Leakage(m.Area(cfg, false))
	if base < 5.3 || base > 5.7 {
		t.Fatalf("commodity leakage = %.3f W, want ~5.515 (Table 3)", base)
	}
	ext := m.Leakage(m.Area(cfg, true))
	if ext <= base || ext > base*1.05 {
		t.Fatalf("HMTX leakage = %.3f W, want marginally above %.3f", ext, base)
	}
}

func TestDynamicPowerScalesWithActivity(t *testing.T) {
	m := Default22nm()
	oneCore := Activity{Cycles: 1e6, Instructions: 8e5, L1Accesses: 3e5, L2Accesses: 1e4, MemAccesses: 3e3, BusMessages: 1e4}
	fourCores := oneCore
	fourCores.Instructions *= 4
	fourCores.L1Accesses *= 4
	fourCores.L2Accesses *= 4
	fourCores.MemAccesses *= 4
	fourCores.BusMessages *= 4
	p1 := m.DynamicPower(oneCore, false)
	p4 := m.DynamicPower(fourCores, false)
	if p4 < 3.5*p1 || p4 > 4.5*p1 {
		t.Fatalf("4x activity should ~4x dynamic power: %.2f vs %.2f", p4, p1)
	}
}

func TestHMTXHardwareTax(t *testing.T) {
	m := Default22nm()
	a := Activity{Cycles: 1e6, Instructions: 8e5, L1Accesses: 6e5, L2Accesses: 1e4, MemAccesses: 3e3, BusMessages: 1e4}
	plain := m.DynamicPower(a, false)
	taxed := m.DynamicPower(a, true)
	if taxed <= plain {
		t.Fatal("VID comparators must cost some dynamic power (§6.4)")
	}
	if taxed > plain*1.05 {
		t.Fatalf("HMTX hardware tax %.2f -> %.2f exceeds the paper's marginal increase", plain, taxed)
	}
}

func TestEnergyIncludesLeakage(t *testing.T) {
	m := Default22nm()
	cfg := memsys.DefaultConfig()
	area := m.Area(cfg, false)
	a := Activity{Cycles: 2e9, Instructions: 1e9} // one second at 2GHz
	e := m.TotalEnergy(a, area, false)
	if e <= m.DynamicEnergy(a, false) {
		t.Fatal("total energy must include leakage")
	}
	leakJ := m.Leakage(area) * m.Seconds(a)
	if diff := e - m.DynamicEnergy(a, false) - leakJ; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("energy decomposition inconsistent by %g J", diff)
	}
}

func TestZeroCycleActivity(t *testing.T) {
	m := Default22nm()
	if p := m.DynamicPower(Activity{}, false); p != 0 {
		t.Fatalf("zero-cycle power = %f, want 0", p)
	}
}
