// Package power is an analytic area, power and energy model in the spirit
// of McPAT/CACTI at the 22nm node (§6.4): cache area scales with SRAM
// capacity, leakage with area, and dynamic power with activity counts
// gathered from simulation. The constants are calibrated so the commodity
// 4-core configuration of Table 2 reproduces Table 3's baseline (107.1 mm²,
// 5.515 W leakage), and the HMTX extensions — 12 VID bits plus commit/abort
// bits per line and the cascading low/high comparators of §4.5 — add the
// paper's ~4.0 mm².
package power

import "hmtx/internal/memsys"

// Model holds the technology parameters.
type Model struct {
	// CoreArea is mm² per out-of-order core (Alpha 21264-class at 22nm).
	CoreArea float64
	// CacheAreaPerMB is mm² per MB of SRAM, data+tag arrays.
	CacheAreaPerMB float64
	// BaselineBitsPerLine is the storage of one 64B line including tag,
	// state and replacement metadata.
	BaselineBitsPerLine float64
	// HMTXBitsPerLine is the extra per-line storage of the HMTX
	// extensions: two 6-bit VIDs plus the committed/aborted bits (§5.3).
	HMTXBitsPerLine float64
	// HMTXLogicPerCore is the comparator, SLA-queue and VID-register
	// area added per core (§4.5, §5.1).
	HMTXLogicPerCore float64

	// LeakagePerMM2 is baseline leakage; LeakagePerHMTXMM2 applies to
	// the (mostly SRAM) HMTX additions, which leak less per area thanks
	// to power gating (§6.4).
	LeakagePerMM2     float64
	LeakagePerHMTXMM2 float64

	// Dynamic energy per event, in nanojoules.
	EnergyPerInst float64
	EnergyPerL1   float64
	EnergyPerL2   float64
	EnergyPerMem  float64
	EnergyPerBus  float64
	// VIDCompareOverhead is the fractional cache-access energy increase
	// from the VID comparators when running on HMTX hardware (§4.5).
	VIDCompareOverhead float64

	// ClockGHz converts cycles to seconds.
	ClockGHz float64
}

// Default22nm returns the calibrated 22nm model.
func Default22nm() Model {
	return Model{
		CoreArea:            10.65,
		CacheAreaPerMB:      2.0,
		BaselineBitsPerLine: 512 + 36, // data + tag/state/LRU
		HMTXBitsPerLine:     14,       // modVID + highVID + CB + AB
		HMTXLogicPerCore:    0.59,
		LeakagePerMM2:       0.0515,
		LeakagePerHMTXMM2:   0.023,
		EnergyPerInst:       3.1,
		EnergyPerL1:         0.45,
		EnergyPerL2:         4.5,
		EnergyPerMem:        28,
		EnergyPerBus:        3.0,
		VIDCompareOverhead:  0.06,
		ClockGHz:            2.0,
	}
}

// Area is the area breakdown in mm².
type Area struct {
	Cores     float64
	Caches    float64
	HMTXExtra float64
}

// Total returns the chip area.
func (a Area) Total() float64 { return a.Cores + a.Caches + a.HMTXExtra }

// Area computes the chip area for the given memory configuration, with or
// without the HMTX extensions.
func (m Model) Area(cfg memsys.Config, hmtx bool) Area {
	cacheMB := float64(cfg.Cores*cfg.L1Size+cfg.L2Size) / (1 << 20)
	a := Area{
		Cores:  float64(cfg.Cores) * m.CoreArea,
		Caches: cacheMB * m.CacheAreaPerMB,
	}
	if hmtx {
		a.HMTXExtra = a.Caches*(m.HMTXBitsPerLine/m.BaselineBitsPerLine) +
			float64(cfg.Cores)*m.HMTXLogicPerCore
	}
	return a
}

// Leakage returns total leakage power in watts for the given area.
func (m Model) Leakage(a Area) float64 {
	return (a.Cores+a.Caches)*m.LeakagePerMM2 + a.HMTXExtra*m.LeakagePerHMTXMM2
}

// Activity is the event profile of one simulated run.
type Activity struct {
	Cycles       int64
	Instructions uint64
	L1Accesses   uint64
	L2Accesses   uint64
	MemAccesses  uint64
	BusMessages  uint64
}

// Seconds returns the wall-clock duration of the run.
func (m Model) Seconds(a Activity) float64 {
	return float64(a.Cycles) / (m.ClockGHz * 1e9)
}

// DynamicEnergy returns the dynamic energy of the run in joules. hmtxHW
// selects whether the run executed on hardware with the HMTX extensions
// (whose VID comparators tax every cache access, even non-speculative ones,
// §6.4).
func (m Model) DynamicEnergy(a Activity, hmtxHW bool) float64 {
	cacheScale := 1.0
	if hmtxHW {
		cacheScale = 1 + m.VIDCompareOverhead
	}
	nj := m.EnergyPerInst*float64(a.Instructions) +
		cacheScale*(m.EnergyPerL1*float64(a.L1Accesses)+m.EnergyPerL2*float64(a.L2Accesses)) +
		m.EnergyPerMem*float64(a.MemAccesses) +
		m.EnergyPerBus*float64(a.BusMessages)
	return nj * 1e-9
}

// DynamicPower returns the average dynamic power of the run in watts.
func (m Model) DynamicPower(a Activity, hmtxHW bool) float64 {
	s := m.Seconds(a)
	if s == 0 {
		return 0
	}
	return m.DynamicEnergy(a, hmtxHW) / s
}

// TotalEnergy returns dynamic plus leakage energy for the run in joules.
func (m Model) TotalEnergy(a Activity, ar Area, hmtxHW bool) float64 {
	return m.DynamicEnergy(a, hmtxHW) + m.Leakage(ar)*m.Seconds(a)
}
