// Package prof is the deterministic cycle-attribution profiler (DESIGN.md
// §13). The engine charges every advance of every simulated core clock to
// exactly one attribution bucket as it happens; at the end of each run the
// collector folds the charges, reclassifying work done by transactions that
// were later rolled back as wasted re-execution. The invariant — per-core
// buckets sum exactly to the core's total cycles — is checked in-sim at every
// core's completion and is what makes "where did the cycles go" answerable
// without hand-parsing traces: the buckets partition time, they do not sample
// it.
//
// Alongside the time accounting the collector maintains a per-cache-line
// contention heatmap (conflict aborts, overflow aborts, peer transfers,
// access and wasted cycles by line address) and per-VID re-execution records
// (aborted attempts and the cycles they wasted), which extend the
// obs.TxTimeline view with the cost of each abort-then-recommit.
//
// Like obs.Tracer, the zero value of *Collector (nil) is a valid disabled
// profiler: Enabled reports false and every method is safe to call, so emit
// sites in the simulation packages cost one predictable branch when profiling
// is off (enforced by the profgate analyzer).
package prof

import "fmt"

// Bucket identifies one cycle-attribution class. Every simulated cycle of
// every core lands in exactly one bucket.
type Bucket uint8

const (
	// Compute is instruction execution: plain compute, branches and their
	// misprediction penalties, and queue-operation instruction costs.
	Compute Bucket = iota
	// L1 is latency of memory operations served by the core's own L1.
	L1
	// Peer is latency of operations served by a peer core's L1 over the bus.
	Peer
	// L2 is latency of operations served by the shared L2.
	L2
	// Mem is latency of operations that filled from main memory.
	Mem
	// Bus is bus-contention wait: cycles spent arbitrating for the shared
	// bus while another core's transfer occupies it.
	Bus
	// Commit is the commit-machinery latency of commitMTX itself (§5.3).
	Commit
	// CommitStall is time parked waiting for the in-order commit turn
	// (§4.7), for outstanding commits before a VID reset (§4.6), and in
	// AwaitCommitted.
	CommitStall
	// QueueWait is inter-stage queue backpressure and transfer latency:
	// waiting for a value to become ready, or for space in a full queue.
	QueueWait
	// Validation is software speculation overhead charged by the SMTX
	// baseline: validation-record processing, uncommitted value
	// forwarding, and STM read/write-barrier dilation (§2.3).
	Validation
	// Abort is the abort-rollback sweep latency (§4.4).
	Abort
	// Wasted is re-execution waste: cycles a core spent executing
	// transactions that a later abort rolled back. Charges carry the
	// transaction sequence number they worked for; when a run aborts,
	// every charge to an uncommitted sequence folds into this bucket.
	Wasted

	// NumBuckets is the number of attribution buckets.
	NumBuckets
)

var bucketNames = [NumBuckets]string{
	"compute", "l1", "peer", "l2", "mem", "bus", "commit",
	"commit_stall", "queue_wait", "validation", "abort", "wasted",
}

// String returns the bucket's stable snake_case name (the JSON key).
func (b Bucket) String() string {
	if b < NumBuckets {
		return bucketNames[b]
	}
	return fmt.Sprintf("bucket(%d)", uint8(b))
}

// Buckets returns every bucket in declaration order.
func Buckets() []Bucket {
	out := make([]Bucket, NumBuckets)
	for i := range out {
		out[i] = Bucket(i)
	}
	return out
}

// entry is one pending charge: cycles a core spent on behalf of transaction
// seq (0 = non-speculative work), provisionally in bucket b, optionally
// attributed to a cache line.
type entry struct {
	seq     uint64
	line    uint64
	cycles  int64
	bucket  Bucket
	hasLine bool
}

// coreState is one core's accounting.
type coreState struct {
	// pend holds this run's charges, folded by RunEnd once the run's
	// outcome (committed vs rolled back) is known.
	pend []entry
	// runTotal is the sum of pending charges, checked against the core's
	// clock at CoreDone (the sum-to-total invariant).
	runTotal int64
	// buckets and cycles accumulate folded charges across runs.
	buckets [NumBuckets]int64
	cycles  int64
}

// lineStats is the contention heatmap entry for one cache line.
type lineStats struct {
	conflicts    uint64
	overflows    uint64
	peer         uint64
	accessCycles int64
	wastedCycles int64
}

// txRec records the re-execution cost of one transaction sequence number.
type txRec struct {
	attempts int // aborted (rolled-back) attempts
	wasted   int64
}

// Collector accumulates cycle attribution for one engine.System. It is not
// safe for concurrent use; the engine's serialised scheduler guarantees at
// most one charger at a time.
type Collector struct {
	cores []coreState
	lines map[uint64]*lineStats
	txs   map[uint64]*txRec

	// lineAddrs and txSeqs record first-touch order so snapshots can walk
	// the maps through deterministic key slices instead of ranging them
	// (the detrange rule: map iteration order must never reach output).
	lineAddrs []uint64
	txSeqs    []uint64

	totalCycles int64 // sum over runs of the run's makespan
	runs        int
	abortedRuns int

	// live is the provisional running total per bucket, updated at charge
	// time rather than at RunEnd. It feeds the time-series sampler
	// (internal/metrics), which needs mid-run bucket values; unlike the
	// folded per-core buckets it never reclassifies rolled-back work into
	// Wasted, so it shows each charge under its original attribution.
	live [NumBuckets]int64
}

// New returns an empty collector. Core slots grow on demand, so the same
// collector works for any machine size.
func New() *Collector {
	return &Collector{
		lines: make(map[uint64]*lineStats),
		txs:   make(map[uint64]*txRec),
	}
}

// Enabled reports whether profiling is active: the emit-site guard, safe
// (and false) on a nil collector.
func (c *Collector) Enabled() bool { return c != nil }

func (c *Collector) core(id int) *coreState {
	for id >= len(c.cores) {
		c.cores = append(c.cores, coreState{})
	}
	return &c.cores[id]
}

func (c *Collector) line(addr uint64) *lineStats {
	l, ok := c.lines[addr]
	if !ok {
		l = &lineStats{}
		c.lines[addr] = l
		c.lineAddrs = append(c.lineAddrs, addr)
	}
	return l
}

// Charge attributes cycles of core time to bucket b on behalf of transaction
// seq (0 = non-speculative). Zero-cycle charges are dropped.
func (c *Collector) Charge(core int, seq uint64, b Bucket, cycles int64) {
	if cycles == 0 {
		return
	}
	if cycles < 0 {
		panic(fmt.Sprintf("prof: negative charge of %d cycles to %v on core %d", cycles, b, core))
	}
	cs := c.core(core)
	cs.pend = append(cs.pend, entry{seq: seq, cycles: cycles, bucket: b})
	cs.runTotal += cycles
	c.live[b] += cycles
}

// ChargeLine is Charge with the cache-line address the cycles were spent on,
// feeding the contention heatmap's access and wasted-cycle columns.
func (c *Collector) ChargeLine(core int, seq uint64, b Bucket, cycles int64, lineAddr uint64) {
	if cycles == 0 {
		return
	}
	if cycles < 0 {
		panic(fmt.Sprintf("prof: negative charge of %d cycles to %v on core %d", cycles, b, core))
	}
	cs := c.core(core)
	cs.pend = append(cs.pend, entry{seq: seq, line: lineAddr, cycles: cycles, bucket: b, hasLine: true})
	cs.runTotal += cycles
	c.live[b] += cycles
}

// Live returns the provisional running total of bucket b: every charge so
// far under its original attribution, regardless of whether its run has
// folded (or will fold it into Wasted). Safe on a nil collector (returns 0),
// so time-series probes can read it without a guard.
func (c *Collector) Live(b Bucket) int64 {
	if c == nil {
		return 0
	}
	return c.live[b]
}

// LineConflict records a conflict abort caused by the given line.
func (c *Collector) LineConflict(lineAddr uint64) { c.line(lineAddr).conflicts++ }

// LineOverflow records a speculative-overflow abort forced by evicting the
// given line past the last-level cache (§5.4).
func (c *Collector) LineOverflow(lineAddr uint64) { c.line(lineAddr).overflows++ }

// LinePeer records a peer-L1 transfer of the given line.
func (c *Collector) LinePeer(lineAddr uint64) { c.line(lineAddr).peer++ }

// CoreDone asserts the sum-to-total invariant for one core at the end of a
// run: every cycle of the core's clock must have been charged to a bucket.
// A mismatch is a profiler (or engine) bug and panics immediately, naming
// the gap.
func (c *Collector) CoreDone(core int, cycles int64) {
	cs := c.core(core)
	if cs.runTotal != cycles {
		panic(fmt.Sprintf("prof: core %d finished at cycle %d but %d cycles were attributed (gap %+d): a clock advance is missing its Charge",
			core, cycles, cs.runTotal, cycles-cs.runTotal))
	}
	cs.cycles += cycles
}

// RunEnd folds the run's pending charges now that the outcome is known.
// makespan is the run's total simulated time (the latest core finish);
// aborted and lastCommitted describe the outcome. In an aborted run, every
// charge made on behalf of a sequence number above lastCommitted was rolled
// back: it folds into the Wasted bucket, into the per-VID re-execution
// record, and into the line heatmap's wasted-cycle column instead of its
// provisional bucket.
func (c *Collector) RunEnd(makespan int64, aborted bool, lastCommitted uint64) {
	c.totalCycles += makespan
	c.runs++
	if aborted {
		c.abortedRuns++
	}
	var wastedSeqs []uint64
	seen := make(map[uint64]bool)
	for i := range c.cores {
		cs := &c.cores[i]
		for _, e := range cs.pend {
			if aborted && e.seq > lastCommitted {
				cs.buckets[Wasted] += e.cycles
				c.tx(e.seq).wasted += e.cycles
				if !seen[e.seq] {
					seen[e.seq] = true
					wastedSeqs = append(wastedSeqs, e.seq)
				}
				if e.hasLine {
					c.line(e.line).wastedCycles += e.cycles
				}
				continue
			}
			cs.buckets[e.bucket] += e.cycles
			if e.hasLine {
				c.line(e.line).accessCycles += e.cycles
			}
		}
		cs.pend = cs.pend[:0]
		cs.runTotal = 0
	}
	for _, seq := range wastedSeqs {
		c.tx(seq).attempts++
	}
}

func (c *Collector) tx(seq uint64) *txRec {
	t, ok := c.txs[seq]
	if !ok {
		t = &txRec{}
		c.txs[seq] = t
		c.txSeqs = append(c.txSeqs, seq)
	}
	return t
}
