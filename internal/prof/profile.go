package prof

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"hmtx/internal/stats"
)

// Schema is the schema tag of the profile document ("hmtx-prof/v1").
const Schema = "hmtx-prof/v1"

// DefaultTopLines is the heatmap depth of Snapshot when callers pass 0.
const DefaultTopLines = 16

// Doc is the machine-readable profile document. Struct field order and
// encoding/json's sorted map keys make it byte-identical across runs of the
// same configuration and across experiment-suite parallelism settings.
type Doc struct {
	Schema   string    `json:"schema"`
	Scale    int       `json:"scale,omitempty"`
	Cores    int       `json:"cores,omitempty"`
	Profiles []Profile `json:"profiles"`
}

// Profile is the cycle attribution of one simulated execution (one workload
// on one system under one paradigm).
type Profile struct {
	// Label identifies the profile for diffing, conventionally
	// "workload/system".
	Label    string `json:"label"`
	Workload string `json:"workload"`
	System   string `json:"system"`
	Paradigm string `json:"paradigm"`

	// Runs counts engine runs (1 + abort recoveries); AbortedRuns of them
	// ended in a rollback.
	Runs        int `json:"runs"`
	AbortedRuns int `json:"aborted_runs,omitempty"`

	// TotalCycles is the summed makespan of every run (the execution's
	// simulated time). CoreCycles is the sum of every core's clock across
	// runs; the per-core and summed bucket values partition it exactly.
	TotalCycles int64 `json:"total_cycles"`
	CoreCycles  int64 `json:"core_cycles"`

	// Buckets is the attribution summed over cores; zero buckets are
	// omitted. The values sum to CoreCycles.
	Buckets map[string]int64 `json:"buckets"`

	// Cores is the per-core attribution, in core order.
	Cores []CoreProfile `json:"per_core"`

	// HotLines is the contention heatmap: the top-N line addresses by
	// conflict aborts, then wasted cycles, then peer transfers.
	HotLines []LineProfile `json:"hot_lines,omitempty"`

	// ReexecutedTxs lists every transaction sequence number that had at
	// least one rolled-back attempt, with the cycles those attempts
	// wasted.
	ReexecutedTxs []TxProfile `json:"reexecuted_txs,omitempty"`
}

// CoreProfile is one core's attribution. The bucket values sum exactly to
// Cycles (the in-sim invariant).
type CoreProfile struct {
	Core    int              `json:"core"`
	Cycles  int64            `json:"cycles"`
	Buckets map[string]int64 `json:"buckets"`
}

// LineProfile is one cache line's contention record.
type LineProfile struct {
	Addr          string `json:"addr"`
	Conflicts     uint64 `json:"conflicts,omitempty"`
	Overflows     uint64 `json:"overflows,omitempty"`
	PeerTransfers uint64 `json:"peer_transfers,omitempty"`
	AccessCycles  int64  `json:"access_cycles,omitempty"`
	WastedCycles  int64  `json:"wasted_cycles,omitempty"`
}

// TxProfile is one re-executed transaction's waste record.
type TxProfile struct {
	VID             uint64 `json:"vid"`
	AbortedAttempts int    `json:"aborted_attempts"`
	WastedCycles    int64  `json:"wasted_cycles"`
}

// Snapshot renders the collector's state as a Profile. topLines bounds the
// heatmap (0 = DefaultTopLines); lines that never saw a conflict, overflow,
// peer transfer or wasted cycle are excluded. Snapshot does not reset the
// collector.
func (c *Collector) Snapshot(workload, system, paradigm string, topLines int) Profile {
	if topLines <= 0 {
		topLines = DefaultTopLines
	}
	p := Profile{
		Label:       workload + "/" + system,
		Workload:    workload,
		System:      system,
		Paradigm:    paradigm,
		Runs:        c.runs,
		AbortedRuns: c.abortedRuns,
		TotalCycles: c.totalCycles,
		Buckets:     make(map[string]int64),
	}
	for i := range c.cores {
		cs := &c.cores[i]
		cp := CoreProfile{Core: i, Cycles: cs.cycles, Buckets: make(map[string]int64)}
		for b := Bucket(0); b < NumBuckets; b++ {
			if v := cs.buckets[b]; v != 0 {
				cp.Buckets[b.String()] = v
				p.Buckets[b.String()] += v
			}
		}
		p.CoreCycles += cs.cycles
		p.Cores = append(p.Cores, cp)
	}

	// Heatmap: interesting lines, hottest first. The numeric address is the
	// explicit final sort key: LineProfile.Addr is a hex string, which does
	// not order numerically ("0x9" > "0x10"), so tie-breaking must happen
	// here, before formatting, rather than lean on a stable sort of
	// pre-sorted input surviving future edits.
	type hotLine struct {
		addr uint64
		lp   LineProfile
	}
	var hot []hotLine
	for _, a := range c.lineAddrs {
		l := c.lines[a]
		if l.conflicts == 0 && l.overflows == 0 && l.peer == 0 && l.wastedCycles == 0 {
			continue
		}
		hot = append(hot, hotLine{addr: a, lp: LineProfile{
			Addr:          fmt.Sprintf("%#x", a),
			Conflicts:     l.conflicts,
			Overflows:     l.overflows,
			PeerTransfers: l.peer,
			AccessCycles:  l.accessCycles,
			WastedCycles:  l.wastedCycles,
		}})
	}
	sort.Slice(hot, func(i, j int) bool {
		a, b := &hot[i].lp, &hot[j].lp
		if a.Conflicts+a.Overflows != b.Conflicts+b.Overflows {
			return a.Conflicts+a.Overflows > b.Conflicts+b.Overflows
		}
		if a.WastedCycles != b.WastedCycles {
			return a.WastedCycles > b.WastedCycles
		}
		if a.PeerTransfers != b.PeerTransfers {
			return a.PeerTransfers > b.PeerTransfers
		}
		return hot[i].addr < hot[j].addr
	})
	if len(hot) > topLines {
		hot = hot[:topLines]
	}
	for i := range hot {
		p.HotLines = append(p.HotLines, hot[i].lp)
	}

	seqs := append([]uint64(nil), c.txSeqs...)
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, s := range seqs {
		t := c.txs[s]
		p.ReexecutedTxs = append(p.ReexecutedTxs, TxProfile{
			VID: s, AbortedAttempts: t.attempts, WastedCycles: t.wasted,
		})
	}
	return p
}

// CheckInvariant verifies that the profile's buckets partition its core
// cycles: per core and in total, bucket values sum exactly to the cycle
// counts. It returns nil when the invariant holds.
func (p *Profile) CheckInvariant() error {
	var coreSum, bucketSum int64
	for i := range p.Cores {
		cp := &p.Cores[i]
		var s int64
		for _, name := range BucketNames() {
			s += cp.Buckets[name]
		}
		if s != cp.Cycles {
			return fmt.Errorf("prof: %s core %d: buckets sum to %d, cycles %d", p.Label, cp.Core, s, cp.Cycles)
		}
		coreSum += cp.Cycles
		bucketSum += s
	}
	if coreSum != p.CoreCycles {
		return fmt.Errorf("prof: %s: per-core cycles sum to %d, core_cycles %d", p.Label, coreSum, p.CoreCycles)
	}
	var total int64
	for _, name := range BucketNames() {
		total += p.Buckets[name]
	}
	if total != bucketSum {
		return fmt.Errorf("prof: %s: summed buckets %d, per-core buckets %d", p.Label, total, bucketSum)
	}
	return nil
}

// BucketNames returns every bucket's JSON name in declaration order.
func BucketNames() []string {
	out := make([]string, NumBuckets)
	for i := range out {
		out[i] = Bucket(i).String()
	}
	return out
}

// WriteDoc writes the document as indented JSON with a trailing newline.
func WriteDoc(w io.Writer, doc Doc) error {
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// ReadDoc parses a profile document and verifies its schema tag.
func ReadDoc(r io.Reader) (Doc, error) {
	var doc Doc
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return doc, err
	}
	if doc.Schema != Schema {
		return doc, fmt.Errorf("prof: unexpected schema %q (want %q)", doc.Schema, Schema)
	}
	return doc, nil
}

// pct formats v as a percentage of total.
func pct(v, total int64) string {
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(v)/float64(total))
}

// Text renders the profile as aligned tables: the bucket breakdown with
// per-core columns, the contention heatmap, and the re-execution records.
func (p *Profile) Text() string {
	out := fmt.Sprintf("profile: %s (%s, %d run(s), %d aborted)\n", p.Label, p.Paradigm, p.Runs, p.AbortedRuns)
	out += fmt.Sprintf("total cycles (makespan): %d   attributed core cycles: %d\n\n", p.TotalCycles, p.CoreCycles)

	var t stats.Table
	header := []string{"bucket", "cycles", "share"}
	for i := range p.Cores {
		header = append(header, fmt.Sprintf("core%d", p.Cores[i].Core))
	}
	t.Add(header...)
	for _, name := range BucketNames() {
		if p.Buckets[name] == 0 {
			continue
		}
		row := []string{name, fmt.Sprint(p.Buckets[name]), pct(p.Buckets[name], p.CoreCycles)}
		for i := range p.Cores {
			row = append(row, fmt.Sprint(p.Cores[i].Buckets[name]))
		}
		t.Add(row...)
	}
	totalRow := []string{"total", fmt.Sprint(p.CoreCycles), pct(p.CoreCycles, p.CoreCycles)}
	for i := range p.Cores {
		totalRow = append(totalRow, fmt.Sprint(p.Cores[i].Cycles))
	}
	t.Add(totalRow...)
	out += t.String()

	if len(p.HotLines) > 0 {
		var h stats.Table
		h.Add("line", "conflicts", "overflows", "peer xfers", "access cyc", "wasted cyc")
		for i := range p.HotLines {
			l := &p.HotLines[i]
			h.AddF(l.Addr, l.Conflicts, l.Overflows, l.PeerTransfers, l.AccessCycles, l.WastedCycles)
		}
		out += "\ncontention heatmap (top lines):\n" + h.String()
	}

	if len(p.ReexecutedTxs) > 0 {
		var r stats.Table
		r.Add("vid", "aborted attempts", "wasted cycles")
		for i := range p.ReexecutedTxs {
			tx := &p.ReexecutedTxs[i]
			r.AddF(tx.VID, tx.AbortedAttempts, tx.WastedCycles)
		}
		out += "\nre-executed transactions:\n" + r.String()
	}
	return out
}

// WriteFolded writes the document's per-core bucket attribution in folded
// stack format ("frame;frame value" lines), directly consumable by standard
// flamegraph tooling. Stacks are label;coreN;bucket.
func WriteFolded(w io.Writer, doc Doc) error {
	for i := range doc.Profiles {
		p := &doc.Profiles[i]
		for j := range p.Cores {
			cp := &p.Cores[j]
			for _, name := range BucketNames() {
				if v := cp.Buckets[name]; v != 0 {
					if _, err := fmt.Fprintf(w, "%s;core%d;%s %d\n", p.Label, cp.Core, name, v); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// DiffText renders a per-bucket comparison of two profiles: cycles, deltas,
// and each bucket's share of its profile's attributed cycles, making
// attribution shifts (e.g. SMTX validation overhead vs HMTX commit cycles)
// directly visible.
func DiffText(a, b *Profile) string {
	out := fmt.Sprintf("diff: %s -> %s\n", a.Label, b.Label)
	out += fmt.Sprintf("total cycles: %d -> %d (%+d)   attributed: %d -> %d\n\n",
		a.TotalCycles, b.TotalCycles, b.TotalCycles-a.TotalCycles, a.CoreCycles, b.CoreCycles)
	var t stats.Table
	t.Add("bucket", "old cycles", "new cycles", "delta", "old share", "new share")
	for _, name := range BucketNames() {
		ov, nv := a.Buckets[name], b.Buckets[name]
		if ov == 0 && nv == 0 {
			continue
		}
		t.Add(name, fmt.Sprint(ov), fmt.Sprint(nv), fmt.Sprintf("%+d", nv-ov),
			pct(ov, a.CoreCycles), pct(nv, b.CoreCycles))
	}
	t.Add("total", fmt.Sprint(a.CoreCycles), fmt.Sprint(b.CoreCycles),
		fmt.Sprintf("%+d", b.CoreCycles-a.CoreCycles), "100.0%", "100.0%")
	return out + t.String()
}
