package prof_test

import (
	"bytes"
	"strings"
	"testing"

	"hmtx/internal/prof"
)

func TestBucketNames(t *testing.T) {
	names := prof.BucketNames()
	if len(names) != int(prof.NumBuckets) {
		t.Fatalf("BucketNames returned %d names for %d buckets", len(names), prof.NumBuckets)
	}
	seen := map[string]bool{}
	for i, b := range prof.Buckets() {
		n := b.String()
		if n != names[i] {
			t.Errorf("bucket %d: String %q != BucketNames[%d] %q", i, n, i, names[i])
		}
		if seen[n] {
			t.Errorf("duplicate bucket name %q", n)
		}
		seen[n] = true
		if strings.ContainsAny(n, " ;") {
			t.Errorf("bucket name %q not folded-stack safe", n)
		}
	}
	if got := prof.Bucket(200).String(); got != "bucket(200)" {
		t.Errorf("out-of-range bucket String = %q", got)
	}
}

func TestNilCollectorDisabled(t *testing.T) {
	var c *prof.Collector
	if c.Enabled() {
		t.Fatal("nil collector reports Enabled")
	}
}

// TestFoldingAndInvariant drives the collector by hand through an aborted run
// followed by a clean one and checks the fold: charges for uncommitted
// sequence numbers land in the wasted bucket, the per-VID record and the
// heatmap's wasted column; everything else keeps its provisional bucket. The
// snapshot must satisfy the partition invariant.
func TestFoldingAndInvariant(t *testing.T) {
	c := prof.New()
	if !c.Enabled() {
		t.Fatal("fresh collector not enabled")
	}

	// Run 1: core 0 commits seq 1 then works on seq 2; core 1 works on
	// seq 2 too. The run aborts with lastCommitted = 1.
	c.Charge(0, 1, prof.Compute, 10)
	c.Charge(0, 1, prof.Commit, 5)
	c.ChargeLine(0, 2, prof.Mem, 40, 0x1000)
	c.LineConflict(0x1000)
	c.Charge(1, 2, prof.CommitStall, 7)
	c.ChargeLine(1, 0, prof.L1, 3, 0x2000)
	c.Charge(1, 0, prof.Abort, 2)
	c.CoreDone(0, 55)
	c.CoreDone(1, 12)
	c.RunEnd(55, true, 1)

	// Run 2: seq 2 re-executes and the run completes.
	c.Charge(0, 2, prof.Compute, 20)
	c.CoreDone(0, 20)
	c.RunEnd(20, false, 2)

	p := c.Snapshot("wl", "hmtx", "DOALL", 0)
	if err := p.CheckInvariant(); err != nil {
		t.Fatalf("invariant: %v", err)
	}
	if p.Runs != 2 || p.AbortedRuns != 1 {
		t.Errorf("runs = %d/%d aborted, want 2/1", p.Runs, p.AbortedRuns)
	}
	if p.TotalCycles != 75 || p.CoreCycles != 87 {
		t.Errorf("total/core cycles = %d/%d, want 75/87", p.TotalCycles, p.CoreCycles)
	}
	want := map[string]int64{
		"compute": 30, "commit": 5, "mem": 0, "wasted": 47,
		"l1": 3, "abort": 2, "commit_stall": 0,
	}
	for name, v := range want {
		if got := p.Buckets[name]; got != v {
			t.Errorf("bucket %s = %d, want %d", name, got, v)
		}
	}

	if len(p.ReexecutedTxs) != 1 {
		t.Fatalf("reexecuted txs = %+v, want one record", p.ReexecutedTxs)
	}
	tx := p.ReexecutedTxs[0]
	if tx.VID != 2 || tx.AbortedAttempts != 1 || tx.WastedCycles != 47 {
		t.Errorf("tx record = %+v, want vid 2, 1 attempt, 47 wasted", tx)
	}

	if len(p.HotLines) != 1 {
		t.Fatalf("hot lines = %+v, want only the conflicted line", p.HotLines)
	}
	l := p.HotLines[0]
	if l.Addr != "0x1000" || l.Conflicts != 1 || l.WastedCycles != 40 || l.AccessCycles != 0 {
		t.Errorf("hot line = %+v, want 0x1000 with 1 conflict, 40 wasted, 0 access", l)
	}
}

func TestCoreDonePanicsOnGap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CoreDone did not panic on an attribution gap")
		}
	}()
	c := prof.New()
	c.Charge(0, 0, prof.Compute, 5)
	c.CoreDone(0, 6)
}

func TestChargePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Charge did not panic on negative cycles")
		}
	}()
	prof.New().Charge(0, 0, prof.Compute, -1)
}

func sampleDoc() prof.Doc {
	c := prof.New()
	c.Charge(0, 1, prof.Compute, 10)
	c.ChargeLine(1, 1, prof.Peer, 8, 0xabc0)
	c.LinePeer(0xabc0)
	c.CoreDone(0, 10)
	c.CoreDone(1, 8)
	c.RunEnd(10, false, 1)
	return prof.Doc{
		Schema:   prof.Schema,
		Scale:    1,
		Cores:    2,
		Profiles: []prof.Profile{c.Snapshot("wl", "hmtx", "DSWP", 0)},
	}
}

func TestDocRoundTripAndDeterminism(t *testing.T) {
	var a, b bytes.Buffer
	if err := prof.WriteDoc(&a, sampleDoc()); err != nil {
		t.Fatal(err)
	}
	if err := prof.WriteDoc(&b, sampleDoc()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two identical collections serialized differently")
	}
	doc, err := prof.ReadDoc(&a)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Profiles) != 1 || doc.Profiles[0].Label != "wl/hmtx" {
		t.Fatalf("round trip lost data: %+v", doc)
	}
	if err := doc.Profiles[0].CheckInvariant(); err != nil {
		t.Fatalf("invariant after round trip: %v", err)
	}

	bad := strings.NewReader(`{"schema":"hmtx-prof/v999","profiles":[]}`)
	if _, err := prof.ReadDoc(bad); err == nil {
		t.Fatal("ReadDoc accepted a wrong schema tag")
	}
}

func TestWriteFolded(t *testing.T) {
	var buf bytes.Buffer
	if err := prof.WriteFolded(&buf, sampleDoc()); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "wl/hmtx;core0;compute 10\nwl/hmtx;core1;peer 8\n"
	if got != want {
		t.Errorf("folded output:\n%q\nwant:\n%q", got, want)
	}
}

func TestTextAndDiff(t *testing.T) {
	doc := sampleDoc()
	txt := doc.Profiles[0].Text()
	for _, frag := range []string{"wl/hmtx", "compute", "peer", "contention heatmap", "0xabc0"} {
		if !strings.Contains(txt, frag) {
			t.Errorf("Text() missing %q:\n%s", frag, txt)
		}
	}

	other := sampleDoc().Profiles[0]
	other.Label = "wl/smtx"
	other.Buckets["validation"] = 100
	other.Buckets["compute"] = 12
	other.CoreCycles += 102
	d := prof.DiffText(&doc.Profiles[0], &other)
	for _, frag := range []string{"wl/hmtx -> wl/smtx", "validation", "+100", "+2"} {
		if !strings.Contains(d, frag) {
			t.Errorf("DiffText missing %q:\n%s", frag, d)
		}
	}
}

// TestHeatmapTieOrder pins the heatmap's secondary sort key: lines with
// identical conflict, wasted-cycle and peer-transfer counts order by numeric
// address, ascending. The insertion order here is deliberately descending and
// includes 0x900 vs 0x1000, which lexical comparison of the formatted hex
// strings would invert ("0x900" > "0x1000").
func TestHeatmapTieOrder(t *testing.T) {
	c := prof.New()
	for _, a := range []uint64{0x1000, 0x900, 0x2000, 0x40} {
		c.LineConflict(a)
	}
	c.LineConflict(0x2000) // hotter: must sort first despite mid-range address
	p := c.Snapshot("wl", "hmtx", "DOALL", 0)
	want := []string{"0x2000", "0x40", "0x900", "0x1000"}
	if len(p.HotLines) != len(want) {
		t.Fatalf("got %d hot lines, want %d", len(p.HotLines), len(want))
	}
	for i, w := range want {
		if p.HotLines[i].Addr != w {
			t.Errorf("hot_lines[%d] = %s, want %s", i, p.HotLines[i].Addr, w)
		}
	}
}
