package prof

import "fmt"

// Checkpoint support (hmtx-ckpt/v1, DESIGN.md §18). A collector is
// checkpointed only at run boundaries, after RunEnd has folded the run's
// pending charges: the pend slices are empty, so the serialisable state is
// exactly the folded accumulators plus the first-touch key orders that make
// snapshots deterministic.

// CoreCkpt is one core's folded accounting.
type CoreCkpt struct {
	Buckets []int64 `json:"buckets"`
	Cycles  int64   `json:"cycles"`
}

// LineCkpt is one heatmap entry; the address lives in the surrounding
// Ckpt.LineAddrs slice, which also preserves first-touch order.
type LineCkpt struct {
	Conflicts    uint64 `json:"conflicts,omitempty"`
	Overflows    uint64 `json:"overflows,omitempty"`
	Peer         uint64 `json:"peer,omitempty"`
	AccessCycles int64  `json:"access_cycles,omitempty"`
	WastedCycles int64  `json:"wasted_cycles,omitempty"`
}

// TxCkpt is one per-VID re-execution record, index-aligned with Ckpt.TxSeqs.
type TxCkpt struct {
	Attempts int   `json:"attempts,omitempty"`
	Wasted   int64 `json:"wasted,omitempty"`
}

// Ckpt is the profiler section of an hmtx-ckpt/v1 checkpoint. Lines and Txs
// are index-aligned with LineAddrs and TxSeqs, whose order is first-touch
// order — restoring it exactly keeps every post-resume snapshot
// byte-identical to the uninterrupted run's.
type Ckpt struct {
	Cores       []CoreCkpt `json:"cores"`
	LineAddrs   []uint64   `json:"line_addrs,omitempty"`
	Lines       []LineCkpt `json:"lines,omitempty"`
	TxSeqs      []uint64   `json:"tx_seqs,omitempty"`
	Txs         []TxCkpt   `json:"txs,omitempty"`
	TotalCycles int64      `json:"total_cycles"`
	Runs        int        `json:"runs"`
	AbortedRuns int        `json:"aborted_runs,omitempty"`
	Live        []int64    `json:"live"`
}

// CaptureCkpt snapshots the collector at a run boundary. It panics if a run
// is in flight (pending charges exist): mid-run profiler state folds only
// once the run's outcome is known, so it is deliberately not serializable.
func (c *Collector) CaptureCkpt() Ckpt {
	ck := Ckpt{
		TotalCycles: c.totalCycles,
		Runs:        c.runs,
		AbortedRuns: c.abortedRuns,
		Live:        append([]int64(nil), c.live[:]...),
	}
	for i := range c.cores {
		cs := &c.cores[i]
		if len(cs.pend) != 0 || cs.runTotal != 0 {
			panic(fmt.Sprintf("prof: CaptureCkpt with pending charges on core %d", i))
		}
		ck.Cores = append(ck.Cores, CoreCkpt{
			Buckets: append([]int64(nil), cs.buckets[:]...),
			Cycles:  cs.cycles,
		})
	}
	for _, addr := range c.lineAddrs {
		l := c.lines[addr]
		ck.LineAddrs = append(ck.LineAddrs, addr)
		ck.Lines = append(ck.Lines, LineCkpt{
			Conflicts:    l.conflicts,
			Overflows:    l.overflows,
			Peer:         l.peer,
			AccessCycles: l.accessCycles,
			WastedCycles: l.wastedCycles,
		})
	}
	for _, seq := range c.txSeqs {
		t := c.txs[seq]
		ck.TxSeqs = append(ck.TxSeqs, seq)
		ck.Txs = append(ck.Txs, TxCkpt{Attempts: t.attempts, Wasted: t.wasted})
	}
	return ck
}

// RestoreCkpt overwrites a fresh collector with checkpointed state. The
// collector must not have accumulated anything yet.
func (c *Collector) RestoreCkpt(ck Ckpt) error {
	if c.runs != 0 || len(c.cores) != 0 || len(c.lineAddrs) != 0 {
		return fmt.Errorf("prof: RestoreCkpt on a non-empty collector")
	}
	if len(ck.Lines) != len(ck.LineAddrs) || len(ck.Txs) != len(ck.TxSeqs) {
		return fmt.Errorf("prof: checkpoint line/tx tables are not index-aligned")
	}
	if len(ck.Live) != int(NumBuckets) {
		return fmt.Errorf("prof: checkpoint has %d live buckets, profiler has %d", len(ck.Live), NumBuckets)
	}
	c.totalCycles = ck.TotalCycles
	c.runs = ck.Runs
	c.abortedRuns = ck.AbortedRuns
	copy(c.live[:], ck.Live)
	for i, cc := range ck.Cores {
		if len(cc.Buckets) != int(NumBuckets) {
			return fmt.Errorf("prof: checkpoint core %d has %d buckets, profiler has %d", i, len(cc.Buckets), NumBuckets)
		}
		cs := c.core(i)
		copy(cs.buckets[:], cc.Buckets)
		cs.cycles = cc.Cycles
	}
	for i, addr := range ck.LineAddrs {
		lc := ck.Lines[i]
		*c.line(addr) = lineStats{
			conflicts:    lc.Conflicts,
			overflows:    lc.Overflows,
			peer:         lc.Peer,
			accessCycles: lc.AccessCycles,
			wastedCycles: lc.WastedCycles,
		}
	}
	for i, seq := range ck.TxSeqs {
		*c.tx(seq) = txRec{attempts: ck.Txs[i].Attempts, wasted: ck.Txs[i].Wasted}
	}
	return nil
}
