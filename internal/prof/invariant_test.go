package prof_test

import (
	"testing"

	"hmtx/internal/engine"
	"hmtx/internal/hmtx"
	"hmtx/internal/obs"
	"hmtx/internal/paradigm"
	"hmtx/internal/prof"
	"hmtx/internal/smtx"
	"hmtx/internal/workloads"
)

func newSys(t *testing.T, cores int) *engine.System {
	t.Helper()
	cfg := engine.DefaultConfig()
	cfg.Mem.Cores = cores
	sys := engine.New(cfg)
	sys.SetProf(prof.New())
	return sys
}

// TestInvariantAcrossWorkloads runs every benchmark kernel under every
// parallel paradigm with profiling enabled and checks the partition
// invariant end to end: the in-sim CoreDone assertion already fires on any
// unattributed clock advance during the runs, and the snapshot must still
// sum exactly afterwards. This is the coverage test for the engine's charge
// sites: a c.time mutation without a matching Charge fails here for whichever
// paradigm exercises it.
func TestInvariantAcrossWorkloads(t *testing.T) {
	kinds := []paradigm.Kind{paradigm.DOALL, paradigm.DOACROSS, paradigm.DSWP, paradigm.PSDSWP}
	for _, spec := range workloads.All() {
		for _, k := range kinds {
			spec, k := spec, k
			t.Run(spec.Name+"/"+k.String(), func(t *testing.T) {
				t.Parallel()
				sys := newSys(t, 4)
				loop := spec.New(1)
				loop.Setup(sys.Mem)
				out := hmtx.Run(sys, loop, k, 4)
				p := sys.Prof().Snapshot(spec.Name, "hmtx", k.String(), 0)
				if err := p.CheckInvariant(); err != nil {
					t.Fatal(err)
				}
				if p.CoreCycles <= 0 {
					t.Fatalf("no cycles attributed (outcome %+v)", out)
				}
				if p.Runs != out.Runs {
					t.Errorf("profile saw %d runs, outcome reports %d", p.Runs, out.Runs)
				}
				if out.Aborts > 0 && p.Buckets["wasted"] == 0 {
					t.Errorf("%d aborts but no wasted cycles attributed", out.Aborts)
				}
			})
		}
	}
}

// TestWastedAgreesWithTimelines cross-checks the profiler's waste attribution
// against the trace-derived transaction timelines. The TxCollector now keeps
// one record per rolled-back attempt (instead of silently dropping open
// records on abort), so the two views must agree exactly: every VID the
// profile lists as re-executed must show the same number of aborted attempts
// in the timelines and vice versa, and the wasted bucket must be nonzero
// exactly when aborted attempts exist.
func TestWastedAgreesWithTimelines(t *testing.T) {
	kinds := []paradigm.Kind{paradigm.DOALL, paradigm.DOACROSS, paradigm.DSWP, paradigm.PSDSWP}
	sawAborts := false
	for _, spec := range workloads.All() {
		for _, k := range kinds {
			spec, k := spec, k
			t.Run(spec.Name+"/"+k.String(), func(t *testing.T) {
				sys := newSys(t, 4)
				tr := obs.NewTracer(obs.CatTxn, 0)
				col := obs.NewTxCollector()
				tr.Attach(col)
				sys.SetTracer(tr)
				loop := spec.New(1)
				loop.Setup(sys.Mem)
				out := hmtx.Run(sys, loop, k, 4)
				p := sys.Prof().Snapshot(spec.Name, "hmtx", k.String(), 0)
				if err := p.CheckInvariant(); err != nil {
					t.Fatal(err)
				}

				timeline := map[uint64]int{}
				for _, a := range col.Aborted() {
					if !a.Aborted {
						t.Fatalf("Aborted() returned a non-aborted record: %+v", a)
					}
					timeline[a.VID]++
				}
				profile := map[uint64]int{}
				for _, tx := range p.ReexecutedTxs {
					profile[tx.VID] = tx.AbortedAttempts
					if tx.WastedCycles <= 0 {
						t.Errorf("vid %d re-executed but wasted %d cycles", tx.VID, tx.WastedCycles)
					}
				}
				for v, n := range profile {
					if timeline[v] != n {
						t.Errorf("vid %d: profile says %d aborted attempts, timelines say %d", v, n, timeline[v])
					}
				}
				for v, n := range timeline {
					if _, ok := profile[v]; !ok {
						t.Errorf("vid %d: %d aborted attempts in timelines but absent from profile", v, n)
					}
				}

				if (p.Buckets["wasted"] > 0) != (len(timeline) > 0) {
					t.Errorf("wasted=%d cycles but %d aborted attempts in timelines",
						p.Buckets["wasted"], len(col.Aborted()))
				}
				if out.Aborts > 0 {
					sawAborts = true
					s := col.Summary()
					if s.AbortedAttempts == 0 {
						t.Error("run aborted but the timeline summary records no aborted attempts")
					}
					if s.RecommittedTxs == 0 {
						t.Error("run aborted and completed, but no transaction is marked recommitted")
					}
				}
			})
		}
	}
	if !sawAborts {
		t.Fatal("no workload aborted; the agreement check never exercised the abort path")
	}
}

// TestValidationShiftHMTXvsSMTX reproduces the paper's central observation in
// profile form (§2.3, §6): SMTX pays software validation cycles that HMTX
// moves into commit hardware. The HMTX profile must attribute zero cycles to
// the validation bucket; the SMTX profile must attribute a nonzero share.
func TestValidationShiftHMTXvsSMTX(t *testing.T) {
	spec, err := workloads.ByName("052.alvinn")
	if err != nil {
		t.Fatal(err)
	}

	hsys := newSys(t, 4)
	hloop := spec.New(1)
	hloop.Setup(hsys.Mem)
	hmtx.Run(hsys, hloop, spec.Paradigm, 4)
	hp := hsys.Prof().Snapshot(spec.Name, "hmtx", spec.Paradigm.String(), 0)

	ssys := newSys(t, 4)
	sloop := spec.New(1)
	sloop.Setup(ssys.Mem)
	smtx.Run(ssys, sloop, spec.Paradigm, 4, smtx.MaxSet, smtx.DefaultConfig())
	sp := ssys.Prof().Snapshot(spec.Name, "smtx-max", spec.Paradigm.String(), 0)

	for _, p := range []*prof.Profile{&hp, &sp} {
		if err := p.CheckInvariant(); err != nil {
			t.Fatal(err)
		}
	}
	if v := hp.Buckets["validation"]; v != 0 {
		t.Errorf("HMTX attributed %d cycles to validation; hardware validation must be free of software cost", v)
	}
	if v := sp.Buckets["validation"]; v == 0 {
		t.Error("SMTX attributed no validation cycles; the software overhead is missing from the profile")
	}
	if hp.Buckets["commit"] == 0 {
		t.Error("HMTX attributed no commit cycles")
	}
}
