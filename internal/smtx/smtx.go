// Package smtx models the software multithreaded-transaction baseline the
// paper compares against (Raman et al. [29], §2.3): worker threads execute
// pipeline stages while a dedicated *commit process* on its own core
// receives, validates and applies every speculative memory access record.
//
// Modelling choice (recorded in DESIGN.md): the workers execute on the same
// speculative memory substrate as HMTX — versioned cache lines stand in for
// SMTX's copy-on-write page versioning, keeping the simulation's data values
// correct — and the *software* overheads that define SMTX's performance are
// charged explicitly on top:
//
//   - every speculative access contributes a validation record that must be
//     shipped to and processed by the commit process (ValidateCost each);
//   - values forwarded from earlier to later pipeline stages pay a per-word
//     software communication cost (ForwardCost);
//   - each transaction pays fixed bookkeeping (IterOverhead);
//   - one core is consumed by the commit process, so only Cores-1 workers
//     remain (§6.2).
//
// With a minimal read/write set (expert manual transformation) the records
// per transaction collapse to MinRecords and SMTX performs as in Figure 2's
// "minimal" bars; with maximal validation every access generates a record
// and the commit process becomes the bottleneck, reproducing the
// "substantial" slowdowns.
package smtx

import (
	"fmt"

	"hmtx/internal/engine"
	"hmtx/internal/hmtx"
	"hmtx/internal/obs"
	"hmtx/internal/paradigm"
	"hmtx/internal/vid"
)

// Mode selects the read/write-set regime of Figure 2.
type Mode int

const (
	// MinSet models expert manual transformation: only a handful of
	// accesses per transaction are validated (§2.3).
	MinSet Mode = iota
	// MaxSet validates every load and store inside the transaction, the
	// regime automatic parallelization requires (§2.2).
	MaxSet
)

func (m Mode) String() string {
	if m == MinSet {
		return "min R/W set"
	}
	return "max R/W set"
}

// Config holds the software cost model of the SMTX runtime.
type Config struct {
	// ValidateCost is the commit process's cycles per validation record
	// (software queue transfer, comparison against committed state,
	// apply) — the dominant overhead the paper measures (§2.3).
	ValidateCost int64
	// ForwardCost is the cycles per word forwarded between pipeline
	// stages through the software queues.
	ForwardCost int64
	// MinRecords is the records per transaction in MinSet mode.
	MinRecords uint64
	// IterOverhead is fixed per-transaction software bookkeeping
	// (version management, queue setup).
	IterOverhead int64
	// MinFactor and MaxFactor are the STM instrumentation slowdowns of
	// the worker stages themselves: every speculative access runs
	// through software read/write barriers, dilating stage execution by
	// a constant factor — modest with expert-minimized sets, heavier
	// with full logging.
	MinFactor, MaxFactor float64
}

// DefaultConfig returns costs representative of a software MTX runtime on
// commodity hardware: low-hundreds of cycles per validated record end to
// end, and 1.3x/1.85x stage dilation from read/write barriers.
func DefaultConfig() Config {
	return Config{
		ValidateCost: 150,
		ForwardCost:  12,
		MinRecords:   4,
		IterOverhead: 150,
		MinFactor:    1.30,
		MaxFactor:    1.85,
	}
}

// factor returns the worker-stage dilation for the mode.
func (d *smtxDriver) factor() float64 {
	if d.mode == MinSet {
		return d.cfg.MinFactor
	}
	return d.cfg.MaxFactor
}

// dilate charges the STM instrumentation overhead for a stage that took
// elapsed cycles of native work. Like every software cost of this runtime it
// is charged as validation work, so cycle profiles separate it from the
// loop's own compute.
func (d *smtxDriver) dilate(e *engine.Env, elapsed int64) {
	extra := int64(float64(elapsed) * (d.factor() - 1))
	e.ComputeValidation(extra)
}

const (
	qVIDs = 1  // stage-1 -> stage-2 transaction VIDs
	qRec  = 60 // workers -> commit process validation-record batches
)

const countBits = 20

func encRec(seq vid.Seq, count uint64) uint64 {
	if count >= 1<<countBits {
		count = 1<<countBits - 1
	}
	return uint64(seq)<<countBits | count
}

func decRec(v uint64) (vid.Seq, uint64) {
	return vid.Seq(v >> countBits), v & (1<<countBits - 1)
}

// Run executes the loop under the SMTX model and returns the outcome.
// Early-exiting or misspeculating loops are not supported by this baseline
// (the evaluated benchmarks have neither, §6.3).
func Run(sys *engine.System, loop paradigm.Loop, kind paradigm.Kind, cores int, mode Mode, cfg Config) hmtx.Outcome {
	if cores < 3 {
		panic("smtx: need at least 3 cores (workers + commit process)")
	}
	d := &smtxDriver{sys: sys, loop: loop, kind: kind, cores: cores, mode: mode, cfg: cfg}
	var progs []engine.Program
	switch kind {
	case paradigm.DSWP, paradigm.PSDSWP:
		progs = append(progs, d.stage1Prog())
		n := 1
		if kind == paradigm.PSDSWP {
			n = cores - 2
		}
		for w := 0; w < n; w++ {
			progs = append(progs, d.stage2Prog())
		}
	case paradigm.DOALL:
		for w := 0; w < cores-1; w++ {
			progs = append(progs, d.doallProg(w, cores-1))
		}
	default:
		panic(fmt.Sprintf("smtx: unsupported paradigm %v", kind))
	}
	progs = append(progs, d.commitProg(kind))
	res := sys.Run(progs)
	if res.Aborted {
		panic(fmt.Sprintf("smtx: unexpected misspeculation: %s", res.Cause))
	}
	return hmtx.Outcome{
		Cycles:     res.Cycles,
		Iterations: int(res.LastCommitted),
		Runs:       1,
	}
}

type smtxDriver struct {
	sys   *engine.System
	loop  paradigm.Loop
	kind  paradigm.Kind
	cores int
	mode  Mode
	cfg   Config
}

// records converts an access count into the validation records actually
// shipped to the commit process under the current mode.
func (d *smtxDriver) records(accesses uint64) uint64 {
	if d.mode == MinSet {
		return d.cfg.MinRecords
	}
	return accesses
}

func (d *smtxDriver) stage1Prog() engine.Program {
	return func(e *engine.Env) {
		lastSeq := vid.Seq(0)
		for it := 0; it < d.loop.Iters(); it++ {
			seq := vid.Seq(it + 1)
			t0 := e.Now()
			e.Begin(seq)
			cont := d.loop.Stage1(e, it)
			n := e.SpecAccessCount()
			e.Begin(0)
			d.dilate(e, e.Now()-t0)
			e.ComputeValidation(d.cfg.IterOverhead)
			e.Produce(qRec, encRec(seq, d.records(n)))
			e.Produce(qVIDs, uint64(seq))
			lastSeq = seq
			if !cont {
				break
			}
		}
		e.CloseQueue(qVIDs)
		// Sentinel: tell the commit process the final transaction.
		e.Produce(qRec, encRec(0, uint64(lastSeq)))
	}
}

func (d *smtxDriver) stage2Prog() engine.Program {
	return func(e *engine.Env) {
		for {
			v, ok := e.Consume(qVIDs)
			if !ok {
				return
			}
			seq := vid.Seq(v)
			it := int(seq) - 1
			e.Begin(seq)
			before := e.SpecAccessCount() // stage 1's accesses of this tx
			// Uncommitted value forwarding in SMTX is explicit
			// software communication of stage 1's speculative state.
			fwd := before
			if d.mode == MinSet {
				fwd = d.cfg.MinRecords
			}
			e.ComputeValidation(d.cfg.ForwardCost * int64(fwd))
			t0 := e.Now()
			exit := d.loop.Stage2(e, it)
			d.dilate(e, e.Now()-t0)
			after := e.SpecAccessCount()
			e.Begin(0)
			e.ComputeValidation(d.cfg.IterOverhead)
			e.Produce(qRec, encRec(seq, d.records(after-before)))
			if exit {
				panic("smtx: early-exit loops are not supported by the SMTX baseline")
			}
		}
	}
}

func (d *smtxDriver) doallProg(w, workers int) engine.Program {
	return func(e *engine.Env) {
		lastSeq := vid.Seq(0)
		for it := w; it < d.loop.Iters(); it += workers {
			seq := vid.Seq(it + 1)
			t0 := e.Now()
			e.Begin(seq)
			d.loop.Stage1(e, it)
			d.loop.Stage2(e, it)
			n := e.SpecAccessCount()
			e.Begin(0)
			d.dilate(e, e.Now()-t0)
			e.ComputeValidation(d.cfg.IterOverhead)
			e.Produce(qRec, encRec(seq, d.records(n)))
			lastSeq = seq
		}
		if w == (d.loop.Iters()-1)%workers {
			// The worker of the final iteration sends the sentinel.
			e.Produce(qRec, encRec(0, uint64(lastSeq)))
		}
	}
}

// commitProg is the commit process: it owns the non-speculative committed
// state, validates every record against it, and commits transactions in
// original program order (§2.3).
func (d *smtxDriver) commitProg(kind paradigm.Kind) engine.Program {
	msgsNeeded := 2
	if kind == paradigm.DOALL {
		msgsNeeded = 1
	}
	return func(e *engine.Env) {
		type pend struct {
			msgs    int
			records uint64
		}
		pending := make(map[vid.Seq]*pend)
		expected := vid.Seq(1)
		last := vid.Seq(0)
		for {
			if last != 0 && expected > last {
				return
			}
			v, ok := e.Consume(qRec)
			if !ok {
				return
			}
			seq, count := decRec(v)
			if seq == 0 {
				last = vid.Seq(count)
				continue
			}
			p := pending[seq]
			if p == nil {
				p = &pend{}
				pending[seq] = p
			}
			p.msgs++
			p.records += count
			for {
				p, ok := pending[expected]
				if !ok || p.msgs < msgsNeeded {
					break
				}
				// Validate and apply every record serially. The span
				// brackets the commit process's serial validation so
				// traces show the §2.3 bottleneck directly.
				e.Emit(obs.Event{Kind: obs.KSpanBegin, VID: uint64(expected), Arg: p.records, Note: "smtx.validate"})
				e.ComputeValidation(d.cfg.ValidateCost * int64(p.records))
				e.Commit(expected)
				e.Emit(obs.Event{Kind: obs.KSpanEnd, VID: uint64(expected), Arg: p.records, Note: "smtx.validate"})
				delete(pending, expected)
				expected++
			}
		}
	}
}
