package smtx

import (
	"testing"

	"hmtx/internal/engine"
	"hmtx/internal/hmtx"
	"hmtx/internal/memsys"
	"hmtx/internal/paradigm"
)

// chainLoop walks a pointer chain (stage 1) and accumulates node values with
// some work per node (stage 2); the accumulator and cursor live in simulated
// memory.
type chainLoop struct {
	n    int
	work int64
}

const (
	base     = memsys.Addr(0x40000)
	cursor   = memsys.Addr(0x500)
	produced = memsys.Addr(0x580)
	sum      = memsys.Addr(0x600)
)

func (l *chainLoop) Name() string { return "chain" }
func (l *chainLoop) Iters() int   { return l.n }
func (l *chainLoop) Setup(h *memsys.Hierarchy) {
	for i := 0; i < l.n; i++ {
		node := base + memsys.Addr(i)*memsys.LineSize
		h.PokeWord(node, uint64(2*i+1))
		next := node + memsys.LineSize
		if i == l.n-1 {
			next = 0
		}
		h.PokeWord(node+8, next)
	}
	h.PokeWord(cursor, uint64(base))
}
func (l *chainLoop) Stage1(e *engine.Env, it int) bool {
	node := e.Load(cursor)
	e.Store(produced, node)
	next := e.Load(memsys.Addr(node) + 8)
	e.Store(cursor, next)
	return next != 0
}
func (l *chainLoop) Stage2(e *engine.Env, it int) bool {
	node := e.Load(produced)
	val := e.Load(memsys.Addr(node))
	// Touch a per-iteration scratch region: this is the "read/write set"
	// that SMTX must validate.
	scratch := memsys.Addr(0x80000) + memsys.Addr(it)*memsys.LineSize*8
	for j := memsys.Addr(0); j < 8; j++ {
		e.Store(scratch+j*memsys.LineSize, val+uint64(j))
	}
	e.Compute(l.work)
	s := e.Load(sum)
	e.Store(sum, s+val)
	return false
}

func run(t *testing.T, loop *chainLoop, kind paradigm.Kind, mode Mode) (int64, uint64) {
	t.Helper()
	cfg := engine.DefaultConfig()
	sys := engine.New(cfg)
	loop.Setup(sys.Mem)
	out := Run(sys, loop, kind, 4, mode, DefaultConfig())
	return out.Cycles, sys.Mem.PeekWord(sum)
}

func wantSum(n int) uint64 {
	s := uint64(0)
	for i := 0; i < n; i++ {
		s += uint64(2*i + 1)
	}
	return s
}

func TestSMTXCorrectness(t *testing.T) {
	loop := &chainLoop{n: 40, work: 500}
	for _, mode := range []Mode{MinSet, MaxSet} {
		for _, kind := range []paradigm.Kind{paradigm.DSWP, paradigm.PSDSWP} {
			_, got := run(t, loop, kind, mode)
			if got != wantSum(40) {
				t.Errorf("%v/%v sum = %d, want %d", kind, mode, got, wantSum(40))
			}
		}
	}
}

func TestSMTXValidationOverheadHurts(t *testing.T) {
	loop := &chainLoop{n: 60, work: 300}
	minCycles, _ := run(t, loop, paradigm.PSDSWP, MinSet)
	maxCycles, _ := run(t, loop, paradigm.PSDSWP, MaxSet)
	if maxCycles <= minCycles {
		t.Fatalf("max R/W set (%d cycles) should be slower than min (%d)", maxCycles, minCycles)
	}
}

// TestSMTXVsHMTXShape reproduces the paper's core claim on a microbenchmark:
// with maximal validation, HMTX beats SMTX by a wide margin because SMTX's
// commit process serialises validation (Figure 8).
func TestSMTXVsHMTXShape(t *testing.T) {
	loop := &chainLoop{n: 60, work: 300}
	cfg := engine.DefaultConfig()

	seqSys := engine.New(cfg)
	loop.Setup(seqSys.Mem)
	seq := paradigm.RunSequential(seqSys, loop)

	hmtxSys := engine.New(cfg)
	loop.Setup(hmtxSys.Mem)
	hOut := hmtx.Run(hmtxSys, loop, paradigm.PSDSWP, 4)

	smtxSys := engine.New(cfg)
	loop.Setup(smtxSys.Mem)
	sOut := Run(smtxSys, loop, paradigm.PSDSWP, 4, MaxSet, DefaultConfig())

	hSpeed := float64(seq) / float64(hOut.Cycles)
	sSpeed := float64(seq) / float64(sOut.Cycles)
	t.Logf("sequential=%d HMTX=%d (%.2fx) SMTX-max=%d (%.2fx)", seq, hOut.Cycles, hSpeed, sOut.Cycles, sSpeed)
	if hSpeed <= sSpeed {
		t.Fatalf("HMTX (%.2fx) should outperform SMTX with max validation (%.2fx)", hSpeed, sSpeed)
	}
}

func TestSMTXDOALL(t *testing.T) {
	cfg := engine.DefaultConfig()
	sys := engine.New(cfg)
	loop := &chainLoop{n: 30, work: 200}
	loop.Setup(sys.Mem)
	// DOALL over the chain loop is incorrect in general (loop-carried
	// cursor), so use a dedicated independent-iteration loop.
	ind := &indLoop{n: 30}
	ind.Setup(sys.Mem)
	out := Run(sys, ind, paradigm.DOALL, 4, MaxSet, DefaultConfig())
	if out.Iterations != 30 {
		t.Fatalf("iterations = %d, want 30", out.Iterations)
	}
	for i := 0; i < 30; i++ {
		if got := sys.Mem.PeekWord(0xC0000 + memsys.Addr(i)*memsys.LineSize); got != uint64(i*i) {
			t.Fatalf("out[%d] = %d, want %d", i, got, i*i)
		}
	}
}

type indLoop struct{ n int }

func (l *indLoop) Name() string { return "ind" }
func (l *indLoop) Iters() int   { return l.n }
func (l *indLoop) Setup(h *memsys.Hierarchy) {
	for i := 0; i < l.n; i++ {
		h.PokeWord(0xB0000+memsys.Addr(i)*memsys.LineSize, uint64(i))
	}
}
func (l *indLoop) Stage1(e *engine.Env, it int) bool { return it+1 < l.n }
func (l *indLoop) Stage2(e *engine.Env, it int) bool {
	v := e.Load(0xB0000 + memsys.Addr(it)*memsys.LineSize)
	e.Compute(100)
	e.Store(0xC0000+memsys.Addr(it)*memsys.LineSize, v*v)
	return false
}
