// Package ckpt implements the versioned hmtx-ckpt/v1 checkpoint format
// (DESIGN.md §18): a byte-deterministic serialization of full simulation
// state that supports exact resume — a run halted at a checkpoint and
// resumed produces byte-identical output documents to the same run left
// uninterrupted — and time-travel inspection via cmd/hmtxdbg.
//
// A checkpoint document has one of three kinds:
//
//   - "run": one hmtxsim-style execution, captured at an iteration-segment
//     boundary of the hmtx driver (engine quiescent). Holds the engine
//     configuration, the exact memory-hierarchy encoding
//     (memsys.AppendExact), the persistent engine state (engine.Ckpt,
//     including the RNG draw position), the partial driver outcome, and the
//     live state of every attached instrument (profiler, time-series
//     sampler, conflict recorder, latency histograms).
//   - "experiments": a partially completed experiment suite, captured
//     between (benchmark, mode) units. Holds the suite configuration, the
//     completed unit keys and the partial results.
//   - "check": a model-checker counterexample (hmtxcheck -emit-ckpt): the
//     checker configuration, the shortest failing stimulus trace and the
//     exact encoding of the final (violating) hierarchy state, openable by
//     hmtxdbg for step-through inspection.
//
// What is NOT checkpointed, by design: goroutine stacks (capture happens
// only at quiescent boundaries, where none are live), paradigm host state
// (the paradigm.Loop contract keeps all mutable loop state in simulated
// memory, so a restored memory image is a restored loop), and the event
// tracer (a resumed run with -trace yields the tail of the trace only, on
// a per-engine-run clock). The obs registry's counters and scalars read
// live engine/memory state and need no capture of their own; its
// histograms record at observation time and are carried in ObsHists, so
// -stats-json is resume-stable alongside bench, prof, series, conflicts
// and hist.
package ckpt

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"hmtx/internal/check"
	"hmtx/internal/engine"
	"hmtx/internal/experiments"
	"hmtx/internal/hmtx"
	"hmtx/internal/metrics"
	"hmtx/internal/obs"
	"hmtx/internal/prof"
)

// Schema is the checkpoint document's schema tag. The version is bumped on
// any incompatible layout change; readers reject unknown schemas rather
// than guessing (compat rule: a vN reader reads vN only).
const Schema = "hmtx-ckpt/v1"

// The checkpoint kinds.
const (
	KindRun         = "run"
	KindExperiments = "experiments"
	KindCheck       = "check"
)

// Doc is one hmtx-ckpt/v1 document. Exactly one kind section is non-nil,
// matching Kind.
type Doc struct {
	Schema      string            `json:"schema"`
	Kind        string            `json:"kind"`
	Run         *RunState         `json:"run,omitempty"`
	Experiments *ExperimentsState `json:"experiments,omitempty"`
	Check       *CheckState       `json:"check,omitempty"`
}

// RunState is the "run" kind: one benchmark execution captured at an
// iteration-segment boundary.
type RunState struct {
	// Bench through Every identify the run so a resume can verify it is
	// continuing the same experiment it thinks it is.
	Bench    string `json:"bench"`
	System   string `json:"system"`
	Paradigm string `json:"paradigm"`
	Cores    int    `json:"cores"`
	Scale    int    `json:"scale"`
	// Every is the iteration-segment length the run was captured under.
	// Segmentation perturbs pipeline fill/drain timing, so byte-identity
	// holds between runs with equal Every; a resume always continues with
	// the checkpoint's own Every.
	Every int `json:"every"`

	// EngineCfg rebuilds the machine; geometry is additionally validated
	// against the memory image's own header on restore.
	EngineCfg engine.Config `json:"engine_config"`

	// NextIt is the next loop iteration to execute; Partial accumulates
	// the driver outcome of the pre-checkpoint half.
	NextIt  int          `json:"next_it"`
	Partial hmtx.Outcome `json:"partial"`

	// Engine is the persistent engine state; Mem is the exact
	// memory-hierarchy encoding (memsys.AppendExact), hex-encoded.
	Engine engine.Ckpt `json:"engine"`
	Mem    string      `json:"mem"`

	// Instrument state; nil when the corresponding instrument was not
	// attached. A resume must attach exactly the same instruments.
	Prof      *prof.Ckpt            `json:"prof,omitempty"`
	Series    *metrics.SamplerCkpt  `json:"series,omitempty"`
	Conflicts *metrics.RecorderCkpt `json:"conflicts,omitempty"`
	Hists     *metrics.LatHistsCkpt `json:"hists,omitempty"`

	// ObsHists is the statistics-registry histogram state (engine/... and
	// memsys/... keys), present when a registry was attached (-stats or
	// -stats-json). Counters and scalars in the registry read live engine
	// and memory state, so only the histograms carry recording-time state of
	// their own. Restored by RestoreObsHists after the resumed run
	// re-registers; like the instruments, a resume must attach the registry
	// exactly when the checkpoint did.
	ObsHists map[string]obs.HistCkpt `json:"obs_hists,omitempty"`
}

// ExperimentsState is the "experiments" kind: a partially completed suite,
// captured at (benchmark, mode) unit granularity. Unit boundaries do not
// perturb simulated timing — every unit owns its engine — so a resumed
// suite's documents are byte-identical to an uninterrupted run's.
type ExperimentsState struct {
	Config experiments.Config    `json:"config"`
	State  experiments.CkptState `json:"state"`
}

// CheckState is the "check" kind: a model-checker counterexample with the
// exact final hierarchy state, the debugger's entry point for protocol
// violations.
type CheckState struct {
	Config         check.Config          `json:"config"`
	Counterexample *check.Counterexample `json:"counterexample,omitempty"`
	// FinalState is the exact encoding (memsys.AppendExact, hex) of the
	// hierarchy after the last replayed step — for a violation, the state
	// the failing stimulus produced.
	FinalState string `json:"final_state,omitempty"`
}

// CaptureRun completes a run checkpoint: the caller fills the identity and
// driver fields of rs (Bench..Every, NextIt, Partial); CaptureRun adds the
// engine, memory and instrument state from sys. The engine must be
// quiescent (between Run calls).
func CaptureRun(sys *engine.System, rs RunState) *Doc {
	rs.Engine = sys.CaptureCkpt()
	rs.Mem = hex.EncodeToString(sys.Mem.AppendExact(nil))
	if sys.Prof().Enabled() {
		ck := sys.Prof().CaptureCkpt()
		rs.Prof = &ck
	}
	if sys.Series().Enabled() {
		ck := sys.Series().CaptureCkpt()
		rs.Series = &ck
	}
	if sys.Conflicts().Enabled() {
		ck := sys.Conflicts().CaptureCkpt()
		rs.Conflicts = &ck
	}
	if sys.LatHists().Enabled() {
		ck := sys.LatHists().CaptureCkpt()
		rs.Hists = &ck
	}
	oh := map[string]obs.HistCkpt{}
	sys.AddObsHistCkpts("engine/", oh)
	sys.Mem.AddObsHistCkpts("memsys/", oh)
	if len(oh) > 0 {
		rs.ObsHists = oh
	}
	return &Doc{Schema: Schema, Kind: KindRun, Run: &rs}
}

// RestoreObsHists restores the statistics-registry histogram state onto a
// system rebuilt by RestoreRun. It must run after the caller re-registers
// the system (engine Register + memsys Register), because the histograms
// only exist while registered; RestoreRun itself cannot do this — the
// registry belongs to the driver, not the machine.
func RestoreObsHists(sys *engine.System, rs *RunState) error {
	if rs.ObsHists == nil {
		return nil
	}
	if err := sys.RestoreObsHistCkpts("engine/", rs.ObsHists); err != nil {
		return err
	}
	return sys.Mem.RestoreObsHistCkpts("memsys/", rs.ObsHists)
}

// RestoreRun rebuilds a simulation from a run checkpoint: a fresh system
// under the checkpointed configuration, with the same instruments attached
// and every piece of state — memory, engine, instruments — restored. The
// returned system is ready for hmtx.RunOpts with Options{Every:
// doc.Run.Every, Partial: doc.Run.Partial}.
func RestoreRun(doc *Doc) (*engine.System, error) {
	if doc.Kind != KindRun || doc.Run == nil {
		return nil, fmt.Errorf("ckpt: not a run checkpoint (kind %q)", doc.Kind)
	}
	rs := doc.Run
	sys := engine.New(rs.EngineCfg)

	// Instruments first: the sampler's probes must exist before its rows
	// are restored, and SetSeries reads the profiler.
	if rs.Prof != nil {
		p := prof.New()
		if err := p.RestoreCkpt(*rs.Prof); err != nil {
			return nil, err
		}
		sys.SetProf(p)
	}
	if rs.Series != nil {
		sm := metrics.NewSampler(rs.Series.Window)
		sys.SetSeries(sm) // registers the standard probe set
		if err := sm.RestoreCkpt(*rs.Series); err != nil {
			return nil, err
		}
	}
	if rs.Conflicts != nil {
		rec := metrics.NewRecorder(rs.Conflicts.Window)
		if err := rec.RestoreCkpt(*rs.Conflicts); err != nil {
			return nil, err
		}
		sys.SetConflicts(rec)
	}
	if rs.Hists != nil {
		lh := metrics.NewLatHists()
		if err := lh.RestoreCkpt(*rs.Hists); err != nil {
			return nil, err
		}
		sys.SetLatHists(lh)
	}

	if err := sys.RestoreCkpt(rs.Engine); err != nil {
		return nil, err
	}
	enc, err := hex.DecodeString(rs.Mem)
	if err != nil {
		return nil, fmt.Errorf("ckpt: corrupt memory encoding: %v", err)
	}
	if err := sys.Mem.RestoreExact(enc); err != nil {
		return nil, err
	}
	return sys, nil
}

// Write serialises the document as deterministic indented JSON.
func Write(w io.Writer, doc *Doc) error {
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(buf, '\n'))
	return err
}

// WriteFile writes the document to path.
func WriteFile(path string, doc *Doc) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read parses and validates a checkpoint document.
func Read(r io.Reader) (*Doc, error) {
	var doc Doc
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("ckpt: %v", err)
	}
	if doc.Schema != Schema {
		return nil, fmt.Errorf("ckpt: schema %q is not %q", doc.Schema, Schema)
	}
	switch doc.Kind {
	case KindRun:
		if doc.Run == nil {
			return nil, fmt.Errorf("ckpt: run checkpoint without a run section")
		}
	case KindExperiments:
		if doc.Experiments == nil {
			return nil, fmt.Errorf("ckpt: experiments checkpoint without an experiments section")
		}
	case KindCheck:
		if doc.Check == nil {
			return nil, fmt.Errorf("ckpt: check checkpoint without a check section")
		}
	default:
		return nil, fmt.Errorf("ckpt: unknown checkpoint kind %q", doc.Kind)
	}
	return &doc, nil
}

// ReadFile reads the document at path.
func ReadFile(path string) (*Doc, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	doc, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}
