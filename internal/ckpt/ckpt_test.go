package ckpt

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"hmtx/internal/engine"
	"hmtx/internal/hmtx"
	"hmtx/internal/memsys"
	"hmtx/internal/metrics"
	"hmtx/internal/paradigm"
	"hmtx/internal/prof"
)

// listLoop is the Figure 3 linked-list loop of the hmtx driver tests: stage 1
// walks a list through a loop-carried pointer, stage 2 accumulates node
// values. All mutable loop state lives in simulated memory, which is what
// makes a restored memory image a restored loop.
type listLoop struct {
	n        int
	workCost int64
	conflict bool // stage 2 writes a cell stage 1 reads: forces misspeculation
}

const (
	llListBase = memsys.Addr(0x100000)
	llHead     = memsys.Addr(0x700)
	llProduced = memsys.Addr(0x800)
	llSum      = memsys.Addr(0x900)
	llShared   = memsys.Addr(0xA00)
)

func (l *listLoop) Name() string { return "listloop" }
func (l *listLoop) Iters() int   { return l.n }

func (l *listLoop) Setup(h *memsys.Hierarchy) {
	for i := 0; i < l.n; i++ {
		node := llListBase + memsys.Addr(i)*memsys.LineSize
		h.PokeWord(node, uint64(i+1))
		next := node + memsys.LineSize
		if i == l.n-1 {
			next = 0
		}
		h.PokeWord(node+8, next)
	}
	h.PokeWord(llHead, uint64(llListBase))
}

func (l *listLoop) Stage1(e *engine.Env, it int) bool {
	node := e.Load(llHead)
	e.Store(llProduced, node)
	if l.conflict {
		e.Load(llShared)
	}
	next := e.Load(memsys.Addr(node) + 8)
	e.Store(llHead, next)
	e.Branch(1, next != 0)
	return next != 0
}

func (l *listLoop) Stage2(e *engine.Env, it int) bool {
	node := e.Load(llProduced)
	val := e.Load(memsys.Addr(node))
	e.Compute(l.workCost)
	sum := e.Load(llSum)
	e.Store(llSum, sum+val)
	if l.conflict && it%7 == 3 {
		e.Store(llShared, uint64(it))
	}
	e.Branch(2, false)
	return false
}

// gridLoop has independent iterations (DOALL-shaped): iteration i writes a
// function of i into its own line and re-reads it.
type gridLoop struct{ n int }

const glBase = memsys.Addr(0x200000)

func (g *gridLoop) Name() string              { return "gridloop" }
func (g *gridLoop) Iters() int                { return g.n }
func (g *gridLoop) Setup(h *memsys.Hierarchy) { h.PokeWord(glBase, 7) }
func (g *gridLoop) Stage2(e *engine.Env, it int) bool {
	cell := glBase + memsys.Addr(it+1)*memsys.LineSize
	v := e.Load(cell)
	e.Store(cell, v+uint64(it)*3+1)
	e.Branch(3, false)
	return false
}
func (g *gridLoop) Stage1(e *engine.Env, it int) bool {
	e.Compute(50)
	return true
}

// sysState collects everything the byte-identity contract covers: the final
// driver outcome, engine and memory counters, the exact memory encoding, and
// the serialised snapshot of every instrument.
type sysState struct {
	out    hmtx.Outcome
	eng    engine.Stats
	mem    []byte
	fp     uint64
	prof   []byte
	series []byte
	confl  []byte
	hists  []byte
}

func capture(t *testing.T, sys *engine.System, out hmtx.Outcome) sysState {
	t.Helper()
	st := sysState{out: out, eng: *sys.Stats(), mem: sys.Mem.AppendExact(nil)}
	st.fp = sys.Mem.Fingerprint(sys.Mem.Addrs())
	mustJSON := func(v any) []byte {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	sys.FlushSeries()
	p := sys.Prof().Snapshot("bench", "hmtx", "k", 0)
	st.prof = mustJSON(p)
	st.series = mustJSON(sys.Series().Snapshot("l"))
	st.confl = mustJSON(sys.Conflicts().Snapshot("l"))
	st.hists = mustJSON(sys.LatHists().Snapshot("l"))
	return st
}

func newInstrumented(cores int) *engine.System {
	cfg := engine.DefaultConfig()
	cfg.Mem.Cores = cores
	sys := engine.New(cfg)
	sys.SetProf(prof.New())
	sys.SetSeries(metrics.NewSampler(512))
	sys.SetConflicts(metrics.NewRecorder(0))
	sys.SetLatHists(metrics.NewLatHists())
	return sys
}

// TestCheckpointResumeByteIdentical is the resume property across paradigms
// and loop shapes: a run halted at a mid-run checkpoint, serialised through
// JSON, restored and continued is byte-identical — outcome, engine counters,
// exact memory state, canonical fingerprint, and all four instrument
// documents — to the same segmented run left uninterrupted.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	cases := []struct {
		name string
		loop func() paradigm.Loop
		kind paradigm.Kind
	}{
		{"dswp", func() paradigm.Loop { return &listLoop{n: 40, workCost: 300} }, paradigm.DSWP},
		{"psdswp", func() paradigm.Loop { return &listLoop{n: 40, workCost: 800} }, paradigm.PSDSWP},
		{"doacross", func() paradigm.Loop { return &listLoop{n: 36, workCost: 400} }, paradigm.DOACROSS},
		{"dswp-conflict", func() paradigm.Loop { return &listLoop{n: 40, workCost: 300, conflict: true} }, paradigm.DSWP},
		{"doall", func() paradigm.Loop { return &gridLoop{n: 48} }, paradigm.DOALL},
	}
	const every = 9
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Reference: segmented but uninterrupted.
			ref := newInstrumented(4)
			refLoop := tc.loop()
			refLoop.Setup(ref.Mem)
			refOut := hmtx.RunOpts(ref, refLoop, tc.kind, 4, hmtx.Options{Every: every})
			want := capture(t, ref, refOut)

			// Interrupted: halt at the second segment boundary, checkpoint,
			// serialise, restore, resume.
			sysA := newInstrumented(4)
			loopA := tc.loop()
			loopA.Setup(sysA.Mem)
			var doc *Doc
			boundaries := 0
			outA := hmtx.RunOpts(sysA, loopA, tc.kind, 4, hmtx.Options{
				Every: every,
				Checkpoint: func(nextIt int, sofar hmtx.Outcome) bool {
					boundaries++
					if boundaries == 2 {
						doc = CaptureRun(sysA, RunState{
							Bench: "bench", System: "hmtx", Paradigm: tc.kind.String(),
							Cores: 4, Scale: 1, Every: every,
							EngineCfg: func() engine.Config {
								c := engine.DefaultConfig()
								c.Mem.Cores = 4
								return c
							}(),
							NextIt: nextIt, Partial: sofar,
						})
						return true
					}
					return false
				},
			})
			if doc == nil {
				t.Fatalf("run finished in %d iterations without reaching 2 segment boundaries", outA.Iterations)
			}

			// Save→Restore→Fingerprint: the restored hierarchy fingerprints
			// identically before any further execution.
			var buf bytes.Buffer
			if err := Write(&buf, doc); err != nil {
				t.Fatal(err)
			}
			doc2, err := Read(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			sysB, err := RestoreRun(doc2)
			if err != nil {
				t.Fatal(err)
			}
			addrs := sysA.Mem.Addrs()
			if got, want := sysB.Mem.Fingerprint(addrs), sysA.Mem.Fingerprint(addrs); got != want {
				t.Fatalf("restored fingerprint %#x != saved %#x", got, want)
			}

			loopB := tc.loop() // no Setup: memory state was restored
			outB := hmtx.RunOpts(sysB, loopB, tc.kind, 4, hmtx.Options{
				Every: doc2.Run.Every, Partial: doc2.Run.Partial,
			})
			got := capture(t, sysB, outB)

			if got.out != want.out {
				t.Errorf("outcome after resume %+v, want %+v", got.out, want.out)
			}
			if got.eng != want.eng {
				t.Errorf("engine stats diverged after resume:\n got %+v\nwant %+v", got.eng, want.eng)
			}
			if !bytes.Equal(got.mem, want.mem) {
				t.Error("exact memory state diverged after resume")
			}
			if got.fp != want.fp {
				t.Errorf("fingerprint after resume %#x, want %#x", got.fp, want.fp)
			}
			for _, d := range []struct {
				name      string
				got, want []byte
			}{
				{"prof", got.prof, want.prof},
				{"series", got.series, want.series},
				{"conflicts", got.confl, want.confl},
				{"hists", got.hists, want.hists},
			} {
				if !bytes.Equal(d.got, d.want) {
					t.Errorf("%s document diverged after resume:\n got %s\nwant %s", d.name, d.got, d.want)
				}
			}
		})
	}
}

// TestRestoreRejectsInstrumentMismatch: a checkpoint taken with instruments
// restores with the same instruments; the engine/memsys state restore also
// rejects geometry drift.
func TestRestoreRejectsGeometryDrift(t *testing.T) {
	sys := newInstrumented(4)
	loop := &gridLoop{n: 24}
	loop.Setup(sys.Mem)
	var doc *Doc
	hmtx.RunOpts(sys, loop, paradigm.DOALL, 4, hmtx.Options{
		Every: 8,
		Checkpoint: func(nextIt int, sofar hmtx.Outcome) bool {
			doc = CaptureRun(sys, RunState{
				Bench: "b", System: "hmtx", Cores: 4, Every: 8,
				EngineCfg: func() engine.Config {
					c := engine.DefaultConfig()
					c.Mem.Cores = 4
					return c
				}(),
				NextIt: nextIt, Partial: sofar,
			})
			return true
		},
	})
	if doc == nil {
		t.Fatal("no checkpoint captured")
	}
	drifted := *doc.Run
	drifted.EngineCfg.Mem.Cores = 6
	if _, err := RestoreRun(&Doc{Schema: Schema, Kind: KindRun, Run: &drifted}); err == nil {
		t.Error("restore into a 6-core machine: want geometry error")
	} else if !strings.Contains(err.Error(), "cores") && !strings.Contains(err.Error(), "geometry") {
		t.Errorf("geometry error does not name the mismatch: %v", err)
	}
}

func TestReadValidation(t *testing.T) {
	for _, tc := range []struct{ name, body string }{
		{"bad schema", `{"schema":"hmtx-ckpt/v2","kind":"run","run":{}}`},
		{"bad kind", `{"schema":"hmtx-ckpt/v1","kind":"banana"}`},
		{"missing section", `{"schema":"hmtx-ckpt/v1","kind":"run"}`},
		{"not json", `schema: hmtx-ckpt/v1`},
	} {
		if _, err := Read(strings.NewReader(tc.body)); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
	good := `{"schema":"hmtx-ckpt/v1","kind":"check","check":{"config":{}}}`
	doc, err := Read(strings.NewReader(good))
	if err != nil {
		t.Fatalf("valid check doc rejected: %v", err)
	}
	if doc.Kind != KindCheck || doc.Check == nil {
		t.Fatalf("check doc parsed wrong: %+v", doc)
	}
}

// TestDocDeterministic: the same state serialises to the same bytes.
func TestDocDeterministic(t *testing.T) {
	sys := newInstrumented(2)
	loop := &gridLoop{n: 16}
	loop.Setup(sys.Mem)
	var docs [][]byte
	hmtx.RunOpts(sys, loop, paradigm.DOALL, 2, hmtx.Options{
		Every: 4,
		Checkpoint: func(nextIt int, sofar hmtx.Outcome) bool {
			d := CaptureRun(sys, RunState{Bench: "b", NextIt: nextIt, Partial: sofar,
				EngineCfg: func() engine.Config {
					c := engine.DefaultConfig()
					c.Mem.Cores = 2
					return c
				}()})
			var b1, b2 bytes.Buffer
			if err := Write(&b1, d); err != nil {
				t.Fatal(err)
			}
			if err := Write(&b2, d); err != nil {
				t.Fatal(err)
			}
			docs = append(docs, b1.Bytes())
			if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
				t.Error("same doc serialised to different bytes")
			}
			return true
		},
	})
	if len(docs) == 0 {
		t.Fatal("no checkpoint captured")
	}
	if !json.Valid(docs[0]) {
		t.Error("checkpoint is not valid JSON")
	}
	var v map[string]any
	if err := json.Unmarshal(docs[0], &v); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v["schema"], "hmtx-ckpt/v1") {
		t.Errorf("schema field = %v", v["schema"])
	}
}
