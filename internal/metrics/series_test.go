package metrics

import (
	"strings"
	"testing"
)

// TestSamplerWindows verifies the windowed sampling contract: one sample per
// crossed window boundary, stamped at the boundary cycle.
func TestSamplerWindows(t *testing.T) {
	var x uint64
	s := NewSampler(100)
	s.Probe("x", func() uint64 { return x })

	x = 1
	s.Tick(40) // before first boundary: no sample
	x = 2
	s.Tick(100) // crosses boundary 100
	x = 5
	s.Tick(350) // crosses 200 and 300: two samples, both observe x=5
	x = 7
	s.Flush(420) // tail sample at 420

	sr := s.Snapshot("t")
	wantCycles := []int64{100, 200, 300, 420}
	wantX := []uint64{2, 5, 5, 7}
	if len(sr.Cycles) != len(wantCycles) {
		t.Fatalf("cycles = %v, want %v", sr.Cycles, wantCycles)
	}
	vals := sr.Col("x")
	for i := range sr.Cycles {
		if sr.Cycles[i] != wantCycles[i] {
			t.Fatalf("cycles = %v, want %v", sr.Cycles, wantCycles)
		}
		if vals[i] != wantX[i] {
			t.Fatalf("col x = %v, want %v", vals, wantX)
		}
	}
}

// TestSamplerFlushIdempotent verifies that Flush adds nothing when the last
// sample already covers the end cycle.
func TestSamplerFlushIdempotent(t *testing.T) {
	s := NewSampler(10)
	s.Probe("x", func() uint64 { return 1 })
	s.Tick(10)
	s.Flush(10)
	if n := s.Rows(); n != 1 {
		t.Fatalf("expected single sample, got %d", n)
	}
}

// TestSamplerProbeAfterSample verifies that registering a probe after the
// first sample panics: columns must stay rectangular.
func TestSamplerProbeAfterSample(t *testing.T) {
	s := NewSampler(10)
	s.Probe("x", func() uint64 { return 0 })
	s.Tick(25)
	defer func() {
		if recover() == nil {
			t.Fatal("Probe after first sample did not panic")
		}
	}()
	s.Probe("y", func() uint64 { return 0 })
}

// TestSamplerNilSafe verifies the disabled-instrument contract.
func TestSamplerNilSafe(t *testing.T) {
	var s *Sampler
	if s.Enabled() {
		t.Fatal("nil Sampler reports enabled")
	}
}

// TestSamplerTickFastPathZeroAlloc pins the common case: a Tick inside the
// current window is a single comparison, no allocation.
func TestSamplerTickFastPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-runtime shadow allocations break AllocsPerRun; contract pinned in non-race runs")
	}
	s := NewSampler(1 << 40)
	s.Probe("x", func() uint64 { return 0 })
	now := int64(0)
	if n := testing.AllocsPerRun(200, func() {
		now++
		s.Tick(now)
	}); n != 0 {
		t.Errorf("Tick fast path: %v allocs/op, want 0", n)
	}
}

// TestSeriesSnapshotAndText verifies the serialisable form and the per-window
// delta rendering.
func TestSeriesSnapshotAndText(t *testing.T) {
	var a, b uint64
	s := NewSampler(50)
	s.Probe("alpha", func() uint64 { return a })
	s.Probe("beta", func() uint64 { return b })
	a, b = 10, 1
	s.Tick(50)
	a, b = 30, 1
	s.Tick(100)
	a, b = 60, 4
	s.Flush(130)

	sr := s.Snapshot("vacation/hmtx")
	if sr.Label != "vacation/hmtx" || sr.Window != 50 {
		t.Fatalf("series header wrong: %+v", sr)
	}
	if got := sr.Col("alpha"); len(got) != 3 || got[2] != 60 {
		t.Fatalf("Col(alpha) = %v", got)
	}
	if sr.Col("nope") != nil {
		t.Fatal("Col on unknown name should be nil")
	}

	text := sr.Text()
	for _, want := range []string{"vacation/hmtx", "Δalpha", "Δbeta", "20", "30"} {
		if !strings.Contains(text, want) {
			t.Errorf("series text missing %q:\n%s", want, text)
		}
	}
}
