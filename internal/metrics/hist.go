// Package metrics holds the temporal and causal instruments of DESIGN.md §15:
// a windowed time-series sampler over the simulation's counters (series.go), a
// causal who-aborted-whom conflict recorder (conflict.go), and deterministic
// log-bucketed latency histograms (this file). Like obs.Tracer and
// prof.Collector, the nil value of every instrument is a valid disabled
// instance: Enabled reports false and every method is safe to call, so the
// emit sites in the simulation packages cost one predictable branch when the
// instrument is off (enforced by the metricsgate analyzer).
//
// Everything in this package is deterministic by construction: only simulated
// quantities enter any instrument, buckets and bounds are integers (no floats
// on the recording path), and every serialisation walks explicit sorted or
// insertion-ordered key slices, never map iteration order. Documents produced
// from the same simulated execution are byte-identical across host runs and
// across experiment-suite parallelism.
package metrics

import (
	"fmt"
	"math/bits"

	"hmtx/internal/stats"
)

// histSubBuckets is the number of linear sub-buckets per power-of-two major
// bucket: values ≥ histSubBuckets land in a bucket whose width is 1/16 of the
// value's magnitude, bounding the relative quantisation error of every
// percentile at 1/histSubBuckets.
const histSubBuckets = 16

// histBuckets is the total bucket count: values below histSubBuckets are
// recorded exactly, and each further power of two contributes histSubBuckets
// linear sub-buckets up to the full uint64 range.
const histBuckets = (64 - 4 + 1) * histSubBuckets

// bucketIndex maps a value to its bucket. Values below histSubBuckets map to
// themselves (exact); larger values map to sub-bucket v>>shift of their
// power-of-two decade. The function is monotone, so cumulative walks yield
// exact ranks.
func bucketIndex(v uint64) int {
	if v < histSubBuckets {
		return int(v)
	}
	shift := bits.Len64(v) - 5 // v>>shift lands in [16, 32)
	return shift*histSubBuckets + int(v>>uint(shift))
}

// bucketBounds returns the inclusive value range covered by bucket idx.
func bucketBounds(idx int) (lo, hi uint64) {
	if idx < histSubBuckets {
		return uint64(idx), uint64(idx)
	}
	shift := idx/histSubBuckets - 1
	sub := uint64(idx - shift*histSubBuckets) // in [16, 32)
	lo = sub << uint(shift)
	return lo, lo + 1<<uint(shift) - 1
}

// Hist is one deterministic log-bucketed latency histogram (HDR-style:
// power-of-two decades with linear sub-buckets, all-integer recording path).
type Hist struct {
	name   string
	counts [histBuckets]uint64
	total  uint64
	sum    uint64
	min    uint64
	max    uint64
}

// NewHist returns an empty histogram with the given stable name.
func NewHist(name string) *Hist { return &Hist{name: name, min: ^uint64(0)} }

// Name returns the histogram's name.
func (h *Hist) Name() string { return h.name }

// Observe records one value. The recording path is two integer operations and
// four counter updates: no floats, no allocation.
func (h *Hist) Observe(v uint64) {
	h.counts[bucketIndex(v)]++
	h.total++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Total returns the number of observations.
func (h *Hist) Total() uint64 { return h.total }

// Quantile returns the value at quantile q in [0, 1]: the upper bound of the
// bucket containing the observation of rank ceil(q·total) (exact for values
// below histSubBuckets, within 1/16 relative error above). It returns 0 for an
// empty histogram.
func (h *Hist) Quantile(q float64) uint64 {
	if h.total == 0 {
		return 0
	}
	rank := uint64(q*float64(h.total) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > h.total {
		rank = h.total
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i]
		if cum >= rank {
			_, hi := bucketBounds(i)
			if hi > h.max {
				hi = h.max
			}
			return hi
		}
	}
	return h.max
}

// HistSnapshot is the serialisable form of one histogram: sparse non-zero
// buckets in ascending value order plus the exact summary statistics and the
// extracted percentiles.
type HistSnapshot struct {
	Name  string `json:"name"`
	Total uint64 `json:"total"`
	Sum   uint64 `json:"sum"`
	Min   uint64 `json:"min"`
	Max   uint64 `json:"max"`
	Mean  uint64 `json:"mean"` // integer floor of sum/total
	P50   uint64 `json:"p50"`
	P95   uint64 `json:"p95"`
	P99   uint64 `json:"p99"`
	P999  uint64 `json:"p999"`

	// Buckets holds every non-zero bucket in ascending value order.
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// HistBucket is one non-zero histogram bucket: the inclusive value range it
// covers and the observation count.
type HistBucket struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"count"`
}

// Snapshot renders the histogram. An empty histogram yields zero statistics
// and no buckets.
func (h *Hist) Snapshot() HistSnapshot {
	s := HistSnapshot{Name: h.name, Total: h.total, Sum: h.sum}
	if h.total == 0 {
		return s
	}
	s.Min, s.Max = h.min, h.max
	s.Mean = h.sum / h.total
	s.P50 = h.Quantile(0.50)
	s.P95 = h.Quantile(0.95)
	s.P99 = h.Quantile(0.99)
	s.P999 = h.Quantile(0.999)
	for i := 0; i < histBuckets; i++ {
		if h.counts[i] == 0 {
			continue
		}
		lo, hi := bucketBounds(i)
		s.Buckets = append(s.Buckets, HistBucket{Lo: lo, Hi: hi, Count: h.counts[i]})
	}
	return s
}

// LatHists bundles the three transaction-latency histograms the engine feeds
// (DESIGN.md §15): epoch open→commit latency, per-batch validation latency,
// and in-order commit-arbitration stall latency. The nil value is the valid
// disabled instrument.
type LatHists struct {
	// Open is begin-to-commit latency per committed transaction.
	Open *Hist
	// Validation is the length of each validation work batch (SMTX §2.3;
	// zero-total under HMTX, which moves validation into hardware).
	Validation *Hist
	// CommitArb is the commit-arbitration stall: cycles a core spent parked
	// waiting for its in-order commit turn (§4.7).
	CommitArb *Hist
}

// NewLatHists returns the standard latency-histogram bundle.
func NewLatHists() *LatHists {
	return &LatHists{
		Open:       NewHist("open_to_commit"),
		Validation: NewHist("validation"),
		CommitArb:  NewHist("commit_arbitration"),
	}
}

// Enabled reports whether latency collection is active: the emit-site guard,
// safe (and false) on a nil bundle.
func (l *LatHists) Enabled() bool { return l != nil }

// All returns the bundle's histograms in fixed declaration order.
func (l *LatHists) All() []*Hist { return []*Hist{l.Open, l.Validation, l.CommitArb} }

// HistDoc is the machine-readable latency-histogram document
// ("hmtx-hist/v1"). Histogram order is fixed (open_to_commit, validation,
// commit_arbitration per label), so the document is byte-identical across
// runs and suite parallelism.
type HistDoc struct {
	Schema     string         `json:"schema"`
	Scale      int            `json:"scale,omitempty"`
	Cores      int            `json:"cores,omitempty"`
	Histograms []LabeledHists `json:"histograms"`
}

// LabeledHists is one execution's histogram set, labelled like a profile
// ("workload/system").
type LabeledHists struct {
	Label string         `json:"label"`
	Hists []HistSnapshot `json:"hists"`
}

// HistSchema is the schema tag of the latency-histogram document.
const HistSchema = "hmtx-hist/v1"

// Snapshot renders the bundle under the given label.
func (l *LatHists) Snapshot(label string) LabeledHists {
	out := LabeledHists{Label: label}
	for _, h := range l.All() {
		out.Hists = append(out.Hists, h.Snapshot())
	}
	return out
}

// Text renders the labelled histogram set as an aligned latency table.
func (lh *LabeledHists) Text() string {
	out := fmt.Sprintf("latency histograms: %s\n", lh.Label)
	var t stats.Table
	t.Add("histogram", "count", "mean", "p50", "p95", "p99", "p999", "max")
	for i := range lh.Hists {
		h := &lh.Hists[i]
		if h.Total == 0 {
			t.AddF(h.Name, 0, "-", "-", "-", "-", "-", "-")
			continue
		}
		t.AddF(h.Name, h.Total, h.Mean, h.P50, h.P95, h.P99, h.P999, h.Max)
	}
	return out + t.String()
}
