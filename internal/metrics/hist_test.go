package metrics

import (
	"math/rand"
	"sort"
	"testing"
)

// TestBucketIndexMonotone verifies the bucket mapping is monotone and that
// every value falls inside its bucket's reported bounds.
func TestBucketIndexMonotone(t *testing.T) {
	prev := -1
	for v := uint64(0); v < 1<<14; v++ {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex(%d) = %d < previous %d: not monotone", v, idx, prev)
		}
		prev = idx
		lo, hi := bucketBounds(idx)
		if v < lo || v > hi {
			t.Fatalf("value %d outside bucket %d bounds [%d, %d]", v, idx, lo, hi)
		}
	}
	// Spot-check large magnitudes, including the extremes.
	for _, v := range []uint64{1 << 20, 1<<20 + 12345, 1 << 40, 1 << 62, ^uint64(0)} {
		idx := bucketIndex(v)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range [0, %d)", v, idx, histBuckets)
		}
		lo, hi := bucketBounds(idx)
		if v < lo || v > hi {
			t.Fatalf("value %d outside bucket %d bounds [%d, %d]", v, idx, lo, hi)
		}
	}
}

// TestQuantileSmallExact verifies that percentiles over values below the
// linear range (every value has its own bucket) are exact order statistics.
func TestQuantileSmallExact(t *testing.T) {
	h := NewHist("t")
	for v := uint64(0); v < 10; v++ {
		h.Observe(v)
	}
	cases := []struct {
		q    float64
		want uint64
	}{
		{0.0, 0}, {0.1, 0}, {0.5, 4}, {0.95, 9}, {1.0, 9},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %d, want %d", c.q, got, c.want)
		}
	}
}

// TestQuantileBounded verifies the 1/16 relative-error bound against exact
// order statistics on a deterministic pseudo-random value set.
func TestQuantileBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := NewHist("t")
	var vals []uint64
	for i := 0; i < 10000; i++ {
		v := uint64(rng.Int63n(1 << 30))
		vals = append(vals, v)
		h.Observe(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.50, 0.95, 0.99, 0.999} {
		rank := int(q*float64(len(vals)) + 0.9999999)
		if rank < 1 {
			rank = 1
		}
		exact := vals[rank-1]
		got := h.Quantile(q)
		if got < exact {
			t.Errorf("Quantile(%v) = %d below exact order statistic %d", q, got, exact)
		}
		// The reported value is the bucket's upper bound: at most
		// 1/16 above the exact statistic.
		if float64(got) > float64(exact)*(1+1.0/16)+1 {
			t.Errorf("Quantile(%v) = %d exceeds %d by more than 1/16", q, got, exact)
		}
	}
}

// TestHistSnapshot verifies summary statistics, sparse ascending buckets, and
// the empty-histogram shape.
func TestHistSnapshot(t *testing.T) {
	h := NewHist("lat")
	for _, v := range []uint64{3, 3, 7, 100, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Name != "lat" || s.Total != 5 || s.Min != 3 || s.Max != 1000 {
		t.Fatalf("snapshot summary wrong: %+v", s)
	}
	if s.Sum != 1113 || s.Mean != 222 {
		t.Fatalf("sum/mean wrong: sum %d mean %d", s.Sum, s.Mean)
	}
	var count uint64
	for i, b := range s.Buckets {
		count += b.Count
		if i > 0 && b.Lo <= s.Buckets[i-1].Hi {
			t.Fatalf("buckets not ascending: %+v", s.Buckets)
		}
	}
	if count != 5 {
		t.Fatalf("bucket counts sum to %d, want 5", count)
	}

	empty := NewHist("e").Snapshot()
	if empty.Total != 0 || empty.Min != 0 || len(empty.Buckets) != 0 {
		t.Fatalf("empty snapshot not zeroed: %+v", empty)
	}
}

// TestLatHistsNilSafe verifies the disabled-instrument contract.
func TestLatHistsNilSafe(t *testing.T) {
	var l *LatHists
	if l.Enabled() {
		t.Fatal("nil LatHists reports enabled")
	}
	if !raceEnabled {
		if n := testing.AllocsPerRun(100, func() {
			if l.Enabled() {
				l.Open.Observe(1)
			}
		}); n != 0 {
			t.Errorf("disabled guard allocates: %v allocs/op", n)
		}
	}
}

// TestObserveZeroAlloc pins the all-integer recording path: Observe on an
// existing histogram must not allocate.
func TestObserveZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-runtime shadow allocations break AllocsPerRun; contract pinned in non-race runs")
	}
	h := NewHist("t")
	v := uint64(0)
	if n := testing.AllocsPerRun(200, func() {
		v += 37
		h.Observe(v)
	}); n != 0 {
		t.Errorf("Observe: %v allocs/op, want 0", n)
	}
}
