package metrics

import (
	"strings"
	"testing"
)

// record is a test helper: stamp the clock and record one edge.
func record(r *Recorder, cycle int64, aborter, victim, addr uint64, kind EdgeKind) {
	r.SetTime(cycle)
	r.Record(aborter, victim, addr, kind)
}

// TestRecorderCascades verifies cascade partitioning: time-chained edges
// connected through shared transactions form one cascade; edges outside the
// window or in disjoint components split apart.
func TestRecorderCascades(t *testing.T) {
	r := NewRecorder(100)
	// Cascade A: tx1 aborts tx2, then tx2 (retrying) aborts tx3 — chained
	// in time and connected through tx2.
	record(r, 10, 1, 2, 0x40, EdgeConflict)
	record(r, 50, 2, 3, 0x80, EdgeConflict)
	// Same time chain, but disjoint transactions: separate cascade.
	record(r, 90, 7, 8, 0xc0, EdgeConflict)
	// Past the window: new chain.
	record(r, 500, 0, 4, 0x40, EdgeSLA)

	g := r.Snapshot("t")
	if g.Nodes != 6 {
		t.Errorf("nodes = %d, want 6", g.Nodes)
	}
	if len(g.Cascades) != 3 {
		t.Fatalf("cascades = %+v, want 3", g.Cascades)
	}
	a := g.Cascades[0]
	if a.Start != 10 || a.End != 50 || a.Edges != 2 {
		t.Errorf("cascade A = %+v", a)
	}
	if len(a.Txs) != 3 || a.Txs[0] != 1 || a.Txs[1] != 2 || a.Txs[2] != 3 {
		t.Errorf("cascade A txs = %v, want [1 2 3]", a.Txs)
	}
	b := g.Cascades[1]
	if b.Edges != 1 || len(b.Txs) != 2 || b.Txs[0] != 7 {
		t.Errorf("cascade B = %+v", b)
	}
	c := g.Cascades[2]
	// Machine-aborted edge: only the victim appears.
	if c.Start != 500 || c.Edges != 1 || len(c.Txs) != 1 || c.Txs[0] != 4 {
		t.Errorf("cascade C = %+v", c)
	}
}

// TestRecorderTopAddrs verifies dominant-address ranking: total descending,
// ties by ascending address, per-kind counts preserved.
func TestRecorderTopAddrs(t *testing.T) {
	r := NewRecorder(0)
	record(r, 1, 1, 2, 0x80, EdgeConflict)
	record(r, 2, 3, 4, 0x80, EdgeConflict)
	record(r, 3, 0, 5, 0x80, EdgeSLA)
	record(r, 4, 1, 6, 0x40, EdgeConflict)
	record(r, 5, 0, 7, 0xc0, EdgeOverflow)

	g := r.Snapshot("t")
	if len(g.TopAddrs) != 3 {
		t.Fatalf("top addrs = %+v", g.TopAddrs)
	}
	top := g.TopAddrs[0]
	if top.Addr != "0x80" || top.Total != 3 || top.Conflicts != 2 || top.SLAs != 1 {
		t.Errorf("top addr = %+v", top)
	}
	// 0x40 and 0xc0 both have total 1: ascending address breaks the tie.
	if g.TopAddrs[1].Addr != "0x40" || g.TopAddrs[2].Addr != "0xc0" {
		t.Errorf("tie order = %q, %q, want 0x40 then 0xc0", g.TopAddrs[1].Addr, g.TopAddrs[2].Addr)
	}
}

// TestGraphDOT verifies the Graphviz rendering: machine box, ascending tx
// nodes, labelled edges.
func TestGraphDOT(t *testing.T) {
	r := NewRecorder(0)
	record(r, 10, 2, 1, 0x40, EdgeConflict)
	record(r, 20, 0, 2, 0x80, EdgeSLA)
	g := r.Snapshot("t")
	dot := g.DOT()
	for _, want := range []string{
		"digraph \"t\" {",
		"machine [label=\"machine\", shape=box];",
		"tx1 [label=\"tx 1\"];",
		"tx2 [label=\"tx 2\"];",
		"tx2 -> tx1 [label=\"0x40 @10 (conflict)\"];",
		"machine -> tx2 [label=\"0x80 @20 (sla-mismatch)\"];",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// tx1 must be declared before tx2 (ascending).
	if strings.Index(dot, "tx1 [label") > strings.Index(dot, "tx2 [label") {
		t.Errorf("tx nodes not ascending:\n%s", dot)
	}
}

// TestGraphText smoke-tests the text summary.
func TestGraphText(t *testing.T) {
	r := NewRecorder(0)
	record(r, 10, 1, 2, 0x40, EdgeConflict)
	g := r.Snapshot("lbl")
	text := g.Text()
	for _, want := range []string{"conflict graph: lbl", "abort cascades", "dominant conflict addresses", "0x40"} {
		if !strings.Contains(text, want) {
			t.Errorf("text missing %q:\n%s", want, text)
		}
	}
}

// TestRecorderNilSafe verifies the disabled-instrument contract.
func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil Recorder reports enabled")
	}
	if r.Edges() != nil {
		t.Fatal("nil Recorder has edges")
	}
}

// TestEdgeKindNames pins the serialised kind names to the obs.AbortClass
// vocabulary.
func TestEdgeKindNames(t *testing.T) {
	want := map[EdgeKind]string{
		EdgeConflict: "conflict",
		EdgeSLA:      "sla-mismatch",
		EdgeOverflow: "overflow",
		EdgeExplicit: "explicit",
	}
	for k, name := range want {
		if k.String() != name {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), name)
		}
	}
}
