package metrics

import (
	"fmt"
	"sort"
	"strings"

	"hmtx/internal/stats"
)

// ConflictSchema is the schema tag of the conflict-graph document.
const ConflictSchema = "hmtx-conflicts/v1"

// DefaultCascadeWindow is the cascade-detection window (simulated cycles)
// used when callers pass 0 to NewRecorder: two abort edges closer together
// than this are considered part of one cascade.
const DefaultCascadeWindow = 512

// EdgeKind classifies one who-aborted-whom edge by the abort mechanism that
// produced it; the names match obs.AbortClass.
type EdgeKind uint8

const (
	// EdgeConflict is a store-order dependence violation (§4.3): the
	// aborter's store found the victim's later access mark on the line.
	EdgeConflict EdgeKind = iota
	// EdgeSLA is an SLA mismatch (§5.1): the victim's speculatively loaded
	// value changed before the load's branch resolved. The aborter is
	// unknown to hardware (the conflicting store already retired), so
	// edges of this kind have Aborter 0.
	EdgeSLA
	// EdgeOverflow is a speculative-line overflow past the last-level
	// cache (§5.4); the machine is the aborter (Aborter 0).
	EdgeOverflow
	// EdgeExplicit is a software abortMTX (§3.2); the victim aborted
	// itself.
	EdgeExplicit

	numEdgeKinds
)

var edgeKindNames = [numEdgeKinds]string{"conflict", "sla-mismatch", "overflow", "explicit"}

// String returns the edge kind's stable name.
func (k EdgeKind) String() string {
	if k < numEdgeKinds {
		return edgeKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Edge is one recorded abort edge: at Cycle, the transaction Aborter caused
// the rollback of transaction Victim over line Addr. VIDs are global
// program-order sequence numbers (vid.Seq); Aborter 0 means the machine or an
// already-retired instruction, not a live transaction.
type Edge struct {
	Cycle   int64    `json:"cycle"`
	Aborter uint64   `json:"aborter"`
	Victim  uint64   `json:"victim"`
	Addr    uint64   `json:"addr"`
	Kind    EdgeKind `json:"-"`
	// KindName is Kind's stable name, the serialised form.
	KindName string `json:"kind"`
}

// Recorder captures the causal conflict structure of an execution: every
// abort edge from the memsys/engine abort path, in simulated-time order (the
// engine's serialised scheduler appends them as they happen). The nil value
// is the valid disabled instrument.
type Recorder struct {
	window int64 // cascade-detection window
	now    int64 // current global simulated cycle, stamped by the engine
	edges  []Edge
}

// NewRecorder returns an empty recorder with the given cascade window in
// simulated cycles (0 = DefaultCascadeWindow).
func NewRecorder(cascadeWindow int64) *Recorder {
	if cascadeWindow <= 0 {
		cascadeWindow = DefaultCascadeWindow
	}
	return &Recorder{window: cascadeWindow}
}

// Enabled reports whether conflict recording is active: the emit-site guard,
// safe (and false) on a nil recorder.
func (r *Recorder) Enabled() bool { return r != nil }

// SetTime stamps subsequent edges with the global simulated cycle. The engine
// owns simulated time and calls this alongside obs.Tracer.SetTime; the memory
// system, which has no clock, records edges at the stamped time.
func (r *Recorder) SetTime(cycle int64) { r.now = cycle }

// Record appends one abort edge at the current stamped time.
func (r *Recorder) Record(aborter, victim, addr uint64, kind EdgeKind) {
	r.edges = append(r.edges, Edge{
		Cycle:    r.now,
		Aborter:  aborter,
		Victim:   victim,
		Addr:     addr,
		Kind:     kind,
		KindName: kind.String(),
	})
}

// Edges returns the recorded edges in simulated-time order.
func (r *Recorder) Edges() []Edge {
	if r == nil {
		return nil
	}
	return r.edges
}

// Cascade is one abort cascade: a maximal set of edges chained closer
// together than the cascade window, with the transactions they connect. A
// cascade with one edge is an isolated abort; longer cascades are the abort
// storms the Zipfian-skew roadmap item is about.
type Cascade struct {
	Start int64 `json:"start"`
	End   int64 `json:"end"`
	// Edges is the number of abort edges in the cascade.
	Edges int `json:"edges"`
	// Txs is every distinct transaction involved (aborter or victim,
	// excluding the machine pseudo-node 0), ascending.
	Txs []uint64 `json:"txs"`
}

// AddrRank is one conflicting line address with its edge counts by kind,
// ranked by total involvement.
type AddrRank struct {
	Addr      string `json:"addr"`
	Total     uint64 `json:"total"`
	Conflicts uint64 `json:"conflicts,omitempty"`
	SLAs      uint64 `json:"sla_mismatches,omitempty"`
	Overflows uint64 `json:"overflows,omitempty"`
	Explicits uint64 `json:"explicits,omitempty"`
}

// Graph is the serialisable conflict DAG of one execution: nodes are
// transactions, edges are who-aborted-whom with the conflicting address,
// plus the derived cascade and dominant-address structure.
type Graph struct {
	Label string `json:"label"`
	// Window is the cascade-detection window in simulated cycles.
	Window int64 `json:"window"`
	// Nodes is the number of distinct transactions in the graph.
	Nodes    int       `json:"nodes"`
	Edges    []Edge    `json:"edges"`
	Cascades []Cascade `json:"cascades,omitempty"`
	// TopAddrs ranks the conflicting line addresses by edge count
	// (descending, ties by ascending address).
	TopAddrs []AddrRank `json:"top_addrs,omitempty"`
}

// ConflictDoc is the machine-readable conflict-graph document
// ("hmtx-conflicts/v1").
type ConflictDoc struct {
	Schema string  `json:"schema"`
	Scale  int     `json:"scale,omitempty"`
	Cores  int     `json:"cores,omitempty"`
	Graphs []Graph `json:"graphs"`
}

// Snapshot builds the conflict graph under the given label: it partitions the
// time-ordered edge list into cascades (edges chained within the window form
// one cascade; within a chain, connected components over the aborter/victim
// node sets are split apart) and ranks the dominant conflict addresses.
func (r *Recorder) Snapshot(label string) Graph {
	g := Graph{Label: label, Window: r.window, Edges: append(make([]Edge, 0, len(r.edges)), r.edges...)}

	// Distinct transaction nodes, excluding the machine pseudo-node 0.
	nodeSet := make(map[uint64]bool)
	for _, e := range r.edges {
		if e.Aborter != 0 {
			nodeSet[e.Aborter] = true
		}
		if e.Victim != 0 {
			nodeSet[e.Victim] = true
		}
	}
	g.Nodes = len(nodeSet)

	g.Cascades = r.cascades()
	g.TopAddrs = r.topAddrs()
	return g
}

// cascades partitions the time-ordered edges into chains no sparser than the
// window, then splits each chain into connected components over its
// transaction nodes. Edges whose transactions are all 0 (machine-only, e.g.
// overflow of a non-speculative line) stay singleton cascades.
func (r *Recorder) cascades() []Cascade {
	var out []Cascade
	for lo := 0; lo < len(r.edges); {
		hi := lo + 1
		for hi < len(r.edges) && r.edges[hi].Cycle-r.edges[hi-1].Cycle <= r.window {
			hi++
		}
		out = append(out, components(r.edges[lo:hi])...)
		lo = hi
	}
	return out
}

// components splits one time-chained edge run into connected components via
// union-find over transaction IDs. Deterministic: components are emitted in
// order of their earliest edge.
func components(edges []Edge) []Cascade {
	parent := make(map[uint64]uint64)
	var find func(x uint64) uint64
	find = func(x uint64) uint64 {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(a, b uint64) { parent[find(a)] = find(b) }

	for i := range edges {
		e := &edges[i]
		if e.Aborter != 0 && e.Victim != 0 {
			union(e.Aborter, e.Victim)
		}
	}

	// Group edges by the root of their first non-zero endpoint; edges with
	// no transaction endpoint are their own cascade.
	// txs collects distinct transactions in first-touch order via a seen
	// map plus an explicit slice (the detrange rule: map iteration order
	// must never reach output).
	type group struct {
		first int // index of earliest edge, for deterministic ordering
		cas   Cascade
		seen  map[uint64]bool
	}
	groups := make(map[uint64]*group)
	var order []*group
	add := func(g *group, i int, e *Edge) {
		if g.cas.Edges == 0 {
			g.first = i
			g.cas.Start = e.Cycle
		}
		g.cas.Edges++
		g.cas.End = e.Cycle
		for _, n := range [2]uint64{e.Aborter, e.Victim} {
			if n != 0 && !g.seen[n] {
				g.seen[n] = true
				g.cas.Txs = append(g.cas.Txs, n)
			}
		}
	}
	for i := range edges {
		e := &edges[i]
		node := e.Victim
		if node == 0 {
			node = e.Aborter
		}
		if node == 0 {
			g := &group{seen: map[uint64]bool{}}
			add(g, i, e)
			order = append(order, g)
			continue
		}
		root := find(node)
		g, ok := groups[root]
		if !ok {
			g = &group{seen: map[uint64]bool{}}
			groups[root] = g
			order = append(order, g)
		}
		add(g, i, e)
	}
	sort.SliceStable(order, func(i, j int) bool { return order[i].first < order[j].first })
	var out []Cascade
	for _, g := range order {
		sort.Slice(g.cas.Txs, func(i, j int) bool { return g.cas.Txs[i] < g.cas.Txs[j] })
		out = append(out, g.cas)
	}
	return out
}

// topAddrs ranks every conflicting line address by total edge count
// descending, ties broken by ascending address.
func (r *Recorder) topAddrs() []AddrRank {
	type counts struct {
		byKind [numEdgeKinds]uint64
		total  uint64
	}
	m := make(map[uint64]*counts)
	var addrs []uint64
	for _, e := range r.edges {
		c, ok := m[e.Addr]
		if !ok {
			c = &counts{}
			m[e.Addr] = c
			addrs = append(addrs, e.Addr)
		}
		c.byKind[e.Kind]++
		c.total++
	}
	sort.Slice(addrs, func(i, j int) bool {
		a, b := m[addrs[i]], m[addrs[j]]
		if a.total != b.total {
			return a.total > b.total
		}
		return addrs[i] < addrs[j]
	})
	var out []AddrRank
	for _, a := range addrs {
		c := m[a]
		out = append(out, AddrRank{
			Addr:      fmt.Sprintf("%#x", a),
			Total:     c.total,
			Conflicts: c.byKind[EdgeConflict],
			SLAs:      c.byKind[EdgeSLA],
			Overflows: c.byKind[EdgeOverflow],
			Explicits: c.byKind[EdgeExplicit],
		})
	}
	return out
}

// DOT renders the graph in Graphviz dot syntax: transaction nodes, one edge
// per abort with the conflicting address and cycle as its label. Node 0 (the
// machine) is rendered as a distinct box.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Label)
	b.WriteString("  rankdir=LR;\n  node [shape=ellipse];\n")
	hasMachine := false
	seen := make(map[uint64]bool)
	var nodes []uint64
	for _, e := range g.Edges {
		for _, n := range [2]uint64{e.Aborter, e.Victim} {
			if n == 0 {
				hasMachine = true
			} else if !seen[n] {
				seen[n] = true
				nodes = append(nodes, n)
			}
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	if hasMachine {
		b.WriteString("  machine [label=\"machine\", shape=box];\n")
	}
	for _, n := range nodes {
		fmt.Fprintf(&b, "  tx%d [label=\"tx %d\"];\n", n, n)
	}
	name := func(n uint64) string {
		if n == 0 {
			return "machine"
		}
		return fmt.Sprintf("tx%d", n)
	}
	for _, e := range g.Edges {
		fmt.Fprintf(&b, "  %s -> %s [label=\"%#x @%d (%s)\"];\n",
			name(e.Aborter), name(e.Victim), e.Addr, e.Cycle, e.KindName)
	}
	b.WriteString("}\n")
	return b.String()
}

// Text renders the graph summary: edge and cascade counts, the largest
// cascades, and the dominant conflict addresses.
func (g *Graph) Text() string {
	out := fmt.Sprintf("conflict graph: %s (%d txs, %d edges, %d cascades; window %d)\n",
		g.Label, g.Nodes, len(g.Edges), len(g.Cascades), g.Window)
	if len(g.Cascades) > 0 {
		var t stats.Table
		t.Add("cascade", "start", "end", "edges", "txs")
		for i, c := range g.Cascades {
			txs := make([]string, len(c.Txs))
			for j, tx := range c.Txs {
				txs[j] = fmt.Sprint(tx)
			}
			t.AddF(i, c.Start, c.End, c.Edges, strings.Join(txs, ","))
		}
		out += "\nabort cascades:\n" + t.String()
	}
	if len(g.TopAddrs) > 0 {
		var t stats.Table
		t.Add("line", "edges", "conflicts", "sla", "overflow", "explicit")
		for _, a := range g.TopAddrs {
			t.AddF(a.Addr, a.Total, a.Conflicts, a.SLAs, a.Overflows, a.Explicits)
		}
		out += "\ndominant conflict addresses:\n" + t.String()
	}
	return out
}
