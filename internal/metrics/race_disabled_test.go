//go:build !race

package metrics

// raceEnabled mirrors the -race build tag for tests; see race_enabled_test.go.
const raceEnabled = false
