package metrics

import "fmt"

// Checkpoint support (hmtx-ckpt/v1, DESIGN.md §18) for the three metric
// instruments. Each instrument serialises its full accumulated state so a
// resumed run's final documents are byte-identical to the uninterrupted
// run's. Probes are closures over live counters and cannot be serialised;
// the restoring caller re-registers them (in the same fixed order the
// capturing caller used) before restoring the sampled rows.

// SamplerCkpt is the time-series sampler section of a checkpoint.
type SamplerCkpt struct {
	Window int64      `json:"window"`
	Next   int64      `json:"next"`
	Probes []string   `json:"probes,omitempty"`
	Cycles []int64    `json:"cycles,omitempty"`
	Cols   [][]uint64 `json:"cols,omitempty"`
}

// CaptureCkpt snapshots the sampler: its window position and every sampled
// row, with probe names recorded for restore-time validation.
func (s *Sampler) CaptureCkpt() SamplerCkpt {
	ck := SamplerCkpt{
		Window: s.window,
		Next:   s.next,
		Cycles: append([]int64(nil), s.cycles...),
	}
	for i := range s.probes {
		ck.Probes = append(ck.Probes, s.probes[i].name)
		ck.Cols = append(ck.Cols, append([]uint64(nil), s.cols[i]...))
	}
	return ck
}

// RestoreCkpt overwrites the sampler's window position and rows. It must be
// called after the caller has re-registered the probes (Probe panics once
// rows exist), and the registered probe names must match the checkpoint's —
// the columns are index-aligned with them.
func (s *Sampler) RestoreCkpt(ck SamplerCkpt) error {
	if len(s.cycles) > 0 {
		return fmt.Errorf("metrics: RestoreCkpt on a sampler that already sampled")
	}
	if s.window != ck.Window {
		return fmt.Errorf("metrics: checkpoint window %d, sampler window %d", ck.Window, s.window)
	}
	if len(s.probes) != len(ck.Probes) {
		return fmt.Errorf("metrics: checkpoint has %d probes, sampler has %d", len(ck.Probes), len(s.probes))
	}
	for i := range s.probes {
		if s.probes[i].name != ck.Probes[i] {
			return fmt.Errorf("metrics: probe %d is %q in checkpoint, %q in sampler", i, ck.Probes[i], s.probes[i].name)
		}
	}
	if len(ck.Cols) != len(ck.Probes) {
		return fmt.Errorf("metrics: checkpoint probe/column tables are not index-aligned")
	}
	s.next = ck.Next
	s.cycles = append([]int64(nil), ck.Cycles...)
	for i := range s.cols {
		s.cols[i] = append([]uint64(nil), ck.Cols[i]...)
	}
	return nil
}

// RecorderCkpt is the conflict-recorder section of a checkpoint.
type RecorderCkpt struct {
	Window int64  `json:"window"`
	Now    int64  `json:"now"`
	Edges  []Edge `json:"edges,omitempty"`
}

// CaptureCkpt snapshots the recorder: its cascade window, time stamp and
// every recorded edge.
func (r *Recorder) CaptureCkpt() RecorderCkpt {
	return RecorderCkpt{
		Window: r.window,
		Now:    r.now,
		Edges:  append([]Edge(nil), r.edges...),
	}
}

// RestoreCkpt overwrites a fresh recorder with checkpointed state.
func (r *Recorder) RestoreCkpt(ck RecorderCkpt) error {
	if len(r.edges) > 0 {
		return fmt.Errorf("metrics: RestoreCkpt on a recorder that already recorded")
	}
	if r.window != ck.Window {
		return fmt.Errorf("metrics: checkpoint cascade window %d, recorder window %d", ck.Window, r.window)
	}
	r.now = ck.Now
	r.edges = append([]Edge(nil), ck.Edges...)
	for i := range r.edges {
		// KindName is derived; recompute so a hand-edited checkpoint cannot
		// desynchronise the two fields.
		r.edges[i].Kind = kindFromName(r.edges[i].KindName)
		r.edges[i].KindName = r.edges[i].Kind.String()
	}
	return nil
}

func kindFromName(name string) EdgeKind {
	for k := EdgeKind(0); k < numEdgeKinds; k++ {
		if edgeKindNames[k] == name {
			return k
		}
	}
	return numEdgeKinds // String() renders it as kind(N); harmless sentinel
}

// HistCkpt is one histogram's state: sparse non-zero buckets by index plus
// the exact summary counters.
type HistCkpt struct {
	Name   string   `json:"name"`
	Total  uint64   `json:"total"`
	Sum    uint64   `json:"sum"`
	Min    uint64   `json:"min"`
	Max    uint64   `json:"max"`
	Idx    []int    `json:"idx,omitempty"`
	Counts []uint64 `json:"counts,omitempty"`
}

// CaptureCkpt snapshots one histogram.
func (h *Hist) CaptureCkpt() HistCkpt {
	ck := HistCkpt{Name: h.name, Total: h.total, Sum: h.sum, Min: h.min, Max: h.max}
	for i := 0; i < histBuckets; i++ {
		if h.counts[i] != 0 {
			ck.Idx = append(ck.Idx, i)
			ck.Counts = append(ck.Counts, h.counts[i])
		}
	}
	return ck
}

// RestoreCkpt overwrites a fresh histogram with checkpointed state.
func (h *Hist) RestoreCkpt(ck HistCkpt) error {
	if h.total != 0 {
		return fmt.Errorf("metrics: RestoreCkpt on a histogram that already observed")
	}
	if h.name != ck.Name {
		return fmt.Errorf("metrics: checkpoint histogram %q, restoring into %q", ck.Name, h.name)
	}
	if len(ck.Idx) != len(ck.Counts) {
		return fmt.Errorf("metrics: histogram %q checkpoint idx/count tables are not index-aligned", ck.Name)
	}
	h.total = ck.Total
	h.sum = ck.Sum
	h.min = ck.Min
	h.max = ck.Max
	for i, idx := range ck.Idx {
		if idx < 0 || idx >= histBuckets {
			return fmt.Errorf("metrics: histogram %q checkpoint bucket index %d out of range", ck.Name, idx)
		}
		h.counts[idx] = ck.Counts[i]
	}
	return nil
}

// LatHistsCkpt is the latency-histogram bundle section of a checkpoint, in
// the bundle's fixed declaration order.
type LatHistsCkpt struct {
	Hists []HistCkpt `json:"hists"`
}

// CaptureCkpt snapshots the bundle.
func (l *LatHists) CaptureCkpt() LatHistsCkpt {
	var ck LatHistsCkpt
	for _, h := range l.All() {
		ck.Hists = append(ck.Hists, h.CaptureCkpt())
	}
	return ck
}

// RestoreCkpt overwrites a fresh bundle with checkpointed state.
func (l *LatHists) RestoreCkpt(ck LatHistsCkpt) error {
	all := l.All()
	if len(ck.Hists) != len(all) {
		return fmt.Errorf("metrics: checkpoint has %d latency histograms, bundle has %d", len(ck.Hists), len(all))
	}
	for i, h := range all {
		if err := h.RestoreCkpt(ck.Hists[i]); err != nil {
			return err
		}
	}
	return nil
}
