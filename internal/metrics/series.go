package metrics

import (
	"fmt"

	"hmtx/internal/stats"
)

// SeriesSchema is the schema tag of the time-series document.
const SeriesSchema = "hmtx-series/v1"

// DefaultWindow is the sampling window (simulated cycles) used when callers
// pass 0 to NewSampler.
const DefaultWindow = 2048

// probe is one registered column source: a closure over a live counter.
type probe struct {
	name string
	fn   func() uint64
}

// Sampler is the windowed time-series instrument (DESIGN.md §15): every time
// the global simulated clock crosses a window boundary it snapshots every
// registered probe into one row of a columnar series. The engine drives it
// from its event loop with Tick; because the scheduler always runs the
// earliest-clock core and the probes read only simulated counters, the row
// sequence is a pure function of the simulated execution.
//
// The nil value is the valid disabled instrument: Enabled reports false and
// every method is safe to call.
type Sampler struct {
	window int64
	next   int64
	probes []probe

	cycles []int64    // sample timestamps (global simulated cycles)
	cols   [][]uint64 // cols[i][row] is probes[i] at cycles[row]
}

// NewSampler returns a sampler with the given window in simulated cycles
// (0 = DefaultWindow).
func NewSampler(window int64) *Sampler {
	if window <= 0 {
		window = DefaultWindow
	}
	return &Sampler{window: window, next: window}
}

// Enabled reports whether sampling is active: the emit-site guard, safe (and
// false) on a nil sampler.
func (s *Sampler) Enabled() bool { return s != nil }

// Window returns the sampling window in simulated cycles.
func (s *Sampler) Window() int64 { return s.window }

// Probe registers a named column. Registration order is the column order of
// the document, so callers must register probes in a fixed order. Probes
// must be registered before the first Tick.
func (s *Sampler) Probe(name string, fn func() uint64) {
	if len(s.cycles) > 0 {
		panic("metrics: Probe after first sample")
	}
	s.probes = append(s.probes, probe{name: name, fn: fn})
	s.cols = append(s.cols, nil)
}

// Tick advances the sampler to the global simulated cycle now, taking one
// sample per crossed window boundary. The fast path — no boundary crossed —
// is a single comparison.
func (s *Sampler) Tick(now int64) {
	if now < s.next {
		return
	}
	// One row per crossing, stamped at the boundary it crossed: a long
	// quiet stretch yields identical rows at each elapsed boundary rather
	// than a gap, so rates read directly as per-window deltas.
	for now >= s.next {
		s.sample(s.next)
		s.next += s.window
	}
}

// Flush takes one final sample at the given cycle if it is past the last
// sampled boundary, capturing the tail of the run.
func (s *Sampler) Flush(now int64) {
	if n := len(s.cycles); n > 0 && s.cycles[n-1] >= now {
		return
	}
	s.sample(now)
}

func (s *Sampler) sample(at int64) {
	s.cycles = append(s.cycles, at)
	for i := range s.probes {
		s.cols[i] = append(s.cols[i], s.probes[i].fn())
	}
}

// Rows returns the number of samples taken.
func (s *Sampler) Rows() int {
	if s == nil {
		return 0
	}
	return len(s.cycles)
}

// Series is the serialisable form of one sampled execution: a columnar table
// of cumulative counter values at each sampled cycle.
type Series struct {
	Label  string   `json:"label"`
	Window int64    `json:"window"`
	Cycles []int64  `json:"cycles"`
	Cols   []Column `json:"columns"`
}

// Column is one named value column, index-aligned with Cycles.
type Column struct {
	Name   string   `json:"name"`
	Values []uint64 `json:"values"`
}

// SeriesDoc is the machine-readable time-series document ("hmtx-series/v1").
// Column order is probe-registration order and series order is append order,
// so the document is byte-identical across runs and suite parallelism.
type SeriesDoc struct {
	Schema string   `json:"schema"`
	Scale  int      `json:"scale,omitempty"`
	Cores  int      `json:"cores,omitempty"`
	Series []Series `json:"series"`
}

// Snapshot renders the sampler's rows under the given label.
func (s *Sampler) Snapshot(label string) Series {
	out := Series{
		Label:  label,
		Window: s.window,
		Cycles: append([]int64(nil), s.cycles...),
	}
	for i := range s.probes {
		out.Cols = append(out.Cols, Column{
			Name:   s.probes[i].name,
			Values: append([]uint64(nil), s.cols[i]...),
		})
	}
	return out
}

// Col returns the named column, or nil if the series does not have it.
func (sr *Series) Col(name string) []uint64 {
	for i := range sr.Cols {
		if sr.Cols[i].Name == name {
			return sr.Cols[i].Values
		}
	}
	return nil
}

// Text renders the series as an aligned table of per-window deltas for every
// column (the cumulative values differenced row to row), which is the shape
// rates are read in.
func (sr *Series) Text() string {
	out := fmt.Sprintf("time series: %s (window %d cycles, %d samples)\n", sr.Label, sr.Window, len(sr.Cycles))
	var t stats.Table
	header := []string{"cycle"}
	for i := range sr.Cols {
		header = append(header, "Δ"+sr.Cols[i].Name)
	}
	t.Add(header...)
	for row := range sr.Cycles {
		line := []string{fmt.Sprint(sr.Cycles[row])}
		for i := range sr.Cols {
			// Signed difference: gauge columns (occupancy) can fall
			// between windows.
			v := int64(sr.Cols[i].Values[row])
			if row > 0 {
				v -= int64(sr.Cols[i].Values[row-1])
			}
			line = append(line, fmt.Sprint(v))
		}
		t.Add(line...)
	}
	return out + t.String()
}
