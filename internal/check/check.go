// Package check is a Murphi-style explicit-state model checker for the HMTX
// coherence protocol. It enumerates every configuration of a small bounded
// system — a few cores, line addresses and VIDs under a nondeterministic
// stimulus alphabet — reachable by driving the *real* internal/memsys
// implementation, not a re-specification: each explored edge deep-copies the
// hierarchy (memsys snapshot support), applies one stimulus, asserts the
// MOESI-San invariants plus end-to-end value properties against a sequential
// oracle, and canonicalizes the result for the visited set (DESIGN.md §12).
//
// The search is breadth-first, so the first property violation found is
// reported with a shortest stimulus trace, replayable with Config.Replay.
// Everything is deterministic: same bounds, byte-identical output.
package check

import (
	"fmt"

	"hmtx/internal/memsys"
	"hmtx/internal/vid"
)

// Config bounds the checked system and selects the stimulus alphabet.
type Config struct {
	// Cores is the number of cores/L1 caches (≥ 2 for cross-core traffic).
	Cores int
	// Addrs is the number of distinct line addresses stimuli may access.
	// All of them map to the same cache set, maximising version pressure.
	Addrs int
	// VIDs is the number of speculative transaction VIDs (1..VIDs); VID 0
	// is non-speculative execution.
	VIDs int
	// StoreVals is the number of distinct values stores may write (1..N).
	// Two suffices to distinguish versions; more widens the value space.
	StoreVals uint64
	// WrongPath adds squashed wrong-path loads (§5.1) to the alphabet.
	WrongPath bool
	// Evict adds forced evictions (capacity pressure, §5.4) to the
	// alphabet, from every cache and for every bounded address.
	Evict bool
	// L1Ways and L2Ways size the single-set caches (defaults 2 and 4).
	L1Ways, L2Ways int
	// MaxStates bounds the visited set; 0 means DefaultMaxStates. If the
	// bound is hit, Summary.Exhausted reports the truncation.
	MaxStates int
	// MaxDepth bounds the BFS depth; 0 means unbounded.
	MaxDepth int
	// InjectBug forwards a memsys.Bug* constant, deliberately re-breaking
	// a fixed protocol bug so tests can assert the checker finds it.
	InjectBug string
}

// DefaultMaxStates caps the visited set when Config.MaxStates is zero.
const DefaultMaxStates = 1 << 21

func (c Config) withDefaults() Config {
	if c.Cores == 0 {
		c.Cores = 2
	}
	if c.Addrs == 0 {
		c.Addrs = 1
	}
	if c.VIDs == 0 {
		c.VIDs = 1
	}
	if c.StoreVals == 0 {
		c.StoreVals = 2
	}
	if c.L1Ways == 0 {
		c.L1Ways = 2
	}
	if c.L2Ways == 0 {
		c.L2Ways = 4
	}
	if c.MaxStates == 0 {
		c.MaxStates = DefaultMaxStates
	}
	return c
}

// Validate reports whether the bounds are usable.
func (c Config) Validate() error {
	switch {
	case c.Cores < 1 || c.Cores > 8:
		return fmt.Errorf("check: Cores must be in 1..8, got %d", c.Cores)
	case c.Addrs < 1 || c.Addrs > 8:
		return fmt.Errorf("check: Addrs must be in 1..8, got %d", c.Addrs)
	case c.VIDs < 1 || c.VIDs > 15:
		return fmt.Errorf("check: VIDs must be in 1..15, got %d", c.VIDs)
	case c.StoreVals < 1 || c.StoreVals > 8:
		return fmt.Errorf("check: StoreVals must be in 1..8, got %d", c.StoreVals)
	case c.L1Ways < 1 || c.L2Ways < 1:
		return fmt.Errorf("check: cache ways must be positive")
	case c.MaxStates < 0 || c.MaxDepth < 0:
		return fmt.Errorf("check: negative bound")
	case c.InjectBug != "" && c.InjectBug != memsys.BugDupVersionOnMigrate && c.InjectBug != memsys.BugStaleCopyOnConvert:
		return fmt.Errorf("check: unknown InjectBug %q", c.InjectBug)
	}
	return nil
}

// memsysConfig builds the bounded hardware the checker drives: single-set
// caches (so the bounded addresses all contend), unit latencies (timing is
// irrelevant to reachability), MOESI-San always on.
func (c Config) memsysConfig() memsys.Config {
	bits := 1
	for (1<<bits)-1 < c.VIDs {
		bits++
	}
	return memsys.Config{
		Cores:      c.Cores,
		L1Size:     c.L1Ways * memsys.LineSize,
		L1Ways:     c.L1Ways,
		L2Size:     c.L2Ways * memsys.LineSize,
		L2Ways:     c.L2Ways,
		L1Lat:      1,
		L2Lat:      1,
		MemLat:     1,
		BusLat:     1,
		VIDSpace:   vid.Space{Bits: uint(bits)},
		SLAEnabled: true,
		Sanitize:   true,
		InjectBug:  c.InjectBug,
	}
}

// violation is a property failure: the checker's terminal finding.
type violation struct {
	Property string // "invariant", "value", "linearization" or "abort-erasure"
	Detail   string
}

func (v *violation) Error() string { return v.Property + ": " + v.Detail }

// lineAddrs returns the bounded line addresses, the scope of canonical
// encodings and property probes.
func (c Config) lineAddrs() []memsys.Addr {
	addrs := make([]memsys.Addr, c.Addrs)
	for i := range addrs {
		addrs[i] = addrOf(i)
	}
	return addrs
}

// applyStimulus applies s to (h, o) in place and checks every property on
// the resulting state. A Result.Conflict makes the edge compound: the
// hierarchy demands an abort, so AbortAll follows atomically, exactly as the
// engine reacts (engine aborts all uncommitted transactions on any conflict).
// Panics — MOESI-San assertions, findHit double-hit detection — are
// converted into invariant violations. The returned note annotates the edge
// for counterexample traces.
func (c Config) applyStimulus(h *memsys.Hierarchy, o *oracle, s Stimulus) (note string, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &violation{Property: "invariant", Detail: fmt.Sprint(r)}
		}
	}()

	ai := int(s.Addr / memsys.LineSize)
	aborted := false
	handleConflict := func(res memsys.Result) bool {
		if !res.Conflict {
			return false
		}
		h.AbortAll()
		o.abortAll()
		aborted = true
		note = "conflict (" + res.Cause + ") -> abort-all"
		return true
	}

	switch s.Op {
	case OpLoad:
		eff := s.VID
		if eff == vid.NonSpec {
			eff = h.LC()
		}
		val, res := h.Load(s.Core, s.Addr, s.VID)
		if !handleConflict(res) {
			if want := o.visible(ai, eff); val != want {
				return note, &violation{
					Property: "value",
					Detail:   fmt.Sprintf("load core %d line %#x vid %d returned %d, oracle expects %d", s.Core, s.Addr, s.VID, val, want),
				}
			}
		}
	case OpStore:
		res := h.Store(s.Core, s.Addr, s.Val, s.VID)
		if !handleConflict(res) {
			o.store(ai, s.VID, s.Val)
		}
	case OpWrongPath:
		// The architectural value of a squashed load is irrelevant; the
		// stimulus only matters for the shadow/SLA machinery it drives.
		_, res := h.WrongPathLoad(s.Core, s.Addr, s.VID)
		handleConflict(res)
	case OpCommit:
		h.Commit(s.VID)
		o.commit(s.VID)
	case OpAbortAll:
		h.AbortAll()
		o.abortAll()
		aborted = true
	case OpEvict:
		if ok, res := h.Evict(s.Cache, s.Addr); ok {
			handleConflict(res)
		}
	case OpVIDReset:
		// Legal only once every VID of the epoch has committed (§4.6);
		// the enumeration guarantees LC == VIDs here, so the oracle has
		// no outstanding writes left to carry over.
		h.VIDReset()
	}

	// Property: committed-value linearization. The committed image the
	// hierarchy serves to a non-speculative observer must always equal the
	// oracle's — this is also what makes lost speculative writes visible
	// the moment their transaction commits.
	for i := 0; i < c.Addrs; i++ {
		if got, want := h.PeekWord(addrOf(i)), o.committed[i]; got != want {
			return note, &violation{
				Property: "linearization",
				Detail:   fmt.Sprintf("committed value at line %#x is %d, oracle expects %d", addrOf(i), got, want),
			}
		}
	}

	// Property: abort erases all VID-tagged state (§4.4): no speculative
	// line and no wrong-path shadow mark survives an abort sweep.
	if aborted {
		for ci := 0; ci <= c.Cores; ci++ {
			for i := 0; i < c.Addrs; i++ {
				for _, ln := range h.Versions(ci, addrOf(i)) {
					if ln.St.Speculative() || ln.ShadowHigh != 0 {
						return note, &violation{
							Property: "abort-erasure",
							Detail:   fmt.Sprintf("cache %d line %#x still holds %s after abort", ci, addrOf(i), ln.String()),
						}
					}
				}
			}
		}
	}

	// Property: the full MOESI-San invariant set (1..8) over the whole
	// hierarchy, not just the lines the stimulus touched.
	if ierr := h.CheckInvariants(); ierr != nil {
		return note, &violation{Property: "invariant", Detail: ierr.Error()}
	}
	return note, nil
}

// edge records how a state was first reached, for counterexample paths.
type edge struct {
	parent int32
	depth  int32
	stim   Stimulus
}

// qent is a frontier entry: the materialised simulator state of a node.
// Expanded entries are zeroed so the BFS only retains the frontier's clones.
type qent struct {
	idx int32
	h   *memsys.Hierarchy
	o   *oracle
}

// Run explores the bounded state space to exhaustion (or to the state/depth
// bounds) and reports what it found. The error return is for invalid
// configurations only; property violations are reported in the Summary.
func Run(cfg Config) (*Summary, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	addrs := cfg.lineAddrs()
	sum := &Summary{Config: cfg}

	h0 := memsys.New(cfg.memsysConfig())
	o0 := newOracle(cfg.Addrs, cfg.VIDs)
	visited := map[string]struct{}{canonOf(h0, o0, addrs): {}}
	nodes := []edge{{parent: -1}}
	queue := []qent{{idx: 0, h: h0, o: o0}}

	var stimBuf []Stimulus
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		queue[head] = qent{} // release the clone once expanded
		depth := nodes[cur.idx].depth
		if cfg.MaxDepth > 0 && int(depth) >= cfg.MaxDepth {
			continue
		}
		if len(nodes) >= cfg.MaxStates {
			sum.Truncated = true
			break
		}
		stimBuf = cfg.enabled(cur.h.LC(), stimBuf)
		for _, s := range stimBuf {
			nh := cur.h.Clone()
			no := cur.o.clone()
			sum.Edges++
			_, err := cfg.applyStimulus(nh, no, s)
			if err != nil {
				sum.States = len(visited)
				sum.Violation = cfg.buildCounterexample(nodes, cur.idx, s, err)
				return sum, nil
			}
			key := canonOf(nh, no, addrs)
			if _, ok := visited[key]; ok {
				continue
			}
			visited[key] = struct{}{}
			nodes = append(nodes, edge{parent: cur.idx, depth: depth + 1, stim: s})
			queue = append(queue, qent{idx: int32(len(nodes) - 1), h: nh, o: no})
			if int(depth)+1 > sum.Depth {
				sum.Depth = int(depth) + 1
			}
		}
	}
	sum.States = len(visited)
	sum.Exhausted = !sum.Truncated
	return sum, nil
}

// canonOf builds the visited-set key: the exact canonical encoding (not a
// hash, so fingerprint collisions cannot silently merge distinct states) of
// the hierarchy plus the oracle.
func canonOf(h *memsys.Hierarchy, o *oracle, addrs []memsys.Addr) string {
	buf := h.AppendCanonical(nil, addrs)
	buf = o.appendCanon(buf)
	return string(buf)
}

// buildCounterexample reconstructs the shortest stimulus path to the failing
// edge and replays it from scratch to annotate each step.
func (c Config) buildCounterexample(nodes []edge, parent int32, failing Stimulus, err error) *Counterexample {
	var steps []Stimulus
	for i := parent; i > 0; i = nodes[i].parent {
		steps = append(steps, nodes[i].stim)
	}
	for l, r := 0, len(steps)-1; l < r; l, r = l+1, r-1 {
		steps[l], steps[r] = steps[r], steps[l]
	}
	steps = append(steps, failing)
	ce := &Counterexample{Property: "unknown", Detail: err.Error(), Steps: steps}
	if v, ok := err.(*violation); ok {
		ce.Property, ce.Detail = v.Property, v.Detail
	}
	ce.Notes, _ = c.Replay(steps)
	return ce
}

// Replay re-runs a stimulus sequence from the initial state, returning the
// per-step notes (conflict annotations) and the first property violation hit,
// if any. Replaying a Counterexample's Steps must reproduce its violation on
// the final step; anything else means nondeterminism and is itself a bug.
func (c Config) Replay(steps []Stimulus) (notes []string, err error) {
	cfg := c.withDefaults()
	if verr := cfg.Validate(); verr != nil {
		return nil, verr
	}
	h := memsys.New(cfg.memsysConfig())
	o := newOracle(cfg.Addrs, cfg.VIDs)
	for _, s := range steps {
		note, serr := cfg.applyStimulus(h, o, s)
		notes = append(notes, note)
		if serr != nil {
			return notes, serr
		}
	}
	return notes, nil
}
