package check

import (
	"fmt"

	"hmtx/internal/memsys"
	"hmtx/internal/vid"
)

// Op is one kind of protocol stimulus the checker can apply to a state.
type Op uint8

// The stimulus alphabet (DESIGN.md §12). Loads and stores with VID 0 are
// non-speculative; VIDs 1..Config.VIDs are speculative transactions.
const (
	OpLoad      Op = iota // Load by Core at Addr with VID
	OpStore               // Store of Val by Core at Addr with VID
	OpWrongPath           // squashed wrong-path load (§5.1) by Core at Addr with VID
	OpCommit              // Commit of VID (always LC+1, §4.7)
	OpAbortAll            // abort every uncommitted transaction (§4.4)
	OpEvict               // forced eviction of Addr from Cache (capacity pressure)
	OpVIDReset            // VID epoch reset (§4.6); legal once all VIDs committed
)

var opNames = [...]string{"load", "store", "wrongpath", "commit", "abort", "evict", "vidreset"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Stimulus is one nondeterministic protocol event: an edge label in the
// explored state graph.
type Stimulus struct {
	Op    Op
	Core  int // issuing core (OpLoad/OpStore/OpWrongPath)
	Cache int // cache index (OpEvict): 0..Cores-1 the L1s, Cores the L2
	Addr  memsys.Addr
	VID   vid.V
	Val   uint64 // stored value (OpStore)
}

// String renders the stimulus as the detail column of a trace line.
func (s Stimulus) String() string {
	switch s.Op {
	case OpLoad, OpWrongPath:
		return fmt.Sprintf("core %d line %#x vid %d", s.Core, s.Addr, s.VID)
	case OpStore:
		return fmt.Sprintf("core %d line %#x vid %d val %d", s.Core, s.Addr, s.VID, s.Val)
	case OpCommit:
		return fmt.Sprintf("vid %d", s.VID)
	case OpEvict:
		return fmt.Sprintf("cache %d line %#x", s.Cache, s.Addr)
	default: // OpAbortAll, OpVIDReset
		return ""
	}
}

// enabled returns the stimuli applicable from a state with the given LC VID,
// in a fixed enumeration order (the basis of the checker's determinism).
// Speculative stimuli use only VIDs in (lc, VIDs]: lower VIDs have committed
// and may not issue new accesses; aborted VIDs restart and are reused.
func (c Config) enabled(lc vid.V, buf []Stimulus) []Stimulus {
	buf = buf[:0]
	for v := vid.V(0); v <= vid.V(c.VIDs); v++ {
		if v != vid.NonSpec && v <= lc {
			continue
		}
		for core := 0; core < c.Cores; core++ {
			for ai := 0; ai < c.Addrs; ai++ {
				a := addrOf(ai)
				buf = append(buf, Stimulus{Op: OpLoad, Core: core, Addr: a, VID: v})
				for val := uint64(1); val <= c.StoreVals; val++ {
					buf = append(buf, Stimulus{Op: OpStore, Core: core, Addr: a, VID: v, Val: val})
				}
				if c.WrongPath && v != vid.NonSpec {
					buf = append(buf, Stimulus{Op: OpWrongPath, Core: core, Addr: a, VID: v})
				}
			}
		}
	}
	if int(lc) < c.VIDs {
		buf = append(buf, Stimulus{Op: OpCommit, VID: lc + 1})
	}
	buf = append(buf, Stimulus{Op: OpAbortAll})
	if c.Evict {
		for ci := 0; ci <= c.Cores; ci++ {
			for ai := 0; ai < c.Addrs; ai++ {
				buf = append(buf, Stimulus{Op: OpEvict, Cache: ci, Addr: addrOf(ai)})
			}
		}
	}
	if int(lc) == c.VIDs {
		buf = append(buf, Stimulus{Op: OpVIDReset})
	}
	return buf
}

// addrOf maps a bounded address index to a distinct line address. With the
// single-set cache geometry the checker uses, all of them contend for the
// same set, so version chains and evictions interact maximally.
func addrOf(ai int) memsys.Addr { return memsys.Addr(ai) * memsys.LineSize }
