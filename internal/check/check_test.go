package check

import (
	"bytes"
	"strings"
	"testing"

	"hmtx/internal/memsys"
)

// TestExhaustiveClean explores fast bounds to exhaustion and requires zero
// property violations plus a sane summary shape. The CI model-check job runs
// the wider evict+wrongpath bound through cmd/hmtxcheck; keeping that out of
// the unit suite keeps `go test ./...` (and especially -race) quick.
func TestExhaustiveClean(t *testing.T) {
	for _, cfg := range []Config{
		{Cores: 2, Addrs: 1, VIDs: 1, Evict: true},
		{Cores: 2, Addrs: 1, VIDs: 1, WrongPath: true},
	} {
		sum, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if sum.Violation != nil {
			t.Fatalf("violation at %+v:\n%s", cfg, sum.Violation.Trace())
		}
		if !sum.Exhausted || sum.Truncated {
			t.Fatalf("bound %+v not exhausted: states=%d truncated=%t", cfg, sum.States, sum.Truncated)
		}
		if sum.States < 100 || sum.Edges <= sum.States || sum.Depth < 3 {
			t.Fatalf("implausible exploration at %+v: states=%d edges=%d depth=%d", cfg, sum.States, sum.Edges, sum.Depth)
		}
		if !sum.OK() {
			t.Fatal("OK() must be true for a clean exhaustive run")
		}
	}
}

// injectedBugs pairs each re-injectable protocol bug (both were found by this
// checker and fixed in internal/memsys) with the smallest bounds that expose
// it.
var injectedBugs = []struct {
	name string
	cfg  Config
}{
	{memsys.BugStaleCopyOnConvert, Config{Cores: 2, Addrs: 1, VIDs: 1}},
	{memsys.BugDupVersionOnMigrate, Config{Cores: 2, Addrs: 1, VIDs: 2}},
}

// TestInjectedBugsCaught re-introduces each fixed protocol bug via
// Config.InjectBug and requires a counterexample whose replay reproduces the
// violation on its final step.
func TestInjectedBugsCaught(t *testing.T) {
	for _, tc := range injectedBugs {
		t.Run(tc.name, func(t *testing.T) {
			clean, err := Run(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if clean.Violation != nil {
				t.Fatalf("bounds violate even without the bug:\n%s", clean.Violation.Trace())
			}

			cfg := tc.cfg
			cfg.InjectBug = tc.name
			sum, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ce := sum.Violation
			if ce == nil {
				t.Fatalf("injected bug %q not caught (states=%d)", tc.name, sum.States)
			}
			if len(ce.Steps) == 0 || len(ce.Steps) > 8 {
				t.Fatalf("counterexample not minimal-looking: %d steps", len(ce.Steps))
			}
			if ce.Property == "unknown" || ce.Detail == "" {
				t.Fatalf("counterexample missing property/detail: %+v", ce)
			}
			if sum.OK() {
				t.Fatal("OK() must be false on a violation")
			}

			// The trace must replay: same steps from the initial state hit
			// the same violation on the final step and no earlier.
			notes, rerr := cfg.Replay(ce.Steps)
			if rerr == nil {
				t.Fatalf("replay of counterexample did not reproduce the violation\ntrace:\n%s", ce.Trace())
			}
			if rerr.Error() != ce.Property+": "+ce.Detail {
				t.Fatalf("replay violation %q != reported %q", rerr, ce.Property+": "+ce.Detail)
			}
			if len(notes) != len(ce.Steps) {
				t.Fatalf("replay stopped after %d of %d steps", len(notes), len(ce.Steps))
			}
			if prefix := ce.Steps[:len(ce.Steps)-1]; len(prefix) > 0 {
				if _, perr := cfg.Replay(prefix); perr != nil {
					t.Fatalf("violation fires before the final step: %v", perr)
				}
			}

			// The trace must render every step in hmtxtrace format.
			text := ce.Trace()
			if got := strings.Count(text, "\n"); got != len(ce.Steps) {
				t.Fatalf("Trace() has %d lines, want %d:\n%s", got, len(ce.Steps), text)
			}
		})
	}
}

// TestDeterministicOutput runs the same bounds twice and requires
// byte-identical text and JSON reports — the property the CI job and any
// triage workflow depend on. Run with -race this also shakes out unsynchronised
// state in the search.
func TestDeterministicOutput(t *testing.T) {
	cfg := Config{Cores: 2, Addrs: 1, VIDs: 2, InjectBug: memsys.BugDupVersionOnMigrate}
	run := func() (string, []byte) {
		sum, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		js, err := sum.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return sum.Text(), js
	}
	t1, j1 := run()
	t2, j2 := run()
	if t1 != t2 {
		t.Fatalf("Text() differs across runs:\n%s\n---\n%s", t1, t2)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("JSON() differs across runs:\n%s\n---\n%s", j1, j2)
	}
	if !strings.Contains(t1, "VIOLATION") {
		t.Fatalf("Text() of a violating run must say VIOLATION:\n%s", t1)
	}
}

// TestBoundsRespected checks MaxStates truncation and MaxDepth limiting.
func TestBoundsRespected(t *testing.T) {
	sum, err := Run(Config{Cores: 2, Addrs: 1, VIDs: 1, MaxStates: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Truncated || sum.Exhausted {
		t.Fatalf("MaxStates=10 must truncate: %+v", sum)
	}

	shallow, err := Run(Config{Cores: 2, Addrs: 1, VIDs: 1, MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if shallow.Depth > 2 {
		t.Fatalf("MaxDepth=2 exceeded: depth=%d", shallow.Depth)
	}
	full, err := Run(Config{Cores: 2, Addrs: 1, VIDs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if shallow.States >= full.States {
		t.Fatalf("depth-limited search found %d states, full search %d", shallow.States, full.States)
	}
}

// TestValidate rejects out-of-range bounds and unknown injected bugs.
func TestValidate(t *testing.T) {
	bad := []Config{
		{Cores: 9},
		{Addrs: 12},
		{VIDs: 99},
		{StoreVals: 42},
		{L1Ways: -1},
		{MaxStates: -5},
	}
	for _, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("Run(%+v) accepted invalid bounds", cfg)
		}
	}
	if _, err := Run(Config{InjectBug: "no-such-bug"}); err == nil {
		t.Error("unknown InjectBug accepted")
	}
}
