package check

import (
	"encoding/binary"

	"hmtx/internal/vid"
)

// oracle is the sequential reference semantics the hierarchy is checked
// against, in the style of property_test.go's refMem but VID-aware: HMTX
// transactions are ordered by VID, so a load with VID a must observe the
// latest store to the address by the highest VID at most a that has an
// outstanding (uncommitted, unaborted) write, falling back to the committed
// value (§4.1). Non-speculative accesses behave as VID LC.
//
// The oracle tracks one word per bounded line address, since the checker's
// stimuli only ever access word 0 of each line.
type oracle struct {
	addrs int
	vids  int
	// committed[ai] is the committed value of address ai.
	committed []uint64
	// pending[(v-1)*addrs+ai] is the outstanding write of VID v to address
	// ai, or -1 if v has not (re)written it.
	pending []int64
}

func newOracle(addrs, vids int) *oracle {
	o := &oracle{
		addrs:     addrs,
		vids:      vids,
		committed: make([]uint64, addrs),
		pending:   make([]int64, addrs*vids),
	}
	for i := range o.pending {
		o.pending[i] = -1
	}
	return o
}

func (o *oracle) clone() *oracle {
	c := &oracle{addrs: o.addrs, vids: o.vids}
	c.committed = append([]uint64(nil), o.committed...)
	c.pending = append([]int64(nil), o.pending...)
	return c
}

// visible returns the value a load with effective VID a must observe at
// address index ai.
func (o *oracle) visible(ai int, a vid.V) uint64 {
	v := int(a)
	if v > o.vids {
		v = o.vids
	}
	for ; v >= 1; v-- {
		if p := o.pending[(v-1)*o.addrs+ai]; p >= 0 {
			return uint64(p)
		}
	}
	return o.committed[ai]
}

// store records a write by VID v (vid.NonSpec writes the committed value
// directly: the hierarchy only lets a non-speculative store through when no
// speculative access is outstanding on the line, §4.3).
func (o *oracle) store(ai int, v vid.V, val uint64) {
	if v == vid.NonSpec {
		o.committed[ai] = val
		return
	}
	o.pending[(int(v)-1)*o.addrs+ai] = int64(val)
}

// commit applies VID v's outstanding writes to the committed image (§5.3).
func (o *oracle) commit(v vid.V) {
	for ai := 0; ai < o.addrs; ai++ {
		if p := o.pending[(int(v)-1)*o.addrs+ai]; p >= 0 {
			o.committed[ai] = uint64(p)
			o.pending[(int(v)-1)*o.addrs+ai] = -1
		}
	}
}

// abortAll discards every outstanding write: only uncommitted VIDs can have
// one (commit clears as it applies), and aborts flush all of those (§4.4).
func (o *oracle) abortAll() {
	for i := range o.pending {
		o.pending[i] = -1
	}
}

// appendCanon appends the oracle's state to the canonical encoding of a
// checker state.
func (o *oracle) appendCanon(buf []byte) []byte {
	for _, v := range o.committed {
		buf = binary.BigEndian.AppendUint64(buf, v)
	}
	for _, p := range o.pending {
		buf = binary.BigEndian.AppendUint64(buf, uint64(p))
	}
	return buf
}
