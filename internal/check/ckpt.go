package check

import (
	"encoding/json"
	"fmt"

	"hmtx/internal/memsys"
)

// Checkpoint support (hmtx-ckpt/v1, DESIGN.md §18): counterexamples are
// debugger entry points. hmtxcheck -emit-ckpt serialises the failing trace
// and final state; hmtxdbg re-materialises any prefix of it with ReplayTo.

// UnmarshalJSON parses the mnemonic form produced by MarshalJSON, so
// serialised counterexamples round-trip through checkpoint documents.
func (o *Op) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i, n := range opNames {
		if n == s {
			*o = Op(i)
			return nil
		}
	}
	return fmt.Errorf("check: unknown stimulus op %q", s)
}

// ReplayTo replays the first k steps (clamped to len(steps)) from the
// initial state and returns the live hierarchy for inspection, plus the
// number of steps actually applied. A property violation stops the replay
// and is returned alongside the hierarchy in the state that exhibits it —
// for a Counterexample's own trace that is the expected outcome of the
// final step, not a failure of the replay.
func (c Config) ReplayTo(steps []Stimulus, k int) (*memsys.Hierarchy, int, error) {
	cfg := c.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, 0, err
	}
	if k > len(steps) {
		k = len(steps)
	}
	h := memsys.New(cfg.memsysConfig())
	o := newOracle(cfg.Addrs, cfg.VIDs)
	for i := 0; i < k; i++ {
		if _, err := cfg.applyStimulus(h, o, steps[i]); err != nil {
			return h, i + 1, err
		}
	}
	return h, k, nil
}
