package check

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Counterexample is a property violation with the shortest stimulus sequence
// that reproduces it from the initial (all-invalid, zero-memory) state.
type Counterexample struct {
	Property string     `json:"property"`
	Detail   string     `json:"detail"`
	Steps    []Stimulus `json:"steps"`
	// Notes annotates each step from the verifying replay (conflict
	// causes and induced aborts); empty strings for unremarkable steps.
	Notes []string `json:"notes,omitempty"`
}

// Trace renders the stimulus sequence in the hmtxtrace layout: one numbered
// line per step, `seq: kind: detail`.
func (ce *Counterexample) Trace() string {
	var b strings.Builder
	for i, s := range ce.Steps {
		fmt.Fprintf(&b, "%10d: %-8s: %s", i, s.Op.String(), s.String())
		if i < len(ce.Notes) && ce.Notes[i] != "" {
			fmt.Fprintf(&b, "  [%s]", ce.Notes[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// MarshalJSON renders the op as its mnemonic, keeping JSON reports readable.
func (o Op) MarshalJSON() ([]byte, error) { return json.Marshal(o.String()) }

// Summary is the result of one Run: the explored space and the verdict.
type Summary struct {
	Config Config `json:"config"`
	// States is the number of distinct canonical states visited.
	States int `json:"states"`
	// Edges is the number of stimulus applications explored.
	Edges int `json:"edges"`
	// Depth is the largest BFS depth reached.
	Depth int `json:"depth"`
	// Exhausted reports that the reachable space was fully enumerated.
	Exhausted bool `json:"exhausted"`
	// Truncated reports that MaxStates stopped the search early.
	Truncated bool `json:"truncated,omitempty"`
	// Violation is the first (shortest-trace) property failure, or nil.
	Violation *Counterexample `json:"violation,omitempty"`
}

// OK reports a clean verdict: no property violation found.
func (s *Summary) OK() bool { return s.Violation == nil }

// Text renders the summary deterministically for terminals and golden tests.
func (s *Summary) Text() string {
	var b strings.Builder
	c := s.Config
	fmt.Fprintf(&b, "hmtxcheck: cores=%d addrs=%d vids=%d store-vals=%d wrongpath=%t evict=%t l1ways=%d l2ways=%d",
		c.Cores, c.Addrs, c.VIDs, c.StoreVals, c.WrongPath, c.Evict, c.L1Ways, c.L2Ways)
	if c.InjectBug != "" {
		fmt.Fprintf(&b, " inject=%s", c.InjectBug)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "states=%d edges=%d depth=%d exhausted=%t\n", s.States, s.Edges, s.Depth, s.Exhausted)
	if s.Truncated {
		fmt.Fprintf(&b, "search truncated at max-states=%d; the space was NOT exhausted\n", c.MaxStates)
	}
	if s.Violation == nil {
		b.WriteString("result: ok — every reachable state satisfies all properties\n")
		return b.String()
	}
	fmt.Fprintf(&b, "result: VIOLATION of property %q\n  %s\n", s.Violation.Property, s.Violation.Detail)
	fmt.Fprintf(&b, "counterexample (%d steps):\n", len(s.Violation.Steps))
	b.WriteString(s.Violation.Trace())
	return b.String()
}

// JSON renders the summary as deterministic indented JSON.
func (s *Summary) JSON() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }
