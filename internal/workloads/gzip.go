package workloads

import (
	"hmtx/internal/engine"
	"hmtx/internal/memsys"
	"hmtx/internal/paradigm"
)

// gzip models 164.gzip: block compression. Stage 1 advances the input
// offset (loop-carried) and publishes it; stage 2 compresses one block with
// an LZ77-style hash-chain dictionary private to the block (the
// parallelization the SMTX work used). Branches come from match/no-match
// decisions (Table 1: 14.6% branches, 2.68% misprediction, ~6.2M accesses
// per transaction at native scale).
type gzip struct {
	iters int
}

const (
	gzCur      = memsys.Addr(0x3000)
	gzProduced = memsys.Addr(0x3040)
	gzInput    = memsys.Addr(0x3100000)
	gzHashes   = memsys.Addr(0x3400000) // per-block hash tables
	gzOutput   = memsys.Addr(0x3800000) // per-block compressed output

	gzBlockWords = 128
	gzHashWords  = 256
	gzOutWords   = 96
	gzS1Work     = 10500 // stage-1 cycles: calibrated to Figure 8
)

func newGzip(scale int) paradigm.Loop { return &gzip{iters: 50 * scale} }

func (g *gzip) Name() string { return "164.gzip" }
func (g *gzip) Iters() int   { return g.iters }

func (g *gzip) Setup(h *memsys.Hierarchy) {
	for w := 0; w < g.iters*gzBlockWords; w++ {
		// Compressible input: long runs with noise.
		h.PokeWord(gzInput+memsys.Addr(w)*8, mix64(uint64(w/17))%4096)
	}
	h.PokeWord(gzCur, uint64(gzInput))
}

func (g *gzip) Stage1(e *engine.Env, it int) bool {
	cur := e.Load(gzCur)
	e.Store(gzProduced, cur)
	e.Store(gzCur, cur+gzBlockWords*8)
	// Sequential input handling (CRC, block framing).
	e.Compute(gzS1Work)
	e.Branch(30, it+1 < g.iters)
	return it+1 < g.iters
}

func (g *gzip) Stage2(e *engine.Env, it int) bool {
	blockBase := memsys.Addr(e.Load(gzProduced))
	htBase := gzHashes + memsys.Addr(it)*gzHashWords*8
	outBase := gzOutput + memsys.Addr(it)*gzOutWords*8

	outPos := 0
	var prev uint64
	for w := 0; w < gzBlockWords; w++ {
		v := e.Load(blockBase + memsys.Addr(w)*8)
		hash := mix64(v^prev<<3) % gzHashWords
		prev = v
		cand := e.Load(htBase + memsys.Addr(hash)*8)
		match := cand != 0 && cand == v
		// Match/no-match decision: calibrated to gzip's 2.68%
		// misprediction rate.
		e.Branch(31, chance(uint64(it), uint64(w), 27))
		if match {
			e.Compute(3) // extend the match
		} else {
			e.Store(htBase+memsys.Addr(hash)*8, v)
			if outPos < gzOutWords {
				e.Store(outBase+memsys.Addr(outPos)*8, v|uint64(w)<<48)
				outPos++
			}
			e.Compute(2)
		}
		if w%8 == 0 {
			e.Branch(32, true) // literal/length loop branch
		}
	}
	for outPos < gzOutWords/2 {
		e.Store(outBase+memsys.Addr(outPos)*8, prev)
		outPos++
	}
	// Huffman-style encoding pass: re-reads the block and the hash table
	// (lines this transaction already marked).
	var code uint64
	for w := 0; w < gzBlockWords; w++ {
		v := e.Load(blockBase + memsys.Addr(w)*8)
		code = mix64(code + v)
		if w%2 == 0 {
			code += e.Load(htBase + memsys.Addr(v%gzHashWords)*8)
		}
		e.Compute(1)
	}
	e.Store(outBase, code)
	return false
}

func (g *gzip) Checksum(h *memsys.Hierarchy) uint64 {
	var sum uint64
	for it := 0; it < g.iters; it++ {
		outBase := gzOutput + memsys.Addr(it)*gzOutWords*8
		for w := 0; w < gzOutWords; w += 3 {
			sum = mix64(sum ^ h.PeekWord(outBase+memsys.Addr(w)*8))
		}
	}
	return sum
}
