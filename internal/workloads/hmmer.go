package workloads

import (
	"hmtx/internal/engine"
	"hmtx/internal/memsys"
	"hmtx/internal/paradigm"
)

// hmmer models 456.hmmer: profile-HMM sequence scoring. Each iteration runs
// a Viterbi pass for one candidate sequence against the shared (read-only)
// model, writing the sequence's dynamic-programming row. The kernel is
// regular and compute-heavy with few branches (Table 1: 4.83% branches,
// 1.03% misprediction, ~1.7M accesses per transaction at native scale).
type hmmer struct {
	iters int
}

const (
	hmCur      = memsys.Addr(0x7000)
	hmProduced = memsys.Addr(0x7040)
	hmModel    = memsys.Addr(0x7100000) // shared HMM transition/emission scores
	hmSeqs     = memsys.Addr(0x7200000) // candidate sequences
	hmRows     = memsys.Addr(0x7400000) // per-sequence DP rows

	hmModelWords = 120
	hmSeqWords   = 30
	hmRowWords   = 64   // whole cache lines: rows of different iterations must not share a line
	hmS1Work     = 4400 // stage-1 cycles: calibrated to Figure 8
	hmStates     = 30   // model states scored per sequence position
)

func newHmmer(scale int) paradigm.Loop { return &hmmer{iters: 75 * scale} }

func (m *hmmer) Name() string { return "456.hmmer" }
func (m *hmmer) Iters() int   { return m.iters }

func (m *hmmer) Setup(h *memsys.Hierarchy) {
	for w := 0; w < hmModelWords; w++ {
		h.PokeWord(hmModel+memsys.Addr(w)*8, mix64(uint64(w))%512)
	}
	for it := 0; it < m.iters; it++ {
		base := hmSeqs + memsys.Addr(it)*hmSeqWords*8
		for w := 0; w < hmSeqWords; w++ {
			h.PokeWord(base+memsys.Addr(w)*8, mix64(uint64(it)<<10|uint64(w))%20)
		}
	}
	h.PokeWord(hmCur, uint64(hmSeqs))
}

func (m *hmmer) Stage1(e *engine.Env, it int) bool {
	cur := e.Load(hmCur)
	e.Store(hmProduced, cur)
	e.Store(hmCur, cur+hmSeqWords*8)
	// Sequential sequence fetch and normalisation.
	e.Compute(hmS1Work)
	e.Branch(70, it+1 < m.iters)
	return it+1 < m.iters
}

func (m *hmmer) Stage2(e *engine.Env, it int) bool {
	seqBase := memsys.Addr(e.Load(hmProduced))
	rowBase := hmRows + memsys.Addr(it)*hmRowWords*8

	var match, insert uint64
	for w := 0; w < hmSeqWords; w++ {
		sym := e.Load(seqBase + memsys.Addr(w)*8)
		// Every position scores every model state: the model lines are
		// re-read constantly within the transaction (Viterbi's inner
		// loop), so almost no load needs a fresh SLA.
		for st := 0; st < hmStates; st++ {
			em := e.Load(hmModel + memsys.Addr((sym+uint64(st)*4)%hmModelWords)*8)
			nm := maxU(match+em, insert+em>>1)
			insert = maxU(match, insert) + em&7
			match = nm
			e.Compute(2)
		}
		e.Store(rowBase+memsys.Addr(2*(w%32))*8, match)
		e.Store(rowBase+memsys.Addr(2*(w%32)+1)*8, insert)
		e.Branch(72, true) // position loop branch
		if w%8 == 0 {
			e.Branch(71, chance(uint64(it), uint64(w), 12))
		}
	}
	return false
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func (m *hmmer) Checksum(h *memsys.Hierarchy) uint64 {
	var sum uint64
	for it := 0; it < m.iters; it++ {
		rowBase := hmRows + memsys.Addr(it)*hmRowWords*8
		for w := 0; w < hmRowWords; w++ {
			sum = mix64(sum ^ h.PeekWord(rowBase+memsys.Addr(w)*8))
		}
	}
	return sum
}
