// Package workloads provides the eight benchmark kernels of the paper's
// evaluation (Table 1): seven SPEC benchmarks and one MiBench benchmark,
// re-created as synthetic kernels whose parallelization paradigm, memory
// footprint, branch behaviour and speculative-access counts are calibrated
// to the published statistics (scaled down so full runs complete in seconds
// of host time; see EXPERIMENTS.md for the scale factors).
//
// Every kernel follows the paradigm.Loop decomposition: stage 1 advances a
// loop-carried cursor held in simulated memory and publishes the iteration's
// input through versioned memory (the producedNode pattern of Figure 3);
// stage 2 performs the iteration's work. All mutable state lives in
// simulated memory, so kernels replay correctly after misspeculation.
package workloads

import (
	"fmt"

	"hmtx/internal/paradigm"
)

// Spec describes one benchmark.
type Spec struct {
	// Name is the benchmark's name as it appears in the paper.
	Name string
	// Paradigm is the parallelization paradigm of Table 1.
	Paradigm paradigm.Kind
	// HasSMTX reports whether the paper has an SMTX comparison for this
	// benchmark (6 of the 8; 186.crafty and ispell do not, §6.1).
	HasSMTX bool
	// HotLoopPct is the hot loop's share of native execution time
	// (Table 1), used to convert hot-loop speedup to whole-program
	// speedup via Amdahl's law.
	HotLoopPct float64
	// New constructs the kernel. scale multiplies the iteration count;
	// scale 1 is the configuration used in EXPERIMENTS.md.
	New func(scale int) paradigm.Loop `json:"-"`
}

// All returns the eight benchmarks in the paper's order (Table 1).
func All() []Spec {
	return []Spec{
		{Name: "052.alvinn", Paradigm: paradigm.DOALL, HasSMTX: true, HotLoopPct: 85.5,
			New: func(s int) paradigm.Loop { return newAlvinn(s) }},
		{Name: "130.li", Paradigm: paradigm.PSDSWP, HasSMTX: true, HotLoopPct: 100,
			New: func(s int) paradigm.Loop { return newLi(s) }},
		{Name: "164.gzip", Paradigm: paradigm.PSDSWP, HasSMTX: true, HotLoopPct: 98.4,
			New: func(s int) paradigm.Loop { return newGzip(s) }},
		{Name: "186.crafty", Paradigm: paradigm.PSDSWP, HasSMTX: false, HotLoopPct: 99.5,
			New: func(s int) paradigm.Loop { return newCrafty(s) }},
		{Name: "197.parser", Paradigm: paradigm.PSDSWP, HasSMTX: true, HotLoopPct: 100,
			New: func(s int) paradigm.Loop { return newParser(s) }},
		{Name: "256.bzip2", Paradigm: paradigm.PSDSWP, HasSMTX: true, HotLoopPct: 98.5,
			New: func(s int) paradigm.Loop { return newBzip2(s) }},
		{Name: "456.hmmer", Paradigm: paradigm.PSDSWP, HasSMTX: true, HotLoopPct: 100,
			New: func(s int) paradigm.Loop { return newHmmer(s) }},
		{Name: "ispell", Paradigm: paradigm.PSDSWP, HasSMTX: false, HotLoopPct: 86.5,
			New: func(s int) paradigm.Loop { return newIspell(s) }},
	}
}

// ByName returns the spec for a benchmark name.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workloads: unknown benchmark %q", name)
}

// mix64 is the splitmix64 finalizer: a cheap, deterministic hash used to
// derive per-iteration data patterns and branch outcomes.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// chance reports a deterministic pseudo-random event with probability
// per1000/1000, derived from the pair (a, b). Kernels use it for
// data-dependent branch outcomes with a target misprediction rate.
func chance(a, b uint64, per1000 uint64) bool {
	return mix64(a*0x1000193+b)%1000 < per1000
}
