package workloads

import (
	"testing"

	"hmtx/internal/engine"
	"hmtx/internal/hmtx"
	"hmtx/internal/memsys"
	"hmtx/internal/paradigm"
	"hmtx/internal/smtx"
)

// checksummer is implemented by every kernel so executions can be compared.
type checksummer interface {
	Checksum(h *memsys.Hierarchy) uint64
}

// runSeq executes the loop sequentially and returns (cycles, checksum).
func runSeq(t *testing.T, spec Spec, scale int) (int64, uint64) {
	t.Helper()
	sys := engine.New(engine.DefaultConfig())
	loop := spec.New(scale)
	loop.Setup(sys.Mem)
	cyc := paradigm.RunSequential(sys, loop)
	return cyc, loop.(checksummer).Checksum(sys.Mem)
}

func TestAllBenchmarksHMTXMatchSequential(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			_, want := runSeq(t, spec, 1)

			sys := engine.New(engine.DefaultConfig())
			loop := spec.New(1)
			loop.Setup(sys.Mem)
			out := hmtx.Run(sys, loop, spec.Paradigm, 4)
			if out.Aborts != 0 {
				t.Errorf("aborts = %d, want 0 (only high-confidence speculation, §6.3)", out.Aborts)
			}
			if out.Iterations != loop.Iters() {
				t.Errorf("iterations = %d, want %d", out.Iterations, loop.Iters())
			}
			if got := loop.(checksummer).Checksum(sys.Mem); got != want {
				t.Errorf("checksum = %#x, want %#x (sequential)", got, want)
			}
		})
	}
}

func TestAllBenchmarksSMTXMatchSequential(t *testing.T) {
	for _, spec := range All() {
		if !spec.HasSMTX {
			continue
		}
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			_, want := runSeq(t, spec, 1)
			for _, mode := range []smtx.Mode{smtx.MinSet, smtx.MaxSet} {
				sys := engine.New(engine.DefaultConfig())
				loop := spec.New(1)
				loop.Setup(sys.Mem)
				out := smtx.Run(sys, loop, spec.Paradigm, 4, mode, smtx.DefaultConfig())
				if out.Iterations != loop.Iters() {
					t.Errorf("%v: iterations = %d, want %d", mode, out.Iterations, loop.Iters())
				}
				if got := loop.(checksummer).Checksum(sys.Mem); got != want {
					t.Errorf("%v: checksum = %#x, want %#x", mode, got, want)
				}
			}
		})
	}
}

func TestBenchmarksSpeedUpUnderHMTX(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			seq, _ := runSeq(t, spec, 1)
			sys := engine.New(engine.DefaultConfig())
			loop := spec.New(1)
			loop.Setup(sys.Mem)
			out := hmtx.Run(sys, loop, spec.Paradigm, 4)
			speedup := float64(seq) / float64(out.Cycles)
			t.Logf("%s %v: seq=%d par=%d speedup=%.2fx", spec.Name, spec.Paradigm, seq, out.Cycles, speedup)
			if speedup <= 1.0 {
				t.Errorf("speedup %.2f <= 1; HMTX should profit on every benchmark (Figure 8)", speedup)
			}
		})
	}
}

func TestBenchmarkDeterminism(t *testing.T) {
	spec, err := ByName("164.gzip")
	if err != nil {
		t.Fatal(err)
	}
	run := func() (int64, uint64) {
		sys := engine.New(engine.DefaultConfig())
		loop := spec.New(1)
		loop.Setup(sys.Mem)
		out := hmtx.Run(sys, loop, spec.Paradigm, 4)
		return out.Cycles, loop.(checksummer).Checksum(sys.Mem)
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 || s1 != s2 {
		t.Fatalf("non-deterministic: (%d,%#x) vs (%d,%#x)", c1, s1, c2, s2)
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("no-such-benchmark"); err == nil {
		t.Fatal("ByName should fail for unknown benchmarks")
	}
	for _, spec := range All() {
		got, err := ByName(spec.Name)
		if err != nil || got.Name != spec.Name {
			t.Fatalf("ByName(%q) = %v, %v", spec.Name, got.Name, err)
		}
	}
}
