package workloads

import (
	"hmtx/internal/engine"
	"hmtx/internal/memsys"
	"hmtx/internal/paradigm"
)

// bzip2 models 256.bzip2: blockwise Burrows-Wheeler-style transformation.
// Each iteration reads a block, builds bucket counts (radix pass), and
// writes a transformed block — the largest read and write sets of the suite
// (Figure 9: 16 MB combined at native scale; 131M accesses per transaction).
type bzip2 struct {
	iters int
}

const (
	bzCur      = memsys.Addr(0x6000)
	bzProduced = memsys.Addr(0x6040)
	bzInput    = memsys.Addr(0x6100000)
	bzCounts   = memsys.Addr(0x6800000) // per-block radix counts
	bzOutput   = memsys.Addr(0x6C00000) // per-block transformed output

	bzBlockWords = 512
	bzCountWords = 256
	bzS1Work     = 66000 // stage-1 cycles: calibrated to Figure 8
)

func newBzip2(scale int) paradigm.Loop { return &bzip2{iters: 25 * scale} }

func (b *bzip2) Name() string { return "256.bzip2" }
func (b *bzip2) Iters() int   { return b.iters }

func (b *bzip2) Setup(h *memsys.Hierarchy) {
	for w := 0; w < b.iters*bzBlockWords; w++ {
		h.PokeWord(bzInput+memsys.Addr(w)*8, mix64(uint64(w/9))%65536)
	}
	h.PokeWord(bzCur, uint64(bzInput))
}

func (b *bzip2) Stage1(e *engine.Env, it int) bool {
	cur := e.Load(bzCur)
	e.Store(bzProduced, cur)
	e.Store(bzCur, cur+bzBlockWords*8)
	// Sequential run-length pre-pass over the block.
	e.Compute(bzS1Work)
	e.Branch(60, it+1 < b.iters)
	return it+1 < b.iters
}

func (b *bzip2) Stage2(e *engine.Env, it int) bool {
	blockBase := memsys.Addr(e.Load(bzProduced))
	countBase := bzCounts + memsys.Addr(it)*bzCountWords*8
	outBase := bzOutput + memsys.Addr(it)*bzBlockWords*8

	// Pass 1: radix bucket counting.
	for w := 0; w < bzBlockWords; w++ {
		v := e.Load(blockBase + memsys.Addr(w)*8)
		bucket := v % bzCountWords
		cnt := e.Load(countBase + memsys.Addr(bucket)*8)
		e.Store(countBase+memsys.Addr(bucket)*8, cnt+1)
		if w%8 == 0 {
			e.Branch(61, true) // block-scan loop branch
		}
		if w%16 == 0 {
			// Run-length detection branch: data-dependent.
			e.Branch(62, chance(uint64(it), uint64(w), 45))
		}
	}
	// Pass 2: emit the transformed block using the counts.
	var rot uint64
	for w := 0; w < bzBlockWords; w++ {
		v := e.Load(blockBase + memsys.Addr(w)*8)
		c := e.Load(countBase + memsys.Addr(v%bzCountWords)*8)
		rot = mix64(rot + v + c)
		e.Store(outBase+memsys.Addr((w+int(rot%7))%bzBlockWords)*8, rot)
		e.Compute(1)
		if w%8 == 0 {
			e.Branch(63, true)
		}
	}
	return false
}

func (b *bzip2) Checksum(h *memsys.Hierarchy) uint64 {
	var sum uint64
	for it := 0; it < b.iters; it++ {
		outBase := bzOutput + memsys.Addr(it)*bzBlockWords*8
		for w := 0; w < bzBlockWords; w += 7 {
			sum = mix64(sum ^ h.PeekWord(outBase+memsys.Addr(w)*8))
		}
	}
	return sum
}
