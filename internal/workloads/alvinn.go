package workloads

import (
	"hmtx/internal/engine"
	"hmtx/internal/memsys"
	"hmtx/internal/paradigm"
)

// alvinn models 052.alvinn: neural-network training over input patterns.
// Each iteration trains on one pattern: it reads the pattern's input
// activations and the shared weight matrix, and writes a per-pattern weight
// delta and output vector. Iterations are independent, so the loop runs
// DOALL (Table 1) — but under speculation, every load and store is still
// validated by the HMTX system.
//
// Calibration targets (Table 1, scaled ~1/1000): ~2,290 speculative accesses
// per transaction, 11.5% branches, 0.245% misprediction rate.
type alvinn struct {
	iters int
}

const (
	alvWeights = memsys.Addr(0x1000000) // shared, read-only during the loop
	alvInputs  = memsys.Addr(0x1400000) // per-pattern inputs
	alvDeltas  = memsys.Addr(0x1800000) // per-pattern weight deltas (written)
	alvOuts    = memsys.Addr(0x1C00000) // per-pattern outputs (written)

	alvWeightWords = 832 // 104 lines of shared weights, re-read on every pass
	alvPasses      = 4   // forward/backward over two layers
	alvInWords     = 64
	alvDeltaWords  = 416
	alvOutWords    = 32
)

func newAlvinn(scale int) paradigm.Loop { return &alvinn{iters: 24 * scale} }

func (a *alvinn) Name() string { return "052.alvinn" }
func (a *alvinn) Iters() int   { return a.iters }

func (a *alvinn) Setup(h *memsys.Hierarchy) {
	for w := 0; w < alvWeightWords; w++ {
		h.PokeWord(alvWeights+memsys.Addr(w)*8, mix64(uint64(w))%997)
	}
	for it := 0; it < a.iters; it++ {
		base := alvInputs + memsys.Addr(it)*alvInWords*8
		for w := 0; w < alvInWords; w++ {
			h.PokeWord(base+memsys.Addr(w)*8, mix64(uint64(it)<<16|uint64(w))%255)
		}
	}
}

func (a *alvinn) Stage1(e *engine.Env, it int) bool { return it+1 < a.iters }

func (a *alvinn) Stage2(e *engine.Env, it int) bool {
	inBase := alvInputs + memsys.Addr(it)*alvInWords*8
	deltaBase := alvDeltas + memsys.Addr(it)*alvDeltaWords*8
	outBase := alvOuts + memsys.Addr(it)*alvOutWords*8

	var acc uint64
	// Forward and backward passes over both layers: the shared weights
	// are re-read on every pass, so most accesses hit lines the
	// transaction already marked (high intra-transaction locality).
	for pass := 0; pass < alvPasses; pass++ {
		for w := 0; w < alvWeightWords; w++ {
			wv := e.Load(alvWeights + memsys.Addr(w)*8)
			if w%(alvWeightWords/alvInWords) == 0 {
				acc += e.Load(inBase + memsys.Addr(w/(alvWeightWords/alvInWords))*8)
			}
			acc += wv * (acc&7 + 1)
			if w%8 == 0 {
				e.Compute(2)
				// Highly predictable data-dependent branch
				// (saturation check): taken very rarely.
				e.Branch(10, chance(uint64(it), uint64(pass)<<16|uint64(w), 2))
			}
		}
	}
	// Backward pass: write the per-pattern weight delta.
	for w := 0; w < alvDeltaWords; w++ {
		e.Store(deltaBase+memsys.Addr(w)*8, acc^mix64(uint64(w)))
		if w%16 == 0 {
			e.Branch(11, true) // loop-style branch, always predicted
		}
	}
	for w := 0; w < alvOutWords; w++ {
		e.Store(outBase+memsys.Addr(w)*8, acc>>uint(w%8))
	}
	return false
}

// Checksum folds the written regions so tests can compare executions.
func (a *alvinn) Checksum(h *memsys.Hierarchy) uint64 {
	var sum uint64
	for it := 0; it < a.iters; it++ {
		deltaBase := alvDeltas + memsys.Addr(it)*alvDeltaWords*8
		outBase := alvOuts + memsys.Addr(it)*alvOutWords*8
		for w := 0; w < alvDeltaWords; w += 7 {
			sum = mix64(sum ^ h.PeekWord(deltaBase+memsys.Addr(w)*8))
		}
		for w := 0; w < alvOutWords; w++ {
			sum = mix64(sum ^ h.PeekWord(outBase+memsys.Addr(w)*8))
		}
	}
	return sum
}
