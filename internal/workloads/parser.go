package workloads

import (
	"hmtx/internal/engine"
	"hmtx/internal/memsys"
	"hmtx/internal/paradigm"
)

// parser models 197.parser: link-grammar parsing of one sentence per
// iteration. Each word is looked up in a shared chained-hash dictionary
// (pointer chasing through linked nodes) and parse structures are written to
// a per-sentence region. Table 1: ~24.7M accesses per transaction at native
// scale, 19.2% branches, 1.05% misprediction; the paper notes parser was one
// of two benchmarks whose non-speculative S-O lines overflowed the caches.
type parser struct {
	iters int
}

const (
	paCur      = memsys.Addr(0x5000)
	paProduced = memsys.Addr(0x5040)
	paDict     = memsys.Addr(0x5100000) // shared dictionary: buckets + chains
	paOut      = memsys.Addr(0x5800000) // per-sentence parse output

	paBuckets   = 1024
	paChainLen  = 12
	paWords     = 40 // words per sentence
	paPasses    = 3  // linkage attempts re-walking the same chains
	paOutWords  = 480
	paNodeWords = 2     // [value, next]
	paS1Work    = 45000 // stage-1 cycles: calibrated to Figure 8
)

func newParser(scale int) paradigm.Loop { return &parser{iters: 36 * scale} }

func (p *parser) Name() string { return "197.parser" }
func (p *parser) Iters() int   { return p.iters }

func (p *parser) Setup(h *memsys.Hierarchy) {
	// Bucket heads at paDict; chain nodes behind them.
	nodeBase := paDict + memsys.Addr(paBuckets)*8
	next := nodeBase
	for b := 0; b < paBuckets; b++ {
		h.PokeWord(paDict+memsys.Addr(b)*8, uint64(next))
		for n := 0; n < paChainLen; n++ {
			h.PokeWord(next, mix64(uint64(b)<<8|uint64(n)))
			nxt := next + paNodeWords*8
			if n == paChainLen-1 {
				h.PokeWord(next+8, 0)
			} else {
				h.PokeWord(next+8, uint64(nxt))
			}
			next = nxt
		}
	}
	h.PokeWord(paCur, 1)
}

func (p *parser) Stage1(e *engine.Env, it int) bool {
	cur := e.Load(paCur)
	e.Store(paProduced, mix64(cur)) // the sentence seed
	e.Store(paCur, cur+1)
	// Sequential tokenization and sentence setup.
	e.Compute(paS1Work)
	e.Branch(50, it+1 < p.iters)
	return it+1 < p.iters
}

func (p *parser) Stage2(e *engine.Env, it int) bool {
	seed := e.Load(paProduced)
	outBase := paOut + memsys.Addr(it)*paOutWords*8

	outPos := 0
	for pass := 0; pass < paPasses; pass++ {
		for w := 0; w < paWords; w++ {
			wordKey := mix64(seed + uint64(w))
			bucket := wordKey % paBuckets
			node := e.Load(paDict + memsys.Addr(bucket)*8)
			// Walk the chain looking for the word; chain-walk branches
			// are regular (almost always continue), so mispredictions
			// stay low (1.05%).
			for n := 0; node != 0 && n < paChainLen; n++ {
				val := e.Load(memsys.Addr(node))
				found := val%64 == wordKey%64
				e.Branch(51, found)
				if found {
					break
				}
				node = e.Load(memsys.Addr(node) + 8)
				e.Compute(1)
			}
			// Emit parse links for this word.
			for k := 0; k < 4 && outPos < paOutWords; k++ {
				e.Store(outBase+memsys.Addr(outPos)*8, wordKey^uint64(k)<<32)
				outPos++
			}
			if chance(seed, uint64(pass)<<8|uint64(w), 10) {
				e.Branch(52, true) // rare reparse path
				e.Compute(20)
			} else {
				e.Branch(52, false)
			}
		}
	}
	return false
}

func (p *parser) Checksum(h *memsys.Hierarchy) uint64 {
	var sum uint64
	for it := 0; it < p.iters; it++ {
		outBase := paOut + memsys.Addr(it)*paOutWords*8
		for w := 0; w < paOutWords; w += 4 {
			sum = mix64(sum ^ h.PeekWord(outBase+memsys.Addr(w)*8))
		}
	}
	return sum
}
