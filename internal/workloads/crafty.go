package workloads

import (
	"hmtx/internal/engine"
	"hmtx/internal/memsys"
	"hmtx/internal/paradigm"
)

// crafty models 186.crafty: game-tree search. Each iteration analyses one
// position: it probes a large shared (read-only) transposition table, scores
// candidate moves, and records history scores in a per-position region. The
// kernel has the suite's highest branch misprediction rate (Table 1: 5.59%
// with 13.1% branches), making it the stress test for SLAs (§5.1).
type crafty struct {
	iters int
}

const (
	crCur      = memsys.Addr(0x4000)
	crProduced = memsys.Addr(0x4040)
	crTT       = memsys.Addr(0x4100000) // shared transposition table
	crHistory  = memsys.Addr(0x4800000) // per-position history scores

	crTTWords   = 32768 // 256KB shared table
	crNodes     = 120   // positions searched per iteration
	crHistWords = 64
	crS1Work    = 10800 // stage-1 cycles: calibrated to Figure 8
)

func newCrafty(scale int) paradigm.Loop { return &crafty{iters: 64 * scale} }

func (c *crafty) Name() string { return "186.crafty" }
func (c *crafty) Iters() int   { return c.iters }

func (c *crafty) Setup(h *memsys.Hierarchy) {
	for w := 0; w < crTTWords; w += 2 {
		h.PokeWord(crTT+memsys.Addr(w)*8, mix64(uint64(w)))
		h.PokeWord(crTT+memsys.Addr(w+1)*8, mix64(uint64(w))%2048)
	}
	h.PokeWord(crCur, 1)
}

func (c *crafty) Stage1(e *engine.Env, it int) bool {
	cur := e.Load(crCur)
	e.Store(crProduced, mix64(cur)) // the position key to search
	e.Store(crCur, cur+1)
	// Sequential move generation and board update for the position.
	e.Compute(crS1Work)
	e.Branch(40, it+1 < c.iters)
	return it+1 < c.iters
}

func (c *crafty) Stage2(e *engine.Env, it int) bool {
	key := e.Load(crProduced)
	histBase := crHistory + memsys.Addr(it)*crHistWords*8

	// The search re-probes a small working set of transposition entries
	// (the subtree's relevant positions), so most probes hit lines the
	// transaction already marked.
	window := (mix64(key) % (crTTWords/2 - 64))
	var best uint64
	for n := 0; n < crNodes; n++ {
		probe := window + mix64(key+uint64(n))%64
		sig := e.Load(crTT + memsys.Addr(probe*2)*8)
		score := e.Load(crTT + memsys.Addr(probe*2+1)*8)
		// Transposition hit and alpha-beta cutoff branches: highly
		// data-dependent, mispredicted often (Table 1: 5.59%).
		hit := chance(key, uint64(n)*3+1, 35)
		e.Branch(41, hit)
		if hit {
			e.Compute(4)
			_ = sig
		}
		cutoff := chance(key, uint64(n), 60)
		e.Branch(42, cutoff)
		if score > best {
			best = score
		}
		if n%4 == 0 {
			e.Store(histBase+memsys.Addr(n/4%crHistWords)*8, best+uint64(n))
		}
		e.Compute(3)
	}
	e.Store(histBase, best)
	return false
}

func (c *crafty) Checksum(h *memsys.Hierarchy) uint64 {
	var sum uint64
	for it := 0; it < c.iters; it++ {
		histBase := crHistory + memsys.Addr(it)*crHistWords*8
		for w := 0; w < crHistWords; w += 2 {
			sum = mix64(sum ^ h.PeekWord(histBase+memsys.Addr(w)*8))
		}
	}
	return sum
}
