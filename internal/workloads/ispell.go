package workloads

import (
	"hmtx/internal/engine"
	"hmtx/internal/memsys"
	"hmtx/internal/paradigm"
)

// ispell models MiBench's ispell: spell checking one word per iteration
// against a shared hash dictionary with affix-stripping retries. The
// transactions are tiny (Table 1: ~43K accesses per transaction at native
// scale — by far the smallest of the suite) and branchy (16.6% branches,
// 2.82% misprediction), so per-transaction overheads dominate and the
// benchmark sees the smallest speedup.
type ispell struct {
	iters int
}

const (
	isCur      = memsys.Addr(0x8000)
	isProduced = memsys.Addr(0x8040)
	isDict     = memsys.Addr(0x8100000)
	isAffix    = memsys.Addr(0x8200000) // shared affix table
	isOut      = memsys.Addr(0x8300000) // per-word check results

	isBuckets    = 512
	isChainLen   = 4
	isAffixWords = 64
	isOutWords   = 4
	isS1Work     = 3700 // stage-1 cycles: calibrated to Figure 8
)

func newIspell(scale int) paradigm.Loop { return &ispell{iters: 100 * scale} }

func (s *ispell) Name() string { return "ispell" }
func (s *ispell) Iters() int   { return s.iters }

func (s *ispell) Setup(h *memsys.Hierarchy) {
	nodeBase := isDict + memsys.Addr(isBuckets)*8
	next := nodeBase
	for b := 0; b < isBuckets; b++ {
		h.PokeWord(isDict+memsys.Addr(b)*8, uint64(next))
		for n := 0; n < isChainLen; n++ {
			h.PokeWord(next, mix64(uint64(b)<<4|uint64(n)))
			nxt := next + 16
			if n == isChainLen-1 {
				h.PokeWord(next+8, 0)
			} else {
				h.PokeWord(next+8, uint64(nxt))
			}
			next = nxt
		}
	}
	for w := 0; w < isAffixWords; w++ {
		h.PokeWord(isAffix+memsys.Addr(w)*8, mix64(uint64(w)+99))
	}
	h.PokeWord(isCur, 1)
}

func (s *ispell) Stage1(e *engine.Env, it int) bool {
	cur := e.Load(isCur)
	e.Store(isProduced, mix64(cur)) // the word to check
	e.Store(isCur, cur+1)
	// Sequential input scanning and token classification.
	e.Compute(isS1Work)
	e.Branch(80, it+1 < s.iters)
	return it+1 < s.iters
}

func (s *ispell) Stage2(e *engine.Env, it int) bool {
	word := e.Load(isProduced)
	outBase := isOut + memsys.Addr(it)*memsys.LineSize

	found := uint64(0)
	// Hash lookup with affix-stripping retries (up to 3 word forms).
	for form := 0; form < 3 && found == 0; form++ {
		key := mix64(word + uint64(form)*0x9E37)
		node := e.Load(isDict + memsys.Addr(key%isBuckets)*8)
		for n := 0; node != 0 && n < isChainLen; n++ {
			val := e.Load(memsys.Addr(node))
			hit := val%32 == key%32
			e.Branch(81, hit)
			if hit {
				found = val
				break
			}
			node = e.Load(memsys.Addr(node) + 8)
		}
		if found == 0 {
			// Strip an affix and retry: moderately unpredictable.
			aff := e.Load(isAffix + memsys.Addr(key%isAffixWords)*8)
			e.Branch(82, chance(word, uint64(form), 40))
			e.Compute(3)
			word ^= aff >> 5
		}
	}
	// Capitalisation/verification passes re-walk the first chain and the
	// affix entries (already-marked lines: no further SLAs).
	for pass := 0; pass < 3; pass++ {
		key := mix64(word)
		node := e.Load(isDict + memsys.Addr(key%isBuckets)*8)
		for n := 0; node != 0 && n < isChainLen; n++ {
			v := e.Load(memsys.Addr(node))
			node = e.Load(memsys.Addr(node) + 8)
			found ^= v >> uint(pass)
			e.Branch(83, true)
		}
		e.Compute(4)
	}
	e.Store(outBase, found)
	e.Store(outBase+8, word)
	return false
}

func (s *ispell) Checksum(h *memsys.Hierarchy) uint64 {
	var sum uint64
	for it := 0; it < s.iters; it++ {
		outBase := isOut + memsys.Addr(it)*memsys.LineSize
		sum = mix64(sum ^ h.PeekWord(outBase) ^ h.PeekWord(outBase+8))
	}
	return sum
}
