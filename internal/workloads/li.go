package workloads

import (
	"hmtx/internal/engine"
	"hmtx/internal/memsys"
	"hmtx/internal/paradigm"
)

// li models 130.li: a Lisp interpreter evaluating one expression per
// iteration. Stage 1 pops the next expression root and bump-allocates the
// iteration's result region (both loop-carried); stage 2 walks the cons-cell
// tree and writes result cells. The transactions are the largest of the
// suite (Table 1: 181M speculative accesses per transaction at native scale)
// with branchy, pointer-chasing control flow (20.5% branches, 3.65%
// misprediction).
type li struct {
	iters int
	alloc memsys.Addr // setup-time cell allocator
}

const (
	liExprCur  = memsys.Addr(0x2000) // cursor into the expression list
	liProduced = memsys.Addr(0x2040) // produced expression pointer
	liAllocCur = memsys.Addr(0x2080) // bump allocator for result regions
	liExprs    = memsys.Addr(0x2100000)
	liHeap     = memsys.Addr(0x2200000)
	liResults  = memsys.Addr(0x2800000)

	liTreeBudget  = 1200 // cons cells per expression tree
	liResultWords = 384
	liS1Work      = 90000 // stage-1 cycles: calibrated to Figure 8
	liMarkCells   = 600   // cells re-visited by the GC mark pass
	liResultBytes = (liResultWords*8 + memsys.LineSize - 1) / memsys.LineSize * memsys.LineSize
)

func newLi(scale int) paradigm.Loop { return &li{iters: 30 * scale} }

func (l *li) Name() string { return "130.li" }
func (l *li) Iters() int   { return l.iters }

func (l *li) Setup(h *memsys.Hierarchy) {
	l.alloc = liHeap
	for it := 0; it < l.iters; it++ {
		budget := liTreeBudget
		root := l.build(h, mix64(uint64(it)+7), &budget, 0)
		h.PokeWord(liExprs+memsys.Addr(it)*8, uint64(root))
	}
	h.PokeWord(liExprCur, uint64(liExprs))
	h.PokeWord(liAllocCur, uint64(liResults))
}

// build constructs a random cons tree: a cell is two words, car and cdr.
// Leaves store a tagged immediate (value<<1 | 1); internal cells store
// 16-byte-aligned cell pointers.
func (l *li) build(h *memsys.Hierarchy, seed uint64, budget *int, depth int) memsys.Addr {
	cell := l.alloc
	l.alloc += 16
	*budget--
	if *budget <= 1 || depth > 40 || chance(seed, 11, 60) {
		h.PokeWord(cell, mix64(seed)<<1|1)
		h.PokeWord(cell+8, 0)
		return cell
	}
	left := l.build(h, mix64(seed*2+1), budget, depth+1)
	right := l.build(h, mix64(seed*2+2), budget, depth+1)
	h.PokeWord(cell, uint64(left))
	h.PokeWord(cell+8, uint64(right))
	return cell
}

func (l *li) Stage1(e *engine.Env, it int) bool {
	cur := e.Load(liExprCur)
	expr := e.Load(memsys.Addr(cur))
	e.Store(liProduced, expr)
	e.Store(liExprCur, cur+8)
	// Bump-allocate this iteration's result region (loop-carried).
	res := e.Load(liAllocCur)
	e.Store(liAllocCur, res+liResultBytes)
	// Interpreter bookkeeping between evaluations (GC scan, env
	// maintenance): the sequential pipeline stage carries real work.
	e.Compute(liS1Work)
	e.Branch(20, it+1 < l.iters)
	return it+1 < l.iters
}

func (l *li) Stage2(e *engine.Env, it int) bool {
	root := e.Load(liProduced)
	resBase := memsys.Addr(uint64(liResults) + uint64(it)*liResultBytes)
	stack := make([]uint64, 0, 64)
	stack = append(stack, root)
	var acc uint64
	visited, writes := 0, 0
	for len(stack) > 0 {
		n := memsys.Addr(stack[len(stack)-1])
		stack = stack[:len(stack)-1]
		car := e.Load(n)
		cdr := e.Load(n + 8)
		visited++
		e.Compute(2)
		e.Branch(21, true) // eval-loop branch, always predicted
		if car&1 == 1 {
			acc = mix64(acc + car>>1)
			if visited%4 == 0 && writes < liResultWords {
				e.Store(resBase+memsys.Addr(writes)*8, acc)
				writes++
			}
		} else {
			stack = append(stack, car)
			if cdr != 0 {
				stack = append(stack, cdr)
			}
		}
		if visited%6 == 0 {
			// GC / type-dispatch style branch: occasionally taken,
			// calibrated to li's 3.65% misprediction rate.
			e.Branch(22, chance(uint64(it), uint64(visited), 220))
		}
	}
	// GC mark pass: re-visit the first part of the tree (the lines are
	// already marked by this transaction, so no further SLAs are needed).
	stack = append(stack[:0], root)
	marked := 0
	for len(stack) > 0 && marked < liMarkCells {
		n := memsys.Addr(stack[len(stack)-1])
		stack = stack[:len(stack)-1]
		car := e.Load(n)
		cdr := e.Load(n + 8)
		marked++
		e.Branch(23, true)
		if car&1 == 0 {
			stack = append(stack, car)
			if cdr != 0 {
				stack = append(stack, cdr)
			}
		}
	}
	for writes < liResultWords/4 {
		e.Store(resBase+memsys.Addr(writes)*8, acc)
		writes++
	}
	return false
}

func (l *li) Checksum(h *memsys.Hierarchy) uint64 {
	var sum uint64
	for it := 0; it < l.iters; it++ {
		resBase := memsys.Addr(uint64(liResults) + uint64(it)*liResultBytes)
		for w := 0; w < liResultWords; w += 5 {
			sum = mix64(sum ^ h.PeekWord(resBase+memsys.Addr(w)*8))
		}
	}
	return sum
}
