package memsys

import (
	"fmt"
	"sort"
	"testing"

	"hmtx/internal/vid"
)

const addrA = Addr(0x1000)

func newTestH(cores int) *Hierarchy {
	cfg := DefaultConfig()
	cfg.Cores = cores
	// Every protocol test runs under MOESI-San: each operation asserts
	// the global coherence invariants (sanitize.go), not just the
	// observable read values.
	cfg.Sanitize = true
	return New(cfg)
}

// states returns the version states of the line containing addr in the given
// cache, sorted by modVID, formatted as in the paper ("S-M(2,2)").
func states(h *Hierarchy, cacheIdx int, addr Addr) []string {
	vs := h.Versions(cacheIdx, addr)
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].Mod != vs[j].Mod {
			return vs[i].Mod < vs[j].Mod
		}
		return vs[i].High < vs[j].High
	})
	var out []string
	for i := range vs {
		out = append(out, vs[i].String())
	}
	return out
}

func wantStates(t *testing.T, h *Hierarchy, cacheIdx int, addr Addr, want ...string) {
	t.Helper()
	got := states(h, cacheIdx, addr)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("cache %d line %#x: got %v, want %v", cacheIdx, addr, got, want)
	}
}

func mustLoad(t *testing.T, h *Hierarchy, core int, addr Addr, a vid.V) uint64 {
	t.Helper()
	v, res := h.Load(core, addr, a)
	if res.Conflict {
		t.Fatalf("unexpected conflict on load core=%d addr=%#x vid=%d: %s", core, addr, a, res.Cause)
	}
	return v
}

func mustStore(t *testing.T, h *Hierarchy, core int, addr Addr, val uint64, a vid.V) {
	t.Helper()
	res := h.Store(core, addr, val, a)
	if res.Conflict {
		t.Fatalf("unexpected conflict on store core=%d addr=%#x vid=%d: %s", core, addr, a, res.Cause)
	}
}

// --- Figure 4: speculative access transitions -------------------------------

func TestFig4SpecReadOnCleanLine(t *testing.T) {
	h := newTestH(2)
	h.PokeWord(addrA, 7)
	if got := mustLoad(t, h, 0, addrA, 1); got != 7 {
		t.Fatalf("load = %d, want 7", got)
	}
	wantStates(t, h, 0, addrA, "S-E(0,1)")
}

func TestFig4SpecReadOnDirtyLine(t *testing.T) {
	h := newTestH(2)
	mustStore(t, h, 0, addrA, 5, vid.NonSpec) // line becomes M
	wantStates(t, h, 0, addrA, "M(0,0)")
	if got := mustLoad(t, h, 0, addrA, 2); got != 5 {
		t.Fatalf("load = %d, want 5", got)
	}
	wantStates(t, h, 0, addrA, "S-M(0,2)")
}

func TestFig4SpecWriteCreatesUnmodifiedCopy(t *testing.T) {
	h := newTestH(2)
	h.PokeWord(addrA, 1)
	mustStore(t, h, 0, addrA, 2, 1)
	wantStates(t, h, 0, addrA, "S-O(0,1)", "S-M(1,1)")
	// Reads of the old and new versions see the right data.
	if got := mustLoad(t, h, 0, addrA, vid.NonSpec); got != 1 {
		t.Fatalf("nonspec load = %d, want 1 (write-after-read avoided)", got)
	}
	if got := mustLoad(t, h, 0, addrA, 1); got != 2 {
		t.Fatalf("vid 1 load = %d, want 2", got)
	}
}

func TestFig4SpecWriteSameVIDInPlace(t *testing.T) {
	h := newTestH(2)
	mustStore(t, h, 0, addrA, 10, 3)
	mustStore(t, h, 0, addrA, 11, 3)
	wantStates(t, h, 0, addrA, "S-O(0,3)", "S-M(3,3)")
	if got := mustLoad(t, h, 0, addrA, 3); got != 11 {
		t.Fatalf("load = %d, want 11", got)
	}
	if h.Stats().VersionsCreated != 1 {
		t.Fatalf("VersionsCreated = %d, want 1 (in-place rewrite)", h.Stats().VersionsCreated)
	}
}

func TestFig4SpecWriteHigherVIDCreatesNewVersion(t *testing.T) {
	h := newTestH(2)
	mustStore(t, h, 0, addrA, 10, 1)
	mustStore(t, h, 0, addrA, 20, 2)
	wantStates(t, h, 0, addrA, "S-O(0,1)", "S-O(1,2)", "S-M(2,2)")
	if got := mustLoad(t, h, 0, addrA, 1); got != 10 {
		t.Fatalf("vid1 load = %d, want 10", got)
	}
	if got := mustLoad(t, h, 0, addrA, 2); got != 20 {
		t.Fatalf("vid2 load = %d, want 20", got)
	}
	if got := mustLoad(t, h, 0, addrA, 3); got != 20 {
		t.Fatalf("vid3 load = %d, want 20 (sees latest)", got)
	}
}

func TestFig4SpecWriteLowerVIDAborts(t *testing.T) {
	h := newTestH(2)
	mustStore(t, h, 0, addrA, 10, 2)
	res := h.Store(0, addrA, 99, 1)
	if !res.Conflict {
		t.Fatal("store vid 1 after store vid 2 should conflict (output dependence)")
	}
}

func TestFig4SpecWriteToReadLineLowerVIDAborts(t *testing.T) {
	h := newTestH(2)
	mustLoad(t, h, 0, addrA, 3)
	res := h.Store(0, addrA, 99, 2)
	if !res.Conflict {
		t.Fatal("store vid 2 to line read by vid 3 should conflict (flow dependence)")
	}
}

func TestFig4SpecReadUpgradesSharedLine(t *testing.T) {
	h := newTestH(2)
	h.PokeWord(addrA, 9)
	// Both cores read non-speculatively: two Shared copies.
	mustLoad(t, h, 0, addrA, vid.NonSpec)
	mustLoad(t, h, 1, addrA, vid.NonSpec)
	wantStates(t, h, 0, addrA, "S(0,0)")
	wantStates(t, h, 1, addrA, "S(0,0)")
	// Speculative read on core 0 gains exclusivity first (§4.2).
	mustLoad(t, h, 0, addrA, 1)
	wantStates(t, h, 0, addrA, "S-E(0,1)")
	wantStates(t, h, 1, addrA)
}

// --- Figure 5: the worked two-cache example ---------------------------------

func TestFig5Walkthrough(t *testing.T) {
	h := newTestH(2)
	h.PokeWord(addrA, 100)

	// (1) Thread 1 (core 0), next-iteration stage, VID 1: r1 = M[0xa].
	if got := mustLoad(t, h, 0, addrA, 1); got != 100 {
		t.Fatalf("step 1 load = %d, want 100", got)
	}
	wantStates(t, h, 0, addrA, "S-E(0,1)")

	// (2) VID 1: M[0xa] = M[r1] (store).
	mustStore(t, h, 0, addrA, 101, 1)
	wantStates(t, h, 0, addrA, "S-O(0,1)", "S-M(1,1)")

	// (3) VID 2 on the same core: load then store.
	if got := mustLoad(t, h, 0, addrA, 2); got != 101 {
		t.Fatalf("step 3 load = %d, want 101 (uncommitted value forwarding)", got)
	}
	mustStore(t, h, 0, addrA, 102, 2)
	wantStates(t, h, 0, addrA, "S-O(0,1)", "S-O(1,2)", "S-M(2,2)")

	// (4) Thread 2 (core 1), work stage, VID 1: r1 = M[0xa]. Broadcast
	// hits the S-O(1,2) version in cache 0; core 1 receives a bounded
	// copy.
	if got := mustLoad(t, h, 1, addrA, 1); got != 101 {
		t.Fatalf("step 4 load = %d, want 101 (vid 1 must not see vid 2's update)", got)
	}
	wantStates(t, h, 1, addrA, "S-S(1,2)")

	// A vid >= 2 access would hit the S-M(2,2) version instead.
	if got := mustLoad(t, h, 1, addrA, 2); got != 102 {
		t.Fatalf("vid 2 load from core 1 = %d, want 102", got)
	}

	// (5) Thread 2 commits VID 1. Lines settle lazily on next touch.
	h.Commit(1)
	if got := mustLoad(t, h, 0, addrA, 2); got != 102 {
		t.Fatalf("post-commit vid 2 load = %d, want 102", got)
	}
	// S-O(0,1): high 1 <= LC 1, discarded. S-O(1,2): mod committed ->
	// S-O(0,2). S-M(2,2) still speculative.
	wantStates(t, h, 0, addrA, "S-O(0,2)", "S-M(2,2)")
}

// --- §4.3 dependence orderings ----------------------------------------------

// Flow dependence, store first: load with higher VID sees the store.
func TestFlowDependenceStoreFirst(t *testing.T) {
	h := newTestH(2)
	mustStore(t, h, 0, addrA, 42, 2)
	if got := mustLoad(t, h, 1, addrA, 3); got != 42 {
		t.Fatalf("load vid 3 = %d, want 42 (uncommitted value forwarding)", got)
	}
}

// Flow dependence, load first: the late store must trigger misspeculation.
func TestFlowDependenceLoadFirst(t *testing.T) {
	h := newTestH(2)
	mustLoad(t, h, 1, addrA, 3)
	if res := h.Store(0, addrA, 42, 2); !res.Conflict {
		t.Fatal("store vid 2 after load vid 3 must conflict")
	}
}

// Anti dependence, load first: the later store creates a new version and the
// old load's version survives.
func TestAntiDependenceLoadFirst(t *testing.T) {
	h := newTestH(2)
	h.PokeWord(addrA, 7)
	if got := mustLoad(t, h, 0, addrA, 2); got != 7 {
		t.Fatal("initial load wrong")
	}
	mustStore(t, h, 1, addrA, 9, 3)
	if got := mustLoad(t, h, 0, addrA, 2); got != 7 {
		t.Fatalf("vid 2 reload = %d, want 7 (write-after-read hazard avoided)", got)
	}
	if got := mustLoad(t, h, 1, addrA, 3); got != 9 {
		t.Fatalf("vid 3 load = %d, want 9", got)
	}
}

// Anti dependence, store first: the earlier load hits the preserved S-O copy
// and no false misspeculation occurs.
func TestAntiDependenceStoreFirst(t *testing.T) {
	h := newTestH(2)
	h.PokeWord(addrA, 7)
	mustStore(t, h, 1, addrA, 9, 3)
	if got := mustLoad(t, h, 0, addrA, 2); got != 7 {
		t.Fatalf("vid 2 load = %d, want 7 (must not see vid 3's store)", got)
	}
}

// Output dependence in order: both versions coexist.
func TestOutputDependenceInOrder(t *testing.T) {
	h := newTestH(2)
	mustStore(t, h, 0, addrA, 1, 1)
	mustStore(t, h, 1, addrA, 2, 2)
	if got := mustLoad(t, h, 0, addrA, 1); got != 1 {
		t.Fatalf("vid 1 load = %d, want 1", got)
	}
	if got := mustLoad(t, h, 1, addrA, 2); got != 2 {
		t.Fatalf("vid 2 load = %d, want 2", got)
	}
}

// Output dependence out of order: conservative misspeculation.
func TestOutputDependenceOutOfOrder(t *testing.T) {
	h := newTestH(2)
	mustStore(t, h, 1, addrA, 2, 2)
	if res := h.Store(0, addrA, 1, 1); !res.Conflict {
		t.Fatal("store vid 1 after store vid 2 must conflict")
	}
}

// --- Group commit and uncommitted value forwarding across caches ------------

func TestGroupCommitAcrossCaches(t *testing.T) {
	h := newTestH(4)
	addrB := addrA + 4096
	// One transaction (VID 1) writes from two different cores.
	mustStore(t, h, 0, addrA, 11, 1)
	mustStore(t, h, 2, addrB, 22, 1)
	// Before commit, non-speculative execution sees old values.
	if got := mustLoad(t, h, 3, addrA, vid.NonSpec); got != 0 {
		t.Fatalf("pre-commit nonspec read = %d, want 0", got)
	}
	h.Commit(1)
	// After the single commit, both cores' modifications are visible.
	if got := mustLoad(t, h, 3, addrA, vid.NonSpec); got != 11 {
		t.Fatalf("post-commit read A = %d, want 11", got)
	}
	if got := mustLoad(t, h, 3, addrB, vid.NonSpec); got != 22 {
		t.Fatalf("post-commit read B = %d, want 22", got)
	}
}

func TestUncommittedValueForwardingAcrossCaches(t *testing.T) {
	h := newTestH(2)
	// Stage 1 on core 0 produces a value inside transaction 5's version.
	mustStore(t, h, 0, addrA, 0xBEEF, 5)
	// Stage 2 on core 1 continues the same transaction and sees it.
	if got := mustLoad(t, h, 1, addrA, 5); got != 0xBEEF {
		t.Fatalf("same-transaction cross-core load = %#x, want 0xBEEF", got)
	}
	// A later transaction also sees it (forwarding to later VIDs).
	if got := mustLoad(t, h, 1, addrA, 6); got != 0xBEEF {
		t.Fatalf("later-transaction load = %#x, want 0xBEEF", got)
	}
}

func TestSameTransactionCrossCoreRewrite(t *testing.T) {
	h := newTestH(2)
	mustStore(t, h, 0, addrA, 1, 4)
	mustStore(t, h, 1, addrA, 2, 4) // same VID, different core: migrate, in place
	if got := mustLoad(t, h, 0, addrA, 4); got != 2 {
		t.Fatalf("vid 4 load = %d, want 2", got)
	}
	if h.Stats().VersionsCreated != 1 {
		t.Fatalf("VersionsCreated = %d, want 1", h.Stats().VersionsCreated)
	}
}

// --- Figure 6: commit transitions -------------------------------------------

func TestFig6CommitTransitions(t *testing.T) {
	h := newTestH(2)
	h.PokeWord(addrA, 1)
	addrB := addrA + 4096
	addrC := addrA + 8192

	mustStore(t, h, 0, addrA, 2, 1) // S-O(0,1) + S-M(1,1)
	mustLoad(t, h, 0, addrB, 1)     // S-E(0,1)
	mustStore(t, h, 0, addrC, 3, 1)
	mustLoad(t, h, 0, addrC, 2) // S-M(1,2): read by a later VID

	h.Commit(1)

	// Touch all lines to settle them.
	if got := mustLoad(t, h, 1, addrA, vid.NonSpec); got != 2 {
		t.Fatalf("committed A = %d, want 2", got)
	}
	mustLoad(t, h, 0, addrB, vid.NonSpec)
	mustLoad(t, h, 0, addrC, vid.NonSpec)

	// addrB was only read: S-E -> E (clean, no writeback needed).
	wantStates(t, h, 0, addrB, "E(0,0)")
	// addrC: committed data, but still marked by uncommitted reader 2.
	wantStates(t, h, 0, addrC, "S-M(0,2)")
}

func TestCommitMustBeConsecutive(t *testing.T) {
	h := newTestH(2)
	defer func() {
		if recover() == nil {
			t.Fatal("non-consecutive commit should panic")
		}
	}()
	h.Commit(2)
}

// --- Figure 7: abort transitions --------------------------------------------

func TestFig7AbortTransitions(t *testing.T) {
	h := newTestH(2)
	h.PokeWord(addrA, 1)
	addrB := addrA + 4096

	mustStore(t, h, 0, addrA, 99, 1) // S-O(0,1)+S-M(1,1): modified version dies
	mustLoad(t, h, 0, addrB, 1)      // S-E(0,1): survives as E

	h.AbortAll()

	if got := mustLoad(t, h, 1, addrA, vid.NonSpec); got != 1 {
		t.Fatalf("post-abort A = %d, want original 1", got)
	}
	wantStates(t, h, 0, addrB, "E(0,0)")
	// No speculative lines anywhere.
	for c := 0; c <= 2; c++ {
		for _, s := range states(h, c, addrA) {
			if s[0] == 'S' && s[1] == '-' {
				t.Fatalf("cache %d still holds speculative line %s after abort", c, s)
			}
		}
	}
}

func TestAbortPreservesPendingLazyCommits(t *testing.T) {
	h := newTestH(2)
	mustStore(t, h, 0, addrA, 123, 1)
	h.Commit(1) // lazy: line not yet settled
	mustStore(t, h, 0, addrA+4096, 7, 2)
	h.AbortAll() // aborts VID 2; VID 1's committed data must survive
	if got := mustLoad(t, h, 0, addrA, vid.NonSpec); got != 123 {
		t.Fatalf("committed-but-unsettled data lost on abort: got %d, want 123", got)
	}
	if got := mustLoad(t, h, 0, addrA+4096, vid.NonSpec); got != 0 {
		t.Fatalf("aborted store survived: got %d, want 0", got)
	}
}

// --- Lazy commit equivalence (§5.3) ----------------------------------------

func TestLazyCommitMatchesEagerSemantics(t *testing.T) {
	h := newTestH(2)
	// Build a chain of versions, commit some, and verify every
	// subsequent access behaves as if commit processing were eager.
	for v := vid.V(1); v <= 5; v++ {
		mustStore(t, h, int(v)%2, addrA, uint64(v)*10, v)
	}
	h.Commit(1)
	h.Commit(2)
	h.Commit(3)
	// Non-speculative read sees VID 3's data.
	if got := mustLoad(t, h, 0, addrA, vid.NonSpec); got != 30 {
		t.Fatalf("nonspec read = %d, want 30", got)
	}
	// Speculative readers of uncommitted versions still see theirs.
	if got := mustLoad(t, h, 1, addrA, 4); got != 40 {
		t.Fatalf("vid 4 read = %d, want 40", got)
	}
	if got := mustLoad(t, h, 0, addrA, 5); got != 50 {
		t.Fatalf("vid 5 read = %d, want 50", got)
	}
	h.Commit(4)
	h.Commit(5)
	if got := mustLoad(t, h, 1, addrA, vid.NonSpec); got != 50 {
		t.Fatalf("final nonspec read = %d, want 50", got)
	}
}

// --- VID reset (§4.6) --------------------------------------------------------

func TestVIDResetPreservesCommittedState(t *testing.T) {
	h := newTestH(2)
	max := h.Config().VIDSpace.Max()
	for v := vid.V(1); v <= max; v++ {
		mustStore(t, h, 0, addrA, uint64(v), v)
		h.Commit(v)
	}
	h.VIDReset()
	if got := mustLoad(t, h, 1, addrA, vid.NonSpec); got != uint64(max) {
		t.Fatalf("post-reset nonspec read = %d, want %d", got, max)
	}
	// New epoch transactions start from VID 1 again.
	mustStore(t, h, 0, addrA, 999, 1)
	if got := mustLoad(t, h, 1, addrA, 1); got != 999 {
		t.Fatalf("new-epoch vid 1 read = %d, want 999", got)
	}
	if got := mustLoad(t, h, 1, addrA, vid.NonSpec); got != uint64(max) {
		t.Fatalf("new-epoch nonspec read = %d, want %d", got, max)
	}
	h.Commit(1)
	if got := mustLoad(t, h, 1, addrA, vid.NonSpec); got != 999 {
		t.Fatalf("after new-epoch commit: got %d, want 999", got)
	}
}

// --- SLAs (§5.1) -------------------------------------------------------------

func TestWrongPathLoadDoesNotMark(t *testing.T) {
	h := newTestH(2)
	h.PokeWord(addrA, 5)
	if v, _ := h.WrongPathLoad(0, addrA, 3); v != 5 {
		t.Fatalf("wrong-path load = %d, want 5", v)
	}
	// A store by an earlier VID must NOT conflict: the line was only
	// touched by a squashed load.
	if res := h.Store(1, addrA, 6, 2); res.Conflict {
		t.Fatalf("false misspeculation despite SLA filtering: %s", res.Cause)
	}
	if h.Stats().AvoidedAborts != 1 {
		t.Fatalf("AvoidedAborts = %d, want 1", h.Stats().AvoidedAborts)
	}
}

func TestWrongPathLoadWithoutSLAMarksAndAborts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 2
	cfg.SLAEnabled = false
	h := New(cfg)
	h.PokeWord(addrA, 5)
	h.WrongPathLoad(0, addrA, 3)
	if res := h.Store(1, addrA, 6, 2); !res.Conflict {
		t.Fatal("without SLAs a squashed load must cause false misspeculation")
	}
}

func TestSLAVerifiesValue(t *testing.T) {
	h := newTestH(2)
	h.PokeWord(addrA, 5)
	// Branch-speculative load observed 5.
	v, _ := h.WrongPathLoad(0, addrA, 3)
	// Another transaction with the same VID path commits a conflicting
	// value before the branch resolves... here simulated by a same-VID
	// store from the same transaction changing the value.
	mustStore(t, h, 1, addrA, 6, 3)
	if res := h.SLA(0, addrA, 3, v); !res.Conflict {
		t.Fatal("SLA with stale value must trigger misspeculation")
	}
}

func TestSLAMatchingValueMarks(t *testing.T) {
	h := newTestH(2)
	h.PokeWord(addrA, 5)
	v, _ := h.WrongPathLoad(0, addrA, 3)
	if res := h.SLA(0, addrA, 3, v); res.Conflict {
		t.Fatalf("SLA with matching value conflicted: %s", res.Cause)
	}
	// The line is now marked: an earlier-VID store conflicts.
	if res := h.Store(1, addrA, 9, 2); !res.Conflict {
		t.Fatal("store below SLA-marked VID must conflict")
	}
}

// --- Non-speculative MOESI behaviour is preserved (§4.1) ---------------------

func TestPlainMOESISharing(t *testing.T) {
	h := newTestH(3)
	mustStore(t, h, 0, addrA, 5, vid.NonSpec)
	wantStates(t, h, 0, addrA, "M(0,0)")
	mustLoad(t, h, 1, addrA, vid.NonSpec)
	wantStates(t, h, 0, addrA, "O(0,0)")
	wantStates(t, h, 1, addrA, "S(0,0)")
	mustLoad(t, h, 2, addrA, vid.NonSpec)
	wantStates(t, h, 2, addrA, "S(0,0)")
	// A write from core 2 invalidates the other copies.
	mustStore(t, h, 2, addrA, 6, vid.NonSpec)
	wantStates(t, h, 0, addrA)
	wantStates(t, h, 1, addrA)
	wantStates(t, h, 2, addrA, "M(0,0)")
	if got := mustLoad(t, h, 0, addrA, vid.NonSpec); got != 6 {
		t.Fatalf("read after migrate = %d, want 6", got)
	}
}

func TestNonSpecStoreToSpeculativeLineConflicts(t *testing.T) {
	h := newTestH(2)
	mustLoad(t, h, 0, addrA, 2)
	if res := h.Store(1, addrA, 1, vid.NonSpec); !res.Conflict {
		t.Fatal("non-speculative store racing a speculative reader must conflict")
	}
}

// --- Peek/Poke and latency sanity -------------------------------------------

func TestPeekPokeRoundTrip(t *testing.T) {
	h := newTestH(2)
	h.PokeWord(addrA, 77)
	if got := h.PeekWord(addrA); got != 77 {
		t.Fatalf("Peek = %d, want 77", got)
	}
	mustStore(t, h, 0, addrA, 78, 1)
	if got := h.PeekWord(addrA); got != 77 {
		t.Fatalf("Peek of committed state = %d, want 77 (uncommitted store invisible)", got)
	}
	h.Commit(1)
	if got := h.PeekWord(addrA); got != 78 {
		t.Fatalf("Peek after commit = %d, want 78", got)
	}
}

func TestLatencies(t *testing.T) {
	h := newTestH(2)
	cfg := h.Config()
	h.PokeWord(addrA, 1)
	_, res := h.Load(0, addrA, vid.NonSpec)
	wantMiss := cfg.L1Lat + cfg.BusLat + cfg.L2Lat + cfg.MemLat
	if res.Lat != wantMiss {
		t.Fatalf("cold miss latency = %d, want %d", res.Lat, wantMiss)
	}
	_, res = h.Load(0, addrA, vid.NonSpec)
	if res.Lat != cfg.L1Lat {
		t.Fatalf("L1 hit latency = %d, want %d", res.Lat, cfg.L1Lat)
	}
	_, res = h.Load(1, addrA, vid.NonSpec)
	if res.Lat != cfg.L1Lat+cfg.BusLat {
		t.Fatalf("peer transfer latency = %d, want %d", res.Lat, cfg.L1Lat+cfg.BusLat)
	}
}

func TestWordHelpers(t *testing.T) {
	var l Line
	l.Tag = 0x40
	l.SetWord(0x48, 0x1122334455667788)
	if got := l.Word(0x48); got != 0x1122334455667788 {
		t.Fatalf("word roundtrip = %#x", got)
	}
	if got := l.Word(0x40); got != 0 {
		t.Fatalf("adjacent word = %#x, want 0", got)
	}
}

// --- Sanitized end-to-end sweep ---------------------------------------------

// TestProtocolSanitizedEndToEnd drives one full multi-core protocol story —
// version creation, cross-core forwarding, group commit, misspeculation
// abort, recovery — with MOESI-San asserting the global coherence invariants
// after every single operation (newTestH sets Config.Sanitize).
func TestProtocolSanitizedEndToEnd(t *testing.T) {
	h := newTestH(4)
	addrB := addrA + 4096

	// Epoch of speculative versions across cores, with forwarding.
	h.PokeWord(addrA, 10)
	mustStore(t, h, 0, addrA, 11, 1) // S-O(0,1) + S-M(1,1)
	mustStore(t, h, 1, addrA, 12, 2) // migrates latest, new version
	if got := mustLoad(t, h, 2, addrA, 3); got != 12 {
		t.Fatalf("forwarded uncommitted value = %d, want 12", got)
	}
	if got := mustLoad(t, h, 3, addrA, 1); got != 11 {
		t.Fatalf("superseded version for VID 1 = %d, want 11", got)
	}
	mustLoad(t, h, 2, addrB, 3) // clean spec read: S-E

	// Group commit the first two transactions; lines settle lazily.
	h.Commit(1)
	h.Commit(2)
	if got := mustLoad(t, h, 0, addrA, vid.NonSpec); got != 12 {
		t.Fatalf("committed value = %d, want 12", got)
	}

	// Misspeculate transaction 3 and recover.
	mustStore(t, h, 2, addrB, 33, 3)
	h.AbortAll()
	if got := mustLoad(t, h, 1, addrB, vid.NonSpec); got != 0 {
		t.Fatalf("aborted store survived: got %d, want 0", got)
	}
	if got := mustLoad(t, h, 1, addrA, vid.NonSpec); got != 12 {
		t.Fatalf("committed value lost by abort: got %d, want 12", got)
	}

	// Recovery continues with the next VID and reuses the same lines.
	mustStore(t, h, 3, addrB, 44, 3)
	h.Commit(3)
	if err := h.CheckInvariants(); err != nil {
		t.Fatalf("final hierarchy violates invariants: %v", err)
	}
}

// TestUpgradeKeepsRemoteDirtyData is a minimized regression for a protocol
// bug found by the model checker (internal/check): the speculative-read
// upgrade of a local Shared copy invalidated a remote dirty Owned copy but
// landed in (Spec)Exclusive, claiming the stale memory image as current.
// The upgrade must land dirty whenever an invalidated remote copy was M/O.
//
// Counterexample trace: store c0 v0 -> load c1 v0 -> load c1 v1.
func TestUpgradeKeepsRemoteDirtyData(t *testing.T) {
	h := newTestH(2)
	mustStore(t, h, 0, addrA, 1, 0)
	mustLoad(t, h, 1, addrA, 0)
	wantStates(t, h, 0, addrA, "O(0,0)")
	wantStates(t, h, 1, addrA, "S(0,0)")

	// The speculative read upgrades L1.1's S copy; L1.0's dirty O copy is
	// invalidated and its dirtiness must transfer to the upgraded line.
	if got := mustLoad(t, h, 1, addrA, 1); got != 1 {
		t.Fatalf("speculative load = %d, want 1", got)
	}
	wantStates(t, h, 0, addrA)
	wantStates(t, h, 1, addrA, "S-M(0,1)")
	if err := h.CheckInvariants(); err != nil {
		t.Fatalf("upgrade left the hierarchy incoherent: %v", err)
	}

	// The committed value written by core 0 survives a full abort sweep.
	h.AbortAll()
	if got := mustLoad(t, h, 0, addrA, vid.NonSpec); got != 1 {
		t.Fatalf("committed value lost by the upgrade: got %d, want 1", got)
	}
}

// TestOverflowAbortPreservesCommittedData is a minimized regression for the
// second checker-found bug: a latest speculative line whose modVID is 0
// carries the pre-speculation *committed* dirty image. When such a line
// overflows the last-level cache, the §5.4 overflow abort may discard the
// speculative version — but the committed data underneath must be written
// back first, or a committed store is lost without any transaction failing.
//
// Counterexample trace: store c0 v0 -> load c0 v1 -> evict L1.0 -> evict L2.
func TestOverflowAbortPreservesCommittedData(t *testing.T) {
	h := newTestH(2)
	mustStore(t, h, 0, addrA, 1, 0)
	mustLoad(t, h, 0, addrA, 1)
	wantStates(t, h, 0, addrA, "S-M(0,1)")

	if ok, res := h.Evict(0, addrA); !ok || res.Conflict {
		t.Fatalf("L1 evict: ok=%t conflict=%t", ok, res.Conflict)
	}
	wantStates(t, h, 2, addrA, "S-M(0,1)")

	// Evicting from the LLC has nowhere to spill: the speculative version
	// overflows and aborts (§5.4), but the committed value must survive.
	ok, res := h.Evict(2, addrA)
	if !ok || !res.Conflict {
		t.Fatalf("LLC evict must overflow-abort: ok=%t conflict=%t", ok, res.Conflict)
	}
	h.AbortAll() // the conflict demands an abort, as the engine would issue
	if got := h.PeekWord(addrA); got != 1 {
		t.Fatalf("committed value lost by overflow abort: got %d, want 1", got)
	}
	if got := mustLoad(t, h, 1, addrA, vid.NonSpec); got != 1 {
		t.Fatalf("reload after overflow abort = %d, want 1", got)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatalf("hierarchy incoherent after overflow abort: %v", err)
	}
}
