package memsys

import (
	"testing"

	"hmtx/internal/vid"
)

// This file systematically enumerates the speculative-access state machine
// of Figure 4: for every reachable starting state of a line, it applies
// every class of access (non-speculative read/write; speculative read/write
// with a VID below, equal to, and above the line's marks) and checks the
// resulting version states and conflict behaviour.

// prep builds a hierarchy whose line at addrA is in the named state on
// core 0, and returns it.
func prep(t *testing.T, state string) *Hierarchy {
	t.Helper()
	h := newTestH(2)
	switch state {
	case "E":
		h.PokeWord(addrA, 1)
		mustLoad(t, h, 0, addrA, vid.NonSpec)
	case "M":
		mustStore(t, h, 0, addrA, 1, vid.NonSpec)
	case "S-E(0,2)":
		h.PokeWord(addrA, 1)
		mustLoad(t, h, 0, addrA, 2)
	case "S-M(0,2)": // dirty line speculatively read
		mustStore(t, h, 0, addrA, 1, vid.NonSpec)
		mustLoad(t, h, 0, addrA, 2)
	case "S-M(2,2)": // speculatively written (plus its S-O(0,2) copy)
		h.PokeWord(addrA, 1)
		mustStore(t, h, 0, addrA, 5, 2)
	case "S-M(2,3)": // written by 2, read by 3
		h.PokeWord(addrA, 1)
		mustStore(t, h, 0, addrA, 5, 2)
		mustLoad(t, h, 0, addrA, 3)
	default:
		t.Fatalf("unknown prep state %q", state)
	}
	return h
}

func hasState(t *testing.T, h *Hierarchy, want string) bool {
	t.Helper()
	for c := 0; c <= 2; c++ {
		for _, s := range states(h, c, addrA) {
			if s == want {
				return true
			}
		}
	}
	return false
}

func TestConformanceSpecReadTransitions(t *testing.T) {
	cases := []struct {
		start   string
		readVID vid.V
		want    string // a version state that must exist afterwards
	}{
		{"E", 1, "S-E(0,1)"},
		{"M", 1, "S-M(0,1)"},
		{"S-E(0,2)", 3, "S-E(0,3)"}, // higher VID bumps highVID
		{"S-E(0,2)", 1, "S-E(0,2)"}, // lower VID: no bump, no new version
		{"S-M(0,2)", 4, "S-M(0,4)"}, //
		{"S-M(2,2)", 3, "S-M(2,3)"}, // read of the latest version
		{"S-M(2,2)", 1, "S-O(0,2)"}, // read below modVID hits the old copy
		{"S-M(2,3)", 2, "S-M(2,3)"}, // re-read by the writer itself
	}
	for _, c := range cases {
		h := prep(t, c.start)
		mustLoad(t, h, 0, addrA, c.readVID)
		if !hasState(t, h, c.want) {
			t.Errorf("%s + read vid %d: missing %s (have %v/%v/%v)",
				c.start, c.readVID, c.want,
				states(h, 0, addrA), states(h, 1, addrA), states(h, 2, addrA))
		}
	}
}

func TestConformanceSpecWriteTransitions(t *testing.T) {
	cases := []struct {
		start    string
		writeVID vid.V
		conflict bool
		want     string
	}{
		{"E", 2, false, "S-M(2,2)"},
		{"E", 2, false, "S-O(0,2)"}, // the unmodified copy is retained
		{"M", 2, false, "S-M(2,2)"},
		{"S-E(0,2)", 2, false, "S-M(2,2)"}, // write at own read mark
		{"S-E(0,2)", 3, false, "S-O(0,3)"}, // S-E becomes the bounded copy
		{"S-E(0,2)", 1, true, ""},          // below highVID: flow violation
		{"S-M(0,2)", 1, true, ""},
		{"S-M(2,2)", 2, false, "S-M(2,2)"}, // in-place rewrite, no new version
		{"S-M(2,2)", 3, false, "S-O(2,3)"}, // superseded version retained
		{"S-M(2,2)", 3, false, "S-M(3,3)"},
		{"S-M(2,3)", 2, true, ""}, // read by 3: writer 2 may not write again
		{"S-M(2,3)", 3, false, "S-M(3,3)"},
	}
	for _, c := range cases {
		h := prep(t, c.start)
		res := h.Store(0, addrA, 99, c.writeVID)
		if res.Conflict != c.conflict {
			t.Errorf("%s + write vid %d: conflict = %v, want %v (%s)",
				c.start, c.writeVID, res.Conflict, c.conflict, res.Cause)
			continue
		}
		if !c.conflict && !hasState(t, h, c.want) {
			t.Errorf("%s + write vid %d: missing %s (have %v)",
				c.start, c.writeVID, c.want, states(h, 0, addrA))
		}
	}
}

func TestConformanceNonSpecAccess(t *testing.T) {
	// Non-speculative accesses use VID = LC VID for hit logic (§5.3) and
	// must always observe the committed image.
	for _, start := range []string{"S-M(2,2)", "S-M(2,3)", "S-E(0,2)"} {
		h := prep(t, start)
		if got := mustLoad(t, h, 1, addrA, vid.NonSpec); got != 1 {
			t.Errorf("%s: nonspec read = %d, want committed 1", start, got)
		}
		// A non-speculative write would race the speculation: conflict.
		if res := h.Store(1, addrA, 7, vid.NonSpec); !res.Conflict {
			t.Errorf("%s: nonspec write must conflict with live speculation", start)
		}
	}
}

func TestConformanceCommitFromEveryState(t *testing.T) {
	// After committing every outstanding VID, each starting state must
	// settle to a non-speculative state holding the right data, with no
	// speculative versions anywhere.
	cases := []struct {
		start string
		upTo  vid.V
		want  uint64
	}{
		{"S-E(0,2)", 2, 1},
		{"S-M(0,2)", 2, 1},
		{"S-M(2,2)", 2, 5},
		{"S-M(2,3)", 3, 5},
	}
	for _, c := range cases {
		h := prep(t, c.start)
		for v := vid.V(1); v <= c.upTo; v++ {
			h.Commit(v)
		}
		if got := mustLoad(t, h, 1, addrA, vid.NonSpec); got != c.want {
			t.Errorf("%s committed: read %d, want %d", c.start, got, c.want)
		}
		mustLoad(t, h, 0, addrA, vid.NonSpec) // settle core 0's copies too
		for cidx := 0; cidx <= 2; cidx++ {
			for _, s := range states(h, cidx, addrA) {
				if s[0] == 'S' && s[1] == '-' {
					t.Errorf("%s committed: speculative line %s in cache %d", c.start, s, cidx)
				}
			}
		}
	}
}

func TestConformanceAbortFromEveryState(t *testing.T) {
	for _, start := range []string{"S-E(0,2)", "S-M(0,2)", "S-M(2,2)", "S-M(2,3)"} {
		h := prep(t, start)
		h.AbortAll()
		if got := mustLoad(t, h, 1, addrA, vid.NonSpec); got != 1 {
			t.Errorf("%s aborted: read %d, want original 1", start, got)
		}
	}
}
