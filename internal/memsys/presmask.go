package memsys

// presWords sizes the snoop-filter presence mask: one bit per cache (Cores
// L1s plus the L2), so 5 words cover the 255-core configuration cap plus the
// shared L2 with room to spare.
const presWords = 5

// presMask is a fixed-width bitset over cache ids (bit i = h.all[i]), the
// value type of the hierarchy's snoop filter. It replaces the former uint64
// mask so configurations beyond 63 cores — the 64–256-core systems the
// domain-sharded scheduler targets — keep the conservative-superset filter.
type presMask [presWords]uint64

func (m *presMask) set(i int)      { m[i>>6] |= 1 << (i & 63) }
func (m *presMask) clear(i int)    { m[i>>6] &^= 1 << (i & 63) }
func (m presMask) has(i int) bool  { return m[i>>6]&(1<<(i&63)) != 0 }
func (m presMask) empty() bool {
	for _, w := range m {
		if w != 0 {
			return false
		}
	}
	return true
}
